package speculate_test

import (
	"reflect"
	"testing"

	"repro"
	"repro/internal/machine"
)

// TestSchedulerDifferential runs every workload under every policy family
// with both the event-driven scheduler and the original polled reference
// model and requires bit-identical results: same cycles, same Stats, same
// IPC samples. This is the contract that lets the event path replace the
// polled rescan without re-validating the figures.
func TestSchedulerDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	policies := []string{"superscalar", "postdoms", "rec_pred"}
	for _, name := range speculate.WorkloadNames() {
		b, err := speculate.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range policies {
			pol := pol
			t.Run(name+"/"+pol, func(t *testing.T) {
				cfg := machine.PolyFlowConfig()
				event, err := b.RunNamed(pol, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.PolledScheduler = true
				polled, err := b.RunNamed(pol, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(event, polled) {
					t.Errorf("event and polled schedulers diverge:\nevent:  %+v\npolled: %+v", event, polled)
				}
			})
		}
	}
}
