package speculate_test

import (
	"reflect"
	"testing"

	"repro"
	"repro/internal/attrib"
	"repro/internal/machine"
)

// TestSchedulerDifferential runs every workload under every policy family
// with both the event-driven scheduler and the original polled reference
// model and requires bit-identical results: same cycles, same Stats, same
// IPC samples. This is the contract that lets the event path replace the
// polled rescan without re-validating the figures. Both runs also carry a
// spawn-site attribution table whose per-site sums must reconcile exactly
// with the machine counters and agree across schedulers. The sweep covers
// every registered family, so the kernels' syscall-bearing traces get the
// same byte-identity guarantee as the synthetic twelve.
func TestSchedulerDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	policies := []string{"superscalar", "postdoms", "rec_pred"}
	for _, name := range speculate.AllWorkloadNames() {
		b, err := speculate.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range policies {
			pol := pol
			t.Run(name+"/"+pol, func(t *testing.T) {
				cfg := machine.PolyFlowConfig()
				cfg.Attribution = attrib.NewTable()
				event, err := b.RunNamed(pol, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := machine.VerifyAttribution(cfg.Attribution, event); err != nil {
					t.Errorf("event scheduler: %v", err)
				}
				evRep := attrib.NewReport(cfg.Attribution, name, pol, event.Config, event.Cycles, event.Retired)

				cfg.PolledScheduler = true
				cfg.Attribution = attrib.NewTable()
				polled, err := b.RunNamed(pol, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := machine.VerifyAttribution(cfg.Attribution, polled); err != nil {
					t.Errorf("polled scheduler: %v", err)
				}
				poRep := attrib.NewReport(cfg.Attribution, name, pol, polled.Config, polled.Cycles, polled.Retired)

				if !reflect.DeepEqual(event, polled) {
					t.Errorf("event and polled schedulers diverge:\nevent:  %+v\npolled: %+v", event, polled)
				}
				if !reflect.DeepEqual(evRep, poRep) {
					t.Errorf("schedulers attribute differently:\nevent:  %+v\npolled: %+v", evRep, poRep)
				}
			})
		}
	}
}
