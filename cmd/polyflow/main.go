// Command polyflow runs one workload on one machine configuration and
// prints IPC and machine statistics.
//
// Usage:
//
//	polyflow -bench twolf -policy postdoms
//	polyflow -bench mcf -policy superscalar
//	polyflow -bench gcc -policy rec_pred
//	polyflow -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/core"
	"repro/internal/machine"
)

func main() {
	benchName := flag.String("bench", "twolf", "workload name")
	policyName := flag.String("policy", "postdoms", "spawn policy: superscalar, rec_pred, or one of the static policies")
	tasks := flag.Int("tasks", 8, "maximum concurrent tasks")
	verbose := flag.Bool("v", false, "print spawn-point statistics")
	list := flag.Bool("list", false, "list workloads and policies")
	flag.Parse()

	if *list {
		fmt.Println("workloads:", speculate.WorkloadNames())
		fmt.Print("policies: superscalar rec_pred")
		for _, p := range allPolicies() {
			fmt.Printf(" %q", p.Name)
		}
		fmt.Println()
		return
	}

	if err := run(*benchName, *policyName, *tasks, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "polyflow:", err)
		os.Exit(1)
	}
}

func allPolicies() []core.Policy {
	ps := core.IndividualPolicies()
	ps = append(ps, core.CombinationPolicies()...)
	ps = append(ps, core.ExclusionPolicies()...)
	return ps
}

func run(benchName, policyName string, tasks int, verbose bool) error {
	b, err := speculate.Load(benchName)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d static instrs, %d dynamic instrs, %d spawn points\n",
		b.Name, len(b.Prog.Code), b.Trace.Len(), len(b.Analysis.Spawns))
	if verbose {
		counts := b.Analysis.CountByKind()
		for k := core.Kind(0); k < core.NumKinds; k++ {
			fmt.Printf("  %-8s %d static spawn points\n", k, counts[k])
		}
	}

	base, err := b.RunSuperscalar()
	if err != nil {
		return err
	}
	fmt.Println(" ", base)
	if policyName == "superscalar" {
		return nil
	}

	cfg := machine.PolyFlowConfig()
	cfg.MaxTasks = tasks
	var res machine.Result
	if policyName == "rec_pred" {
		res, err = b.RunRecPred(cfg)
	} else {
		var pol core.Policy
		found := false
		for _, p := range allPolicies() {
			if p.Name == policyName {
				pol, found = p, true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown policy %q", policyName)
		}
		res, err = b.RunPolicy(pol, cfg)
	}
	if err != nil {
		return err
	}
	fmt.Println(" ", res)
	fmt.Printf("  speedup over superscalar: %+.1f%%\n", speculate.SpeedupPct(base, res))
	if verbose {
		fmt.Printf("  spawns by kind:")
		for k := core.Kind(0); k < core.NumKinds; k++ {
			fmt.Printf(" %s=%d", k, res.SpawnsByKind[k])
		}
		fmt.Printf("\n  diverted=%d violations=%d squashed=%d peakTasks=%d avgTasks=%.2f rejected=%d\n",
			res.Diverted, res.Violations, res.SquashedInstrs, res.PeakTasks,
			float64(res.TaskCycles)/float64(res.Cycles), res.SpawnsRejected)
		fmt.Printf("  foreclosures=%d\n", res.Foreclosures)
		fmt.Printf("  mispredicts=%d icacheMiss=%d dcacheMiss=%d l2Miss=%d icacheStall=%d\n",
			res.Mispredicts, res.ICacheMisses, res.DCacheMisses, res.L2Misses, res.ICacheStallCycle)
	}
	return nil
}
