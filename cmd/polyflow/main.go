// Command polyflow runs one workload on one machine configuration and
// prints IPC and machine statistics.
//
// Usage:
//
//	polyflow -bench twolf -policy postdoms
//	polyflow -bench mcf -policy superscalar
//	polyflow -bench gcc -policy rec_pred
//	polyflow -bench twolf -policy postdoms -trace twolf.trace.json -metrics
//	polyflow -bench gzip -policy postdoms -attrib gzip.attrib.json
//	polyflow -bench gcc -policy postdoms -timeout 30s
//	polyflow -bench gzip -trace-out gzip.trace
//	polyflow -bench gzip -policy loop -trace-in gzip.trace
//	polyflow -list
//
// -trace writes the run's cycle timeline as Chrome trace-event JSON (open
// it in Perfetto: ui.perfetto.dev); -metrics prints the full telemetry
// summary after the run; -attrib writes the per-spawn-site attribution
// report as JSON (render or compare it with polystat); -timeout bounds the
// whole run (the simulation's context is canceled and the cycle loop aborts
// promptly). See docs/OBSERVABILITY.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro"
	"repro/internal/attrib"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/telemetry"
)

func main() {
	benchName := flag.String("bench", "twolf", "workload name")
	policyName := flag.String("policy", "postdoms", "spawn policy: superscalar, rec_pred, or one of the static policies")
	tasks := flag.Int("tasks", 8, "maximum concurrent tasks")
	verbose := flag.Bool("v", false, "print spawn-point statistics")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON timeline of the run to this file")
	metrics := flag.Bool("metrics", false, "print the telemetry metrics summary after the run")
	attribFile := flag.String("attrib", "", "write the per-spawn-site attribution report as JSON to this file")
	maskStr := flag.String("mask", "", `suppress spawn sites, e.g. "0x40:loop,0x100:hammock" (polytune emits these; meaningless with -policy superscalar)`)
	traceOut := flag.String("trace-out", "", "write the workload's binary trace artifact (polyflow-trace/1) to this file")
	traceIn := flag.String("trace-in", "", "load the workload's trace from this polyflow-trace/1 file instead of emulating (as written by -trace-out or served by GET /v1/traces)")
	timeout := flag.Duration("timeout", 0, "abort the simulation after this long (e.g. 30s; 0 = no limit)")
	list := flag.Bool("list", false, "list workloads and policies")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (see docs/PERFORMANCE.md)")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	if *list {
		fmt.Println("workloads:", speculate.WorkloadNames())
		fmt.Println("kernels:", speculate.FamilyWorkloadNames("kernels"))
		fmt.Println("policies:", speculate.PolicyNames())
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "polyflow:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "polyflow:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *benchName, *policyName, *tasks, *verbose, *traceFile, *metrics, *attribFile, *traceOut, *traceIn, *maskStr); err != nil {
		fmt.Fprintln(os.Stderr, "polyflow:", err)
		os.Exit(1)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "polyflow:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle live heap before snapshotting
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "polyflow:", err)
			os.Exit(1)
		}
	}
}

func run(ctx context.Context, benchName, policyName string, tasks int, verbose bool, traceFile string, metrics bool, attribFile, traceOut, traceIn, maskStr string) error {
	mask, err := machine.ParseSpawnMask(maskStr)
	if err != nil {
		return err
	}
	if mask.Len() > 0 && policyName == "superscalar" {
		return fmt.Errorf("-mask is meaningless for the superscalar baseline (no spawns to suppress)")
	}
	var b *speculate.Bench
	if traceIn != "" {
		data, rerr := os.ReadFile(traceIn)
		if rerr != nil {
			return rerr
		}
		b, err = speculate.LoadFromTraceData(benchName, data)
	} else {
		b, err = speculate.Load(benchName)
	}
	if err != nil {
		return err
	}
	if traceOut != "" {
		data, err := b.EncodeTrace()
		if err != nil {
			return err
		}
		if err := os.WriteFile(traceOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("  trace artifact written to %s (%d bytes, replay with -trace-in)\n", traceOut, len(data))
	}
	fmt.Printf("%s: %d static instrs, %d dynamic instrs, %d spawn points\n",
		b.Name, len(b.Prog.Code), b.Trace.Len(), len(b.Analysis.Spawns))
	if verbose {
		counts := b.Analysis.CountByKind()
		for k := core.Kind(0); k < core.NumKinds; k++ {
			fmt.Printf("  %-8s %d static spawn points\n", k, counts[k])
		}
	}

	// One Collector (and one attribution table) observes one run, so both
	// are attached to whichever run the -policy flag selects (for
	// "superscalar", the baseline itself).
	var col *telemetry.Collector
	if traceFile != "" || metrics {
		n := 0 // metrics only
		if traceFile != "" {
			n = telemetry.DefaultTraceEvents
		}
		col = telemetry.NewCollector(telemetry.Config{TraceEvents: n})
	}
	var tbl *attrib.Table
	if attribFile != "" {
		tbl = attrib.NewTable()
	}

	if policyName == "superscalar" {
		cfg := machine.SuperscalarConfig()
		cfg.Telemetry = col
		cfg.Attribution = tbl
		base, err := b.RunSuperscalarContext(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println(" ", base)
		return finish(col, tbl, b.Name, policyName, base, traceFile, metrics, attribFile)
	}

	base, err := b.RunSuperscalarContext(ctx, machine.SuperscalarConfig())
	if err != nil {
		return err
	}
	fmt.Println(" ", base)

	cfg := machine.PolyFlowConfig()
	cfg.MaxTasks = tasks
	cfg.Telemetry = col
	cfg.Attribution = tbl
	cfg.SpawnMask = mask
	if mask.Len() > 0 {
		fmt.Printf("  suppressing %d spawn sites: %s\n", mask.Len(), mask.Encode())
	}
	res, err := b.RunNamedContext(ctx, policyName, cfg)
	if err != nil {
		return err
	}
	fmt.Println(" ", res)
	fmt.Printf("  speedup over superscalar: %+.1f%%\n", speculate.SpeedupPct(base, res))
	if verbose {
		fmt.Printf("  spawns by kind:")
		for k := core.Kind(0); k < core.NumKinds; k++ {
			fmt.Printf(" %s=%d", k, res.SpawnsByKind[k])
		}
		fmt.Printf("\n  diverted=%d violations=%d squashed=%d peakTasks=%d avgTasks=%.2f rejected=%d\n",
			res.Diverted, res.Violations, res.SquashedInstrs, res.PeakTasks,
			float64(res.TaskCycles)/float64(res.Cycles), res.SpawnsRejected)
		fmt.Printf("  foreclosures=%d\n", res.Foreclosures)
		fmt.Printf("  mispredicts=%d icacheMiss=%d dcacheMiss=%d l2Miss=%d icacheStall=%d\n",
			res.Mispredicts, res.ICacheMisses, res.DCacheMisses, res.L2Misses, res.ICacheStallCycle)
	}
	return finish(col, tbl, b.Name, policyName, res, traceFile, metrics, attribFile)
}

// finish writes the trace and attribution files and/or prints the metrics
// summary.
func finish(col *telemetry.Collector, tbl *attrib.Table, bench, policy string, res machine.Result, traceFile string, metrics bool, attribFile string) error {
	if col != nil && traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		if err := col.WriteChromeTrace(f, res.Config); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  trace written to %s (load in ui.perfetto.dev)\n", traceFile)
	}
	if col != nil && metrics {
		fmt.Println()
		if err := col.WriteSummary(os.Stdout); err != nil {
			return err
		}
	}
	if tbl != nil {
		if err := machine.VerifyAttribution(tbl, res); err != nil {
			return err
		}
		rep := attrib.NewReport(tbl, bench, policy, res.Config, res.Cycles, res.Retired)
		if err := rep.WriteFile(attribFile); err != nil {
			return err
		}
		fmt.Printf("  attribution written to %s (render with: polystat report %s)\n", attribFile, attribFile)
	}
	return nil
}
