// Command minicc compiles a mini-C source file (see internal/cc) to the
// repository's assembly, and can run it or push it through the full
// spawn-analysis + simulation pipeline.
//
// Usage:
//
//	minicc prog.c                 # print generated assembly
//	minicc -run prog.c            # compile, execute, print main's result
//	minicc -simulate prog.c       # compile, analyze, compare machines
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/machine"
)

func main() {
	run := flag.Bool("run", false, "execute the program and print main's return value")
	simulate := flag.Bool("simulate", false, "simulate superscalar vs PolyFlow")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minicc [-run|-simulate] file.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	if err := drive(string(src), *run, *simulate); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "minicc:", err)
	os.Exit(1)
}

func drive(src string, run, simulate bool) error {
	asmText, err := cc.Compile(src)
	if err != nil {
		return err
	}
	if !run && !simulate {
		fmt.Print(asmText)
		return nil
	}
	prog, err := cc.CompileAndAssemble(src)
	if err != nil {
		return err
	}
	if run {
		m := emu.New(prog, 0)
		for !m.Halted && m.Count < 50_000_000 {
			if err := m.Step(nil); err != nil {
				return err
			}
		}
		if !m.Halted {
			return fmt.Errorf("instruction limit reached without halt")
		}
		fmt.Printf("main returned %d (%d instructions executed)\n",
			m.Regs[isa.V0], m.Count)
		return nil
	}
	bench, err := speculate.Prepare("minicc", prog, 50_000_000)
	if err != nil {
		return err
	}
	fmt.Printf("%d static instrs, %d dynamic instrs, %d spawn points\n",
		len(prog.Code), bench.Trace.Len(), len(bench.Analysis.Spawns))
	base, err := bench.RunSuperscalar()
	if err != nil {
		return err
	}
	res, err := bench.RunPolicy(core.PolicyPostdoms, machine.PolyFlowConfig())
	if err != nil {
		return err
	}
	fmt.Printf("superscalar IPC %.2f; polyflow/postdoms IPC %.2f (%+.1f%%)\n",
		base.IPC, res.IPC, speculate.SpeedupPct(base, res))
	return nil
}
