// Command minicc compiles a mini-C source file (see internal/cc) to the
// repository's assembly, and can run it or push it through the full
// spawn-analysis + simulation pipeline.
//
// Usage:
//
//	minicc prog.c                 # print generated assembly
//	minicc -run prog.c            # compile, execute, print main's result
//	minicc -simulate prog.c       # compile, analyze, compare machines
//
// Output format:
//
//   - default: the generated assembly text on stdout, nothing else.
//   - -run: one line on stdout, "main returned <v> (<n> instructions
//     executed)".
//   - -simulate: two lines on stdout — "<s> static instrs, <d> dynamic
//     instrs, <k> spawn points" then "superscalar IPC <x>; polyflow/postdoms
//     IPC <y> (<pct>%)".
//
// On any failure (unreadable file, compile error, runtime fault) minicc
// prints a single "minicc: <reason>" diagnostic line to stderr and exits
// with status 1; internal panics are caught and reported the same way.
// Bad usage exits with status 2.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/machine"
)

func main() {
	run := flag.Bool("run", false, "execute the program and print main's return value")
	simulate := flag.Bool("simulate", false, "simulate superscalar vs PolyFlow")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: minicc [-run|-simulate] file.c

  (default)  print the generated assembly on stdout
  -run       print "main returned <v> (<n> instructions executed)"
  -simulate  print the static/dynamic/spawn summary line, then
             "superscalar IPC <x>; polyflow/postdoms IPC <y> (<pct>%)"

errors are reported as one "minicc: <reason>" line on stderr, exit 1`)
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	if err := drive(string(src), *run, *simulate); err != nil {
		fail(err)
	}
}

// fail prints a single-line diagnostic and exits non-zero. Multi-line
// error text is collapsed so shell pipelines and editors see exactly one
// line per failure.
func fail(err error) {
	msg := strings.Join(strings.Fields(err.Error()), " ")
	fmt.Fprintln(os.Stderr, "minicc:", msg)
	os.Exit(1)
}

// drive runs the selected mode, converting any internal panic from the
// compiler or machine layers into an ordinary error so the process never
// dies with a bare stack trace on user input.
func drive(src string, run, simulate bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("internal error: %v", r)
		}
	}()
	asmText, err := cc.Compile(src)
	if err != nil {
		return err
	}
	if !run && !simulate {
		fmt.Print(asmText)
		return nil
	}
	prog, err := cc.CompileAndAssemble(src)
	if err != nil {
		return err
	}
	if run {
		m := emu.New(prog, 0)
		for !m.Halted && m.Count < 50_000_000 {
			if err := m.Step(nil); err != nil {
				return err
			}
		}
		if !m.Halted {
			return fmt.Errorf("instruction limit reached without halt")
		}
		fmt.Printf("main returned %d (%d instructions executed)\n",
			m.Regs[isa.V0], m.Count)
		return nil
	}
	bench, err := speculate.Prepare("minicc", prog, 50_000_000)
	if err != nil {
		return err
	}
	fmt.Printf("%d static instrs, %d dynamic instrs, %d spawn points\n",
		len(prog.Code), bench.Trace.Len(), len(bench.Analysis.Spawns))
	base, err := bench.RunSuperscalar()
	if err != nil {
		return err
	}
	res, err := bench.RunPolicy(core.PolicyPostdoms, machine.PolyFlowConfig())
	if err != nil {
		return err
	}
	fmt.Printf("superscalar IPC %.2f; polyflow/postdoms IPC %.2f (%+.1f%%)\n",
		base.IPC, res.IPC, speculate.SpeedupPct(base, res))
	return nil
}
