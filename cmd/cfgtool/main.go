// Command cfgtool dumps the static analyses — control flow graph,
// postdominator tree, control dependence graph, and spawn points — for an
// assembly program, or for the paper's running example (Figures 1-3).
//
// Usage:
//
//	cfgtool -example paper          # the loop-with-if-then-else of Figure 1
//	cfgtool -file prog.s            # analyze an assembly file
//	cfgtool -bench twolf            # analyze a built-in workload
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/workloads"
)

// paperExample is an assembly rendering of the paper's Figure 1: a loop
// containing an if-then-else. Blocks A..F match the figure.
const paperExample = `# Figure 1: loop containing an if-then-else
        .func main
A:      addi $t9, $t9, 1          # block A
B:      andi $t0, $t9, 1          # block B
        beq  $t0, $zero, D
C:      addi $s0, $s0, 1          # block C
        j    E
D:      addi $s0, $s0, 2          # block D
E:      add  $s1, $s1, $s0        # block E
F:      slti $t1, $t9, 10         # block F
        bne  $t1, $zero, A
        halt
`

func main() {
	example := flag.String("example", "", `"paper" prints the Figure 1-3 analyses`)
	file := flag.String("file", "", "assembly file to analyze")
	bench := flag.String("bench", "", "built-in workload to analyze")
	flag.Parse()

	var src, name string
	switch {
	case *example == "paper":
		src, name = paperExample, "paper-figure-1"
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		src, name = string(data), *file
	case *bench != "":
		w, ok := workloads.ByName(*bench)
		if !ok {
			fail(fmt.Errorf("unknown workload %q (have %v)", *bench, workloads.AllNames()))
		}
		src, name = w.Source, w.Name
	default:
		flag.Usage()
		os.Exit(2)
	}

	prog, err := asm.Assemble(src)
	if err != nil {
		fail(err)
	}
	an, err := core.Analyze(prog, nil)
	if err != nil {
		fail(err)
	}
	fmt.Printf("=== %s: %d instructions, %d functions ===\n\n", name, len(prog.Code), len(an.Funcs))
	for _, fa := range an.Funcs {
		dumpFunc(prog, fa)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cfgtool:", err)
	os.Exit(1)
}

func blockName(prog *isa.Program, fa *core.FuncAnalysis, id int) string {
	b := fa.Graph.Blocks[id]
	if b.Virtual {
		return "<exit>"
	}
	return fmt.Sprintf("B%d(%s)", id, prog.SymbolFor(b.Start))
}

func dumpFunc(prog *isa.Program, fa *core.FuncAnalysis) {
	g := fa.Graph
	fmt.Printf("--- function %s ---\n", prog.SymbolFor(g.FuncEntry))
	fmt.Println("control flow graph:")
	fmt.Print(g.Dump())

	fmt.Println("postdominator tree (node <- immediate postdominator):")
	for _, b := range g.Blocks {
		if b.Virtual {
			continue
		}
		ip := fa.PDom.IDom[b.ID]
		if ip < 0 {
			fmt.Printf("  %s <- (none)\n", blockName(prog, fa, b.ID))
			continue
		}
		fmt.Printf("  %s <- %s\n", blockName(prog, fa, b.ID), blockName(prog, fa, ip))
	}

	fmt.Println("control dependences (branch -> dependent blocks):")
	for _, b := range g.Blocks {
		if b.Virtual || len(fa.CDG.Controls[b.ID]) == 0 {
			continue
		}
		deps := append([]int(nil), fa.CDG.Controls[b.ID]...)
		sort.Ints(deps)
		fmt.Printf("  %s ->", blockName(prog, fa, b.ID))
		for _, x := range deps {
			fmt.Printf(" %s", blockName(prog, fa, x))
		}
		fmt.Println()
	}

	if len(fa.Loops.Loops) > 0 {
		fmt.Println("natural loops:")
		for _, l := range fa.Loops.Loops {
			fmt.Printf("  header %s depth %d latches %v body %d blocks\n",
				blockName(prog, fa, l.Header), l.Depth, l.Latches, len(l.Body))
		}
	}

	if len(fa.Spawns) > 0 {
		fmt.Println("control-equivalent spawn points:")
		for _, s := range fa.Spawns {
			fmt.Printf("  %-8s 0x%x (%s) -> 0x%x (%s)\n", s.Kind,
				s.From, prog.SymbolFor(s.From), s.Target, prog.SymbolFor(s.Target))
		}
	}
	fmt.Println()
}
