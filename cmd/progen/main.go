// Command progen reproduces and minimizes failures found by the
// generative verification subsystem (internal/progen).
//
// Every oracle failure in the test suite and the fuzz targets prints a
// seed and a ready-to-run command line:
//
//	go run ./cmd/progen -tier minic -seed 1234            # re-run the oracles
//	go run ./cmd/progen -tier minic -seed 1234 -dump      # print the generated case
//	go run ./cmd/progen -tier minic -seed 1234 -minimize  # shrink to a standalone case
//	go run ./cmd/progen -tier cfg -seed 0 -count 10000    # sweep a seed range
//
// Tiers: cfg (graph analyses), minic (compiler pipeline), isa (assembler/
// emulator/analysis), machine (scheduler differential). Generation is a
// pure function of the seed, so the dumped case is byte-identical on
// every run and every platform. Exit status is 1 when any seed fails.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/progen"
)

func main() {
	var (
		tier     = flag.String("tier", "cfg", "tier to run: cfg, minic, isa, machine")
		seed     = flag.Uint64("seed", 0, "generator seed (start of range with -count)")
		count    = flag.Uint64("count", 1, "number of consecutive seeds to check")
		dump     = flag.Bool("dump", false, "print the generated case instead of checking it")
		minimize = flag.Bool("minimize", false, "on failure, greedily shrink to a standalone case")
	)
	flag.Parse()

	check, ok := map[string]func(uint64) error{
		"cfg":     progen.CheckCFGSeed,
		"minic":   progen.CheckMiniCSeed,
		"isa":     progen.CheckAsmSeed,
		"machine": progen.CheckMachineSeed,
	}[*tier]
	if !ok {
		fmt.Fprintf(os.Stderr, "progen: unknown tier %q (want cfg, minic, isa, machine)\n", *tier)
		os.Exit(2)
	}

	if *dump {
		fmt.Print(dumpCase(*tier, *seed))
		return
	}

	failures := 0
	for s := *seed; s < *seed+*count; s++ {
		err := check(s)
		if err == nil {
			continue
		}
		failures++
		fmt.Fprintf(os.Stderr, "FAIL %v\n", err)
		if *minimize {
			fmt.Println(minimizeCase(*tier, s))
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "progen: %d of %d seed(s) failed\n", failures, *count)
		os.Exit(1)
	}
	if *count > 1 {
		fmt.Printf("progen: %d seeds OK (tier %s, seeds %d..%d)\n", *count, *tier, *seed, *seed+*count-1)
	} else {
		fmt.Printf("progen: seed %d OK (tier %s)\n", *seed, *tier)
	}
}

func dumpCase(tier string, seed uint64) string {
	switch tier {
	case "cfg":
		return progen.GenCFG(seed).Dump()
	case "minic":
		return progen.GenMiniC(seed)
	default: // isa, machine share the Tier-3 generator
		return progen.GenAsm(seed)
	}
}

// minimizeCase greedily shrinks the failing case at the generation level
// (graph nodes/edges, MiniC statements, assembly shapes) and returns the
// smallest still-failing standalone form.
func minimizeCase(tier string, seed uint64) string {
	switch tier {
	case "cfg":
		m := progen.MinimizeCFG(progen.GenCFG(seed), func(c *progen.CFG) bool {
			return progen.CheckCFG(c) != nil
		})
		return "minimized failing graph:\n" + m.Dump()
	case "minic":
		src, failed := progen.MinimizeMiniCSeed(seed)
		if !failed {
			return "minimizer: value oracle passes standalone; dumping the full case:\n" + src
		}
		return "minimized failing program:\n" + src
	case "isa":
		src, _ := progen.MinimizeAsmSeed(seed, func(s string) bool {
			return progen.CheckAsmSource(s) != nil
		})
		return "minimized failing program:\n" + src
	default: // machine
		src, _ := progen.MinimizeAsmSeed(seed, func(s string) bool {
			return progen.CheckMachineSource(s) != nil
		})
		return "minimized failing program:\n" + src
	}
}
