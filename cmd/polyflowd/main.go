// Command polyflowd serves PolyFlow simulations over HTTP: clients submit
// (bench, policy) jobs, poll status, stream progress via SSE, and fetch
// results and attribution reports. Jobs run on a bounded worker pool
// (reject-when-full answers 429) and results are memoized in the
// content-addressed artifact cache, shared on disk with
// `experiments -cache-dir`.
//
// Usage:
//
//	polyflowd -addr :8080 -cache-dir /var/cache/polyflow
//	polyflowd -addr 127.0.0.1:0 -workers 4 -queue-depth 128
//
// Cluster mode (see docs/SERVICE.md "Cluster mode"): one daemon runs as the
// coordinator, fanning each submitted cell out to registered worker daemons
// over a consistent-hash ring keyed by trace artifact; workers join with
// -join and prefetch each workload's trace from the coordinator so every
// workload is decoded once cluster-wide.
//
//	polyflowd -addr :8180 -coordinator                    # coordinator
//	polyflowd -addr :8181 -join http://host:8180          # worker ×N
//	polyflowd -addr :8182 -join http://host:8180 \
//	    -advertise http://10.0.0.2:8182                   # explicit callback URL
//
// Submit and fetch with curl:
//
//	curl -s -X POST localhost:8080/v1/jobs \
//	  -d '{"bench":"gzip","policy":"postdoms"}'
//	curl -s localhost:8080/v1/jobs/<id>
//	curl -s localhost:8080/v1/jobs/<id>/attrib
//
// Observability (see docs/OBSERVABILITY.md "Fleet observability"):
// structured logs go to stderr (-log-level, -log-format json|text),
// GET /metrics?format=prometheus serves the Prometheus exposition,
// GET /v1/jobs/{id}/spans serves each job's phase-span timeline, and
// -pprof-addr starts an optional net/http/pprof listener. /readyz answers
// 200 only once the daemon serves traffic (a worker waits for its
// coordinator registration), distinct from the /healthz liveness probe.
//
// SIGINT/SIGTERM drain gracefully: intake stops (submissions answer 503),
// accepted jobs finish (bounded by -drain-timeout), then the process exits.
// See docs/SERVICE.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/cluster"
	"repro/internal/jobqueue"
	"repro/internal/obs"
	"repro/internal/server"
)

type options struct {
	addr         string
	cacheDir     string
	workers      int
	queueDepth   int
	drainTimeout time.Duration

	logLevel  string
	logFormat string
	pprofAddr string

	coordinator    bool
	clusterWorkers []string
	clusterWindow  int
	join           string
	advertise      string
}

func main() {
	var o options
	var workerList string
	flag.StringVar(&o.addr, "addr", ":8080", "listen address (host:port; :0 picks a free port)")
	flag.StringVar(&o.cacheDir, "cache-dir", "", "on-disk artifact cache root (empty = memory-only cache)")
	flag.IntVar(&o.workers, "workers", 0, "simulation workers (0 = GOMAXPROCS; coordinator mode defaults to 32 dispatchers)")
	flag.IntVar(&o.queueDepth, "queue-depth", 64, "queued-job bound; submissions beyond it answer 429")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "how long a shutdown signal waits for running jobs before canceling them")
	flag.StringVar(&o.logLevel, "log-level", "info", "structured log level: debug, info, warn, error")
	flag.StringVar(&o.logFormat, "log-format", "text", "structured log format: text or json")
	flag.StringVar(&o.pprofAddr, "pprof-addr", "", "optional net/http/pprof listen address (e.g. 127.0.0.1:6060); empty disables profiling")
	flag.BoolVar(&o.coordinator, "coordinator", false, "run as a cluster coordinator: fan submitted cells out to registered workers instead of simulating locally")
	flag.StringVar(&workerList, "cluster-workers", "", "comma-separated worker base URLs to pre-register (coordinator mode; workers may also self-register via -join)")
	flag.IntVar(&o.clusterWindow, "cluster-window", 0, "per-worker in-flight cell bound (coordinator mode; 0 = default)")
	flag.StringVar(&o.join, "join", "", "coordinator base URL to register with (worker mode); traces are prefetched from it so each workload is decoded once cluster-wide")
	flag.StringVar(&o.advertise, "advertise", "", "base URL the coordinator should reach this worker at (default: derived from the listen address)")
	flag.Parse()
	if workerList != "" {
		for _, w := range strings.Split(workerList, ",") {
			if w = strings.TrimSpace(w); w != "" {
				o.clusterWorkers = append(o.clusterWorkers, w)
			}
		}
	}
	if o.coordinator && o.join != "" {
		fmt.Fprintln(os.Stderr, "polyflowd: -coordinator and -join are mutually exclusive")
		os.Exit(1)
	}

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "polyflowd:", err)
		os.Exit(1)
	}
}

// advertiseURL derives the base URL a coordinator can call this daemon
// back on. An explicit -advertise wins; otherwise the listener's port is
// combined with a loopback or the listener's own host.
func advertiseURL(explicit string, ln net.Listener) string {
	if explicit != "" {
		return strings.TrimRight(explicit, "/")
	}
	host, port, err := net.SplitHostPort(ln.Addr().String())
	if err != nil {
		return "http://" + ln.Addr().String()
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

func run(o options) error {
	logger, err := obs.NewLogger(os.Stderr, o.logLevel, o.logFormat)
	if err != nil {
		return err
	}

	cache, err := artifact.New(artifact.Options{Dir: o.cacheDir})
	if err != nil {
		return err
	}

	var coord *cluster.Coordinator
	cfg := server.Config{Cache: cache, Logger: logger}
	poolWorkers := o.workers
	if o.coordinator {
		coord = cluster.New(cluster.Options{Window: o.clusterWindow, Logger: logger})
		defer coord.Close()
		for _, w := range o.clusterWorkers {
			if err := coord.AddWorker(w); err != nil {
				return err
			}
		}
		// Dispatch blocks pool workers on HTTP I/O, not CPU: oversubscribe.
		if poolWorkers == 0 {
			poolWorkers = 32
		}
		cfg.Runner = coord.Runner()
		cfg.MetricsExtra = coord.FillMetrics
	}
	if o.join != "" {
		// Worker mode: fetch each requested workload's trace artifact from
		// the coordinator before falling back to local emulation. /readyz
		// stays 503 until the coordinator registration succeeds.
		cfg.TraceUpstream = &server.Client{Base: strings.TrimRight(o.join, "/"), Retry: server.DefaultRetry()}
		cfg.StartUnready = true
	}

	pool := jobqueue.New(jobqueue.Config{Workers: poolWorkers, QueueDepth: o.queueDepth, Logger: logger})
	cfg.Pool = pool
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}

	handler := http.Handler(srv)
	if coord != nil {
		mux := http.NewServeMux()
		mux.Handle("/v1/cluster/", coord.Handler())
		mux.Handle("/", srv)
		handler = mux
	}
	httpSrv := &http.Server{Handler: handler}
	mode := "standalone"
	if o.coordinator {
		mode = "coordinator"
	} else if o.join != "" {
		mode = "worker"
	}
	log.Printf("polyflowd: listening on %s (mode=%s workers=%d queue-depth=%d cache-dir=%q)",
		ln.Addr(), mode, pool.Stats().Workers, o.queueDepth, o.cacheDir)

	var pprofSrv *http.Server
	if o.pprofAddr != "" {
		// A dedicated mux (not http.DefaultServeMux) keeps the profiling
		// surface off the service listener and trivially firewallable.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", o.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		pprofSrv = &http.Server{Handler: pmux}
		log.Printf("polyflowd: pprof listening on %s", pln.Addr())
		go func() {
			if err := pprofSrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("polyflowd: pprof server: %v", err)
			}
		}()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	var adv string
	if o.join != "" {
		adv = advertiseURL(o.advertise, ln)
		regCtx, regCancel := context.WithCancel(context.Background())
		defer regCancel()
		go func() {
			if err := cluster.Register(regCtx, o.join, adv, nil); err != nil {
				log.Printf("polyflowd: registering with %s as %s: %v", o.join, adv, err)
				return
			}
			log.Printf("polyflowd: registered with coordinator %s as %s", o.join, adv)
			srv.SetReady(true)
		}()
	}

	select {
	case sig := <-sigCh:
		log.Printf("polyflowd: %s received, draining (timeout %s)", sig, o.drainTimeout)
	case err := <-serveErr:
		pool.Close()
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if o.join != "" {
		// Leave the ring before draining so the coordinator stops routing
		// new cells here instead of discovering the death by heartbeat.
		if err := cluster.Deregister(ctx, o.join, adv, nil); err != nil {
			log.Printf("polyflowd: deregistering from %s: %v", o.join, err)
		}
	}
	// Drain first: intake flips to 503 and running jobs finish (SSE streams
	// close), so the subsequent HTTP shutdown has no long-lived handlers to
	// wait out.
	if err := srv.Drain(ctx); err != nil {
		log.Printf("polyflowd: drain deadline hit, canceled remaining jobs: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("polyflowd: http shutdown: %v", err)
	}
	if pprofSrv != nil {
		pprofSrv.Close()
	}
	pool.Close()
	log.Printf("polyflowd: drained, exiting")
	return nil
}
