// Command polyflowd serves PolyFlow simulations over HTTP: clients submit
// (bench, policy) jobs, poll status, stream progress via SSE, and fetch
// results and attribution reports. Jobs run on a bounded worker pool
// (reject-when-full answers 429) and results are memoized in the
// content-addressed artifact cache, shared on disk with
// `experiments -cache-dir`.
//
// Usage:
//
//	polyflowd -addr :8080 -cache-dir /var/cache/polyflow
//	polyflowd -addr 127.0.0.1:0 -workers 4 -queue-depth 128
//
// Submit and fetch with curl:
//
//	curl -s -X POST localhost:8080/v1/jobs \
//	  -d '{"bench":"gzip","policy":"postdoms"}'
//	curl -s localhost:8080/v1/jobs/<id>
//	curl -s localhost:8080/v1/jobs/<id>/attrib
//
// SIGINT/SIGTERM drain gracefully: intake stops (submissions answer 503),
// accepted jobs finish (bounded by -drain-timeout), then the process exits.
// See docs/SERVICE.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/jobqueue"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
	cacheDir := flag.String("cache-dir", "", "on-disk artifact cache root (empty = memory-only cache)")
	workers := flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 64, "queued-job bound; submissions beyond it answer 429")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a shutdown signal waits for running jobs before canceling them")
	flag.Parse()

	if err := run(*addr, *cacheDir, *workers, *queueDepth, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "polyflowd:", err)
		os.Exit(1)
	}
}

func run(addr, cacheDir string, workers, queueDepth int, drainTimeout time.Duration) error {
	cache, err := artifact.New(artifact.Options{Dir: cacheDir})
	if err != nil {
		return err
	}
	pool := jobqueue.New(jobqueue.Config{Workers: workers, QueueDepth: queueDepth})
	srv, err := server.New(server.Config{Pool: pool, Cache: cache})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	log.Printf("polyflowd: listening on %s (workers=%d queue-depth=%d cache-dir=%q)",
		ln.Addr(), pool.Stats().Workers, queueDepth, cacheDir)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case sig := <-sigCh:
		log.Printf("polyflowd: %s received, draining (timeout %s)", sig, drainTimeout)
	case err := <-serveErr:
		pool.Close()
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Drain first: intake flips to 503 and running jobs finish (SSE streams
	// close), so the subsequent HTTP shutdown has no long-lived handlers to
	// wait out.
	if err := srv.Drain(ctx); err != nil {
		log.Printf("polyflowd: drain deadline hit, canceled remaining jobs: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("polyflowd: http shutdown: %v", err)
	}
	pool.Close()
	log.Printf("polyflowd: drained, exiting")
	return nil
}
