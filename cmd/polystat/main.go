// Command polystat renders and compares spawn-site attribution reports
// produced by polyflow -attrib and experiments -attrib-dir.
//
// Usage:
//
//	polystat report gzip.attrib.json
//	polystat report -top 5 gzip.attrib.json
//	polystat diff before.attrib.json after.attrib.json
//	polystat diff -fail-on-diff golden.attrib.json new.attrib.json
//
// report prints one run's per-category rollup and its top sites by
// credited cycles; diff ranks the sites of two runs by credited-cycle
// movement and summarizes per-category drift. With -fail-on-diff, diff
// exits 1 when the two reports differ in any counter (the CI regression
// gate). See docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/attrib"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "report":
		err = reportCmd(os.Args[2:])
	case "diff":
		err = diffCmd(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "polystat: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "polystat:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  polystat report [-top N] run.attrib.json
  polystat diff [-top N] [-fail-on-diff] a.attrib.json b.attrib.json`)
}

func reportCmd(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	top := fs.Int("top", 10, "number of sites to list, ranked by credited cycles")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("report wants exactly one attribution JSON file, got %d args", fs.NArg())
	}
	rep, err := attrib.ReadReportFile(fs.Arg(0))
	if err != nil {
		return err
	}
	return rep.WriteText(os.Stdout, *top)
}

func diffCmd(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	top := fs.Int("top", 10, "number of sites to list, ranked by credited-cycle movement")
	failOnDiff := fs.Bool("fail-on-diff", false, "exit 1 when the reports differ in any counter")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff wants exactly two attribution JSON files, got %d args", fs.NArg())
	}
	a, err := attrib.ReadReportFile(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := attrib.ReadReportFile(fs.Arg(1))
	if err != nil {
		return err
	}
	d := attrib.DiffReports(a, b)
	if err := d.WriteText(os.Stdout, *top); err != nil {
		return err
	}
	if *failOnDiff && d.Changed() {
		return fmt.Errorf("reports differ (%d sites changed)", len(d.Sites))
	}
	return nil
}
