// Command polytune searches for per-site spawn-mask configurations that
// beat a policy's default spawn behavior, by closing the attribution loop:
// rank spawn sites by wasted cycles, suppress the worst offenders, and keep
// every suppression that strictly reduces the cycle count.
//
// Usage:
//
//	polytune search -bench gzip -policy postdoms -o gzip.tune.json
//	polytune search -bench gzip -daemon http://127.0.0.1:8080 -rounds 4
//	polytune replay gzip.tune.json
//	polytune diff -fail-on-regress golden.tune.json new.tune.json
//
// search runs the greedy search locally (through the artifact cache when
// -cache-dir is set) or against a polyflowd daemon (-daemon), and writes a
// polyflow-tune/1 trajectory. replay prints a recorded trajectory. diff
// compares two trajectories, ignoring cache hits; -fail-on-regress exits 1
// only when the new best cycle count is worse (the CI gate), -fail-on-diff
// when anything but cache hits moved. See docs/TUNING.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro"
	"repro/internal/artifact"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/tune"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "search":
		err = searchCmd(os.Args[2:])
	case "replay":
		err = replayCmd(os.Args[2:])
	case "diff":
		err = diffCmd(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "polytune: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "polytune:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  polytune search -bench B -policy P [-seed N] [-rounds N] [-top N] [-explore N]
                  [-min-gain N] [-cache-dir DIR | -daemon URL] [-o FILE] [-q]
                  [-log-level LEVEL] [-log-format text|json]
  polytune replay trajectory.json
  polytune diff [-fail-on-regress] [-fail-on-diff] golden.json new.json`)
}

func searchCmd(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	bench := fs.String("bench", "gzip", "workload to tune")
	policy := fs.String("policy", "postdoms", "spawn policy to tune (not superscalar)")
	seed := fs.Uint64("seed", 1, "exploration seed (only consulted when -explore > 0)")
	rounds := fs.Int("rounds", 8, "maximum accepted suppressions")
	top := fs.Int("top", 4, "worst-offender candidates per round")
	explore := fs.Int("explore", 0, "extra seeded-random candidates per round")
	minGain := fs.Int64("min-gain", 1, "cycles a candidate must save to be accepted")
	cacheDir := fs.String("cache-dir", "", "memoize local evaluations in this artifact cache")
	daemon := fs.String("daemon", "", "evaluate on a polyflowd daemon (or cluster coordinator) at this base URL")
	out := fs.String("o", "", "write the trajectory JSON here (default stdout)")
	quiet := fs.Bool("q", false, "suppress per-evaluation progress on stderr")
	logLevel := fs.String("log-level", "", "emit structured logs to stderr at this level (debug, info, warn, error; empty = off)")
	logFormat := fs.String("log-format", "text", "structured log format: text or json")
	fs.Parse(args)

	if *policy == "superscalar" {
		return fmt.Errorf("the superscalar baseline has no spawn sites to tune")
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	opts := tune.Options{
		Bench: *bench, Policy: *policy,
		Seed: *seed, Rounds: *rounds, TopK: *top,
		Explore: *explore, MinGain: *minGain,
	}
	if !*quiet {
		opts.Log = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}
	if *logLevel != "" {
		logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
		if err != nil {
			return err
		}
		opts.Logger = logger
	}

	var ev tune.Evaluator
	if *daemon != "" {
		ev = &tune.RemoteEvaluator{
			Client: &server.Client{Base: *daemon, Retry: server.DefaultRetry()},
			Bench:  *bench,
			Policy: *policy,
		}
	} else {
		b, err := speculate.Load(*bench)
		if err != nil {
			return err
		}
		local := &tune.LocalEvaluator{Bench: b, Policy: *policy}
		if *cacheDir != "" {
			cache, err := artifact.New(artifact.Options{Dir: *cacheDir})
			if err != nil {
				return err
			}
			local.Cache = cache
		}
		ev = local
	}

	traj, err := tune.Search(ctx, ev, opts)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := traj.WriteFile(*out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
		printSummary(traj)
		return nil
	}
	return traj.WriteJSON(os.Stdout)
}

func printSummary(t *tune.Trajectory) {
	mask := t.BestMask
	if mask == "" {
		mask = "(empty)"
	}
	fmt.Fprintf(os.Stderr, "%s/%s: %d -> %d cycles (%.2f%% saved), mask %s, %d evaluations\n",
		t.Bench, t.Policy, t.BaselineCycles, t.BestCycles, t.GainPct(), mask, len(t.Steps))
}

func replayCmd(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("replay wants exactly one trajectory file, got %d args", fs.NArg())
	}
	t, err := tune.ReadTrajectoryFile(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("%s/%s  seed=%d rounds=%d top=%d explore=%d min-gain=%d\n",
		t.Bench, t.Policy, t.Seed, t.Rounds, t.TopK, t.Explore, t.MinGain)
	for _, s := range t.Steps {
		marker := " "
		if s.Accepted {
			marker = "*"
		}
		site := s.Site
		if site == "" {
			site = "(baseline)"
		}
		hit := ""
		if s.CacheHit {
			hit = "  [cached]"
		}
		fmt.Printf("%s round %-2d %-22s %10d cycles%s\n", marker, s.Round, site, s.Cycles, hit)
	}
	fmt.Printf("best: %d -> %d cycles (%.2f%% saved), mask %q\n",
		t.BaselineCycles, t.BestCycles, t.GainPct(), t.BestMask)
	return nil
}

func diffCmd(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	failOnRegress := fs.Bool("fail-on-regress", false, "exit 1 when the new trajectory's best cycles are worse")
	failOnDiff := fs.Bool("fail-on-diff", false, "exit 1 when the trajectories differ at all (cache hits excluded)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff wants exactly two trajectory files, got %d args", fs.NArg())
	}
	old, err := tune.ReadTrajectoryFile(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := tune.ReadTrajectoryFile(fs.Arg(1))
	if err != nil {
		return err
	}
	d := tune.Compare(old, cur)
	if !d.Changed() {
		fmt.Printf("trajectories match: best %d cycles, mask %q\n", cur.BestCycles, cur.BestMask)
		return nil
	}
	for _, line := range d.Lines {
		fmt.Println(line)
	}
	fmt.Printf("best cycles: %d -> %d\n", d.OldBest, d.NewBest)
	if *failOnDiff {
		return fmt.Errorf("trajectories differ")
	}
	if *failOnRegress && d.Regressed() {
		return fmt.Errorf("regression: best cycles %d -> %d", d.OldBest, d.NewBest)
	}
	return nil
}
