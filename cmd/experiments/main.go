// Command experiments regenerates the paper's evaluation figures as text
// tables.
//
// Usage:
//
//	experiments                   # all figures, text tables
//	experiments -fig 9            # a single figure (5, 8, 9, 10, 11, 12)
//	experiments -fig 9 -format csv
//	experiments -fig 12 -format json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

var format = flag.String("format", "text", "output format: text, csv, or json (csv/json for figures 5 and 9-12)")

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (0 = all)")
	flag.Parse()

	want := func(n int) bool { return *fig == 0 || *fig == n }
	if err := run(want); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func emitSpeedup(t *harness.SpeedupTable) error {
	switch *format {
	case "csv":
		return t.WriteCSV(os.Stdout)
	case "json":
		return t.WriteJSON(os.Stdout)
	default:
		fmt.Println(t.Format())
		return nil
	}
}

func run(want func(int) bool) error {
	if want(5) {
		rows, err := harness.Figure5()
		if err != nil {
			return err
		}
		if *format == "csv" {
			if err := harness.WriteFigure5CSV(os.Stdout, rows); err != nil {
				return err
			}
		} else {
			fmt.Println(harness.FormatFigure5(rows))
		}
	}
	if want(8) {
		fmt.Println(harness.Figure8())
	}
	if want(9) {
		t, err := harness.Figure9()
		if err != nil {
			return err
		}
		if err := emitSpeedup(t); err != nil {
			return err
		}
	}
	if want(10) {
		t, err := harness.Figure10()
		if err != nil {
			return err
		}
		if err := emitSpeedup(t); err != nil {
			return err
		}
	}
	if want(11) {
		t, err := harness.Figure11()
		if err != nil {
			return err
		}
		if *format == "csv" {
			if err := t.WriteCSV(os.Stdout); err != nil {
				return err
			}
		} else {
			fmt.Println(t.Format())
		}
	}
	if want(12) {
		t, err := harness.Figure12()
		if err != nil {
			return err
		}
		if err := emitSpeedup(t); err != nil {
			return err
		}
	}
	return nil
}
