// Command experiments regenerates the paper's evaluation figures as text
// tables.
//
// Usage:
//
//	experiments                   # all figures, text tables
//	experiments -fig 9            # a single figure (5, 8, 9, 10, 11, 12)
//	experiments -fig 9 -format csv
//	experiments -fig 12 -format json
//	experiments -fig 9 -bench twolf -policy postdoms -trace-dir out/
//	experiments -fig 9 -attrib-dir attrib/
//	experiments -cache-dir ~/.cache/polyflow   # reruns hit the artifact cache
//	experiments -trace-cache ~/.cache/polyflow # decode each workload's trace once
//	experiments -fig 9 -cluster http://127.0.0.1:8180  # run the grid on a polyflowd (coordinator or single daemon)
//
// -bench and -policy take comma-separated lists and narrow the grid to the
// named cells; -trace-dir attaches telemetry to every simulated cell and
// writes a Chrome trace (Perfetto-loadable) plus a metrics summary per cell
// into the directory; -attrib-dir writes a per-spawn-site attribution
// report (JSON, for polystat) per cell; -cache-dir memoizes every cell in a
// content-addressed artifact cache shared with polyflowd, so unchanged
// cells are decoded instead of resimulated. See docs/OBSERVABILITY.md and
// docs/SERVICE.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/artifact"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/server"
)

var (
	format        = flag.String("format", "text", "output format: text, csv, or json (csv/json for figures 5 and 9-12)")
	bench         = flag.String("bench", "", "comma-separated benchmark filter (default: all)")
	family        = flag.String("family", "", `workload family for the grid: "synthetic" (default) or "kernels"`)
	policy        = flag.String("policy", "", "comma-separated policy filter (default: all)")
	traces        = flag.String("trace-dir", "", "write per-cell Chrome traces and metrics summaries into this directory")
	attribs       = flag.String("attrib-dir", "", "write per-cell spawn-site attribution reports (JSON) into this directory")
	cacheDir      = flag.String("cache-dir", "", "memoize simulations in a content-addressed artifact cache rooted at this directory")
	traceCacheDir = flag.String("trace-cache", "", "store workload traces as polyflow-trace/1 artifacts in a cache rooted at this directory (decode once, simulate many; defaults to -cache-dir when set)")
	cluster       = flag.String("cluster", "", "execute every cell on a remote polyflowd (single daemon or cluster coordinator) at this base URL instead of simulating locally")
	maskStr       = flag.String("mask", "", `suppress spawn sites in every PolyFlow cell, e.g. "0x40:loop" (polytune emits these; the superscalar column stays unmasked)`)
	logLevel      = flag.String("log-level", "", "emit structured logs to stderr at this level (debug, info, warn, error; empty = off)")
	logFormat     = flag.String("log-format", "text", "structured log format: text or json")
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (0 = all)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (see docs/PERFORMANCE.md)")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	want := func(n int) bool { return *fig == 0 || *fig == n }
	o, err := options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if err := run(want, o); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle live heap before snapshotting
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}

// options assembles the harness Options from the filter flags.
func options() (harness.Options, error) {
	o := harness.Options{
		Benches:   splitList(*bench),
		Family:    *family,
		Policies:  splitList(*policy),
		TraceDir:  *traces,
		AttribDir: *attribs,
	}
	if *logLevel != "" {
		logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
		if err != nil {
			return o, err
		}
		o.Logger = logger
	}
	mask, err := machine.ParseSpawnMask(*maskStr)
	if err != nil {
		return o, err
	}
	o.SpawnMask = mask
	if *cacheDir != "" {
		cache, err := artifact.New(artifact.Options{Dir: *cacheDir})
		if err != nil {
			return o, err
		}
		o.Cache = cache
	}
	if *traceCacheDir != "" {
		// The trace cache falls back to o.Cache when unset, so this flag
		// only matters for a separate trace-artifact directory.
		cache, err := artifact.New(artifact.Options{Dir: *traceCacheDir})
		if err != nil {
			return o, err
		}
		o.TraceCache = cache
	}
	if *cluster != "" {
		if *traces != "" {
			return o, fmt.Errorf("-trace-dir needs a live local run and cannot combine with -cluster")
		}
		o.Remote = &server.Client{Base: strings.TrimRight(*cluster, "/"), Retry: server.DefaultRetry()}
	}
	return o, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func emitSpeedup(t *harness.SpeedupTable) error {
	switch *format {
	case "csv":
		return t.WriteCSV(os.Stdout)
	case "json":
		return t.WriteJSON(os.Stdout)
	default:
		fmt.Println(t.Format())
		return nil
	}
}

func run(want func(int) bool, o harness.Options) error {
	if want(5) {
		rows, err := harness.Figure5Opts(o)
		if err != nil {
			return err
		}
		if *format == "csv" {
			if err := harness.WriteFigure5CSV(os.Stdout, rows); err != nil {
				return err
			}
		} else {
			fmt.Println(harness.FormatFigure5(rows))
		}
	}
	if want(8) {
		fmt.Println(harness.Figure8())
	}
	if want(9) {
		t, err := harness.Figure9Opts(o)
		if err != nil {
			return err
		}
		if err := emitSpeedup(t); err != nil {
			return err
		}
	}
	if want(10) {
		t, err := harness.Figure10Opts(o)
		if err != nil {
			return err
		}
		if err := emitSpeedup(t); err != nil {
			return err
		}
	}
	if want(11) {
		t, err := harness.Figure11Opts(o)
		if err != nil {
			return err
		}
		if *format == "csv" {
			if err := t.WriteCSV(os.Stdout); err != nil {
				return err
			}
		} else {
			fmt.Println(t.Format())
		}
	}
	if want(12) {
		t, err := harness.Figure12Opts(o)
		if err != nil {
			return err
		}
		if err := emitSpeedup(t); err != nil {
			return err
		}
	}
	return nil
}
