package main

import (
	"testing"
	"time"
)

// TestLatencyStats pins the phase-statistics helper on a synthetic vector
// where every answer is computable by hand. The recorded service entry
// once showed warm_p50_ms > warm_mean_ms because the mean came from one
// phase and the percentiles from another; keeping the helper pure (one
// sample set in, all statistics out) makes that class of bug impossible.
func TestLatencyStats(t *testing.T) {
	// 1ms..100ms in shuffled-ish order: latencyStats must sort a copy.
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration((i*37)%100+1) * time.Millisecond
	}
	got := latencyStats(lats)
	if want := 50500 * time.Microsecond; got.mean != want {
		t.Errorf("mean = %v, want %v", got.mean, want)
	}
	// Nearest-rank over n=100: p50 is the 50th sample (50ms), p95 the 95th.
	if want := 50 * time.Millisecond; got.p50 != want {
		t.Errorf("p50 = %v, want %v", got.p50, want)
	}
	if want := 95 * time.Millisecond; got.p95 != want {
		t.Errorf("p95 = %v, want %v", got.p95, want)
	}
	if want := 100 * time.Millisecond; got.max != want {
		t.Errorf("max = %v, want %v", got.max, want)
	}
	if got.p50 > got.mean+got.mean/2 {
		t.Errorf("p50 %v implausibly above mean %v for a uniform vector", got.p50, got.mean)
	}
	// The input must not be reordered (callers print samples in order).
	for i := range lats {
		if lats[i] != time.Duration((i*37)%100+1)*time.Millisecond {
			t.Fatalf("input slice mutated at %d", i)
		}
	}
}

func TestLatencyStatsEdgeCases(t *testing.T) {
	if got := latencyStats(nil); got != (latStats{}) {
		t.Errorf("empty input: got %+v, want zero", got)
	}
	one := latencyStats([]time.Duration{7 * time.Millisecond})
	if one.mean != 7*time.Millisecond || one.p50 != 7*time.Millisecond ||
		one.p95 != 7*time.Millisecond || one.max != 7*time.Millisecond {
		t.Errorf("single sample: got %+v", one)
	}
	two := latencyStats([]time.Duration{10 * time.Millisecond, 20 * time.Millisecond})
	if two.p50 != 10*time.Millisecond {
		t.Errorf("n=2 p50 = %v, want 10ms (nearest rank)", two.p50)
	}
	if two.p95 != 20*time.Millisecond {
		t.Errorf("n=2 p95 = %v, want 20ms", two.p95)
	}
	if two.mean != 15*time.Millisecond {
		t.Errorf("n=2 mean = %v, want 15ms", two.mean)
	}
}
