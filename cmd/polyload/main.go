// Command polyload load-tests a polyflowd instance: N concurrent clients
// each issue M job requests, and the tool reports cold-start latency,
// steady-state (warm-cache) throughput, latency percentiles, and the cache
// hit rate. With no -addr it starts an in-process server, so a single
// command measures the service end to end.
//
// Usage:
//
//	polyload                                  # in-process server, defaults
//	polyload -clients 8 -requests 25
//	polyload -addr http://127.0.0.1:8080      # against a running daemon
//	polyload -bench gzip,mcf -policy postdoms -record
//	polyload -cluster 4                       # add a coordinator+4-worker fan-out phase
//
// The warm phase replays the same (bench, policy) cells, so every request
// past the first per cell is served from the content-addressed artifact
// cache; -record appends the measurements to BENCH_simulator.json. See
// docs/SERVICE.md.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/cluster"
	"repro/internal/jobqueue"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "", "polyflowd base URL (empty = start an in-process server)")
	clients := flag.Int("clients", 4, "concurrent clients in the warm phase")
	requests := flag.Int("requests", 20, "requests per client in the warm phase")
	benchList := flag.String("bench", "gzip,mcf,twolf", "comma-separated benchmarks to cycle through")
	policyList := flag.String("policy", "postdoms", "comma-separated policies to cycle through")
	cacheDir := flag.String("cache-dir", "", "cache root for the in-process server (empty = memory-only)")
	record := flag.Bool("record", false, "append the measurements to BENCH_simulator.json")
	clusterN := flag.Int("cluster", 0, "also run a cluster phase: an in-process coordinator fanning the cells out to this many in-process worker daemons (0 = skip)")
	flag.Parse()

	if err := run(*addr, *clients, *requests, splitList(*benchList), splitList(*policyList), *cacheDir, *record, *clusterN); err != nil {
		fmt.Fprintln(os.Stderr, "polyload:", err)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

type cell struct{ bench, policy string }

// submitAndWait runs one request to completion and returns its end-to-end
// latency and whether it was served from the cache.
func submitAndWait(ctx context.Context, c *server.Client, req server.Request) (time.Duration, bool, error) {
	start := time.Now()
	for {
		st, code, err := c.Submit(ctx, req)
		if err != nil {
			if code == http.StatusTooManyRequests {
				// Shed load is part of the protocol: back off and retry.
				select {
				case <-ctx.Done():
					return 0, false, ctx.Err()
				case <-time.After(2 * time.Millisecond):
				}
				continue
			}
			return 0, false, err
		}
		fin, err := c.Wait(ctx, st.ID, time.Millisecond)
		if err != nil {
			return 0, false, err
		}
		if fin.State != "succeeded" {
			return 0, false, fmt.Errorf("job %s finished %s: %s", st.ID, fin.State, fin.Error)
		}
		return time.Since(start), fin.CacheHit, nil
	}
}

func run(addr string, clients, requests int, benches, policies []string, cacheDir string, record bool, clusterN int) error {
	ctx := context.Background()
	if addr == "" {
		cache, err := artifact.New(artifact.Options{Dir: cacheDir})
		if err != nil {
			return err
		}
		srv, err := server.New(server.Config{
			Cache: cache,
			// Depth scaled to the offered load so the warm phase measures
			// throughput, not retry backoff.
			Pool: jobqueue.New(jobqueue.Config{QueueDepth: clients * 4}),
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		defer hs.Close()
		addr = "http://" + ln.Addr().String()
		fmt.Printf("in-process polyflowd at %s\n", addr)
	}
	c := &server.Client{Base: addr}

	var cells []cell
	for _, b := range benches {
		for _, p := range policies {
			cells = append(cells, cell{b, p})
		}
	}
	if len(cells) == 0 {
		return fmt.Errorf("no (bench, policy) cells selected")
	}

	// Cold phase: one request per distinct cell, sequential, so each
	// latency is a full simulation (plus service overhead).
	var coldTotal time.Duration
	for _, cl := range cells {
		lat, hit, err := submitAndWait(ctx, c, server.Request{Bench: cl.bench, Policy: cl.policy})
		if err != nil {
			return fmt.Errorf("cold %s/%s: %w", cl.bench, cl.policy, err)
		}
		if hit {
			fmt.Printf("note: cold %s/%s was already cached\n", cl.bench, cl.policy)
		}
		fmt.Printf("cold  %-10s %-12s %8.1fms\n", cl.bench, cl.policy, lat.Seconds()*1e3)
		coldTotal += lat
	}
	coldMean := coldTotal / time.Duration(len(cells))

	// Sequential warm pass: the same cells under the same (one-at-a-time)
	// conditions as the cold pass, so warm/cold is an apples-to-apples
	// cache speedup, not a concurrency artifact.
	var warmSeqLats []time.Duration
	for _, cl := range cells {
		lat, hit, err := submitAndWait(ctx, c, server.Request{Bench: cl.bench, Policy: cl.policy})
		if err != nil {
			return fmt.Errorf("warm %s/%s: %w", cl.bench, cl.policy, err)
		}
		if !hit {
			fmt.Printf("note: warm %s/%s missed the cache\n", cl.bench, cl.policy)
		}
		fmt.Printf("warm  %-10s %-12s %8.1fms\n", cl.bench, cl.policy, lat.Seconds()*1e3)
		warmSeqLats = append(warmSeqLats, lat)
	}
	warmSeq := latencyStats(warmSeqLats)

	// Concurrent warm phase: N clients × M requests over the same cells,
	// all served from the cache — the steady-state throughput measurement.
	type sample struct {
		lat time.Duration
		hit bool
	}
	total := clients * requests
	samples := make([]sample, total)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	warmStart := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				k := w*requests + i
				cl := cells[k%len(cells)]
				lat, hit, err := submitAndWait(ctx, c, server.Request{Bench: cl.bench, Policy: cl.policy})
				if err != nil {
					errs[w] = fmt.Errorf("client %d: %w", w, err)
					return
				}
				samples[k] = sample{lat, hit}
			}
		}(w)
	}
	wg.Wait()
	warmWall := time.Since(warmStart)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	lats := make([]time.Duration, total)
	hits := 0
	for i, s := range samples {
		lats[i] = s.lat
		if s.hit {
			hits++
		}
	}
	conc := latencyStats(lats)
	rps := float64(total) / warmWall.Seconds()
	hitRate := float64(hits) / float64(total)

	fmt.Printf("\nwarm: %d clients x %d requests over %d cells\n", clients, requests, len(cells))
	fmt.Printf("  throughput     %8.1f req/s\n", rps)
	fmt.Printf("  cache hit rate %8.1f%%\n", 100*hitRate)
	fmt.Printf("  latency mean   %8.2fms  p50 %.2fms  p95 %.2fms  max %.2fms\n",
		conc.mean.Seconds()*1e3, conc.p50.Seconds()*1e3, conc.p95.Seconds()*1e3, conc.max.Seconds()*1e3)
	speedup := float64(coldMean) / float64(warmSeq.mean)
	fmt.Printf("  cold mean      %8.2fms  warm mean %.2fms (sequential) -> warm is %.1fx faster\n",
		coldMean.Seconds()*1e3, warmSeq.mean.Seconds()*1e3, speedup)
	if speedup < 10 {
		fmt.Printf("  WARNING: warm/cold speedup %.1fx below the 10x service target\n", speedup)
	}

	var cst *clusterStats
	if clusterN > 0 {
		st, err := clusterPhase(ctx, cells, clusterN)
		if err != nil {
			return fmt.Errorf("cluster phase: %w", err)
		}
		cst = st
	}

	if record {
		return recordBench(rps, hitRate, coldMean, warmSeq, conc, cst)
	}
	return nil
}

// clusterStats summarizes the optional cluster phase.
type clusterStats struct {
	workers     int
	cells       int
	cellsPerSec float64
	retries     int64
}

// clusterPhase spins up an in-process coordinator fanning the cells out to
// n in-process worker daemons and measures warm-cache cell throughput
// through the full dispatch path (ring placement, per-worker windows,
// worker HTTP round-trips). One cold pass warms every worker's artifact
// cache; the timed pass then measures coordination, not simulation.
func clusterPhase(ctx context.Context, cells []cell, n int) (*clusterStats, error) {
	coord := cluster.New(cluster.Options{})
	defer coord.Close()
	for i := 0; i < n; i++ {
		cache, err := artifact.New(artifact.Options{})
		if err != nil {
			return nil, err
		}
		srv, err := server.New(server.Config{
			Cache: cache,
			Pool:  jobqueue.New(jobqueue.Config{QueueDepth: len(cells) * 2}),
		})
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		defer hs.Close()
		if err := coord.AddWorker("http://" + ln.Addr().String()); err != nil {
			return nil, err
		}
	}

	runAll := func() error {
		errs := make([]error, len(cells))
		var wg sync.WaitGroup
		for i, cl := range cells {
			wg.Add(1)
			go func(i int, cl cell) {
				defer wg.Done()
				_, _, err := coord.RunCell(ctx, server.Request{Bench: cl.bench, Policy: cl.policy})
				errs[i] = err
			}(i, cl)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	if err := runAll(); err != nil { // cold: warm every worker's cache
		return nil, err
	}
	start := time.Now()
	if err := runAll(); err != nil {
		return nil, err
	}
	wall := time.Since(start)
	st := coord.Stats()
	out := &clusterStats{
		workers:     n,
		cells:       len(cells),
		cellsPerSec: float64(len(cells)) / wall.Seconds(),
		retries:     st.Retries,
	}
	fmt.Printf("\ncluster: %d workers, %d cells (warm)\n", n, len(cells))
	fmt.Printf("  cell throughput %8.1f cells/s  retries %d\n", out.cellsPerSec, out.retries)
	return out, nil
}

// latStats summarizes one phase's latency samples. Every statistic comes
// from the same sample set — mixing phases once produced a recorded p50
// above the mean, which is how the mismatch was caught.
type latStats struct {
	mean, p50, p95, max time.Duration
}

// latencyStats computes mean and nearest-rank percentiles over a copy of
// the samples; the input order is preserved.
func latencyStats(lats []time.Duration) latStats {
	if len(lats) == 0 {
		return latStats{}
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var total time.Duration
	for _, l := range s {
		total += l
	}
	n := len(s)
	pct := func(p float64) time.Duration {
		// Nearest-rank: the smallest sample with at least p of the mass at
		// or below it.
		idx := int(math.Ceil(p*float64(n))) - 1
		if idx < 0 {
			idx = 0
		}
		return s[idx]
	}
	return latStats{
		mean: total / time.Duration(n),
		p50:  pct(0.50),
		p95:  pct(0.95),
		max:  s[n-1],
	}
}

// recordBench appends the service measurements to BENCH_simulator.json,
// following the file's history-of-entries shape. The sequential and
// concurrent warm phases are recorded as separate, internally consistent
// sample sets: warm_mean/p50/p95 all come from the concurrent phase, and
// the warm/cold speedup from the sequential phase, so no statistic mixes
// phases (a p50 above the mean in an earlier entry came from exactly that).
func recordBench(rps, hitRate float64, coldMean time.Duration, warmSeq, conc latStats, cst *clusterStats) error {
	const path = "BENCH_simulator.json"
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	history, _ := doc["history"].([]any)
	entry := map[string]any{
		"label": "polyflowd service load test (cmd/polyload)",
		"date":  time.Now().Format("2006-01-02"),
		"go":    goVersion(),
		"service": map[string]any{
			"warm_req_per_sec": round1(rps),
			"cache_hit_rate":   round3(hitRate),
			"cold_mean_ms":     round2(coldMean.Seconds() * 1e3),
			"warm_mean_ms":     round2(conc.mean.Seconds() * 1e3),
			"warm_p50_ms":      round2(conc.p50.Seconds() * 1e3),
			"warm_p95_ms":      round2(conc.p95.Seconds() * 1e3),
			"warm_seq_mean_ms": round2(warmSeq.mean.Seconds() * 1e3),
			"warm_over_cold_x": round1(float64(coldMean) / float64(warmSeq.mean)),
		},
	}
	if cst != nil {
		entry["cluster"] = map[string]any{
			"cluster_workers":    cst.workers,
			"cells":              cst.cells,
			"warm_cells_per_sec": round1(cst.cellsPerSec),
			"retries":            cst.retries,
		}
	}
	doc["history"] = append(history, entry)
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("recorded service entry in %s\n", path)
	return nil
}

func round1(v float64) float64 { return float64(int(v*10+0.5)) / 10 }
func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }
func round3(v float64) float64 { return float64(int(v*1000+0.5)) / 1000 }

func goVersion() string { return runtime.Version() }
