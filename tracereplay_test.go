package speculate_test

import (
	"reflect"
	"testing"

	"repro"
	"repro/internal/artifact"
	"repro/internal/harness"
	"repro/internal/machine"
)

// TestReplayBitIdentical proves the decode-once path changes nothing:
// simulating a bench whose trace round-tripped through the polyflow-trace/1
// codec produces results bit-identical to the legacy Prepare path, for
// every workload and policy family. In -short mode a three-workload subset
// runs; the full sweep covers all 12.
func TestReplayBitIdentical(t *testing.T) {
	names := speculate.AllWorkloadNames()
	policies := []string{"superscalar", "loop", "postdoms", "rec_pred"}
	if testing.Short() {
		names = []string{"gzip", "mcf", "twolf", "quicksort"}
		policies = []string{"superscalar", "postdoms"}
	}
	for _, name := range names {
		b, err := speculate.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := b.EncodeTrace()
		if err != nil {
			t.Fatal(err)
		}
		rb, err := speculate.LoadFromTraceData(name, data)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range policies {
			pol := pol
			t.Run(name+"/"+pol, func(t *testing.T) {
				legacy, err := b.RunNamed(pol, machine.PolyFlowConfig())
				if err != nil {
					t.Fatal(err)
				}
				replay, err := rb.RunNamed(pol, machine.PolyFlowConfig())
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(legacy, replay) {
					t.Errorf("replayed trace diverges from legacy path:\nlegacy: %+v\nreplay: %+v", legacy, replay)
				}
			})
		}
	}
}

// TestGridDecodesOnce asserts the batched grid's contract: with a trace
// cache attached, a multi-policy grid runs the functional emulator exactly
// once per workload, and a second grid over a warm cache runs it zero
// times — with identical results both times.
func TestGridDecodesOnce(t *testing.T) {
	cache, err := artifact.New(artifact.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	// One synthetic workload and one kernel: the decode-once contract must
	// hold for both families through the same grid path.
	o := harness.Options{
		Benches:    []string{"gzip", "mcf", "quicksort"},
		Policies:   []string{"loop", "postdoms"},
		TraceCache: cache,
	}

	speculate.ClearBenchCache()
	before := speculate.EmulatorRuns()
	cold, err := harness.Figure9Opts(o)
	if err != nil {
		t.Fatal(err)
	}
	if got := speculate.EmulatorRuns() - before; got != 3 {
		t.Errorf("cold grid ran the emulator %d times, want 3 (once per workload)", got)
	}

	// Drop the in-process memo: the warm grid must be fed entirely from
	// stored trace artifacts.
	speculate.ClearBenchCache()
	before = speculate.EmulatorRuns()
	warm, err := harness.Figure9Opts(o)
	if err != nil {
		t.Fatal(err)
	}
	if got := speculate.EmulatorRuns() - before; got != 0 {
		t.Errorf("warm grid ran the emulator %d times, want 0 (trace artifacts)", got)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm grid results diverge from cold grid:\ncold: %+v\nwarm: %+v", cold, warm)
	}
}

// TestLoadCachedSources pins the provenance reporting the daemon's metrics
// build on.
func TestLoadCachedSources(t *testing.T) {
	cache, err := artifact.New(artifact.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	speculate.ClearBenchCache()
	if _, src, err := speculate.LoadCached("twolf", cache); err != nil || src != speculate.LoadEmulated {
		t.Fatalf("first load: src=%v err=%v, want LoadEmulated", src, err)
	}
	if _, src, err := speculate.LoadCached("twolf", cache); err != nil || src != speculate.LoadMemoized {
		t.Fatalf("second load: src=%v err=%v, want LoadMemoized", src, err)
	}
	speculate.ClearBenchCache()
	if _, src, err := speculate.LoadCached("twolf", cache); err != nil || src != speculate.LoadTraceArtifact {
		t.Fatalf("post-clear load: src=%v err=%v, want LoadTraceArtifact", src, err)
	}
	if _, _, err := speculate.LoadCached("no-such-bench", cache); err == nil {
		t.Fatal("unknown workload loaded")
	}
}
