package speculate

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/tracestore"
	"repro/internal/workloads"
)

// LazyTraceThreshold is the artifact size, in bytes, above which LoadCached
// replays a stored trace through the tracestore's streaming ReaderAt path
// instead of materializing the serialized bytes first. Below it the decode
// working set is small enough that an eager read is cheaper than seeking.
// Exported as a variable so tests can force either path.
var LazyTraceThreshold int64 = 4 << 20

// LoadSource reports where LoadCached obtained a bench's trace: the
// in-process memo, a decoded trace-store artifact, or a fresh emulator run.
type LoadSource int

const (
	// LoadMemoized: the bench was already prepared in this process.
	LoadMemoized LoadSource = iota
	// LoadTraceArtifact: the trace was decoded from a stored
	// polyflow-trace/1 artifact; the emulator did not run.
	LoadTraceArtifact
	// LoadEmulated: the functional emulator ran (and, when a cache was
	// supplied, its product was stored for the next caller).
	LoadEmulated
)

func (s LoadSource) String() string {
	switch s {
	case LoadMemoized:
		return "memoized"
	case LoadTraceArtifact:
		return "trace-artifact"
	case LoadEmulated:
		return "emulated"
	}
	return fmt.Sprintf("LoadSource(%d)", int(s))
}

// emuRuns counts functional-emulator executions process-wide; the
// decode-once tests and the daemon's metrics assert on it.
var emuRuns atomic.Int64

// EmulatorRuns returns how many times the functional emulator has run in
// this process (via Prepare, directly or through Load/LoadCached).
func EmulatorRuns() int64 { return emuRuns.Load() }

// analysisRuns counts executions of the static analysis pipeline
// (core.Analyze) process-wide; the analysis-artifact tests assert it stays
// flat on cache-warm loads.
var analysisRuns atomic.Int64

// AnalysisRuns returns how many times the full static analysis
// (postdominators, CDG, loop forest, spawn identification) has run in this
// process. Loads served from a stored polyflow-analysis/1 artifact do not
// advance it.
func AnalysisRuns() int64 { return analysisRuns.Load() }

// analyze is the package's single gateway to core.Analyze, so the counter
// above cannot drift from reality.
func analyze(prog *isa.Program, extraTargets map[uint64][]uint64) (*core.Analysis, error) {
	analysisRuns.Add(1)
	return core.Analyze(prog, extraTargets)
}

// benchEntry memoizes one workload's preparation. The once-per-name design
// lets distinct workloads prepare concurrently — a global lock held across
// Prepare would serialize the harness's parallel warm-up.
type benchEntry struct {
	once sync.Once
	b    *Bench
	src  LoadSource
	err  error
}

var (
	benchMu    sync.Mutex
	benchCache = map[string]*benchEntry{}
)

// ClearBenchCache drops the in-process bench memo, so the next Load
// re-prepares. Tests use it to exercise the artifact and emulation paths.
func ClearBenchCache() {
	benchMu.Lock()
	benchCache = map[string]*benchEntry{}
	benchMu.Unlock()
}

// Load prepares (and memoizes) one of the built-in workloads by name.
func Load(name string) (*Bench, error) {
	b, _, err := LoadCached(name, nil)
	return b, err
}

// LoadCached is Load backed by a trace-artifact cache: on the first call
// for a workload it fetches the stored polyflow-trace/1 artifact (skipping
// the emulator) or, on a miss, emulates and stores the product; later
// calls in the same process hit the in-memory memo. A nil cache degrades
// to plain Load. Concurrent calls for the same workload share one
// preparation; distinct workloads prepare in parallel.
func LoadCached(name string, cache *artifact.Cache) (*Bench, LoadSource, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, 0, fmt.Errorf("speculate: unknown workload %q (have %v)", name, workloads.AllNames())
	}
	benchMu.Lock()
	e := benchCache[name]
	if e == nil {
		e = &benchEntry{}
		benchCache[name] = e
	}
	benchMu.Unlock()
	ran := false
	e.once.Do(func() {
		ran = true
		e.b, e.src, e.err = prepareCached(w, cache)
	})
	if e.err != nil {
		return nil, 0, e.err
	}
	if !ran {
		return e.b, LoadMemoized, nil
	}
	return e.b, e.src, nil
}

func prepareCached(w workloads.Workload, cache *artifact.Cache) (*Bench, LoadSource, error) {
	srcSHA := w.SHA()
	prog := w.Assemble()
	var traceHash, anHash string
	if cache != nil {
		if key, err := artifact.NewTraceKey(w.Name, srcSHA, w.MaxInstrs); err == nil {
			traceHash = key.Hash()
		}
		if key, err := artifact.NewAnalysisKey(w.Name, srcSHA, w.MaxInstrs); err == nil {
			anHash = key.Hash()
		}
		if traceHash != "" {
			if b, ok := benchFromArtifacts(w, prog, cache, traceHash, anHash, srcSHA); ok {
				return b, LoadTraceArtifact, nil
			}
			// A missing or corrupt stored artifact falls through to
			// emulation; the fresh product overwrites it below.
		}
	}
	b, err := prepare(w.Name, prog, w.MaxInstrs, w.NewOS(), w.NewOS(), w.Segments(prog))
	if err != nil {
		return nil, 0, err
	}
	b.SourceSHA = srcSHA
	if cache != nil && traceHash != "" {
		if data, eerr := tracestore.Encode(b.Trace, b.Deps); eerr == nil {
			_ = cache.Put(traceHash, data) // best-effort: a store failure only costs a future re-emulation
		}
		storeAnalysis(cache, anHash, b.Analysis)
	}
	return b, LoadEmulated, nil
}

// benchFromArtifacts serves a load entirely from the artifact cache: the
// trace from its polyflow-trace/1 artifact (streamed lazily above
// LazyTraceThreshold) and, when present, the static analysis from its
// polyflow-analysis/1 artifact, skipping re-analysis. Any failure reports
// ok=false and the caller re-emulates.
func benchFromArtifacts(w workloads.Workload, prog *isa.Program, cache *artifact.Cache, traceHash, anHash, srcSHA string) (*Bench, bool) {
	h, ok, err := cache.Open(traceHash)
	if err != nil || !ok {
		return nil, false
	}
	defer h.Close()
	var tr *trace.Trace
	var deps *trace.Deps
	if h.Size() >= LazyTraceThreshold {
		tr, deps, err = tracestore.Open(h, h.Size()).Load()
	} else {
		buf := make([]byte, h.Size())
		if _, err = io.ReadFull(io.NewSectionReader(h, 0, h.Size()), buf); err == nil {
			tr, deps, err = tracestore.Decode(buf)
		}
	}
	if err != nil {
		return nil, false
	}
	if anHash != "" {
		if data, hit, gerr := cache.Get(anHash); gerr == nil && hit {
			if an, derr := core.DecodeAnalysis(prog, data); derr == nil {
				return &Bench{
					Name:      w.Name,
					Prog:      prog,
					Trace:     tr,
					Deps:      deps,
					Analysis:  an,
					SourceSHA: srcSHA,
					MaxInstrs: w.MaxInstrs,
				}, true
			}
			// A corrupt analysis artifact just costs a re-analysis below.
		}
	}
	b, ferr := FromTrace(w.Name, prog, tr, deps, w.MaxInstrs, srcSHA)
	if ferr != nil {
		return nil, false
	}
	storeAnalysis(cache, anHash, b.Analysis)
	return b, true
}

// storeAnalysis writes the analysis artifact, best-effort: a failure only
// costs a future re-analysis.
func storeAnalysis(cache *artifact.Cache, anHash string, an *core.Analysis) {
	if cache == nil || anHash == "" || an == nil {
		return
	}
	if data, err := core.EncodeAnalysis(an); err == nil {
		_ = cache.Put(anHash, data)
	}
}

// FromTrace builds a bench from an already-decoded trace and its dependence
// information, running only the static spawn-point analysis — the replay
// path behind trace artifacts and polyflow -trace-in. The trace is trusted
// to be the program's retired stream (the tracestore reader's checksums and
// cross-validation, plus content addressing, guard it); the architectural
// re-check happens once, when the trace is first produced by Prepare.
func FromTrace(name string, prog *isa.Program, tr *trace.Trace, deps *trace.Deps, maxInstrs int, sourceSHA string) (*Bench, error) {
	an, err := analyze(prog, tr.IndirectTargets())
	if err != nil {
		return nil, fmt.Errorf("speculate: analyzing %s: %w", name, err)
	}
	return &Bench{
		Name:      name,
		Prog:      prog,
		Trace:     tr,
		Deps:      deps,
		Analysis:  an,
		SourceSHA: sourceSHA,
		MaxInstrs: maxInstrs,
	}, nil
}

// LoadFromTraceData builds the named workload's bench from serialized
// polyflow-trace/1 bytes (polyflow -trace-in), skipping the emulator.
func LoadFromTraceData(name string, data []byte) (*Bench, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("speculate: unknown workload %q (have %v)", name, workloads.AllNames())
	}
	tr, deps, err := tracestore.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("speculate: decoding trace for %s: %w", name, err)
	}
	return FromTrace(w.Name, w.Assemble(), tr, deps, w.MaxInstrs, w.SHA())
}

// EncodeTrace serializes the bench's trace and dependence information in
// the polyflow-trace/1 format (polyflow -trace-out, GET /v1/traces).
func (b *Bench) EncodeTrace() ([]byte, error) {
	return tracestore.Encode(b.Trace, b.Deps)
}

// TraceBytes returns the named workload's serialized trace artifact and its
// content hash, preparing and storing it if needed. With a cache the bytes
// come from (or land in) the artifact store; without one they are encoded
// from the in-process bench.
func TraceBytes(name string, cache *artifact.Cache) ([]byte, string, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, "", fmt.Errorf("speculate: unknown workload %q (have %v)", name, workloads.AllNames())
	}
	key, err := artifact.NewTraceKey(w.Name, w.SHA(), w.MaxInstrs)
	if err != nil {
		return nil, "", err
	}
	hash := key.Hash()
	if cache != nil {
		if data, ok, gerr := cache.Get(hash); gerr == nil && ok {
			return data, hash, nil
		}
	}
	b, _, err := LoadCached(name, cache)
	if err != nil {
		return nil, "", err
	}
	if cache != nil {
		// LoadCached stored the artifact on the emulation path; a memoized
		// bench may predate the cache, so fall through to encoding.
		if data, ok, gerr := cache.Get(hash); gerr == nil && ok {
			return data, hash, nil
		}
	}
	data, err := b.EncodeTrace()
	if err != nil {
		return nil, "", err
	}
	if cache != nil {
		_ = cache.Put(hash, data)
	}
	return data, hash, nil
}
