package reconv

import (
	"fmt"
	"testing"
)

// TestPredictorEdgeCases is the table-driven battery over the predictor's
// structural corners: cold lookups, candidate ratcheting when the first
// guess aliases a PC inside one arm, two branches sharing (aliasing) one
// reconvergence PC, and capacity-capped entry allocation.
func TestPredictorEdgeCases(t *testing.T) {
	type want struct {
		branch   string // label of the branch being queried
		reconv   string // expected reconvergence label ("" = no prediction)
		category Category
	}
	cases := []struct {
		name  string
		src   string
		cfg   Config
		wants []want
	}{
		{
			// A branch the trace never executes twice has confidence 1 and
			// must not be served at threshold 2.
			name: "cold-single-instance",
			src: `
        andi $t0, $t9, 1
br:     beq  $t0, $zero, els
        addi $s0, $s0, 1
els:    halt
`,
			cfg:   DefaultConfig(),
			wants: []want{{branch: "br", reconv: ""}},
		},
		{
			// Alternating arms: the first instance's below-branch PC lies
			// inside the then-arm, so the candidate aliases an arm PC and
			// must be ratcheted forward to the real join.
			name: "ratchet-past-arm-alias",
			src: `
        li   $t9, 24
loop:   andi $t0, $t9, 1
br:     beq  $t0, $zero, els
        addi $s0, $s0, 1
        addi $s0, $s0, 2
        j    join
els:    addi $s0, $s0, 3
join:   addi $t9, $t9, -1
        bgtz $t9, loop
        halt
`,
			cfg:   DefaultConfig(),
			wants: []want{{branch: "br", reconv: "join", category: CatBelowBranch}},
		},
		{
			// Two distinct branches reconverging at the same PC: the shared
			// (aliased) join must be learned independently for both.
			name: "shared-join-two-branches",
			src: `
        li   $t9, 24
loop:   andi $t0, $t9, 1
bra:    beq  $t0, $zero, mid
        addi $s0, $s0, 1
mid:    andi $t1, $t9, 2
brb:    beq  $t1, $zero, join
        addi $s1, $s1, 1
join:   addi $t9, $t9, -1
        bgtz $t9, loop
        halt
`,
			cfg: DefaultConfig(),
			wants: []want{
				{branch: "bra", reconv: "mid", category: CatBelowBranch},
				{branch: "brb", reconv: "join", category: CatBelowBranch},
			},
		},
		{
			// A branch that always jumps backward to a return: the frame
			// leaves before any PC above the branch retires, so it is
			// learned as CatReturn and never served as a spawn target.
			name: "return-category",
			src: `
        .func main
main:   li   $t9, 16
ml:     jal  f
        addi $t9, $t9, -1
        bgtz $t9, ml
        halt
        .func f
f:      j    fbr
fret:   addi $s0, $s0, 1
        ret
fbr:    blez $zero, fret
        addi $s1, $s1, 1
        ret
`,
			cfg:   DefaultConfig(),
			wants: []want{{branch: "fbr", reconv: "", category: CatReturn}},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pred, p, _ := trainOn(t, c.src, c.cfg)
			for _, w := range c.wants {
				pc, ok := p.Labels[w.branch]
				if !ok {
					t.Fatalf("no label %q in program", w.branch)
				}
				got, served := pred.Predict(pc)
				if w.reconv == "" {
					if served {
						t.Errorf("%s: served %#x, want no prediction", w.branch, got)
					}
				} else if !served || got != p.Labels[w.reconv] {
					t.Errorf("%s: reconv = %#x (served=%v), want %s=%#x",
						w.branch, got, served, w.reconv, p.Labels[w.reconv])
				}
				if w.category != CatNone && pred.CategoryOf(pc) != w.category {
					t.Errorf("%s: category = %v, want %v", w.branch, pred.CategoryOf(pc), w.category)
				}
			}
		})
	}
}

// TestCapacityKeepsTrainingResidents: once MaxEntries is reached, new
// branches are not allocated, but resident entries keep training and keep
// serving predictions.
func TestCapacityKeepsTrainingResidents(t *testing.T) {
	// br0 retires first and claims the single entry; br1 must be ignored.
	pred, p, _ := trainOn(t, `
        li   $t9, 24
loop:   andi $t0, $t9, 1
br0:    beq  $t0, $zero, m
        addi $s0, $s0, 1
m:      andi $t1, $t9, 2
br1:    beq  $t1, $zero, join
        addi $s1, $s1, 1
join:   addi $t9, $t9, -1
        bgtz $t9, loop
        halt
`, Config{Window: 512, ConfThreshold: 2, MaxEntries: 1})
	if got := pred.Entries(); got != 1 {
		t.Fatalf("entries = %d, want exactly the cap (1)", got)
	}
	if got, ok := pred.Predict(p.Labels["br0"]); !ok || got != p.Labels["m"] {
		t.Errorf("resident branch lost training: reconv = %#x, ok=%v", got, ok)
	}
	if _, ok := pred.Predict(p.Labels["br1"]); ok {
		t.Errorf("over-capacity branch was tracked and served")
	}
}

// TestTinyWindowExpiresMonitors: a window shorter than the loop body means
// monitors expire with no below-branch observation, so the backward loop
// branch never gains confidence.
func TestTinyWindowExpiresMonitors(t *testing.T) {
	var body string
	for i := 0; i < 12; i++ {
		body += fmt.Sprintf("        addi $s0, $s0, %d\n", i)
	}
	pred, p, _ := trainOn(t, `
        li   $t9, 20
loop:
`+body+`
        addi $t9, $t9, -1
lbr:    bgtz $t9, loop
        halt
`, Config{Window: 4, ConfThreshold: 2})
	if _, ok := pred.Predict(p.Labels["lbr"]); ok {
		t.Errorf("loop branch served despite monitors expiring before fall-through")
	}
}
