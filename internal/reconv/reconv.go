// Package reconv implements a dynamic reconvergence predictor in the style
// of Collins, Tullsen and Wang (MICRO-37, 2004), the mechanism Section 4.4
// of the paper trains on the retirement stream as a run-time substitute for
// compiler-generated immediate postdominator information.
//
// For each static conditional branch and jump-table indirect jump the
// predictor maintains a candidate reconvergence point and a confidence
// counter, trained by per-instance monitors over the retirement stream:
//
//   - CatBelowBranch: the common case — the reconvergence PC lies below
//     the branch in the program layout (forward if/if-else joins, switch
//     continuations, and the fall-throughs of backward loop branches; the
//     paper notes this layout category captures most branches). The
//     candidate starts at the first retired PC above the branch PC and is
//     then *ratcheted*: an instance in which the candidate reconverges
//     raises confidence; an instance in which it never appears proves it
//     was inside one arm (or one switch case), so the candidate advances
//     to the first PC beyond it seen that instance. Repeated misses walk
//     the candidate up to the true join/postdominator.
//   - CatReturn: the monitored region left the function through a return
//     before reconverging; no intrafunction reconvergence is predicted
//     (the paper's predictor likewise has a return-address category).
//
// A branch instance opens a monitor at retirement; the monitor closes when
// the same branch retires again or after a fixed instruction window.
// Predictions are served only above a confidence threshold, so warm-up
// effects — one of the two loss sources the paper reports for this scheme —
// are modeled naturally.
package reconv

import (
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Category of a learned reconvergence point.
type Category uint8

// Reconvergence categories.
const (
	CatNone Category = iota
	CatBelowTarget
	CatBelowBranch
	CatReturn
)

// Config tunes the predictor.
type Config struct {
	// Window is the monitoring window in retired instructions.
	Window int
	// ConfThreshold is the confidence needed before a reconvergence point
	// is served as a spawn target.
	ConfThreshold int
	// MaxEntries caps the number of tracked static branches (0 =
	// unlimited). The paper does not model capacity effects in the
	// reconvergence structure, so the default is unlimited.
	MaxEntries int
}

// DefaultConfig matches the evaluation setup: a generous window and a small
// warm-up threshold.
func DefaultConfig() Config {
	return Config{Window: 512, ConfThreshold: 2}
}

type entry struct {
	candidate  uint64
	confidence int
	category   Category
	// monitor state for the currently watched instance
	active       bool
	sawBelow     bool
	below        uint64 // first retired PC > branch PC this instance
	sawCandidate bool
	aboveCand    uint64 // first retired PC > candidate this instance
	expiresAt    uint64
	branchPC     uint64
	depth        int // call depth at monitor open: only same-frame PCs count
}

// Predictor learns reconvergence points from the retirement stream.
type Predictor struct {
	cfg     Config
	entries map[uint64]*entry
	active  []*entry // entries with an open monitor
	retired uint64
	depth   int // call depth observed in the retirement stream
}

// New creates an empty predictor.
func New(cfg Config) *Predictor {
	if cfg.Window <= 0 {
		cfg.Window = 512
	}
	return &Predictor{cfg: cfg, entries: map[uint64]*entry{}}
}

// Observe consumes one retired instruction. Call it in retirement order.
func (p *Predictor) Observe(e *trace.Entry) {
	p.retired++

	// Feed open monitors.
	if len(p.active) > 0 {
		kept := p.active[:0]
		for _, en := range p.active {
			if !en.active {
				continue
			}
			closed := false
			switch {
			case p.retired > en.expiresAt:
				p.close(en, CatNone)
				closed = true
			case p.depth < en.depth:
				// The frame returned. If a same-frame reconvergence was
				// already observed this is an ordinary close; otherwise
				// the branch reconverges only past the return.
				if en.sawBelow {
					p.close(en, CatNone)
				} else {
					p.close(en, CatReturn)
				}
				closed = true
			case p.depth > en.depth:
				// Inside a callee: its PCs are not control equivalent to
				// the monitored branch; ignore them.
			case e.PC != en.branchPC:
				if e.PC > en.branchPC && !en.sawBelow {
					en.sawBelow = true
					en.below = e.PC
				}
				if en.candidate != 0 {
					if e.PC == en.candidate {
						en.sawCandidate = true
					}
					if e.PC > en.candidate && en.aboveCand == 0 {
						en.aboveCand = e.PC
					}
				}
			}
			if !closed {
				kept = append(kept, en)
			}
		}
		p.active = kept
	}

	// Track call depth: the call itself retires in the caller's frame, the
	// return in the callee's, so depth changes take effect afterwards.
	defer func() {
		switch {
		case e.IsCall():
			p.depth++
		case e.IsReturn():
			if p.depth > 0 {
				p.depth--
			}
		}
	}()

	// Conditional branches and jump-table indirect jumps get monitors;
	// calls and returns reconverge trivially at the return address.
	if !e.IsCondBranch() && !(e.IsIndirect() && !e.IsReturn() && !e.IsCall()) {
		return
	}
	en := p.entries[e.PC]
	if en == nil {
		if p.cfg.MaxEntries > 0 && len(p.entries) >= p.cfg.MaxEntries {
			return
		}
		en = &entry{}
		p.entries[e.PC] = en
	}
	if en.active {
		if p.depth != en.depth {
			// A different (deeper) recursive instance of a monitored
			// branch: leave the existing same-frame monitor in place.
			return
		}
		// The same branch retired again in the same frame (a loop): close
		// the previous monitor first.
		p.close(en, CatNone)
		for i, a := range p.active {
			if a == en {
				p.active = append(p.active[:i], p.active[i+1:]...)
				break
			}
		}
	}
	// Open a monitor for this instance.
	en.active = true
	en.sawBelow = false
	en.sawCandidate = false
	en.aboveCand = 0
	en.branchPC = e.PC
	en.depth = p.depth
	en.expiresAt = p.retired + uint64(p.cfg.Window)
	p.active = append(p.active, en)
}

// close reconciles a finished monitor into the entry's candidate.
func (p *Predictor) close(en *entry, forced Category) {
	en.active = false
	if forced == CatReturn {
		// Leaving the function before reconverging: remember that so the
		// spawner skips this branch.
		if en.category == CatReturn {
			en.confidence++
		} else {
			en.category = CatReturn
			en.confidence = 1
		}
		return
	}
	if !en.sawBelow {
		return // no information this instance
	}
	switch {
	case en.candidate == 0:
		// First observation: start from the first below-branch PC.
		en.category = CatBelowBranch
		en.candidate = en.below
		en.confidence = 1
	case en.sawCandidate:
		// The candidate reconverged this instance too.
		en.category = CatBelowBranch
		en.confidence++
	default:
		// The candidate did not appear: it was inside one arm (or one
		// switch case), not at the join. Ratchet it forward to the first
		// PC beyond it seen this instance — for a multiway or if-then-else
		// join, repeated misses walk the candidate up to the true
		// postdominator.
		en.category = CatBelowBranch
		if en.aboveCand != 0 {
			en.candidate = en.aboveCand
		} else {
			en.candidate = en.below
		}
		en.confidence = 1
	}
}

// Predict returns the learned reconvergence point for the branch at pc.
// ok is false below the confidence threshold or for return-category
// branches.
func (p *Predictor) Predict(pc uint64) (uint64, bool) {
	en := p.entries[pc]
	if en == nil || en.category == CatNone || en.category == CatReturn {
		return 0, false
	}
	if en.confidence < p.cfg.ConfThreshold {
		return 0, false
	}
	return en.candidate, true
}

// CategoryOf exposes the learned category for analysis/tests.
func (p *Predictor) CategoryOf(pc uint64) Category {
	if en := p.entries[pc]; en != nil {
		return en.category
	}
	return CatNone
}

// Entries returns the number of tracked static branches.
func (p *Predictor) Entries() int { return len(p.entries) }

// Source adapts the predictor into a core.Source: at conditional branches
// it spawns the predicted reconvergence point, and at call instructions it
// spawns the procedure fall-through (the return address is known at decode
// without any compiler help), exactly as Section 4.4 describes.
type Source struct {
	Pred *Predictor
	Prog *isa.Program

	buf [1]core.Spawn
}

// NewSource wraps a predictor for the given program.
func NewSource(pred *Predictor, prog *isa.Program) *Source {
	return &Source{Pred: pred, Prog: prog}
}

// SpawnsAt implements core.Source.
func (s *Source) SpawnsAt(pc uint64) []core.Spawn {
	inst, ok := s.Prog.InstAt(pc)
	if !ok {
		return nil
	}
	switch {
	case inst.IsCondBranch(), inst.Op == isa.OpJR && !inst.IsReturn():
		if tgt, ok := s.Pred.Predict(pc); ok && tgt != pc {
			s.buf[0] = core.Spawn{From: pc, Target: tgt, Kind: core.KindOther}
			return s.buf[:1]
		}
	case inst.IsCall():
		s.buf[0] = core.Spawn{From: pc, Target: pc + isa.InstSize, Kind: core.KindProcFT}
		return s.buf[:1]
	}
	return nil
}

// OnRetire implements core.Source: the predictor trains on the retirement
// stream, modeling warm-up effects.
func (s *Source) OnRetire(e *trace.Entry) { s.Pred.Observe(e) }
