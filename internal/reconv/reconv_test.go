package reconv

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/trace"
)

// trainOn runs the program functionally and feeds the retirement stream to
// a fresh predictor.
func trainOn(t *testing.T, src string, cfg Config) (*Predictor, *isa.Program, *trace.Trace) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := emu.Run(p, emu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	pred := New(cfg)
	for i := range tr.Entries {
		pred.Observe(&tr.Entries[i])
	}
	return pred, p, tr
}

func TestLearnsIfThenElseJoin(t *testing.T) {
	pred, p, _ := trainOn(t, `
        li   $s7, 2463534242
        li   $t9, 40
loop:   sll  $t0, $s7, 13
        xor  $s7, $s7, $t0
        srl  $t0, $s7, 7
        xor  $s7, $s7, $t0
        andi $t1, $s7, 1
br:     beq  $t1, $zero, els
        addi $s0, $s0, 1
        j    join
els:    addi $s0, $s0, 2
join:   addi $t9, $t9, -1
        bgtz $t9, loop
        halt
`, DefaultConfig())
	got, ok := pred.Predict(p.Labels["br"])
	if !ok {
		t.Fatalf("no confident prediction for the if-then-else branch")
	}
	if got != p.Labels["join"] {
		t.Fatalf("reconvergence = %x, want join %x", got, p.Labels["join"])
	}
	if pred.CategoryOf(p.Labels["br"]) != CatBelowBranch {
		t.Fatalf("category = %v", pred.CategoryOf(p.Labels["br"]))
	}
}

func TestLearnsLoopFallThrough(t *testing.T) {
	pred, p, _ := trainOn(t, `
        li   $t9, 8
outer:  li   $t0, 5
inner:  addi $t0, $t0, -1
lbr:    bgtz $t0, inner
after:  addi $t9, $t9, -1
        bgtz $t9, outer
        halt
`, DefaultConfig())
	got, ok := pred.Predict(p.Labels["lbr"])
	if !ok {
		t.Fatalf("no prediction for the loop branch")
	}
	if got != p.Labels["after"] {
		t.Fatalf("loop reconvergence = %x, want after %x", got, p.Labels["after"])
	}
}

func TestLearnsIndirectJumpJoin(t *testing.T) {
	pred, p, _ := trainOn(t, `
        .data
table:  .word8 c0, c1, c2
        .text
main:   li   $s7, 88172645463325252
        li   $t9, 80
loop:   sll  $t0, $s7, 13
        xor  $s7, $s7, $t0
        srl  $t0, $s7, 17
        xor  $s7, $s7, $t0
        li   $t1, 3
        rem  $t2, $s7, $t1
        bltz $t2, fix
back:   sll  $t2, $t2, 3
        la   $t3, table
        add  $t3, $t3, $t2
        ld   $t4, 0($t3)
jmp:    jr   $t4
        .targets c0, c1, c2
c0:     addi $s0, $s0, 1
        j    join
c1:     addi $s0, $s0, 2
        j    join
c2:     addi $s0, $s0, 3
join:   addi $t9, $t9, -1
        bgtz $t9, loop
        halt
fix:    sub  $t2, $zero, $t2
        j    back
`, DefaultConfig())
	got, ok := pred.Predict(p.Labels["jmp"])
	if !ok {
		t.Fatalf("no prediction for the indirect jump")
	}
	if got != p.Labels["join"] {
		t.Fatalf("switch reconvergence = %x, want join %x", got, p.Labels["join"])
	}
}

// TestRecursionDoesNotPoison: branches inside a recursive function must
// learn their same-frame join, not PCs from deeper invocations.
func TestRecursionDoesNotPoison(t *testing.T) {
	pred, p, _ := trainOn(t, `
        .func main
main:   li   $t9, 30
ml:     andi $a0, $t9, 7      # vary the top-frame argument per call
        addi $a0, $a0, 1
        jal  walk
        addi $t9, $t9, -1
        bgtz $t9, ml
        halt
        .func walk
walk:   addi $sp, $sp, -16
        sd   $ra, 0($sp)
        andi $t0, $a0, 1
wbr:    beq  $t0, $zero, wels
        addi $s0, $s0, 1
        j    wjoin
wels:   addi $s0, $s0, 2
wjoin:  blez $a0, wout
        addi $a0, $a0, -1
        jal  walk
wout:   ld   $ra, 0($sp)
        addi $sp, $sp, 16
        ret
`, DefaultConfig())
	if got, ok := pred.Predict(p.Labels["wbr"]); !ok || got != p.Labels["wjoin"] {
		t.Fatalf("recursive-frame reconvergence = %x,%v want wjoin %x", got, ok, p.Labels["wjoin"])
	}
}

func TestConfidenceThresholdGatesPredictions(t *testing.T) {
	// With a huge threshold nothing is ever served.
	pred, p, _ := trainOn(t, `
        li   $t9, 6
loop:   addi $t9, $t9, -1
lbr:    bgtz $t9, loop
        halt
`, Config{Window: 512, ConfThreshold: 1000})
	if _, ok := pred.Predict(p.Labels["lbr"]); ok {
		t.Fatalf("prediction served below the confidence threshold")
	}
}

func TestMaxEntriesCap(t *testing.T) {
	pred, _, _ := trainOn(t, `
        li   $t9, 4
loop:   blez $zero, n1
n1:     blez $zero, n2
n2:     blez $zero, n3
n3:     addi $t9, $t9, -1
        bgtz $t9, loop
        halt
`, Config{Window: 512, ConfThreshold: 2, MaxEntries: 2})
	if pred.Entries() > 2 {
		t.Fatalf("entries = %d, exceeds cap", pred.Entries())
	}
}

func TestSourceSpawns(t *testing.T) {
	src := `
        .func main
main:   li   $t9, 20
loop:   andi $t0, $t9, 1
br:     beq  $t0, $zero, els
        addi $s0, $s0, 1
        j    join
els:    addi $s0, $s0, 2
join:   jal  helper
        addi $t9, $t9, -1
        bgtz $t9, loop
        halt
        .func helper
helper: addi $s1, $s1, 1
        ret
`
	pred, p, tr := trainOn(t, src, DefaultConfig())
	s := NewSource(pred, p)

	// Call sites spawn the return address without any training.
	callPC := p.Labels["join"]
	got := s.SpawnsAt(callPC)
	if len(got) != 1 || got[0].Target != callPC+isa.InstSize {
		t.Fatalf("call spawn = %v", got)
	}

	// The trained branch spawns its learned reconvergence point.
	if got := s.SpawnsAt(p.Labels["br"]); len(got) != 1 || got[0].Target != p.Labels["join"] {
		t.Fatalf("branch spawn = %v", got)
	}

	// Non-control PCs spawn nothing.
	if got := s.SpawnsAt(p.Labels["main"]); got != nil {
		t.Fatalf("li spawned: %v", got)
	}

	// OnRetire forwards to the predictor.
	s2 := NewSource(New(DefaultConfig()), p)
	for i := range tr.Entries {
		s2.OnRetire(&tr.Entries[i])
	}
	if _, ok := s2.Pred.Predict(p.Labels["br"]); !ok {
		t.Fatalf("OnRetire did not train the predictor")
	}
}

// TestWarmupEffect: predictions are absent early in training — the warm-up
// loss source the paper describes.
func TestWarmupEffect(t *testing.T) {
	p, err := asm.Assemble(`
        li   $t9, 40
loop:   andi $t0, $t9, 1
br:     beq  $t0, $zero, els
        addi $s0, $s0, 1
        j    join
els:    addi $s0, $s0, 2
join:   addi $t9, $t9, -1
        bgtz $t9, loop
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := emu.Run(p, emu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	pred := New(DefaultConfig())
	sawCold := false
	for i := range tr.Entries {
		if i == 8 { // after roughly one iteration
			if _, ok := pred.Predict(p.Labels["br"]); !ok {
				sawCold = true
			}
		}
		pred.Observe(&tr.Entries[i])
	}
	if !sawCold {
		t.Fatalf("predictor confident with almost no training")
	}
	if _, ok := pred.Predict(p.Labels["br"]); !ok {
		t.Fatalf("predictor still cold after full training")
	}
}
