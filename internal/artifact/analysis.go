package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// AnalysisKeySchema identifies the analysis-artifact key layout. The static
// analysis (postdominators, CDG, loop forest, spawn points — see
// internal/core) is a pure function of the same inputs as the trace:
// workload identity, source hash, and the emulation bound (the bound
// matters because profile-observed indirect-jump targets come from the
// trace). It therefore shares the trace key's identity split and never
// depends on policy or machine configuration.
const AnalysisKeySchema = "polyflow-analysis-key/1"

// AnalysisKey is the canonical identity of one workload's serialized
// static-analysis product (polyflow-analysis/1, encoded by
// core.EncodeAnalysis).
type AnalysisKey struct {
	Schema    string `json:"schema"`
	Workload  string `json:"workload"`
	SourceSHA string `json:"source_sha"`
	MaxInstrs int    `json:"max_instrs"`
}

// NewAnalysisKey builds the key for the named workload's analysis product.
// Like NewTraceKey, it fails with ErrUncacheable when sourceSHA is empty.
func NewAnalysisKey(workload, sourceSHA string, maxInstrs int) (AnalysisKey, error) {
	if sourceSHA == "" {
		return AnalysisKey{}, fmt.Errorf("%w: bench %q has no source hash", ErrUncacheable, workload)
	}
	return AnalysisKey{
		Schema:    AnalysisKeySchema,
		Workload:  workload,
		SourceSHA: sourceSHA,
		MaxInstrs: maxInstrs,
	}, nil
}

// Hash returns the key's content address: the hex SHA-256 of its canonical
// JSON serialization. The Schema field keeps analysis, trace and simulation
// keys collision-free.
func (k AnalysisKey) Hash() string {
	data, err := json.Marshal(k)
	if err != nil {
		panic(err) // strings and ints; Marshal cannot fail
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
