package artifact

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// diskTier stores artifacts as files laid out by hash:
//
//	<root>/polyflow-cache.marker
//	<root>/<hh>/<hash>.json
//
// where hh is the first two hex digits of the hash (256-way fan-out keeps
// directories small at millions of entries). Writes go through a temp file
// in the same directory plus rename, so concurrent producers of the same
// artifact race benignly: both write identical bytes and the rename is
// atomic. The marker file guards against pointing the cache at a directory
// that holds anything else.
type diskTier struct {
	root string
	seq  atomic.Uint64 // distinguishes temp files within one process
}

const markerName = "polyflow-cache.marker"

func newDiskTier(root string) (*diskTier, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: creating cache dir: %w", err)
	}
	marker := filepath.Join(root, markerName)
	if _, err := os.Stat(marker); errors.Is(err, fs.ErrNotExist) {
		// Refuse to adopt a non-empty directory that isn't already a cache.
		entries, err := os.ReadDir(root)
		if err != nil {
			return nil, err
		}
		if len(entries) > 0 {
			return nil, fmt.Errorf("artifact: %s is non-empty and not a polyflow cache (no %s)", root, markerName)
		}
		if err := os.WriteFile(marker, []byte("polyflow artifact cache; see docs/SERVICE.md\n"), 0o644); err != nil {
			return nil, err
		}
	} else if err != nil {
		return nil, err
	}
	return &diskTier{root: root}, nil
}

func (d *diskTier) path(hash string) (string, error) {
	if len(hash) < 3 || strings.ContainsAny(hash, "/\\.") {
		return "", fmt.Errorf("artifact: malformed hash %q", hash)
	}
	return filepath.Join(d.root, hash[:2], hash+".json"), nil
}

func (d *diskTier) get(hash string) ([]byte, bool, error) {
	p, err := d.path(hash)
	if err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// open returns the artifact's backing file for random access, plus its
// size. The caller owns the file and must close it.
func (d *diskTier) open(hash string) (*os.File, int64, bool, error) {
	p, err := d.path(hash)
	if err != nil {
		return nil, 0, false, err
	}
	f, err := os.Open(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, false, err
	}
	return f, fi.Size(), true, nil
}

func (d *diskTier) put(hash string, data []byte) error {
	p, err := d.path(hash)
	if err != nil {
		return err
	}
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := filepath.Join(dir, fmt.Sprintf(".tmp-%d-%d", os.Getpid(), d.seq.Add(1)))
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
