package artifact_test

// Cache-correctness sweep: for every workload, a cached simulation artifact
// must be byte-identical to a freshly computed one — both the machine
// Result and the polyflow-attrib/1 report. This is the end-to-end guarantee
// behind polyflowd serving cached results: a hit is indistinguishable from
// rerunning the pipeline.

import (
	"bytes"
	"context"
	"testing"

	"repro"
	"repro/internal/artifact"
	"repro/internal/attrib"
	"repro/internal/machine"
)

// computeArtifact runs the full postdoms simulation with attribution and
// encodes the artifact, exactly as polyflowd's job path does.
func computeArtifact(t *testing.T, b *speculate.Bench, key artifact.Key) []byte {
	t.Helper()
	p, ok := speculate.PolicyByName("postdoms")
	if !ok {
		t.Fatal("postdoms policy missing")
	}
	cfg := machine.PolyFlowConfig()
	tbl := attrib.NewTable()
	cfg.Attribution = tbl
	res, err := b.RunPolicyContext(context.Background(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := machine.VerifyAttribution(tbl, res); err != nil {
		t.Fatal(err)
	}
	rep := attrib.NewReport(tbl, b.Name, "postdoms", res.Config, res.Cycles, res.Retired)
	data, err := artifact.EncodeSim(&artifact.SimArtifact{Key: key, Result: res, Attrib: rep})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCachedVsFreshByteIdentical(t *testing.T) {
	names := speculate.WorkloadNames()
	if len(names) != 12 {
		t.Fatalf("workloads = %d, want 12", len(names))
	}
	if testing.Short() {
		names = names[:3]
	}
	cache, err := artifact.New(artifact.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b, err := speculate.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			key, err := artifact.NewSimKey(b.Name, b.SourceSHA, b.MaxInstrs, "postdoms", machine.PolyFlowConfig())
			if err != nil {
				t.Fatal(err)
			}
			compute := func(ctx context.Context) ([]byte, error) {
				return computeArtifact(t, b, key), nil
			}

			first, hit, err := cache.GetOrCompute(context.Background(), key.Hash(), compute)
			if err != nil {
				t.Fatal(err)
			}
			if hit {
				t.Fatal("first request reported a cache hit")
			}
			second, hit, err := cache.GetOrCompute(context.Background(), key.Hash(), compute)
			if err != nil {
				t.Fatal(err)
			}
			if !hit {
				t.Fatal("second request missed the cache")
			}
			if !bytes.Equal(first, second) {
				t.Fatal("cached artifact differs from the one stored")
			}

			// The pipeline is deterministic: recomputing from scratch must
			// reproduce the cached bytes exactly — Result and attribution
			// report included.
			fresh := computeArtifact(t, b, key)
			if !bytes.Equal(fresh, second) {
				t.Fatal("freshly computed artifact differs from cached bytes")
			}

			art, err := artifact.DecodeSim(second)
			if err != nil {
				t.Fatal(err)
			}
			if art.Result.Cycles <= 0 || art.Result.Retired <= 0 {
				t.Fatalf("implausible cached result: %+v", art.Result)
			}
			if art.Attrib == nil || art.Attrib.Schema != attrib.Schema {
				t.Fatalf("cached artifact lacks a valid attribution report")
			}
		})
	}
}
