package artifact

import (
	"errors"
	"testing"

	"repro/internal/machine"
)

func TestTraceKeyHashStable(t *testing.T) {
	k1, err := NewTraceKey("gzip", "abc123", 1_500_000)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := NewTraceKey("gzip", "abc123", 1_500_000)
	if k1.Hash() != k2.Hash() {
		t.Fatal("identical trace keys hash differently")
	}
	for _, other := range []TraceKey{
		{Schema: TraceKeySchema, Workload: "mcf", SourceSHA: "abc123", MaxInstrs: 1_500_000},
		{Schema: TraceKeySchema, Workload: "gzip", SourceSHA: "def456", MaxInstrs: 1_500_000},
		{Schema: TraceKeySchema, Workload: "gzip", SourceSHA: "abc123", MaxInstrs: 1},
	} {
		if other.Hash() == k1.Hash() {
			t.Fatalf("distinct key %+v collides", other)
		}
	}
}

func TestTraceKeyUncacheable(t *testing.T) {
	if _, err := NewTraceKey("gzip", "", 100); !errors.Is(err, ErrUncacheable) {
		t.Fatalf("empty source hash: got %v, want ErrUncacheable", err)
	}
}

func TestTraceKeyDisjointFromSimKey(t *testing.T) {
	// The same semantic inputs must address different artifacts for the
	// trace product and any simulation product.
	tk, err := NewTraceKey("gzip", "abc123", 100)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := NewSimKey("gzip", "abc123", 100, "postdoms", machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tk.Hash() == sk.Hash() {
		t.Fatal("trace key collides with sim key")
	}
}
