package artifact

import (
	"bytes"
	"container/list"
	"context"
	"io"
	"sync"
	"sync/atomic"
)

// Options sizes a Cache.
type Options struct {
	// Dir is the on-disk tier's root directory; empty disables the disk
	// tier (memory-only cache).
	Dir string
	// MemEntries bounds the in-memory tier's entry count; <= 0 selects 512.
	MemEntries int
	// MemBytes bounds the in-memory tier's total payload bytes; <= 0
	// selects 256 MiB. An artifact larger than the bound is still served,
	// it just never resides in memory.
	MemBytes int64
}

// Stats counts cache traffic. Hits split by the tier that served them.
type Stats struct {
	MemHits    int64
	DiskHits   int64
	Misses     int64
	Stores     int64
	Evictions  int64
	MemEntries int
	MemBytes   int64
}

// Hits returns total hits across both tiers.
func (s Stats) Hits() int64 { return s.MemHits + s.DiskHits }

// Cache is the two-tier content-addressed store: a bounded LRU of recently
// used artifacts in front of an on-disk tier laid out by hash. All methods
// are safe for concurrent use. Payloads are immutable: callers must not
// modify returned byte slices.
type Cache struct {
	disk *diskTier // nil when the disk tier is disabled

	mu         sync.Mutex
	lru        *list.List // front = most recent; values are *memEntry
	idx        map[string]*list.Element
	bytes      int64
	maxEntries int
	maxBytes   int64
	flight     map[string]*call

	memHits, diskHits, misses, stores, evictions atomic.Int64
}

type memEntry struct {
	key  string
	data []byte
}

// call is one in-flight computation shared by concurrent requesters.
type call struct {
	done chan struct{}
	data []byte
	hit  bool
	err  error
}

// New opens a cache, creating the disk directory when needed.
func New(opts Options) (*Cache, error) {
	if opts.MemEntries <= 0 {
		opts.MemEntries = 512
	}
	if opts.MemBytes <= 0 {
		opts.MemBytes = 256 << 20
	}
	c := &Cache{
		lru:        list.New(),
		idx:        map[string]*list.Element{},
		maxEntries: opts.MemEntries,
		maxBytes:   opts.MemBytes,
		flight:     map[string]*call{},
	}
	if opts.Dir != "" {
		d, err := newDiskTier(opts.Dir)
		if err != nil {
			return nil, err
		}
		c.disk = d
	}
	return c, nil
}

// Get fetches the artifact stored under hash, consulting memory then disk
// (promoting a disk hit into memory). The boolean reports a hit.
func (c *Cache) Get(hash string) ([]byte, bool, error) {
	if data, ok := c.memGet(hash); ok {
		c.memHits.Add(1)
		return data, true, nil
	}
	if c.disk != nil {
		data, ok, err := c.disk.get(hash)
		if err != nil {
			return nil, false, err
		}
		if ok {
			c.diskHits.Add(1)
			c.memPut(hash, data)
			return data, true, nil
		}
	}
	c.misses.Add(1)
	return nil, false, nil
}

// Handle is a random-access view of one cached artifact, as returned by
// Open. Memory-tier hits are backed by the resident byte slice; disk-tier
// hits are backed by the file itself, so a large artifact (a multi-megabyte
// trace) can be consumed through io.ReaderAt windows without ever being
// fully resident. Close is a no-op for memory-backed handles.
type Handle struct {
	io.ReaderAt
	size   int64
	closer io.Closer
}

// Size returns the artifact's length in bytes.
func (h *Handle) Size() int64 { return h.size }

// Close releases the underlying file, if any.
func (h *Handle) Close() error {
	if h.closer == nil {
		return nil
	}
	return h.closer.Close()
}

// Open returns a random-access handle on the artifact stored under hash,
// consulting memory then disk. The boolean reports a hit. Unlike Get, a
// disk hit is NOT promoted into the memory tier — Open exists precisely so
// oversized artifacts can bypass memory residency — and the stats counters
// are bumped exactly as Get would bump them, so a caller uses either Get or
// Open for a given lookup, never both.
func (c *Cache) Open(hash string) (*Handle, bool, error) {
	if data, ok := c.memGet(hash); ok {
		c.memHits.Add(1)
		return &Handle{ReaderAt: bytes.NewReader(data), size: int64(len(data))}, true, nil
	}
	if c.disk != nil {
		f, size, ok, err := c.disk.open(hash)
		if err != nil {
			return nil, false, err
		}
		if ok {
			c.diskHits.Add(1)
			return &Handle{ReaderAt: f, size: size, closer: f}, true, nil
		}
	}
	c.misses.Add(1)
	return nil, false, nil
}

// Put stores the artifact under hash in both tiers.
func (c *Cache) Put(hash string, data []byte) error {
	c.stores.Add(1)
	c.memPut(hash, data)
	if c.disk != nil {
		return c.disk.put(hash, data)
	}
	return nil
}

// GetOrCompute returns the artifact under hash, running compute on a miss
// and storing its product. Concurrent calls for the same hash are
// deduplicated: one runs compute, the rest share its outcome. The boolean
// reports whether the artifact came from the cache (for followers of a
// deduplicated computation it reports false: the pipeline did run for
// them, just once for all of them). A compute error is returned to every
// waiter and nothing is stored.
func (c *Cache) GetOrCompute(ctx context.Context, hash string, compute func(ctx context.Context) ([]byte, error)) ([]byte, bool, error) {
	if data, ok := c.memGet(hash); ok {
		c.memHits.Add(1)
		return data, true, nil
	}

	c.mu.Lock()
	if cl, ok := c.flight[hash]; ok {
		c.mu.Unlock()
		select {
		case <-cl.done:
			return cl.data, cl.hit, cl.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	c.flight[hash] = cl
	c.mu.Unlock()

	cl.data, cl.hit, cl.err = c.lead(ctx, hash, compute)
	c.mu.Lock()
	delete(c.flight, hash)
	c.mu.Unlock()
	close(cl.done)
	return cl.data, cl.hit, cl.err
}

// lead is the singleflight leader's path: disk lookup, then compute+store.
func (c *Cache) lead(ctx context.Context, hash string, compute func(ctx context.Context) ([]byte, error)) ([]byte, bool, error) {
	if c.disk != nil {
		data, ok, err := c.disk.get(hash)
		if err != nil {
			return nil, false, err
		}
		if ok {
			c.diskHits.Add(1)
			c.memPut(hash, data)
			return data, true, nil
		}
	}
	c.misses.Add(1)
	data, err := compute(ctx)
	if err != nil {
		return nil, false, err
	}
	if err := c.Put(hash, data); err != nil {
		return nil, false, err
	}
	return data, false, nil
}

// Stats snapshots the cache counters and memory-tier occupancy.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries, bytes := c.lru.Len(), c.bytes
	c.mu.Unlock()
	return Stats{
		MemHits:    c.memHits.Load(),
		DiskHits:   c.diskHits.Load(),
		Misses:     c.misses.Load(),
		Stores:     c.stores.Load(),
		Evictions:  c.evictions.Load(),
		MemEntries: entries,
		MemBytes:   bytes,
	}
}

func (c *Cache) memGet(hash string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[hash]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*memEntry).data, true
}

func (c *Cache) memPut(hash string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[hash]; ok {
		// Same key, same content (content-addressed); just refresh recency.
		c.lru.MoveToFront(el)
		return
	}
	if int64(len(data)) > c.maxBytes {
		return // larger than the whole tier; serve it but don't resident it
	}
	el := c.lru.PushFront(&memEntry{key: hash, data: data})
	c.idx[hash] = el
	c.bytes += int64(len(data))
	for c.lru.Len() > c.maxEntries || c.bytes > c.maxBytes {
		oldest := c.lru.Back()
		if oldest == nil || oldest == el {
			break
		}
		e := oldest.Value.(*memEntry)
		c.lru.Remove(oldest)
		delete(c.idx, e.key)
		c.bytes -= int64(len(e.data))
		c.evictions.Add(1)
	}
}
