// Package artifact is the simulator's content-addressed result cache.
//
// The full pipeline — assemble, emulate, analyze, simulate — is
// deterministic per (program source, machine configuration, spawn policy),
// so its products are cacheable forever under a canonical hash of those
// inputs. The cache is two-tier: a bounded in-memory LRU in front of an
// on-disk store laid out by hash, with singleflight deduplication so
// concurrent identical requests run the pipeline once and share the
// result. polyflowd serves from it; cmd/experiments fills it via
// -cache-dir; cached and freshly computed artifacts are byte-identical
// (enforced by the correctness tests in this package).
//
// See docs/SERVICE.md for the on-disk layout and operational notes.
package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/machine"
)

// KeySchema identifies the key layout. Bump on any change to the fields
// hashed into a key — old cache entries then miss instead of aliasing.
// v2 added the spawn-site mask to the configuration fingerprint.
const KeySchema = "polyflow-sim-key/2"

// ErrUncacheable marks inputs whose identity cannot be captured in a key:
// a bench prepared from an unregistered source, or a configuration with a
// custom cache hierarchy attached. Callers fall back to computing without
// the cache.
var ErrUncacheable = errors.New("artifact: inputs are not cacheable")

// Key is the canonical identity of one simulation: the workload source,
// the emulation bound, the spawn policy, and the machine configuration
// fingerprint. Its hash addresses the artifact in both tiers.
type Key struct {
	Schema    string `json:"schema"`
	Workload  string `json:"workload"`
	SourceSHA string `json:"source_sha"`
	MaxInstrs int    `json:"max_instrs"`
	Policy    string `json:"policy"`
	Config    string `json:"config"`
}

// NewSimKey builds the key for simulating the named workload (with the
// given assembly-source hash and emulation bound) under policy and cfg.
// It fails with ErrUncacheable when sourceSHA is empty or cfg carries a
// custom cache hierarchy.
func NewSimKey(workload, sourceSHA string, maxInstrs int, policy string, cfg machine.Config) (Key, error) {
	if sourceSHA == "" {
		return Key{}, fmt.Errorf("%w: bench %q has no source hash", ErrUncacheable, workload)
	}
	fp, err := ConfigFingerprint(cfg)
	if err != nil {
		return Key{}, err
	}
	return Key{
		Schema:    KeySchema,
		Workload:  workload,
		SourceSHA: sourceSHA,
		MaxInstrs: maxInstrs,
		Policy:    policy,
		Config:    fp,
	}, nil
}

// Hash returns the key's content address: the hex SHA-256 of its canonical
// JSON serialization.
func (k Key) Hash() string {
	data, err := json.Marshal(k)
	if err != nil {
		// Key is a struct of strings and ints; Marshal cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// SourceSHA hashes program source text for use in keys.
func SourceSHA(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:])
}

// configKey shadows machine.Config field-for-field for the semantic
// (timing- or result-relevant) fields. The runtime observer attachments —
// Telemetry, Attribution, OnSample — are deliberately absent: they record
// a run without changing its outcome (the overhead guards and
// VerifyAttribution prove it), so attaching them must not split the cache.
// TestConfigFingerprintCoversEveryField walks machine.Config by reflection
// and fails when a new field is neither mirrored here nor explicitly
// allowlisted as an observer, so a field cannot be forgotten silently.
type configKey struct {
	Name               string
	Width              int
	FetchTasksPerCycle int
	FrontEndDepth      int
	FetchBufPerTask    int
	GshareLog2         int
	GshareHistBits     int
	BTBLog2            int
	RASDepth           int
	RedirectPenalty    int
	ROBSize            int
	SchedSize          int
	NumFUs             int
	CommitWidth        int
	DivertQSize        int
	ROBReserve         int
	SchedReserve       int
	MaxTasks           int
	MaxSpawnDistance   int
	MinSpawnDistance   int
	SpawnFromTailOnly  bool
	StoreSetWays       int
	SpawnLatency       int
	ProfitPatience     int
	ProfitMinTaskLen   int
	SpawnMask          string
	HintCacheLog2      int
	ReclaimROB         bool
	WarmupInstrs       int
	SampleInterval     int64
	Caches             string
	PolledScheduler    bool
	MaxCycles          int64
}

// ConfigFingerprint canonicalizes a machine configuration for keying.
// Configurations with a custom cache hierarchy are ErrUncacheable: the
// hierarchy's geometry lives behind unexported fields, so its identity
// cannot be hashed faithfully.
func ConfigFingerprint(cfg machine.Config) (string, error) {
	if cfg.Caches != nil {
		return "", fmt.Errorf("%w: custom cache hierarchy attached", ErrUncacheable)
	}
	data, err := json.Marshal(configKey{
		Name:               cfg.Name,
		Width:              cfg.Width,
		FetchTasksPerCycle: cfg.FetchTasksPerCycle,
		FrontEndDepth:      cfg.FrontEndDepth,
		FetchBufPerTask:    cfg.FetchBufPerTask,
		GshareLog2:         cfg.GshareLog2,
		GshareHistBits:     cfg.GshareHistBits,
		BTBLog2:            cfg.BTBLog2,
		RASDepth:           cfg.RASDepth,
		RedirectPenalty:    cfg.RedirectPenalty,
		ROBSize:            cfg.ROBSize,
		SchedSize:          cfg.SchedSize,
		NumFUs:             cfg.NumFUs,
		CommitWidth:        cfg.CommitWidth,
		DivertQSize:        cfg.DivertQSize,
		ROBReserve:         cfg.ROBReserve,
		SchedReserve:       cfg.SchedReserve,
		MaxTasks:           cfg.MaxTasks,
		MaxSpawnDistance:   cfg.MaxSpawnDistance,
		MinSpawnDistance:   cfg.MinSpawnDistance,
		SpawnFromTailOnly:  cfg.SpawnFromTailOnly,
		StoreSetWays:       cfg.StoreSetWays,
		SpawnLatency:       cfg.SpawnLatency,
		ProfitPatience:     cfg.ProfitPatience,
		ProfitMinTaskLen:   cfg.ProfitMinTaskLen,
		SpawnMask:          cfg.SpawnMask.Encode(),
		HintCacheLog2:      cfg.HintCacheLog2,
		ReclaimROB:         cfg.ReclaimROB,
		WarmupInstrs:       cfg.WarmupInstrs,
		SampleInterval:     cfg.SampleInterval,
		Caches:             "default",
		PolledScheduler:    cfg.PolledScheduler,
		MaxCycles:          cfg.MaxCycles,
	})
	if err != nil {
		return "", err
	}
	return string(data), nil
}
