package artifact

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/attrib"
	"repro/internal/cachesim"
	"repro/internal/machine"
	"repro/internal/telemetry"
)

// observerFields attach run observers without changing the run's outcome;
// they are deliberately absent from the fingerprint so attaching telemetry
// or attribution does not split the cache. Everything else in
// machine.Config must move the fingerprint.
var observerFields = map[string]bool{
	"Telemetry":   true,
	"Attribution": true,
	"OnSample":    true,
}

// setObserver attaches a non-nil observer to the named field.
func setObserver(t *testing.T, cfg *machine.Config, name string) {
	t.Helper()
	switch name {
	case "Telemetry":
		cfg.Telemetry = telemetry.NewCollector(telemetry.Config{})
	case "Attribution":
		cfg.Attribution = attrib.NewTable()
	case "OnSample":
		cfg.OnSample = func(cycle, retired int64) {}
	default:
		t.Fatalf("observer field %q has no setter — extend setObserver", name)
	}
}

// TestConfigFingerprintCoversEveryField walks machine.Config by reflection:
// mutating any non-observer field must change the fingerprint (or make the
// config uncacheable), so a newly added field cannot silently alias cache
// entries computed under different configurations.
func TestConfigFingerprintCoversEveryField(t *testing.T) {
	base := machine.PolyFlowConfig()
	baseFP, err := ConfigFingerprint(base)
	if err != nil {
		t.Fatal(err)
	}
	typ := reflect.TypeOf(base)
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		cfg := base

		if observerFields[f.Name] {
			setObserver(t, &cfg, f.Name)
			fp, err := ConfigFingerprint(cfg)
			if err != nil {
				t.Errorf("observer field %s: fingerprint failed: %v", f.Name, err)
			} else if fp != baseFP {
				t.Errorf("observer field %s changed the fingerprint; observers must not split the cache", f.Name)
			}
			continue
		}

		if f.Name == "Caches" {
			cfg.Caches = cachesim.DefaultHierarchy()
			if _, err := ConfigFingerprint(cfg); !errors.Is(err, ErrUncacheable) {
				t.Errorf("custom Caches: err = %v, want ErrUncacheable", err)
			}
			continue
		}

		if f.Name == "SpawnMask" {
			// Semantic, but not a scalar: an empty mask must not move the
			// fingerprint (nil and empty are the same mask), a non-empty one
			// must.
			cfg.SpawnMask = machine.NewSpawnMask()
			fp, err := ConfigFingerprint(cfg)
			if err != nil {
				t.Fatalf("empty SpawnMask: fingerprint failed: %v", err)
			}
			if fp != baseFP {
				t.Errorf("attaching an empty SpawnMask changed the fingerprint; nil and empty masks are the same mask")
			}
			cfg.SpawnMask.Add(0x40, 0)
			fp, err = ConfigFingerprint(cfg)
			if err != nil {
				t.Fatalf("non-empty SpawnMask: fingerprint failed: %v", err)
			}
			if fp == baseFP {
				t.Errorf("a non-empty SpawnMask did not change the fingerprint — masked candidates would alias unmasked cache entries")
			}
			continue
		}

		v := reflect.ValueOf(&cfg).Elem().Field(i)
		switch v.Kind() {
		case reflect.Int, reflect.Int64:
			v.SetInt(v.Int() + 1)
		case reflect.Bool:
			v.SetBool(!v.Bool())
		case reflect.String:
			v.SetString(v.String() + "x")
		default:
			t.Fatalf("Config field %s has kind %s the fingerprint test cannot mutate — "+
				"extend this test AND configKey in key.go", f.Name, v.Kind())
		}
		fp, err := ConfigFingerprint(cfg)
		if err != nil {
			t.Errorf("field %s: fingerprint failed after mutation: %v", f.Name, err)
			continue
		}
		if fp == baseFP {
			t.Errorf("mutating Config.%s did not change the fingerprint — add it to configKey in key.go", f.Name)
		}
	}
}

func TestKeyHashMoves(t *testing.T) {
	cfg := machine.PolyFlowConfig()
	k1, err := NewSimKey("gzip", SourceSHA("src"), 1000, "postdoms", cfg)
	if err != nil {
		t.Fatal(err)
	}
	variants := []Key{}
	if k, err := NewSimKey("gzip", SourceSHA("src2"), 1000, "postdoms", cfg); err == nil {
		variants = append(variants, k)
	}
	if k, err := NewSimKey("gzip", SourceSHA("src"), 1001, "postdoms", cfg); err == nil {
		variants = append(variants, k)
	}
	if k, err := NewSimKey("gzip", SourceSHA("src"), 1000, "loopFT", cfg); err == nil {
		variants = append(variants, k)
	}
	cfg2 := cfg
	cfg2.MaxTasks++
	if k, err := NewSimKey("gzip", SourceSHA("src"), 1000, "postdoms", cfg2); err == nil {
		variants = append(variants, k)
	}
	cfg3 := cfg
	cfg3.SpawnMask = machine.NewSpawnMask()
	cfg3.SpawnMask.Add(0x40, 0)
	if k, err := NewSimKey("gzip", SourceSHA("src"), 1000, "postdoms", cfg3); err == nil {
		variants = append(variants, k)
	}
	cfg4 := cfg
	cfg4.SpawnMask = machine.NewSpawnMask()
	cfg4.SpawnMask.Add(0x40, 1)
	if k, err := NewSimKey("gzip", SourceSHA("src"), 1000, "postdoms", cfg4); err == nil {
		variants = append(variants, k)
	}
	if len(variants) != 6 {
		t.Fatalf("built %d variants, want 6", len(variants))
	}
	seen := map[string]bool{k1.Hash(): true}
	for i, k := range variants {
		h := k.Hash()
		if seen[h] {
			t.Fatalf("variant %d collides: %+v", i, k)
		}
		seen[h] = true
	}
	if len(k1.Hash()) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(k1.Hash()))
	}
}

func TestKeyRequiresSourceSHA(t *testing.T) {
	if _, err := NewSimKey("adhoc", "", 0, "postdoms", machine.PolyFlowConfig()); !errors.Is(err, ErrUncacheable) {
		t.Fatalf("empty SourceSHA: err = %v, want ErrUncacheable", err)
	}
}

func TestSimArtifactRoundTrip(t *testing.T) {
	k, err := NewSimKey("gzip", SourceSHA("s"), 10, "postdoms", machine.PolyFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := &SimArtifact{Key: k, Result: machine.Result{Config: "polyflow/postdoms", Cycles: 123, Retired: 456, IPC: 3.7}}
	data, err := EncodeSim(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSim(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.Cycles != 123 || got.Result.IPC != 3.7 || got.Key.Hash() != k.Hash() {
		t.Fatalf("round trip mangled artifact: %+v", got)
	}
	if _, err := DecodeSim([]byte(strings.Replace(string(data), SimSchema, "bogus/9", 1))); err == nil {
		t.Fatal("decoding a wrong-schema artifact succeeded")
	}
}
