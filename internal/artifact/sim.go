package artifact

import (
	"encoding/json"
	"fmt"

	"repro/internal/attrib"
	"repro/internal/machine"
)

// SimSchema identifies the simulation-artifact JSON layout. Bump on any
// incompatible change to SimArtifact or the types it embeds — stale disk
// entries then decode-fail and are recomputed rather than misread.
const SimSchema = "polyflow-simart/1"

// SimArtifact is the cached product of one simulation: the full machine
// result plus, when attribution was attached, the per-spawn-site report.
// Encoding is deterministic (encoding/json over fixed struct fields), so
// a cached artifact is byte-identical to a freshly computed one — the
// property the correctness tests pin across every workload.
type SimArtifact struct {
	Schema string         `json:"schema"`
	Key    Key            `json:"key"`
	Result machine.Result `json:"result"`
	Attrib *attrib.Report `json:"attrib,omitempty"`
}

// EncodeSim serializes the artifact for storage.
func EncodeSim(a *SimArtifact) ([]byte, error) {
	if a.Schema == "" {
		a.Schema = SimSchema
	}
	return json.Marshal(a)
}

// DecodeSim parses a stored artifact and checks its schema.
func DecodeSim(data []byte) (*SimArtifact, error) {
	var a SimArtifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("artifact: parsing sim artifact: %w", err)
	}
	if a.Schema != SimSchema {
		return nil, fmt.Errorf("artifact: sim artifact schema %q, want %q", a.Schema, SimSchema)
	}
	return &a, nil
}
