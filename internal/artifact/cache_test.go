package artifact

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func hashOf(s string) string { return SourceSHA(s) }

func TestMemoryTierLRU(t *testing.T) {
	c, err := New(Options{MemEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	h1, h2, h3 := hashOf("1"), hashOf("2"), hashOf("3")
	c.Put(h1, []byte("one"))
	c.Put(h2, []byte("two"))
	if _, ok, _ := c.Get(h1); !ok {
		t.Fatal("h1 missing before eviction")
	}
	// h1 was just touched, so inserting h3 must evict h2.
	c.Put(h3, []byte("three"))
	if _, ok, _ := c.Get(h2); ok {
		t.Fatal("h2 survived past capacity")
	}
	if data, ok, _ := c.Get(h1); !ok || string(data) != "one" {
		t.Fatalf("h1 = %q,%v", data, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.MemEntries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMemoryTierByteBound(t *testing.T) {
	c, err := New(Options{MemEntries: 100, MemBytes: 10})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(hashOf("a"), []byte("123456"))
	c.Put(hashOf("b"), []byte("123456")) // 12 bytes total > 10: evicts a
	if _, ok, _ := c.Get(hashOf("a")); ok {
		t.Fatal("byte bound not enforced")
	}
	// An artifact larger than the whole tier is not resident but not an error.
	c.Put(hashOf("huge"), make([]byte, 64))
	if st := c.Stats(); st.MemBytes > 10 {
		t.Fatalf("MemBytes = %d, want <= 10", st.MemBytes)
	}
}

func TestDiskTierRoundTripAndPromotion(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h := hashOf("payload")
	if err := c.Put(h, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// A second cache over the same dir sees the entry (disk hit), then
	// serves it from memory (mem hit).
	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if data, ok, err := c2.Get(h); err != nil || !ok || string(data) != "payload" {
		t.Fatalf("disk get = %q,%v,%v", data, ok, err)
	}
	if data, ok, _ := c2.Get(h); !ok || string(data) != "payload" {
		t.Fatalf("promoted get = %q,%v", data, ok)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.MemHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Layout: sharded by the first two hash chars.
	if _, err := os.Stat(filepath.Join(dir, h[:2], h+".json")); err != nil {
		t.Fatalf("expected sharded layout: %v", err)
	}
}

func TestDiskTierRefusesForeignDirectory(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "precious.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Dir: dir}); err == nil {
		t.Fatal("adopted a non-empty non-cache directory")
	}
}

func TestGetOrComputeSingleflight(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := hashOf("shared")
	var computes atomic.Int64
	gate := make(chan struct{})
	compute := func(ctx context.Context) ([]byte, error) {
		computes.Add(1)
		<-gate
		return []byte("product"), nil
	}
	const callers = 16
	var wg sync.WaitGroup
	results := make([][]byte, callers)
	errs := make([]error, callers)
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = c.GetOrCompute(context.Background(), h, compute)
		}(i)
	}
	close(gate)
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil || string(results[i]) != "product" {
			t.Fatalf("caller %d: %q, %v", i, results[i], errs[i])
		}
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1 (singleflight)", n)
	}
	// Next call is a plain memory hit.
	if _, hit, _ := c.GetOrCompute(context.Background(), h, compute); !hit {
		t.Fatal("post-compute call missed")
	}
}

func TestGetOrComputeErrorIsShared(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	_, _, err = c.GetOrCompute(context.Background(), hashOf("bad"), func(ctx context.Context) ([]byte, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Nothing was stored: the next call recomputes.
	data, hit, err := c.GetOrCompute(context.Background(), hashOf("bad"), func(ctx context.Context) ([]byte, error) {
		return []byte("fixed"), nil
	})
	if err != nil || hit || string(data) != "fixed" {
		t.Fatalf("retry = %q,%v,%v", data, hit, err)
	}
}

func TestGetOrComputeManyKeys(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir, MemEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		h := hashOf(fmt.Sprint(i))
		want := fmt.Sprintf("v%d", i)
		data, hit, err := c.GetOrCompute(context.Background(), h, func(ctx context.Context) ([]byte, error) {
			return []byte(want), nil
		})
		if err != nil || hit || string(data) != want {
			t.Fatalf("i=%d: %q,%v,%v", i, data, hit, err)
		}
	}
	// Everything beyond the 4-entry memory tier still hits via disk.
	for i := 0; i < 32; i++ {
		h := hashOf(fmt.Sprint(i))
		data, hit, err := c.GetOrCompute(context.Background(), h, func(ctx context.Context) ([]byte, error) {
			return nil, errors.New("must not recompute")
		})
		if err != nil || !hit || string(data) != fmt.Sprintf("v%d", i) {
			t.Fatalf("i=%d second pass: %q,%v,%v", i, data, hit, err)
		}
	}
}
