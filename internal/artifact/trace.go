package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// TraceKeySchema identifies the trace-artifact key layout. A trace artifact
// is keyed by the semantic emulator inputs only — workload identity, source
// hash, emulation bound — never by policy or machine configuration: the
// same stored trace feeds every policy replay (decode once, simulate many).
const TraceKeySchema = "polyflow-trace-key/1"

// TraceKey is the canonical identity of one functional-emulation product:
// the retired trace plus its occurrence and dependence indexes, serialized
// in the internal/tracestore binary format (polyflow-trace/1). The stored
// payload is the raw tracestore byte stream — its own magic, version, and
// per-frame checksums make a separate envelope redundant.
type TraceKey struct {
	Schema    string `json:"schema"`
	Workload  string `json:"workload"`
	SourceSHA string `json:"source_sha"`
	MaxInstrs int    `json:"max_instrs"`
}

// NewTraceKey builds the key for the named workload's emulation product.
// It fails with ErrUncacheable when sourceSHA is empty (a bench prepared
// from unregistered source has no stable identity).
func NewTraceKey(workload, sourceSHA string, maxInstrs int) (TraceKey, error) {
	if sourceSHA == "" {
		return TraceKey{}, fmt.Errorf("%w: bench %q has no source hash", ErrUncacheable, workload)
	}
	return TraceKey{
		Schema:    TraceKeySchema,
		Workload:  workload,
		SourceSHA: sourceSHA,
		MaxInstrs: maxInstrs,
	}, nil
}

// Hash returns the key's content address: the hex SHA-256 of its canonical
// JSON serialization. Trace and simulation keys can never collide — their
// Schema fields differ.
func (k TraceKey) Hash() string {
	data, err := json.Marshal(k)
	if err != nil {
		// TraceKey is a struct of strings and ints; Marshal cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
