// Package branchpred implements the front-end predictors of the simulated
// machines: a gshare direction predictor (the paper's 16 Kbit gshare with 8
// bits of global history), a last-target BTB for indirect jumps, and a
// return-address stack. Since the timing models fetch along the correct
// path (stall-on-mispredict), these predictors determine penalties, not
// paths.
package branchpred

// Gshare is a global-history XOR-indexed table of 2-bit saturating
// counters. The history register itself is owned by the caller (each
// PolyFlow task carries its own speculative history); the counter table is
// shared, as in an SMT front end.
type Gshare struct {
	table    []uint8
	idxMask  uint32
	histMask uint32
}

// NewGshare builds a predictor with 2^log2Entries counters and histBits of
// global history. The paper's configuration is NewGshare(13, 8):
// 8192 × 2-bit = 16 Kbit.
func NewGshare(log2Entries, histBits int) *Gshare {
	n := 1 << log2Entries
	g := &Gshare{
		table:    make([]uint8, n),
		idxMask:  uint32(n - 1),
		histMask: uint32(1<<histBits) - 1,
	}
	for i := range g.table {
		g.table[i] = 1 // weakly not-taken
	}
	return g
}

func (g *Gshare) index(pc uint64, hist uint32) uint32 {
	return (uint32(pc>>2) ^ (hist << 5)) & g.idxMask
}

// Predict returns the predicted direction for pc under history hist.
func (g *Gshare) Predict(pc uint64, hist uint32) bool {
	return g.table[g.index(pc, hist)] >= 2
}

// Update trains the counter for pc under history hist with the resolved
// direction.
func (g *Gshare) Update(pc uint64, hist uint32, taken bool) {
	i := g.index(pc, hist)
	c := g.table[i]
	if taken {
		if c < 3 {
			g.table[i] = c + 1
		}
	} else if c > 0 {
		g.table[i] = c - 1
	}
}

// PushHistory returns hist shifted by one resolved direction.
func (g *Gshare) PushHistory(hist uint32, taken bool) uint32 {
	hist <<= 1
	if taken {
		hist |= 1
	}
	return hist & g.histMask
}

// BTB is a direct-mapped last-target buffer used to predict indirect jump
// targets.
type BTB struct {
	tags    []uint64
	targets []uint64
	mask    uint64
}

// NewBTB builds a BTB with 2^log2Entries entries.
func NewBTB(log2Entries int) *BTB {
	n := 1 << log2Entries
	return &BTB{
		tags:    make([]uint64, n),
		targets: make([]uint64, n),
		mask:    uint64(n - 1),
	}
}

// Predict returns the predicted target for the jump at pc; ok is false on a
// BTB miss.
func (b *BTB) Predict(pc uint64) (uint64, bool) {
	i := (pc >> 2) & b.mask
	if b.tags[i] != pc {
		return 0, false
	}
	return b.targets[i], true
}

// Update records the resolved target of the jump at pc.
func (b *BTB) Update(pc, target uint64) {
	i := (pc >> 2) & b.mask
	b.tags[i] = pc
	b.targets[i] = target
}

// RAS is a fixed-depth return address stack with wrap-around overwrite.
type RAS struct {
	stack []uint64
	top   int
	n     int
}

// NewRAS builds a stack with the given depth.
func NewRAS(depth int) *RAS {
	return &RAS{stack: make([]uint64, depth)}
}

// Push records a call's return address.
func (r *RAS) Push(addr uint64) {
	r.top = (r.top + 1) % len(r.stack)
	r.stack[r.top] = addr
	if r.n < len(r.stack) {
		r.n++
	}
}

// Pop predicts the target of a return; ok is false when the stack is empty.
func (r *RAS) Pop() (uint64, bool) {
	if r.n == 0 {
		return 0, false
	}
	v := r.stack[r.top]
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.n--
	return v, true
}

// Clone copies the stack, for spawning a task that inherits its parent's
// call context.
func (r *RAS) Clone() *RAS {
	c := &RAS{stack: make([]uint64, len(r.stack)), top: r.top, n: r.n}
	copy(c.stack, r.stack)
	return c
}

// CloneInto copies the stack into dst, reusing dst's storage when the
// depths match (the timing model's task pool recycles RAS instances).
func (r *RAS) CloneInto(dst *RAS) {
	if len(dst.stack) != len(r.stack) {
		dst.stack = make([]uint64, len(r.stack))
	}
	copy(dst.stack, r.stack)
	dst.top, dst.n = r.top, r.n
}

// Depth returns the stack's configured depth.
func (r *RAS) Depth() int { return len(r.stack) }

// Reset empties the stack without reallocating.
func (r *RAS) Reset() {
	r.top, r.n = 0, 0
}
