package branchpred

import (
	"testing"
	"testing/quick"
)

func TestGshareLearnsBias(t *testing.T) {
	g := NewGshare(13, 8)
	var hist uint32
	pc := uint64(0x1000)
	// Train an always-taken branch.
	for i := 0; i < 10; i++ {
		g.Update(pc, hist, true)
		hist = g.PushHistory(hist, true)
	}
	if !g.Predict(pc, hist) {
		t.Fatalf("always-taken branch predicted not-taken")
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	// Alternating T/NT is perfectly predictable with global history.
	g := NewGshare(13, 8)
	var hist uint32
	pc := uint64(0x2000)
	taken := false
	// Warm up.
	for i := 0; i < 64; i++ {
		g.Update(pc, hist, taken)
		hist = g.PushHistory(hist, taken)
		taken = !taken
	}
	correct := 0
	for i := 0; i < 64; i++ {
		if g.Predict(pc, hist) == taken {
			correct++
		}
		g.Update(pc, hist, taken)
		hist = g.PushHistory(hist, taken)
		taken = !taken
	}
	if correct < 60 {
		t.Fatalf("alternating pattern accuracy %d/64", correct)
	}
}

func TestGshareCounterSaturation(t *testing.T) {
	g := NewGshare(4, 2)
	for i := 0; i < 100; i++ {
		g.Update(0x10, 0, true)
	}
	// One contrary outcome must not flip a saturated counter.
	g.Update(0x10, 0, false)
	if !g.Predict(0x10, 0) {
		t.Fatalf("saturated counter flipped after one contrary outcome")
	}
}

func TestPushHistoryMask(t *testing.T) {
	g := NewGshare(13, 4)
	h := uint32(0)
	for i := 0; i < 32; i++ {
		h = g.PushHistory(h, true)
	}
	if h != 0xf {
		t.Fatalf("history = %x, want masked to 4 bits", h)
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(6)
	if _, ok := b.Predict(0x100); ok {
		t.Fatalf("cold BTB hit")
	}
	b.Update(0x100, 0x500)
	if tgt, ok := b.Predict(0x100); !ok || tgt != 0x500 {
		t.Fatalf("BTB mispredicts after update")
	}
	b.Update(0x100, 0x600) // last-target semantics
	if tgt, _ := b.Predict(0x100); tgt != 0x600 {
		t.Fatalf("BTB not last-target")
	}
	// Aliasing entry evicts (direct mapped).
	alias := uint64(0x100 + (1 << 6 << 2))
	b.Update(alias, 0x700)
	if _, ok := b.Predict(0x100); ok {
		t.Fatalf("direct-mapped conflict not evicted")
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(8)
	if _, ok := r.Pop(); ok {
		t.Fatalf("empty RAS popped")
	}
	r.Push(0x10)
	r.Push(0x20)
	if v, ok := r.Pop(); !ok || v != 0x20 {
		t.Fatalf("pop = %x, want 0x20", v)
	}
	if v, ok := r.Pop(); !ok || v != 0x10 {
		t.Fatalf("pop = %x, want 0x10", v)
	}
	if _, ok := r.Pop(); ok {
		t.Fatalf("over-pop succeeded")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites the oldest
	if v, _ := r.Pop(); v != 3 {
		t.Fatalf("pop = %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Fatalf("pop = %d, want 2", v)
	}
	if _, ok := r.Pop(); ok {
		t.Fatalf("depth-2 stack held three entries")
	}
}

func TestRASClone(t *testing.T) {
	r := NewRAS(4)
	r.Push(0x10)
	c := r.Clone()
	c.Push(0x20)
	if v, _ := r.Pop(); v != 0x10 {
		t.Fatalf("clone mutated the original")
	}
	if v, _ := c.Pop(); v != 0x20 {
		t.Fatalf("clone lost its own push")
	}
}

// TestQuickRAS: for any sequence of pushes within capacity, pops return
// them in reverse order.
func TestQuickRAS(t *testing.T) {
	prop := func(vals []uint64) bool {
		if len(vals) > 16 {
			vals = vals[:16]
		}
		r := NewRAS(16)
		for _, v := range vals {
			r.Push(v)
		}
		for i := len(vals) - 1; i >= 0; i-- {
			got, ok := r.Pop()
			if !ok || got != vals[i] {
				return false
			}
		}
		_, ok := r.Pop()
		return !ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
