package cdg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dom"
)

// paperFigure1 is the paper's example flow graph (loop with if-then-else):
// A=0 B=1 C=2 D=3 E=4 F=5 exit=6.
func paperFigure1() [][]int {
	return [][]int{{1}, {2, 3}, {4}, {4}, {5}, {0, 6}, {}}
}

func buildPaperCDG() *Graph {
	succs := paperFigure1()
	pdom := dom.Compute(dom.Reverse(succs), 6)
	return Build(succs, pdom)
}

// TestPaperFigure3 checks the control dependences of the paper's Figure 3:
// "blocks A, B, E and F are all control dependent on the loop branch in
// block F, while block E is not control dependent on either B, C or D".
func TestPaperFigure3(t *testing.T) {
	g := buildPaperCDG()
	wantF := map[int]bool{0: true, 1: true, 4: true, 5: true}
	gotF := map[int]bool{}
	for _, x := range g.Controls[5] {
		gotF[x] = true
	}
	for x := range wantF {
		if !gotF[x] {
			t.Errorf("block %d must be control dependent on F", x)
		}
	}
	for _, b := range []int{1, 2, 3} {
		for _, x := range g.Controls[b] {
			if x == 4 {
				t.Errorf("E must not be control dependent on block %d", b)
			}
		}
	}
	// C and D are control dependent on B.
	gotB := map[int]bool{}
	for _, x := range g.Controls[1] {
		gotB[x] = true
	}
	if !gotB[2] || !gotB[3] {
		t.Errorf("C and D must be control dependent on B, got %v", g.Controls[1])
	}
}

// TestControlEquivalence checks the property motivating control-equivalent
// spawning: "Blocks A, B, E and F are control equivalent".
func TestControlEquivalence(t *testing.T) {
	g := buildPaperCDG()
	ce := [][2]int{{0, 1}, {0, 4}, {0, 5}, {1, 4}, {4, 5}}
	for _, p := range ce {
		if !g.ControlEquivalent(p[0], p[1]) {
			t.Errorf("blocks %d and %d must be control equivalent (deps %v vs %v)",
				p[0], p[1], g.DependsOn[p[0]], g.DependsOn[p[1]])
		}
	}
	if g.ControlEquivalent(2, 4) {
		t.Errorf("C and E must not be control equivalent")
	}
}

func TestStraightLineHasNoDependences(t *testing.T) {
	succs := [][]int{{1}, {2}, {}}
	pdom := dom.Compute(dom.Reverse(succs), 2)
	g := Build(succs, pdom)
	for v, deps := range g.DependsOn {
		if len(deps) != 0 {
			t.Fatalf("straight-line block %d has control deps %v", v, deps)
		}
	}
}

func TestDiamondDependences(t *testing.T) {
	succs := [][]int{{1, 2}, {3}, {3}, {}}
	pdom := dom.Compute(dom.Reverse(succs), 3)
	g := Build(succs, pdom)
	if len(g.Controls[0]) != 2 {
		t.Fatalf("branch controls %v, want the two arms", g.Controls[0])
	}
	if len(g.DependsOn[3]) != 0 {
		t.Fatalf("join must not be control dependent on the branch")
	}
}

// TestQuickFOWDefinition validates the construction against the
// Ferrante-Ottenstein-Warren definition on random graphs: X is control
// dependent on A iff A has a successor B with X postdominating B, and X
// does not strictly postdominate A.
func TestQuickFOWDefinition(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + int(size)%10
		succs := make([][]int, n+1) // node n is the virtual exit
		for v := 0; v < n; v++ {
			deg := 1 + r.Intn(2)
			for k := 0; k < deg; k++ {
				succs[v] = append(succs[v], r.Intn(n+1))
			}
		}
		pdom := dom.Compute(dom.Reverse(succs), n)
		g := Build(succs, pdom)
		for a := 0; a <= n; a++ {
			if !pdom.Reachable(a) {
				continue
			}
			dep := map[int]bool{}
			for _, b := range succs[a] {
				if !pdom.Reachable(b) {
					continue
				}
				for x := 0; x <= n; x++ {
					if pdom.Reachable(x) && pdom.Dominates(x, b) && !(x != a && pdom.Dominates(x, a)) {
						dep[x] = true
					}
				}
			}
			got := map[int]bool{}
			for _, x := range g.Controls[a] {
				got[x] = true
			}
			for x := range dep {
				if !got[x] {
					return false
				}
			}
			for x := range got {
				if !dep[x] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
