// Package cdg builds the control dependence graph from a postdominator
// tree using the Ferrante–Ottenstein–Warren construction: block X is
// control dependent on branch block A (via edge A→B) when X postdominates B
// but does not strictly postdominate A. This is the graph whose unfolding
// the paper's control-equivalent spawning exploits.
package cdg

import "repro/internal/dom"

// Graph is a control dependence graph over the same node IDs as the CFG it
// was built from.
type Graph struct {
	// Controls[a] lists the blocks control dependent on a, deduplicated,
	// in discovery order.
	Controls [][]int
	// DependsOn[x] lists the blocks x is control dependent on.
	DependsOn [][]int
}

// Build constructs the CDG for the CFG given by succs, using its
// postdominator tree pdom (computed on the reversed graph rooted at the
// virtual exit).
func Build(succs [][]int, pdom *dom.Tree) *Graph {
	n := len(succs)
	g := &Graph{
		Controls:  make([][]int, n),
		DependsOn: make([][]int, n),
	}
	seen := make(map[[2]int]bool)
	add := func(a, x int) {
		k := [2]int{a, x}
		if seen[k] {
			return
		}
		seen[k] = true
		g.Controls[a] = append(g.Controls[a], x)
		g.DependsOn[x] = append(g.DependsOn[x], a)
	}
	for a := 0; a < n; a++ {
		if !pdom.Reachable(a) {
			continue
		}
		stop := pdom.IDom[a]
		for _, b := range succs[a] {
			if !pdom.Reachable(b) {
				continue
			}
			// Walk from b up the postdominator tree to ipdom(a),
			// exclusive; every visited node is control dependent on a.
			for x := b; x != stop && x != -1; x = pdom.IDom[x] {
				add(a, x)
			}
		}
	}
	return g
}

// ControlEquivalent reports whether blocks x and y have identical control
// dependence sets — the relation under which the paper calls a spawn point
// "control equivalent" to the path reaching its branch.
func (g *Graph) ControlEquivalent(x, y int) bool {
	a, b := g.DependsOn[x], g.DependsOn[y]
	if len(a) != len(b) {
		return false
	}
	set := make(map[int]bool, len(a))
	for _, v := range a {
		set[v] = true
	}
	for _, v := range b {
		if !set[v] {
			return false
		}
	}
	return true
}
