package attrib

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for k := uint8(0); int(k) < numKinds; k++ {
		name := KindName(k)
		got, ok := KindByName(name)
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %d,%v, want %d", name, got, ok, k)
		}
	}
	if KindName(Root) != "root" {
		t.Errorf("Root name = %q", KindName(Root))
	}
	if _, ok := KindByName("bogus"); ok {
		t.Errorf("KindByName accepted a bogus label")
	}
}

func TestTableSiteAndLookup(t *testing.T) {
	tbl := NewTable()
	// The root site (PC 0, Root) must not collide with (PC 0, kind 0).
	tbl.Site(0, Root).Spawns = 1
	tbl.Site(0, 0).Spawns = 7
	if got := tbl.Lookup(0, Root).Spawns; got != 1 {
		t.Fatalf("root site = %d, want 1", got)
	}
	if got := tbl.Lookup(0, 0).Spawns; got != 7 {
		t.Fatalf("(0,loop) site = %d, want 7", got)
	}
	if tbl.Lookup(4, 0) != nil {
		t.Fatalf("Lookup invented a site")
	}
	if tbl.NumSites() != 2 {
		t.Fatalf("NumSites = %d, want 2", tbl.NumSites())
	}
}

// TestTableGrow inserts enough sites to force several growths and checks
// nothing is lost or double-counted.
func TestTableGrow(t *testing.T) {
	tbl := NewTable()
	const n = 5000
	for i := 0; i < n; i++ {
		pc := uint64(0x400000 + 4*i)
		kind := uint8(i % numKinds)
		st := tbl.Site(pc, kind)
		st.Spawns = int64(i)
		st.CreditedCycles = int64(2 * i)
	}
	if tbl.NumSites() != n {
		t.Fatalf("NumSites = %d, want %d", tbl.NumSites(), n)
	}
	var wantSpawns, wantCycles int64
	for i := 0; i < n; i++ {
		wantSpawns += int64(i)
		wantCycles += int64(2 * i)
		pc := uint64(0x400000 + 4*i)
		st := tbl.Lookup(pc, uint8(i%numKinds))
		if st == nil || st.Spawns != int64(i) {
			t.Fatalf("site %d lost after growth", i)
		}
	}
	sum := tbl.Totals()
	if sum.Spawns != wantSpawns || sum.CreditedCycles != wantCycles {
		t.Fatalf("totals = %d/%d, want %d/%d", sum.Spawns, sum.CreditedCycles, wantSpawns, wantCycles)
	}
	seen := 0
	tbl.ForEach(func(_ uint64, _ uint8, _ *SiteStats) { seen++ })
	if seen != n {
		t.Fatalf("ForEach visited %d sites, want %d", seen, n)
	}
}

func TestTableReset(t *testing.T) {
	tbl := NewTable()
	tbl.Site(100, 2).Spawns = 5
	tbl.UnattributedViolations = 3
	tbl.UnattributedForeclosures = 4
	tbl.Reset()
	if tbl.NumSites() != 0 || tbl.UnattributedViolations != 0 || tbl.UnattributedForeclosures != 0 {
		t.Fatalf("Reset left state behind: %+v", tbl)
	}
	if tbl.Lookup(100, 2) != nil {
		t.Fatalf("Reset kept a site")
	}
	// Steady-state reuse must not allocate.
	allocs := testing.AllocsPerRun(10, func() {
		tbl.Reset()
		tbl.Site(100, 2).Spawns++
	})
	if allocs != 0 {
		t.Fatalf("Reset+Site allocates %v objects per cycle", allocs)
	}
}

func buildTestTable() *Table {
	tbl := NewTable()
	*tbl.Site(0, Root) = SiteStats{Spawns: 1, AliveAtEnd: 1, InstrsRetired: 900, CreditedCycles: 5000}
	*tbl.Site(0x400100, uint8(core.KindLoop)) = SiteStats{
		Spawns: 10, Rejected: 2, Retired: 8, SquashCollateral: 1, SquashReclaim: 1,
		InstrsRetired: 800, SquashedInstrs: 40, CreditedCycles: 2000, WastedCycles: 300,
	}
	*tbl.Site(0x400200, uint8(core.KindHammock)) = SiteStats{
		Spawns: 4, Retired: 3, AliveAtEnd: 1, SquashViolation: 2,
		InstrsRetired: 120, SquashedInstrs: 33, CreditedCycles: 600, Foreclosures: 1,
	}
	tbl.UnattributedViolations = 1
	return tbl
}

func TestReportRoundTrip(t *testing.T) {
	rep := NewReport(buildTestTable(), "gzip", "postdoms", "polyflow", 12345, 1820)
	if len(rep.Sites) != 3 {
		t.Fatalf("report has %d sites, want 3", len(rep.Sites))
	}
	// Sites sort by (PC, kind): root (PC 0) first.
	if rep.Sites[0].Kind != "root" || rep.Sites[1].PC != "0x400100" || rep.Sites[2].PC != "0x400200" {
		t.Fatalf("sites out of order: %+v", rep.Sites)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatalf("roundtrip changed report:\nout: %+v\nback: %+v", rep, back)
	}
	if _, err := ReadReport(strings.NewReader(`{"schema":"bogus/9"}`)); err == nil {
		t.Fatalf("ReadReport accepted a wrong schema")
	}
}

func TestReportRollupsAndText(t *testing.T) {
	rep := NewReport(buildTestTable(), "gzip", "postdoms", "polyflow", 12345, 1820)
	rollups := rep.Rollups()
	byKind := map[string]Rollup{}
	for _, ru := range rollups {
		byKind[ru.Kind] = ru
	}
	if ru := byKind["loop"]; ru.Sites != 1 || ru.Spawns != 10 {
		t.Fatalf("loop rollup = %+v", ru)
	}
	if ru := byKind["hammock"]; ru.SquashViolation != 2 || ru.Foreclosures != 1 {
		t.Fatalf("hammock rollup = %+v", ru)
	}
	// Fixed kind order: loop before hammock before root.
	order := []string{}
	for _, ru := range rollups {
		order = append(order, ru.Kind)
	}
	if !reflect.DeepEqual(order, []string{"loop", "hammock", "root"}) {
		t.Fatalf("rollup order = %v", order)
	}
	var buf strings.Builder
	if err := rep.WriteText(&buf, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"gzip/postdoms/polyflow", "per-category rollup", "unattributed: 1 violations",
		"top 2 sites", "0x400100", "loop", "spawn share:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
	// topN=2 must drop the lowest-credited site (hammock's 600).
	if strings.Contains(strings.SplitN(out, "top 2 sites", 2)[1], "0x400200") {
		t.Fatalf("topN did not truncate:\n%s", out)
	}
}

func TestDiff(t *testing.T) {
	a := NewReport(buildTestTable(), "gzip", "postdoms", "", 12345, 1820)
	same := NewReport(buildTestTable(), "gzip", "postdoms", "", 12345, 1820)
	if d := DiffReports(a, same); d.Changed() {
		t.Fatalf("identical reports diff as changed: %+v", d.Sites)
	}

	tbl := buildTestTable()
	tbl.Site(0x400100, uint8(core.KindLoop)).CreditedCycles += 500 // biggest movement
	tbl.Site(0x400200, uint8(core.KindHammock)).Retired++
	tbl.Site(0x400300, uint8(core.KindProcFT)).Spawns = 1 // appears only in b
	b := NewReport(tbl, "gzip", "postdoms", "", 13000, 1830)

	d := DiffReports(a, b)
	if !d.Changed() {
		t.Fatalf("diff missed the changes")
	}
	if len(d.Sites) != 3 {
		t.Fatalf("diff found %d sites, want 3: %+v", len(d.Sites), d.Sites)
	}
	if d.Sites[0].PC != "0x400100" {
		t.Fatalf("diff not ranked by credited-cycle movement: %+v", d.Sites)
	}
	var newSite *SiteDelta
	for i := range d.Sites {
		if d.Sites[i].PC == "0x400300" {
			newSite = &d.Sites[i]
		}
	}
	if newSite == nil || newSite.InA || !newSite.InB {
		t.Fatalf("appearing site not flagged: %+v", newSite)
	}

	var buf strings.Builder
	if err := d.WriteText(&buf, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"attribution diff", "per-category movement", "+new",
		"2000->2500", "3 sites changed",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff text missing %q:\n%s", want, out)
		}
	}
}
