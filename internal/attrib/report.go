package attrib

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the attribution report JSON layout. Bump on any
// incompatible change; polystat refuses to diff mismatched schemas.
const Schema = "polyflow-attrib/1"

// Report is the serializable snapshot of one run's attribution table,
// with enough run identity (bench, policy, config) to label diffs.
// Sites are sorted by (PC, kind) so two reports of the same workload
// diff cleanly line by line.
type Report struct {
	Schema  string `json:"schema"`
	Bench   string `json:"bench,omitempty"`
	Policy  string `json:"policy,omitempty"`
	Config  string `json:"config,omitempty"`
	Cycles  int64  `json:"cycles"`
	Retired int64  `json:"retired"`

	UnattributedViolations   int64 `json:"unattributed_violations,omitempty"`
	UnattributedForeclosures int64 `json:"unattributed_foreclosures,omitempty"`

	Sites []Site `json:"sites"`
}

// Site is one spawn site in a report: the packed table record plus its
// identity rendered stably (hex PC, category name).
type Site struct {
	PC   string `json:"pc"`
	Kind string `json:"kind"`
	SiteStats
}

// PCValue parses the site's hex PC.
func (s *Site) PCValue() uint64 {
	v, _ := strconv.ParseUint(strings.TrimPrefix(s.PC, "0x"), 16, 64)
	return v
}

// NewReport snapshots a table into a sorted, serializable report.
// cycles/retired label the run the table observed.
func NewReport(t *Table, bench, policy, config string, cycles, retired int64) *Report {
	r := &Report{
		Schema:  Schema,
		Bench:   bench,
		Policy:  policy,
		Config:  config,
		Cycles:  cycles,
		Retired: retired,

		UnattributedViolations:   t.UnattributedViolations,
		UnattributedForeclosures: t.UnattributedForeclosures,
		Sites:                    make([]Site, 0, t.NumSites()),
	}
	type rawSite struct {
		pc   uint64
		kind uint8
		st   SiteStats
	}
	raw := make([]rawSite, 0, t.NumSites())
	t.ForEach(func(pc uint64, kind uint8, st *SiteStats) {
		raw = append(raw, rawSite{pc, kind, *st})
	})
	sort.Slice(raw, func(i, j int) bool {
		if raw[i].pc != raw[j].pc {
			return raw[i].pc < raw[j].pc
		}
		return raw[i].kind < raw[j].kind
	})
	for _, s := range raw {
		r.Sites = append(r.Sites, Site{
			PC:        fmt.Sprintf("0x%x", s.pc),
			Kind:      KindName(s.kind),
			SiteStats: s.st,
		})
	}
	return r
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// WriteFile writes the report as JSON to path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadReport parses a report from r and checks its schema.
func ReadReport(rd io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("attrib: parsing report: %w", err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("attrib: schema %q, want %q", rep.Schema, Schema)
	}
	return &rep, nil
}

// ReadReportFile parses the report at path.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := ReadReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// label renders the report's run identity.
func (r *Report) label() string {
	parts := []string{}
	for _, p := range []string{r.Bench, r.Policy, r.Config} {
		if p != "" {
			parts = append(parts, p)
		}
	}
	if len(parts) == 0 {
		return "(unlabeled run)"
	}
	return strings.Join(parts, "/")
}

// Rollup aggregates the report's sites per category, in the fixed kind
// order (the paper's categories, then root), skipping untouched kinds.
type Rollup struct {
	Kind  string
	Sites int
	SiteStats
}

// Rollups computes the per-category aggregation — the dynamic
// counterpart of Figure 5's static spawn-point distribution.
func (r *Report) Rollups() []Rollup {
	byKind := map[string]*Rollup{}
	order := []string{}
	for k := uint8(0); int(k) < numKinds; k++ {
		order = append(order, KindName(k))
	}
	for i := range r.Sites {
		s := &r.Sites[i]
		ru, ok := byKind[s.Kind]
		if !ok {
			ru = &Rollup{Kind: s.Kind}
			byKind[s.Kind] = ru
		}
		ru.Sites++
		ru.add(&s.SiteStats)
	}
	out := []Rollup{}
	for _, k := range order {
		if ru, ok := byKind[k]; ok {
			out = append(out, *ru)
		}
	}
	return out
}

// Totals sums every site in the report.
func (r *Report) Totals() SiteStats {
	var sum SiteStats
	for i := range r.Sites {
		sum.add(&r.Sites[i].SiteStats)
	}
	return sum
}

// WriteText renders the report for humans: the run header, per-category
// rollups, and the topN sites by credited cycles (all sites if topN <= 0
// or fewer exist).
func (r *Report) WriteText(w io.Writer, topN int) error {
	tw := &errWriter{w: w}
	tw.printf("attribution: %s — %d cycles, %d retired, %d sites\n",
		r.label(), r.Cycles, r.Retired, len(r.Sites))
	if r.UnattributedViolations > 0 || r.UnattributedForeclosures > 0 {
		tw.printf("unattributed: %d violations, %d foreclosures\n",
			r.UnattributedViolations, r.UnattributedForeclosures)
	}

	tw.printf("\nper-category rollup (dynamic Figure-5 distribution):\n")
	tw.printf("%-8s %6s %8s %8s %8s %8s %8s %12s %12s %12s\n",
		"kind", "sites", "spawns", "retired", "sq.viol", "sq.coll", "reclaim",
		"instrs-ret", "cred-cycles", "waste-cycles")
	var spawnsNonRoot int64
	rollups := r.Rollups()
	for _, ru := range rollups {
		if ru.Kind != "root" {
			spawnsNonRoot += ru.Spawns
		}
	}
	for _, ru := range rollups {
		tw.printf("%-8s %6d %8d %8d %8d %8d %8d %12d %12d %12d\n",
			ru.Kind, ru.Sites, ru.Spawns, ru.Retired, ru.SquashViolation,
			ru.SquashCollateral, ru.SquashReclaim, ru.InstrsRetired,
			ru.CreditedCycles, ru.WastedCycles)
	}
	if spawnsNonRoot > 0 {
		tw.printf("spawn share:")
		for _, ru := range rollups {
			if ru.Kind == "root" || ru.Spawns == 0 {
				continue
			}
			tw.printf(" %s %.1f%%", ru.Kind, 100*float64(ru.Spawns)/float64(spawnsNonRoot))
		}
		tw.printf("\n")
	}

	sites := make([]*Site, 0, len(r.Sites))
	for i := range r.Sites {
		sites = append(sites, &r.Sites[i])
	}
	sort.SliceStable(sites, func(i, j int) bool {
		return sites[i].CreditedCycles > sites[j].CreditedCycles
	})
	if topN > 0 && topN < len(sites) {
		sites = sites[:topN]
	}
	tw.printf("\ntop %d sites by credited cycles:\n", len(sites))
	tw.printf("%-14s %-8s %8s %8s %8s %8s %12s %12s %12s %10s\n",
		"pc", "kind", "spawns", "retired", "squash", "forecl",
		"instrs-ret", "cred-cycles", "waste-cycles", "sq-instrs")
	for _, s := range sites {
		tw.printf("%-14s %-8s %8d %8d %8d %8d %12d %12d %12d %10d\n",
			s.PC, s.Kind, s.Spawns, s.Retired,
			s.SquashViolation+s.SquashCollateral+s.SquashReclaim,
			s.Foreclosures, s.InstrsRetired, s.CreditedCycles, s.WastedCycles,
			s.SquashedInstrs)
	}
	return tw.err
}

// errWriter folds the per-line error checks of a multi-print render.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
