package attrib

import (
	"io"
	"sort"
	"strconv"
)

// Diff is the per-site and per-category comparison of two attribution
// reports (conventionally "old" vs "new"), the output of polystat diff.
type Diff struct {
	A, B *Report

	// Categories holds one entry per kind present in either report, in
	// fixed kind order.
	Categories []CategoryDelta
	// Sites holds every site whose record changed, appeared, or
	// vanished, sorted by descending |credited-cycles delta| (ties by
	// PC then kind, so output is deterministic).
	Sites []SiteDelta
}

// CategoryDelta is one kind's rollup in both runs.
type CategoryDelta struct {
	Kind string
	A, B Rollup
}

// SiteDelta is one changed site. Present flags distinguish a changed
// record from a site that exists in only one run.
type SiteDelta struct {
	PC       string
	Kind     string
	InA, InB bool
	A, B     SiteStats
}

// delta returns the credited-cycles movement the diff ranks by.
func (d *SiteDelta) delta() int64 {
	v := d.B.CreditedCycles - d.A.CreditedCycles
	if v < 0 {
		return -v
	}
	return v
}

// Changed reports whether the two reports differ in any site record,
// unattributed count, or headline cycle/retire total.
func (d *Diff) Changed() bool {
	return len(d.Sites) > 0 ||
		d.A.Cycles != d.B.Cycles || d.A.Retired != d.B.Retired ||
		d.A.UnattributedViolations != d.B.UnattributedViolations ||
		d.A.UnattributedForeclosures != d.B.UnattributedForeclosures
}

// DiffReports compares two reports site by site.
func DiffReports(a, b *Report) *Diff {
	d := &Diff{A: a, B: b}

	type siteKey struct {
		pc   string
		kind string
	}
	am := map[siteKey]*Site{}
	for i := range a.Sites {
		s := &a.Sites[i]
		am[siteKey{s.PC, s.Kind}] = s
	}
	bm := map[siteKey]*Site{}
	for i := range b.Sites {
		s := &b.Sites[i]
		bm[siteKey{s.PC, s.Kind}] = s
	}
	for i := range a.Sites {
		s := &a.Sites[i]
		k := siteKey{s.PC, s.Kind}
		if o, ok := bm[k]; ok {
			if s.SiteStats != o.SiteStats {
				d.Sites = append(d.Sites, SiteDelta{
					PC: s.PC, Kind: s.Kind, InA: true, InB: true,
					A: s.SiteStats, B: o.SiteStats,
				})
			}
		} else {
			d.Sites = append(d.Sites, SiteDelta{
				PC: s.PC, Kind: s.Kind, InA: true, A: s.SiteStats,
			})
		}
	}
	for i := range b.Sites {
		s := &b.Sites[i]
		if _, ok := am[siteKey{s.PC, s.Kind}]; !ok {
			d.Sites = append(d.Sites, SiteDelta{
				PC: s.PC, Kind: s.Kind, InB: true, B: s.SiteStats,
			})
		}
	}
	sort.SliceStable(d.Sites, func(i, j int) bool {
		di, dj := d.Sites[i].delta(), d.Sites[j].delta()
		if di != dj {
			return di > dj
		}
		si, sj := &d.Sites[i], &d.Sites[j]
		if si.PC != sj.PC {
			return si.PC < sj.PC
		}
		return si.Kind < sj.Kind
	})

	ra := map[string]Rollup{}
	for _, ru := range a.Rollups() {
		ra[ru.Kind] = ru
	}
	rb := map[string]Rollup{}
	for _, ru := range b.Rollups() {
		rb[ru.Kind] = ru
	}
	for k := uint8(0); int(k) < numKinds; k++ {
		name := KindName(k)
		va, inA := ra[name]
		vb, inB := rb[name]
		if !inA && !inB {
			continue
		}
		d.Categories = append(d.Categories, CategoryDelta{Kind: name, A: va, B: vb})
	}
	return d
}

// WriteText renders the diff: headline totals, per-category movement,
// and the topN most-moved sites (all changed sites if topN <= 0).
func (d *Diff) WriteText(w io.Writer, topN int) error {
	tw := &errWriter{w: w}
	tw.printf("attribution diff: %s -> %s\n", d.A.label(), d.B.label())
	tw.printf("cycles  %12d -> %-12d (%+d)\n", d.A.Cycles, d.B.Cycles, d.B.Cycles-d.A.Cycles)
	tw.printf("retired %12d -> %-12d (%+d)\n", d.A.Retired, d.B.Retired, d.B.Retired-d.A.Retired)
	if !d.Changed() {
		tw.printf("no attribution changes\n")
		return tw.err
	}

	tw.printf("\nper-category movement:\n")
	tw.printf("%-8s %16s %16s %16s %16s\n",
		"kind", "spawns", "retired", "squashes", "cred-cycles")
	cell := func(a, b int64) string {
		return sprintfDelta(a, b)
	}
	for _, c := range d.Categories {
		sqA := c.A.SquashViolation + c.A.SquashCollateral + c.A.SquashReclaim
		sqB := c.B.SquashViolation + c.B.SquashCollateral + c.B.SquashReclaim
		tw.printf("%-8s %16s %16s %16s %16s\n", c.Kind,
			cell(c.A.Spawns, c.B.Spawns),
			cell(c.A.Retired, c.B.Retired),
			cell(sqA, sqB),
			cell(c.A.CreditedCycles, c.B.CreditedCycles))
	}

	sites := d.Sites
	if topN > 0 && topN < len(sites) {
		sites = sites[:topN]
	}
	tw.printf("\n%d sites changed; top %d by credited-cycle movement:\n",
		len(d.Sites), len(sites))
	tw.printf("%-14s %-8s %-4s %16s %16s %16s %16s\n",
		"pc", "kind", "", "spawns", "retired", "cred-cycles", "waste-cycles")
	for _, s := range sites {
		mark := ""
		switch {
		case !s.InA:
			mark = "+new"
		case !s.InB:
			mark = "-gone"
		}
		tw.printf("%-14s %-8s %-4s %16s %16s %16s %16s\n", s.PC, s.Kind, mark,
			cell(s.A.Spawns, s.B.Spawns),
			cell(s.A.Retired, s.B.Retired),
			cell(s.A.CreditedCycles, s.B.CreditedCycles),
			cell(s.A.WastedCycles, s.B.WastedCycles))
	}
	return tw.err
}

// sprintfDelta renders "a->b" or a bare value when unchanged.
func sprintfDelta(a, b int64) string {
	if a == b {
		return strconv.FormatInt(a, 10)
	}
	return strconv.FormatInt(a, 10) + "->" + strconv.FormatInt(b, 10)
}
