// Package attrib implements per-spawn-site attribution for the timing
// simulator: every spawned task is keyed by its static spawn point (the
// trigger PC plus its core.Kind category), and the machine accounts each
// task's outcome — cycles credited or wasted, instructions retired
// speculatively, squashes by cause, foreclosure charges — to that site's
// record. The store is a flat open-addressed table (the profitTable idiom)
// so the simulation hot loop stays allocation-free in steady state: one
// Table may be reused across runs and only grows, never shrinks.
//
// The accounting is exact, not sampled. Summed over all sites, every
// SiteStats field reconciles with the corresponding machine-wide
// machine.Stats counter (machine.VerifyAttribution enforces this on the
// differential grids and on generated programs).
package attrib

import "repro/internal/core"

// Root is the pseudo-kind of the initial task, which exists before any
// spawn and has no spawn point; it is keyed as (PC 0, Root).
const Root = uint8(core.NumKinds)

// numKinds is the number of distinct kind values a key may carry (the
// core categories plus Root).
const numKinds = int(core.NumKinds) + 1

// KindName returns the category label for a SiteStats kind byte: the
// paper's names for core kinds, "root" for the initial task.
func KindName(kind uint8) string {
	if kind == Root {
		return "root"
	}
	return core.Kind(kind).String()
}

// KindByName is the inverse of KindName; ok is false for unknown labels.
func KindByName(name string) (uint8, bool) {
	if name == "root" {
		return Root, true
	}
	for k := core.Kind(0); k < core.NumKinds; k++ {
		if k.String() == name {
			return uint8(k), true
		}
	}
	return 0, false
}

// SiteStats is the attribution record of one spawn site. Counts are of
// *tasks* except where named otherwise. Every task the machine creates
// ends in exactly one of Retired, AliveAtEnd, SquashCollateral or
// SquashReclaim; a task that suffers a memory-dependence violation
// restarts in place (SquashViolation counts the event, not an end).
type SiteStats struct {
	Spawns           int64 `json:"spawns"`            // tasks created from this site (root: 1)
	Rejected         int64 `json:"rejected"`          // spawn attempts refused (profit score or distance)
	Retired          int64 `json:"retired"`           // tasks that retired their whole segment
	AliveAtEnd       int64 `json:"alive_at_end"`      // tasks still live when the run ended
	SquashViolation  int64 `json:"squash_violation"`  // memory-violation squashes of this site's tasks
	SquashCollateral int64 `json:"squash_collateral"` // tasks squashed as descendants of a violator
	SquashReclaim    int64 `json:"squash_reclaim"`    // tasks squashed by ROB reclamation
	InstrsRetired    int64 `json:"instrs_retired"`    // trace entries retired inside this site's segments
	SquashedInstrs   int64 `json:"squashed_instrs"`   // pipeline entries rolled back, charged to the owning task
	CreditedCycles   int64 `json:"credited_cycles"`   // task-lifetime cycles of retired / still-live tasks
	WastedCycles     int64 `json:"wasted_cycles"`     // task-lifetime cycles of squashed / reclaimed tasks
	Foreclosures     int64 `json:"foreclosures"`      // times this site's task foreclosed a useful hop in an older task
}

// add accumulates o into s.
func (s *SiteStats) add(o *SiteStats) {
	s.Spawns += o.Spawns
	s.Rejected += o.Rejected
	s.Retired += o.Retired
	s.AliveAtEnd += o.AliveAtEnd
	s.SquashViolation += o.SquashViolation
	s.SquashCollateral += o.SquashCollateral
	s.SquashReclaim += o.SquashReclaim
	s.InstrsRetired += o.InstrsRetired
	s.SquashedInstrs += o.SquashedInstrs
	s.CreditedCycles += o.CreditedCycles
	s.WastedCycles += o.WastedCycles
	s.Foreclosures += o.Foreclosures
}

// Table is the flat open-addressed site store. The key packs the spawn
// trigger PC and the kind into one word (PC<<3 | kind+1), so key 0 marks
// an empty slot even for the root site (PC 0, kind Root packs to a
// non-zero key). Linear probing with a Fibonacci hash; grows at 3/4 load.
//
// Not safe for concurrent use: one Table observes one run at a time.
// Site pointers are valid only until the next Site call (growth moves
// the backing array).
type Table struct {
	keys []uint64
	vals []SiteStats
	used int

	// UnattributedViolations counts violation squashes whose containing
	// task had already left the machine by detection time — the machine
	// still counts them in Stats.Violations but no site owns them.
	UnattributedViolations int64
	// UnattributedForeclosures counts foreclosure charges where the
	// foreclosed task had no successor left to blame (it was already the
	// tail again when the mispredict resolved).
	UnattributedForeclosures int64
}

// NewTable returns an empty table ready for one run.
func NewTable() *Table {
	t := &Table{}
	t.Reset()
	return t
}

// key packs (pc, kind) into the non-zero table key.
func key(pc uint64, kind uint8) uint64 {
	return pc<<3 | uint64(kind+1)
}

// unkey splits a packed key back into (pc, kind).
func unkey(k uint64) (uint64, uint8) {
	return k >> 3, uint8(k&7) - 1
}

// Reset clears all sites and unattributed counts, retaining the backing
// arrays so steady-state reuse allocates nothing.
func (t *Table) Reset() {
	if t.keys == nil {
		t.keys = make([]uint64, 256)
		t.vals = make([]SiteStats, 256)
	} else {
		clear(t.keys)
		clear(t.vals)
	}
	t.used = 0
	t.UnattributedViolations = 0
	t.UnattributedForeclosures = 0
}

// Site returns the record for (pc, kind), inserting an empty one on first
// touch. The pointer is invalidated by the next Site call; callers must
// not retain it.
func (t *Table) Site(pc uint64, kind uint8) *SiteStats {
	if t.used*4 >= len(t.keys)*3 {
		t.grow()
	}
	k := key(pc, kind)
	mask := uint64(len(t.keys) - 1)
	i := (k * 0x9E3779B97F4A7C15) >> 32 & mask
	for t.keys[i] != 0 {
		if t.keys[i] == k {
			return &t.vals[i]
		}
		i = (i + 1) & mask
	}
	t.keys[i] = k
	t.used++
	return &t.vals[i]
}

// Lookup returns the record for (pc, kind) without inserting, or nil.
func (t *Table) Lookup(pc uint64, kind uint8) *SiteStats {
	if t.keys == nil {
		return nil
	}
	k := key(pc, kind)
	mask := uint64(len(t.keys) - 1)
	i := (k * 0x9E3779B97F4A7C15) >> 32 & mask
	for t.keys[i] != 0 {
		if t.keys[i] == k {
			return &t.vals[i]
		}
		i = (i + 1) & mask
	}
	return nil
}

func (t *Table) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]uint64, 2*len(oldKeys))
	t.vals = make([]SiteStats, 2*len(oldVals))
	mask := uint64(len(t.keys) - 1)
	for j, k := range oldKeys {
		if k == 0 {
			continue
		}
		i := (k * 0x9E3779B97F4A7C15) >> 32 & mask
		for t.keys[i] != 0 {
			i = (i + 1) & mask
		}
		t.keys[i] = k
		t.vals[i] = oldVals[j]
	}
}

// NumSites returns the number of distinct sites touched.
func (t *Table) NumSites() int { return t.used }

// ForEach calls fn for every touched site, in unspecified order. The
// *SiteStats pointer is valid only during the call.
func (t *Table) ForEach(fn func(pc uint64, kind uint8, st *SiteStats)) {
	for i, k := range t.keys {
		if k != 0 {
			pc, kind := unkey(k)
			fn(pc, kind, &t.vals[i])
		}
	}
}

// Totals sums every site's record.
func (t *Table) Totals() SiteStats {
	var sum SiteStats
	t.ForEach(func(_ uint64, _ uint8, st *SiteStats) { sum.add(st) })
	return sum
}

// KindTotals sums site records per category, indexed by kind byte
// (core kinds then Root).
func (t *Table) KindTotals() [numKinds]SiteStats {
	var out [numKinds]SiteStats
	t.ForEach(func(_ uint64, kind uint8, st *SiteStats) {
		if int(kind) < numKinds {
			out[kind].add(st)
		}
	})
	return out
}
