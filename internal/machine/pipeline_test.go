package machine

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// straightLine builds a program executing n independent ALU instructions
// per iteration over several iterations, so the instruction cache warms
// after the first pass and the steady state measures the pipeline itself.
func straightLine(n int) string {
	var b strings.Builder
	b.WriteString("        li $s0, 1\n")
	b.WriteString("        li $t9, 8\n")
	b.WriteString("top:    addi $t9, $t9, -1\n")
	for i := 0; i < n; i++ {
		b.WriteString("        addi $t0, $s0, 1\n")
	}
	b.WriteString("        bgtz $t9, top\n")
	b.WriteString("        halt\n")
	return b.String()
}

// TestFetchWidthBoundsIPC: independent straight-line code approaches but
// never exceeds the machine width.
func TestFetchWidthBoundsIPC(t *testing.T) {
	_, tr, _ := prep(t, straightLine(1000))
	cfg := SuperscalarConfig()
	cfg.WarmupInstrs = 1100 // skip the compulsory I-cache misses of pass 1
	res, err := Run(tr, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC > 8 {
		t.Fatalf("IPC %f exceeds machine width", res.IPC)
	}
	if res.IPC < 5 {
		t.Fatalf("straight-line IPC %f too low for an 8-wide machine", res.IPC)
	}
}

// TestTakenBranchLimit: a chain of always-taken branches is fetch-limited
// to ~1 taken branch per cycle on the superscalar.
func TestTakenBranchLimit(t *testing.T) {
	var b strings.Builder
	b.WriteString("        li $t9, 2000\n")
	b.WriteString("chain0: addi $t9, $t9, -1\n")
	b.WriteString("        blez $t9, out\n")
	b.WriteString("        j chain0\n") // taken every iteration
	b.WriteString("out:    halt\n")
	_, tr, _ := prep(t, b.String())
	res, err := Run(tr, nil, nil, SuperscalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Three instructions per iteration with two taken branches (j +
	// implicit loop) -> at most ~1.5 IPC.
	if res.IPC > 3.2 {
		t.Fatalf("taken-branch limit not enforced: IPC %f", res.IPC)
	}
}

// TestDataflowSerialization: a dependent chain executes at ~1 instr/cycle
// regardless of width.
func TestDataflowSerialization(t *testing.T) {
	var b strings.Builder
	b.WriteString("        li $t0, 1\n")
	for i := 0; i < 3000; i++ {
		b.WriteString("        addi $t0, $t0, 1\n") // serial chain
	}
	b.WriteString("        halt\n")
	_, tr, _ := prep(t, b.String())
	res, err := Run(tr, nil, nil, SuperscalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC > 1.3 {
		t.Fatalf("dependent chain IPC %f > 1", res.IPC)
	}
}

// TestLoadLatencyVisible: a pointer chase through L1-resident memory runs
// at roughly one load latency per iteration.
func TestLoadLatencyVisible(t *testing.T) {
	_, tr, _ := prep(t, `
        .data
cell:   .word8 0x100000          # points to itself... patched below: self loop via address of cell
        .text
main:   li   $t8, 0x100000
        li   $t9, 2000
loop:   ld   $t8, 0($t8)         # loads the value 0x100000 -> self chase
        addi $t9, $t9, -1
        bgtz $t9, loop
        halt
`)
	res, err := Run(tr, nil, nil, SuperscalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Each iteration's load depends on the previous load: >= 2 cycles per
	// 3 instructions.
	if res.IPC > 1.6 {
		t.Fatalf("load-to-use chain too fast: IPC %f", res.IPC)
	}
}

// TestICacheMissesStallFetch: code far larger than the L1I with a cyclic
// walk produces instruction-miss stalls.
func TestICacheMissesStallFetch(t *testing.T) {
	// 4000 instructions of straight-line code = 16KB, walked 4 times via
	// an outer loop: thrashes the 8KB L1I.
	var b strings.Builder
	b.WriteString("        li $t9, 4\n")
	b.WriteString("top:    li $s0, 1\n")
	for i := 0; i < 4000; i++ {
		b.WriteString("        addi $t0, $s0, 1\n")
	}
	b.WriteString("        addi $t9, $t9, -1\n")
	b.WriteString("        bgtz $t9, top\n")
	b.WriteString("        halt\n")
	_, tr, _ := prep(t, b.String())
	cfg := SuperscalarConfig()
	cfg.WarmupInstrs = 0
	res, err := Run(tr, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ICacheMisses < 300 {
		t.Fatalf("I-cache misses = %d for a 2x-capacity cyclic walk", res.ICacheMisses)
	}
	if res.ICacheStallCycle == 0 {
		t.Fatalf("misses without fetch stalls")
	}
}

// TestCommitWidthBoundsRetirement: cycles >= instructions / commit width.
func TestCommitWidthBoundsRetirement(t *testing.T) {
	_, tr, _ := prep(t, straightLine(1000))
	cfg := SuperscalarConfig()
	cfg.CommitWidth = 2
	res, err := Run(tr, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < res.Retired/2 {
		t.Fatalf("retired %d in %d cycles with commit width 2", res.Retired, res.Cycles)
	}
}

// TestSchedulerCapacityMatters: shrinking the scheduler on miss-heavy code
// costs cycles.
func TestSchedulerCapacityMatters(t *testing.T) {
	_, tr, _ := prep(t, hardHammockLoop)
	small := SuperscalarConfig()
	small.SchedSize = 4
	rSmall, err := Run(tr, nil, nil, small)
	if err != nil {
		t.Fatal(err)
	}
	rBig, err := Run(tr, nil, nil, SuperscalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rSmall.Cycles <= rBig.Cycles {
		t.Fatalf("4-entry scheduler (%d cycles) not slower than 64-entry (%d)",
			rSmall.Cycles, rBig.Cycles)
	}
}

// TestReturnAddressStackPredictsReturns: call-heavy code has near-zero
// return mispredicts thanks to the RAS.
func TestReturnAddressStackPredictsReturns(t *testing.T) {
	_, tr, _ := prep(t, `
        .func main
main:   li   $t9, 1000
loop:   jal  leaf
        addi $t9, $t9, -1
        bgtz $t9, loop
        halt
        .func leaf
leaf:   addi $v0, $a0, 1
        ret
`)
	res, err := Run(tr, nil, nil, SuperscalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The only real mispredicts should be a handful from the loop branch.
	if res.Mispredicts > 50 {
		t.Fatalf("mispredicts = %d; RAS not predicting returns", res.Mispredicts)
	}
}

// TestIndirectJumpBTBPenalty: an indirect jump alternating between two
// targets defeats the last-target BTB; a fixed target trains it.
func TestIndirectJumpBTBPenalty(t *testing.T) {
	const body = `
        .data
tab:    .word8 c0, c1
        .text
main:   li   $t9, 2000
        la   $s5, tab
loop:   andi $t0, $t9, %MASK%
        sll  $t0, $t0, 3
        add  $t0, $t0, $s5
        ld   $t1, 0($t0)
        jr   $t1
        .targets c0, c1
c0:     addi $s0, $s0, 1
        j    next
c1:     addi $s0, $s0, 2
next:   addi $t9, $t9, -1
        bgtz $t9, loop
        halt
`
	_, trAlt, _ := prep(t, strings.Replace(body, "%MASK%", "1", 1)) // alternating
	_, trFix, _ := prep(t, strings.Replace(body, "%MASK%", "0", 1)) // fixed target
	alt, err := Run(trAlt, nil, nil, SuperscalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	fix, err := Run(trFix, nil, nil, SuperscalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	if alt.Mispredicts < fix.Mispredicts+1000 {
		t.Fatalf("alternating indirect target mispredicts (%d) not far above fixed (%d)",
			alt.Mispredicts, fix.Mispredicts)
	}
	if alt.Cycles <= fix.Cycles {
		t.Fatalf("BTB mispredicts cost no cycles")
	}
}

// TestBiasedICountSharesFetch: with spawning active, the concurrency stats
// show several tasks fetching, i.e. the second fetch slot is actually used.
func TestBiasedICountSharesFetch(t *testing.T) {
	_, tr, a := prep(t, hardHammockLoop)
	res, err := Run(tr, nil, corePolicySource(a), PolyFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	avgTasks := float64(res.TaskCycles) / float64(res.Cycles)
	if avgTasks < 1.5 {
		t.Fatalf("average active tasks %.2f; fetch never parallelized", avgTasks)
	}
}

// corePolicySource is a small helper shared by the pipeline tests.
func corePolicySource(a *core.Analysis) core.Source {
	return core.PolicyPostdoms.Source(a)
}
