package machine

import (
	"fmt"

	"repro/internal/attrib"
	"repro/internal/core"
)

// VerifyAttribution checks that an attribution table's per-site sums
// reconcile exactly with the machine-wide counters of the run it
// observed. The accounting is designed to be lossless, so every
// mismatch is a bug; the differential grids and the progen sweeps call
// this for every run they attribute.
func VerifyAttribution(t *attrib.Table, r Result) error {
	sum := t.Totals()
	check := func(what string, got, want int64) error {
		if got != want {
			return fmt.Errorf("attribution mismatch: %s: sites sum to %d, machine counted %d", what, got, want)
		}
		return nil
	}
	// Every spawn the machine took appears at its site, plus the root
	// pseudo-spawn of the initial task.
	if err := check("spawns", sum.Spawns, r.SpawnsTaken+1); err != nil {
		return err
	}
	if err := check("rejected", sum.Rejected, r.SpawnsRejected); err != nil {
		return err
	}
	// Every task ends exactly once: head retirement, collateral squash,
	// ROB reclamation, or still alive when the run ended. (A violating
	// task restarts in place rather than ending.)
	ended := sum.Retired + sum.AliveAtEnd + sum.SquashCollateral + sum.SquashReclaim
	if err := check("task ends", ended, r.SpawnsTaken+1); err != nil {
		return err
	}
	if err := check("violation squashes", sum.SquashViolation+t.UnattributedViolations, r.Violations); err != nil {
		return err
	}
	if err := check("reclaims", sum.SquashReclaim, r.Reclaims); err != nil {
		return err
	}
	if err := check("foreclosures", sum.Foreclosures+t.UnattributedForeclosures, r.Foreclosures); err != nil {
		return err
	}
	if err := check("squashed instrs", sum.SquashedInstrs, r.SquashedInstrs); err != nil {
		return err
	}
	// Task segments tile the retired region of the trace, so the per-site
	// retired-instruction counts sum to the run's retirement count...
	if err := check("instrs retired", sum.InstrsRetired, r.Retired); err != nil {
		return err
	}
	// ...and every task-alive cycle lands in exactly one of the credited
	// (retired or still-live task) or wasted (squashed task) buckets.
	if err := check("task cycles", sum.CreditedCycles+sum.WastedCycles, r.TaskCycles); err != nil {
		return err
	}
	// Per-category spawn counts match the machine's kind histogram.
	kinds := t.KindTotals()
	for k := core.Kind(0); k < core.NumKinds; k++ {
		if err := check("spawns."+k.String(), kinds[k].Spawns, r.SpawnsByKind[k]); err != nil {
			return err
		}
	}
	if kinds[attrib.Root].Spawns != 1 {
		return fmt.Errorf("attribution mismatch: root spawns = %d, want 1", kinds[attrib.Root].Spawns)
	}
	return nil
}
