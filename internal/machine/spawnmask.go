package machine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/attrib"
	"repro/internal/core"
)

// SpawnMask is a set of suppressed spawn sites, keyed by (trigger PC,
// core.Kind) exactly like the attribution table. A masked site is invisible
// to the Task Spawn Unit: no task is spawned from it, no rejection is
// counted, and no attribution is charged — the machine behaves as if the
// static analysis had never emitted that spawn point. An empty or nil mask
// is a no-op and simulates bit-identically to a maskless run (the
// differential suite enforces this).
//
// The mask is a semantic configuration input: it changes the simulated
// outcome, so it participates in the artifact-cache key via its canonical
// encoding (see Encode). internal/tune searches over masks; polyflow,
// experiments and polyflowd accept them as "0xPC:kind,..." strings.
type SpawnMask struct {
	keys map[uint64]struct{} // packed pc<<3 | kind+1, the attrib keying
}

// maskKey packs (pc, kind) the same way attrib.Table keys sites, so a mask
// entry and an attribution record for one site agree on identity.
func maskKey(pc uint64, kind uint8) uint64 {
	return pc<<3 | uint64(kind+1)
}

// NewSpawnMask returns an empty mask.
func NewSpawnMask() *SpawnMask {
	return &SpawnMask{keys: map[uint64]struct{}{}}
}

// Add suppresses the (pc, kind) site. Kinds at or beyond core.NumKinds
// (including the attrib root pseudo-kind, which never spawns) are ignored.
func (m *SpawnMask) Add(pc uint64, kind uint8) {
	if kind >= uint8(core.NumKinds) {
		return
	}
	if m.keys == nil {
		m.keys = map[uint64]struct{}{}
	}
	m.keys[maskKey(pc, kind)] = struct{}{}
}

// Contains reports whether (pc, kind) is suppressed. Nil-safe: a nil mask
// contains nothing.
func (m *SpawnMask) Contains(pc uint64, kind uint8) bool {
	if m == nil {
		return false
	}
	_, ok := m.keys[maskKey(pc, kind)]
	return ok
}

// Len returns the number of suppressed sites. Nil-safe.
func (m *SpawnMask) Len() int {
	if m == nil {
		return 0
	}
	return len(m.keys)
}

// Clone returns an independent copy. Cloning nil yields an empty mask.
func (m *SpawnMask) Clone() *SpawnMask {
	c := NewSpawnMask()
	if m != nil {
		for k := range m.keys {
			c.keys[k] = struct{}{}
		}
	}
	return c
}

// With returns a copy of m with (pc, kind) additionally suppressed; m is
// unchanged. Nil-safe — the idiom for proposing search candidates.
func (m *SpawnMask) With(pc uint64, kind uint8) *SpawnMask {
	c := m.Clone()
	c.Add(pc, kind)
	return c
}

// ForEach calls fn for every suppressed site in canonical (PC, kind) order.
func (m *SpawnMask) ForEach(fn func(pc uint64, kind uint8)) {
	if m == nil {
		return
	}
	keys := make([]uint64, 0, len(m.keys))
	for k := range m.keys {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		fn(k>>3, uint8(k&7)-1)
	}
}

// Encode renders the canonical string form: "0xPC:kind" entries sorted by
// (PC, kind) and joined with commas. Every mask has exactly one encoding —
// insertion order and duplicates cannot influence it — so the encoding is
// safe to hash into artifact-cache keys. Nil and empty masks both encode to
// "" (they are semantically the same mask).
func (m *SpawnMask) Encode() string {
	if m.Len() == 0 {
		return ""
	}
	parts := make([]string, 0, m.Len())
	m.ForEach(func(pc uint64, kind uint8) {
		parts = append(parts, fmt.Sprintf("0x%x:%s", pc, attrib.KindName(kind)))
	})
	return strings.Join(parts, ",")
}

// String is Encode, for printing.
func (m *SpawnMask) String() string { return m.Encode() }

// ParseSpawnMask parses the "0xPC:kind,..." form accepted by the CLIs and
// the daemon API. Entries may arrive in any order and duplicated; the
// result re-encodes canonically. The empty string parses to nil (no mask).
// Kind names are the spawn categories of the paper ("loop", "loopFT",
// "procFT", "hammock", "other"); "root" is rejected — the initial task has
// no spawn point to suppress.
func ParseSpawnMask(s string) (*SpawnMask, error) {
	if s == "" {
		return nil, nil
	}
	m := NewSpawnMask()
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("machine: empty spawn-mask entry in %q", s)
		}
		pcStr, kindStr, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("machine: spawn-mask entry %q is not 0xPC:kind", entry)
		}
		hex := strings.TrimPrefix(pcStr, "0x")
		if hex == pcStr {
			return nil, fmt.Errorf("machine: spawn-mask PC %q must be 0x-prefixed hex", pcStr)
		}
		pc, err := strconv.ParseUint(hex, 16, 61)
		if err != nil {
			return nil, fmt.Errorf("machine: spawn-mask PC %q: %v", pcStr, err)
		}
		kind, ok := attrib.KindByName(kindStr)
		if !ok || kind >= uint8(core.NumKinds) {
			return nil, fmt.Errorf("machine: spawn-mask kind %q is not a spawn category", kindStr)
		}
		m.Add(pc, kind)
	}
	return m, nil
}
