package machine

// storeSets is the memory dependence predictor used to synchronize
// inter-task loads with earlier-task stores, in the spirit of the paper's
// Synchronizing Store Sets [Stone et al.]: each load PC accumulates the
// store PCs it has been caught violating against; a load predicted to
// depend on an in-flight earlier-task store is synchronized (waits for the
// store) instead of speculating. The table is trained online by violation
// squashes, so cold loads speculate and may squash — the conservative,
// no-value-prediction regime the paper describes.
type storeSets struct {
	ways int
	m    map[uint64][]uint64 // load PC -> recent store PCs (LRU, bounded)
}

func newStoreSets(ways int) *storeSets {
	if ways <= 0 {
		ways = 4
	}
	return &storeSets{ways: ways, m: map[uint64][]uint64{}}
}

// predicts reports whether the load at loadPC is predicted to depend on the
// store at storePC.
func (s *storeSets) predicts(loadPC, storePC uint64) bool {
	for _, pc := range s.m[loadPC] {
		if pc == storePC {
			return true
		}
	}
	return false
}

// train records a detected violation between loadPC and storePC.
func (s *storeSets) train(loadPC, storePC uint64) {
	set := s.m[loadPC]
	for i, pc := range set {
		if pc == storePC {
			// Move to MRU position.
			copy(set[1:i+1], set[:i])
			set[0] = storePC
			return
		}
	}
	set = append([]uint64{storePC}, set...)
	if len(set) > s.ways {
		set = set[:s.ways]
	}
	s.m[loadPC] = set
}
