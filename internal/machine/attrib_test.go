package machine

import (
	"reflect"
	"testing"

	"repro/internal/attrib"
	"repro/internal/core"
)

// TestAttributionReconciles: on violation-heavy and divert-heavy workloads
// under every stress configuration, the per-site sums must reconcile
// exactly with the machine-wide counters — for both scheduler
// implementations, which must additionally produce identical reports.
func TestAttributionReconciles(t *testing.T) {
	programs := map[string]string{
		"hammock": hardHammockLoop,
		"memViol": interTaskMemProgram,
	}
	for pname, src := range programs {
		_, tr, a := prep(t, src)
		for cname, cfg := range diffConfigs() {
			t.Run(pname+"/"+cname, func(t *testing.T) {
				cfg.WarmupInstrs = 0
				cfg.Attribution = attrib.NewTable()
				event, err := Run(tr, nil, core.PolicyPostdoms.Source(a), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := VerifyAttribution(cfg.Attribution, event); err != nil {
					t.Errorf("event scheduler: %v", err)
				}
				evRep := attrib.NewReport(cfg.Attribution, pname, "postdoms", cname, event.Cycles, event.Retired)

				cfg.PolledScheduler = true
				cfg.Attribution = attrib.NewTable()
				polled, err := Run(tr, nil, core.PolicyPostdoms.Source(a), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := VerifyAttribution(cfg.Attribution, polled); err != nil {
					t.Errorf("polled scheduler: %v", err)
				}
				poRep := attrib.NewReport(cfg.Attribution, pname, "postdoms", cname, polled.Cycles, polled.Retired)
				if !reflect.DeepEqual(evRep, poRep) {
					t.Errorf("schedulers attribute differently:\nevent:  %+v\npolled: %+v", evRep, poRep)
				}
				// The tiny hint cache legitimately suppresses all spawns;
				// the baseline config must exercise real multi-task runs.
				if cname == "polyflow" && event.SpawnsTaken == 0 {
					t.Fatalf("workload spawned no tasks; attribution coverage is vacuous")
				}
			})
		}
	}
}

// TestAttributionOffIsIdentical: attaching a table must not change timing
// or any observable counter.
func TestAttributionOffIsIdentical(t *testing.T) {
	_, tr, a := prep(t, hardHammockLoop)
	run := func(tbl *attrib.Table) Result {
		cfg := PolyFlowConfig()
		cfg.Attribution = tbl
		res, err := Run(tr, nil, core.PolicyPostdoms.Source(a), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := run(attrib.NewTable())
	without := run(nil)
	if with.Cycles != without.Cycles || with.Stats != without.Stats {
		t.Fatalf("attribution changed simulation results:\nwith:    %+v\nwithout: %+v",
			with.Stats, without.Stats)
	}
}

// TestAttributionRootOnly: the superscalar baseline never spawns, so the
// whole run lands on the root pseudo-site.
func TestAttributionRootOnly(t *testing.T) {
	_, tr, _ := prep(t, hardHammockLoop)
	cfg := SuperscalarConfig()
	cfg.Attribution = attrib.NewTable()
	res, err := Run(tr, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAttribution(cfg.Attribution, res); err != nil {
		t.Fatal(err)
	}
	if n := cfg.Attribution.NumSites(); n != 1 {
		t.Fatalf("superscalar touched %d sites, want 1 (root)", n)
	}
	root := cfg.Attribution.Lookup(0, attrib.Root)
	if root == nil {
		t.Fatal("root site missing")
	}
	if root.InstrsRetired != res.Retired {
		t.Errorf("root instrs retired = %d, want %d", root.InstrsRetired, res.Retired)
	}
	if root.CreditedCycles != res.TaskCycles {
		t.Errorf("root credited cycles = %d, want %d", root.CreditedCycles, res.TaskCycles)
	}
	if root.AliveAtEnd != 1 || root.Spawns != 1 {
		t.Errorf("root spawns/alive = %d/%d, want 1/1", root.Spawns, root.AliveAtEnd)
	}
}

// TestAttributionMaxCyclesPath: the end-of-run flush also runs on the
// MaxCycles error path, so even an aborted run's table reconciles.
func TestAttributionMaxCyclesPath(t *testing.T) {
	_, tr, a := prep(t, hardHammockLoop)
	cfg := PolyFlowConfig()
	cfg.MaxCycles = 500
	cfg.Attribution = attrib.NewTable()
	res, err := Run(tr, nil, core.PolicyPostdoms.Source(a), cfg)
	if err == nil {
		t.Fatalf("run finished in under MaxCycles=%d; pick a smaller cap", cfg.MaxCycles)
	}
	if err := VerifyAttribution(cfg.Attribution, res); err != nil {
		t.Fatal(err)
	}
}

// TestAttributionWarmup: attribution only observes the timed region, so
// the reconciliation holds with a warmup prefix too.
func TestAttributionWarmup(t *testing.T) {
	_, tr, a := prep(t, hardHammockLoop)
	cfg := PolyFlowConfig()
	cfg.WarmupInstrs = tr.Len() / 3
	cfg.Attribution = attrib.NewTable()
	res, err := Run(tr, nil, core.PolicyPostdoms.Source(a), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAttribution(cfg.Attribution, res); err != nil {
		t.Fatal(err)
	}
}

// TestAttributionTableReuse: a table reused across runs is Reset by Run
// and must reconcile each time without accumulating stale state.
func TestAttributionTableReuse(t *testing.T) {
	_, tr, a := prep(t, hardHammockLoop)
	tbl := attrib.NewTable()
	var first Result
	for i := 0; i < 3; i++ {
		cfg := PolyFlowConfig()
		cfg.Attribution = tbl
		res, err := Run(tr, nil, core.PolicyPostdoms.Source(a), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyAttribution(tbl, res); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if i == 0 {
			first = res
		} else if res.Stats != first.Stats {
			t.Fatalf("run %d diverged from run 0 with a reused table", i)
		}
	}
}

// TestAttributionSteadyStateAllocs: a reused table must add no
// allocations to the steady-state hot loop (the flat open-addressed
// store only grows on first contact with new sites), so the with-table
// run may only carry a small fixed residue over the plain run.
func TestAttributionSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	_, tr, _ := prep(t, hardHammockLoop)
	tbl := attrib.NewTable()
	run := func(withTable bool) func() {
		return func() {
			cfg := SuperscalarConfig()
			if withTable {
				cfg.Attribution = tbl
			}
			if _, err := Run(tr, nil, nil, cfg); err != nil {
				t.Fatal(err)
			}
		}
	}
	run(true)() // warm the arena pool and the table
	withAttrib := minAllocsPerRun(run(true))
	without := minAllocsPerRun(run(false))
	// Per-event attribution allocation would show up as a per-task or
	// per-retire delta in the thousands; only comparing against the plain
	// run keeps runtime baselines (race detector, pool state) out of it.
	if withAttrib > without+100 {
		t.Fatalf("attribution adds %v allocations per run in steady state (with %v, without %v)",
			withAttrib-without, withAttrib, without)
	}
}

// BenchmarkAttributionOverhead compares the hot loop without ("off") and
// with ("on") a reused attribution table; "on" is the cost every
// attributed grid run pays.
func BenchmarkAttributionOverhead(b *testing.B) {
	tr, a := prepAny(b, hardHammockLoop)
	cases := []struct {
		name string
		tbl  *attrib.Table
	}{
		{"off", nil},
		{"on", attrib.NewTable()},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.SetBytes(int64(tr.Len()))
			for i := 0; i < b.N; i++ {
				cfg := PolyFlowConfig()
				cfg.Attribution = c.tbl
				if _, err := Run(tr, nil, core.PolicyPostdoms.Source(a), cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
