//go:build race

package machine

// raceEnabled reports that this test binary was built with the race
// detector, whose pool and GC behavior makes allocation counts bimodal;
// the allocation-guard tests skip their assertions under it and rely on
// the non-race CI job instead.
const raceEnabled = true
