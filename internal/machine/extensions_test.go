package machine

import (
	"testing"

	"repro/internal/core"
)

// TestHintCacheCapacity: a tiny hint cache must cost spawn opportunities
// (misses > 0, spawns fewer than with the unmodeled cache), while a large
// one converges to the unmodeled behaviour after compulsory misses.
func TestHintCacheCapacity(t *testing.T) {
	_, tr, a := prep(t, hardHammockLoop)
	src := func() core.Source { return core.PolicyPostdoms.Source(a) }

	ideal, err := Run(tr, nil, src(), PolyFlowConfig())
	if err != nil {
		t.Fatal(err)
	}

	tiny := PolyFlowConfig()
	tiny.HintCacheLog2 = 1 // 2 entries: aliasing guaranteed
	small, err := Run(tr, nil, src(), tiny)
	if err != nil {
		t.Fatal(err)
	}
	if small.HintMisses == 0 {
		t.Fatalf("2-entry hint cache never missed")
	}

	big := PolyFlowConfig()
	big.HintCacheLog2 = 12
	large, err := Run(tr, nil, src(), big)
	if err != nil {
		t.Fatal(err)
	}
	if large.HintMisses > 16 {
		t.Fatalf("4096-entry hint cache missed %d times for a handful of static spawn points",
			large.HintMisses)
	}
	if large.SpawnsTaken < ideal.SpawnsTaken-int64(large.HintMisses)-8 {
		t.Fatalf("large hint cache lost spawns: %d vs ideal %d",
			large.SpawnsTaken, ideal.SpawnsTaken)
	}
	if ideal.HintMisses != 0 {
		t.Fatalf("unmodeled hint cache recorded misses")
	}
}

// TestHintCacheConflict: two spawn points aliasing to the same direct-mapped
// entry keep evicting each other.
func TestHintCacheConflict(t *testing.T) {
	_, tr, a := prep(t, hardHammockLoop)
	cfg := PolyFlowConfig()
	cfg.HintCacheLog2 = 1
	res, err := Run(tr, nil, core.PolicyPostdoms.Source(a), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With several static spawn points revisited thousands of times and
	// only 2 entries, misses must recur (not just compulsory).
	if res.HintMisses < 100 {
		t.Fatalf("conflict misses = %d, expected recurring eviction", res.HintMisses)
	}
}

// TestROBReserveAvoidsDeadlock documents why the head-task ROB reserve
// exists: without it, younger tasks can fill the shared reorder buffer and
// — since retirement is blocked behind the head's undispatched instructions
// — the machine deadlocks. The MaxCycles guard catches it.
func TestROBReserveAvoidsDeadlock(t *testing.T) {
	_, tr, a := prep(t, hardHammockLoop)
	cfg := PolyFlowConfig()
	cfg.ROBSize = 48
	cfg.ROBReserve = 0
	cfg.MaxCycles = 2_000_000
	if _, err := Run(tr, nil, core.PolicyPostdoms.Source(a), cfg); err == nil {
		t.Skip("no deadlock manifested at this ROB size; reserve untestable here")
	}
}

// TestReclaimROB: the paper's future-work extension — reclaiming the
// youngest task's entries when the head is starved — replaces the reserve:
// with no reserve at all, reclamation keeps the machine live and everything
// retires.
func TestReclaimROB(t *testing.T) {
	_, tr, a := prep(t, hardHammockLoop)

	cfg := PolyFlowConfig()
	cfg.ROBSize = 48
	cfg.ROBReserve = 0
	cfg.MaxCycles = 1 << 30
	cfg.ReclaimROB = true
	withReclaim, err := Run(tr, nil, core.PolicyPostdoms.Source(a), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if withReclaim.Retired != int64(tr.Len()) {
		t.Fatalf("reclamation lost instructions: %d of %d", withReclaim.Retired, tr.Len())
	}
	if withReclaim.Reclaims == 0 {
		t.Fatalf("starved reserve-less ROB never triggered reclamation")
	}

	// Sanity: the default (reserved) configuration never reclaims.
	def, err := Run(tr, nil, core.PolicyPostdoms.Source(a), PolyFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	if def.Reclaims != 0 {
		t.Fatalf("reclamation fired while disabled")
	}
}

// TestReclaimROBDisabledByDefault guards the paper-faithful default.
func TestReclaimROBDisabledByDefault(t *testing.T) {
	if PolyFlowConfig().ReclaimROB || PolyFlowConfig().HintCacheLog2 != 0 {
		t.Fatalf("extensions must be off in the paper configuration")
	}
}

// TestIPCSampling: the sampled timeline covers the run and averages to
// roughly the final IPC.
func TestIPCSampling(t *testing.T) {
	_, tr, _ := prep(t, hardHammockLoop)
	cfg := SuperscalarConfig()
	cfg.SampleInterval = 512
	res, err := Run(tr, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IPCSamples) < 10 {
		t.Fatalf("samples = %d, want many", len(res.IPCSamples))
	}
	var sum float64
	for _, v := range res.IPCSamples {
		if v < 0 || v > float64(cfg.Width) {
			t.Fatalf("implausible sample %f", v)
		}
		sum += v
	}
	avg := sum / float64(len(res.IPCSamples))
	if avg < res.IPC*0.8 || avg > res.IPC*1.2 {
		t.Fatalf("sample average %.3f far from final IPC %.3f", avg, res.IPC)
	}
	// Sampling off by default.
	plain, err := Run(tr, nil, nil, SuperscalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	if plain.IPCSamples != nil {
		t.Fatalf("samples recorded without SampleInterval")
	}
}
