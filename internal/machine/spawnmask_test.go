package machine

import (
	"reflect"
	"testing"

	"repro/internal/attrib"
	"repro/internal/core"
)

func TestSpawnMaskCodecRoundTrip(t *testing.T) {
	m := NewSpawnMask()
	// Insert out of canonical order, with a duplicate.
	m.Add(0x100, uint8(core.KindHammock))
	m.Add(0x40, uint8(core.KindLoop))
	m.Add(0x40, uint8(core.KindLoopFT))
	m.Add(0x40, uint8(core.KindLoop))

	enc := m.Encode()
	want := "0x40:loop,0x40:loopFT,0x100:hammock"
	if enc != want {
		t.Fatalf("Encode() = %q, want %q", enc, want)
	}
	back, err := ParseSpawnMask(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Encode() != enc {
		t.Fatalf("round trip: %q -> %q", enc, back.Encode())
	}
	if back.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", back.Len())
	}
	if !back.Contains(0x40, uint8(core.KindLoop)) || back.Contains(0x40, uint8(core.KindHammock)) {
		t.Fatal("membership does not match the encoded entries")
	}
}

func TestSpawnMaskOneEncodingPerMask(t *testing.T) {
	// Any entry order and duplication in the input must re-encode to the
	// same canonical bytes.
	inputs := []string{
		"0x100:hammock,0x40:loop,0x40:loopFT",
		"0x40:loopFT,0x40:loop,0x100:hammock,0x40:loop",
		"0x040:loop,0x40:loopFT,0x0100:hammock",
	}
	want := "0x40:loop,0x40:loopFT,0x100:hammock"
	for _, in := range inputs {
		m, err := ParseSpawnMask(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if got := m.Encode(); got != want {
			t.Fatalf("ParseSpawnMask(%q).Encode() = %q, want %q", in, got, want)
		}
	}
}

func TestSpawnMaskNilAndEmpty(t *testing.T) {
	var nilMask *SpawnMask
	if nilMask.Len() != 0 || nilMask.Contains(1, 0) || nilMask.Encode() != "" {
		t.Fatal("nil mask is not inert")
	}
	if NewSpawnMask().Encode() != "" {
		t.Fatal("empty mask must encode to the empty string, like nil")
	}
	m, err := ParseSpawnMask("")
	if err != nil || m != nil {
		t.Fatalf("ParseSpawnMask(\"\") = %v, %v; want nil, nil", m, err)
	}
	with := nilMask.With(0x40, 0)
	if with.Len() != 1 || nilMask.Len() != 0 {
		t.Fatal("With must copy, not mutate")
	}
}

func TestSpawnMaskParseErrors(t *testing.T) {
	for _, bad := range []string{
		"0x40",            // no kind
		"64:loop",         // not hex-prefixed
		"0xzz:loop",       // bad hex
		"0x40:root",       // the root pseudo-kind never spawns
		"0x40:bogus",      // unknown kind
		"0x40:loop,,",     // empty entry
		"0x40:loop, ,0x1", // empty entry after trimming
	} {
		if _, err := ParseSpawnMask(bad); err == nil {
			t.Errorf("ParseSpawnMask(%q) succeeded, want error", bad)
		}
	}
}

// TestSpawnMaskEmptyIsNoOp: attaching an empty (or nil) mask must be
// bit-identical to no mask at all, on both schedulers.
func TestSpawnMaskEmptyIsNoOp(t *testing.T) {
	_, tr, a := prep(t, hardHammockLoop)
	for _, polled := range []bool{false, true} {
		cfg := PolyFlowConfig()
		cfg.PolledScheduler = polled
		base, err := Run(tr, nil, core.PolicyPostdoms.Source(a), cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.SpawnMask = NewSpawnMask()
		masked, err := Run(tr, nil, core.PolicyPostdoms.Source(a), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, masked) {
			t.Fatalf("polled=%v: empty mask changed the run:\nbase:   %+v\nmasked: %+v", polled, base, masked)
		}
	}
}

// TestSpawnMaskFullSuppressionMatchesNoSpawns: masking every analyzed spawn
// site must behave exactly like running with no spawn source at all.
func TestSpawnMaskFullSuppressionMatchesNoSpawns(t *testing.T) {
	_, tr, a := prep(t, hardHammockLoop)
	none, err := Run(tr, nil, nil, PolyFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	mask := NewSpawnMask()
	for _, sp := range a.Spawns {
		mask.Add(sp.From, uint8(sp.Kind))
	}
	cfg := PolyFlowConfig()
	cfg.SpawnMask = mask
	masked, err := Run(tr, nil, core.PolicyPostdoms.Source(a), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if masked.SpawnsTaken != 0 || masked.SpawnsRejected != 0 {
		t.Fatalf("fully masked run still touched the TSU: %d taken, %d rejected",
			masked.SpawnsTaken, masked.SpawnsRejected)
	}
	if masked.Cycles != none.Cycles || masked.Retired != none.Retired {
		t.Fatalf("fully masked run (%d cycles) differs from sourceless run (%d cycles)",
			masked.Cycles, none.Cycles)
	}
}

// TestSpawnMaskedSitesChargeNothing: under a non-empty mask the per-site
// attribution must still reconcile exactly with the machine counters, and
// the masked site must have no record at all — not even rejections.
func TestSpawnMaskedSitesChargeNothing(t *testing.T) {
	_, tr, a := prep(t, hardHammockLoop)
	src := core.PolicyPostdoms.Source(a)

	cfg := PolyFlowConfig()
	cfg.Attribution = attrib.NewTable()
	res, err := Run(tr, nil, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAttribution(cfg.Attribution, res); err != nil {
		t.Fatal(err)
	}
	// Pick the busiest non-root site to suppress.
	var pc uint64
	var kind uint8
	var most int64 = -1
	cfg.Attribution.ForEach(func(p uint64, k uint8, st *attrib.SiteStats) {
		if k != attrib.Root && st.Spawns+st.Rejected > most {
			pc, kind, most = p, k, st.Spawns+st.Rejected
		}
	})
	if most <= 0 {
		t.Fatal("no active spawn site to mask")
	}

	cfg.SpawnMask = NewSpawnMask()
	cfg.SpawnMask.Add(pc, kind)
	cfg.Attribution = attrib.NewTable()
	masked, err := Run(tr, nil, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAttribution(cfg.Attribution, masked); err != nil {
		t.Fatalf("attribution no longer reconciles under a mask: %v", err)
	}
	if st := cfg.Attribution.Lookup(pc, kind); st != nil {
		t.Fatalf("masked site 0x%x:%s still charged: %+v", pc, attrib.KindName(kind), *st)
	}
}
