// The original polled scheduler, kept verbatim behind
// Config.PolledScheduler as the reference model for the event-driven
// scheduler in sched.go. The differential tests run every workload and
// policy through both paths and require identical Result and Stats; once
// the event path has soaked across a few PRs this file can be deleted.
package machine

import "sort"

// issuePolled rescans every scheduler entry each cycle, issuing up to
// NumFUs ready instructions in trace order.
func (s *sim) issuePolled() {
	issued := 0
	kept := s.sched[:0]
	for _, idx := range s.sched {
		i := int(idx)
		if s.state[i] != stInSched { // squashed since
			continue
		}
		if issued >= s.cfg.NumFUs || !s.ready(i) {
			kept = append(kept, idx)
			continue
		}
		issued++
		s.issueOne(i)
	}
	s.sched = kept
}

// ready reports whether instruction i can issue this cycle: dispatched on
// an earlier cycle, with every register producer and any synchronized
// store completed.
func (s *sim) ready(i int) bool {
	if int64(s.dispC[i]) >= s.cycle {
		return false
	}
	e := &s.tr[i]
	for k := 0; k < int(e.NSrc); k++ {
		p := s.deps.RegProd[i][k]
		if p >= 0 && (s.doneC[p] == never || int64(s.doneC[p]) > s.cycle) {
			return false
		}
	}
	if p := s.memWait[i]; p >= 0 {
		if s.doneC[p] == never || int64(s.doneC[p]) > s.cycle {
			return false
		}
	}
	return true
}

// enterSchedulerPolled inserts i into the sorted scheduler slice (oldest-
// first issue priority) with a copy-insert.
func (s *sim) enterSchedulerPolled(i int) {
	pos := sort.Search(len(s.sched), func(k int) bool { return s.sched[k] > int32(i) })
	s.sched = append(s.sched, 0)
	copy(s.sched[pos+1:], s.sched[pos:])
	s.sched[pos] = int32(i)
}

// purgeSchedPolled drops scheduler entries at trace index >= lo.
func (s *sim) purgeSchedPolled(lo int) {
	kept := s.sched[:0]
	for _, idx := range s.sched {
		if int(idx) < lo {
			kept = append(kept, idx)
		}
	}
	s.sched = kept
}
