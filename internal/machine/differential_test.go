package machine

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// diffConfigs are machine configurations chosen to stress every structural
// difference between the polled and event-driven schedulers: violation
// squashes (wake/watch unlinking), divert pressure (late producer
// registration), ROB reclaim (mid-flight task teardown), a finite hint
// cache, and a scheduler small enough to make issue-order priority matter.
func diffConfigs() map[string]Config {
	tiny := PolyFlowConfig()
	tiny.SchedSize = 12
	tiny.SchedReserve = 4
	tiny.NumFUs = 3

	reclaim := PolyFlowConfig()
	reclaim.ReclaimROB = true
	reclaim.ROBSize = 96
	reclaim.ROBReserve = 16

	hint := PolyFlowConfig()
	hint.HintCacheLog2 = 2

	divert := PolyFlowConfig()
	divert.DivertQSize = 8

	return map[string]Config{
		"polyflow":   PolyFlowConfig(),
		"tiny-sched": tiny,
		"reclaim":    reclaim,
		"hint-cache": hint,
		"divert-8":   divert,
	}
}

// TestEventPolledDifferential runs violation-heavy and divert-heavy
// workloads under every stress configuration with both scheduler
// implementations and requires bit-identical Results.
func TestEventPolledDifferential(t *testing.T) {
	programs := map[string]string{
		"hammock":  hardHammockLoop,
		"memViol":  interTaskMemProgram,
		"straight": straightLine(600),
	}
	for pname, src := range programs {
		_, tr, a := prep(t, src)
		for cname, cfg := range diffConfigs() {
			t.Run(pname+"/"+cname, func(t *testing.T) {
				cfg.WarmupInstrs = 0
				event, err := Run(tr, nil, core.PolicyPostdoms.Source(a), cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.PolledScheduler = true
				polled, err := Run(tr, nil, core.PolicyPostdoms.Source(a), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(event, polled) {
					t.Errorf("schedulers diverge:\nevent:  %+v\npolled: %+v", event, polled)
				}
			})
		}
	}
}

// TestRunSteadyStateAllocs: with the arena pool warm, machine.Run must not
// allocate per-trace-entry state — only a fixed handful of small setup
// allocations (predictors, store sets, the sim itself) may remain.
func TestRunSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	_, tr, _ := prep(t, hardHammockLoop)
	cfg := SuperscalarConfig()
	run := func() {
		if _, err := Run(tr, nil, nil, cfg); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the arena pool
	allocs := minAllocsPerRun(run)
	// The trace is ~46k entries; per-entry allocation would show up as
	// thousands. The observed steady state is tens of allocations.
	if allocs > 200 {
		t.Fatalf("machine.Run allocates %v objects per run in steady state", allocs)
	}
}

// minAllocsPerRun measures AllocsPerRun several times and keeps the
// minimum: a GC that empties the run-arena sync.Pool mid-measurement (much
// likelier under the race runtime) inflates a single attempt, while a real
// per-entry allocation regression inflates every attempt.
func minAllocsPerRun(run func()) float64 {
	best := testing.AllocsPerRun(3, run)
	for i := 0; i < 2; i++ {
		if a := testing.AllocsPerRun(3, run); a < best {
			best = a
		}
	}
	return best
}
