package machine

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestRunContextCancellation(t *testing.T) {
	_, tr, _ := prep(t, hardHammockLoop)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the run must abort on its first check
	res, err := RunContext(ctx, tr, nil, nil, SuperscalarConfig())
	if err == nil {
		t.Fatal("canceled run completed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "canceled at cycle") {
		t.Fatalf("err lacks progress context: %v", err)
	}
	if res.Retired >= int64(tr.Len()) {
		t.Fatalf("canceled run retired the whole trace (%d)", res.Retired)
	}
}

func TestRunContextNilAndBackgroundMatch(t *testing.T) {
	_, tr, _ := prep(t, hardHammockLoop)
	a, err := RunContext(context.Background(), tr, nil, nil, SuperscalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(nil, tr, nil, nil, SuperscalarConfig()) //lint:ignore SA1012 nil ctx is explicitly supported
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(tr, nil, nil, SuperscalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Cycles != c.Cycles || a.Stats != b.Stats || a.Stats != c.Stats {
		t.Fatalf("context plumbing changed timing: bg=%d nil=%d Run=%d", a.Cycles, b.Cycles, c.Cycles)
	}
}

func TestOnSampleProgressCallback(t *testing.T) {
	_, tr, _ := prep(t, hardHammockLoop)
	cfg := SuperscalarConfig()
	cfg.SampleInterval = 256
	var cycles, retires []int64
	cfg.OnSample = func(cycle, retired int64) {
		cycles = append(cycles, cycle)
		retires = append(retires, retired)
	}
	res, err := Run(tr, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cycles) == 0 {
		t.Fatal("OnSample never fired")
	}
	if len(cycles) != len(res.IPCSamples) {
		t.Fatalf("OnSample fired %d times, IPCSamples has %d", len(cycles), len(res.IPCSamples))
	}
	for i := 1; i < len(cycles); i++ {
		if cycles[i] <= cycles[i-1] || retires[i] < retires[i-1] {
			t.Fatalf("non-monotonic progress: cycles=%v retires=%v", cycles, retires)
		}
	}
}
