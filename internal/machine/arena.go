package machine

import (
	"sync"

	"repro/internal/cachesim"
)

// arena holds every piece of run state whose size scales with the trace (or
// that is otherwise worth recycling) so that a grid of simulations reuses
// one allocation set per worker instead of reallocating per machine.Run.
// Arenas are pooled through a sync.Pool: the harness runs NumCPU cells
// concurrently, so the pool settles at about one arena per worker.
//
// Only the arrays that are read before being written this run are
// re-initialized on reuse (state, dispC, doneC, plus the heads of the
// intrusive wake/watch lists, which are instead cleared instruction by
// instruction at first fetch); everything else is provably written before
// it is read, so stale values from the previous run are unobservable.
type arena struct {
	n int // trace length the per-instruction arrays are sized for

	state   []uint8
	fetchC  []int32
	dispC   []int32
	doneC   []int32
	issueC  []int32
	memWait []int32
	memSpec []int32

	// Event-driven scheduler state (sched.go).
	wakeHead []int32
	wakeNext [][3]int32
	pendCnt  []uint8
	readyAt  []int32
	timeQ    []int64
	readyQ   []int32

	// Speculative-load watch lists (flat successor of watch map[int][]int32).
	watchHead []int32
	watchNext []int32
	watchTmp  []int32

	profit profitTable

	// Bounded scratch.
	sched     []int32
	dq        []dqEntry
	viols     []violation
	chosen    []*task
	tasks     []*task
	freeTasks []*task

	// caches is the pooled default hierarchy, used only when the Config
	// does not supply its own.
	caches *cachesim.Hierarchy
}

var arenaPool sync.Pool

// getArena returns an arena sized for an n-entry trace with all
// read-before-write state initialized.
func getArena(n int) *arena {
	a, _ := arenaPool.Get().(*arena)
	if a == nil {
		a = &arena{}
	}
	a.ensure(n)
	return a
}

func putArena(a *arena) { arenaPool.Put(a) }

// ensure sizes the per-instruction arrays for an n-entry trace and resets
// the state that must start clean.
func (a *arena) ensure(n int) {
	if cap(a.state) < n {
		a.state = make([]uint8, n)
		a.fetchC = make([]int32, n)
		a.dispC = make([]int32, n)
		a.doneC = make([]int32, n)
		a.issueC = make([]int32, n)
		a.memWait = make([]int32, n)
		a.memSpec = make([]int32, n)
		a.wakeHead = make([]int32, n)
		a.wakeNext = make([][3]int32, n)
		a.pendCnt = make([]uint8, n)
		a.readyAt = make([]int32, n)
		a.watchHead = make([]int32, n)
		a.watchNext = make([]int32, n)
	}
	a.n = n
	a.state = a.state[:n]
	a.fetchC = a.fetchC[:n]
	a.dispC = a.dispC[:n]
	a.doneC = a.doneC[:n]
	a.issueC = a.issueC[:n]
	a.memWait = a.memWait[:n]
	a.memSpec = a.memSpec[:n]
	a.wakeHead = a.wakeHead[:n]
	a.wakeNext = a.wakeNext[:n]
	a.pendCnt = a.pendCnt[:n]
	a.readyAt = a.readyAt[:n]
	a.watchHead = a.watchHead[:n]
	a.watchNext = a.watchNext[:n]

	clear(a.state)
	fillNever(a.dispC)
	fillNever(a.doneC)
	// Wake and watch lists may be registered on a producer before it is even
	// fetched (the divert queue releases consumers once producers *exist*,
	// not once they dispatch), so the heads must start empty for the whole
	// trace up front. fetchC/issueC/memWait/memSpec need no init: they are
	// gated by state and always written at fetch/dispatch before any read.
	fillNever(a.wakeHead)
	fillNever(a.watchHead)

	a.timeQ = a.timeQ[:0]
	a.readyQ = a.readyQ[:0]
	a.watchTmp = a.watchTmp[:0]
	a.sched = a.sched[:0]
	a.dq = a.dq[:0]
	a.viols = a.viols[:0]
	a.chosen = a.chosen[:0]
	a.tasks = a.tasks[:0]
	a.profit.reset()
}

// fillNever sets every element to never using doubling copies, which run at
// memmove speed instead of a scalar store loop.
func fillNever(s []int32) {
	if len(s) == 0 {
		return
	}
	s[0] = never
	for i := 1; i < len(s); i *= 2 {
		copy(s[i:], s[:i])
	}
}

// defaultCaches returns the arena's pooled default hierarchy, reset for a
// new run.
func (a *arena) defaultCaches() *cachesim.Hierarchy {
	if a.caches == nil {
		a.caches = cachesim.DefaultHierarchy()
		return a.caches
	}
	a.caches.Reset()
	return a.caches
}

// bind points the sim at the arena's storage.
func (s *sim) bind(a *arena) {
	s.ar = a
	s.state = a.state
	s.fetchC = a.fetchC
	s.dispC = a.dispC
	s.doneC = a.doneC
	s.issueC = a.issueC
	s.memWait = a.memWait
	s.memSpec = a.memSpec
	s.wakeHead = a.wakeHead
	s.wakeNext = a.wakeNext
	s.pendCnt = a.pendCnt
	s.readyAt = a.readyAt
	s.timeQ = a.timeQ
	s.readyQ = a.readyQ
	s.watchHead = a.watchHead
	s.watchNext = a.watchNext
	s.watchTmp = a.watchTmp
	s.profit = &a.profit
	s.sched = a.sched
	s.dq = a.dq
	s.viols = a.viols
	s.chosen = a.chosen
	s.tasks = a.tasks
	s.freeTasks = a.freeTasks
}

// release returns the (possibly grown) storage to the arena and the arena
// to the pool. The sim must not be used afterwards.
func (s *sim) release() {
	a := s.ar
	if a == nil {
		return
	}
	a.timeQ = s.timeQ
	a.readyQ = s.readyQ
	a.watchTmp = s.watchTmp
	a.sched = s.sched
	a.dq = s.dq
	a.viols = s.viols
	a.chosen = s.chosen
	// Recycle the remaining live tasks along with the already-freed ones.
	for _, t := range s.tasks {
		s.freeTasks = append(s.freeTasks, t)
	}
	a.tasks = s.tasks[:0]
	a.freeTasks = s.freeTasks
	s.ar = nil
	putArena(a)
}
