// Package machine implements the cycle-level timing model of the paper's
// evaluation: the PolyFlow speculative parallelization machine built on a
// simultaneously multithreaded core, and — as the degenerate single-task
// configuration of the same model — the 8-wide superscalar baseline with
// equivalent resources.
//
// The model is driven by the correct-path dynamic trace from the functional
// emulator. Branch predictors, caches, the shared ROB/scheduler, the divert
// queue, and the store-set memory dependence predictor determine *timing*;
// the path is always correct (mispredicts stall the mispredicting task's
// fetch until the branch resolves — see DESIGN.md for why this
// simplification is conservative). The Task Spawn Unit takes spawn hints
// from a core.Source and uses the trace to place spawned tasks, exactly as
// the paper's spawn unit "uses a trace to ensure that tasks are not spawned
// too far into the future".
package machine

import (
	"fmt"
	"strings"

	"repro/internal/attrib"
	"repro/internal/cachesim"
	"repro/internal/telemetry"
)

// Config holds the pipeline parameters (Figure 8) plus the Task Spawn Unit
// knobs.
type Config struct {
	Name string

	// Front end.
	Width              int // fetch/dispatch/commit width, instrs/cycle
	FetchTasksPerCycle int // tasks fetched per cycle (PolyFlow: 2)
	FrontEndDepth      int // cycles from fetch to earliest dispatch
	FetchBufPerTask    int // fetched-but-undispatched cap per task
	GshareLog2         int // log2 counters (13 -> 16 Kbit)
	GshareHistBits     int
	BTBLog2            int
	RASDepth           int
	RedirectPenalty    int // extra bubble after branch resolution

	// Backend.
	ROBSize      int
	SchedSize    int
	NumFUs       int
	CommitWidth  int
	DivertQSize  int
	ROBReserve   int // ROB slots only the head task may take
	SchedReserve int // scheduler slots only the head task may take

	// Task Spawn Unit.
	MaxTasks          int
	MaxSpawnDistance  int // max trace distance from spawn point to task start
	MinSpawnDistance  int // profitability filter: skip too-near spawns
	SpawnFromTailOnly bool

	// Memory dependence prediction.
	StoreSetWays int // learned store PCs per load PC

	// SpawnLatency delays a freshly spawned task's first fetch, modeling
	// task-context allocation and rename-map setup.
	SpawnLatency int

	// Profitability feedback (the paper's Task Spawn Unit spawns
	// "depending on dynamic feedback about which tasks are profitable"):
	// a spawn point is disabled once its score falls below -ProfitPatience.
	// Tasks squashed by dependence violations and spawns whose placement
	// foreclosed a useful hop in an older task lower the spawn point's
	// score; tasks that retire cleanly raise it. Spawned tasks cut shorter
	// than ProfitMinTaskLen instructions count as unprofitable fragments.
	ProfitPatience   int
	ProfitMinTaskLen int

	// SpawnMask, when non-nil and non-empty, suppresses individual spawn
	// sites by (trigger PC, kind): the Task Spawn Unit skips masked sites
	// entirely — no spawn, no rejection count, no attribution charge — as
	// if the analysis had never emitted them. A nil or empty mask changes
	// nothing (bit-identical to a maskless run). Unlike the observer
	// attachments below, the mask is semantic: it alters the simulated
	// outcome and therefore participates in the artifact-cache key
	// (internal/artifact hashes its canonical encoding). internal/tune
	// searches over masks; see docs/TUNING.md.
	SpawnMask *SpawnMask

	// HintCacheLog2 models capacity/conflict misses in the spawn hint
	// cache as a direct-mapped tag store of 2^HintCacheLog2 entries,
	// filled on demand from the binary's hint section; a missing entry
	// costs that encounter's spawn opportunity. 0 leaves the hint cache
	// unmodeled (infinite), the paper's configuration.
	HintCacheLog2 int

	// ReclaimROB enables the paper's future-work extension: when the head
	// task is dispatch-blocked because younger tasks fill the reorder
	// buffer, the youngest task is squashed to reclaim its entries.
	ReclaimROB bool

	// WarmupInstrs replays a trace prefix through the caches and branch
	// predictors without timing, modeling the paper's fast-forward through
	// each benchmark's initialization phase. Timing starts at the first
	// instruction after the prefix.
	WarmupInstrs int

	// SampleInterval, when positive, records an IPC sample every that many
	// cycles into Result.IPCSamples — a retirement-throughput timeline for
	// plots and phase analysis.
	SampleInterval int64

	// OnSample, when non-nil and SampleInterval is positive, is called at
	// every sample boundary with the current cycle and retired-instruction
	// counts — a low-rate progress callback for long runs (polyflowd
	// streams these as SSE job-progress events). It runs on the simulation
	// goroutine and must be cheap; it observes the run without affecting
	// its outcome.
	OnSample func(cycle, retired int64)

	// Caches; nil selects cachesim.DefaultHierarchy.
	Caches *cachesim.Hierarchy

	// Telemetry, when non-nil, receives this run's metrics (registered by
	// name into its Registry, with machine.Stats kept as a compatibility
	// view over the same storage) and, when its Tracer is non-nil, the
	// cycle-timeline events of docs/OBSERVABILITY.md. One Collector
	// observes one run: sharing it across concurrent runs is a data race.
	// Nil disables telemetry entirely at ~zero cost on the hot loop.
	Telemetry *telemetry.Collector

	// Attribution, when non-nil, receives per-spawn-site accounting:
	// every task is keyed by its static spawn point (trigger PC +
	// core.Kind) and its retire/squash outcome, cycles and instructions
	// are charged to that site (see internal/attrib and
	// docs/OBSERVABILITY.md). The table is Reset at the start of the run
	// — one Table observes one run at a time, and reusing it across
	// sequential runs keeps the hot loop allocation-free. Nil disables
	// attribution at ~zero cost.
	Attribution *attrib.Table

	// PolledScheduler selects the original O(scheduler) per-cycle issue
	// rescan instead of the event-driven producer-wakeup scheduler. The two
	// are cycle-for-cycle identical (enforced by the differential tests);
	// the polled path exists as the reference model and will be removed
	// once the event path has soaked.
	PolledScheduler bool

	// Safety valve.
	MaxCycles int64
}

// PolyFlowConfig returns the paper's PolyFlow configuration (Figure 8):
// 8-wide, 8 tasks, fetch from 2 tasks/cycle with at most one taken branch
// per task per cycle, 512-entry shared ROB, 64-entry shared scheduler,
// 128-entry divert queue, 8 FUs, 16 Kbit gshare with 8 bits of history, and
// a misprediction penalty of at least 8 cycles.
func PolyFlowConfig() Config {
	return Config{
		Name:               "polyflow",
		Width:              8,
		FetchTasksPerCycle: 2,
		FrontEndDepth:      6,
		FetchBufPerTask:    64,
		GshareLog2:         13,
		GshareHistBits:     8,
		BTBLog2:            9,
		RASDepth:           32,
		RedirectPenalty:    1,
		ROBSize:            512,
		SchedSize:          64,
		NumFUs:             8,
		CommitWidth:        8,
		DivertQSize:        128,
		ROBReserve:         64,
		SchedReserve:       16,
		MaxTasks:           8,
		MaxSpawnDistance:   128,
		MinSpawnDistance:   2,
		SpawnFromTailOnly:  true,
		StoreSetWays:       4,
		SpawnLatency:       1,
		ProfitPatience:     2,
		ProfitMinTaskLen:   6,
		MaxCycles:          1 << 40,
	}
}

// SuperscalarConfig returns the baseline: the same hardware resources with
// a single task, fetching a maximum of one taken branch per cycle.
func SuperscalarConfig() Config {
	c := PolyFlowConfig()
	c.Name = "superscalar"
	c.MaxTasks = 1
	c.FetchTasksPerCycle = 1
	c.ROBReserve = 0
	c.SchedReserve = 0
	return c
}

// ParameterTable renders the Figure 8 pipeline-parameter table.
func (c Config) ParameterTable() string {
	var b strings.Builder
	row := func(k, v string) { fmt.Fprintf(&b, "%-24s %s\n", k, v) }
	row("Parameter", "Value")
	row("Pipeline Width", fmt.Sprintf("%d instrs/cycle", c.Width))
	row("Branch Predictor", fmt.Sprintf("%dKbit gshare, %d bits of global history",
		(1<<c.GshareLog2)*2/1024, c.GshareHistBits))
	row("Misprediction Penalty", fmt.Sprintf("At least %d cycles", c.FrontEndDepth+2))
	row("Reorder Buffer", fmt.Sprintf("%d entries, dynamically shared", c.ROBSize))
	row("Scheduler", fmt.Sprintf("%d entries, dynamically shared", c.SchedSize))
	row("Functional Units", fmt.Sprintf("%d identical general purpose units", c.NumFUs))
	row("L1 I-Cache", "8Kbytes, 2-way set assoc., 128 byte lines, 10 cycle miss")
	row("L1 D-Cache", "16Kbytes, 4-way set assoc., 64 byte lines, 10 cycle miss")
	row("L2 Cache", "512Kbytes, 8-way set assoc., 128 byte lines, 100 cycle miss")
	row("Divert Queue", fmt.Sprintf("%d entries, dynamically shared", c.DivertQSize))
	row("Tasks", fmt.Sprintf("%d", c.MaxTasks))
	return b.String()
}
