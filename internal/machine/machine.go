package machine

import (
	"context"
	"fmt"

	"repro/internal/attrib"
	"repro/internal/branchpred"
	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Per-instruction pipeline states.
const (
	stNone uint8 = iota
	stFetched
	stDiverted
	stInSched
	stIssued
	stRetired
)

const never = int32(-1)

// task is one active PolyFlow task: a contiguous segment of the dynamic
// trace with its own fetch stream.
type task struct {
	id       int
	start    int // first trace index of the segment
	end      int // exclusive; -1 while the task is the unbounded tail
	fetchIdx int
	dispIdx  int
	inflight int // fetched and not yet retired

	stallUntil      int64
	pendingRedirect int // trace index of an unresolved mispredicted branch, -1 if none
	hist            uint32
	ras             *branchpred.RAS
	lastLine        uint64 // last-fetched I-cache line + 1 (0 = none)
	spawnFrom       uint64 // trigger PC of the spawn that created this task (0 = initial task)
	spawnKind       uint8  // core.Kind of the creating spawn; attrib.Root for the initial task
	blockedSpawn    bool   // a viable spawn was foreclosed by the tail-only rule
	spawnCycle      int64  // cycle the task was created (telemetry/attribution)
}

func (t *task) fetchDone(traceLen int) bool {
	if t.end != -1 {
		return t.fetchIdx >= t.end
	}
	return t.fetchIdx >= traceLen
}

// dqEntry is one diverted instruction waiting for earlier-task producers to
// dispatch.
type dqEntry struct {
	idx   int
	prods [3]int32
	n     uint8
}

type violation struct {
	load, store int
	detect      int64
}

// Stats collects the observable behaviour of one run.
type Stats struct {
	Mispredicts      int64
	SpawnsTaken      int64
	SpawnsByKind     [core.NumKinds]int64
	SpawnsRejected   int64
	Violations       int64
	SquashedInstrs   int64
	Diverted         int64
	TaskCycles       int64 // sum over cycles of active task count
	PeakTasks        int
	ICacheMisses     uint64
	DCacheMisses     uint64
	L2Misses         uint64
	ICacheStallCycle int64
	Foreclosures     int64
	HintMisses       int64
	Reclaims         int64
}

// Result is the outcome of one timing simulation.
type Result struct {
	Config  string
	Cycles  int64
	Retired int64
	IPC     float64
	// IPCSamples holds one retirement-rate sample per SampleInterval
	// cycles when sampling is enabled.
	IPCSamples []float64
	Stats
}

// String summarizes the observable counters, including the squash
// forensics (violations, foreclosures) that the shorter historical form
// omitted.
func (s Stats) String() string {
	return fmt.Sprintf("mispredicts %d, spawns %d, rejected %d, violations %d, squashed instrs %d, foreclosures %d, reclaims %d, diverted %d",
		s.Mispredicts, s.SpawnsTaken, s.SpawnsRejected, s.Violations,
		s.SquashedInstrs, s.Foreclosures, s.Reclaims, s.Diverted)
}

// String summarizes the result.
func (r Result) String() string {
	return fmt.Sprintf("%s: %d instrs, %d cycles, IPC %.3f (%s)",
		r.Config, r.Retired, r.Cycles, r.IPC, r.Stats)
}

type sim struct {
	cfg    Config
	tr     []trace.Entry
	t      *trace.Trace
	deps   *trace.Deps
	src    core.Source
	gshare *branchpred.Gshare
	btb    *branchpred.BTB
	caches *cachesim.Hierarchy
	ss     *storeSets
	ar     *arena
	polled bool // Config.PolledScheduler: use the reference issue rescan

	state   []uint8
	fetchC  []int32
	dispC   []int32
	doneC   []int32
	issueC  []int32
	memWait []int32 // producer store the load must wait for (synchronized), or -1
	memSpec []int32 // producer store the load speculates past (unsynchronized), or -1

	// Event-driven scheduler state (sched.go): producer wake lists, the
	// wakeup time heap, and the trace-index-ordered ready queue.
	wakeHead []int32
	wakeNext [][3]int32
	pendCnt  []uint8
	readyAt  []int32
	timeQ    []int64
	readyQ   []int32

	// Per-store watch lists of speculative loads (sched.go).
	watchHead []int32
	watchNext []int32
	watchTmp  []int32

	tasks      []*task
	freeTasks  []*task
	chosen     []*task // fetch-stage scratch
	nextTaskID int
	warmStart  int
	robUsed    int
	schedUsed  int
	sched      []int32 // polled mode only: trace indices in the scheduler, ascending
	dq         []dqEntry
	retireIdx  int
	cycle      int64
	viols      []violation
	profit     *profitTable // spawn-point profitability scores
	hintTags   []uint64     // finite hint cache tags (nil = unmodeled)
	mask       *SpawnMask   // suppressed spawn sites (nil = none)
	stats      Stats

	samples       []float64
	lastSampleRet int

	// tel is nil unless cfg.Telemetry was provided; every telemetry touch
	// on the simulation loop hides behind that one nil check, so a run
	// without a Collector pays nothing beyond its ordinary stats fields.
	tel *telemetrySinks

	// att is nil unless cfg.Attribution was provided; like tel, one nil
	// check guards every attribution touch on the hot loop.
	att *attrib.Table
}

// telemetrySinks holds the tracer and the histogram handles the sim
// observes into. Scalar stats need no handles: bindTelemetry registers the
// sim's own Stats fields as the registry's counter storage, keeping the hot
// loop's plain field increments.
type telemetrySinks struct {
	tracer        *telemetry.Tracer
	taskLifetime  *telemetry.Histogram // spawn-to-end cycles, retired or squashed
	spawnToCommit *telemetry.Histogram // spawn-to-full-retire cycles, retired tasks only
	squashDepth   *telemetry.Histogram // instructions rolled back per violation squash
	taskLen       *telemetry.Histogram // segment length (instrs) of completed tasks
	dqOccupancy   *telemetry.Histogram // divert-queue occupancy sampled at each divert
}

// bindTelemetry publishes the run's metrics into the collector's registry
// and readies the event tracer. Counter names are the machine.* catalog of
// docs/OBSERVABILITY.md; their storage is the sim's Stats fields, so
// machine.Stats remains a coherent compatibility view of the registry.
func (s *sim) bindTelemetry(col *telemetry.Collector) {
	reg := col.Registry
	reg.RegisterCounter("machine.mispredicts", &s.stats.Mispredicts)
	reg.RegisterCounter("machine.spawns_taken", &s.stats.SpawnsTaken)
	reg.RegisterCounter("machine.spawns_rejected", &s.stats.SpawnsRejected)
	reg.RegisterCounter("machine.violations", &s.stats.Violations)
	reg.RegisterCounter("machine.squashed_instrs", &s.stats.SquashedInstrs)
	reg.RegisterCounter("machine.diverted", &s.stats.Diverted)
	reg.RegisterCounter("machine.task_cycles", &s.stats.TaskCycles)
	reg.RegisterCounter("machine.icache_stall_cycles", &s.stats.ICacheStallCycle)
	reg.RegisterCounter("machine.foreclosures", &s.stats.Foreclosures)
	reg.RegisterCounter("machine.hint_misses", &s.stats.HintMisses)
	reg.RegisterCounter("machine.reclaims", &s.stats.Reclaims)
	for k := core.Kind(0); k < core.NumKinds; k++ {
		reg.RegisterCounter("machine.spawns."+k.String(), &s.stats.SpawnsByKind[k])
	}
	s.tel = &telemetrySinks{
		tracer:        col.Tracer,
		taskLifetime:  reg.Histogram("machine.task_lifetime_cycles", telemetry.ExpBounds(8, 12)),
		spawnToCommit: reg.Histogram("machine.spawn_to_commit_cycles", telemetry.ExpBounds(8, 12)),
		squashDepth:   reg.Histogram("machine.squash_depth_instrs", telemetry.ExpBounds(4, 10)),
		taskLen:       reg.Histogram("machine.task_len_instrs", telemetry.ExpBounds(4, 10)),
		dqOccupancy:   reg.Histogram("machine.divert_queue_occupancy", telemetry.ExpBounds(2, 8)),
	}
}

// emit records a timeline event when tracing is on. Callers on warm paths
// should guard with `s.tel != nil` themselves to skip argument setup.
func (s *sim) emit(kind telemetry.EventKind, taskID int, a, b int64) {
	if s.tel == nil || s.tel.tracer == nil {
		return
	}
	s.tel.tracer.Emit(s.cycle, kind, int32(taskID), a, b)
}

// taskEnded observes end-of-life histograms for a task that is leaving the
// machine at the current cycle.
func (s *sim) taskEnded(t *task, retired bool) {
	life := s.cycle - t.spawnCycle
	s.tel.taskLifetime.Observe(life)
	end := t.end
	if end == -1 {
		end = t.fetchIdx
	}
	s.tel.taskLen.Observe(int64(end - t.start))
	if retired {
		s.tel.spawnToCommit.Observe(life)
	}
}

// scoreSpawn applies profitability feedback to a spawn point.
func (s *sim) scoreSpawn(from uint64, delta int) {
	if from == 0 {
		return
	}
	v := s.profit.get(from) + delta
	if v > 4 {
		v = 4
	}
	if v < -4 {
		v = -4
	}
	s.profit.set(from, v)
}

// spawnAllowed consults the profitability table.
func (s *sim) spawnAllowed(from uint64) bool {
	return s.profit.get(from) >= -s.cfg.ProfitPatience
}

// Run simulates the trace on the configured machine with the given spawn
// source (nil means no spawning — the superscalar). deps may be nil, in
// which case it is computed here.
func Run(tr *trace.Trace, deps *trace.Deps, src core.Source, cfg Config) (Result, error) {
	return RunContext(context.Background(), tr, deps, src, cfg)
}

// RunContext is Run under a context: the simulation aborts promptly (within
// ~1k cycles) when ctx is canceled or times out, returning the partial
// result and a wrapped ctx error. The cancellation check touches the hot
// loop only on cycle numbers divisible by 1024, so the cost is one
// predictable branch per cycle; a Background context costs the same and
// never fires.
func RunContext(ctx context.Context, tr *trace.Trace, deps *trace.Deps, src core.Source, cfg Config) (Result, error) {
	if deps == nil {
		deps = tr.ComputeDeps()
	}
	n := tr.Len()
	s := &sim{
		cfg:    cfg,
		tr:     tr.Entries,
		t:      tr,
		deps:   deps,
		src:    src,
		polled: cfg.PolledScheduler,
		gshare: branchpred.NewGshare(cfg.GshareLog2, cfg.GshareHistBits),
		btb:    branchpred.NewBTB(cfg.BTBLog2),
		caches: cfg.Caches,
		ss:     newStoreSets(cfg.StoreSetWays),
	}
	ar := getArena(n)
	s.bind(ar)
	defer s.release()
	if s.caches == nil {
		s.caches = ar.defaultCaches()
	}
	if cfg.HintCacheLog2 > 0 {
		s.hintTags = make([]uint64, 1<<cfg.HintCacheLog2)
	}
	if cfg.SpawnMask.Len() > 0 {
		// An empty mask stays nil here so the hot path's nil check keeps a
		// maskless run bit-identical to one with an empty mask attached.
		s.mask = cfg.SpawnMask
	}
	if cfg.Attribution != nil {
		s.att = cfg.Attribution
		s.att.Reset() // one table observes one run; reuse keeps its arrays
	}
	t0 := s.newTask(cfg.RASDepth)
	t0.end = -1
	t0.pendingRedirect = -1
	t0.spawnKind = attrib.Root
	s.tasks = append(s.tasks, t0)
	s.nextTaskID = 1
	if s.att != nil {
		s.att.Site(0, attrib.Root).Spawns++
	}
	if w := cfg.WarmupInstrs; w > 0 {
		if w > n {
			w = n
		}
		s.warmup(w)
	}
	if cfg.Telemetry != nil {
		s.bindTelemetry(cfg.Telemetry)
		s.emit(telemetry.EvTaskSpawn, 0, int64(s.tasks[0].start), -1)
	}

	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done() // capture once; Done() may allocate lazily
	}
	for s.retireIdx < n {
		if s.cycle >= cfg.MaxCycles {
			return s.result(), fmt.Errorf("machine: exceeded MaxCycles=%d at retireIdx=%d/%d",
				cfg.MaxCycles, s.retireIdx, n)
		}
		if done != nil && s.cycle&1023 == 0 {
			select {
			case <-done:
				return s.result(), fmt.Errorf("machine: run canceled at cycle %d, retireIdx=%d/%d: %w",
					s.cycle, s.retireIdx, n, ctx.Err())
			default:
			}
		}
		s.processViolations()
		s.retire()
		if s.polled {
			s.issuePolled()
		} else {
			s.issueEvent()
		}
		s.moveDivertQueue()
		s.dispatch()
		s.fetch()
		s.stats.TaskCycles += int64(len(s.tasks))
		if len(s.tasks) > s.stats.PeakTasks {
			s.stats.PeakTasks = len(s.tasks)
		}
		if iv := cfg.SampleInterval; iv > 0 && s.cycle > 0 && s.cycle%iv == 0 {
			s.samples = append(s.samples, float64(s.retireIdx-s.lastSampleRet)/float64(iv))
			s.lastSampleRet = s.retireIdx
			if cfg.OnSample != nil {
				cfg.OnSample(s.cycle, int64(s.retireIdx))
			}
		}
		// Slow profitability recovery: disabled spawn points get periodic
		// retries rather than being written off forever.
		if s.cycle&8191 == 0 {
			s.profit.decay()
		}
		s.cycle++
	}
	return s.result(), nil
}

// newTask returns a zeroed task, recycling a previously freed one (and its
// return-address stack) when possible.
func (s *sim) newTask(rasDepth int) *task {
	if n := len(s.freeTasks); n > 0 {
		t := s.freeTasks[n-1]
		s.freeTasks = s.freeTasks[:n-1]
		ras := t.ras
		*t = task{}
		if ras != nil && ras.Depth() == rasDepth {
			ras.Reset()
			t.ras = ras
		} else {
			t.ras = branchpred.NewRAS(rasDepth)
		}
		return t
	}
	return &task{ras: branchpred.NewRAS(rasDepth)}
}

// freeTask recycles a task that left the machine.
func (s *sim) freeTask(t *task) {
	s.freeTasks = append(s.freeTasks, t)
}

func (s *sim) result() Result {
	// Flush tasks still live at the end of the run: their cycles were
	// accumulated into TaskCycles and their retired prefix into the
	// retire count, so the attribution totals reconcile exactly.
	if s.att != nil {
		for _, t := range s.tasks {
			st := s.att.Site(t.spawnFrom, t.spawnKind)
			st.AliveAtEnd++
			st.CreditedCycles += s.cycle - t.spawnCycle
			if r := s.retireIdx - t.start; r > 0 {
				st.InstrsRetired += int64(r)
			}
		}
	}
	s.stats.ICacheMisses = s.caches.L1I.Misses
	s.stats.DCacheMisses = s.caches.L1D.Misses
	s.stats.L2Misses = s.caches.L2.Misses
	r := Result{
		Config:     s.cfg.Name,
		Cycles:     s.cycle,
		Retired:    int64(s.retireIdx - s.warmStart),
		IPCSamples: s.samples,
		Stats:      s.stats,
	}
	if r.Cycles > 0 {
		r.IPC = float64(r.Retired) / float64(r.Cycles)
	}
	if col := s.cfg.Telemetry; col != nil {
		reg := col.Registry
		reg.Gauge("machine.cycles").Set(r.Cycles)
		reg.Gauge("machine.retired").Set(r.Retired)
		reg.Gauge("machine.ipc_milli").Set(int64(r.IPC * 1000))
		reg.Gauge("machine.peak_tasks").Set(int64(s.stats.PeakTasks))
		reg.Gauge("machine.icache_misses").Set(int64(s.stats.ICacheMisses))
		reg.Gauge("machine.dcache_misses").Set(int64(s.stats.DCacheMisses))
		reg.Gauge("machine.l2_misses").Set(int64(s.stats.L2Misses))
	}
	return r
}

// warmup replays the first w trace entries through the caches and branch
// predictors without timing — the model of the paper's fast-forward through
// each benchmark's initialization phase. The spawn source (e.g. the
// dynamic reconvergence predictor) is deliberately NOT trained here: the
// paper models its warm-up as a real cost.
func (s *sim) warmup(w int) {
	var hist uint32
	var lastLine uint64
	t := s.tasks[0]
	for i := 0; i < w; i++ {
		e := &s.tr[i]
		line := s.caches.L1I.LineOf(e.PC) + 1
		if line != lastLine {
			s.caches.L1I.Access(e.PC)
			lastLine = line
		}
		switch {
		case e.IsCondBranch():
			s.gshare.Update(e.PC, hist, e.Taken())
			hist = s.gshare.PushHistory(hist, e.Taken())
		case e.IsCall():
			t.ras.Push(e.PC + isa.InstSize)
			if e.IsIndirect() {
				s.btb.Update(e.PC, e.Next)
			}
		case e.IsReturn():
			t.ras.Pop()
		case e.IsIndirect():
			s.btb.Update(e.PC, e.Next)
		}
		if e.IsLoad() || e.IsStore() {
			s.caches.L1D.Access(e.Addr)
		}
		// Warmed-up instructions count as long retired, so dependence
		// checks against them succeed immediately.
		s.state[i] = stRetired
		s.fetchC[i], s.dispC[i], s.issueC[i], s.doneC[i] = 0, 0, 0, 0
	}
	t.start, t.fetchIdx, t.dispIdx = w, w, w
	t.hist = hist
	s.retireIdx = w
	s.warmStart = w
	s.lastSampleRet = w
	// Report post-warmup cache statistics only.
	s.caches.L1I.Accesses, s.caches.L1I.Misses = 0, 0
	s.caches.L1D.Accesses, s.caches.L1D.Misses = 0, 0
	s.caches.L2.Accesses, s.caches.L2.Misses = 0, 0
}

// taskIdxOf returns the position of the active task containing trace index
// i, or -1. Tasks are ordered by segment start, so a binary search over the
// starts finds the only candidate (used on the violation path).
func (s *sim) taskIdxOf(i int) int {
	ts := s.tasks
	lo, hi := 0, len(ts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ts[mid].start <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is the first task starting beyond i; its predecessor is the only
	// task whose segment can contain i.
	if lo == 0 {
		return -1
	}
	if t := ts[lo-1]; t.end == -1 || i < t.end {
		return lo - 1
	}
	return -1
}

// taskOf returns the active task containing trace index i, or nil.
func (s *sim) taskOf(i int) *task {
	if j := s.taskIdxOf(i); j >= 0 {
		return s.tasks[j]
	}
	return nil
}

// ---------------------------------------------------------------- retire

func (s *sim) retire() {
	n := len(s.tr)
	for c := 0; c < s.cfg.CommitWidth && s.retireIdx < n; c++ {
		i := s.retireIdx
		if s.state[i] != stIssued || s.doneC[i] == never || int64(s.doneC[i]) > s.cycle {
			return
		}
		s.state[i] = stRetired
		s.robUsed--
		head := s.tasks[0]
		head.inflight--
		if s.src != nil {
			s.src.OnRetire(&s.tr[i])
		}
		s.retireIdx++
		if head.end != -1 && s.retireIdx >= head.end {
			// The task retired without being squashed: its spawn point
			// earned its keep.
			s.scoreSpawn(head.spawnFrom, 1)
			if s.att != nil {
				st := s.att.Site(head.spawnFrom, head.spawnKind)
				st.Retired++
				st.InstrsRetired += int64(head.end - head.start)
				st.CreditedCycles += s.cycle - head.spawnCycle
			}
			if s.tel != nil {
				s.taskEnded(head, true)
				s.emit(telemetry.EvTaskRetire, head.id, int64(head.start), int64(head.end))
			}
			s.tasks = s.tasks[1:]
			s.freeTask(head)
		}
	}
}

// ---------------------------------------------------------------- issue

func (s *sim) latency(e *trace.Entry) int32 {
	switch {
	case e.IsLoad():
		return int32(2 + s.caches.L1D.Access(e.Addr))
	case e.IsStore():
		s.caches.L1D.Access(e.Addr)
		return 1
	case e.Op == isa.OpMUL:
		return 3
	case e.Op == isa.OpDIV || e.Op == isa.OpREM:
		return 12
	case e.Op == isa.OpSYSCALL:
		// Kernel crossing: the OS work itself happened at emulation time;
		// the timing model charges a fixed long-latency service cost.
		return 24
	}
	return 1
}

// issueOne moves instruction i from the scheduler to execution: its
// completion cycle becomes known, speculative loads past an unfinished
// store register on its watch list, and (event mode) waiters on i wake.
func (s *sim) issueOne(i int) {
	s.schedUsed--
	s.state[i] = stIssued
	s.issueC[i] = int32(s.cycle)
	e := &s.tr[i]
	done := int32(s.cycle) + s.latency(e)
	s.doneC[i] = done

	if e.IsStore() {
		// Any speculative loads that already issued before this store's
		// data became available read stale data.
		s.fireWatch(i, done)
	}
	if e.IsLoad() {
		if p := int(s.memSpec[i]); p >= 0 {
			switch {
			case s.doneC[p] == never:
				s.watchAdd(p, i)
			case s.doneC[p] > s.issueC[i]:
				s.viols = append(s.viols, violation{load: i, store: p, detect: int64(s.doneC[p])})
			}
		}
	}
	// In polled mode no wake edges exist, so this is a no-op there.
	s.fireWake(i, done)
}

// ---------------------------------------------------------------- divert

func (s *sim) moveDivertQueue() {
	if len(s.dq) == 0 {
		return
	}
	moved := 0
	kept := s.dq[:0]
	head := s.tasks[0]
	for _, en := range s.dq {
		if s.state[en.idx] != stDiverted { // squashed
			continue
		}
		if moved >= s.cfg.Width {
			kept = append(kept, en)
			continue
		}
		readyToMove := true
		for k := 0; k < int(en.n); k++ {
			p := en.prods[k]
			if p >= 0 && int64(s.dispC[p]) >= s.cycle { // "some time after" dispatch
				readyToMove = false
				break
			}
		}
		if !readyToMove {
			kept = append(kept, en)
			continue
		}
		isHead := en.idx >= head.start && (head.end == -1 || en.idx < head.end)
		if !s.haveBackendSpace(isHead) {
			kept = append(kept, en)
			continue
		}
		s.enterScheduler(en.idx)
		moved++
	}
	s.dq = kept
}

func (s *sim) haveBackendSpace(isHead bool) bool {
	robLimit, schedLimit := s.cfg.ROBSize, s.cfg.SchedSize
	if !isHead {
		robLimit -= s.cfg.ROBReserve
		schedLimit -= s.cfg.SchedReserve
	}
	return s.robUsed < robLimit && s.schedUsed < schedLimit
}

func (s *sim) enterScheduler(i int) {
	s.dispC[i] = int32(s.cycle)
	s.state[i] = stInSched
	s.robUsed++
	s.schedUsed++
	if s.polled {
		s.enterSchedulerPolled(i)
	} else {
		s.enterSchedulerEvent(i)
	}
}

// -------------------------------------------------------------- dispatch

// classifyMemDep fixes, at rename time, how a load's memory dependence is
// handled: synchronized (memWait) when the producing store is in the same
// task or the store-set predictor flags it, speculative (memSpec)
// otherwise.
func (s *sim) classifyMemDep(i int, t *task) {
	// Reset for every instruction: the arena does not bulk-initialize these
	// arrays, so this rename-time write is what makes their values defined
	// (and a re-dispatch after a squash re-classifies).
	s.memWait[i], s.memSpec[i] = never, never
	e := &s.tr[i]
	if !e.IsLoad() {
		return
	}
	p := int(s.deps.MemProd[i])
	if p < 0 {
		return
	}
	if p >= t.start || s.ss.predicts(e.PC, s.tr[p].PC) {
		s.memWait[i] = int32(p)
	} else {
		s.memSpec[i] = int32(p)
	}
}

func (s *sim) dispatch() {
	budget := s.cfg.Width
	for ti := 0; ti < len(s.tasks); ti++ { // live slice: ReclaimROB may shrink it
		t := s.tasks[ti]
		isHead := ti == 0
		for budget > 0 {
			i := t.dispIdx
			if i >= t.fetchIdx || s.state[i] != stFetched {
				break
			}
			if int64(s.fetchC[i])+int64(s.cfg.FrontEndDepth) > s.cycle {
				break
			}
			s.classifyMemDep(i, t)

			// Collect inter-task producers that have not yet dispatched:
			// the rename-stage dependence predictors divert such
			// consumers.
			var prods [3]int32
			np := 0
			e := &s.tr[i]
			for k := 0; k < int(e.NSrc); k++ {
				p := s.deps.RegProd[i][k]
				if p >= 0 && int(p) < t.start && s.dispC[p] == never {
					prods[np] = p
					np++
				}
			}
			if p := s.memWait[i]; p >= 0 && int(p) < t.start && s.dispC[p] == never {
				prods[np] = p
				np++
			}

			if np > 0 && s.cfg.DivertQSize > 0 {
				if len(s.dq) >= s.cfg.DivertQSize {
					break
				}
				s.state[i] = stDiverted
				s.dq = append(s.dq, dqEntry{idx: i, prods: prods, n: uint8(np)})
				s.stats.Diverted++
				if s.tel != nil {
					s.tel.dqOccupancy.Observe(int64(len(s.dq)))
					s.emit(telemetry.EvDivert, t.id, int64(i), int64(len(s.dq)))
				}
				t.dispIdx++
				budget--
				continue
			}
			if !s.haveBackendSpace(isHead) {
				// Future-work extension: reclaim the youngest task's ROB
				// entries when they starve the head.
				if isHead && s.cfg.ReclaimROB && s.robUsed >= s.cfg.ROBSize && len(s.tasks) > 1 {
					s.reclaimYoungest()
					if s.haveBackendSpace(isHead) {
						continue
					}
				}
				break
			}
			s.enterScheduler(i)
			t.dispIdx++
			budget--
		}
	}
}

// ---------------------------------------------------------------- fetch

func (s *sim) taskEligible(t *task) bool {
	if t.fetchDone(len(s.tr)) {
		return false
	}
	if t.pendingRedirect >= 0 {
		d := s.doneC[t.pendingRedirect]
		if d == never {
			return false
		}
		resume := int64(d) + int64(s.cfg.RedirectPenalty)
		if s.cycle < resume {
			return false
		}
		if s.tel != nil {
			s.emit(telemetry.EvBranchResolve, t.id, int64(t.pendingRedirect), 0)
		}
		t.pendingRedirect = -1
	}
	if t.stallUntil > s.cycle {
		return false
	}
	if t.fetchIdx-t.dispIdx >= s.cfg.FetchBufPerTask {
		return false
	}
	return true
}

func (s *sim) fetch() {
	// Biased ICount: the head (least speculative) task always gets a slot
	// when it can fetch; remaining slots go to the eligible tasks with the
	// fewest in-flight instructions.
	chosen := s.chosen[:0]
	if len(s.tasks) > 0 && s.taskEligible(s.tasks[0]) {
		chosen = append(chosen, s.tasks[0])
	}
	for len(chosen) < s.cfg.FetchTasksPerCycle {
		var best *task
		for _, t := range s.tasks[min(1, len(s.tasks)):] {
			already := false
			for _, c := range chosen {
				if c == t {
					already = true
					break
				}
			}
			if already || !s.taskEligible(t) {
				continue
			}
			if best == nil || t.inflight < best.inflight {
				best = t
			}
		}
		if best == nil {
			break
		}
		chosen = append(chosen, best)
	}
	s.chosen = chosen
	if len(chosen) == 0 {
		return
	}
	bw := s.cfg.Width / len(chosen)
	for _, t := range chosen {
		s.fetchTask(t, bw)
	}
}

func (s *sim) fetchTask(t *task, bw int) {
	n := len(s.tr)
	for f := 0; f < bw; f++ {
		i := t.fetchIdx
		if (t.end != -1 && i >= t.end) || i >= n {
			return
		}
		if t.fetchIdx-t.dispIdx >= s.cfg.FetchBufPerTask {
			return
		}
		e := &s.tr[i]

		// I-cache: accessing a new line may miss and stall this task.
		line := s.caches.L1I.LineOf(e.PC) + 1
		if line != t.lastLine {
			lat := s.caches.L1I.Access(e.PC)
			t.lastLine = line
			if lat > 0 {
				t.stallUntil = s.cycle + int64(lat)
				s.stats.ICacheStallCycle += int64(lat)
				if s.tel != nil {
					s.emit(telemetry.EvICacheStall, t.id, int64(e.PC), int64(lat))
				}
				return
			}
		}

		s.fetchC[i] = int32(s.cycle)
		s.state[i] = stFetched
		t.inflight++
		t.fetchIdx++

		s.trySpawn(t, i, e.PC)

		// Control flow: at most one taken branch per task per cycle, and
		// mispredicts stop this task's fetch until resolution.
		stop := false
		switch {
		case e.IsCondBranch():
			pred := s.gshare.Predict(e.PC, t.hist)
			actual := e.Taken()
			s.gshare.Update(e.PC, t.hist, actual)
			t.hist = s.gshare.PushHistory(t.hist, actual)
			if pred != actual {
				s.stats.Mispredicts++
				if s.tel != nil {
					s.emit(telemetry.EvMispredict, t.id, int64(i), int64(e.PC))
				}
				t.pendingRedirect = i
				s.chargeForeclosure(t)
				s.chargeColdStart(t, i)
				stop = true
			} else if actual {
				stop = true
			}
		case e.IsCall():
			t.ras.Push(e.PC + isa.InstSize)
			if e.IsIndirect() { // jalr
				s.predictIndirect(t, i, e)
			}
			stop = true
		case e.IsReturn():
			pred, ok := t.ras.Pop()
			if !ok || pred != e.Next {
				s.stats.Mispredicts++
				if s.tel != nil {
					s.emit(telemetry.EvMispredict, t.id, int64(i), int64(e.PC))
				}
				t.pendingRedirect = i
				s.chargeForeclosure(t)
			}
			stop = true
		case e.IsIndirect(): // jr through a jump table
			s.predictIndirect(t, i, e)
			stop = true
		case e.Op == isa.OpJ:
			stop = true
		}
		if stop {
			return
		}
	}
}

func (s *sim) predictIndirect(t *task, i int, e *trace.Entry) {
	pred, ok := s.btb.Predict(e.PC)
	s.btb.Update(e.PC, e.Next)
	if !ok || pred != e.Next {
		s.stats.Mispredicts++
		if s.tel != nil {
			s.emit(telemetry.EvMispredict, t.id, int64(i), int64(e.PC))
		}
		t.pendingRedirect = i
		s.chargeForeclosure(t)
	}
}

// ---------------------------------------------------------------- spawn

func (s *sim) trySpawn(t *task, i int, pc uint64) {
	if s.src == nil || len(s.tasks) >= s.cfg.MaxTasks {
		return
	}
	if s.cfg.SpawnFromTailOnly && t != s.tasks[len(s.tasks)-1] {
		// The tail-only rule forecloses this task's spawns. If one was
		// actually viable, remember it: should this task then suffer a
		// mispredict that the foreclosed hop would have hidden, the spawn
		// point that created the current tail is charged (the "dynamic
		// feedback about which tasks are profitable").
		if !t.blockedSpawn && s.viableSpawn(t, i, pc) {
			t.blockedSpawn = true
		}
		return
	}
	spawns := s.src.SpawnsAt(pc)
	if len(spawns) == 0 {
		return
	}
	// Finite hint cache (optional): a spawn point whose entry is not
	// resident costs this opportunity; the entry is filled on demand.
	if s.hintTags != nil {
		idx := (pc >> 2) & uint64(len(s.hintTags)-1)
		if s.hintTags[idx] != pc {
			s.hintTags[idx] = pc
			s.stats.HintMisses++
			return
		}
	}
	for _, sp := range spawns {
		if s.mask != nil && s.mask.Contains(sp.From, uint8(sp.Kind)) {
			// Suppressed site: skip without counting a rejection or touching
			// attribution — the site must charge nothing, as if the analysis
			// had never emitted it (VerifyAttribution relies on this).
			continue
		}
		if !s.spawnAllowed(sp.From) {
			s.stats.SpawnsRejected++
			if s.att != nil {
				s.att.Site(sp.From, uint8(sp.Kind)).Rejected++
			}
			continue
		}
		k := s.t.NextOccurrence(sp.Target, i)
		if k < 0 {
			continue
		}
		dist := k - i
		if dist < s.cfg.MinSpawnDistance || dist > s.cfg.MaxSpawnDistance {
			s.stats.SpawnsRejected++
			if s.att != nil {
				s.att.Site(sp.From, uint8(sp.Kind)).Rejected++
			}
			continue
		}
		if t.end != -1 && k >= t.end {
			continue
		}
		// The spawning task's segment length is now fixed: tiny fragments
		// are unprofitable, solid cuts reinforce their spawn point.
		if k-t.start < s.cfg.ProfitMinTaskLen {
			s.scoreSpawn(t.spawnFrom, -2)
		} else {
			s.scoreSpawn(t.spawnFrom, 1)
		}
		nt := s.newTask(s.cfg.RASDepth)
		nt.id = s.nextTaskID
		nt.start = k
		nt.end = t.end
		nt.fetchIdx = k
		nt.dispIdx = k
		nt.pendingRedirect = -1
		nt.hist = t.hist
		nt.stallUntil = s.cycle + int64(s.cfg.SpawnLatency)
		nt.spawnFrom = sp.From
		nt.spawnKind = uint8(sp.Kind)
		nt.spawnCycle = s.cycle
		t.ras.CloneInto(nt.ras)
		s.nextTaskID++
		t.end = k
		// Insert after t (keeps tasks ordered by segment start).
		pos := 0
		for j, x := range s.tasks {
			if x == t {
				pos = j + 1
				break
			}
		}
		s.tasks = append(s.tasks, nil)
		copy(s.tasks[pos+1:], s.tasks[pos:])
		s.tasks[pos] = nt
		s.stats.SpawnsTaken++
		s.stats.SpawnsByKind[sp.Kind]++
		if s.att != nil {
			s.att.Site(sp.From, uint8(sp.Kind)).Spawns++
		}
		if s.tel != nil {
			s.emit(telemetry.EvTaskSpawn, nt.id, int64(k), int64(sp.Kind))
		}
		return
	}
}

// viableSpawn reports whether a spawn at pc would have been taken were the
// task allowed to spawn.
func (s *sim) viableSpawn(t *task, i int, pc uint64) bool {
	for _, sp := range s.src.SpawnsAt(pc) {
		if s.mask != nil && s.mask.Contains(sp.From, uint8(sp.Kind)) {
			continue // masked sites are never viable
		}
		if !s.spawnAllowed(sp.From) {
			continue
		}
		k := s.t.NextOccurrence(sp.Target, i)
		if k < 0 {
			continue
		}
		dist := k - i
		if dist < s.cfg.MinSpawnDistance || dist > s.cfg.MaxSpawnDistance {
			continue
		}
		if t.end != -1 && k >= t.end {
			continue
		}
		return true
	}
	return false
}

// chargeForeclosure penalizes the spawn point whose task jumped over t's
// remaining region (t's immediate successor) when a foreclosed hop would
// have hidden a mispredict that just occurred in that region.
func (s *sim) chargeForeclosure(t *task) {
	if !t.blockedSpawn {
		return
	}
	t.blockedSpawn = false
	s.stats.Foreclosures++
	for i, x := range s.tasks {
		if x == t {
			if i+1 < len(s.tasks) {
				succ := s.tasks[i+1]
				s.scoreSpawn(succ.spawnFrom, -1)
				if s.att != nil {
					s.att.Site(succ.spawnFrom, succ.spawnKind).Foreclosures++
				}
			} else if s.att != nil {
				// t became the tail again before the mispredict
				// resolved: no successor is left to blame.
				s.att.UnattributedForeclosures++
			}
			return
		}
	}
}

// chargeColdStart penalizes a spawn point whose child mispredicts right
// after birth: the fork paid its cost (cold local history) without covering
// any distance yet.
func (s *sim) chargeColdStart(t *task, i int) {
	if t.spawnFrom != 0 && i-t.start < 12 {
		s.scoreSpawn(t.spawnFrom, -1)
	}
}

// ------------------------------------------------------------ violations

func (s *sim) processViolations() {
	if len(s.viols) == 0 {
		return
	}
	alive := func(v violation) bool {
		// The load may have been squashed (and perhaps refetched) since
		// the violation was queued; the recorded condition must still hold.
		return s.state[v.load] >= stIssued && s.state[v.load] != stRetired &&
			s.issueC[v.load] != never && s.doneC[v.store] != never &&
			s.issueC[v.load] < s.doneC[v.store]
	}
	chosen := violation{load: -1}
	kept := s.viols[:0]
	for _, v := range s.viols {
		if !alive(v) {
			continue
		}
		if v.detect > s.cycle {
			kept = append(kept, v)
			continue
		}
		if chosen.load < 0 || v.load < chosen.load {
			if chosen.load >= 0 {
				kept = append(kept, chosen)
			}
			chosen = v
		} else {
			kept = append(kept, v)
		}
	}
	s.viols = kept
	if chosen.load >= 0 {
		s.squash(chosen)
	}
}

// squash handles a detected memory-dependence violation: the violating task
// and all tasks beyond it are squashed, the violating task restarts at the
// offending load, and the store-set predictor learns the dependence so
// future instances synchronize instead.
func (s *sim) squash(v violation) {
	s.stats.Violations++
	s.ss.train(s.tr[v.load].PC, s.tr[v.store].PC)

	j := s.taskIdxOf(v.load)
	if j < 0 {
		// The containing task already vanished; the violation still
		// counted machine-wide, so the table records it as unowned.
		if s.att != nil {
			s.att.UnattributedViolations++
		}
		return
	}

	vt := s.tasks[j]
	s.scoreSpawn(vt.spawnFrom, -2)
	squashedBefore := s.stats.SquashedInstrs
	s.resetRangeCharged(vt, v.load, vt.fetchIdx)
	for _, t := range s.tasks[j+1:] {
		s.resetRangeCharged(t, t.start, t.fetchIdx)
	}
	if s.att != nil {
		s.att.Site(vt.spawnFrom, vt.spawnKind).SquashViolation++
		// The violating task restarts in place; only its descendants
		// leave the machine, their whole lifetime wasted.
		for _, t := range s.tasks[j+1:] {
			st := s.att.Site(t.spawnFrom, t.spawnKind)
			st.SquashCollateral++
			st.WastedCycles += s.cycle - t.spawnCycle
		}
	}
	if s.tel != nil {
		s.emit(telemetry.EvViolation, vt.id, int64(v.load), int64(v.store))
		for _, t := range s.tasks[j+1:] {
			s.taskEnded(t, false)
			s.emit(telemetry.EvTaskSquash, t.id, int64(t.start), int64(t.fetchIdx))
		}
		s.tel.squashDepth.Observe(s.stats.SquashedInstrs - squashedBefore)
	}
	for _, t := range s.tasks[j+1:] {
		s.freeTask(t)
	}
	s.tasks = s.tasks[:j+1]

	vt.end = -1 // becomes the tail again
	vt.fetchIdx = v.load
	if vt.dispIdx > v.load {
		vt.dispIdx = v.load
	}
	vt.pendingRedirect = -1
	vt.stallUntil = s.cycle + int64(s.cfg.RedirectPenalty) + 1
	vt.lastLine = 0
	vt.blockedSpawn = false
	lo := vt.start
	if s.retireIdx > lo {
		lo = s.retireIdx
	}
	vt.inflight = v.load - lo
	if vt.inflight < 0 {
		vt.inflight = 0
	}

	s.purgeFrom(v.load)
}

// resetRangeCharged rolls back [lo, hi) and attributes the squashed
// instructions to the owning task's spawn site, so per-site
// SquashedInstrs sums exactly to Stats.SquashedInstrs.
func (s *sim) resetRangeCharged(t *task, lo, hi int) {
	if s.att == nil {
		s.resetRange(lo, hi)
		return
	}
	before := s.stats.SquashedInstrs
	s.resetRange(lo, hi)
	s.att.Site(t.spawnFrom, t.spawnKind).SquashedInstrs += s.stats.SquashedInstrs - before
}

// resetRange rolls back all per-instruction pipeline state for trace
// entries [lo, hi), releasing their backend resources.
func (s *sim) resetRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		switch s.state[i] {
		case stNone, stRetired:
			continue
		case stInSched:
			s.schedUsed--
			s.robUsed--
			// Eagerly unlink i's wake-list registrations: the link storage
			// is reused if i refetches, so a stale edge would cross-link the
			// producer's list.
			if !s.polled {
				s.unlinkWakeEdges(i)
			}
		case stIssued:
			s.robUsed--
			if p := s.memSpec[i]; p >= 0 && s.doneC[p] == never {
				s.unlinkWatch(int(p), int32(i))
			}
		}
		s.state[i] = stNone
		s.fetchC[i], s.dispC[i], s.issueC[i], s.doneC[i] = never, never, never, never
		s.memWait[i], s.memSpec[i] = never, never
		s.wakeHead[i], s.watchHead[i] = -1, -1
		s.stats.SquashedInstrs++
	}
}

// purgeFrom eagerly drops scheduler-queue, divert-queue and pending
// violation entries at trace index >= lo: a refetched instruction re-enters
// those structures, and a stale duplicate entry would otherwise alias it.
// (Wake and watch lists were already unlinked entry by entry in resetRange.)
func (s *sim) purgeFrom(lo int) {
	if s.polled {
		s.purgeSchedPolled(lo)
	} else {
		s.purgeQueues(lo)
	}
	keptD := s.dq[:0]
	for _, en := range s.dq {
		if en.idx < lo {
			keptD = append(keptD, en)
		}
	}
	s.dq = keptD
	keptV := s.viols[:0]
	for _, w := range s.viols {
		if w.load < lo && w.store < lo {
			keptV = append(keptV, w)
		}
	}
	s.viols = keptV
}

// reclaimYoungest implements the ReclaimROB extension: squash the youngest
// task outright so the resource-starved head can dispatch. The reclaimed
// work refetches later (the segment merges back into the new tail).
func (s *sim) reclaimYoungest() {
	if len(s.tasks) < 2 {
		return
	}
	tail := s.tasks[len(s.tasks)-1]
	if s.tel != nil {
		s.taskEnded(tail, false)
		s.emit(telemetry.EvReclaim, tail.id, int64(tail.start), int64(tail.fetchIdx))
	}
	s.resetRangeCharged(tail, tail.start, tail.fetchIdx)
	s.purgeFrom(tail.start)
	s.tasks = s.tasks[:len(s.tasks)-1]
	newTail := s.tasks[len(s.tasks)-1]
	newTail.end = tail.end
	s.scoreSpawn(tail.spawnFrom, -1)
	if s.att != nil {
		st := s.att.Site(tail.spawnFrom, tail.spawnKind)
		st.SquashReclaim++
		st.WastedCycles += s.cycle - tail.spawnCycle
	}
	s.freeTask(tail)
	s.stats.Reclaims++
}
