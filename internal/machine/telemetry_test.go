package machine

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// prepAny is prep for both tests and benchmarks.
func prepAny(tb testing.TB, src string) (*trace.Trace, *core.Analysis) {
	tb.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		tb.Fatal(err)
	}
	tr, err := emu.Run(p, emu.Config{})
	if err != nil {
		tb.Fatal(err)
	}
	a, err := core.Analyze(p, tr.IndirectTargets())
	if err != nil {
		tb.Fatal(err)
	}
	return tr, a
}

// runWithCollector simulates hardHammockLoop under postdoms with the given
// collector attached (nil = telemetry off).
func runWithCollector(tb testing.TB, col *telemetry.Collector) Result {
	tb.Helper()
	tr, a := prepAny(tb, hardHammockLoop)
	cfg := PolyFlowConfig()
	cfg.Telemetry = col
	res, err := Run(tr, nil, core.PolicyPostdoms.Source(a), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

func TestTelemetryRegistryMatchesStats(t *testing.T) {
	col := telemetry.NewCollector(telemetry.Config{TraceEvents: 1 << 14})
	res := runWithCollector(t, col)

	// Stats is a compatibility view over the registry's counter storage:
	// every named counter must agree with the struct field.
	checks := map[string]int64{
		"machine.mispredicts":         res.Mispredicts,
		"machine.spawns_taken":        res.SpawnsTaken,
		"machine.spawns_rejected":     res.SpawnsRejected,
		"machine.violations":          res.Violations,
		"machine.squashed_instrs":     res.SquashedInstrs,
		"machine.diverted":            res.Diverted,
		"machine.task_cycles":         res.TaskCycles,
		"machine.icache_stall_cycles": res.ICacheStallCycle,
		"machine.foreclosures":        res.Foreclosures,
		"machine.hint_misses":         res.HintMisses,
		"machine.reclaims":            res.Reclaims,
	}
	for k := core.Kind(0); k < core.NumKinds; k++ {
		checks["machine.spawns."+k.String()] = res.SpawnsByKind[k]
	}
	for name, want := range checks {
		got, ok := col.Registry.CounterValue(name)
		if !ok {
			t.Errorf("counter %q not registered", name)
			continue
		}
		if got != want {
			t.Errorf("counter %q = %d, Stats says %d", name, got, want)
		}
	}
	gauges := map[string]int64{
		"machine.cycles":     res.Cycles,
		"machine.retired":    res.Retired,
		"machine.peak_tasks": int64(res.PeakTasks),
	}
	for name, want := range gauges {
		if got, ok := col.Registry.GaugeValue(name); !ok || got != want {
			t.Errorf("gauge %q = %d,%v, want %d", name, got, ok, want)
		}
	}
	if res.SpawnsTaken == 0 {
		t.Fatalf("workload spawned no tasks; telemetry coverage is vacuous")
	}
}

func TestTelemetryEventsEmitted(t *testing.T) {
	col := telemetry.NewCollector(telemetry.Config{TraceEvents: 1 << 16})
	res := runWithCollector(t, col)

	byKind := map[telemetry.EventKind]int64{}
	var lastCycle int64 = -1
	for _, e := range col.Tracer.Events() {
		byKind[e.Kind]++
		if e.Cycle < lastCycle {
			t.Fatalf("events out of order: cycle %d after %d", e.Cycle, lastCycle)
		}
		lastCycle = e.Cycle
	}
	if col.Tracer.Dropped() != 0 {
		t.Fatalf("ring dropped %d events; enlarge it for this test", col.Tracer.Dropped())
	}
	if got := byKind[telemetry.EvTaskSpawn]; got != res.SpawnsTaken+1 { // +1: initial task
		t.Errorf("spawn events = %d, want %d", got, res.SpawnsTaken+1)
	}
	if got := byKind[telemetry.EvMispredict]; got != res.Mispredicts {
		t.Errorf("mispredict events = %d, want %d", got, res.Mispredicts)
	}
	if got := byKind[telemetry.EvViolation]; got != res.Violations {
		t.Errorf("violation events = %d, want %d", got, res.Violations)
	}
	if got := byKind[telemetry.EvDivert]; got != res.Diverted {
		t.Errorf("divert events = %d, want %d", got, res.Diverted)
	}
	// Spawned tasks end at most once each (retire, squash or reclaim); the
	// final head task survives to the end of the trace.
	ends := byKind[telemetry.EvTaskRetire] + byKind[telemetry.EvTaskSquash] + byKind[telemetry.EvReclaim]
	if ends == 0 || ends > res.SpawnsTaken {
		t.Errorf("task end events = %d, want in (0, %d]", ends, res.SpawnsTaken)
	}
	// Histograms observed one lifetime per ended task.
	life := col.Registry.Histogram("machine.task_lifetime_cycles", nil)
	if int64(life.Count()) != ends {
		t.Errorf("task_lifetime count = %d, want %d", life.Count(), ends)
	}
}

// TestTelemetryOffIsIdentical: attaching telemetry must not change timing,
// and a nil collector must leave results bit-identical to the seed model.
func TestTelemetryOffIsIdentical(t *testing.T) {
	col := telemetry.NewCollector(telemetry.Config{TraceEvents: 1 << 14})
	withTel := runWithCollector(t, col)
	without := runWithCollector(t, nil)
	if withTel.Cycles != without.Cycles || withTel.Stats != without.Stats {
		t.Fatalf("telemetry changed simulation results:\nwith:    %+v\nwithout: %+v",
			withTel.Stats, without.Stats)
	}
}

// BenchmarkTelemetryOverhead is the overhead guard: "off" is the production
// hot loop (nil collector — the only residue is dead nil checks on rare
// paths), "metrics" adds the registry bindings, "full" adds the event ring.
// CI runs the trio in short mode; when touching the hot loop, compare
// off's ns/op against the seed (<3% drift budget, see
// docs/OBSERVABILITY.md).
func BenchmarkTelemetryOverhead(b *testing.B) {
	tr, a := prepAny(b, hardHammockLoop)
	cases := []struct {
		name string
		col  func() *telemetry.Collector
	}{
		{"off", func() *telemetry.Collector { return nil }},
		{"metrics", func() *telemetry.Collector { return telemetry.NewCollector(telemetry.Config{}) }},
		{"full", func() *telemetry.Collector {
			return telemetry.NewCollector(telemetry.Config{TraceEvents: telemetry.DefaultTraceEvents})
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.SetBytes(int64(tr.Len()))
			for i := 0; i < b.N; i++ {
				cfg := PolyFlowConfig()
				cfg.Telemetry = c.col()
				if _, err := Run(tr, nil, core.PolicyPostdoms.Source(a), cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
