package machine

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/trace"
)

// prep assembles, emulates and analyzes a program.
func prep(t *testing.T, src string) (*isa.Program, *trace.Trace, *core.Analysis) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := emu.Run(p, emu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(p, tr.IndirectTargets())
	if err != nil {
		t.Fatal(err)
	}
	return p, tr, a
}

const hardHammockLoop = `
        li   $s7, 2463534242
        li   $t9, 3000
loop:   sll  $t0, $s7, 13
        xor  $s7, $s7, $t0
        srl  $t0, $s7, 7
        xor  $s7, $s7, $t0
        sll  $t0, $s7, 17
        xor  $s7, $s7, $t0
        andi $t1, $s7, 1
        beq  $t1, $zero, els    # hard 50/50 branch
        addi $s0, $s0, 3
        xor  $s1, $s1, $s0
        sll  $t2, $s0, 2
        add  $s1, $s1, $t2
        j    join
els:    addi $s0, $s0, 5
        sub  $s1, $s1, $s0
        sra  $t2, $s1, 1
        xor  $s1, $s1, $t2
join:   andi $s1, $s1, 0xffff
        addi $t9, $t9, -1
        bgtz $t9, loop
        halt
`

func TestSuperscalarRetiresEverything(t *testing.T) {
	_, tr, _ := prep(t, hardHammockLoop)
	res, err := Run(tr, nil, nil, SuperscalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Retired != int64(tr.Len()) {
		t.Fatalf("retired %d of %d", res.Retired, tr.Len())
	}
	if res.IPC <= 0 || res.IPC > float64(SuperscalarConfig().Width) {
		t.Fatalf("implausible IPC %f", res.IPC)
	}
	if res.SpawnsTaken != 0 {
		t.Fatalf("superscalar spawned tasks")
	}
}

func TestDeterminism(t *testing.T) {
	_, tr, a := prep(t, hardHammockLoop)
	cfg := PolyFlowConfig()
	r1, err := Run(tr, nil, core.PolicyPostdoms.Source(a), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(tr, nil, core.PolicyPostdoms.Source(a), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.SpawnsTaken != r2.SpawnsTaken {
		t.Fatalf("nondeterministic: %v vs %v", r1, r2)
	}
}

func TestPolyFlowWithoutSpawnsMatchesSuperscalar(t *testing.T) {
	_, tr, _ := prep(t, hardHammockLoop)
	ss, err := Run(tr, nil, nil, SuperscalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	pf, err := Run(tr, nil, nil, PolyFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ss.Cycles != pf.Cycles {
		t.Fatalf("single-task PolyFlow (%d cycles) differs from superscalar (%d)", pf.Cycles, ss.Cycles)
	}
}

// TestHammockSpawningHidesMispredicts: on a loop dominated by a hard
// hammock, control-equivalent spawning must beat the superscalar — the
// paper's central claim in miniature.
func TestHammockSpawningHidesMispredicts(t *testing.T) {
	_, tr, a := prep(t, hardHammockLoop)
	ss, err := Run(tr, nil, nil, SuperscalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	pf, err := Run(tr, nil, core.PolicyPostdoms.Source(a), PolyFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	if pf.SpawnsTaken == 0 {
		t.Fatalf("no spawns taken")
	}
	if pf.Cycles >= ss.Cycles {
		t.Fatalf("PolyFlow (%d cycles) not faster than superscalar (%d)", pf.Cycles, ss.Cycles)
	}
	if pf.Retired != ss.Retired {
		t.Fatalf("retire counts differ")
	}
	if pf.PeakTasks < 2 {
		t.Fatalf("never ran more than one task")
	}
}

// TestMispredictPenalty: an unpredictable branch stream must cost far more
// cycles than a predictable one of the same length (at least ~8 cycles per
// mispredict, per the paper's configuration).
func TestMispredictPenalty(t *testing.T) {
	predictable := strings.Replace(hardHammockLoop, "andi $t1, $s7, 1", "li   $t1, 1", 1)
	_, trHard, _ := prep(t, hardHammockLoop)
	_, trEasy, _ := prep(t, predictable)
	hard, err := Run(trHard, nil, nil, SuperscalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	easy, err := Run(trEasy, nil, nil, SuperscalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	if hard.Mispredicts < 1000 {
		t.Fatalf("hard loop mispredicts = %d, expected ~1500", hard.Mispredicts)
	}
	extra := hard.Cycles - easy.Cycles
	if extra < 8*hard.Mispredicts/2 {
		t.Fatalf("mispredict cost too low: %d extra cycles for %d mispredicts",
			extra, hard.Mispredicts)
	}
}

// interTaskMemProgram: the hammock arms store a cell that the join block
// immediately loads. A task spawned at the join carries the load while the
// store stays in the spawning task — a genuine inter-task memory dependence
// that first violates (squash) and is then synchronized by the trained
// store sets.
const interTaskMemProgram = `
        li   $t8, 0x100000
        li   $s7, 2463534242
        li   $t9, 2000
loop:   sll  $t0, $s7, 13
        xor  $s7, $s7, $t0
        srl  $t0, $s7, 7
        xor  $s7, $s7, $t0
        andi $t1, $s7, 1
        beq  $t1, $zero, els
        addi $s0, $s0, 3
        sd   $s0, 0($t8)
        j    join
els:    addi $s0, $s0, 5
        sd   $s0, 0($t8)
join:   ld   $t2, 0($t8)
        add  $s1, $s1, $t2
        andi $s1, $s1, 0xffff
        addi $t9, $t9, -1
        bgtz $t9, loop
        halt
`

func TestMemoryViolationSquashAndSync(t *testing.T) {
	_, tr, a := prep(t, interTaskMemProgram)
	cfg := PolyFlowConfig()
	cfg.WarmupInstrs = 0
	res, err := Run(tr, nil, core.PolicyHammock.Source(a), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpawnsTaken == 0 {
		t.Fatalf("loop policy took no spawns")
	}
	if res.Violations == 0 {
		t.Fatalf("no memory violations despite cross-task store->load")
	}
	if res.SquashedInstrs == 0 {
		t.Fatalf("violations without squashed instructions")
	}
	// The store-set predictor must learn: violations should be far fewer
	// than spawns.
	if res.Violations > res.SpawnsTaken/2 {
		t.Fatalf("store sets never learned: %d violations for %d spawns",
			res.Violations, res.SpawnsTaken)
	}
	if res.Retired != int64(tr.Len()) {
		t.Fatalf("squash lost instructions: retired %d of %d", res.Retired, tr.Len())
	}
}

func TestDivertQueueUsed(t *testing.T) {
	// Inter-task register dependence through $s0 forces diversion.
	_, tr, a := prep(t, `
        li   $t9, 1000
        li   $s0, 1
loop:   andi $t1, $s0, 3
        beq  $t1, $zero, els
        addi $s0, $s0, 7
        sll  $t2, $s0, 1
        xor  $t3, $t2, $s0
        add  $t4, $t3, $t2
        j    join
els:    addi $s0, $s0, 11
        sub  $t2, $zero, $s0
        sra  $t3, $t2, 1
join:   addi $t9, $t9, -1
        bgtz $t9, loop
        halt
`)
	res, err := Run(tr, nil, core.PolicyPostdoms.Source(a), PolyFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.SpawnsTaken > 0 && res.Diverted == 0 {
		t.Fatalf("cross-task register consumers never diverted")
	}
}

func TestWarmupAccounting(t *testing.T) {
	_, tr, _ := prep(t, hardHammockLoop)
	cfg := SuperscalarConfig()
	cfg.WarmupInstrs = 1000
	res, err := Run(tr, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retired != int64(tr.Len()-1000) {
		t.Fatalf("warmup accounting wrong: retired %d", res.Retired)
	}
	cold, err := Run(tr, nil, nil, SuperscalarConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles >= cold.Cycles {
		t.Fatalf("warmup did not reduce simulated cycles")
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	_, tr, _ := prep(t, hardHammockLoop)
	cfg := SuperscalarConfig()
	cfg.MaxCycles = 10
	if _, err := Run(tr, nil, nil, cfg); err == nil {
		t.Fatalf("MaxCycles guard did not fire")
	}
}

func TestAnyTaskSpawnAblation(t *testing.T) {
	_, tr, a := prep(t, hardHammockLoop)
	cfg := PolyFlowConfig()
	cfg.SpawnFromTailOnly = false
	res, err := Run(tr, nil, core.PolicyPostdoms.Source(a), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retired != int64(tr.Len()) {
		t.Fatalf("any-task spawning corrupted retirement")
	}
}

func TestTaskCountSweepMonotonicish(t *testing.T) {
	_, tr, a := prep(t, hardHammockLoop)
	cfg1 := PolyFlowConfig()
	cfg1.MaxTasks = 2
	cfg8 := PolyFlowConfig()
	r2, err := Run(tr, nil, core.PolicyPostdoms.Source(a), cfg1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(tr, nil, core.PolicyPostdoms.Source(a), cfg8)
	if err != nil {
		t.Fatal(err)
	}
	// More contexts must not be drastically worse; allow 5% noise.
	if float64(r8.Cycles) > float64(r2.Cycles)*1.05 {
		t.Fatalf("8 tasks (%d cycles) much slower than 2 tasks (%d)", r8.Cycles, r2.Cycles)
	}
	if r8.PeakTasks <= r2.PeakTasks {
		t.Fatalf("peak tasks did not grow with the context count")
	}
}

func TestStoreSets(t *testing.T) {
	ss := newStoreSets(2)
	if ss.predicts(0x100, 0x200) {
		t.Fatalf("cold predictor predicts")
	}
	ss.train(0x100, 0x200)
	if !ss.predicts(0x100, 0x200) {
		t.Fatalf("trained dependence not predicted")
	}
	ss.train(0x100, 0x300)
	ss.train(0x100, 0x400) // evicts 0x200 (2 ways)
	if ss.predicts(0x100, 0x200) {
		t.Fatalf("LRU eviction failed")
	}
	if !ss.predicts(0x100, 0x300) || !ss.predicts(0x100, 0x400) {
		t.Fatalf("recent entries lost")
	}
	// Re-training an existing pair refreshes it to MRU.
	ss.train(0x100, 0x300)
	ss.train(0x100, 0x500)
	if !ss.predicts(0x100, 0x300) || ss.predicts(0x100, 0x400) {
		t.Fatalf("MRU refresh failed")
	}
}

func TestParameterTable(t *testing.T) {
	tab := PolyFlowConfig().ParameterTable()
	for _, want := range []string{
		"8 instrs/cycle", "16Kbit gshare, 8 bits", "At least 8 cycles",
		"512 entries", "64 entries", "128 entries", "8 identical",
	} {
		if !strings.Contains(tab, want) {
			t.Errorf("parameter table missing %q:\n%s", want, tab)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	pf := PolyFlowConfig()
	if pf.MaxTasks != 8 || pf.Width != 8 || pf.ROBSize != 512 ||
		pf.SchedSize != 64 || pf.DivertQSize != 128 || pf.FetchTasksPerCycle != 2 {
		t.Fatalf("PolyFlow config drifted from Figure 8: %+v", pf)
	}
	ss := SuperscalarConfig()
	if ss.MaxTasks != 1 || ss.FetchTasksPerCycle != 1 {
		t.Fatalf("superscalar config wrong: %+v", ss)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Config: "x", Cycles: 10, Retired: 20, IPC: 2}
	if !strings.Contains(r.String(), "IPC 2.000") {
		t.Fatalf("Result.String() = %q", r.String())
	}
}
