// Event-driven instruction scheduler: the replacement for the original
// per-cycle rescan of every waiting instruction (kept as the reference
// model in polled.go behind Config.PolledScheduler).
//
// An instruction entering the scheduler counts its not-yet-completed
// producers (pendCnt) and links itself onto each one's wake list, an
// intrusive singly-linked list threaded through per-instruction arrays.
// When a producer issues, it walks its wake list once; a waiter whose last
// outstanding producer just completed knows its exact ready cycle
// (max of dispatch+1 and every producer's completion) and is pushed onto a
// time-ordered heap. Each cycle, due entries move to a ready queue ordered
// by trace index — the oldest-first issue priority the polled scan got from
// keeping the scheduler slice sorted — and up to NumFUs of them issue.
// An instruction is therefore examined O(1) times per residence instead of
// once per cycle.
//
// Squash safety: wake-list edges of squashed instructions are eagerly
// unlinked in resetRange (lists would otherwise cross-link when a
// refetched instruction re-registers), while heap entries are validated
// lazily — a popped entry issues only if the instruction still satisfies
// exactly the polled model's ready() condition, so a stale entry can never
// issue early and a live instruction always has a fresh entry pending.
package machine

// Wake-list edges are packed as idx<<2 | slot, where slot 0..1 are the
// register-producer slots and slot 2 is the memWait producer.
const memSlot = 2

// enterSchedulerEvent registers instruction i's outstanding producers and
// schedules its wakeup. Counterpart of the polled path's sorted insert.
func (s *sim) enterSchedulerEvent(i int) {
	e := &s.tr[i]
	pend := uint8(0)
	ra := int32(s.cycle) + 1
	for k := 0; k < int(e.NSrc); k++ {
		p := s.deps.RegProd[i][k]
		if p < 0 {
			continue
		}
		if d := s.doneC[p]; d == never {
			s.wakeNext[i][k] = s.wakeHead[p]
			s.wakeHead[p] = int32(i)<<2 | int32(k)
			pend++
		} else if d > ra {
			ra = d
		}
	}
	if p := s.memWait[i]; p >= 0 {
		if d := s.doneC[p]; d == never {
			s.wakeNext[i][memSlot] = s.wakeHead[p]
			s.wakeHead[p] = int32(i)<<2 | memSlot
			pend++
		} else if d > ra {
			ra = d
		}
	}
	s.pendCnt[i] = pend
	s.readyAt[i] = ra
	if pend == 0 {
		s.pushTime(ra, int32(i))
	}
}

// fireWake walks producer p's wake list after p's completion cycle became
// known. Waiters whose last producer this was get their wakeup scheduled.
func (s *sim) fireWake(p int, done int32) {
	e := s.wakeHead[p]
	if e < 0 {
		return
	}
	s.wakeHead[p] = -1
	for e >= 0 {
		i, k := int(e>>2), e&3
		e = s.wakeNext[i][k]
		if done > s.readyAt[i] {
			s.readyAt[i] = done
		}
		if s.pendCnt[i]--; s.pendCnt[i] == 0 {
			s.pushTime(s.readyAt[i], int32(i))
		}
	}
}

// unlinkWakeEdges removes squashed instruction i's wake-list registrations
// from its still-outstanding producers. Only producers whose completion is
// still unknown can hold an edge for i (a completed producer consumed its
// whole list when it issued).
func (s *sim) unlinkWakeEdges(i int) {
	e := &s.tr[i]
	for k := 0; k < int(e.NSrc); k++ {
		if p := s.deps.RegProd[i][k]; p >= 0 && s.doneC[p] == never {
			s.removeWakeEdge(int(p), int32(i)<<2|int32(k))
		}
	}
	if p := s.memWait[i]; p >= 0 && s.doneC[p] == never {
		s.removeWakeEdge(int(p), int32(i)<<2|memSlot)
	}
}

func (s *sim) removeWakeEdge(p int, edge int32) {
	cur := s.wakeHead[p]
	if cur == edge {
		s.wakeHead[p] = s.wakeNext[edge>>2][edge&3]
		return
	}
	for cur >= 0 {
		ci, ck := int(cur>>2), cur&3
		next := s.wakeNext[ci][ck]
		if next == edge {
			s.wakeNext[ci][ck] = s.wakeNext[edge>>2][edge&3]
			return
		}
		cur = next
	}
}

// eventReady mirrors the polled model's ready() test exactly; every issue
// decision flows through it, so stale heap entries can only delay a check,
// never produce a wrong one.
func (s *sim) eventReady(i int) bool {
	return s.state[i] == stInSched && s.pendCnt[i] == 0 &&
		int64(s.readyAt[i]) <= s.cycle && int64(s.dispC[i]) < s.cycle
}

// issueEvent is the event-driven issue stage: due wakeups move to the
// ready queue, then the NumFUs oldest ready instructions issue.
func (s *sim) issueEvent() {
	for len(s.timeQ) > 0 && s.timeQ[0]>>32 <= s.cycle {
		i := int(int32(s.popTime()))
		if s.eventReady(i) {
			s.pushReady(int32(i))
		}
	}
	issued := 0
	for issued < s.cfg.NumFUs && len(s.readyQ) > 0 {
		i := int(s.readyQ[0])
		s.popReady()
		if !s.eventReady(i) {
			continue // stale entry: squashed, reissued, or superseded
		}
		s.issueOne(i)
		issued++
	}
}

// ---------------------------------------------------------------- heaps

// timeQ is a min-heap of at<<32|idx: wakeups ordered by ready cycle.
// readyQ is a min-heap of trace indices: ready instructions, oldest first.

func (s *sim) pushTime(at int32, idx int32) {
	q := append(s.timeQ, int64(at)<<32|int64(uint32(idx)))
	for c := len(q) - 1; c > 0; {
		p := (c - 1) / 2
		if q[p] <= q[c] {
			break
		}
		q[p], q[c] = q[c], q[p]
		c = p
	}
	s.timeQ = q
}

func (s *sim) popTime() int64 {
	q := s.timeQ
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	siftDownInt64(q, 0)
	s.timeQ = q
	return top
}

func (s *sim) pushReady(idx int32) {
	q := append(s.readyQ, idx)
	for c := len(q) - 1; c > 0; {
		p := (c - 1) / 2
		if q[p] <= q[c] {
			break
		}
		q[p], q[c] = q[c], q[p]
		c = p
	}
	s.readyQ = q
}

func (s *sim) popReady() {
	q := s.readyQ
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	siftDownInt32(q, 0)
	s.readyQ = q
}

func siftDownInt64(q []int64, i int) {
	n := len(q)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && q[r] < q[c] {
			c = r
		}
		if q[i] <= q[c] {
			return
		}
		q[i], q[c] = q[c], q[i]
		i = c
	}
}

func siftDownInt32(q []int32, i int) {
	n := len(q)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && q[r] < q[c] {
			c = r
		}
		if q[i] <= q[c] {
			return
		}
		q[i], q[c] = q[c], q[i]
		i = c
	}
}

// purgeQueues drops scheduler-queue entries at trace index >= lo after a
// squash (the event-mode counterpart of filtering the polled sched slice).
func (s *sim) purgeQueues(lo int) {
	tq := s.timeQ[:0]
	for _, e := range s.timeQ {
		if int(int32(e)) < lo {
			tq = append(tq, e)
		}
	}
	s.timeQ = tq
	for i := len(tq)/2 - 1; i >= 0; i-- {
		siftDownInt64(tq, i)
	}
	rq := s.readyQ[:0]
	for _, e := range s.readyQ {
		if int(e) < lo {
			rq = append(rq, e)
		}
	}
	s.readyQ = rq
	for i := len(rq)/2 - 1; i >= 0; i-- {
		siftDownInt32(rq, i)
	}
}

// ---------------------------------------------------------- watch lists

// Speculative loads that issued past an unfinished store are tracked on the
// store's watch list (intrusive list per store, one link per load — a load
// speculates past at most one store). This replaces watch map[int][]int32.

// watchAdd registers issued load l on store p's watch list.
func (s *sim) watchAdd(p, l int) {
	s.watchNext[l] = s.watchHead[p]
	s.watchHead[p] = int32(l)
}

// fireWatch flags loads that issued before store i's data became available.
// The list is walked oldest-registration-first (matching the append order
// of the map-based implementation) so violation records keep their order.
func (s *sim) fireWatch(i int, done int32) {
	h := s.watchHead[i]
	if h < 0 {
		return
	}
	s.watchHead[i] = -1
	tmp := s.watchTmp[:0]
	for l := h; l >= 0; l = s.watchNext[l] {
		tmp = append(tmp, l)
	}
	s.watchTmp = tmp
	for k := len(tmp) - 1; k >= 0; k-- {
		li := int(tmp[k])
		if s.state[li] >= stIssued && s.state[li] != stRetired &&
			s.issueC[li] != never && s.issueC[li] < done {
			s.viols = append(s.viols, violation{load: li, store: i, detect: int64(done)})
		}
	}
}

// unlinkWatch removes squashed load l from store p's watch list.
func (s *sim) unlinkWatch(p int, l int32) {
	cur := s.watchHead[p]
	if cur == l {
		s.watchHead[p] = s.watchNext[l]
		return
	}
	for cur >= 0 {
		next := s.watchNext[cur]
		if next == l {
			s.watchNext[cur] = s.watchNext[l]
			return
		}
		cur = next
	}
}

// --------------------------------------------------------- profit table

// profitTable is the spawn-point profitability store: an open-addressed
// flat map from trigger PC to saturating score, replacing
// profit map[uint64]int. The periodic recovery pass walks the backing
// array directly instead of a map iteration. Key 0 marks an empty slot;
// PC 0 is never scored (scoreSpawn ignores the initial task).
type profitTable struct {
	keys []uint64
	vals []int16
	used int
}

func (t *profitTable) reset() {
	if t.keys == nil {
		t.keys = make([]uint64, 1024)
		t.vals = make([]int16, 1024)
	}
	clear(t.keys)
	t.used = 0
}

func (t *profitTable) get(pc uint64) int {
	mask := uint64(len(t.keys) - 1)
	i := (pc * 0x9E3779B97F4A7C15) >> 32 & mask
	for {
		switch t.keys[i] {
		case pc:
			return int(t.vals[i])
		case 0:
			return 0
		}
		i = (i + 1) & mask
	}
}

func (t *profitTable) set(pc uint64, v int) {
	if t.used*4 >= len(t.keys)*3 {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	i := (pc * 0x9E3779B97F4A7C15) >> 32 & mask
	for t.keys[i] != 0 {
		if t.keys[i] == pc {
			t.vals[i] = int16(v)
			return
		}
		i = (i + 1) & mask
	}
	t.keys[i] = pc
	t.vals[i] = int16(v)
	t.used++
}

func (t *profitTable) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]uint64, 2*len(oldKeys))
	t.vals = make([]int16, 2*len(oldVals))
	t.used = 0
	for i, k := range oldKeys {
		if k != 0 {
			t.set(k, int(oldVals[i]))
		}
	}
}

// decay applies the periodic +1 recovery to every disabled spawn point.
func (t *profitTable) decay() {
	for i, k := range t.keys {
		if k != 0 && t.vals[i] < 0 {
			t.vals[i]++
		}
	}
}
