package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/jobqueue"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// startWorker runs a real polyflowd worker on a loopback listener,
// optionally behind a middleware, and returns its base URL plus a kill
// function that severs the listener and every open connection — the
// SIGKILL stand-in the failure-injection test uses.
func startWorker(t *testing.T, mw func(http.Handler) http.Handler) (string, func()) {
	t.Helper()
	cache, err := artifact.New(artifact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Cache: cache, Pool: jobqueue.New(jobqueue.Config{QueueDepth: 64})})
	if err != nil {
		t.Fatal(err)
	}
	handler := http.Handler(srv)
	if mw != nil {
		handler = mw(srv)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: handler}
	go hs.Serve(ln)
	var once sync.Once
	kill := func() {
		once.Do(func() {
			hs.Close() // closes the listener and all active connections
			srv.Close()
		})
	}
	t.Cleanup(kill)
	return "http://" + ln.Addr().String(), kill
}

// coordServer exposes a coordinator through the ordinary polyflowd job API
// — the shape `experiments -cluster` talks to.
func coordServer(t *testing.T, coord *cluster.Coordinator) *server.Client {
	t.Helper()
	srv, err := server.New(server.Config{
		Runner: coord.Runner(),
		// Dispatch blocks pool workers on cluster I/O, so oversubscribe.
		Pool:         jobqueue.New(jobqueue.Config{Workers: 16, QueueDepth: 256}),
		MetricsExtra: coord.FillMetrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return &server.Client{Base: hs.URL, HTTP: hs.Client(), Retry: server.DefaultRetry()}
}

// TestClusterGridByteIdentity holds the tentpole's core promise: a grid
// executed across a worker cluster produces a speedup table and attribution
// reports byte-identical to a single-node run.
func TestClusterGridByteIdentity(t *testing.T) {
	coord := cluster.New(cluster.Options{})
	defer coord.Close()
	for i := 0; i < 3; i++ {
		url, _ := startWorker(t, nil)
		if err := coord.AddWorker(url); err != nil {
			t.Fatal(err)
		}
	}
	client := coordServer(t, coord)

	o := harness.Options{Benches: []string{"mcf", "twolf"}, Policies: []string{"loop", "postdoms"}}

	localDir := t.TempDir()
	lo := o
	lo.AttribDir = localDir
	local, err := harness.Figure9Opts(lo)
	if err != nil {
		t.Fatal(err)
	}

	remoteDir := t.TempDir()
	ro := o
	ro.AttribDir = remoteDir
	ro.Remote = client
	remote, err := harness.Figure9Opts(ro)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(local, remote) {
		t.Errorf("cluster grid diverges from single-node grid:\nlocal:  %+v\nremote: %+v", local, remote)
	}

	ents, err := os.ReadDir(localDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("no attribution reports written")
	}
	for _, e := range ents {
		want, err := os.ReadFile(filepath.Join(localDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(remoteDir, e.Name()))
		if err != nil {
			t.Fatalf("cluster grid missing attribution report %s: %v", e.Name(), err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("attribution report %s differs between single-node and cluster runs", e.Name())
		}
	}

	st := coord.Stats()
	if st.Completed == 0 {
		t.Errorf("coordinator completed 0 cells; the remote grid did not go through the cluster")
	}
}

// TestClusterWorkerFailureMidGrid kills the preferred worker while its
// cells are in flight and asserts zero lost cells: every cell completes on
// a survivor, the merged bytes equal a healthy single-node run, and the
// cluster.* telemetry records the retries. Run under -race in CI.
func TestClusterWorkerFailureMidGrid(t *testing.T) {
	const bench = "mcf"
	policies := []string{"superscalar", "loop", "loopFT", "procFT", "hammock", "postdoms"}

	// Reference bytes from an untouched single worker.
	refURL, _ := startWorker(t, nil)
	refClient := &server.Client{Base: refURL}
	ctx := context.Background()
	ref := make(map[string][]byte, len(policies))
	for _, pol := range policies {
		st, _, err := refClient.Submit(ctx, server.Request{Bench: bench, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		fin, err := refClient.Wait(ctx, st.ID, time.Millisecond)
		if err != nil || fin.State != "succeeded" {
			t.Fatalf("reference %s: state=%q err=%v", pol, fin.State, err)
		}
		ref[pol], err = refClient.ResultBytes(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
	}

	// Every worker delays job submission, guaranteeing whichever worker we
	// pick as the victim still has its cells in flight when it dies.
	delay := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost {
				time.Sleep(150 * time.Millisecond)
			}
			next.ServeHTTP(w, r)
		})
	}

	// Window 1 serializes each worker, so the grid spreads across all
	// three and the victim holds cells when it is killed.
	coord := cluster.New(cluster.Options{Window: 1})
	defer coord.Close()
	kills := map[string]func(){}
	for i := 0; i < 3; i++ {
		url, kill := startWorker(t, delay)
		kills[url] = kill
		if err := coord.AddWorker(url); err != nil {
			t.Fatal(err)
		}
	}
	// The ring decides placement; kill the worker it prefers for the bench
	// so at least its first cell is guaranteed to be in flight on it.
	victim, ok := coord.PreferredWorker(bench)
	if !ok {
		t.Fatalf("no preferred worker for %s", bench)
	}
	kill := kills[victim]

	var wg sync.WaitGroup
	data := make([][]byte, len(policies))
	errs := make([]error, len(policies))
	for i, pol := range policies {
		wg.Add(1)
		go func(i int, pol string) {
			defer wg.Done()
			data[i], _, errs[i] = coord.RunCell(ctx, server.Request{Bench: bench, Policy: pol})
		}(i, pol)
	}
	time.Sleep(75 * time.Millisecond) // let cells land on the victim
	kill()
	wg.Wait()

	for i, pol := range policies {
		if errs[i] != nil {
			t.Fatalf("cell %s/%s lost after worker death: %v", bench, pol, errs[i])
		}
		if !bytes.Equal(data[i], ref[pol]) {
			t.Errorf("cell %s/%s bytes differ from single-node reference after failover", bench, pol)
		}
	}

	st := coord.Stats()
	if st.Retries == 0 {
		t.Errorf("no retries recorded; the victim held no in-flight cells (stats %+v)", st)
	}
	if st.Completed != int64(len(policies)) {
		t.Errorf("completed %d cells, want %d", st.Completed, len(policies))
	}
	reg := telemetry.NewRegistry()
	coord.FillMetrics(reg)
	if v, ok := reg.CounterValue("cluster.retries"); !ok || v != st.Retries {
		t.Errorf("cluster.retries metric = %d (ok=%v), want %d", v, ok, st.Retries)
	}
	if v, ok := reg.CounterValue("cluster.worker_down_events"); !ok || v == 0 {
		t.Errorf("cluster.worker_down_events metric = %d (ok=%v), want > 0", v, ok)
	}
}

// fakeWorker is a minimal polyflowd stand-in that completes every job
// instantly and tracks how many cells are in flight (submitted, result not
// yet fetched) so the window-bound test can observe the coordinator's
// per-worker cap.
type fakeWorker struct {
	mu      sync.Mutex
	seq     int
	cur     int
	max     int
	submits atomic.Int64
}

func (f *fakeWorker) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.seq++
		f.cur++
		if f.cur > f.max {
			f.max = f.cur
		}
		id := fmt.Sprintf("j%d", f.seq)
		f.mu.Unlock()
		f.submits.Add(1)
		time.Sleep(10 * time.Millisecond) // hold the slot long enough to overlap
		json.NewEncoder(w).Encode(map[string]any{"id": id, "state": "queued"})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.cur--
		f.mu.Unlock()
		w.Write([]byte(`{"stub":true}`))
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"id": r.PathValue("id"), "state": "succeeded", "cache_hit": true})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {})
	return mux
}

// TestClusterWindowBound holds the bounded in-flight window: a worker never
// sees more concurrent cells than Options.Window, no matter how wide the
// grid fans out.
func TestClusterWindowBound(t *testing.T) {
	fw := &fakeWorker{}
	hs := httptest.NewServer(fw.handler())
	defer hs.Close()

	coord := cluster.New(cluster.Options{Window: 2})
	defer coord.Close()
	if err := coord.AddWorker(hs.URL); err != nil {
		t.Fatal(err)
	}

	const cells = 12
	var wg sync.WaitGroup
	errs := make([]error, cells)
	for i := 0; i < cells; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = coord.RunCell(context.Background(), server.Request{Bench: "gzip", Policy: "postdoms"})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	fw.mu.Lock()
	max := fw.max
	fw.mu.Unlock()
	if max > 2 {
		t.Errorf("worker saw %d concurrent in-flight cells, want <= 2 (the window)", max)
	}
	if got := fw.submits.Load(); got != cells {
		t.Errorf("worker served %d submissions, want %d", got, cells)
	}
}

// TestClusterHeartbeatDownUp drives the liveness loop: a worker that stops
// answering probes is marked down after the failure threshold, and marked
// up again as soon as it answers.
func TestClusterHeartbeatDownUp(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens: probes fail with connection refused

	coord := cluster.New(cluster.Options{HeartbeatInterval: 10 * time.Millisecond, HeartbeatFailures: 2})
	defer coord.Close()
	if err := coord.AddWorker("http://" + addr); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(3 * time.Second)
	for coord.Stats().WorkersUp != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never marked down (stats %+v)", coord.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := coord.Stats(); st.WorkerDownEvents == 0 || st.HeartbeatFailures == 0 {
		t.Errorf("down-marking left no telemetry: %+v", st)
	}

	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not re-bind %s to revive the worker: %v", addr, err)
	}
	hs := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})}
	go hs.Serve(ln2)
	defer hs.Close()

	for coord.Stats().WorkersUp != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never marked up again (stats %+v)", coord.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := coord.Stats(); st.WorkerUpEvents == 0 {
		t.Errorf("up-marking left no telemetry: %+v", st)
	}
}

// TestRegistrationHandler exercises the worker-facing registration API the
// way a joining polyflowd does.
func TestRegistrationHandler(t *testing.T) {
	coord := cluster.New(cluster.Options{})
	defer coord.Close()
	hs := httptest.NewServer(coord.Handler())
	defer hs.Close()
	ctx := context.Background()

	if err := cluster.Register(ctx, hs.URL, "http://127.0.0.1:9999", hs.Client()); err != nil {
		t.Fatal(err)
	}
	ws := coord.Workers()
	if len(ws) != 1 || ws[0].Addr != "http://127.0.0.1:9999" {
		t.Fatalf("workers after register: %+v", ws)
	}

	resp, err := hs.Client().Get(hs.URL + "/v1/cluster/workers")
	if err != nil {
		t.Fatal(err)
	}
	var listed struct {
		Workers []cluster.WorkerStatus `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listed.Workers) != 1 {
		t.Fatalf("listed workers: %+v", listed)
	}

	if err := cluster.Deregister(ctx, hs.URL, "http://127.0.0.1:9999", hs.Client()); err != nil {
		t.Fatal(err)
	}
	if ws := coord.Workers(); len(ws) != 0 {
		t.Fatalf("workers after deregister: %+v", ws)
	}

	// A re-register of a known worker resets rather than duplicates.
	if err := cluster.Register(ctx, hs.URL, "http://127.0.0.1:9999/", hs.Client()); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Register(ctx, hs.URL, "http://127.0.0.1:9999", hs.Client()); err != nil {
		t.Fatal(err)
	}
	if ws := coord.Workers(); len(ws) != 1 {
		t.Fatalf("workers after double register: %+v", ws)
	}
}
