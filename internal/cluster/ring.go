// Package cluster distributes grid cells across a fleet of polyflowd
// workers. A coordinator daemon accepts the ordinary job API, but instead
// of simulating locally it ships each (bench, policy) cell to a worker
// chosen by consistent hashing over the workload's trace-artifact key —
// every policy of one workload lands on the same worker, so that worker's
// disk cache and decoded-trace memo stay hot for "its" workloads. Because
// the simulator is deterministic and artifacts are content-addressed, the
// merged grid results are byte-identical to single-node execution.
//
// See docs/SERVICE.md, "Cluster mode".
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring with virtual nodes. Keys and member IDs
// are strings; the hash is FNV-1a, so placement is deterministic across
// processes and runs. Ring is not safe for concurrent mutation; the
// Coordinator guards it with its own lock.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by hash
	members  map[string]bool
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds an empty ring with the given virtual-node count per
// member; replicas <= 0 selects 64 (enough to keep the per-member share
// within a few percent of fair for small fleets).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = 64
	}
	return &Ring{replicas: replicas, members: map[string]bool{}}
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	// FNV-1a distributes similar strings ("worker#0", "worker#1", ...)
	// poorly around the ring; a 64-bit avalanche finalizer (Murmur3's)
	// spreads the virtual nodes so member shares stay near fair.
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a member; adding an existing member is a no-op.
func (r *Ring) Add(member string) {
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{ringHash(member + "#" + strconv.Itoa(i)), member})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
}

// Remove deletes a member and its virtual nodes. Keys owned by the member
// redistribute across the survivors; keys owned by others do not move —
// the property that keeps surviving workers' caches warm when one dies.
func (r *Ring) Remove(member string) {
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the member set in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the member owning key, or "" on an empty ring.
func (r *Ring) Lookup(key string) (string, bool) {
	seq := r.Sequence(key)
	if len(seq) == 0 {
		return "", false
	}
	return seq[0], true
}

// Sequence returns every member in the key's preference order: the owner
// first, then each distinct member encountered walking the ring clockwise.
// The coordinator uses the tail for bounded-load spill and for failover
// when the owner is down.
func (r *Ring) Sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.members))
	out := make([]string, 0, len(r.members))
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}
