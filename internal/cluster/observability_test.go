package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// TestClusterProgressRelayAndSpanJoin is the fleet-observability
// acceptance test in miniature: a grid cell submitted to the coordinator
// yields (1) live progress events on the coordinator's SSE stream that
// originated on the worker, and (2) a joined span timeline where
// worker-side spans appear under the same trace ID as the coordinator's
// own dispatch spans.
func TestClusterProgressRelayAndSpanJoin(t *testing.T) {
	coord := cluster.New(cluster.Options{})
	defer coord.Close()
	w1, _ := startWorker(t, nil)
	w2, _ := startWorker(t, nil)
	if err := coord.AddWorker(w1); err != nil {
		t.Fatal(err)
	}
	if err := coord.AddWorker(w2); err != nil {
		t.Fatal(err)
	}
	c := coordServer(t, coord)

	ctx := obs.With(context.Background(), obs.NewTrace("fleet-trace-1"))
	// gzip retires in ~80k cycles, so a 5k interval yields a steady stream
	// of samples.
	st, _, err := c.Submit(ctx, server.Request{Bench: "gzip", Policy: "postdoms", SampleInterval: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID != "fleet-trace-1" {
		t.Fatalf("coordinator job trace ID = %q", st.TraceID)
	}

	// Stream the coordinator job's events while the cell runs remotely.
	var progressEvents int
	streamErr := c.StreamEvents(ctx, st.ID, func(event string, data []byte) error {
		if event == "progress" {
			var p server.Progress
			if json.Unmarshal(data, &p) == nil && p.Cycle > 0 {
				progressEvents++
			}
		}
		return nil
	})
	if streamErr != nil {
		t.Fatal(streamErr)
	}
	fin, err := c.Wait(ctx, st.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "succeeded" {
		t.Fatalf("state = %q (%s)", fin.State, fin.Error)
	}
	if progressEvents == 0 {
		t.Fatal("no worker progress events relayed onto the coordinator SSE stream")
	}

	// The joined timeline: coordinator-side spans (queue_wait, dispatch)
	// and worker-side spans (simulate) under one trace ID, worker spans
	// stamped with the worker's base URL.
	ex, err := c.Spans(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ex.TraceID != "fleet-trace-1" {
		t.Fatalf("span export trace ID = %q", ex.TraceID)
	}
	local := map[string]bool{}
	remote := map[string]bool{}
	remoteHost := ""
	for _, sp := range ex.Spans {
		if sp.Host == "" {
			local[sp.Name] = true
		} else {
			remote[sp.Name] = true
			remoteHost = sp.Host
		}
	}
	if !local["queue_wait"] || !local["dispatch"] {
		t.Fatalf("coordinator spans missing: %v", local)
	}
	if !remote["simulate"] || !remote["queue_wait"] {
		t.Fatalf("worker spans missing: %v", remote)
	}
	if remoteHost != w1 && remoteHost != w2 {
		t.Fatalf("worker span host = %q, want one of %q %q", remoteHost, w1, w2)
	}

	// Heartbeat-age accounting rides the worker listing...
	for _, ws := range coord.Workers() {
		if ws.LastHeartbeatAgeMS < 0 || ws.LastHeartbeatAgeMS > 60_000 {
			t.Fatalf("implausible heartbeat age %dms for %s", ws.LastHeartbeatAgeMS, ws.Addr)
		}
	}
	// ...and the coordinator's Prometheus exposition, which must validate
	// and carry the per-worker series plus dispatch histograms.
	raw, err := c.PromMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	err = telemetry.CheckExposition(bytes.NewReader(raw),
		"cluster_worker_last_heartbeat_age_ms", "cluster_worker_dispatch_ms", "cluster_cells_completed")
	if err != nil {
		t.Fatalf("coordinator exposition invalid: %v\n%s", err, raw)
	}
	if !strings.Contains(string(raw), `cluster_worker_last_heartbeat_age_ms{worker="`) {
		t.Fatalf("per-worker heartbeat gauge missing:\n%s", raw)
	}
}
