package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"time"
)

// registration is the POST /v1/cluster/workers body.
type registration struct {
	Addr string `json:"addr"`
}

// Handler returns the coordinator's cluster-management endpoints, mounted
// by polyflowd under /v1/cluster/ alongside the ordinary job API:
//
//	POST   /v1/cluster/workers          register {"addr":"http://host:port"}
//	GET    /v1/cluster/workers          fleet status (cluster.WorkerStatus list)
//	DELETE /v1/cluster/workers?addr=... deregister
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/workers", func(w http.ResponseWriter, r *http.Request) {
		var reg registration
		if err := json.NewDecoder(r.Body).Decode(&reg); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad registration body: %w", err))
			return
		}
		if err := c.AddWorker(reg.Addr); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		httpJSON(w, http.StatusOK, map[string]any{"workers": c.Workers()})
	})
	mux.HandleFunc("GET /v1/cluster/workers", func(w http.ResponseWriter, r *http.Request) {
		httpJSON(w, http.StatusOK, map[string]any{"workers": c.Workers()})
	})
	mux.HandleFunc("DELETE /v1/cluster/workers", func(w http.ResponseWriter, r *http.Request) {
		addr := r.URL.Query().Get("addr")
		if addr == "" {
			httpError(w, http.StatusBadRequest, errors.New("missing addr query parameter"))
			return
		}
		c.RemoveWorker(addr)
		httpJSON(w, http.StatusOK, map[string]any{"workers": c.Workers()})
	})
	return mux
}

// Register announces a worker to a coordinator, retrying until ctx
// expires — polyflowd calls it on startup when -join is set, so a worker
// may come up before its coordinator and still end up registered.
func Register(ctx context.Context, coordinator, advertise string, hc *http.Client) error {
	if hc == nil {
		hc = http.DefaultClient
	}
	body, err := json.Marshal(registration{Addr: advertise})
	if err != nil {
		return err
	}
	url := normalizeBase(coordinator) + "/v1/cluster/workers"
	var last error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := hc.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			err = fmt.Errorf("coordinator answered HTTP %d", resp.StatusCode)
		}
		last = err
		delay := time.Duration(attempt+1) * 100 * time.Millisecond
		if delay > time.Second {
			delay = time.Second
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: registering with %s: %w (last: %v)", coordinator, ctx.Err(), last)
		case <-time.After(delay):
		}
	}
}

// Deregister removes a worker from a coordinator (best effort; polyflowd
// calls it while shutting down).
func Deregister(ctx context.Context, coordinator, advertise string, hc *http.Client) error {
	if hc == nil {
		hc = http.DefaultClient
	}
	url := normalizeBase(coordinator) + "/v1/cluster/workers?" + neturl.Values{"addr": {advertise}}.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, url, nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("coordinator answered HTTP %d", resp.StatusCode)
	}
	return nil
}

func httpJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	httpJSON(w, code, map[string]string{"error": err.Error()})
}
