package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/jobqueue"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// Options sizes a Coordinator.
type Options struct {
	// Window bounds in-flight cells per worker; <= 0 selects 2 (one
	// running plus one queued keeps a worker busy back to back without
	// piling a grid onto whoever answers first).
	Window int
	// Replicas is the virtual-node count per worker on the hash ring;
	// <= 0 selects 64.
	Replicas int
	// HeartbeatInterval is the liveness probe period; <= 0 selects 1s.
	HeartbeatInterval time.Duration
	// HeartbeatFailures marks a worker down after this many consecutive
	// failed probes; <= 0 selects 3. A down worker stops receiving cells
	// until a probe succeeds again.
	HeartbeatFailures int
	// DispatchWorkers bounds concurrently executing cells across the
	// fleet; <= 0 selects 32. Dispatch is I/O-bound (the cells run on
	// remote CPUs), so this deliberately oversubscribes GOMAXPROCS.
	DispatchWorkers int
	// QueueDepth bounds the dispatch queue; <= 0 selects 256.
	QueueDepth int
	// Retry is the per-call HTTP retry policy for worker requests; the
	// zero value selects server.DefaultRetry().
	Retry server.RetryPolicy
	// PollInterval is the job-status poll period against workers; <= 0
	// selects 5ms.
	PollInterval time.Duration
	// HTTP overrides the transport used for worker calls (tests).
	HTTP *http.Client
	// Logger receives structured dispatch and membership records; nil
	// disables logging.
	Logger *slog.Logger
}

// Coordinator fans grid cells out to registered polyflowd workers and
// collects their artifact bytes. Plug Runner() into server.Config.Runner
// to serve the ordinary job API (including SSE state streams) on top of
// cluster execution, and FillMetrics into Config.MetricsExtra to expose
// the cluster.* counters on /metrics.
type Coordinator struct {
	opts  Options
	pool  *jobqueue.Pool // dispatch pool, remote executor
	hists *telemetry.HistSet

	mu      sync.Mutex
	ring    *Ring
	members map[string]*member
	keys    map[string]string // bench -> ring key (trace-artifact hash), immutable per bench

	stop     chan struct{}
	stopOnce sync.Once
	hbDone   chan struct{}

	m struct {
		dispatched        atomic.Int64
		completed         atomic.Int64
		retries           atomic.Int64
		cellErrors        atomic.Int64
		heartbeatFailures atomic.Int64
		workerDownEvents  atomic.Int64
		workerUpEvents    atomic.Int64
	}
}

// member is one registered worker.
type member struct {
	id     string         // advertised base URL, also the ring member ID
	client *server.Client // retrying client for cell traffic
	probe  *server.Client // non-retrying client for heartbeats
	sem    chan struct{}  // in-flight window slots
	down   atomic.Bool
	fails  int // consecutive heartbeat failures; guarded by Coordinator.mu

	// lastBeat is the unix-millisecond time of the last successful
	// liveness signal (registration or heartbeat probe); the age gauge in
	// GET /v1/cluster/workers derives from it.
	lastBeat atomic.Int64

	dispatched atomic.Int64
	completed  atomic.Int64
	failed     atomic.Int64
	retries    atomic.Int64 // transient failures re-dispatched elsewhere
}

// acquireTimeout waits up to d for a window slot, reporting false on
// timeout so the caller can re-evaluate placement — a less-preferred
// worker may have gone idle while this one stayed saturated, and a
// time-bounded wait turns strict affinity into affinity-with-spill
// without ever exceeding any worker's window.
func (m *member) acquireTimeout(ctx context.Context, d time.Duration) (bool, error) {
	select {
	case m.sem <- struct{}{}:
		return true, nil
	case <-ctx.Done():
		return false, ctx.Err()
	default:
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case m.sem <- struct{}{}:
		return true, nil
	case <-ctx.Done():
		return false, ctx.Err()
	case <-t.C:
		return false, nil
	}
}

func (m *member) release() { <-m.sem }

// freeSlot reports whether the worker has an idle window slot right now.
// It is advisory — the actual bound is enforced by acquire.
func (m *member) freeSlot() bool { return len(m.sem) < cap(m.sem) }

// Cell is one grid cell shipped through the remote executor: the request
// going in, the artifact bytes coming out.
type Cell struct {
	Req      server.Request
	Data     []byte
	CacheHit bool
	Worker   string // base URL of the worker that completed the cell
	// Progress, when non-nil, receives the worker's live progress samples:
	// the coordinator subscribes to the worker job's SSE stream and relays
	// each sample here, so a coordinator-side SSE watcher sees real worker
	// progress, not just queued/running/terminal transitions.
	Progress server.ProgressFunc
	// Trace, when non-nil, collects the cell's fleet spans: dispatch spans
	// on the coordinator side plus the worker's own phase spans, imported
	// after completion under the worker's base URL.
	Trace *obs.Trace
}

// remoteExecutor is the jobqueue.Executor that ships cell payloads to
// cluster workers; jobqueue.LocalExecutor is its in-process counterpart.
// Jobs without a *Cell payload fall back to local execution, so a shared
// pool can mix cluster cells with ordinary work.
type remoteExecutor struct{ c *Coordinator }

func (e remoteExecutor) Execute(ctx context.Context, j jobqueue.Job) error {
	cell, ok := j.Payload.(*Cell)
	if !ok {
		return jobqueue.LocalExecutor{}.Execute(ctx, j)
	}
	return e.c.execute(ctx, cell)
}

// New builds and starts a coordinator (its heartbeat loop runs until
// Close).
func New(opts Options) *Coordinator {
	if opts.Window <= 0 {
		opts.Window = 2
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = time.Second
	}
	if opts.HeartbeatFailures <= 0 {
		opts.HeartbeatFailures = 3
	}
	if opts.DispatchWorkers <= 0 {
		opts.DispatchWorkers = 32
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	if opts.Retry == (server.RetryPolicy{}) {
		opts.Retry = server.DefaultRetry()
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 5 * time.Millisecond
	}
	c := &Coordinator{
		opts:    opts,
		hists:   telemetry.NewHistSet(),
		ring:    NewRing(opts.Replicas),
		members: map[string]*member{},
		keys:    map[string]string{},
		stop:    make(chan struct{}),
		hbDone:  make(chan struct{}),
	}
	c.pool = jobqueue.New(jobqueue.Config{
		Workers:    opts.DispatchWorkers,
		QueueDepth: opts.QueueDepth,
		Executor:   remoteExecutor{c},
	})
	go c.heartbeatLoop()
	return c
}

// Close stops the heartbeat loop and drains the dispatch pool.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.hbDone
	c.pool.Close()
}

// AddWorker registers a worker by base URL (e.g. "http://10.0.0.2:8080").
// Registering an existing worker resets its down state, so a restarted
// worker that re-joins resumes traffic immediately.
func (c *Coordinator) AddWorker(base string) error {
	base = normalizeBase(base)
	if base == "" {
		return errors.New("cluster: empty worker address")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.members[base]; ok {
		m.fails = 0
		m.down.Store(false)
		return nil
	}
	m := &member{
		id:     base,
		client: &server.Client{Base: base, HTTP: c.opts.HTTP, Retry: c.opts.Retry},
		probe:  &server.Client{Base: base, HTTP: c.opts.HTTP},
		sem:    make(chan struct{}, c.opts.Window),
	}
	m.lastBeat.Store(time.Now().UnixMilli())
	c.members[base] = m
	c.ring.Add(base)
	if c.opts.Logger != nil {
		c.opts.Logger.Info("worker registered", "component", "cluster", "worker", base)
	}
	return nil
}

// RemoveWorker deregisters a worker. In-flight cells on it fail over to
// the survivors through the ordinary retry path.
func (c *Coordinator) RemoveWorker(base string) {
	base = normalizeBase(base)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.members[base]; !ok {
		return
	}
	delete(c.members, base)
	c.ring.Remove(base)
	if c.opts.Logger != nil {
		c.opts.Logger.Info("worker deregistered", "component", "cluster", "worker", base)
	}
}

func normalizeBase(base string) string {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return base
}

// Runner adapts the coordinator to server.Runner: a polyflowd in
// coordinator mode serves the unchanged submit/status/result/SSE API while
// every cell executes on the cluster. Cache hits reported by workers
// propagate into the coordinator's job records.
func (c *Coordinator) Runner() server.Runner {
	return func(ctx context.Context, req server.Request, progress server.ProgressFunc) ([]byte, bool, error) {
		// The caller's trace and progress hook ride in the cell: execute
		// runs on the dispatch pool under a different context.
		cell := &Cell{Req: req, Progress: progress, Trace: obs.From(ctx)}
		return c.runCell(ctx, cell)
	}
}

// RunCell executes one (bench, policy) cell on the cluster and returns
// the artifact bytes, exactly as a single polyflowd would serve them.
func (c *Coordinator) RunCell(ctx context.Context, req server.Request) ([]byte, bool, error) {
	return c.runCell(ctx, &Cell{Req: req, Trace: obs.From(ctx)})
}

func (c *Coordinator) runCell(ctx context.Context, cell *Cell) ([]byte, bool, error) {
	req := cell.Req
	job := jobqueue.Job{ID: "cell/" + req.Bench + "/" + req.Policy, Priority: req.Priority, Payload: cell}
	h, err := c.submitWait(ctx, job)
	if err != nil {
		return nil, false, err
	}
	if err := h.Wait(ctx); err != nil {
		if ctx.Err() != nil {
			h.Cancel()
		}
		return nil, false, err
	}
	return cell.Data, cell.CacheHit, nil
}

// submitWait enqueues on the dispatch pool, absorbing transient queue-full
// rejections (the pool drains at cluster speed).
func (c *Coordinator) submitWait(ctx context.Context, job jobqueue.Job) (*jobqueue.Handle, error) {
	for {
		h, err := c.pool.Submit(job)
		if err == nil {
			return h, nil
		}
		if !errors.Is(err, jobqueue.ErrQueueFull) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// ringKeyFor maps a bench to its trace-artifact key hash — the same
// content address workers store the trace under, so cell placement and
// cache placement agree by construction. The hash covers the workload's
// full source, so the coordinator memoizes it per bench instead of
// re-hashing on every cell.
func (c *Coordinator) ringKeyFor(bench string) (string, error) {
	c.mu.Lock()
	key, ok := c.keys[bench]
	c.mu.Unlock()
	if ok {
		return key, nil
	}
	w, ok := workloads.ByName(bench)
	if !ok {
		return "", fmt.Errorf("cluster: unknown bench %q", bench)
	}
	k, err := artifact.NewTraceKey(w.Name, w.SHA(), w.MaxInstrs)
	if err != nil {
		return "", err
	}
	key = k.Hash()
	c.mu.Lock()
	c.keys[bench] = key
	c.mu.Unlock()
	return key, nil
}

// execute runs one cell: pick a worker (affinity first, spill when the
// preferred ones are saturated), ship the cell, and on worker failure move
// to the next candidate in the key's ring sequence. Deterministic
// simulation failures are not retried — they would fail identically
// everywhere.
func (c *Coordinator) execute(ctx context.Context, cell *Cell) error {
	key, err := c.ringKeyFor(cell.Req.Bench)
	if err != nil {
		c.m.cellErrors.Add(1)
		return err
	}
	c.m.dispatched.Add(1)
	ctx = obs.With(ctx, cell.Trace)
	placed := time.Now()
	tried := map[string]bool{}
	for {
		m, err := c.pick(key, tried)
		if err != nil {
			c.m.cellErrors.Add(1)
			return err
		}
		ok, err := m.acquireTimeout(ctx, c.opts.PollInterval)
		if err != nil {
			return err
		}
		if !ok {
			// The pick went stale while we waited; place the cell again.
			continue
		}
		// How long placement took, including every re-pick and spill wait.
		c.hists.Observe("cluster.placement_wait_ms", clusterBounds, time.Since(placed).Milliseconds())
		m.dispatched.Add(1)
		endDispatch := obs.StartSpan(ctx, "dispatch")
		start := time.Now()
		data, hit, rerr := c.runOn(ctx, m, cell)
		m.release()
		c.hists.Observe("cluster.worker.dispatch_ms{"+telemetry.PromLabel("worker", m.id)+"}",
			clusterBounds, time.Since(start).Milliseconds())
		if rerr == nil {
			endDispatch.End("worker", m.id)
			m.completed.Add(1)
			cell.Data, cell.CacheHit, cell.Worker = data, hit, m.id
			c.m.completed.Add(1)
			return nil
		}
		endDispatch.End("worker", m.id, "error", "true")
		m.failed.Add(1)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var we *workerError
		if !errors.As(rerr, &we) || !we.transient {
			c.m.cellErrors.Add(1)
			return fmt.Errorf("cluster: cell %s/%s on %s: %w", cell.Req.Bench, cell.Req.Policy, m.id, rerr)
		}
		// Transient worker failure: count the retry, suspect the worker
		// (the heartbeat revives it when it answers again), move on.
		tried[m.id] = true
		c.markDown(m)
		c.m.retries.Add(1)
		m.retries.Add(1)
		if c.opts.Logger != nil {
			c.opts.Logger.Warn("cell retried on another worker", "component", "cluster",
				"bench", cell.Req.Bench, "policy", cell.Req.Policy, "worker", m.id,
				"trace_id", traceID(cell.Trace), "error", rerr.Error())
		}
	}
}

// clusterBounds are the millisecond edges for dispatch and placement
// histograms.
var clusterBounds = []int64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

func traceID(t *obs.Trace) string {
	if t == nil {
		return ""
	}
	return t.ID()
}

// pick chooses the worker for key: the first live untried member of the
// key's ring sequence with an idle window slot; when every live candidate
// is saturated, the most-preferred one — the caller then waits a bounded
// time on its window before re-picking, preserving cache affinity under
// load (bounded-load consistent hashing: spill only to idle workers,
// never pile onto an arbitrary busy one) while still draining onto
// whichever worker frees up first when the whole fleet is busy.
func (c *Coordinator) pick(key string, tried map[string]bool) (*member, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	seq := c.ring.Sequence(key)
	var first *member
	for _, id := range seq {
		m := c.members[id]
		if m == nil || m.down.Load() || tried[id] {
			continue
		}
		if first == nil {
			first = m
		}
		if m.freeSlot() {
			return m, nil
		}
	}
	if first == nil {
		return nil, fmt.Errorf("cluster: no live worker for cell (workers=%d, excluded=%d)", len(c.members), len(tried))
	}
	return first, nil
}

// workerError wraps a failed worker interaction; transient failures are
// retried on another worker, permanent ones (a deterministic simulation
// failure, a rejected request body) propagate to the caller.
type workerError struct {
	err       error
	transient bool
}

func (e *workerError) Error() string { return e.err.Error() }
func (e *workerError) Unwrap() error { return e.err }

// transientCode classifies an HTTP answer from a worker. Code 0 is a
// transport failure; 429/5xx are load or server trouble. All of those may
// succeed elsewhere. 4xx (other than 429) means the request itself is
// bad and no worker will accept it.
func transientCode(code int) bool {
	return code == 0 || code == http.StatusTooManyRequests || code >= 500
}

// runOn ships one cell to one worker and fetches the artifact bytes. ctx
// carries the cell's trace, so Submit stamps the X-Polyflow-Trace header
// and the worker job joins the coordinator's trace. While the job runs, a
// relay goroutine subscribes to the worker's SSE stream and forwards
// progress samples to the cell's Progress hook; after success the worker's
// spans are imported under its base URL.
func (c *Coordinator) runOn(ctx context.Context, m *member, cell *Cell) ([]byte, bool, error) {
	st, code, err := m.client.Submit(ctx, cell.Req)
	if err != nil {
		return nil, false, &workerError{fmt.Errorf("submit: %w", err), transientCode(code)}
	}
	if cell.Progress != nil {
		relayCtx, stopRelay := context.WithCancel(ctx)
		defer stopRelay()
		go c.relayProgress(relayCtx, m, st.ID, cell.Progress)
	}
	fin, err := m.client.Wait(ctx, st.ID, c.opts.PollInterval)
	if err != nil {
		// Transport loss or a worker restart that forgot the job: both
		// retryable elsewhere.
		return nil, false, &workerError{fmt.Errorf("wait: %w", err), true}
	}
	switch fin.State {
	case "succeeded":
	case "canceled":
		// A draining worker cancels its jobs; rerun the cell elsewhere.
		return nil, false, &workerError{fmt.Errorf("job %s canceled by worker", st.ID), true}
	default:
		// The simulation itself failed — deterministic, so no other
		// worker would fare better.
		return nil, false, &workerError{fmt.Errorf("job %s failed: %s", st.ID, fin.Error), false}
	}
	data, err := m.client.ResultBytes(ctx, fin.ID)
	if err != nil {
		return nil, false, &workerError{fmt.Errorf("result: %w", err), true}
	}
	if cell.Trace != nil {
		// Best effort: a worker that drained between Wait and here just
		// leaves the timeline without its side of the story.
		if ex, err := m.client.Spans(ctx, fin.ID); err == nil {
			cell.Trace.Import(m.id, ex.Spans)
		}
	}
	return data, fin.CacheHit, nil
}

// relayProgress streams one worker job's SSE events and forwards each
// progress sample; it exits when the stream ends (terminal state) or ctx is
// canceled. Relay loss is benign — progress is advisory.
func (c *Coordinator) relayProgress(ctx context.Context, m *member, jobID string, progress server.ProgressFunc) {
	m.client.StreamEvents(ctx, jobID, func(event string, data []byte) error {
		if event != "progress" {
			return nil
		}
		var p server.Progress
		if json.Unmarshal(data, &p) == nil {
			progress(p.Cycle, p.Retired)
		}
		return nil
	})
}

// markDown suspects a worker after a failed cell. The heartbeat loop
// restores it as soon as it answers a probe, so a blip costs at most one
// probe period of exclusion.
func (c *Coordinator) markDown(m *member) {
	if !m.down.Swap(true) {
		c.m.workerDownEvents.Add(1)
	}
}

// heartbeatLoop probes every worker each interval and flips down/up state.
func (c *Coordinator) heartbeatLoop() {
	defer close(c.hbDone)
	t := time.NewTicker(c.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		c.mu.Lock()
		snapshot := make([]*member, 0, len(c.members))
		for _, m := range c.members {
			snapshot = append(snapshot, m)
		}
		c.mu.Unlock()
		for _, m := range snapshot {
			ctx, cancel := context.WithTimeout(context.Background(), c.opts.HeartbeatInterval)
			healthy := m.probe.Healthy(ctx)
			cancel()
			c.mu.Lock()
			if healthy {
				m.fails = 0
				m.lastBeat.Store(time.Now().UnixMilli())
				if m.down.Swap(false) {
					c.m.workerUpEvents.Add(1)
					if c.opts.Logger != nil {
						c.opts.Logger.Info("worker up", "component", "cluster", "worker", m.id)
					}
				}
			} else {
				m.fails++
				c.m.heartbeatFailures.Add(1)
				if m.fails >= c.opts.HeartbeatFailures && !m.down.Swap(true) {
					c.m.workerDownEvents.Add(1)
					if c.opts.Logger != nil {
						c.opts.Logger.Warn("worker down", "component", "cluster", "worker", m.id, "failed_probes", m.fails)
					}
				}
			}
			c.mu.Unlock()
		}
	}
}

// PreferredWorker reports where the ring currently places a workload
// (diagnostics and tests; failover may execute cells elsewhere).
func (c *Coordinator) PreferredWorker(bench string) (string, bool) {
	key, err := c.ringKeyFor(bench)
	if err != nil {
		return "", false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Lookup(key)
}

// Stats is a snapshot of cluster-wide accounting.
type Stats struct {
	Workers           int
	WorkersUp         int
	Dispatched        int64
	Completed         int64
	Retries           int64
	CellErrors        int64
	HeartbeatFailures int64
	WorkerDownEvents  int64
	WorkerUpEvents    int64
}

// Stats snapshots the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	workers, up := len(c.members), 0
	for _, m := range c.members {
		if !m.down.Load() {
			up++
		}
	}
	c.mu.Unlock()
	return Stats{
		Workers:           workers,
		WorkersUp:         up,
		Dispatched:        c.m.dispatched.Load(),
		Completed:         c.m.completed.Load(),
		Retries:           c.m.retries.Load(),
		CellErrors:        c.m.cellErrors.Load(),
		HeartbeatFailures: c.m.heartbeatFailures.Load(),
		WorkerDownEvents:  c.m.workerDownEvents.Load(),
		WorkerUpEvents:    c.m.workerUpEvents.Load(),
	}
}

// WorkerStatus describes one registered worker to clients.
type WorkerStatus struct {
	Addr       string `json:"addr"`
	Up         bool   `json:"up"`
	InFlight   int    `json:"in_flight"`
	Dispatched int64  `json:"dispatched"`
	Completed  int64  `json:"completed"`
	Failed     int64  `json:"failed"`
	Retries    int64  `json:"retries"`
	// LastHeartbeatAgeMS is how long ago the worker last proved liveness
	// (registration or a successful probe); a staleness signal for
	// dashboards even while Up is still true.
	LastHeartbeatAgeMS int64 `json:"last_heartbeat_age_ms"`
}

// Workers snapshots the fleet, sorted by address.
func (c *Coordinator) Workers() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now().UnixMilli()
	out := make([]WorkerStatus, 0, len(c.members))
	for _, id := range c.ring.Members() {
		m := c.members[id]
		age := now - m.lastBeat.Load()
		if age < 0 {
			age = 0
		}
		out = append(out, WorkerStatus{
			Addr:               m.id,
			Up:                 !m.down.Load(),
			InFlight:           len(m.sem),
			Dispatched:         m.dispatched.Load(),
			Completed:          m.completed.Load(),
			Failed:             m.failed.Load(),
			Retries:            m.retries.Load(),
			LastHeartbeatAgeMS: age,
		})
	}
	return out
}

// FillMetrics injects the cluster.* counters and gauges into a metrics
// snapshot registry (plug into server.Config.MetricsExtra).
func (c *Coordinator) FillMetrics(reg *telemetry.Registry) {
	st := c.Stats()
	add := func(name string, v int64) { reg.Counter(name).Add(v) }
	add("cluster.cells_dispatched", st.Dispatched)
	add("cluster.cells_completed", st.Completed)
	add("cluster.retries", st.Retries)
	add("cluster.cell_errors", st.CellErrors)
	add("cluster.heartbeat_failures", st.HeartbeatFailures)
	add("cluster.worker_down_events", st.WorkerDownEvents)
	add("cluster.worker_up_events", st.WorkerUpEvents)
	reg.Gauge("cluster.workers").Set(int64(st.Workers))
	reg.Gauge("cluster.workers_up").Set(int64(st.WorkersUp))
	for _, ws := range c.Workers() {
		label := "{" + telemetry.PromLabel("worker", ws.Addr) + "}"
		reg.Gauge("cluster.worker.last_heartbeat_age_ms" + label).Set(ws.LastHeartbeatAgeMS)
		reg.Gauge("cluster.worker.up" + label).Set(boolGauge(ws.Up))
		add("cluster.worker.dispatched"+label, ws.Dispatched)
		add("cluster.worker.completed"+label, ws.Completed)
		add("cluster.worker.failed"+label, ws.Failed)
		add("cluster.worker.retries"+label, ws.Retries)
	}
	c.hists.Fill(reg)
}

func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
