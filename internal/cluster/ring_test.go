package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicPlacement(t *testing.T) {
	build := func() *Ring {
		r := NewRing(64)
		// Insertion order must not matter.
		for _, m := range []string{"w2", "w0", "w3", "w1"} {
			r.Add(m)
		}
		return r
	}
	a, b := build(), build()
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		ma, _ := a.Lookup(key)
		mb, _ := b.Lookup(key)
		if ma != mb {
			t.Fatalf("key %q: placement differs between identical rings (%s vs %s)", key, ma, mb)
		}
	}
}

func TestRingSequenceCoversAllMembersOnce(t *testing.T) {
	r := NewRing(32)
	members := []string{"a", "b", "c", "d", "e"}
	for _, m := range members {
		r.Add(m)
	}
	seq := r.Sequence("some-workload-hash")
	if len(seq) != len(members) {
		t.Fatalf("sequence has %d members, want %d", len(seq), len(members))
	}
	seen := map[string]bool{}
	for _, m := range seq {
		if seen[m] {
			t.Fatalf("member %s appears twice in sequence %v", m, seq)
		}
		seen[m] = true
	}
	if owner, _ := r.Lookup("some-workload-hash"); owner != seq[0] {
		t.Fatalf("Lookup %s != Sequence[0] %s", owner, seq[0])
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(128)
	n := 4
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("worker-%d", i))
	}
	counts := map[string]int{}
	total := 4000
	for i := 0; i < total; i++ {
		m, ok := r.Lookup(fmt.Sprintf("cell-%d", i))
		if !ok {
			t.Fatal("lookup on populated ring failed")
		}
		counts[m]++
	}
	fair := total / n
	for m, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Fatalf("member %s owns %d of %d keys; want within [%d, %d] of fair share %d",
				m, c, total, fair/2, fair*2, fair)
		}
	}
}

func TestRingRemovalOnlyMovesVictimKeys(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("worker-%d", i))
	}
	before := map[string]string{}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("cell-%d", i)
		before[key], _ = r.Lookup(key)
	}
	victim := "worker-2"
	r.Remove(victim)
	for key, owner := range before {
		after, ok := r.Lookup(key)
		if !ok {
			t.Fatal("lookup failed after removal")
		}
		if owner != victim && after != owner {
			t.Fatalf("key %q moved from surviving %s to %s after removing %s — remap must touch only the victim's keys",
				key, owner, after, victim)
		}
		if owner == victim && after == victim {
			t.Fatalf("key %q still maps to removed member", key)
		}
	}
}

func TestRingEmptyAndReAdd(t *testing.T) {
	r := NewRing(16)
	if _, ok := r.Lookup("x"); ok {
		t.Fatal("lookup on empty ring must fail")
	}
	r.Add("only")
	if m, ok := r.Lookup("x"); !ok || m != "only" {
		t.Fatalf("single-member ring lookup = %q, %v", m, ok)
	}
	r.Remove("only")
	if _, ok := r.Lookup("x"); ok {
		t.Fatal("lookup after removing the last member must fail")
	}
	r.Add("only")
	r.Add("only") // idempotent
	if got := len(r.Members()); got != 1 {
		t.Fatalf("double Add left %d members, want 1", got)
	}
}
