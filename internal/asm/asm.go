// Package asm implements a two-pass assembler for the repository's MIPS-like
// ISA. It is how the synthetic workloads are written: a small textual
// assembly language with labels, functions, data directives, and the
// jump-table annotations that stand in for the compiler-generated indirect
// jump target information the paper's binaries carry.
//
// Syntax overview:
//
//	# comment
//	        .text                  # switch to code segment (default)
//	        .func main             # start a function named main (defines label)
//	        li   $t0, 100
//	loop:   addi $t0, $t0, -1
//	        bgtz $t0, loop
//	        halt
//
//	        .data
//	table:  .word8 f1, f2          # 8-byte cells; labels resolve to addresses
//	vals:   .word 1, 2, 3          # .word is the native 8-byte cell
//	msg:    .asciiz "done\n"       # NUL-terminated string, Go-style escapes
//	buf:    .space 4096            # zeroed bytes
//
// Indirect jumps may be annotated with their possible targets:
//
//	jr $t0
//	.targets case0, case1, case2
//
// Pseudo-instructions: li, la, move, neg, not, b, call, ret, and the
// synthesized comparisons blt/bge/ble/bgt (which expand to slt + branch
// through $at).
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type section int

const (
	secText section = iota
	secData
)

// item is one parsed source statement retained between passes.
type item struct {
	line    int
	mnem    string
	args    []string
	sec     section
	codeLen int    // instructions emitted (text section)
	dataLen int    // bytes emitted (data section)
	codePos int    // index of first emitted instruction
	dataPos int    // offset of first emitted byte
	bytes   []byte // decoded payload (.asciiz), produced during layout
}

type assembler struct {
	prog    *isa.Program
	items   []item
	labels  map[string]uint64
	funcSet map[string]bool
	lastJR  int // code index of most recent jr/jalr, for .targets
}

// Assemble parses and assembles the given source text into a linked
// Program image.
func Assemble(src string) (*isa.Program, error) {
	a := &assembler{
		prog: &isa.Program{
			CodeBase:    isa.DefaultCodeBase,
			DataBase:    isa.DefaultDataBase,
			Labels:      map[string]uint64{},
			Symbols:     map[uint64]string{},
			JumpTargets: map[uint64][]uint64{},
		},
		labels:  map[string]uint64{},
		funcSet: map[string]bool{},
		lastJR:  -1,
	}
	if err := a.parse(src); err != nil {
		return nil, err
	}
	if err := a.layout(); err != nil {
		return nil, err
	}
	if err := a.emit(); err != nil {
		return nil, err
	}
	a.prog.Labels = a.labels
	if entry, ok := a.labels["main"]; ok {
		a.prog.Entry = entry
	} else {
		a.prog.Entry = a.prog.CodeBase
	}
	return a.prog, nil
}

// MustAssemble is Assemble but panics on error. The built-in workloads use
// it: an unassemblable workload is a programming error in this repository.
func MustAssemble(src string) *isa.Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// parse splits the source into labeled statements.
func (a *assembler) parse(src string) error {
	sec := secText
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			// Anything before the first ':' that looks like an identifier
			// is a label; register/memory operands never precede ':'.
			lbl := strings.TrimSpace(line[:i])
			if !isIdent(lbl) {
				break
			}
			a.items = append(a.items, item{line: lineNo + 1, mnem: "<label>", args: []string{lbl}, sec: sec})
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		fields := splitOperands(line)
		mnem := strings.ToLower(fields[0])
		if mnem == ".text" {
			sec = secText
			continue
		}
		if mnem == ".data" {
			sec = secData
			continue
		}
		a.items = append(a.items, item{line: lineNo + 1, mnem: mnem, args: fields[1:], sec: sec})
	}
	return nil
}

// isIdent reports whether s is a plausible label identifier.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// stripComment removes a '#' comment, ignoring '#' inside string literals
// (".asciiz \"#1\"" keeps its hash).
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch c := line[i]; {
		case inStr && c == '\\':
			i++ // skip the escaped byte
		case c == '"':
			inStr = !inStr
		case c == '#' && !inStr:
			return line[:i]
		}
	}
	return line
}

// splitOperands splits "op a, b, c" into ["op","a","b","c"], keeping memory
// operands like "8($sp)" and quoted strings (commas included) intact.
func splitOperands(line string) []string {
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return []string{line}
	}
	out := []string{line[:i]}
	rest := line[i+1:]
	var cur strings.Builder
	flush := func() {
		if f := strings.TrimSpace(cur.String()); f != "" {
			out = append(out, f)
		}
		cur.Reset()
	}
	inStr := false
	for j := 0; j < len(rest); j++ {
		c := rest[j]
		switch {
		case inStr:
			cur.WriteByte(c)
			if c == '\\' && j+1 < len(rest) {
				j++
				cur.WriteByte(rest[j])
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
			cur.WriteByte(c)
		case c == ',':
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return out
}

// instCount returns how many instructions a mnemonic expands to.
func instCount(mnem string) int {
	switch mnem {
	case "blt", "bge", "ble", "bgt", "bltu", "bgeu":
		return 2
	}
	return 1
}

// layout is pass one: assign addresses to every statement and label.
func (a *assembler) layout() error {
	codePos, dataPos := 0, 0
	for k := range a.items {
		it := &a.items[k]
		it.codePos, it.dataPos = codePos, dataPos
		switch it.mnem {
		case "<label>":
			name := it.args[0]
			addr := a.prog.DataBase + uint64(dataPos)
			if it.sec == secText {
				addr = a.prog.CodeBase + uint64(codePos)*isa.InstSize
			}
			if old, dup := a.labels[name]; dup {
				// ".func f" followed by "f:" is fine; a genuinely
				// different address is not.
				if old != addr {
					return a.errf(it.line, "duplicate label %q", name)
				}
				continue
			}
			a.labels[name] = addr
		case ".func":
			if len(it.args) != 1 {
				return a.errf(it.line, ".func wants one name")
			}
			if it.sec != secText {
				return a.errf(it.line, ".func outside .text")
			}
			name := it.args[0]
			if _, dup := a.labels[name]; dup {
				return a.errf(it.line, "duplicate label %q", name)
			}
			pc := a.prog.CodeBase + uint64(codePos)*isa.InstSize
			a.labels[name] = pc
			a.funcSet[name] = true
			a.prog.Funcs = append(a.prog.Funcs, pc)
		case ".targets":
			// no space
		case ".space":
			n, err := strconv.Atoi(strings.TrimSpace(it.args[0]))
			if err != nil || n < 0 {
				return a.errf(it.line, "bad .space size")
			}
			it.dataLen = n
			dataPos += n
		case ".word8", ".word": // .word is the native 8-byte cell
			it.dataLen = 8 * len(it.args)
			dataPos += it.dataLen
		case ".asciiz":
			if len(it.args) == 0 {
				return a.errf(it.line, ".asciiz wants at least one string")
			}
			for _, arg := range it.args {
				s, err := strconv.Unquote(arg)
				if err != nil {
					return a.errf(it.line, "bad string literal %s", arg)
				}
				it.bytes = append(it.bytes, s...)
				it.bytes = append(it.bytes, 0) // NUL terminator
			}
			it.dataLen = len(it.bytes)
			dataPos += it.dataLen
		case ".word4":
			it.dataLen = 4 * len(it.args)
			dataPos += it.dataLen
		case ".byte":
			it.dataLen = len(it.args)
			dataPos += it.dataLen
		default:
			if strings.HasPrefix(it.mnem, ".") {
				return a.errf(it.line, "unknown directive %s", it.mnem)
			}
			if it.sec != secText {
				return a.errf(it.line, "instruction in .data section")
			}
			it.codeLen = instCount(it.mnem)
			codePos += it.codeLen
		}
	}
	return nil
}

// emit is pass two: resolve operands and produce the final image.
func (a *assembler) emit() error {
	var code []isa.Inst
	var data []byte
	for k := range a.items {
		it := &a.items[k]
		switch it.mnem {
		case "<label>", ".func":
			// handled in layout
		case ".space":
			data = append(data, make([]byte, it.dataLen)...)
		case ".asciiz":
			data = append(data, it.bytes...)
		case ".word8", ".word", ".word4", ".byte":
			width := map[string]int{".word8": 8, ".word": 8, ".word4": 4, ".byte": 1}[it.mnem]
			for _, arg := range it.args {
				v, err := a.value(it, arg)
				if err != nil {
					return err
				}
				if err := a.checkWidth(it, v, width); err != nil {
					return err
				}
				for b := 0; b < width; b++ {
					data = append(data, byte(uint64(v)>>(8*b)))
				}
			}
		case ".targets":
			if a.lastJR < 0 {
				return a.errf(it.line, ".targets without preceding jr/jalr")
			}
			pc := a.prog.CodeBase + uint64(a.lastJR)*isa.InstSize
			for _, arg := range it.args {
				v, err := a.value(it, arg)
				if err != nil {
					return err
				}
				a.prog.JumpTargets[pc] = append(a.prog.JumpTargets[pc], uint64(v))
			}
		default:
			insts, err := a.encode(it)
			if err != nil {
				return err
			}
			for _, in := range insts {
				if in.Op == isa.OpJR || in.Op == isa.OpJALR {
					a.lastJR = len(code)
				}
				code = append(code, in)
			}
		}
	}
	a.prog.Code = code
	a.prog.Data = data
	for name, addr := range a.labels {
		if addr >= a.prog.CodeBase && addr < a.prog.CodeBase+uint64(len(code))*isa.InstSize {
			// Prefer function names over plain labels when both land on
			// the same address.
			if old, ok := a.prog.Symbols[addr]; !ok || !a.funcSet[old] {
				a.prog.Symbols[addr] = name
			}
		}
	}
	return nil
}

// checkWidth rejects data-cell values that do not fit the directive's
// width (signed or unsigned interpretations both accepted).
func (a *assembler) checkWidth(it *item, v int64, width int) error {
	if width >= 8 {
		return nil
	}
	lo := int64(-1) << (8*width - 1) // e.g. -128 for .byte
	hi := int64(1)<<(8*width) - 1   // e.g. 255 for .byte
	if v < lo || v > hi {
		return a.errf(it.line, "%s value %d out of range %d..%d", it.mnem, v, lo, hi)
	}
	return nil
}

// value resolves an integer literal or label reference.
func (a *assembler) value(it *item, s string) (int64, error) {
	s = strings.TrimSpace(s)
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return v, nil
	}
	if addr, ok := a.labels[s]; ok {
		return int64(addr), nil
	}
	return 0, a.errf(it.line, "undefined symbol %q", s)
}

func (a *assembler) reg(it *item, s string) (isa.Reg, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "$") {
		return 0, a.errf(it.line, "expected register, got %q", s)
	}
	r, ok := isa.RegByName(s[1:])
	if !ok {
		return 0, a.errf(it.line, "unknown register %q", s)
	}
	return r, nil
}

// memOperand parses "off($reg)" or "label($reg)".
func (a *assembler) memOperand(it *item, s string) (int64, isa.Reg, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, a.errf(it.line, "expected mem operand off($reg), got %q", s)
	}
	off := int64(0)
	if open > 0 {
		v, err := a.value(it, s[:open])
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	r, err := a.reg(it, s[open+1:len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return off, r, nil
}

var aluRegOps = map[string]isa.Op{
	"add": isa.OpADD, "sub": isa.OpSUB, "and": isa.OpAND, "or": isa.OpOR,
	"xor": isa.OpXOR, "nor": isa.OpNOR, "slt": isa.OpSLT, "sltu": isa.OpSLTU,
	"sllv": isa.OpSLLV, "srlv": isa.OpSRLV, "srav": isa.OpSRAV,
	"mul": isa.OpMUL, "div": isa.OpDIV, "rem": isa.OpREM,
}

var aluImmOps = map[string]isa.Op{
	"addi": isa.OpADDI, "andi": isa.OpANDI, "ori": isa.OpORI,
	"xori": isa.OpXORI, "slti": isa.OpSLTI,
	"sll": isa.OpSLL, "srl": isa.OpSRL, "sra": isa.OpSRA,
}

var loadOps = map[string]isa.Op{
	"lb": isa.OpLB, "lbu": isa.OpLBU, "lh": isa.OpLH, "lw": isa.OpLW, "ld": isa.OpLD,
}

var storeOps = map[string]isa.Op{
	"sb": isa.OpSB, "sh": isa.OpSH, "sw": isa.OpSW, "sd": isa.OpSD,
}

var branchZeroOps = map[string]isa.Op{
	"blez": isa.OpBLEZ, "bgtz": isa.OpBGTZ, "bltz": isa.OpBLTZ, "bgez": isa.OpBGEZ,
}

// encode turns one statement into 1–2 instructions.
func (a *assembler) encode(it *item) ([]isa.Inst, error) {
	need := func(n int) error {
		if len(it.args) != n {
			return a.errf(it.line, "%s wants %d operands, got %d", it.mnem, n, len(it.args))
		}
		return nil
	}
	m := it.mnem
	switch {
	case m == "nop":
		return []isa.Inst{{Op: isa.OpNOP}}, nil
	case m == "halt":
		return []isa.Inst{{Op: isa.OpHALT}}, nil
	case m == "syscall":
		if err := need(0); err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpSYSCALL}}, nil
	case aluRegOps[m] != 0:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := a.reg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		rt, err := a.reg(it, it.args[2])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: aluRegOps[m], Rd: rd, Rs: rs, Rt: rt}}, nil
	case aluImmOps[m] != 0:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := a.reg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		imm, err := a.value(it, it.args[2])
		if err != nil {
			return nil, err
		}
		if m == "sll" || m == "srl" || m == "sra" {
			if imm < 0 || imm > 63 {
				return nil, a.errf(it.line, "%s shift amount %d out of range 0..63", m, imm)
			}
		}
		return []isa.Inst{{Op: aluImmOps[m], Rd: rd, Rs: rs, Imm: imm}}, nil
	case m == "lui":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		imm, err := a.value(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpLUI, Rd: rd, Imm: imm}}, nil
	case m == "li" || m == "la":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		imm, err := a.value(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpLI, Rd: rd, Imm: imm}}, nil
	case m == "move":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpOR, Rd: rd, Rs: rs, Rt: isa.Zero}}, nil
	case m == "neg":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpSUB, Rd: rd, Rs: isa.Zero, Rt: rs}}, nil
	case m == "not":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpNOR, Rd: rd, Rs: rs, Rt: isa.Zero}}, nil
	case loadOps[m] != 0:
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		off, rs, err := a.memOperand(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: loadOps[m], Rd: rd, Rs: rs, Imm: off}}, nil
	case storeOps[m] != 0:
		if err := need(2); err != nil {
			return nil, err
		}
		rt, err := a.reg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		off, rs, err := a.memOperand(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: storeOps[m], Rt: rt, Rs: rs, Imm: off}}, nil
	case m == "beq" || m == "bne":
		if err := need(3); err != nil {
			return nil, err
		}
		rs, err := a.reg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rt, err := a.reg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		tgt, err := a.value(it, it.args[2])
		if err != nil {
			return nil, err
		}
		op := isa.OpBEQ
		if m == "bne" {
			op = isa.OpBNE
		}
		return []isa.Inst{{Op: op, Rs: rs, Rt: rt, Imm: tgt}}, nil
	case branchZeroOps[m] != 0:
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := a.reg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		tgt, err := a.value(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: branchZeroOps[m], Rs: rs, Imm: tgt}}, nil
	case m == "blt" || m == "bge" || m == "ble" || m == "bgt" || m == "bltu" || m == "bgeu":
		if err := need(3); err != nil {
			return nil, err
		}
		rs, err := a.reg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rt, err := a.reg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		tgt, err := a.value(it, it.args[2])
		if err != nil {
			return nil, err
		}
		slt := isa.OpSLT
		if m == "bltu" || m == "bgeu" {
			slt = isa.OpSLTU
		}
		// blt rs,rt: slt at,rs,rt; bne at,zero  |  bge: slt; beq
		// ble rs,rt: slt at,rt,rs; beq at,zero  |  bgt: slt(rt,rs); bne
		cmpA, cmpB := rs, rt
		br := isa.OpBNE
		switch m {
		case "bge", "bgeu":
			br = isa.OpBEQ
		case "ble":
			cmpA, cmpB = rt, rs
			br = isa.OpBEQ
		case "bgt":
			cmpA, cmpB = rt, rs
		}
		return []isa.Inst{
			{Op: slt, Rd: isa.AT, Rs: cmpA, Rt: cmpB},
			{Op: br, Rs: isa.AT, Rt: isa.Zero, Imm: tgt},
		}, nil
	case m == "j" || m == "b":
		if err := need(1); err != nil {
			return nil, err
		}
		tgt, err := a.value(it, it.args[0])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJ, Imm: tgt}}, nil
	case m == "jal" || m == "call":
		if err := need(1); err != nil {
			return nil, err
		}
		tgt, err := a.value(it, it.args[0])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJAL, Imm: tgt}}, nil
	case m == "jr":
		if err := need(1); err != nil {
			return nil, err
		}
		rs, err := a.reg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJR, Rs: rs}}, nil
	case m == "jalr":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(it, it.args[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(it, it.args[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJALR, Rd: rd, Rs: rs}}, nil
	case m == "ret":
		if err := need(0); err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJR, Rs: isa.RA}}, nil
	}
	return nil, a.errf(it.line, "unknown mnemonic %q", m)
}
