package asm

import (
	"testing"
)

// TestAssemblyErrors pins the assembler's error paths with exact messages:
// a diagnostic that drifts silently is a diagnostic nobody can grep for.
func TestAssemblyErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "duplicate label",
			src:  "dup:    nop\ndup:    halt\n",
			want: `asm: line 2: duplicate label "dup"`,
		},
		{
			name: "duplicate label across sections",
			src:  "x:      nop\n        .data\nx:      .word 1\n",
			want: `asm: line 3: duplicate label "x"`,
		},
		{
			name: "duplicate func",
			src:  "        .func f\n        ret\n        .func f\n        ret\n",
			want: `asm: line 3: duplicate label "f"`,
		},
		{
			name: "undefined symbol in branch",
			src:  "        beq $t0, $t1, nowhere\n        halt\n",
			want: `asm: line 1: undefined symbol "nowhere"`,
		},
		{
			name: "undefined symbol in la",
			src:  "        la $a0, missing_buf\n        halt\n",
			want: `asm: line 1: undefined symbol "missing_buf"`,
		},
		{
			name: "undefined symbol in data cell",
			src:  "        .data\nptr:    .word8 ghost\n",
			want: `asm: line 2: undefined symbol "ghost"`,
		},
		{
			name: "shift amount too large",
			src:  "        sll $t0, $t0, 64\n        halt\n",
			want: "asm: line 1: sll shift amount 64 out of range 0..63",
		},
		{
			name: "shift amount negative",
			src:  "        sra $t0, $t0, -1\n        halt\n",
			want: "asm: line 1: sra shift amount -1 out of range 0..63",
		},
		{
			name: "byte value out of range",
			src:  "        .data\nb:      .byte 256\n",
			want: "asm: line 2: .byte value 256 out of range -128..255",
		},
		{
			name: "word4 value out of range",
			src:  "        .data\nw:      .word4 4294967296\n",
			want: "asm: line 2: .word4 value 4294967296 out of range -2147483648..4294967295",
		},
		{
			name: "bad string literal",
			src:  "        .data\ns:      .asciiz \"unterminated\n",
			want: `asm: line 2: bad string literal "unterminated`,
		},
		{
			name: "unknown mnemonic",
			src:  "        frobnicate $t0\n",
			want: `asm: line 1: unknown mnemonic "frobnicate"`,
		},
		{
			name: "unknown directive",
			src:  "        .quadword 1\n",
			want: "asm: line 1: unknown directive .quadword",
		},
		{
			name: "syscall takes no operands",
			src:  "        syscall $v0\n",
			want: "asm: line 1: syscall wants 0 operands, got 1",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble(tc.src)
			if err == nil {
				t.Fatalf("Assemble succeeded, want error %q", tc.want)
			}
			if got := err.Error(); got != tc.want {
				t.Fatalf("error = %q, want %q", got, tc.want)
			}
		})
	}
}

// TestAsciizLayout checks the .asciiz byte layout: escapes decoded,
// NUL-terminated, commas inside strings preserved.
func TestAsciizLayout(t *testing.T) {
	p, err := Assemble(`
        halt
        .data
msg:    .asciiz "a,b\n", "#x"
`)
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\x00#x\x00"
	if got := string(p.Data); got != want {
		t.Fatalf("data = %q, want %q", got, want)
	}
	if p.Labels["msg"] != p.DataBase {
		t.Fatalf("msg label = %#x, want data base %#x", p.Labels["msg"], p.DataBase)
	}
}

// TestWordDirective checks that .word emits native 8-byte cells and
// resolves label operands.
func TestWordDirective(t *testing.T) {
	p, err := Assemble(`
main:   halt
        .data
cells:  .word 7, main
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 16 {
		t.Fatalf("data length = %d, want 16", len(p.Data))
	}
	if p.Data[0] != 7 {
		t.Fatalf("first cell = %d, want 7", p.Data[0])
	}
	var addr uint64
	for i := 0; i < 8; i++ {
		addr |= uint64(p.Data[8+i]) << (8 * i)
	}
	if addr != p.CodeBase {
		t.Fatalf("second cell = %#x, want main at %#x", addr, p.CodeBase)
	}
}
