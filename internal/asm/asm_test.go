package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestBasicAssembly(t *testing.T) {
	p, err := Assemble(`
        .func main
main:
        li   $t0, 3
loop:   addi $t0, $t0, -1
        bgtz $t0, loop
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 4 {
		t.Fatalf("code length = %d, want 4", len(p.Code))
	}
	if p.Entry != p.CodeBase {
		t.Fatalf("entry = %x, want %x", p.Entry, p.CodeBase)
	}
	if p.Code[0].Op != isa.OpLI || p.Code[0].Imm != 3 {
		t.Fatalf("li mis-assembled: %v", p.Code[0])
	}
	// bgtz target must resolve to the loop label (second instruction).
	if got := uint64(p.Code[2].Imm); got != p.PCOf(1) {
		t.Fatalf("branch target = %x, want %x", got, p.PCOf(1))
	}
	if len(p.Funcs) != 1 || p.Funcs[0] != p.CodeBase {
		t.Fatalf("functions wrong: %v", p.Funcs)
	}
}

func TestLabelOnSameLine(t *testing.T) {
	p, err := Assemble("main: nop\n      halt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["main"] != p.CodeBase {
		t.Fatalf("inline label not resolved")
	}
}

func TestForwardReferences(t *testing.T) {
	p, err := Assemble(`
        j    end
        nop
end:    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(p.Code[0].Imm) != p.PCOf(2) {
		t.Fatalf("forward jump target wrong")
	}
}

func TestDataDirectives(t *testing.T) {
	p, err := Assemble(`
        halt
        .data
vals:   .word8 1, -2, buf
buf:    .space 16
bytes:  .byte 0xff, 1
words:  .word4 65536
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["vals"] != p.DataBase {
		t.Fatalf("vals at %x", p.Labels["vals"])
	}
	if p.Labels["buf"] != p.DataBase+24 {
		t.Fatalf("buf at %x", p.Labels["buf"])
	}
	// Little-endian cell contents.
	if p.Data[0] != 1 || p.Data[8] != 0xfe || p.Data[15] != 0xff {
		t.Fatalf("word8 encoding wrong: % x", p.Data[:16])
	}
	// Label value stored in the third cell.
	got := uint64(0)
	for i := 0; i < 8; i++ {
		got |= uint64(p.Data[16+i]) << (8 * i)
	}
	if got != p.Labels["buf"] {
		t.Fatalf("label cell = %x, want %x", got, p.Labels["buf"])
	}
	if p.Labels["bytes"] != p.DataBase+40 {
		t.Fatalf("bytes at %x", p.Labels["bytes"])
	}
	if p.Data[40] != 0xff || p.Data[41] != 1 {
		t.Fatalf("byte encoding wrong")
	}
	if p.Data[42] != 0 || p.Data[43] != 0 || p.Data[44] != 1 {
		t.Fatalf("word4 encoding wrong: % x", p.Data[42:46])
	}
}

func TestPseudoInstructions(t *testing.T) {
	p, err := Assemble(`
        move $t0, $t1
        neg  $t2, $t3
        not  $t4, $t5
        b    out
        call out
        ret
out:    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []isa.Op{isa.OpOR, isa.OpSUB, isa.OpNOR, isa.OpJ, isa.OpJAL, isa.OpJR, isa.OpHALT}
	for i, op := range want {
		if p.Code[i].Op != op {
			t.Errorf("instr %d op = %v, want %v", i, p.Code[i].Op, op)
		}
	}
	if p.Code[5].Rs != isa.RA {
		t.Errorf("ret must be jr $ra")
	}
}

func TestSynthesizedBranches(t *testing.T) {
	p, err := Assemble(`
        blt  $t0, $t1, x
        bge  $t0, $t1, x
        ble  $t0, $t1, x
        bgt  $t0, $t1, x
x:      halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 9 { // four 2-instruction expansions + halt
		t.Fatalf("code length = %d, want 9", len(p.Code))
	}
	// blt -> slt $at, t0, t1 ; bne $at, $zero
	if p.Code[0].Op != isa.OpSLT || p.Code[0].Rd != isa.AT || p.Code[1].Op != isa.OpBNE {
		t.Fatalf("blt expansion wrong: %v %v", p.Code[0], p.Code[1])
	}
	// bge -> slt ; beq
	if p.Code[3].Op != isa.OpBEQ {
		t.Fatalf("bge expansion wrong: %v", p.Code[3])
	}
	// ble -> slt(t1,t0) ; beq
	if p.Code[4].Rs != isa.T1 || p.Code[4].Rt != isa.T0 || p.Code[5].Op != isa.OpBEQ {
		t.Fatalf("ble expansion wrong: %v %v", p.Code[4], p.Code[5])
	}
	// The label x must account for expansions (index 8).
	if uint64(p.Code[1].Imm) != p.PCOf(8) {
		t.Fatalf("expanded branch target wrong")
	}
}

func TestJumpTableAnnotation(t *testing.T) {
	p, err := Assemble(`
main:   jr $t0
        .targets a, b
a:      halt
b:      halt
`)
	if err != nil {
		t.Fatal(err)
	}
	ts := p.JumpTargets[p.CodeBase]
	if len(ts) != 2 || ts[0] != p.Labels["a"] || ts[1] != p.Labels["b"] {
		t.Fatalf("jump targets wrong: %v", ts)
	}
}

func TestNegativeMemOffsets(t *testing.T) {
	p, err := Assemble("ld $t0, -8($sp)\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Imm != -8 {
		t.Fatalf("negative offset wrong: %d", p.Code[0].Imm)
	}
}

func TestFuncLabelCoexistence(t *testing.T) {
	// ".func f" followed by "f:" is the common style and must not be a
	// duplicate-label error.
	p, err := Assemble(".func f\nf:      halt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["f"] != p.CodeBase {
		t.Fatalf("label f wrong")
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"bogus $t0":                "unknown mnemonic",
		"add $t0, $t1":             "wants 3 operands",
		"li $t0, undefinedlabel":   "undefined symbol",
		"ld $t0, 8[$sp]":           "expected mem operand",
		"add $t0, $t1, $nope":      "unknown register",
		"x: nop\nx: nop":           "duplicate label",
		".space -1":                "bad .space",
		".targets x\nx: halt":      ".targets without preceding",
		".data\nadd $t0, $t0, $t0": "instruction in .data",
		".weird 1":                 "unknown directive",
	}
	for src, wantSub := range cases {
		_, err := Assemble(src)
		if err == nil {
			t.Errorf("source %q assembled without error", src)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("source %q: error %q does not mention %q", src, err, wantSub)
		}
	}
}

func TestErrorReportsLine(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus\n")
	ae, ok := err.(*Error)
	if !ok || ae.Line != 3 {
		t.Fatalf("error = %v, want line 3", err)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p, err := Assemble(`
# leading comment
        nop   # trailing comment

        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 2 {
		t.Fatalf("code length = %d, want 2", len(p.Code))
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	// Every disassembled instruction of a representative program must
	// re-assemble to the same opcode (targets are absolute, so a full
	// textual round trip needs no labels).
	src := `
        .func main
main:   li   $t0, 10
        add  $t1, $t0, $t0
        sd   $t1, 0($sp)
        ld   $t2, 0($sp)
        beq  $t1, $t2, done
        nop
done:   halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	dis := p.Disassemble()
	if !strings.Contains(dis, "main:") || !strings.Contains(dis, "beq $t1, $t2") {
		t.Fatalf("disassembly missing content:\n%s", dis)
	}
}
