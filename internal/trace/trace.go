// Package trace defines the retired dynamic instruction trace produced by
// the functional emulator, along with the derived indexes the timing model
// and the Task Spawn Unit consume: per-PC occurrence lists (the paper's
// spawn unit "uses a trace to ensure that tasks are not spawned too far into
// the future") and register/memory last-writer dependence information (the
// idealized stand-in for the compiler-generated dependence hints stored in
// the paper's hint cache).
package trace

import (
	"sort"
	"sync"

	"repro/internal/isa"
)

// Entry is one retired instruction.
type Entry struct {
	PC    uint64
	Next  uint64 // PC of the next retired instruction
	Addr  uint64 // effective address for loads/stores
	Op    isa.Op
	Dst   isa.Reg // valid when HasDst
	Srcs  [2]isa.Reg
	NSrc  uint8
	MemW  uint8 // access width in bytes; 0 for non-memory ops
	Flags uint8
}

// Entry flag bits.
const (
	FlagHasDst uint8 = 1 << iota
	FlagLoad
	FlagStore
	FlagCondBranch
	FlagTaken
	FlagCall
	FlagReturn
	FlagIndirect
)

// HasDst reports whether the entry writes a register.
func (e *Entry) HasDst() bool { return e.Flags&FlagHasDst != 0 }

// IsLoad reports whether the entry is a load.
func (e *Entry) IsLoad() bool { return e.Flags&FlagLoad != 0 }

// IsStore reports whether the entry is a store.
func (e *Entry) IsStore() bool { return e.Flags&FlagStore != 0 }

// IsCondBranch reports whether the entry is a conditional branch.
func (e *Entry) IsCondBranch() bool { return e.Flags&FlagCondBranch != 0 }

// Taken reports the resolved direction of a conditional branch (meaningful
// only when IsCondBranch).
func (e *Entry) Taken() bool { return e.Flags&FlagTaken != 0 }

// IsCall reports whether the entry is a procedure call.
func (e *Entry) IsCall() bool { return e.Flags&FlagCall != 0 }

// IsReturn reports whether the entry is a procedure return (jr $ra).
func (e *Entry) IsReturn() bool { return e.Flags&FlagReturn != 0 }

// IsIndirect reports whether the entry is an indirect jump.
func (e *Entry) IsIndirect() bool { return e.Flags&FlagIndirect != 0 }

// Trace is the full retired instruction stream of one program run.
type Trace struct {
	Entries []Entry

	occOnce sync.Once
	occ     map[uint64][]int32
}

// Len returns the number of retired instructions.
func (t *Trace) Len() int { return len(t.Entries) }

// buildIndex constructs the per-PC occurrence index lazily (goroutine-safe:
// experiment sweeps simulate one trace concurrently).
func (t *Trace) buildIndex() {
	t.occOnce.Do(func() {
		t.occ = make(map[uint64][]int32, 1024)
		for i := range t.Entries {
			pc := t.Entries[i].PC
			t.occ[pc] = append(t.occ[pc], int32(i))
		}
	})
}

// NextOccurrence returns the smallest trace index > after at which pc
// retires, or -1 when pc never retires again. This is the oracle the Task
// Spawn Unit uses to place a spawned task on the correct path.
func (t *Trace) NextOccurrence(pc uint64, after int) int {
	t.buildIndex()
	occ := t.occ[pc]
	i := sort.Search(len(occ), func(i int) bool { return int(occ[i]) > after })
	if i == len(occ) {
		return -1
	}
	return int(occ[i])
}

// Occurrences returns every trace index at which pc retires.
func (t *Trace) Occurrences(pc uint64) []int32 {
	t.buildIndex()
	return t.occ[pc]
}

// IndirectTargets collects the observed dynamic targets of every indirect
// jump, keyed by jump PC. The static CFG uses this as profile information
// to resolve jr/jalr successors, exactly as the paper's profile-driven
// postdominator analysis does.
func (t *Trace) IndirectTargets() map[uint64][]uint64 {
	seen := map[uint64]map[uint64]bool{}
	for i := range t.Entries {
		e := &t.Entries[i]
		if !e.IsIndirect() {
			continue
		}
		m := seen[e.PC]
		if m == nil {
			m = map[uint64]bool{}
			seen[e.PC] = m
		}
		m[e.Next] = true
	}
	out := make(map[uint64][]uint64, len(seen))
	for pc, m := range seen {
		ts := make([]uint64, 0, len(m))
		for t := range m {
			ts = append(ts, t)
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		out[pc] = ts
	}
	return out
}

// BranchProfile summarizes one static conditional branch's dynamic behaviour.
type BranchProfile struct {
	Executed int
	Taken    int
}

// BranchProfiles aggregates per-PC conditional branch statistics.
func (t *Trace) BranchProfiles() map[uint64]*BranchProfile {
	out := map[uint64]*BranchProfile{}
	for i := range t.Entries {
		e := &t.Entries[i]
		if !e.IsCondBranch() {
			continue
		}
		p := out[e.PC]
		if p == nil {
			p = &BranchProfile{}
			out[e.PC] = p
		}
		p.Executed++
		if e.Taken() {
			p.Taken++
		}
	}
	return out
}

// Deps holds, for every trace entry, the producing trace index of each of
// its register sources and (for loads) of the most recent overlapping store.
// An index of -1 means the value predates the trace (initial state).
type Deps struct {
	// RegProd[i][k] is the index of the entry that produced entry i's k-th
	// register source (k < NSrc).
	RegProd [][2]int32
	// MemProd[i] is the index of the most recent prior store overlapping a
	// load's bytes, or -1.
	MemProd []int32
}

// ComputeDeps performs the last-writer scan. Memory dependences are tracked
// at byte granularity, so partially overlapping accesses are handled
// exactly.
func (t *Trace) ComputeDeps() *Deps {
	n := len(t.Entries)
	d := &Deps{
		RegProd: make([][2]int32, n),
		MemProd: make([]int32, n),
	}
	var lastReg [isa.NumRegs]int32
	for r := range lastReg {
		lastReg[r] = -1
	}
	lastStore := make(map[uint64]int32, 4096)
	for i := range t.Entries {
		e := &t.Entries[i]
		for k := 0; k < int(e.NSrc); k++ {
			d.RegProd[i][k] = lastReg[e.Srcs[k]]
		}
		d.MemProd[i] = -1
		if e.IsLoad() {
			prod := int32(-1)
			for b := uint64(0); b < uint64(e.MemW); b++ {
				if s, ok := lastStore[e.Addr+b]; ok && s > prod {
					prod = s
				}
			}
			d.MemProd[i] = prod
		}
		if e.IsStore() {
			for b := uint64(0); b < uint64(e.MemW); b++ {
				lastStore[e.Addr+b] = int32(i)
			}
		}
		if e.HasDst() {
			lastReg[e.Dst] = int32(i)
		}
	}
	return d
}
