// Package trace defines the retired dynamic instruction trace produced by
// the functional emulator, along with the derived indexes the timing model
// and the Task Spawn Unit consume: per-PC occurrence lists (the paper's
// spawn unit "uses a trace to ensure that tasks are not spawned too far into
// the future") and register/memory last-writer dependence information (the
// idealized stand-in for the compiler-generated dependence hints stored in
// the paper's hint cache).
package trace

import (
	"sort"
	"sync"

	"repro/internal/isa"
)

// Entry is one retired instruction.
type Entry struct {
	PC    uint64
	Next  uint64 // PC of the next retired instruction
	Addr  uint64 // effective address for loads/stores
	Op    isa.Op
	Dst   isa.Reg // valid when HasDst
	Srcs  [2]isa.Reg
	NSrc  uint8
	MemW  uint8 // access width in bytes; 0 for non-memory ops
	Flags uint8
}

// Entry flag bits.
const (
	FlagHasDst uint8 = 1 << iota
	FlagLoad
	FlagStore
	FlagCondBranch
	FlagTaken
	FlagCall
	FlagReturn
	FlagIndirect
)

// HasDst reports whether the entry writes a register.
func (e *Entry) HasDst() bool { return e.Flags&FlagHasDst != 0 }

// IsLoad reports whether the entry is a load.
func (e *Entry) IsLoad() bool { return e.Flags&FlagLoad != 0 }

// IsStore reports whether the entry is a store.
func (e *Entry) IsStore() bool { return e.Flags&FlagStore != 0 }

// IsCondBranch reports whether the entry is a conditional branch.
func (e *Entry) IsCondBranch() bool { return e.Flags&FlagCondBranch != 0 }

// Taken reports the resolved direction of a conditional branch (meaningful
// only when IsCondBranch).
func (e *Entry) Taken() bool { return e.Flags&FlagTaken != 0 }

// IsCall reports whether the entry is a procedure call.
func (e *Entry) IsCall() bool { return e.Flags&FlagCall != 0 }

// IsReturn reports whether the entry is a procedure return (jr $ra).
func (e *Entry) IsReturn() bool { return e.Flags&FlagReturn != 0 }

// IsIndirect reports whether the entry is an indirect jump.
func (e *Entry) IsIndirect() bool { return e.Flags&FlagIndirect != 0 }

// Trace is the full retired instruction stream of one program run.
type Trace struct {
	Entries []Entry

	occOnce sync.Once
	occ     map[uint64][]int32
}

// Len returns the number of retired instructions.
func (t *Trace) Len() int { return len(t.Entries) }

// buildIndex constructs the per-PC occurrence index lazily (goroutine-safe:
// experiment sweeps simulate one trace concurrently).
func (t *Trace) buildIndex() {
	t.occOnce.Do(func() {
		t.occ = make(map[uint64][]int32, 1024)
		for i := range t.Entries {
			pc := t.Entries[i].PC
			t.occ[pc] = append(t.occ[pc], int32(i))
		}
	})
}

// RestoreIndex installs a precomputed per-PC occurrence index, as decoded
// from a trace-store artifact (internal/tracestore), so a replayed trace
// skips the O(n) rebuild. The caller must pass exactly the index that
// buildIndex would derive from Entries: per-PC ascending occurrence lists.
// It reports whether the index was installed; false means one was already
// built (or restored) and the argument was discarded.
func (t *Trace) RestoreIndex(occ map[uint64][]int32) bool {
	installed := false
	t.occOnce.Do(func() {
		t.occ = occ
		installed = true
	})
	return installed
}

// NextOccurrence returns the smallest trace index > after at which pc
// retires, or -1 when pc never retires again. This is the oracle the Task
// Spawn Unit uses to place a spawned task on the correct path.
func (t *Trace) NextOccurrence(pc uint64, after int) int {
	t.buildIndex()
	occ := t.occ[pc]
	i := sort.Search(len(occ), func(i int) bool { return int(occ[i]) > after })
	if i == len(occ) {
		return -1
	}
	return int(occ[i])
}

// Occurrences returns every trace index at which pc retires.
func (t *Trace) Occurrences(pc uint64) []int32 {
	t.buildIndex()
	return t.occ[pc]
}

// IndirectTargets collects the observed dynamic targets of every indirect
// jump, keyed by jump PC. The static CFG uses this as profile information
// to resolve jr/jalr successors, exactly as the paper's profile-driven
// postdominator analysis does.
func (t *Trace) IndirectTargets() map[uint64][]uint64 {
	seen := map[uint64]map[uint64]bool{}
	for i := range t.Entries {
		e := &t.Entries[i]
		if !e.IsIndirect() {
			continue
		}
		m := seen[e.PC]
		if m == nil {
			m = map[uint64]bool{}
			seen[e.PC] = m
		}
		m[e.Next] = true
	}
	out := make(map[uint64][]uint64, len(seen))
	for pc, m := range seen {
		ts := make([]uint64, 0, len(m))
		for t := range m {
			ts = append(ts, t)
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		out[pc] = ts
	}
	return out
}

// BranchProfile summarizes one static conditional branch's dynamic behaviour.
type BranchProfile struct {
	Executed int
	Taken    int
}

// BranchProfiles aggregates per-PC conditional branch statistics.
func (t *Trace) BranchProfiles() map[uint64]*BranchProfile {
	out := map[uint64]*BranchProfile{}
	for i := range t.Entries {
		e := &t.Entries[i]
		if !e.IsCondBranch() {
			continue
		}
		p := out[e.PC]
		if p == nil {
			p = &BranchProfile{}
			out[e.PC] = p
		}
		p.Executed++
		if e.Taken() {
			p.Taken++
		}
	}
	return out
}

// Deps holds, for every trace entry, the producing trace index of each of
// its register sources and (for loads) of the most recent overlapping store.
// An index of -1 means the value predates the trace (initial state).
type Deps struct {
	// RegProd[i][k] is the index of the entry that produced entry i's k-th
	// register source (k < NSrc).
	RegProd [][2]int32
	// MemProd[i] is the index of the most recent prior store overlapping a
	// load's bytes, or -1.
	MemProd []int32
}

// ComputeDeps performs the last-writer scan. Memory dependences are tracked
// at byte granularity, so partially overlapping accesses are handled
// exactly; the byte table is keyed by 8-byte-aligned words (one probe per
// word spanned instead of one per byte) in an open-addressed flat map.
func (t *Trace) ComputeDeps() *Deps {
	n := len(t.Entries)
	d := &Deps{
		RegProd: make([][2]int32, n),
		MemProd: make([]int32, n),
	}
	var lastReg [isa.NumRegs]int32
	for r := range lastReg {
		lastReg[r] = -1
	}
	ws := newWordStores(4096)
	for i := range t.Entries {
		e := &t.Entries[i]
		for k := 0; k < int(e.NSrc); k++ {
			d.RegProd[i][k] = lastReg[e.Srcs[k]]
		}
		d.MemProd[i] = -1
		if e.IsLoad() {
			d.MemProd[i] = ws.lastOverlapping(e.Addr, uint64(e.MemW))
		}
		if e.IsStore() {
			ws.record(e.Addr, uint64(e.MemW), int32(i))
		}
		if e.HasDst() {
			lastReg[e.Dst] = int32(i)
		}
	}
	return d
}

// wordStores is the last-store-per-byte table behind ComputeDeps: an
// open-addressed (linear probing) hash map from 8-byte-aligned word to the
// per-byte indices of the most recent stores covering that word. Keys are
// word+1 so the zero key can mark empty slots.
type wordStores struct {
	keys []uint64
	vals [][8]int32
	used int
}

func newWordStores(capacity int) *wordStores {
	// Round up to a power of two.
	c := 16
	for c < capacity {
		c <<= 1
	}
	return &wordStores{keys: make([]uint64, c), vals: make([][8]int32, c)}
}

func (w *wordStores) slotOf(key uint64) int {
	mask := uint64(len(w.keys) - 1)
	i := (key * 0x9E3779B97F4A7C15) >> 32 & mask
	for {
		switch w.keys[i] {
		case key:
			return int(i)
		case 0:
			return -1
		}
		i = (i + 1) & mask
	}
}

// ensureSlot returns the slot for key, inserting an all-clear entry (and
// growing the table) if absent.
func (w *wordStores) ensureSlot(key uint64) int {
	if w.used*4 >= len(w.keys)*3 {
		w.grow()
	}
	mask := uint64(len(w.keys) - 1)
	i := (key * 0x9E3779B97F4A7C15) >> 32 & mask
	for w.keys[i] != 0 {
		if w.keys[i] == key {
			return int(i)
		}
		i = (i + 1) & mask
	}
	w.keys[i] = key
	w.vals[i] = [8]int32{-1, -1, -1, -1, -1, -1, -1, -1}
	w.used++
	return int(i)
}

func (w *wordStores) grow() {
	oldKeys, oldVals := w.keys, w.vals
	w.keys = make([]uint64, 2*len(oldKeys))
	w.vals = make([][8]int32, 2*len(oldVals))
	w.used = 0
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		s := w.ensureSlot(k)
		w.vals[s] = oldVals[i]
	}
}

// record marks bytes [addr, addr+width) as last written by store index idx.
func (w *wordStores) record(addr, width uint64, idx int32) {
	if width == 0 {
		return
	}
	for word := addr >> 3; word <= (addr+width-1)>>3; word++ {
		s := w.ensureSlot(word + 1)
		lo, hi := byteSpan(word, addr, width)
		for b := lo; b < hi; b++ {
			w.vals[s][b] = idx
		}
	}
}

// lastOverlapping returns the highest store index covering any byte of
// [addr, addr+width), or -1.
func (w *wordStores) lastOverlapping(addr, width uint64) int32 {
	prod := int32(-1)
	if width == 0 {
		return prod
	}
	for word := addr >> 3; word <= (addr+width-1)>>3; word++ {
		s := w.slotOf(word + 1)
		if s < 0 {
			continue
		}
		lo, hi := byteSpan(word, addr, width)
		for b := lo; b < hi; b++ {
			if v := w.vals[s][b]; v > prod {
				prod = v
			}
		}
	}
	return prod
}

// byteSpan clips the access [addr, addr+width) to word's 8 bytes, returning
// in-word byte offsets.
func byteSpan(word, addr, width uint64) (lo, hi uint64) {
	base := word << 3
	lo, hi = 0, 8
	if addr > base {
		lo = addr - base
	}
	if end := addr + width; end < base+8 {
		hi = end - base
	}
	return lo, hi
}
