package trace

import (
	"testing"

	"repro/internal/isa"
)

// mkEntry helpers build small synthetic traces directly.
func alu(pc uint64, dst isa.Reg, srcs ...isa.Reg) Entry {
	e := Entry{PC: pc, Op: isa.OpADD, Dst: dst, Flags: FlagHasDst}
	for i, s := range srcs {
		e.Srcs[i] = s
	}
	e.NSrc = uint8(len(srcs))
	return e
}

func load(pc, addr uint64, w uint8, dst isa.Reg, base isa.Reg) Entry {
	return Entry{PC: pc, Op: isa.OpLD, Addr: addr, MemW: w, Dst: dst,
		Srcs: [2]isa.Reg{base}, NSrc: 1, Flags: FlagHasDst | FlagLoad}
}

func store(pc, addr uint64, w uint8, val, base isa.Reg) Entry {
	return Entry{PC: pc, Op: isa.OpSD, Addr: addr, MemW: w,
		Srcs: [2]isa.Reg{base, val}, NSrc: 2, Flags: FlagStore}
}

func branch(pc uint64, taken bool, next uint64) Entry {
	e := Entry{PC: pc, Op: isa.OpBNE, Next: next, Flags: FlagCondBranch}
	if taken {
		e.Flags |= FlagTaken
	}
	return e
}

func TestFlags(t *testing.T) {
	e := Entry{Flags: FlagHasDst | FlagLoad | FlagTaken | FlagCondBranch | FlagCall | FlagReturn | FlagIndirect}
	if !e.HasDst() || !e.IsLoad() || !e.Taken() || !e.IsCondBranch() ||
		!e.IsCall() || !e.IsReturn() || !e.IsIndirect() {
		t.Fatalf("flag accessors wrong")
	}
	var zero Entry
	if zero.IsStore() {
		t.Fatalf("zero entry claims to store")
	}
}

func TestNextOccurrence(t *testing.T) {
	tr := &Trace{Entries: []Entry{
		{PC: 0x100}, {PC: 0x104}, {PC: 0x100}, {PC: 0x108}, {PC: 0x100},
	}}
	if got := tr.NextOccurrence(0x100, 0); got != 2 {
		t.Fatalf("NextOccurrence = %d, want 2", got)
	}
	if got := tr.NextOccurrence(0x100, 2); got != 4 {
		t.Fatalf("NextOccurrence = %d, want 4", got)
	}
	if got := tr.NextOccurrence(0x100, 4); got != -1 {
		t.Fatalf("NextOccurrence past last = %d, want -1", got)
	}
	if got := tr.NextOccurrence(0x999, 0); got != -1 {
		t.Fatalf("NextOccurrence of absent PC = %d, want -1", got)
	}
	// after=-1 includes index 0.
	if got := tr.NextOccurrence(0x100, -1); got != 0 {
		t.Fatalf("NextOccurrence from -1 = %d, want 0", got)
	}
	if occ := tr.Occurrences(0x100); len(occ) != 3 {
		t.Fatalf("Occurrences = %v", occ)
	}
}

func TestRegisterDeps(t *testing.T) {
	tr := &Trace{Entries: []Entry{
		alu(0x100, isa.T0),                 // 0: writes t0
		alu(0x104, isa.T1, isa.T0),         // 1: reads t0 (from 0)
		alu(0x108, isa.T0, isa.T1),         // 2: reads t1 (from 1), rewrites t0
		alu(0x10c, isa.T2, isa.T0, isa.T1), // 3: t0 from 2, t1 from 1
		alu(0x110, isa.T3, isa.T4),         // 4: t4 never written -> -1
	}}
	d := tr.ComputeDeps()
	if d.RegProd[1][0] != 0 {
		t.Fatalf("dep 1.t0 = %d, want 0", d.RegProd[1][0])
	}
	if d.RegProd[2][0] != 1 {
		t.Fatalf("dep 2.t1 = %d, want 1", d.RegProd[2][0])
	}
	if d.RegProd[3][0] != 2 || d.RegProd[3][1] != 1 {
		t.Fatalf("dep 3 = %v, want [2 1]", d.RegProd[3])
	}
	if d.RegProd[4][0] != -1 {
		t.Fatalf("dep on initial state must be -1")
	}
}

func TestMemoryDeps(t *testing.T) {
	tr := &Trace{Entries: []Entry{
		store(0x100, 0x1000, 8, isa.T0, isa.SP), // 0
		load(0x104, 0x1000, 8, isa.T1, isa.SP),  // 1: exact overlap -> 0
		load(0x108, 0x1004, 4, isa.T2, isa.SP),  // 2: partial overlap -> 0
		load(0x10c, 0x1008, 8, isa.T3, isa.SP),  // 3: adjacent, no overlap -> -1
		store(0x110, 0x1004, 1, isa.T0, isa.SP), // 4: overwrites one byte
		load(0x114, 0x1000, 8, isa.T4, isa.SP),  // 5: youngest overlapping store = 4
	}}
	d := tr.ComputeDeps()
	if d.MemProd[1] != 0 || d.MemProd[2] != 0 {
		t.Fatalf("overlapping loads wrong: %d %d", d.MemProd[1], d.MemProd[2])
	}
	if d.MemProd[3] != -1 {
		t.Fatalf("non-overlapping load = %d, want -1", d.MemProd[3])
	}
	if d.MemProd[5] != 4 {
		t.Fatalf("youngest overlapping store = %d, want 4", d.MemProd[5])
	}
	// Stores have no MemProd.
	if d.MemProd[0] != -1 || d.MemProd[4] != -1 {
		t.Fatalf("stores must have MemProd -1")
	}
}

func TestBranchProfiles(t *testing.T) {
	tr := &Trace{Entries: []Entry{
		branch(0x100, true, 0x200),
		branch(0x100, false, 0x104),
		branch(0x100, true, 0x200),
		branch(0x104, false, 0x108),
	}}
	p := tr.BranchProfiles()
	if p[0x100].Executed != 3 || p[0x100].Taken != 2 {
		t.Fatalf("profile 0x100 = %+v", p[0x100])
	}
	if p[0x104].Executed != 1 || p[0x104].Taken != 0 {
		t.Fatalf("profile 0x104 = %+v", p[0x104])
	}
}

func TestIndirectTargets(t *testing.T) {
	jr := Entry{PC: 0x100, Op: isa.OpJR, Next: 0x300, Flags: FlagIndirect}
	jr2 := jr
	jr2.Next = 0x200
	ret := Entry{PC: 0x104, Op: isa.OpJR, Next: 0x400, Flags: FlagIndirect | FlagReturn}
	tr := &Trace{Entries: []Entry{jr, jr2, jr, ret}}
	ts := tr.IndirectTargets()
	if got := ts[0x100]; len(got) != 2 || got[0] != 0x200 || got[1] != 0x300 {
		t.Fatalf("indirect targets = %v", got)
	}
	// Returns are indirect too and legitimately recorded; the CFG builder
	// ignores them, but the profile keeps them.
	if _, ok := ts[0x104]; !ok {
		t.Fatalf("return targets missing from profile")
	}
}

// TestMemoryDepsMatchesByteMapReference: the word-keyed open-addressed table
// behind ComputeDeps must agree exactly with a naive per-byte map over a
// randomized mix of widths, overlaps, and word-straddling accesses.
func TestMemoryDepsMatchesByteMapReference(t *testing.T) {
	// Deterministic xorshift so the test is reproducible.
	state := uint64(0x9E3779B97F4A7C15)
	rnd := func(n uint64) uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state % n
	}
	widths := []uint8{1, 2, 4, 8}
	var entries []Entry
	for i := 0; i < 20000; i++ {
		// Addresses cluster in a 1KB region with odd offsets so accesses
		// frequently straddle 8-byte word boundaries and partially overlap.
		addr := 0x100000 + rnd(1024)
		w := widths[rnd(4)]
		if rnd(2) == 0 {
			entries = append(entries, store(0x100, addr, w, isa.T0, isa.SP))
		} else {
			entries = append(entries, load(0x104, addr, w, isa.T1, isa.SP))
		}
	}
	tr := &Trace{Entries: entries}
	d := tr.ComputeDeps()

	lastByte := map[uint64]int32{} // reference: last store index per byte
	for i := range entries {
		e := &entries[i]
		if e.IsLoad() {
			want := int32(-1)
			for b := e.Addr; b < e.Addr+uint64(e.MemW); b++ {
				if v, ok := lastByte[b]; ok && v > want {
					want = v
				}
			}
			if d.MemProd[i] != want {
				t.Fatalf("entry %d (addr %#x width %d): MemProd=%d, reference=%d",
					i, e.Addr, e.MemW, d.MemProd[i], want)
			}
		}
		if e.IsStore() {
			for b := e.Addr; b < e.Addr+uint64(e.MemW); b++ {
				lastByte[b] = int32(i)
			}
		}
	}
}
