package tune

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Schema identifies the trajectory JSON layout. Bump on incompatible
// change; readers reject mismatched schemas instead of misreading them.
const Schema = "polyflow-tune/1"

// Step is one evaluation in a search: the candidate mask tried, the cycle
// count it produced, and whether it became the new incumbent. Step 0 (round
// 0, empty mask) is the baseline. CacheHit records whether the artifact
// cache already held the run — it is environmental, says nothing about the
// search's decisions, and is excluded from trajectory comparisons.
type Step struct {
	Round    int    `json:"round"`
	Site     string `json:"site,omitempty"` // the site toggled on top of the incumbent
	Mask     string `json:"mask"`           // full candidate mask, canonical encoding
	Cycles   int64  `json:"cycles"`
	Accepted bool   `json:"accepted,omitempty"`
	CacheHit bool   `json:"cache_hit,omitempty"`
}

// Trajectory is the full record of one search: its inputs (so a replay can
// rerun it), every evaluation in order, and the final verdict. Serialized
// deterministically, it is the unit of golden testing: two searches with
// the same inputs against the same simulator must produce byte-identical
// trajectories up to cache hits.
type Trajectory struct {
	Schema  string `json:"schema"`
	Bench   string `json:"bench"`
	Policy  string `json:"policy"`
	Seed    uint64 `json:"seed"`
	Rounds  int    `json:"rounds"`
	TopK    int    `json:"top_k"`
	Explore int    `json:"explore,omitempty"`
	MinGain int64  `json:"min_gain,omitempty"`

	BaselineCycles int64  `json:"baseline_cycles"`
	BestMask       string `json:"best_mask"`
	BestCycles     int64  `json:"best_cycles"`

	Steps []Step `json:"steps"`
}

// GainPct is the headline number: percent cycles saved over the baseline.
func (t *Trajectory) GainPct() float64 {
	if t.BaselineCycles == 0 {
		return 0
	}
	return (1 - float64(t.BestCycles)/float64(t.BaselineCycles)) * 100
}

// WriteJSON serializes the trajectory deterministically (indented JSON over
// fixed struct fields) with a trailing newline.
func (t *Trajectory) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile writes the trajectory to path.
func (t *Trajectory) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTrajectory parses a trajectory and checks its schema.
func ReadTrajectory(r io.Reader) (*Trajectory, error) {
	var t Trajectory
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("tune: parsing trajectory: %w", err)
	}
	if t.Schema != Schema {
		return nil, fmt.Errorf("tune: trajectory schema %q, want %q", t.Schema, Schema)
	}
	return &t, nil
}

// ReadTrajectoryFile reads a trajectory from path.
func ReadTrajectoryFile(path string) (*Trajectory, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrajectory(f)
}

// Diff is the semantic comparison of two trajectories. Cache hits are
// deliberately ignored: whether a run was replayed from the artifact cache
// is a property of the environment, not of the search.
type Diff struct {
	// Lines describe each difference, old -> new.
	Lines []string
	// OldBest and NewBest are the final cycle counts.
	OldBest, NewBest int64
}

// Changed reports whether the trajectories differ semantically.
func (d Diff) Changed() bool { return len(d.Lines) > 0 }

// Regressed reports whether the new trajectory's final cycle count is
// worse than the old one's — the CI gate condition.
func (d Diff) Regressed() bool { return d.NewBest > d.OldBest }

// Compare diffs two trajectories field by field, excluding cache hits.
func Compare(old, new *Trajectory) Diff {
	d := Diff{OldBest: old.BestCycles, NewBest: new.BestCycles}
	add := func(format string, args ...any) {
		d.Lines = append(d.Lines, fmt.Sprintf(format, args...))
	}
	scalar := func(name string, o, n any) {
		if o != n {
			add("%s: %v -> %v", name, o, n)
		}
	}
	scalar("bench", old.Bench, new.Bench)
	scalar("policy", old.Policy, new.Policy)
	scalar("seed", old.Seed, new.Seed)
	scalar("rounds", old.Rounds, new.Rounds)
	scalar("top_k", old.TopK, new.TopK)
	scalar("explore", old.Explore, new.Explore)
	scalar("min_gain", old.MinGain, new.MinGain)
	scalar("baseline_cycles", old.BaselineCycles, new.BaselineCycles)
	scalar("best_mask", old.BestMask, new.BestMask)
	scalar("best_cycles", old.BestCycles, new.BestCycles)
	n := len(old.Steps)
	if len(new.Steps) != n {
		add("steps: %d -> %d", len(old.Steps), len(new.Steps))
		if len(new.Steps) < n {
			n = len(new.Steps)
		}
	}
	for i := 0; i < n; i++ {
		o, w := old.Steps[i], new.Steps[i]
		o.CacheHit, w.CacheHit = false, false
		if o != w {
			add("step %d: %+v -> %+v", i, o, w)
		}
	}
	return d
}
