package tune

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro"
	"repro/internal/artifact"
	"repro/internal/jobqueue"
	"repro/internal/machine"
)

// tuneSrc is a small program with several distinct spawn-site kinds: an
// outer counted loop over a data-dependent hammock, plus a leaf procedure.
// Its postdominator analysis yields enough sites for the search to rank.
const tuneSrc = `
        li   $t9, 800
loop:   andi $t0, $t9, 7
        beq  $t0, $zero, els
        addi $s0, $s0, 1
        add  $s1, $s1, $s0
        j    join
els:    jal  leaf
join:   addi $t9, $t9, -1
        bgtz $t9, loop
        halt
leaf:   addi $s2, $s2, 2
        xor  $s3, $s2, $s0
        jr   $ra
`

func prepBench(t *testing.T) *speculate.Bench {
	t.Helper()
	p, err := speculate.Assemble(tuneSrc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := speculate.Prepare("tunebench", p, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// Give the ad-hoc bench a cache identity so evaluator caching engages.
	b.SourceSHA = artifact.SourceSHA(tuneSrc)
	return b
}

func newCache(t *testing.T) *artifact.Cache {
	t.Helper()
	c, err := artifact.New(artifact.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSearchDeterministicAndNeverWorse(t *testing.T) {
	b := prepBench(t)
	opts := Options{Bench: b.Name, Policy: "postdoms", Seed: 7, Rounds: 3, TopK: 2}

	run := func() *Trajectory {
		ev := &LocalEvaluator{Bench: b, Policy: "postdoms", Cache: newCache(t)}
		traj, err := Search(context.Background(), ev, opts)
		if err != nil {
			t.Fatal(err)
		}
		return traj
	}
	t1, t2 := run(), run()

	if t1.BestCycles > t1.BaselineCycles {
		t.Fatalf("search made things worse: best %d > baseline %d", t1.BestCycles, t1.BaselineCycles)
	}
	if len(t1.Steps) == 0 || t1.Steps[0].Round != 0 || t1.Steps[0].Mask != "" || !t1.Steps[0].Accepted {
		t.Fatalf("step 0 is not the baseline incumbent: %+v", t1.Steps)
	}
	if d := Compare(t1, t2); d.Changed() {
		t.Fatalf("same inputs, different trajectories:\n%s", strings.Join(d.Lines, "\n"))
	}
	// Byte-level determinism of the serialized form (cache hits aside: the
	// two runs used separate cold caches, so hit flags agree too).
	var b1, b2 bytes.Buffer
	if err := t1.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := t2.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("serialized trajectories differ:\n%s\nvs\n%s", b1.String(), b2.String())
	}
}

func TestSearchSeedOnlyMattersWhenExploring(t *testing.T) {
	b := prepBench(t)
	ev := &LocalEvaluator{Bench: b, Policy: "postdoms", Cache: newCache(t)}
	run := func(seed uint64, explore int) *Trajectory {
		traj, err := Search(context.Background(), ev,
			Options{Bench: b.Name, Policy: "postdoms", Seed: seed, Rounds: 2, TopK: 1, Explore: explore})
		if err != nil {
			t.Fatal(err)
		}
		return traj
	}
	a, c := run(11, 0), run(97, 0)
	// Seed is embedded in the trajectory header; mask steps must agree.
	a.Seed, c.Seed = 0, 0
	if d := Compare(a, c); d.Changed() {
		t.Fatalf("Explore=0 search depended on the seed:\n%s", strings.Join(d.Lines, "\n"))
	}
}

func TestEvaluatorCacheIdentity(t *testing.T) {
	b := prepBench(t)
	cache := newCache(t)
	ev := &LocalEvaluator{Bench: b, Policy: "postdoms", Cache: cache}
	ctx := context.Background()

	mask := machine.NewSpawnMask()
	for _, sp := range b.Analysis.Spawns {
		mask.Add(sp.From, uint8(sp.Kind))
		break
	}
	if mask.Len() == 0 {
		t.Fatal("fixture has no spawn sites")
	}

	// Same mask twice: the second evaluation must be a cache hit (no
	// second simulation), and must decode to the identical result.
	o1, err := ev.Evaluate(ctx, mask)
	if err != nil {
		t.Fatal(err)
	}
	if o1.CacheHit {
		t.Fatal("first evaluation reported a cache hit on a cold cache")
	}
	o2, err := ev.Evaluate(ctx, mask)
	if err != nil {
		t.Fatal(err)
	}
	if !o2.CacheHit {
		t.Fatal("second evaluation of the same mask missed the cache")
	}
	if !reflect.DeepEqual(o1.Result, o2.Result) {
		t.Fatalf("cached result differs: %+v vs %+v", o1.Result, o2.Result)
	}

	// Distinct masks must never collide: their sim keys differ, and
	// evaluating a different mask is a miss.
	cfg1 := machine.PolyFlowConfig()
	cfg1.SpawnMask = mask
	cfg2 := machine.PolyFlowConfig()
	cfg2.SpawnMask = mask.With(0xdead0, 0)
	k1, err := artifact.NewSimKey(b.Name, b.SourceSHA, b.MaxInstrs, "postdoms", cfg1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := artifact.NewSimKey(b.Name, b.SourceSHA, b.MaxInstrs, "postdoms", cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if k1.Hash() == k2.Hash() {
		t.Fatal("distinct masks share a cache identity")
	}
	o3, err := ev.Evaluate(ctx, mask.With(0xdead0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if o3.CacheHit {
		t.Fatal("a never-evaluated mask hit the cache")
	}
}

func TestEvaluatorOnPool(t *testing.T) {
	b := prepBench(t)
	pool := jobqueue.New(jobqueue.Config{Workers: 2})
	defer func() {
		pool.Drain(context.Background())
		pool.Close()
	}()
	direct := &LocalEvaluator{Bench: b, Policy: "postdoms"}
	pooled := &LocalEvaluator{Bench: b, Policy: "postdoms", Pool: pool}

	want, err := direct.Evaluate(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pooled.Evaluate(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Result, got.Result) {
		t.Fatalf("pooled evaluation differs from direct: %+v vs %+v", want.Result, got.Result)
	}
}

func TestTrajectoryRoundTripAndSchema(t *testing.T) {
	traj := &Trajectory{
		Schema: Schema, Bench: "gzip", Policy: "postdoms",
		Seed: 3, Rounds: 2, TopK: 2,
		BaselineCycles: 1000, BestMask: "0x40:loop", BestCycles: 900,
		Steps: []Step{
			{Round: 0, Mask: "", Cycles: 1000, Accepted: true},
			{Round: 1, Site: "0x40:loop", Mask: "0x40:loop", Cycles: 900, Accepted: true, CacheHit: true},
		},
	}
	path := filepath.Join(t.TempDir(), "t.json")
	if err := traj.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrajectoryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d := Compare(traj, back); d.Changed() {
		t.Fatalf("round trip changed the trajectory:\n%s", strings.Join(d.Lines, "\n"))
	}
	if _, err := ReadTrajectory(strings.NewReader(`{"schema":"bogus/9"}`)); err == nil {
		t.Fatal("bad schema accepted")
	}
}

func TestCompareIgnoresCacheHitsAndFlagsRegressions(t *testing.T) {
	a := &Trajectory{
		Schema: Schema, Bench: "gzip", Policy: "postdoms",
		BaselineCycles: 1000, BestMask: "0x40:loop", BestCycles: 900,
		Steps: []Step{{Round: 0, Cycles: 1000, Accepted: true, CacheHit: false}},
	}
	b := *a
	b.Steps = []Step{{Round: 0, Cycles: 1000, Accepted: true, CacheHit: true}}
	if d := Compare(a, &b); d.Changed() {
		t.Fatalf("cache-hit-only difference reported as a change: %v", d.Lines)
	}
	if Compare(a, &b).Regressed() {
		t.Fatal("equal best cycles flagged as regression")
	}

	worse := *a
	worse.BestCycles = 950
	d := Compare(a, &worse)
	if !d.Changed() || !d.Regressed() {
		t.Fatalf("regression not flagged: changed=%v regressed=%v", d.Changed(), d.Regressed())
	}
	better := *a
	better.BestCycles = 850
	if Compare(a, &better).Regressed() {
		t.Fatal("improvement flagged as regression")
	}
}

func TestPickCandidatesExploreDrawsDeterministically(t *testing.T) {
	ranked := []site{
		{pc: 0x10, kind: 0, wasted: 100},
		{pc: 0x20, kind: 0, wasted: 90},
		{pc: 0x30, kind: 1, wasted: 80},
		{pc: 0x40, kind: 2, wasted: 70},
		{pc: 0x50, kind: 3, wasted: 60},
	}
	o := &Options{TopK: 2, Explore: 2, Seed: 42}
	a := pickCandidates(ranked, o, 1)
	b := pickCandidates(ranked, o, 1)
	if len(a) != 4 {
		t.Fatalf("want 2 top + 2 explore candidates, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("exploration draw not deterministic: %v vs %v", a, b)
		}
	}
	// Top-K prefix is the ranking; explore picks come from the remainder.
	if a[0].pc != 0x10 || a[1].pc != 0x20 {
		t.Fatalf("top-K prefix wrong: %v", a)
	}
	seen := map[uint64]bool{}
	for _, c := range a {
		if seen[c.pc] {
			t.Fatalf("candidate drawn twice: %v", a)
		}
		seen[c.pc] = true
	}
}
