// Package tune searches for per-site spawn-mask configurations that beat a
// policy's default spawn behavior. The attribution loop closes here: a run's
// per-site report (internal/attrib) ranks spawn sites by wasted cycles, the
// search proposes suppressing the worst offenders (machine.Config.SpawnMask),
// and every candidate is evaluated as a normal simulation — locally through
// the artifact cache or remotely through a polyflowd daemon — so repeated
// candidates are deduplicated by content address, never resimulated.
//
// The search itself is deterministic: candidates are ranked by observed
// wasted cycles (ties broken by PC, then kind), and acceptance is a strict
// cycle-count improvement. The seed only matters when Options.Explore adds
// extra pseudo-randomly drawn candidates per round; with Explore = 0 every
// seed produces the identical trajectory. See docs/TUNING.md.
package tune

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro"
	"repro/internal/artifact"
	"repro/internal/attrib"
	"repro/internal/jobqueue"
	"repro/internal/machine"
	"repro/internal/server"
)

// Outcome is one candidate's evaluation: the simulation result, the
// per-site attribution report that seeds the next round's ranking, and
// whether the artifact cache (local or the daemon's) already held it.
type Outcome struct {
	Result   machine.Result
	Report   *attrib.Report
	CacheHit bool
}

// Evaluator runs one simulation of the tuned (bench, policy) pair under a
// candidate spawn mask. A nil mask is the unsuppressed baseline.
type Evaluator interface {
	Evaluate(ctx context.Context, mask *machine.SpawnMask) (Outcome, error)
}

// LocalEvaluator simulates in-process, mirroring the polyflowd compute
// path: attribution is always attached and verified, and results are
// memoized in the artifact cache when one is configured and the bench is
// cacheable (registered workloads are; ad-hoc benches without a SourceSHA
// run uncached).
type LocalEvaluator struct {
	Bench  *speculate.Bench
	Policy string
	// Cache, when non-nil, memoizes evaluations under the same
	// content-addressed identity the daemon and the harness use — a tuning
	// run against a warm cache replays instead of resimulating.
	Cache *artifact.Cache
	// Pool, when non-nil, runs each evaluation as a jobqueue job so tuning
	// shares the scheduling discipline (and worker bound) of served
	// traffic. A full queue is waited out, not an error.
	Pool *jobqueue.Pool
}

// Evaluate runs one candidate. The config is the canonical PolyFlow
// configuration — the same one polyflowd and the harness grids use — so
// cache identities line up across all three entry points.
func (e *LocalEvaluator) Evaluate(ctx context.Context, mask *machine.SpawnMask) (Outcome, error) {
	if e.Pool != nil {
		return e.evaluateOnPool(ctx, mask)
	}
	return e.evaluate(ctx, mask)
}

func (e *LocalEvaluator) evaluate(ctx context.Context, mask *machine.SpawnMask) (Outcome, error) {
	baseCfg := machine.PolyFlowConfig()
	baseCfg.SpawnMask = mask

	// The compute closure mirrors polyflowd's: the same key is embedded in
	// the artifact, so a tuning run and a served job against a shared cache
	// directory produce byte-identical entries.
	key, keyErr := artifact.NewSimKey(e.Bench.Name, e.Bench.SourceSHA, e.Bench.MaxInstrs, e.Policy, baseCfg)
	if keyErr != nil && !errors.Is(keyErr, artifact.ErrUncacheable) {
		return Outcome{}, keyErr
	}
	compute := func(ctx context.Context) ([]byte, error) {
		cfg := baseCfg
		tbl := attrib.NewTable()
		cfg.Attribution = tbl
		res, err := e.Bench.RunNamedContext(ctx, e.Policy, cfg)
		if err != nil {
			return nil, err
		}
		if err := machine.VerifyAttribution(tbl, res); err != nil {
			return nil, err
		}
		rep := attrib.NewReport(tbl, e.Bench.Name, e.Policy, res.Config, res.Cycles, res.Retired)
		return artifact.EncodeSim(&artifact.SimArtifact{Key: key, Result: res, Attrib: rep})
	}

	var (
		data []byte
		hit  bool
		err  error
	)
	if e.Cache != nil && keyErr == nil {
		data, hit, err = e.Cache.GetOrCompute(ctx, key.Hash(), compute)
	} else {
		// Ad-hoc benches without a SourceSHA are uncacheable: plain run.
		data, err = compute(ctx)
	}
	if err != nil {
		return Outcome{}, err
	}
	art, err := artifact.DecodeSim(data)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Result: art.Result, Report: art.Attrib, CacheHit: hit}, nil
}

// evaluateOnPool wraps the evaluation in a jobqueue job. ErrQueueFull is
// backpressure, not failure: the submission is retried until accepted.
func (e *LocalEvaluator) evaluateOnPool(ctx context.Context, mask *machine.SpawnMask) (Outcome, error) {
	var out Outcome
	job := jobqueue.Job{
		ID: fmt.Sprintf("tune/%s/%s[%s]", e.Bench.Name, e.Policy, mask.Encode()),
		Fn: func(ctx context.Context) error {
			var err error
			out, err = e.evaluate(ctx, mask)
			return err
		},
	}
	for {
		h, err := e.Pool.Submit(job)
		if err == nil {
			if werr := h.Wait(ctx); werr != nil {
				return Outcome{}, werr
			}
			return out, nil
		}
		if !errors.Is(err, jobqueue.ErrQueueFull) {
			return Outcome{}, err
		}
		select {
		case <-ctx.Done():
			return Outcome{}, ctx.Err()
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// RemoteEvaluator drives a polyflowd daemon (or, transparently, a cluster
// coordinator — the coordinator forwards the request wholesale). Cache
// hits come from the daemon's terminal job status, so a warm daemon
// serves a whole tuning round without resimulating.
type RemoteEvaluator struct {
	Client *server.Client
	Bench  string
	Policy string
	// Poll is the status poll interval while waiting; <= 0 selects 150ms.
	Poll time.Duration
}

// Evaluate submits the candidate as a daemon job and waits it out. A full
// queue (HTTP 429) is waited out like local backpressure.
func (e *RemoteEvaluator) Evaluate(ctx context.Context, mask *machine.SpawnMask) (Outcome, error) {
	req := server.Request{Bench: e.Bench, Policy: e.Policy}
	if mask.Len() > 0 {
		req.SpawnMask = mask.Encode()
	}
	poll := e.Poll
	if poll <= 0 {
		poll = 150 * time.Millisecond
	}

	var st server.Status
	for {
		var code int
		var err error
		st, code, err = e.Client.Submit(ctx, req)
		if err == nil {
			break
		}
		if code != http.StatusTooManyRequests {
			return Outcome{}, fmt.Errorf("tune: submitting %s/%s: %w", e.Bench, e.Policy, err)
		}
		select {
		case <-ctx.Done():
			return Outcome{}, ctx.Err()
		case <-time.After(poll):
		}
	}

	st, err := e.Client.Wait(ctx, st.ID, poll)
	if err != nil {
		return Outcome{}, err
	}
	if st.State != "succeeded" {
		return Outcome{}, fmt.Errorf("tune: job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	data, err := e.Client.ResultBytes(ctx, st.ID)
	if err != nil {
		return Outcome{}, err
	}
	art, err := artifact.DecodeSim(data)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Result: art.Result, Report: art.Attrib, CacheHit: st.CacheHit}, nil
}
