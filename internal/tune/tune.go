package tune

import (
	"context"
	"fmt"
	"log/slog"
	"sort"

	"repro/internal/attrib"
	"repro/internal/machine"
)

// Options parameterize a Search. Bench and Policy label the trajectory
// (the Evaluator already binds them); the rest shape the search.
type Options struct {
	Bench  string
	Policy string
	// Seed feeds the exploration draw. With Explore == 0 the search never
	// consults it and every seed yields the identical trajectory.
	Seed uint64
	// Rounds bounds accepted suppressions (one per round); <= 0 selects 8.
	Rounds int
	// TopK is how many worst-offender sites are tried per round; <= 0
	// selects 4.
	TopK int
	// Explore adds this many extra candidate sites per round, drawn
	// pseudo-randomly (seeded) from the remaining ranked sites beyond the
	// top K. Zero keeps the search fully deterministic.
	Explore int
	// MinGain is the cycle improvement a candidate must deliver to be
	// accepted; <= 0 selects 1 (any strict improvement).
	MinGain int64
	// Log, when non-nil, receives one line per evaluation.
	Log func(format string, args ...any)
	// Logger, when non-nil, additionally receives the same trajectory as
	// structured records (bench/policy/round/mask/cycles attributes) — the
	// service-stack form of Log. Either or both may be set.
	Logger *slog.Logger
}

func (o *Options) fill() {
	if o.Rounds <= 0 {
		o.Rounds = 8
	}
	if o.TopK <= 0 {
		o.TopK = 4
	}
	if o.MinGain <= 0 {
		o.MinGain = 1
	}
}

func (o *Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
	if o.Logger != nil {
		o.Logger.Info(fmt.Sprintf(format, args...),
			"component", "tune", "bench", o.Bench, "policy", o.Policy)
	}
}

// site is one maskable spawn site pulled out of a report.
type site struct {
	pc     uint64
	kind   uint8
	wasted int64
}

func (s site) String() string {
	return fmt.Sprintf("0x%x:%s", s.pc, attrib.KindName(s.kind))
}

// rankSites orders a report's spawn sites by wasted cycles, worst first,
// ties broken by (PC, kind) so the ranking is total and deterministic.
// Sites already in the mask, the root pseudo-site, and sites that wasted
// nothing are excluded — suppressing a site with zero waste can only
// remove useful work.
func rankSites(rep *attrib.Report, mask *machine.SpawnMask) []site {
	var out []site
	for i := range rep.Sites {
		s := &rep.Sites[i]
		kind, ok := attrib.KindByName(s.Kind)
		if !ok || kind == attrib.Root {
			continue
		}
		pc := s.PCValue()
		if mask.Contains(pc, kind) || s.WastedCycles <= 0 {
			continue
		}
		out = append(out, site{pc: pc, kind: kind, wasted: s.WastedCycles})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].wasted != out[j].wasted {
			return out[i].wasted > out[j].wasted
		}
		if out[i].pc != out[j].pc {
			return out[i].pc < out[j].pc
		}
		return out[i].kind < out[j].kind
	})
	return out
}

// splitmix64 is the exploration PRNG: tiny, seedable, and stable across
// Go releases (unlike math/rand's generator, whose stream is only pinned
// per major version). Determinism of recorded trajectories depends on it.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// pickCandidates selects this round's candidate sites: the top K by waste,
// plus Explore extra sites drawn without replacement from the remainder
// using the seeded PRNG. Order within the returned slice is the evaluation
// (and tie-breaking) order.
func pickCandidates(ranked []site, o *Options, round int) []site {
	k := o.TopK
	if k > len(ranked) {
		k = len(ranked)
	}
	cands := append([]site(nil), ranked[:k]...)
	if o.Explore > 0 && k < len(ranked) {
		rest := append([]site(nil), ranked[k:]...)
		state := splitmix64(o.Seed ^ uint64(round)*0x9e3779b97f4a7c15)
		for i := 0; i < o.Explore && len(rest) > 0; i++ {
			state = splitmix64(state)
			j := int(state % uint64(len(rest)))
			cands = append(cands, rest[j])
			rest = append(rest[:j], rest[j+1:]...)
		}
	}
	return cands
}

// Search runs the greedy per-site suppression search: evaluate the
// baseline, rank sites by wasted cycles, try suppressing each candidate on
// top of the current mask, accept the best candidate if it strictly
// improves the cycle count, and repeat until no candidate helps or the
// round budget is spent. Every evaluation is recorded in the returned
// trajectory, including rejected candidates, so a replay can verify the
// full decision sequence.
func Search(ctx context.Context, ev Evaluator, o Options) (*Trajectory, error) {
	o.fill()
	traj := &Trajectory{
		Schema:  Schema,
		Bench:   o.Bench,
		Policy:  o.Policy,
		Seed:    o.Seed,
		Rounds:  o.Rounds,
		TopK:    o.TopK,
		Explore: o.Explore,
		MinGain: o.MinGain,
	}

	base, err := ev.Evaluate(ctx, nil)
	if err != nil {
		return nil, fmt.Errorf("tune: baseline evaluation: %w", err)
	}
	if base.Report == nil {
		return nil, fmt.Errorf("tune: baseline run carries no attribution report")
	}
	traj.BaselineCycles = base.Result.Cycles
	traj.Steps = append(traj.Steps, Step{
		Round:    0,
		Mask:     "",
		Cycles:   base.Result.Cycles,
		Accepted: true, // the baseline is the initial incumbent
		CacheHit: base.CacheHit,
	})
	o.logf("baseline %s/%s: %d cycles (cache hit: %v)",
		o.Bench, o.Policy, base.Result.Cycles, base.CacheHit)

	cur := (*machine.SpawnMask)(nil)
	curCycles := base.Result.Cycles
	curReport := base.Report

	for round := 1; round <= o.Rounds; round++ {
		ranked := rankSites(curReport, cur)
		if len(ranked) == 0 {
			o.logf("round %d: no sites left wasting cycles; converged", round)
			break
		}
		cands := pickCandidates(ranked, &o, round)

		bestIdx := -1
		var bestOut Outcome
		for i, c := range cands {
			mask := cur.With(c.pc, c.kind)
			out, err := ev.Evaluate(ctx, mask)
			if err != nil {
				return nil, fmt.Errorf("tune: round %d candidate %s: %w", round, c, err)
			}
			traj.Steps = append(traj.Steps, Step{
				Round:    round,
				Site:     c.String(),
				Mask:     mask.Encode(),
				Cycles:   out.Result.Cycles,
				CacheHit: out.CacheHit,
			})
			o.logf("round %d: +%s -> %d cycles (%+d)", round, c, out.Result.Cycles, out.Result.Cycles-curCycles)
			// Strictly better than the best so far; first-come wins ties,
			// and candidate order is deterministic.
			if bestIdx < 0 || out.Result.Cycles < bestOut.Result.Cycles {
				bestIdx, bestOut = i, out
			}
		}

		if bestOut.Result.Cycles > curCycles-o.MinGain {
			o.logf("round %d: best candidate +%s saves %d cycles (< min gain %d); converged",
				round, cands[bestIdx], curCycles-bestOut.Result.Cycles, o.MinGain)
			break
		}
		if bestOut.Report == nil {
			return nil, fmt.Errorf("tune: accepted run carries no attribution report")
		}
		cur = cur.With(cands[bestIdx].pc, cands[bestIdx].kind)
		curCycles = bestOut.Result.Cycles
		curReport = bestOut.Report
		traj.Steps[len(traj.Steps)-len(cands)+bestIdx].Accepted = true
		o.logf("round %d: accepted +%s, mask now %q (%d cycles)",
			round, cands[bestIdx], cur.Encode(), curCycles)
	}

	traj.BestMask = cur.Encode()
	traj.BestCycles = curCycles
	return traj, nil
}
