package cfg

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(p, p.Entry, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStraightLine(t *testing.T) {
	g := build(t, "nop\nnop\nhalt\n")
	// One real block plus the virtual exit.
	if g.NumBlocks() != 2 {
		t.Fatalf("blocks = %d, want 2", g.NumBlocks())
	}
	b := g.Blocks[0]
	if len(b.Succs) != 1 || b.Succs[0] != g.Exit() {
		t.Fatalf("halt must flow to exit: %v", b.Succs)
	}
}

func TestIfThenElse(t *testing.T) {
	g := build(t, `
        beq  $t0, $t1, els
        nop
        j    join
els:    nop
join:   halt
`)
	// blocks: [beq][nop,j][els][join] + exit
	if g.NumBlocks() != 5 {
		t.Fatalf("blocks = %d, want 5: %s", g.NumBlocks(), g.Dump())
	}
	entry := g.Blocks[g.Entry()]
	if len(entry.Succs) != 2 {
		t.Fatalf("branch block has %d successors", len(entry.Succs))
	}
	join := g.BlockAt(g.Prog.Labels["join"])
	if join < 0 {
		t.Fatalf("join block not found")
	}
	if len(g.Blocks[join].Preds) != 2 {
		t.Fatalf("join preds = %v, want two", g.Blocks[join].Preds)
	}
}

func TestLoopEdges(t *testing.T) {
	g := build(t, `
        li   $t0, 3
loop:   addi $t0, $t0, -1
        bgtz $t0, loop
        halt
`)
	loopB := g.BlockAt(g.Prog.Labels["loop"])
	found := false
	for _, s := range g.Blocks[loopB].Succs {
		if s == loopB {
			found = true
		}
	}
	if !found {
		t.Fatalf("back edge missing: %s", g.Dump())
	}
}

func TestCallIsStraightLineIntraprocedurally(t *testing.T) {
	g := build(t, `
        .func main
main:   jal  f
        halt
        .func f
f:      ret
`)
	// main's CFG: [jal][halt] + exit; the call block flows to the return
	// address block, not into f.
	callB := g.Blocks[g.Entry()]
	if len(callB.Succs) != 1 {
		t.Fatalf("call block successors = %v", callB.Succs)
	}
	next := g.Blocks[callB.Succs[0]]
	if next.Virtual || next.Start != g.Prog.Labels["main"]+isa.InstSize {
		t.Fatalf("call must fall through to the return address")
	}
	// f's code must not be inside main's graph.
	if g.FuncEnd != g.Prog.Labels["f"] {
		t.Fatalf("function boundary wrong: end=%x", g.FuncEnd)
	}
}

func TestReturnFlowsToExit(t *testing.T) {
	p, err := asm.Assemble(`
        .func main
main:   halt
        .func f
f:      nop
        ret
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(p, p.Labels["f"], nil)
	if err != nil {
		t.Fatal(err)
	}
	b := g.Blocks[g.Entry()]
	if len(b.Succs) != 1 || b.Succs[0] != g.Exit() {
		t.Fatalf("return must flow to virtual exit: %v", b.Succs)
	}
}

func TestIndirectJumpSuccessors(t *testing.T) {
	g := build(t, `
main:   jr   $t0
        .targets a, b
a:      halt
b:      halt
`)
	jrB := g.Blocks[g.Entry()]
	if len(jrB.Succs) != 2 {
		t.Fatalf("jr successors = %v, want both annotated targets", jrB.Succs)
	}
}

func TestProfileAugmentedIndirect(t *testing.T) {
	p, err := asm.Assemble(`
main:   jr   $t0
a:      halt
b:      halt
`)
	if err != nil {
		t.Fatal(err)
	}
	// No .targets annotation: successors come from the profile.
	extra := map[uint64][]uint64{p.Entry: {p.Labels["a"], p.Labels["b"]}}
	g, err := Build(p, p.Entry, extra)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks[g.Entry()].Succs) != 2 {
		t.Fatalf("profile targets not applied: %v", g.Blocks[g.Entry()].Succs)
	}
	// Without any target info the jump pessimistically exits.
	g2, err := Build(p, p.Entry, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.Blocks[g2.Entry()].Succs) != 1 || g2.Blocks[g2.Entry()].Succs[0] != g2.Exit() {
		t.Fatalf("unannotated jr must flow to exit")
	}
}

func TestBlockOf(t *testing.T) {
	g := build(t, `
        nop
        beq $t0, $t1, l
        nop
l:      halt
`)
	first := g.BlockOf(g.Prog.CodeBase)
	if first != g.Entry() {
		t.Fatalf("BlockOf(entry) wrong")
	}
	if g.BlockOf(g.Prog.CodeBase+isa.InstSize) != first {
		t.Fatalf("second instruction must be in the entry block")
	}
	if g.BlockOf(0x50) != -1 {
		t.Fatalf("out-of-function PC must map to -1")
	}
	if g.BlockAt(g.Prog.CodeBase+isa.InstSize) != -1 {
		t.Fatalf("BlockAt must require an exact block start")
	}
}

func TestBuildAll(t *testing.T) {
	p, err := asm.Assemble(`
        .func main
main:   jal f
        halt
        .func f
f:      ret
`)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := BuildAll(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 2 {
		t.Fatalf("BuildAll produced %d graphs, want 2", len(gs))
	}
	if gs[0].FuncEntry != p.Labels["main"] || gs[1].FuncEntry != p.Labels["f"] {
		t.Fatalf("graph entries wrong")
	}
}

// TestEdgeConsistency: every successor edge has a matching predecessor
// edge, on a nontrivial program.
func TestEdgeConsistency(t *testing.T) {
	g := build(t, `
        li   $t0, 5
loop:   beq  $t0, $zero, done
        addi $t0, $t0, -1
        bgtz $t0, loop
        nop
done:   halt
`)
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			found := false
			for _, pb := range g.Blocks[s].Preds {
				if pb == b.ID {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge B%d->B%d has no predecessor record", b.ID, s)
			}
		}
	}
}
