// Package cfg builds intraprocedural control flow graphs from a program
// image. Each function gets its own graph with a virtual exit node; calls
// are treated as straight-line flow to their return address (the
// intraprocedural view under which the immediate postdominator of a call
// block is the procedure fall-through), and indirect jumps get their
// successors from the program's jump-table annotations augmented with
// profile-observed targets — mirroring the paper's profile-driven
// postdominator analysis.
package cfg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
)

// Block is one basic block. PCs in [Start, End) belong to the block; the
// instruction at End-4 is the terminator.
type Block struct {
	ID    int
	Start uint64
	End   uint64
	Succs []int
	Preds []int
	// Virtual marks the synthetic exit node (Start/End are meaningless).
	Virtual bool
}

// LastPC returns the PC of the block's terminating instruction.
func (b *Block) LastPC() uint64 { return b.End - isa.InstSize }

// Graph is the CFG of one function plus a virtual exit node (always the
// last element of Blocks). Entry is always block 0.
type Graph struct {
	Prog      *isa.Program
	FuncEntry uint64
	FuncEnd   uint64
	Blocks    []*Block
	byStart   []uint64 // sorted block start PCs (excluding exit), parallel to startID
	startID   []int
}

// Entry returns the entry block's ID (always 0).
func (g *Graph) Entry() int { return 0 }

// Exit returns the virtual exit block's ID.
func (g *Graph) Exit() int { return len(g.Blocks) - 1 }

// NumBlocks returns the node count, including the virtual exit.
func (g *Graph) NumBlocks() int { return len(g.Blocks) }

// BlockOf returns the ID of the block containing pc, or -1 when pc is
// outside the function.
func (g *Graph) BlockOf(pc uint64) int {
	if pc < g.FuncEntry || pc >= g.FuncEnd {
		return -1
	}
	i := sort.Search(len(g.byStart), func(i int) bool { return g.byStart[i] > pc })
	if i == 0 {
		return -1
	}
	b := g.Blocks[g.startID[i-1]]
	if pc >= b.Start && pc < b.End {
		return b.ID
	}
	return -1
}

// BlockAt returns the ID of the block that starts exactly at pc, or -1.
func (g *Graph) BlockAt(pc uint64) int {
	id := g.BlockOf(pc)
	if id >= 0 && g.Blocks[id].Start == pc {
		return id
	}
	return -1
}

// Terminator returns the block's terminating instruction. The virtual exit
// has none (ok=false), and neither does an empty function.
func (g *Graph) Terminator(id int) (isa.Inst, bool) {
	b := g.Blocks[id]
	if b.Virtual {
		return isa.Inst{}, false
	}
	return g.Prog.InstAt(b.LastPC())
}

// Succs returns the adjacency lists of the graph, indexable by block ID.
func (g *Graph) SuccLists() [][]int {
	out := make([][]int, len(g.Blocks))
	for i, b := range g.Blocks {
		out[i] = b.Succs
	}
	return out
}

// PredLists returns the reverse adjacency lists.
func (g *Graph) PredLists() [][]int {
	out := make([][]int, len(g.Blocks))
	for i, b := range g.Blocks {
		out[i] = b.Preds
	}
	return out
}

// Build constructs the CFG of the function entered at funcEntry.
// extraTargets supplies additional successors for indirect jumps (typically
// from trace.IndirectTargets); it may be nil.
func Build(p *isa.Program, funcEntry uint64, extraTargets map[uint64][]uint64) (*Graph, error) {
	funcEnd := p.FuncEnd(funcEntry)
	first := p.IndexOf(funcEntry)
	if first < 0 {
		return nil, fmt.Errorf("cfg: function entry 0x%x outside code segment", funcEntry)
	}
	last := p.IndexOf(funcEnd - isa.InstSize)
	if last < 0 {
		last = len(p.Code) - 1
	}

	indirectSuccs := func(pc uint64) []uint64 {
		seen := map[uint64]bool{}
		var ts []uint64
		for _, t := range p.JumpTargets[pc] {
			if !seen[t] {
				seen[t] = true
				ts = append(ts, t)
			}
		}
		for _, t := range extraTargets[pc] {
			if !seen[t] {
				seen[t] = true
				ts = append(ts, t)
			}
		}
		return ts
	}

	inFunc := func(pc uint64) bool { return pc >= funcEntry && pc < funcEnd }

	// Pass 1: find leaders.
	leaders := map[uint64]bool{funcEntry: true}
	for i := first; i <= last; i++ {
		pc := p.PCOf(i)
		inst := p.Code[i]
		switch {
		case inst.IsCondBranch():
			if inFunc(uint64(inst.Imm)) {
				leaders[uint64(inst.Imm)] = true
			}
			if pc+isa.InstSize < funcEnd {
				leaders[pc+isa.InstSize] = true
			}
		case inst.Op == isa.OpJ:
			if inFunc(uint64(inst.Imm)) {
				leaders[uint64(inst.Imm)] = true
			}
			if pc+isa.InstSize < funcEnd {
				leaders[pc+isa.InstSize] = true
			}
		case inst.IsCall(): // jal/jalr: block ends, control returns to pc+4
			if pc+isa.InstSize < funcEnd {
				leaders[pc+isa.InstSize] = true
			}
		case inst.Op == isa.OpJR: // return or computed jump
			if pc+isa.InstSize < funcEnd {
				leaders[pc+isa.InstSize] = true
			}
			for _, t := range indirectSuccs(pc) {
				if inFunc(t) {
					leaders[t] = true
				}
			}
		case inst.Op == isa.OpHALT:
			if pc+isa.InstSize < funcEnd {
				leaders[pc+isa.InstSize] = true
			}
		}
	}

	starts := make([]uint64, 0, len(leaders))
	for pc := range leaders {
		starts = append(starts, pc)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	g := &Graph{Prog: p, FuncEntry: funcEntry, FuncEnd: funcEnd}
	idOf := map[uint64]int{}
	for i, s := range starts {
		end := funcEnd
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		b := &Block{ID: i, Start: s, End: end}
		g.Blocks = append(g.Blocks, b)
		idOf[s] = i
	}
	exit := &Block{ID: len(g.Blocks), Virtual: true}
	g.Blocks = append(g.Blocks, exit)

	addEdge := func(from, to int) {
		for _, s := range g.Blocks[from].Succs {
			if s == to {
				return
			}
		}
		g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
		g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
	}
	succOf := func(pc uint64) int {
		if id, ok := idOf[pc]; ok {
			return id
		}
		return exit.ID // leaves the function
	}

	// Pass 2: edges.
	for _, b := range g.Blocks {
		if b.Virtual {
			continue
		}
		inst, _ := p.InstAt(b.LastPC())
		pcAfter := b.End
		switch {
		case inst.IsCondBranch():
			addEdge(b.ID, succOf(pcAfter))
			addEdge(b.ID, succOf(uint64(inst.Imm)))
		case inst.Op == isa.OpJ:
			addEdge(b.ID, succOf(uint64(inst.Imm)))
		case inst.IsCall():
			// Intraprocedural view: flow continues at the return address.
			if pcAfter < funcEnd {
				addEdge(b.ID, succOf(pcAfter))
			} else {
				addEdge(b.ID, exit.ID)
			}
		case inst.Op == isa.OpJR:
			inst2, _ := g.Terminator(b.ID)
			if inst2.IsReturn() {
				addEdge(b.ID, exit.ID)
				break
			}
			ts := indirectSuccs(b.LastPC())
			if len(ts) == 0 {
				addEdge(b.ID, exit.ID)
			}
			for _, t := range ts {
				addEdge(b.ID, succOf(t))
			}
		case inst.Op == isa.OpHALT:
			addEdge(b.ID, exit.ID)
		default:
			// plain fall-through (only possible at a leader boundary)
			if pcAfter < funcEnd {
				addEdge(b.ID, succOf(pcAfter))
			} else {
				addEdge(b.ID, exit.ID)
			}
		}
	}

	for _, b := range g.Blocks {
		if !b.Virtual {
			g.byStart = append(g.byStart, b.Start)
			g.startID = append(g.startID, b.ID)
		}
	}
	return g, nil
}

// FromBlocks reconstructs a Graph from serialized block boundaries and
// successor lists — the decode path of the analysis artifact
// (internal/core). blocks must be in ID order with the virtual exit last,
// exactly as Build produced them; Preds and the PC lookup index are
// rebuilt here in Build's insertion order, so a reconstructed graph is
// indistinguishable from a built one.
func FromBlocks(p *isa.Program, funcEntry, funcEnd uint64, blocks []*Block) (*Graph, error) {
	g := &Graph{Prog: p, FuncEntry: funcEntry, FuncEnd: funcEnd, Blocks: blocks}
	n := len(blocks)
	for i, b := range blocks {
		if b.ID != i {
			return nil, fmt.Errorf("cfg: block %d carries ID %d", i, b.ID)
		}
		if b.Virtual != (i == n-1) {
			return nil, fmt.Errorf("cfg: virtual exit must be exactly the last block")
		}
		for _, s := range b.Succs {
			if s < 0 || s >= n {
				return nil, fmt.Errorf("cfg: block %d successor %d out of range", i, s)
			}
		}
	}
	// Preds in the same order Build's addEdge produced them: blocks in ID
	// order, successors in stored order.
	for _, b := range blocks {
		for _, s := range b.Succs {
			g.Blocks[s].Preds = append(g.Blocks[s].Preds, b.ID)
		}
	}
	for _, b := range blocks {
		if !b.Virtual {
			g.byStart = append(g.byStart, b.Start)
			g.startID = append(g.startID, b.ID)
		}
	}
	return g, nil
}

// BuildAll constructs CFGs for every function in the program, in Funcs
// order. Programs with no declared functions get one graph rooted at the
// entry PC.
func BuildAll(p *isa.Program, extraTargets map[uint64][]uint64) ([]*Graph, error) {
	entries := p.Funcs
	if len(entries) == 0 {
		entries = []uint64{p.CodeBase}
	}
	var out []*Graph
	for _, e := range entries {
		g, err := Build(p, e, extraTargets)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}

// Dump renders the graph for debugging and the cfgtool command.
func (g *Graph) Dump() string {
	var sb strings.Builder
	name := g.Prog.SymbolFor(g.FuncEntry)
	fmt.Fprintf(&sb, "func %s [0x%x, 0x%x)\n", name, g.FuncEntry, g.FuncEnd)
	for _, b := range g.Blocks {
		if b.Virtual {
			fmt.Fprintf(&sb, "  B%d <exit>\n", b.ID)
			continue
		}
		term, _ := g.Terminator(b.ID)
		fmt.Fprintf(&sb, "  B%d [0x%x,0x%x) term=%q succs=%v\n", b.ID, b.Start, b.End, term.String(), b.Succs)
	}
	return sb.String()
}
