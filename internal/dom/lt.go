package dom

// ComputeLT builds the dominator tree with the classic Lengauer-Tarjan
// algorithm (the "simple" O(E log V) path-compression variant). It produces
// exactly the same tree as Compute; both are kept because the iterative
// Cooper-Harvey-Kennedy scheme is faster on the small, mostly-reducible
// CFGs this repository analyzes, while Lengauer-Tarjan is the reference
// production algorithm — and cross-checking the two (see the property
// tests) guards the analysis everything else is built on.
func ComputeLT(succs [][]int, root int) *Tree {
	n := len(succs)
	t := &Tree{
		IDom:  make([]int, n),
		Depth: make([]int, n),
		root:  root,
	}
	for i := range t.IDom {
		t.IDom[i] = -1
		t.Depth[i] = -1
	}
	if n == 0 {
		return t
	}

	// DFS numbering.
	semi := make([]int, n)   // semidominator, as a DFS number
	vertex := make([]int, n) // DFS number -> node
	parent := make([]int, n) // DFS tree parent (node ids)
	dfnum := make([]int, n)  // node -> DFS number, -1 if unreachable
	for i := range dfnum {
		dfnum[i] = -1
	}
	cnt := 0
	type frame struct{ v, i int }
	stack := []frame{{root, 0}}
	dfnum[root] = 0
	vertex[0] = root
	parent[root] = -1
	cnt = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(succs[f.v]) {
			w := succs[f.v][f.i]
			f.i++
			if dfnum[w] == -1 {
				dfnum[w] = cnt
				vertex[cnt] = w
				parent[w] = f.v
				cnt++
				stack = append(stack, frame{w, 0})
			}
			continue
		}
		stack = stack[:len(stack)-1]
	}

	preds := make([][]int, n)
	for v, ss := range succs {
		if dfnum[v] < 0 {
			continue
		}
		for _, w := range ss {
			preds[w] = append(preds[w], v)
		}
	}

	// Union-find forest with path compression carrying minimum-semi labels.
	ancestor := make([]int, n)
	label := make([]int, n)
	for v := 0; v < n; v++ {
		ancestor[v] = -1
		label[v] = v
		if dfnum[v] >= 0 {
			semi[v] = dfnum[v]
		}
	}
	var compress func(v int)
	compress = func(v int) {
		a := ancestor[v]
		if ancestor[a] == -1 {
			return
		}
		compress(a)
		if semi[label[a]] < semi[label[v]] {
			label[v] = label[a]
		}
		ancestor[v] = ancestor[a]
	}
	eval := func(v int) int {
		if ancestor[v] == -1 {
			return v
		}
		compress(v)
		return label[v]
	}
	link := func(parent, child int) { ancestor[child] = parent }

	bucket := make([][]int, n)
	idom := make([]int, n)
	samedom := make([]int, n)
	for i := range idom {
		idom[i] = -1
		samedom[i] = -1
	}

	for i := cnt - 1; i >= 1; i-- {
		w := vertex[i]
		p := parent[w]
		// Semidominator of w.
		for _, v := range preds[w] {
			if dfnum[v] < 0 {
				continue
			}
			var u int
			if dfnum[v] <= dfnum[w] {
				u = v
			} else {
				u = eval(v)
			}
			if semi[u] < semi[w] {
				semi[w] = semi[u]
			}
		}
		bucket[vertex[semi[w]]] = append(bucket[vertex[semi[w]]], w)
		link(p, w)
		// Implicitly compute idoms for p's bucket.
		for _, v := range bucket[p] {
			u := eval(v)
			if semi[u] < semi[v] {
				samedom[v] = u
			} else {
				idom[v] = p
			}
		}
		bucket[p] = nil
	}
	for i := 1; i < cnt; i++ {
		w := vertex[i]
		if samedom[w] != -1 {
			idom[w] = idom[samedom[w]]
		}
	}

	for v := 0; v < n; v++ {
		if v == root || dfnum[v] < 0 {
			t.IDom[v] = -1
		} else {
			t.IDom[v] = idom[v]
		}
	}
	// Depths and order (DFS order is a valid processing order: idoms have
	// smaller DFS numbers).
	t.Depth[root] = 0
	t.Order = append(t.Order, root)
	for i := 1; i < cnt; i++ {
		v := vertex[i]
		t.Order = append(t.Order, v)
		if p := t.IDom[v]; p >= 0 {
			t.Depth[v] = t.Depth[p] + 1
		}
	}
	return t
}
