// Package dom computes dominator and postdominator trees. Postdominance is
// computed, as the paper describes, "by finding dominators in the reversed
// CFG, with the entry and exit nodes interchanged along with the direction
// of all edges".
//
// The production algorithm is the Cooper–Harvey–Kennedy iterative scheme
// over reverse postorder; a naive O(n²) dataflow reference implementation is
// provided for property-based cross-checking in tests.
package dom

import "fmt"

// Tree is a dominator tree over nodes 0..n-1.
type Tree struct {
	// IDom[v] is the immediate dominator of v, -1 for the root and for
	// nodes unreachable from the root.
	IDom []int
	// Depth[v] is the v's depth in the dominator tree (root = 0); -1 for
	// unreachable nodes.
	Depth []int
	// Order is the reverse postorder of reachable nodes.
	Order []int
	root  int
}

// Root returns the tree's root node.
func (t *Tree) Root() int { return t.root }

// Reachable reports whether v is reachable from the root.
func (t *Tree) Reachable(v int) bool { return v == t.root || t.IDom[v] >= 0 }

// Dominates reports whether a dominates b (reflexively).
func (t *Tree) Dominates(a, b int) bool {
	if !t.Reachable(a) || !t.Reachable(b) {
		return false
	}
	for b != -1 && t.Depth[b] >= t.Depth[a] {
		if b == a {
			return true
		}
		b = t.IDom[b]
	}
	return false
}

// StrictlyDominates reports whether a dominates b and a != b.
func (t *Tree) StrictlyDominates(a, b int) bool { return a != b && t.Dominates(a, b) }

// Children returns the dominator-tree children lists, indexable by node.
func (t *Tree) Children() [][]int {
	out := make([][]int, len(t.IDom))
	for v, p := range t.IDom {
		if p >= 0 {
			out[p] = append(out[p], v)
		}
	}
	return out
}

// Compute builds the dominator tree of the graph given by adjacency lists,
// rooted at root. To obtain postdominators, pass the reversed graph with
// the (virtual) exit node as root.
func Compute(succs [][]int, root int) *Tree {
	n := len(succs)
	t := &Tree{
		IDom:  make([]int, n),
		Depth: make([]int, n),
		root:  root,
	}
	for i := range t.IDom {
		t.IDom[i] = -1
		t.Depth[i] = -1
	}
	if n == 0 {
		return t
	}

	rpo := rpoOrder(succs, root)
	t.Order = rpo

	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, v := range rpo {
		rpoNum[v] = i
	}

	// Predecessor lists restricted to reachable nodes.
	preds := make([][]int, n)
	for v, ss := range succs {
		if rpoNum[v] < 0 {
			continue
		}
		for _, w := range ss {
			preds[w] = append(preds[w], v)
		}
	}

	intersect := func(idom []int, a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}

	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[root] = root
	for changed := true; changed; {
		changed = false
		for _, v := range rpo {
			if v == root {
				continue
			}
			newIdom := -1
			for _, p := range preds[v] {
				if idom[p] == -1 {
					continue // not yet processed
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(idom, newIdom, p)
				}
			}
			if newIdom != -1 && idom[v] != newIdom {
				idom[v] = newIdom
				changed = true
			}
		}
	}

	for v := 0; v < n; v++ {
		if v == root || idom[v] == -1 {
			t.IDom[v] = -1
		} else {
			t.IDom[v] = idom[v]
		}
	}
	// Depths in RPO order: idom always precedes in RPO.
	t.Depth[root] = 0
	for _, v := range rpo {
		if v == root {
			continue
		}
		if p := t.IDom[v]; p >= 0 && t.Depth[p] >= 0 {
			t.Depth[v] = t.Depth[p] + 1
		}
	}
	return t
}

// rpoOrder returns the reverse postorder of nodes reachable from root via
// iterative DFS. Both Compute and Rebuild derive Tree.Order through it, so
// a rebuilt tree's traversal order is bit-equal to a computed one's.
func rpoOrder(succs [][]int, root int) []int {
	n := len(succs)
	state := make([]uint8, n) // 0 unvisited, 1 on stack, 2 done
	post := make([]int, 0, n)
	type frame struct {
		v, i int
	}
	stack := []frame{{root, 0}}
	state[root] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(succs[f.v]) {
			w := succs[f.v][f.i]
			f.i++
			if state[w] == 0 {
				state[w] = 1
				stack = append(stack, frame{w, 0})
			}
			continue
		}
		state[f.v] = 2
		post = append(post, f.v)
		stack = stack[:len(stack)-1]
	}
	rpo := make([]int, len(post))
	for i, v := range post {
		rpo[len(post)-1-i] = v
	}
	return rpo
}

// Rebuild reconstructs a Tree from a stored immediate-dominator array
// without re-running the dataflow — the decode path of the serialized
// analysis artifact (internal/core). succs must be the adjacency lists the
// tree was computed over (the reversed graph for postdominators) and idom
// a Compute result's IDom slice; Depth and Order are derived, so a rebuilt
// tree is indistinguishable from a computed one.
func Rebuild(succs [][]int, root int, idom []int) (*Tree, error) {
	n := len(succs)
	if len(idom) != n {
		return nil, fmt.Errorf("dom: idom has %d entries for %d nodes", len(idom), n)
	}
	t := &Tree{
		IDom:  append([]int(nil), idom...),
		Depth: make([]int, n),
		root:  root,
	}
	for i := range t.Depth {
		t.Depth[i] = -1
	}
	if n == 0 {
		return t, nil
	}
	if root < 0 || root >= n {
		return nil, fmt.Errorf("dom: root %d out of range [0,%d)", root, n)
	}
	for v, p := range t.IDom {
		if p < -1 || p >= n {
			return nil, fmt.Errorf("dom: idom[%d] = %d out of range", v, p)
		}
	}
	t.Order = rpoOrder(succs, root)
	// Depths in RPO order, as in Compute: an idom always precedes its
	// children in reverse postorder.
	t.Depth[root] = 0
	for _, v := range t.Order {
		if v == root {
			continue
		}
		if p := t.IDom[v]; p >= 0 && t.Depth[p] >= 0 {
			t.Depth[v] = t.Depth[p] + 1
		}
	}
	return t, nil
}

// Reverse returns the transposed adjacency lists.
func Reverse(succs [][]int) [][]int {
	out := make([][]int, len(succs))
	for v, ss := range succs {
		for _, w := range ss {
			out[w] = append(out[w], v)
		}
	}
	return out
}

// NaiveDominators computes the full dominance relation by the textbook
// iterative set-intersection dataflow, for cross-checking the fast
// algorithm in tests. dom[v][u] is true when u dominates v. Unreachable
// nodes have empty sets.
func NaiveDominators(succs [][]int, root int) [][]bool {
	n := len(succs)
	reach := make([]bool, n)
	var dfs func(int)
	dfs = func(v int) {
		if reach[v] {
			return
		}
		reach[v] = true
		for _, w := range succs[v] {
			dfs(w)
		}
	}
	if n > 0 {
		dfs(root)
	}
	preds := Reverse(succs)
	dom := make([][]bool, n)
	for v := 0; v < n; v++ {
		dom[v] = make([]bool, n)
		if !reach[v] {
			continue
		}
		if v == root {
			dom[v][v] = true
			continue
		}
		for u := 0; u < n; u++ {
			dom[v][u] = reach[u]
		}
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			if !reach[v] || v == root {
				continue
			}
			next := make([]bool, n)
			first := true
			for _, p := range preds[v] {
				if !reach[p] {
					continue
				}
				if first {
					copy(next, dom[p])
					first = false
				} else {
					for u := range next {
						next[u] = next[u] && dom[p][u]
					}
				}
			}
			next[v] = true
			for u := range next {
				if next[u] != dom[v][u] {
					dom[v] = next
					changed = true
					break
				}
			}
		}
	}
	return dom
}
