package dom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLTDiamond(t *testing.T) {
	d := ComputeLT(diamond(), 0)
	if d.IDom[1] != 0 || d.IDom[2] != 0 || d.IDom[3] != 0 {
		t.Fatalf("LT diamond idoms wrong: %v", d.IDom)
	}
}

func TestLTPaperFigure2(t *testing.T) {
	p := ComputeLT(Reverse(paperFigure1()), 6)
	want := map[int]int{0: 1, 1: 4, 2: 4, 3: 4, 4: 5, 5: 6}
	for node, parent := range want {
		if p.IDom[node] != parent {
			t.Errorf("LT ipdom(%d) = %d, want %d", node, p.IDom[node], parent)
		}
	}
}

func TestLTUnreachable(t *testing.T) {
	d := ComputeLT([][]int{{1}, {}, {1}}, 0)
	if d.Reachable(2) || d.IDom[1] != 0 {
		t.Fatalf("LT unreachable handling wrong: %v", d.IDom)
	}
}

func TestLTIrreducible(t *testing.T) {
	d := ComputeLT([][]int{{1, 2}, {2}, {1}}, 0)
	if d.IDom[1] != 0 || d.IDom[2] != 0 {
		t.Fatalf("LT irreducible idoms wrong: %v", d.IDom)
	}
}

// TestLTQuickAgreesWithCHK: the two dominator algorithms must produce the
// same tree on arbitrary graphs.
func TestLTQuickAgreesWithCHK(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		n := 2 + int(size)%20
		g := randomGraph(rand.New(rand.NewSource(seed)), n)
		a := Compute(g, 0)
		b := ComputeLT(g, 0)
		for v := 0; v < n; v++ {
			if a.IDom[v] != b.IDom[v] {
				t.Logf("graph=%v: idom(%d) CHK=%d LT=%d", g, v, a.IDom[v], b.IDom[v])
				return false
			}
			if a.Depth[v] != b.Depth[v] {
				t.Logf("graph=%v: depth(%d) CHK=%d LT=%d", g, v, a.Depth[v], b.Depth[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestLTQuickAgreesOnReversedGraphs covers the postdominator use (reversed
// CFG, exit-rooted), where unreachable-from-exit nodes are common.
func TestLTQuickAgreesOnReversedGraphs(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		n := 2 + int(size)%20
		g := randomGraph(rand.New(rand.NewSource(seed)), n)
		r := Reverse(g)
		root := n - 1
		a := Compute(r, root)
		b := ComputeLT(r, root)
		for v := 0; v < n; v++ {
			if a.IDom[v] != b.IDom[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCHK(b *testing.B) {
	g := randomGraph(rand.New(rand.NewSource(42)), 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(g, 0)
	}
}

func BenchmarkLT(b *testing.B) {
	g := randomGraph(rand.New(rand.NewSource(42)), 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeLT(g, 0)
	}
}
