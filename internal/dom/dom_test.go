package dom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond: 0 -> 1,2 -> 3
func diamond() [][]int {
	return [][]int{{1, 2}, {3}, {3}, {}}
}

func TestDiamondDominators(t *testing.T) {
	d := Compute(diamond(), 0)
	if d.IDom[1] != 0 || d.IDom[2] != 0 || d.IDom[3] != 0 {
		t.Fatalf("diamond idoms wrong: %v", d.IDom)
	}
	if !d.Dominates(0, 3) || d.Dominates(1, 3) || d.Dominates(2, 3) {
		t.Fatalf("diamond dominance relation wrong")
	}
}

func TestDiamondPostdominators(t *testing.T) {
	// Postdominators = dominators of the reversed graph rooted at exit.
	p := Compute(Reverse(diamond()), 3)
	if p.IDom[1] != 3 || p.IDom[2] != 3 || p.IDom[0] != 3 {
		t.Fatalf("diamond ipdoms wrong: %v", p.IDom)
	}
	if !p.Dominates(3, 0) {
		t.Fatalf("exit must postdominate entry")
	}
}

// paperFigure1 is the flow graph of the paper's Figure 1: a loop containing
// an if-then-else. Nodes: A=0 B=1 C=2 D=3 E=4 F=5, exit=6.
func paperFigure1() [][]int {
	return [][]int{
		{1},    // A -> B
		{2, 3}, // B -> C, D
		{4},    // C -> E
		{4},    // D -> E
		{5},    // E -> F
		{0, 6}, // F -> A (back edge), exit
		{},     // exit
	}
}

// TestPaperFigure2 checks the postdominator tree of Figure 2: the parent of
// each node is its immediate postdominator (A's is B, B's is E, C's and D's
// are E, E's is F).
func TestPaperFigure2(t *testing.T) {
	g := paperFigure1()
	p := Compute(Reverse(g), 6)
	want := map[int]int{0: 1, 1: 4, 2: 4, 3: 4, 4: 5, 5: 6}
	for node, parent := range want {
		if p.IDom[node] != parent {
			t.Errorf("ipdom(%d) = %d, want %d", node, p.IDom[node], parent)
		}
	}
	// "E postdominates B because control flow is guaranteed to reach E
	// whenever it reaches B."
	if !p.Dominates(4, 1) {
		t.Errorf("E must postdominate B")
	}
	if p.Dominates(2, 1) || p.Dominates(3, 1) {
		t.Errorf("neither C nor D postdominates B")
	}
}

func TestUnreachableNodes(t *testing.T) {
	// Node 2 unreachable from root 0.
	g := [][]int{{1}, {}, {1}}
	d := Compute(g, 0)
	if d.Reachable(2) {
		t.Fatalf("node 2 must be unreachable")
	}
	if d.IDom[1] != 0 {
		t.Fatalf("idom(1) = %d, want 0", d.IDom[1])
	}
	if d.Dominates(2, 1) || d.Dominates(1, 2) {
		t.Fatalf("unreachable nodes participate in dominance")
	}
}

func TestSingleNode(t *testing.T) {
	d := Compute([][]int{{}}, 0)
	if d.IDom[0] != -1 || d.Depth[0] != 0 || !d.Dominates(0, 0) {
		t.Fatalf("single-node graph mishandled: %+v", d)
	}
}

func TestSelfLoop(t *testing.T) {
	g := [][]int{{0, 1}, {}}
	d := Compute(g, 0)
	if d.IDom[1] != 0 {
		t.Fatalf("idom(1) = %d, want 0", d.IDom[1])
	}
}

func TestIrreducibleGraph(t *testing.T) {
	// 0 -> 1, 2; 1 -> 2; 2 -> 1; classic irreducible loop: idom(1) =
	// idom(2) = 0.
	g := [][]int{{1, 2}, {2}, {1}}
	d := Compute(g, 0)
	if d.IDom[1] != 0 || d.IDom[2] != 0 {
		t.Fatalf("irreducible idoms wrong: %v", d.IDom)
	}
}

func TestChildrenAndDepth(t *testing.T) {
	d := Compute(diamond(), 0)
	ch := d.Children()
	if len(ch[0]) != 3 {
		t.Fatalf("root children = %v, want three", ch[0])
	}
	for _, v := range []int{1, 2, 3} {
		if d.Depth[v] != 1 {
			t.Fatalf("depth(%d) = %d, want 1", v, d.Depth[v])
		}
	}
}

// randomGraph produces a random digraph with n nodes rooted at 0.
func randomGraph(r *rand.Rand, n int) [][]int {
	g := make([][]int, n)
	for v := 0; v < n; v++ {
		deg := r.Intn(3)
		for k := 0; k < deg; k++ {
			g[v] = append(g[v], r.Intn(n))
		}
	}
	// Ensure some connectivity from the root.
	for v := 1; v < n; v++ {
		if r.Intn(2) == 0 {
			g[v-1] = append(g[v-1], v)
		}
	}
	return g
}

// TestQuickAgainstNaive cross-checks the Cooper-Harvey-Kennedy
// implementation against the O(n^2) dataflow reference on random graphs:
// u strictly dominates v exactly when u is a proper ancestor of v in the
// computed tree.
func TestQuickAgainstNaive(t *testing.T) {
	cfgCheck := func(seed int64, size uint8) bool {
		n := 2 + int(size)%14
		g := randomGraph(rand.New(rand.NewSource(seed)), n)
		tree := Compute(g, 0)
		ref := NaiveDominators(g, 0)
		for v := 0; v < n; v++ {
			for u := 0; u < n; u++ {
				want := ref[v][u]
				got := tree.Dominates(u, v)
				if want != got {
					t.Logf("graph=%v: dominates(%d,%d) fast=%v naive=%v", g, u, v, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(cfgCheck, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIdomProperties checks structural dominator-tree invariants on
// random graphs: the idom of a reachable non-root node is reachable,
// strictly dominates it, and every other strict dominator of v also
// dominates idom(v) (immediacy).
func TestQuickIdomProperties(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		n := 2 + int(size)%14
		g := randomGraph(rand.New(rand.NewSource(seed)), n)
		tree := Compute(g, 0)
		for v := 0; v < n; v++ {
			if v == 0 || !tree.Reachable(v) {
				continue
			}
			id := tree.IDom[v]
			if id < 0 || !tree.Reachable(id) || !tree.StrictlyDominates(id, v) {
				return false
			}
			for u := 0; u < n; u++ {
				if u != v && tree.StrictlyDominates(u, v) && !tree.Dominates(u, id) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReverse(t *testing.T) {
	g := [][]int{{1, 2}, {2}, {}}
	r := Reverse(g)
	if len(r[2]) != 2 || len(r[1]) != 1 || len(r[0]) != 0 {
		t.Fatalf("reverse wrong: %v", r)
	}
}
