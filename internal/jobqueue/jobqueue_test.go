package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// submit is a test helper that fails the test on submission error.
func submit(t *testing.T, p *Pool, j Job) *Handle {
	t.Helper()
	h, err := p.Submit(j)
	if err != nil {
		t.Fatalf("Submit(%q): %v", j.ID, err)
	}
	return h
}

func TestRunsAllJobs(t *testing.T) {
	p := New(Config{Workers: 4, QueueDepth: 128})
	defer p.Close()
	var n atomic.Int64
	var hs []*Handle
	for i := 0; i < 100; i++ {
		hs = append(hs, submit(t, p, Job{
			ID: fmt.Sprintf("j%d", i),
			Fn: func(ctx context.Context) error { n.Add(1); return nil },
		}))
	}
	for _, h := range hs {
		if err := h.Wait(context.Background()); err != nil {
			t.Fatalf("job %s: %v", h.ID(), err)
		}
		if h.State() != Succeeded {
			t.Fatalf("job %s state = %v, want Succeeded", h.ID(), h.State())
		}
	}
	if n.Load() != 100 {
		t.Fatalf("ran %d jobs, want 100", n.Load())
	}
	st := p.Stats()
	if st.Succeeded != 100 || st.Failed != 0 || st.Queued != 0 || st.Running != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBackpressureRejectsWhenFull(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 2})
	defer p.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	blocker := submit(t, p, Job{ID: "blocker", Fn: func(ctx context.Context) error {
		close(started)
		<-release
		return nil
	}})
	<-started // worker occupied; queue is empty again
	submit(t, p, Job{ID: "q1", Fn: func(ctx context.Context) error { return nil }})
	submit(t, p, Job{ID: "q2", Fn: func(ctx context.Context) error { return nil }})
	if _, err := p.Submit(Job{ID: "q3", Fn: func(ctx context.Context) error { return nil }}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit on full queue = %v, want ErrQueueFull", err)
	}
	if got := p.Stats().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
	close(release)
	if err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityOrdering(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 16})
	defer p.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	submit(t, p, Job{ID: "blocker", Fn: func(ctx context.Context) error {
		close(started)
		<-release
		return nil
	}})
	<-started

	var mu sync.Mutex
	var order []string
	mk := func(id string, prio int) Job {
		return Job{ID: id, Priority: prio, Fn: func(ctx context.Context) error {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			return nil
		}}
	}
	// Submitted low, high, mid, high2: must run high, high2 (FIFO within
	// priority), mid, low.
	hs := []*Handle{
		submit(t, p, mk("low", 0)),
		submit(t, p, mk("high", 2)),
		submit(t, p, mk("mid", 1)),
		submit(t, p, mk("high2", 2)),
	}
	close(release)
	for _, h := range hs {
		if err := h.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"high", "high2", "mid", "low"}
	mu.Lock()
	defer mu.Unlock()
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCancelQueuedJob(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 16})
	defer p.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	submit(t, p, Job{ID: "blocker", Fn: func(ctx context.Context) error {
		close(started)
		<-release
		return nil
	}})
	<-started
	ran := false
	h := submit(t, p, Job{ID: "victim", Fn: func(ctx context.Context) error {
		ran = true
		return nil
	}})
	h.Cancel()
	if err := h.Wait(context.Background()); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Wait = %v, want ErrCanceled", err)
	}
	if h.State() != Canceled {
		t.Fatalf("state = %v, want Canceled", h.State())
	}
	close(release)
	p.Drain(context.Background())
	if ran {
		t.Fatal("canceled queued job still ran")
	}
}

func TestCancelRunningJob(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 4})
	defer p.Close()
	started := make(chan struct{})
	h := submit(t, p, Job{ID: "spin", Fn: func(ctx context.Context) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}})
	<-started
	h.Cancel()
	if err := h.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if h.State() != Canceled {
		t.Fatalf("state = %v, want Canceled", h.State())
	}
}

func TestJobTimeout(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 4})
	defer p.Close()
	h := submit(t, p, Job{ID: "slow", Timeout: 5 * time.Millisecond, Fn: func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	}})
	if err := h.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait = %v, want DeadlineExceeded", err)
	}
}

func TestPanicIsIsolated(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 4})
	defer p.Close()
	h := submit(t, p, Job{ID: "boom", Fn: func(ctx context.Context) error { panic("kaboom") }})
	err := h.Wait(context.Background())
	if err == nil || h.State() != Failed {
		t.Fatalf("panicking job: err=%v state=%v, want Failed", err, h.State())
	}
	// The worker survived: the next job still runs.
	h2 := submit(t, p, Job{ID: "after", Fn: func(ctx context.Context) error { return nil }})
	if err := h2.Wait(context.Background()); err != nil {
		t.Fatalf("job after panic: %v", err)
	}
}

func TestDrainWaitsForAcceptedJobs(t *testing.T) {
	p := New(Config{Workers: 2, QueueDepth: 64})
	defer p.Close()
	var n atomic.Int64
	for i := 0; i < 20; i++ {
		submit(t, p, Job{ID: fmt.Sprintf("d%d", i), Fn: func(ctx context.Context) error {
			time.Sleep(time.Millisecond)
			n.Add(1)
			return nil
		}})
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if n.Load() != 20 {
		t.Fatalf("drained with %d/20 jobs done", n.Load())
	}
	if _, err := p.Submit(Job{ID: "late", Fn: func(ctx context.Context) error { return nil }}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after Drain = %v, want ErrDraining", err)
	}
}

func TestDrainDeadlineCancelsRemainder(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 16})
	defer p.Close()
	started := make(chan struct{})
	running := submit(t, p, Job{ID: "hog", Fn: func(ctx context.Context) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}})
	<-started
	queued := submit(t, p, Job{ID: "stuck", Fn: func(ctx context.Context) error { return nil }})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := p.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want DeadlineExceeded", err)
	}
	if err := running.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("running job err = %v, want context.Canceled", err)
	}
	if err := queued.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("queued job err = %v, want ErrCanceled", err)
	}
}

func TestDefaultsUseGOMAXPROCS(t *testing.T) {
	p := New(Config{})
	defer p.Close()
	if got := p.Stats().Workers; got <= 0 {
		t.Fatalf("default workers = %d", got)
	}
}
