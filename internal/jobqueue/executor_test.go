package jobqueue

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// payloadExecutor records the payloads it executed and fails on demand.
type payloadExecutor struct {
	executed atomic.Int64
	fail     error
	got      chan any
}

func (e *payloadExecutor) Execute(ctx context.Context, j Job) error {
	e.executed.Add(1)
	if e.got != nil {
		e.got <- j.Payload
	}
	return e.fail
}

func TestCustomExecutorReceivesPayload(t *testing.T) {
	exec := &payloadExecutor{got: make(chan any, 1)}
	p := New(Config{Workers: 1, Executor: exec})
	defer p.Close()

	h, err := p.Submit(Job{ID: "remote", Payload: "cell-descriptor"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := h.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got := <-exec.got; got != "cell-descriptor" {
		t.Fatalf("executor payload = %v, want cell-descriptor", got)
	}
	if n := exec.executed.Load(); n != 1 {
		t.Fatalf("executed = %d, want 1", n)
	}
}

func TestCustomExecutorAllowsNilFn(t *testing.T) {
	// Under a custom executor a job carries work in Payload; Fn may be
	// nil. Under the default local executor a nil Fn is still rejected.
	exec := &payloadExecutor{}
	remote := New(Config{Workers: 1, Executor: exec})
	defer remote.Close()
	if _, err := remote.Submit(Job{ID: "no-fn"}); err != nil {
		t.Fatalf("Submit with custom executor: %v", err)
	}

	local := New(Config{Workers: 1})
	defer local.Close()
	if _, err := local.Submit(Job{ID: "no-fn"}); err == nil {
		t.Fatal("Submit with nil Fn under LocalExecutor: want error")
	}
}

func TestCustomExecutorErrorFailsJob(t *testing.T) {
	boom := errors.New("worker unreachable")
	exec := &payloadExecutor{fail: boom}
	p := New(Config{Workers: 1, Executor: exec})
	defer p.Close()

	h, err := p.Submit(Job{ID: "doomed"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := h.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want %v", err, boom)
	}
	if st := h.State(); st != Failed {
		t.Fatalf("state = %v, want Failed", st)
	}
}

// panicExecutor proves the pool's panic recovery wraps executors too.
type panicExecutor struct{}

func (panicExecutor) Execute(ctx context.Context, j Job) error { panic("remote blew up") }

func TestCustomExecutorPanicRecovered(t *testing.T) {
	p := New(Config{Workers: 1, Executor: panicExecutor{}})
	defer p.Close()

	h, err := p.Submit(Job{ID: "panicky"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := h.Wait(context.Background()); err == nil {
		t.Fatal("Wait: want panic-derived error")
	}
	// The pool must still run subsequent jobs.
	ok := New(Config{Workers: 1})
	defer ok.Close()
	done := make(chan struct{})
	if _, err := ok.Submit(Job{ID: "after", Fn: func(context.Context) error { close(done); return nil }}); err != nil {
		t.Fatalf("Submit after panic: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pool stalled after executor panic")
	}
}

func TestCustomExecutorHonorsTimeout(t *testing.T) {
	slow := executorFunc(func(ctx context.Context, j Job) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Second):
			return nil
		}
	})
	p := New(Config{Workers: 1, Executor: slow})
	defer p.Close()

	h, err := p.Submit(Job{ID: "slow", Timeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := h.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait = %v, want DeadlineExceeded", err)
	}
	if st := h.State(); st != Canceled {
		t.Fatalf("state = %v, want Canceled", st)
	}
}

type executorFunc func(ctx context.Context, j Job) error

func (f executorFunc) Execute(ctx context.Context, j Job) error { return f(ctx, j) }
