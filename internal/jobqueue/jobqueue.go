// Package jobqueue is the repository's one job scheduler: a bounded-queue
// worker pool with priorities, per-job context cancellation and timeouts,
// reject-when-full backpressure, and graceful drain. The polyflowd
// simulation service and the harness figure grids both run on it, so CLI
// batch runs and served traffic share one scheduling discipline.
//
// Semantics:
//
//   - Submit never blocks. A full queue returns ErrQueueFull (the caller
//     turns that into HTTP 429 or retries); a draining pool returns
//     ErrDraining. Accepted jobs always finish: their Handle's Done channel
//     closes exactly once with the job's final state.
//   - Higher Priority runs first; equal priorities run in submission order.
//   - Every job runs under a context derived from the pool's base context,
//     with the job's Timeout (when positive) applied. Handle.Cancel cancels
//     a running job's context, or retires a queued job without running it.
//   - Drain stops intake and waits for every accepted job to finish; when
//     its context expires first, the remainder is canceled. Close after
//     Drain stops the workers.
//
// A panicking job fn is recovered into an error so one bad job cannot take
// down the pool (or the server running on it).
package jobqueue

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"
)

// Submission errors. ErrQueueFull is the backpressure signal: the queue is
// at capacity and the job was rejected, not enqueued.
var (
	ErrQueueFull = errors.New("jobqueue: queue full")
	ErrDraining  = errors.New("jobqueue: pool is draining")
	ErrCanceled  = errors.New("jobqueue: job canceled before running")
)

// Config sizes a Pool.
type Config struct {
	// Workers is the number of concurrent workers; <= 0 selects
	// runtime.GOMAXPROCS(0) — the scheduler should never oversubscribe the
	// Go runtime's own parallelism setting.
	Workers int
	// QueueDepth bounds the number of queued (accepted but not yet
	// running) jobs; <= 0 selects 64. Submissions beyond the bound fail
	// with ErrQueueFull.
	QueueDepth int
	// BaseContext is the parent of every job context; nil means
	// context.Background(). Canceling it cancels all running jobs.
	BaseContext context.Context
	// Executor runs accepted jobs; nil selects LocalExecutor (invoke the
	// job's Fn in-process). The cluster coordinator installs a remote
	// executor that ships each job's Payload to a worker daemon instead.
	Executor Executor
	// Logger receives pool lifecycle records (job failures and panics,
	// drain); nil disables logging.
	Logger *slog.Logger
}

// Executor runs one accepted job. The pool's scheduling discipline —
// priorities, backpressure, per-job contexts, drain — is identical for
// every executor; only where the work happens differs. Execute is called
// from pool workers, so it must be safe for concurrent use.
type Executor interface {
	Execute(ctx context.Context, j Job) error
}

// LocalExecutor is the default Executor: it invokes the job's Fn in the
// worker goroutine.
type LocalExecutor struct{}

// Execute runs j.Fn.
func (LocalExecutor) Execute(ctx context.Context, j Job) error {
	if j.Fn == nil {
		return fmt.Errorf("jobqueue: job %q has nil Fn", j.ID)
	}
	return j.Fn(ctx)
}

// Job is one unit of work.
type Job struct {
	// ID labels the job in errors and stats; it need not be unique.
	ID string
	// Priority orders the queue: higher runs first.
	Priority int
	// Timeout bounds the job's run time when positive.
	Timeout time.Duration
	// Fn does the work. It must honor ctx for cancellation to be prompt.
	// Required under LocalExecutor; a custom Executor may ignore it.
	Fn func(ctx context.Context) error
	// Payload carries executor-specific data (e.g. the cluster
	// coordinator's cell descriptor). LocalExecutor ignores it.
	Payload any
}

// State is a job's lifecycle position.
type State int32

// Lifecycle states. Succeeded/Failed/Canceled are terminal.
const (
	Queued State = iota
	Running
	Succeeded
	Failed
	Canceled
)

// String names the state for status APIs.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Succeeded:
		return "succeeded"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// Handle tracks one accepted job.
type Handle struct {
	job  Job
	seq  uint64
	pool *Pool

	done chan struct{}

	// Guarded by pool.mu.
	state  State
	index  int // heap index while queued, -1 after
	err    error
	cancel context.CancelFunc // set while running
}

// ID returns the job's label.
func (h *Handle) ID() string { return h.job.ID }

// Done closes when the job reaches a terminal state.
func (h *Handle) Done() <-chan struct{} { return h.done }

// State reports the job's current lifecycle position.
func (h *Handle) State() State {
	h.pool.mu.Lock()
	defer h.pool.mu.Unlock()
	return h.state
}

// Err returns the job's final error (nil on success). Valid after Done
// closes; before that it reports nil.
func (h *Handle) Err() error {
	h.pool.mu.Lock()
	defer h.pool.mu.Unlock()
	return h.err
}

// Wait blocks until the job finishes or ctx expires. Waiting is passive:
// abandoning a Wait does not cancel the job.
func (h *Handle) Wait(ctx context.Context) error {
	select {
	case <-h.done:
		return h.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Cancel retires a queued job without running it, or cancels a running
// job's context. Terminal jobs are unaffected.
func (h *Handle) Cancel() {
	p := h.pool
	p.mu.Lock()
	switch h.state {
	case Queued:
		heap.Remove(&p.queue, h.index)
		p.stats.Canceled++
		h.finishLocked(Canceled, ErrCanceled)
		p.checkIdleLocked()
		p.mu.Unlock()
	case Running:
		cancel := h.cancel
		p.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	default:
		p.mu.Unlock()
	}
}

// finishLocked moves the handle to a terminal state and releases waiters.
// Callers hold pool.mu.
func (h *Handle) finishLocked(s State, err error) {
	if h.state == Succeeded || h.state == Failed || h.state == Canceled {
		return
	}
	h.state = s
	h.err = err
	h.index = -1
	close(h.done)
}

// Stats is a snapshot of pool accounting.
type Stats struct {
	Workers   int
	Queued    int
	Running   int
	Succeeded int64
	Failed    int64
	Canceled  int64
	Rejected  int64
	Draining  bool
}

// Pool is the worker pool. Create with New; it is ready immediately.
type Pool struct {
	workers    int
	queueDepth int
	base       context.Context
	exec       Executor
	logger     *slog.Logger

	mu          sync.Mutex
	cond        *sync.Cond // work available or pool closing
	queue       jobHeap
	liveRunning map[*Handle]context.CancelFunc
	running     int
	seq         uint64
	draining    bool
	closed      bool
	idleCh      chan struct{} // closed when draining and no work remains
	stats       struct {
		Succeeded, Failed, Canceled, Rejected int64
	}
	wg sync.WaitGroup
}

// New builds and starts a pool.
func New(cfg Config) *Pool {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.BaseContext == nil {
		cfg.BaseContext = context.Background()
	}
	if cfg.Executor == nil {
		cfg.Executor = LocalExecutor{}
	}
	p := &Pool{
		workers:     cfg.Workers,
		queueDepth:  cfg.QueueDepth,
		base:        cfg.BaseContext,
		exec:        cfg.Executor,
		logger:      cfg.Logger,
		liveRunning: map[*Handle]context.CancelFunc{},
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(p.workers)
	for i := 0; i < p.workers; i++ {
		go p.worker()
	}
	return p
}

// Submit enqueues a job. It never blocks: a full queue returns
// ErrQueueFull, a draining or closed pool ErrDraining. On success the
// returned Handle tracks the job to completion.
func (p *Pool) Submit(j Job) (*Handle, error) {
	if j.Fn == nil {
		// Only the local executor needs Fn; a custom executor works off
		// the job's Payload and may leave it nil.
		if _, local := p.exec.(LocalExecutor); local {
			return nil, errors.New("jobqueue: job has nil Fn")
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining || p.closed {
		p.stats.Rejected++
		return nil, ErrDraining
	}
	if p.queue.Len() >= p.queueDepth {
		p.stats.Rejected++
		return nil, ErrQueueFull
	}
	p.seq++
	h := &Handle{job: j, seq: p.seq, pool: p, done: make(chan struct{}), state: Queued}
	heap.Push(&p.queue, h)
	p.cond.Signal()
	return h, nil
}

// Stats snapshots the pool's accounting.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Workers:   p.workers,
		Queued:    p.queue.Len(),
		Running:   p.running,
		Succeeded: p.stats.Succeeded,
		Failed:    p.stats.Failed,
		Canceled:  p.stats.Canceled,
		Rejected:  p.stats.Rejected,
		Draining:  p.draining,
	}
}

// Draining reports whether the pool has stopped accepting jobs.
func (p *Pool) Draining() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.draining
}

// Drain stops intake and waits until every accepted job has finished.
// When ctx expires first, all remaining jobs are canceled (queued jobs
// retire with ErrCanceled, running jobs get their contexts canceled) and
// Drain returns ctx.Err() after they exit. Drain is idempotent.
func (p *Pool) Drain(ctx context.Context) error {
	p.mu.Lock()
	first := !p.draining
	p.draining = true
	if p.idleCh == nil {
		p.idleCh = make(chan struct{})
	}
	idle := p.idleCh
	queued, running := p.queue.Len(), p.running
	p.checkIdleLocked()
	p.mu.Unlock()
	if first && p.logger != nil {
		p.logger.Info("pool draining", "component", "jobqueue", "queued", queued, "running", running)
	}

	select {
	case <-idle:
		return nil
	case <-ctx.Done():
	}

	// Deadline passed: cancel everything still in flight, then wait for
	// the workers to come to rest.
	p.mu.Lock()
	for p.queue.Len() > 0 {
		h := heap.Pop(&p.queue).(*Handle)
		p.stats.Canceled++
		h.finishLocked(Canceled, ErrCanceled)
	}
	cancels := make([]context.CancelFunc, 0, len(p.liveRunning))
	for _, cancel := range p.liveRunning {
		cancels = append(cancels, cancel)
	}
	p.checkIdleLocked()
	p.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	<-idle
	return ctx.Err()
}

// checkIdleLocked closes idleCh when a draining pool has no work left.
// Callers hold p.mu.
func (p *Pool) checkIdleLocked() {
	if p.draining && p.queue.Len() == 0 && p.running == 0 && p.idleCh != nil {
		select {
		case <-p.idleCh:
		default:
			close(p.idleCh)
		}
	}
}

// Close drains with no deadline and stops the workers. The pool cannot be
// reused afterwards.
func (p *Pool) Close() {
	p.Drain(context.Background())
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// worker runs jobs until the pool closes.
func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for p.queue.Len() == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.queue.Len() == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		h := heap.Pop(&p.queue).(*Handle)
		h.state = Running
		p.running++
		ctx, cancel := context.WithCancel(p.base)
		h.cancel = cancel
		p.liveRunning[h] = h.cancel
		p.mu.Unlock()

		if h.job.Timeout > 0 {
			var tcancel context.CancelFunc
			ctx, tcancel = context.WithTimeout(ctx, h.job.Timeout)
			err := runJob(ctx, p.exec, h.job)
			tcancel()
			cancel()
			p.settle(h, err)
			continue
		}
		err := runJob(ctx, p.exec, h.job)
		cancel()
		p.settle(h, err)
	}
}

// settle records a finished job's outcome and releases its waiters.
func (p *Pool) settle(h *Handle, err error) {
	p.mu.Lock()
	delete(p.liveRunning, h)
	p.running--
	switch {
	case err == nil:
		p.stats.Succeeded++
		h.finishLocked(Succeeded, nil)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		p.stats.Canceled++
		h.finishLocked(Canceled, err)
	default:
		p.stats.Failed++
		h.finishLocked(Failed, err)
		if p.logger != nil {
			p.logger.Warn("job failed", "component", "jobqueue", "job_id", h.job.ID, "error", err.Error())
		}
	}
	p.checkIdleLocked()
	p.mu.Unlock()
}

// runJob hands the job to the executor, converting a panic into an error.
func runJob(ctx context.Context, exec Executor, j Job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobqueue: job %q panicked: %v", j.ID, r)
		}
	}()
	if err := ctx.Err(); err != nil {
		return err
	}
	return exec.Execute(ctx, j)
}

// jobHeap orders handles by (higher priority, earlier submission).
type jobHeap []*Handle

func (q jobHeap) Len() int { return len(q) }
func (q jobHeap) Less(i, j int) bool {
	if q[i].job.Priority != q[j].job.Priority {
		return q[i].job.Priority > q[j].job.Priority
	}
	return q[i].seq < q[j].seq
}
func (q jobHeap) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *jobHeap) Push(x any) {
	h := x.(*Handle)
	h.index = len(*q)
	*q = append(*q, h)
}
func (q *jobHeap) Pop() any {
	old := *q
	n := len(old)
	h := old[n-1]
	old[n-1] = nil
	h.index = -1
	*q = old[:n-1]
	return h
}
