package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured logging for the service stack. Every record a daemon emits
// carries enough IDs to join it against spans and metrics: trace_id,
// job_id, worker, component. Packages take a *slog.Logger and treat nil as
// "off" — the nil check is the whole cost, keeping the
// no-collector-configured path free.

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (have debug, info, warn, error)", s)
}

// NewLogger builds a logger writing to w. format is "text" (default) or
// "json"; level is parsed by ParseLevel.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (have text, json)", format)
}

// nopHandler discards everything without formatting anything.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

// NopLogger returns a logger whose handler is disabled at every level, for
// call sites that want to drop the nil checks.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }
