// Package obs is the fleet-observability layer: request-scoped spans with
// trace propagation, plus structured-logger construction (log.go). Where
// internal/telemetry measures the *simulated* machine cycle by cycle, obs
// measures the *service* stack that runs it — queue waits, trace fetches,
// simulations, artifact encodes — per job, across processes.
//
// Every polyflowd job carries a Trace. Phase boundaries call StartSpan;
// when no Trace rides the context the call is an inert zero value, so
// library paths (harness grids, direct speculate runs) pay nothing. The
// trace ID crosses process boundaries in the X-Polyflow-Trace header: a
// coordinator stamps it on worker submissions, and after the cell
// completes it imports the worker's spans, so GET /v1/jobs/{id}/spans on
// the coordinator renders the whole fleet request as one Chrome
// trace-event timeline — loadable in Perfetto exactly like a simulated
// machine timeline from internal/telemetry.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// TraceHeader is the HTTP header that propagates a trace ID
// coordinator -> worker (and accepts caller-supplied IDs on submission).
const TraceHeader = "X-Polyflow-Trace"

// NewID returns a fresh 16-hex-digit trace ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to a fixed
		// ID rather than panicking the service path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidID reports whether a caller-supplied trace ID is acceptable: 1-64
// characters drawn from [a-zA-Z0-9_-]. Anything else is replaced with a
// fresh ID rather than echoed into logs and headers.
func ValidID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for _, r := range id {
		ok := r == '_' || r == '-' ||
			(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !ok {
			return false
		}
	}
	return true
}

// Span is one recorded phase of a traced request.
type Span struct {
	// Name is the phase ("queue_wait", "simulate", "artifact_encode", ...).
	Name string `json:"name"`
	// Host names the process that recorded the span; empty means the local
	// process. The coordinator stamps each worker's base URL on import, so
	// a joined timeline keeps one track per process.
	Host  string    `json:"host,omitempty"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Attrs are optional key/value annotations ("source=artifact",
	// "hit=true").
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Duration is the span's length.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Trace collects the spans of one request. It is safe for concurrent use:
// the job's runner, the SSE relay goroutine and the HTTP spans handler all
// touch it.
type Trace struct {
	id string

	mu       sync.Mutex
	spans    []Span
	onRecord func(Span)
}

// NewTrace builds a trace. An empty or invalid id gets a fresh one.
func NewTrace(id string) *Trace {
	if !ValidID(id) {
		id = NewID()
	}
	return &Trace{id: id}
}

// ID returns the trace ID.
func (t *Trace) ID() string { return t.id }

// Record appends one finished span.
func (t *Trace) Record(sp Span) {
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	fn := t.onRecord
	t.mu.Unlock()
	if fn != nil {
		fn(sp)
	}
}

// OnRecord installs a callback invoked (outside the trace lock) for every
// recorded span — the server feeds per-phase latency histograms this way.
func (t *Trace) OnRecord(fn func(Span)) {
	t.mu.Lock()
	t.onRecord = fn
	t.mu.Unlock()
}

// Import appends spans recorded by another process, stamping host on any
// span that does not already carry one.
func (t *Trace) Import(host string, spans []Span) {
	t.mu.Lock()
	for _, sp := range spans {
		if sp.Host == "" {
			sp.Host = host
		}
		t.spans = append(t.spans, sp)
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Export is the raw JSON form of a trace — what
// GET /v1/jobs/{id}/spans?format=raw serves and what the coordinator
// imports from workers.
type Export struct {
	TraceID string `json:"trace_id"`
	Spans   []Span `json:"spans"`
}

// Export snapshots the trace.
func (t *Trace) Export() Export {
	return Export{TraceID: t.id, Spans: t.Spans()}
}

// WriteJSON writes the raw export.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.Export())
}

// chromeSpanEvent mirrors the Chrome trace-event schema (the subset
// Perfetto needs); ts/dur are microseconds.
type chromeSpanEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome renders the trace as Chrome trace-event JSON: one process
// row, one thread track per recording host (coordinator first, workers in
// sorted order), every span a complete ("X") event with its attrs as args.
// Timestamps are microseconds relative to the earliest span start, so the
// timeline starts at zero like the simulated-cycle exports.
func (t *Trace) WriteChrome(w io.Writer) error {
	spans := t.Spans()
	var t0 time.Time
	hostSet := map[string]bool{}
	for _, sp := range spans {
		if t0.IsZero() || sp.Start.Before(t0) {
			t0 = sp.Start
		}
		hostSet[sp.Host] = true
	}
	hosts := make([]string, 0, len(hostSet))
	for h := range hostSet {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts) // "" (local) sorts first
	tid := map[string]int{}
	events := make([]chromeSpanEvent, 0, len(spans)+len(hosts)+1)
	events = append(events, chromeSpanEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "polyflow trace " + t.id},
	})
	for i, h := range hosts {
		tid[h] = i + 1
		label := h
		if label == "" {
			label = "local"
		}
		events = append(events, chromeSpanEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: i + 1,
			Args: map[string]any{"name": label},
		})
	}
	for _, sp := range spans {
		args := map[string]any{"trace_id": t.id}
		for k, v := range sp.Attrs {
			args[k] = v
		}
		dur := sp.End.Sub(sp.Start).Microseconds()
		if dur < 1 {
			dur = 1 // zero-width slices vanish in viewers
		}
		events = append(events, chromeSpanEvent{
			Name: sp.Name, Ph: "X",
			TS: sp.Start.Sub(t0).Microseconds(), Dur: dur,
			PID: 1, TID: tid[sp.Host],
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events, "displayTimeUnit": "ms"})
}

// DecodeExport parses a raw spans export.
func DecodeExport(data []byte) (Export, error) {
	var ex Export
	if err := json.Unmarshal(data, &ex); err != nil {
		return Export{}, fmt.Errorf("obs: decoding spans export: %w", err)
	}
	return ex, nil
}
