package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceIDs(t *testing.T) {
	a, b := NewID(), NewID()
	if a == b {
		t.Fatalf("NewID returned the same ID twice: %s", a)
	}
	if !ValidID(a) || !ValidID(b) {
		t.Fatalf("generated IDs fail ValidID: %s %s", a, b)
	}
	for _, bad := range []string{"", "has space", "semi;colon", strings.Repeat("x", 65), "newline\n"} {
		if ValidID(bad) {
			t.Errorf("ValidID(%q) = true, want false", bad)
		}
	}
	if tr := NewTrace("injected; DROP"); !ValidID(tr.ID()) {
		t.Fatalf("invalid supplied ID was echoed: %q", tr.ID())
	}
	if tr := NewTrace("abc-DEF_123"); tr.ID() != "abc-DEF_123" {
		t.Fatalf("valid supplied ID replaced: %q", tr.ID())
	}
}

func TestStartSpanRecords(t *testing.T) {
	tr := NewTrace("")
	ctx := With(context.Background(), tr)
	if IDFrom(ctx) != tr.ID() {
		t.Fatalf("IDFrom = %q, want %q", IDFrom(ctx), tr.ID())
	}
	end := StartSpan(ctx, "simulate")
	time.Sleep(time.Millisecond)
	end.End("hit", "false", "dangling")
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Name != "simulate" || sp.Attrs["hit"] != "false" {
		t.Fatalf("span = %+v", sp)
	}
	if _, ok := sp.Attrs["dangling"]; ok {
		t.Fatal("odd trailing attr key was recorded")
	}
	if sp.Duration() <= 0 {
		t.Fatalf("duration = %v", sp.Duration())
	}
}

func TestOnRecordCallback(t *testing.T) {
	tr := NewTrace("")
	var got []string
	tr.OnRecord(func(sp Span) { got = append(got, sp.Name) })
	ctx := With(context.Background(), tr)
	StartSpan(ctx, "a").End()
	StartSpan(ctx, "b").End()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("callback saw %v", got)
	}
}

// TestStartSpanDisabledZeroAlloc pins the off-path contract: an untraced
// context records nothing and allocates nothing (the
// TestTelemetryOffIsIdentical analogue for the service layer).
func TestStartSpanDisabledZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		end := StartSpan(ctx, "simulate")
		end.End("k", "v")
	})
	if allocs != 0 {
		t.Fatalf("disabled StartSpan allocates %v per call, want 0", allocs)
	}
}

func TestImportStampsHost(t *testing.T) {
	tr := NewTrace("root")
	tr.Import("http://w1:8181", []Span{
		{Name: "simulate"},
		{Name: "relabeled", Host: "elsewhere"},
	})
	spans := tr.Spans()
	if spans[0].Host != "http://w1:8181" {
		t.Fatalf("host not stamped: %+v", spans[0])
	}
	if spans[1].Host != "elsewhere" {
		t.Fatalf("existing host overwritten: %+v", spans[1])
	}
}

func TestExportRoundTrip(t *testing.T) {
	tr := NewTrace("roundtrip")
	ctx := With(context.Background(), tr)
	StartSpan(ctx, "queue_wait").End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	ex, err := DecodeExport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if ex.TraceID != "roundtrip" || len(ex.Spans) != 1 || ex.Spans[0].Name != "queue_wait" {
		t.Fatalf("export = %+v", ex)
	}
	if _, err := DecodeExport([]byte("{nope")); err == nil {
		t.Fatal("malformed export decoded")
	}
}

// TestWriteChrome checks the trace-event JSON shape: metadata rows per
// host, complete events with relative microsecond timestamps, trace_id in
// args.
func TestWriteChrome(t *testing.T) {
	tr := NewTrace("chrome1")
	base := time.Now()
	tr.Record(Span{Name: "queue_wait", Start: base, End: base.Add(2 * time.Millisecond)})
	tr.Record(Span{Name: "simulate", Host: "http://w1:8181", Start: base.Add(2 * time.Millisecond), End: base.Add(9 * time.Millisecond)})
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not JSON: %v\n%s", err, buf.String())
	}
	var sawLocal, sawWorker, sawSim bool
	tids := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			name := ev.Args["name"].(string)
			tids[name] = ev.TID
			sawLocal = sawLocal || name == "local"
			sawWorker = sawWorker || name == "http://w1:8181"
		case ev.Ph == "X" && ev.Name == "simulate":
			sawSim = true
			if ev.TS != 2000 || ev.Dur != 7000 {
				t.Fatalf("simulate ts=%d dur=%d, want 2000/7000", ev.TS, ev.Dur)
			}
			if ev.Args["trace_id"] != "chrome1" {
				t.Fatalf("simulate args = %v", ev.Args)
			}
			if ev.TID != tids["http://w1:8181"] {
				t.Fatalf("simulate on tid %d, worker track is %d", ev.TID, tids["http://w1:8181"])
			}
		}
	}
	if !sawLocal || !sawWorker || !sawSim {
		t.Fatalf("missing rows: local=%v worker=%v sim=%v\n%s", sawLocal, sawWorker, sawSim, buf.String())
	}
}

func TestLoggerConstruction(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hello", "job_id", "j1")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json log line invalid: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "hello" || rec["job_id"] != "j1" {
		t.Fatalf("record = %v", rec)
	}
	buf.Reset()
	lg, err = NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept", "k", "v")
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Fatalf("level filtering broken: %q", out)
	}
	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Fatal("bad format accepted")
	}
	NopLogger().Error("nothing happens")
}
