package obs

import (
	"context"
	"time"
)

type traceKey struct{}

// With attaches a trace to the context; phase code downstream records
// spans through StartSpan without knowing who is listening.
func With(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// From returns the context's trace, or nil when the request is untraced.
func From(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// IDFrom returns the context's trace ID, or "" when untraced — what the
// HTTP client stamps into the X-Polyflow-Trace header.
func IDFrom(ctx context.Context) string {
	if t := From(ctx); t != nil {
		return t.id
	}
	return ""
}

// SpanEnd finishes an open span. It is a small value (not a closure) so
// the disabled path stays allocation-free: with a nil trace the variadic
// attr slice never escapes and End is a branch on nil.
type SpanEnd struct {
	t     *Trace
	name  string
	start time.Time
}

// StartSpan opens a phase span on the context's trace. On an untraced
// context it returns the inert zero SpanEnd: no allocations, no clock
// reads — the zero-overhead contract the off-guard test pins.
func StartSpan(ctx context.Context, name string) SpanEnd {
	t := From(ctx)
	if t == nil {
		return SpanEnd{}
	}
	return SpanEnd{t: t, name: name, start: time.Now()}
}

// End records the span, optionally attaching alternating key, value
// attribute pairs (a trailing odd key is dropped). A no-op on the zero
// SpanEnd.
func (e SpanEnd) End(attrs ...string) {
	if e.t == nil {
		return
	}
	sp := Span{Name: e.name, Start: e.start, End: time.Now()}
	if len(attrs) >= 2 {
		sp.Attrs = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			sp.Attrs[attrs[i]] = attrs[i+1]
		}
	}
	e.t.Record(sp)
}
