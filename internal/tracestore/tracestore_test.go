package tracestore

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// realTrace emulates a workload and returns its trace plus deps, capped so
// unit tests stay fast.
func realTrace(t testing.TB, name string, maxInstrs int) (*trace.Trace, *trace.Deps) {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	// A capped run stops before halt; the prefix trace is still a valid
	// entry stream and keeps the test fast.
	tr, err := emu.Run(w.Assemble(), emu.Config{MaxInstrs: maxInstrs})
	if err != nil && (tr == nil || len(tr.Entries) == 0) {
		t.Fatalf("emulating %s: %v", name, err)
	}
	return tr, tr.ComputeDeps()
}

// synthTrace builds a hand-crafted trace exercising every entry shape:
// loads, stores, no-dst ops, 0/1/2 sources, backward PC deltas, large
// address jumps.
func synthTrace() (*trace.Trace, *trace.Deps) {
	tr := &trace.Trace{Entries: []trace.Entry{
		{PC: 0x1000, Next: 0x1004, Op: 1, Dst: 3, NSrc: 0, Flags: trace.FlagHasDst},
		{PC: 0x1004, Next: 0x1008, Op: 2, Dst: 4, Srcs: [2]isaReg{3, 0}, NSrc: 2, Flags: trace.FlagHasDst},
		{PC: 0x1008, Next: 0x100c, Addr: 0xdeadbee0, Op: 3, Dst: 5, Srcs: [2]isaReg{4}, NSrc: 1, MemW: 8, Flags: trace.FlagHasDst | trace.FlagLoad},
		{PC: 0x100c, Next: 0x0ff0, Addr: 0x10, Op: 4, Srcs: [2]isaReg{5, 4}, NSrc: 2, MemW: 4, Flags: trace.FlagStore},
		{PC: 0x0ff0, Next: 0x1000, Op: 5, NSrc: 1, Srcs: [2]isaReg{3}, Flags: trace.FlagCondBranch | trace.FlagTaken},
		{PC: 0x1000, Next: 0x1004, Op: 1, Dst: 3, NSrc: 0, Flags: trace.FlagHasDst},
	}}
	return tr, tr.ComputeDeps()
}

type isaReg = isa.Reg

func roundtrip(t *testing.T, tr *trace.Trace, d *trace.Deps) []byte {
	t.Helper()
	data, err := Encode(tr, d)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, gotDeps, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got.Entries, tr.Entries) {
		t.Fatalf("entries differ after roundtrip (n=%d vs %d)", len(got.Entries), len(tr.Entries))
	}
	if !reflect.DeepEqual(gotDeps, d) {
		t.Fatalf("deps differ after roundtrip")
	}
	re, err := Encode(got, gotDeps)
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(re, data) {
		t.Fatalf("re-encode not byte-identical: %d vs %d bytes", len(re), len(data))
	}
	return data
}

func TestRoundtripSynthetic(t *testing.T) {
	tr, d := synthTrace()
	data := roundtrip(t, tr, d)

	// The decoded occurrence index must match the lazily built one.
	got, _, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range []uint64{0x1000, 0x1004, 0x0ff0, 0x9999} {
		want := tr.Occurrences(pc)
		if !reflect.DeepEqual(got.Occurrences(pc), want) {
			t.Errorf("occurrences for %#x differ: %v vs %v", pc, got.Occurrences(pc), want)
		}
	}
}

func TestRoundtripEmpty(t *testing.T) {
	tr := &trace.Trace{}
	roundtrip(t, tr, tr.ComputeDeps())
}

func TestRoundtripWorkloads(t *testing.T) {
	// Real traces, including one long enough to span multiple entry frames.
	for _, tc := range []struct {
		name string
		max  int
	}{{"gzip", 20000}, {"mcf", 6000}, {"twolf", 3000}} {
		t.Run(tc.name, func(t *testing.T) {
			tr, d := realTrace(t, tc.name, tc.max)
			if tc.name == "gzip" && len(tr.Entries) <= chunkEntries {
				t.Fatalf("want >%d entries to cover multi-frame path, got %d", chunkEntries, len(tr.Entries))
			}
			roundtrip(t, tr, d)
		})
	}
}

func TestReplayStreamsEntries(t *testing.T) {
	tr, d := realTrace(t, "gzip", 20000)
	data, err := Encode(tr, d)
	if err != nil {
		t.Fatal(err)
	}
	r := Open(bytes.NewReader(data), int64(len(data)))
	var got []trace.Entry
	if err := r.Replay(func(i int, e *trace.Entry) bool {
		if i != len(got) {
			t.Fatalf("index %d out of order (want %d)", i, len(got))
		}
		got = append(got, *e) // e is reused; copy
		return true
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !reflect.DeepEqual(got, tr.Entries) {
		t.Fatalf("replayed entries differ")
	}

	// Early stop; the same Open reader replays again from the start.
	n := 0
	if err := r.Replay(func(i int, e *trace.Entry) bool {
		n++
		return n < 10
	}); err != nil {
		t.Fatalf("early-stop Replay: %v", err)
	}
	if n != 10 {
		t.Fatalf("early stop visited %d entries, want 10", n)
	}
}

func TestSequentialReaderSingleUse(t *testing.T) {
	tr, d := synthTrace()
	data, err := Encode(tr, d)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(data))
	if _, _, err := r.Load(); err != nil {
		t.Fatalf("first Load: %v", err)
	}
	if _, _, err := r.Load(); err == nil {
		t.Fatal("second Load on a sequential reader should fail")
	}
}

func TestTruncationAndCorruption(t *testing.T) {
	tr, d := realTrace(t, "mcf", 4000)
	data, err := Encode(tr, d)
	if err != nil {
		t.Fatal(err)
	}

	// Every strict prefix must error (never panic, never succeed). Probe a
	// spread of cut points plus all short prefixes.
	cuts := []int{0, 1, 4, 5, 6, len(data) / 3, len(data) / 2, len(data) - 5, len(data) - 1}
	for _, cut := range cuts {
		if _, _, err := Decode(data[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation at %d: got %v, want ErrCorrupt", cut, err)
		}
	}

	// Trailing garbage after the end frame.
	if _, _, err := Decode(append(append([]byte{}, data...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing byte: got %v, want ErrCorrupt", err)
	}

	// Single-byte corruption at a spread of offsets: either checksum or
	// structural validation must catch it — or, if it decodes (e.g. a flip
	// inside a CRC that happens to collide — impossible for single flips,
	// but keep the check honest), it must re-encode canonically.
	for off := 0; off < len(data); off += 97 {
		mut := append([]byte{}, data...)
		mut[off] ^= 0x40
		got, gotDeps, err := Decode(mut)
		if err == nil {
			re, rerr := Encode(got, gotDeps)
			if rerr != nil || !bytes.Equal(re, mut) {
				t.Errorf("corruption at %d decoded non-canonically", off)
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("corruption at %d: got %v, want ErrCorrupt", off, err)
		}
	}
}

func TestUnencodableEntries(t *testing.T) {
	base := trace.Entry{PC: 4, Next: 8, Op: 1}
	for name, e := range map[string]trace.Entry{
		"addr-on-nonmem":  {PC: 4, Next: 8, Addr: 8},
		"memw-on-nonmem":  {PC: 4, Next: 8, MemW: 4},
		"dst-without-has": {PC: 4, Next: 8, Dst: 3},
		"nsrc-over-2":     {PC: 4, Next: 8, NSrc: 3},
		"src-beyond-nsrc": {PC: 4, Next: 8, NSrc: 1, Srcs: [2]isaReg{1, 2}},
	} {
		t.Run(name, func(t *testing.T) {
			w := NewWriter(io.Discard)
			if err := w.Append(base); err != nil {
				t.Fatal(err)
			}
			if err := w.Append(e); !errors.Is(err, ErrUnencodable) {
				t.Fatalf("got %v, want ErrUnencodable", err)
			}
		})
	}
}

func TestFinishValidatesDeps(t *testing.T) {
	tr, _ := synthTrace()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range tr.Entries {
		if err := w.Append(tr.Entries[i]); err != nil {
			t.Fatal(err)
		}
	}
	short := &trace.Deps{RegProd: make([][2]int32, 2), MemProd: make([]int32, 2)}
	if err := w.Finish(short); !errors.Is(err, ErrUnencodable) {
		t.Fatalf("short deps: got %v, want ErrUnencodable", err)
	}

	// Future producer index must be rejected.
	tr2, d2 := synthTrace()
	d2.RegProd[1][0] = 5
	if _, err := Encode(tr2, d2); !errors.Is(err, ErrUnencodable) {
		t.Fatalf("future producer: got %v, want ErrUnencodable", err)
	}
}
