package tracestore

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

// synthFromBytes derives a valid trace deterministically from arbitrary
// fuzz bytes: each 4-byte window drives one entry's shape (memory kind,
// destination, source count, control flow), with registers masked into
// range and deps derived by the reference scan — so every synthesized
// trace is encodable and the fuzzer steers entry-stream shape directly.
func synthFromBytes(data []byte) (*trace.Trace, *trace.Deps) {
	tr := &trace.Trace{}
	pc := uint64(0x1000)
	addr := uint64(0x10000)
	for i := 0; i+4 <= len(data); i += 4 {
		b0, b1, b2, b3 := data[i], data[i+1], data[i+2], data[i+3]
		e := trace.Entry{PC: pc, Op: isa.Op(b2)}
		switch b0 & 3 {
		case 0:
			e.Next = pc + isa.InstSize
		case 1:
			e.Next = pc + isa.InstSize + uint64(b1)*isa.InstSize
		case 2:
			e.Next = pc - uint64(b1)*isa.InstSize // backward, may wrap
		case 3:
			e.Next = 0x1000
		}
		switch (b0 >> 2) & 3 {
		case 1:
			e.Flags |= trace.FlagLoad
		case 2:
			e.Flags |= trace.FlagStore
		}
		if e.IsLoad() || e.IsStore() {
			e.MemW = 1 << (b3 & 3)
			addr += uint64(b1)
			e.Addr = addr
		}
		if b0&0x40 != 0 {
			e.Flags |= trace.FlagHasDst
			e.Dst = isa.Reg(b2 % isa.NumRegs)
		}
		if b0&0x80 != 0 {
			e.Flags |= trace.FlagCondBranch
			if b1&1 != 0 {
				e.Flags |= trace.FlagTaken
			}
		}
		e.NSrc = b3 % 3
		for k := 0; k < int(e.NSrc); k++ {
			e.Srcs[k] = isa.Reg((b1 + byte(k)) % isa.NumRegs)
		}
		tr.Entries = append(tr.Entries, e)
		pc = e.Next
	}
	return tr, tr.ComputeDeps()
}

// FuzzTraceCodec holds the codec's two contracts under arbitrary input:
// decoding never panics and rejects anything non-canonical, and every
// successful decode — plus every encode of a valid trace — round-trips
// byte-identically.
func FuzzTraceCodec(f *testing.F) {
	// Seeds: an empty input, a truncated header, real encodings of small
	// synthetic traces, and a corrupted one.
	f.Add([]byte{})
	f.Add([]byte("PFTR\x01"))
	for _, raw := range [][]byte{
		{},
		{0x41, 7, 3, 0},
		{0x45, 1, 2, 2, 0x88, 200, 31, 1, 0xc6, 9, 9, 9, 0x03, 0, 0, 0},
	} {
		tr, d := synthFromBytes(raw)
		enc, err := Encode(tr, d)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		if len(enc) > 8 {
			bad := append([]byte{}, enc...)
			bad[len(bad)/2] ^= 0x10
			f.Add(bad)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Contract 1: arbitrary bytes either decode or error — no panics —
		// and whatever decodes re-encodes to the exact input bytes.
		if tr, deps, err := Decode(data); err == nil {
			re, rerr := Encode(tr, deps)
			if rerr != nil {
				t.Fatalf("decoded stream does not re-encode: %v", rerr)
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("re-encode differs from accepted input (%d vs %d bytes)", len(re), len(data))
			}
		}

		// Contract 2: every synthesizable trace round-trips exactly.
		tr, deps := synthFromBytes(data)
		enc, err := Encode(tr, deps)
		if err != nil {
			t.Fatalf("synthesized trace rejected: %v", err)
		}
		got, gotDeps, err := Decode(enc)
		if err != nil {
			t.Fatalf("synthesized encoding rejected: %v", err)
		}
		if len(got.Entries) != len(tr.Entries) || (len(tr.Entries) > 0 && !reflect.DeepEqual(got.Entries, tr.Entries)) {
			t.Fatal("entries mutated in roundtrip")
		}
		if !reflect.DeepEqual(gotDeps, deps) {
			t.Fatal("deps mutated in roundtrip")
		}
		re, err := Encode(got, gotDeps)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(re, enc) {
			t.Fatal("re-encode not byte-identical")
		}
	})
}
