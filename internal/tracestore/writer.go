package tracestore

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"repro/internal/isa"
	"repro/internal/trace"
)

func unencodablef(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUnencodable, fmt.Sprintf(format, args...))
}

// Writer streams a trace into the polyflow-trace/1 format: entries are
// appended one at a time (encoded and flushed in bounded chunks, so writer
// memory does not hold the encoded stream), and Finish serializes the
// occurrence index — accumulated incrementally during Append — plus the
// caller-supplied dependence information and the end frame.
type Writer struct {
	w   io.Writer
	err error

	buf      []byte // payload of the frame being built
	chunkN   int    // entries in the current 'E' frame
	n        int    // total entries appended
	prevPC   uint64
	prevAddr uint64

	occ    map[uint64][]int32
	occPCs []uint64

	// meta remembers, per entry, the source count and load bit the deps
	// section needs at Finish (loadBit<<7 | nsrc).
	meta []uint8

	finished bool
}

// NewWriter starts a trace stream on w, writing the format header.
func NewWriter(w io.Writer) *Writer {
	tw := &Writer{
		w:   w,
		buf: make([]byte, 0, frameTarget+1024),
		occ: map[uint64][]int32{},
	}
	hdr := append(magic[:], version)
	if _, err := w.Write(hdr); err != nil {
		tw.err = err
	}
	return tw
}

// Append encodes one retired entry. It fails with ErrUnencodable when the
// entry carries state the format would silently drop, so every encoded
// stream decodes back to exactly the input.
func (tw *Writer) Append(e trace.Entry) error {
	if tw.err != nil {
		return tw.err
	}
	if tw.finished {
		tw.err = fmt.Errorf("tracestore: Append after Finish")
		return tw.err
	}
	isMem := e.IsLoad() || e.IsStore()
	switch {
	case !isMem && (e.Addr != 0 || e.MemW != 0):
		tw.err = unencodablef("entry %d: non-memory op carries Addr=%#x MemW=%d", tw.n, e.Addr, e.MemW)
	case !e.HasDst() && e.Dst != 0:
		tw.err = unencodablef("entry %d: no-dst op carries Dst=%d", tw.n, e.Dst)
	case e.NSrc > 2:
		tw.err = unencodablef("entry %d: NSrc=%d exceeds 2", tw.n, e.NSrc)
	case e.NSrc < 2 && e.Srcs[1] != 0, e.NSrc < 1 && e.Srcs[0] != 0:
		tw.err = unencodablef("entry %d: source register beyond NSrc=%d is set", tw.n, e.NSrc)
	}
	if tw.err != nil {
		return tw.err
	}

	tw.buf = append(tw.buf, e.Flags, uint8(e.Op))
	tw.buf = appendUvarint(tw.buf, zigzag(int64(e.PC-tw.prevPC)))
	tw.buf = appendUvarint(tw.buf, zigzag(int64(e.Next-(e.PC+isa.InstSize))))
	tw.prevPC = e.PC
	if isMem {
		tw.buf = append(tw.buf, e.MemW)
		tw.buf = appendUvarint(tw.buf, zigzag(int64(e.Addr-tw.prevAddr)))
		tw.prevAddr = e.Addr
	}
	if e.HasDst() {
		tw.buf = append(tw.buf, uint8(e.Dst))
	}
	tw.buf = append(tw.buf, e.NSrc)
	for k := 0; k < int(e.NSrc); k++ {
		tw.buf = append(tw.buf, uint8(e.Srcs[k]))
	}

	if _, seen := tw.occ[e.PC]; !seen {
		tw.occPCs = append(tw.occPCs, e.PC)
	}
	tw.occ[e.PC] = append(tw.occ[e.PC], int32(tw.n))
	m := e.NSrc
	if e.IsLoad() {
		m |= 1 << 7
	}
	tw.meta = append(tw.meta, m)
	tw.n++
	tw.chunkN++
	if tw.chunkN == chunkEntries {
		tw.flushEntries()
	}
	return tw.err
}

// Finish writes the occurrence and dependence sections and the end frame.
// d must be the trace's ComputeDeps product, covering every appended entry.
func (tw *Writer) Finish(d *trace.Deps) error {
	if tw.err != nil {
		return tw.err
	}
	if tw.finished {
		tw.err = fmt.Errorf("tracestore: Finish called twice")
		return tw.err
	}
	tw.finished = true
	if d == nil || len(d.RegProd) != tw.n || len(d.MemProd) != tw.n {
		tw.err = unencodablef("deps cover %d entries, trace has %d", depsLen(d), tw.n)
		return tw.err
	}
	tw.flushEntries()

	// Occurrence section: ascending PCs, ascending index lists.
	sort.Slice(tw.occPCs, func(i, j int) bool { return tw.occPCs[i] < tw.occPCs[j] })
	framePCs := 0
	var prevPC uint64
	for _, pc := range tw.occPCs {
		if framePCs == 0 {
			prevPC = 0 // delta state resets at each frame boundary
		}
		tw.buf = appendUvarint(tw.buf, pc-prevPC)
		prevPC = pc
		idxs := tw.occ[pc]
		tw.buf = appendUvarint(tw.buf, uint64(len(idxs)))
		prev := int32(0)
		for k, ix := range idxs {
			if k == 0 {
				tw.buf = appendUvarint(tw.buf, uint64(ix))
			} else {
				tw.buf = appendUvarint(tw.buf, uint64(ix-prev))
			}
			prev = ix
		}
		framePCs++
		if len(tw.buf) >= frameTarget {
			tw.emit(kindOcc, uint64(framePCs))
			framePCs = 0
		}
	}
	tw.emit(kindOcc, uint64(framePCs)) // final (possibly empty) frame

	// Dependence section: producers relative to the consuming index.
	frameN := 0
	for i := 0; i < tw.n && tw.err == nil; i++ {
		nsrc := int(tw.meta[i] & 0x7f)
		for k := 0; k < nsrc; k++ {
			prod := d.RegProd[i][k]
			if prod < -1 || int(prod) >= i {
				tw.err = unencodablef("entry %d: register producer %d out of range", i, prod)
				return tw.err
			}
			tw.buf = appendUvarint(tw.buf, zigzag(int64(prod)-int64(i)))
		}
		for k := nsrc; k < 2; k++ {
			if d.RegProd[i][k] != 0 {
				tw.err = unencodablef("entry %d: register producer beyond NSrc is set", i)
				return tw.err
			}
		}
		if tw.meta[i]&(1<<7) != 0 {
			prod := d.MemProd[i]
			if prod < -1 || int(prod) >= i {
				tw.err = unencodablef("entry %d: memory producer %d out of range", i, prod)
				return tw.err
			}
			tw.buf = appendUvarint(tw.buf, zigzag(int64(prod)-int64(i)))
		} else if d.MemProd[i] != -1 {
			tw.err = unencodablef("entry %d: non-load carries memory producer %d", i, d.MemProd[i])
			return tw.err
		}
		frameN++
		if len(tw.buf) >= frameTarget {
			tw.emit(kindDeps, uint64(frameN))
			frameN = 0
		}
	}
	tw.emit(kindDeps, uint64(frameN)) // final (possibly empty) frame

	tw.emit(kindEnd, uint64(tw.n))
	return tw.err
}

// flushEntries emits the current 'E' frame and resets the per-chunk delta
// state. Empty chunks are skipped: 'E' frames always carry entries.
func (tw *Writer) flushEntries() {
	if tw.chunkN == 0 {
		return
	}
	tw.emit(kindEntries, uint64(tw.chunkN))
	tw.chunkN = 0
	tw.prevPC = 0
	tw.prevAddr = 0
}

// emit frames tw.buf as one kind/count/len/payload/crc record.
func (tw *Writer) emit(kind byte, count uint64) {
	if tw.err != nil {
		return
	}
	var hdr [2 * 10]byte
	h := append(hdr[:0], kind)
	h = appendUvarint(h, count)
	h = appendUvarint(h, uint64(len(tw.buf)))
	if _, err := tw.w.Write(h); err != nil {
		tw.err = err
		return
	}
	if _, err := tw.w.Write(tw.buf); err != nil {
		tw.err = err
		return
	}
	var crc [4]byte
	putCRC(crc[:], tw.buf)
	if _, err := tw.w.Write(crc[:]); err != nil {
		tw.err = err
		return
	}
	tw.buf = tw.buf[:0]
}

func putCRC(dst, payload []byte) {
	c := crc32.Checksum(payload, crcTable)
	dst[0] = byte(c)
	dst[1] = byte(c >> 8)
	dst[2] = byte(c >> 16)
	dst[3] = byte(c >> 24)
}

// Encode serializes a complete trace plus its dependence information to
// bytes — the payload stored in the artifact cache and served by
// GET /v1/traces/{bench}.
func Encode(t *trace.Trace, d *trace.Deps) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(64 + len(t.Entries)*8)
	w := NewWriter(&buf)
	for i := range t.Entries {
		if err := w.Append(t.Entries[i]); err != nil {
			return nil, err
		}
	}
	if err := w.Finish(d); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func depsLen(d *trace.Deps) int {
	if d == nil {
		return 0
	}
	return len(d.RegProd)
}
