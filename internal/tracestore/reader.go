package tracestore

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/isa"
	"repro/internal/trace"
)

// Reader decodes a polyflow-trace/1 stream. A Reader built with NewReader
// consumes its io.Reader once (Load or Replay, not both); one built with
// Open seeks the ReaderAt from the start on every call, so the same Reader
// can eagerly Load and lazily Replay any number of times without holding
// the decoded trace in memory between uses.
type Reader struct {
	r    io.Reader
	ra   io.ReaderAt
	data []byte
	size int64
	used bool
}

// NewReader wraps a sequential stream. The stream is consumed by the first
// Load or Replay call.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Open wraps a random-access source of the given size (a file, an mmap, a
// bytes.Reader over a cached artifact); every Load/Replay decodes from the
// start.
func Open(ra io.ReaderAt, size int64) *Reader { return &Reader{ra: ra, size: size} }

// Decode eagerly parses a complete in-memory artifact. The bytes are
// parsed in place (frame payloads are not copied), so this is the fast
// path the batched run path and the artifact cache use.
func Decode(data []byte) (*trace.Trace, *trace.Deps, error) {
	return (&Reader{data: data, size: int64(len(data))}).Load()
}

func (r *Reader) parser() (*parser, error) {
	if r.data != nil {
		return &parser{data: r.data}, nil
	}
	if r.ra != nil {
		return &parser{br: bufio.NewReaderSize(io.NewSectionReader(r.ra, 0, r.size), 64<<10)}, nil
	}
	if r.used {
		return nil, fmt.Errorf("tracestore: sequential Reader already consumed (use Open for repeatable access)")
	}
	r.used = true
	return &parser{br: bufio.NewReaderSize(r.r, 64<<10)}, nil
}

// Load decodes the whole stream: entries, the occurrence index (installed
// into the returned Trace, so NextOccurrence skips the rebuild), and the
// dependence information. Both indexes are cross-validated against the
// decoded entries, so a successful Load returns exactly what the emulator
// pipeline would have produced; any inconsistency, truncation, or checksum
// failure returns an error wrapping ErrCorrupt.
func (r *Reader) Load() (*trace.Trace, *trace.Deps, error) {
	p, err := r.parser()
	if err != nil {
		return nil, nil, err
	}
	if err := p.header(); err != nil {
		return nil, nil, err
	}

	const (
		stEntries = iota
		stOcc
		stDeps
	)
	stage := stEntries
	// The stream size bounds the entry count (each entry encodes to at
	// least 5 bytes), so a size-derived capacity avoids regrowing what is
	// by far the largest allocation. Unknown size (NewReader) degrades to
	// plain append growth.
	entries := make([]trace.Entry, 0, int(r.size/8))
	occ := map[uint64][]int32{}
	var occBacking []int32
	occTotal := 0
	var lastPC uint64
	havePC := false
	var deps *trace.Deps
	depi := 0
	// Chunking canonicality: the writer emits full entry frames (exactly
	// chunkEntries) except the last, and flushes occurrence/dependence
	// frames only at frameTarget, so a section's last frame is the only one
	// under the threshold. Enforcing that here means every stream that
	// decodes is exactly the one the writer would emit — the byte-identity
	// invariant FuzzTraceCodec exercises.
	prevEntryCount := uint64(chunkEntries)
	occClosed, depsClosed := false, false

	for {
		kind, count, payload, err := p.frame()
		if err != nil {
			return nil, nil, err
		}
		switch kind {
		case kindEntries:
			if stage != stEntries {
				return nil, nil, corruptf("entry frame after index sections")
			}
			if count == 0 || count > chunkEntries {
				return nil, nil, corruptf("entry frame count %d out of range", count)
			}
			if prevEntryCount != chunkEntries {
				return nil, nil, corruptf("undersized entry frame is not last")
			}
			prevEntryCount = count
			if err := decodeEntries(payload, int(count), func(e *trace.Entry) bool {
				entries = append(entries, *e)
				return true
			}); err != nil {
				return nil, nil, err
			}
		case kindOcc:
			if stage == stEntries {
				stage = stOcc
			}
			if stage != stOcc {
				return nil, nil, corruptf("occurrence frame out of order")
			}
			if occClosed {
				return nil, nil, corruptf("occurrence frame after the section's final frame")
			}
			occClosed = len(payload) < frameTarget
			if occBacking == nil {
				// Exactly one index per entry across the whole section, so
				// one backing array serves every per-PC list.
				occBacking = make([]int32, 0, len(entries))
			}
			if err := decodeOcc(payload, int(count), entries, occ, &occBacking, &lastPC, &havePC, &occTotal); err != nil {
				return nil, nil, err
			}
		case kindDeps:
			if stage == stOcc {
				if !occClosed {
					return nil, nil, corruptf("occurrence section missing its final frame")
				}
				if occTotal != len(entries) {
					return nil, nil, corruptf("occurrence index covers %d of %d entries", occTotal, len(entries))
				}
				stage = stDeps
				deps = &trace.Deps{
					RegProd: make([][2]int32, len(entries)),
					MemProd: make([]int32, len(entries)),
				}
				for i := range deps.MemProd {
					deps.MemProd[i] = -1
				}
			}
			if stage != stDeps {
				return nil, nil, corruptf("dependence frame out of order")
			}
			if depsClosed {
				return nil, nil, corruptf("dependence frame after the section's final frame")
			}
			depsClosed = len(payload) < frameTarget
			if err := decodeDeps(payload, int(count), entries, deps, &depi); err != nil {
				return nil, nil, err
			}
		case kindEnd:
			if stage != stDeps {
				return nil, nil, corruptf("end frame before index sections")
			}
			if !depsClosed {
				return nil, nil, corruptf("dependence section missing its final frame")
			}
			if depi != len(entries) {
				return nil, nil, corruptf("dependence section covers %d of %d entries", depi, len(entries))
			}
			if count != uint64(len(entries)) {
				return nil, nil, corruptf("end frame declares %d entries, decoded %d", count, len(entries))
			}
			if len(payload) != 0 {
				return nil, nil, corruptf("end frame carries %d payload bytes", len(payload))
			}
			if err := p.expectEOF(); err != nil {
				return nil, nil, err
			}
			if len(entries) == 0 {
				entries = nil // an empty trace round-trips as nil, like the emulator produces
			}
			t := &trace.Trace{Entries: entries}
			t.RestoreIndex(occ)
			return t, deps, nil
		default:
			return nil, nil, corruptf("unknown frame kind %#x", kind)
		}
	}
}

// Replay streams the entry section with bounded memory: fn is called once
// per entry, in order, with a reused Entry (copy it if retained); returning
// false stops the replay early with a nil error. Frame checksums are
// verified as they stream by; the occurrence and dependence sections are
// checksummed and skipped, not decoded.
func (r *Reader) Replay(fn func(i int, e *trace.Entry) bool) error {
	p, err := r.parser()
	if err != nil {
		return err
	}
	if err := p.header(); err != nil {
		return err
	}
	n := 0
	stopped := false
	sawIndex := false
	prevEntryCount := uint64(chunkEntries)
	for {
		kind, count, payload, err := p.frame()
		if err != nil {
			return err
		}
		switch kind {
		case kindEntries:
			if sawIndex {
				return corruptf("entry frame after index sections")
			}
			if count == 0 || count > chunkEntries {
				return corruptf("entry frame count %d out of range", count)
			}
			if prevEntryCount != chunkEntries {
				return corruptf("undersized entry frame is not last")
			}
			prevEntryCount = count
			if stopped {
				continue
			}
			if err := decodeEntries(payload, int(count), func(e *trace.Entry) bool {
				keep := fn(n, e)
				n++
				if !keep {
					stopped = true
				}
				return keep
			}); err != nil {
				return err
			}
		case kindOcc, kindDeps:
			sawIndex = true // checksummed by p.frame, content skipped
		case kindEnd:
			if !sawIndex {
				return corruptf("end frame before index sections")
			}
			if !stopped && count != uint64(n) {
				return corruptf("end frame declares %d entries, streamed %d", count, n)
			}
			if len(payload) != 0 {
				return corruptf("end frame carries %d payload bytes", len(payload))
			}
			return p.expectEOF()
		default:
			return corruptf("unknown frame kind %#x", kind)
		}
	}
}

// parser is the frame-level decoder shared by Load and Replay. It runs in
// one of two modes: streaming (br set, payloads read into a reused buffer)
// or in-memory (data set, payloads returned as zero-copy subslices).
type parser struct {
	br   *bufio.Reader
	data []byte
	off  int
	buf  []byte
}

// readByte reads the next stream byte; the error is io-flavored (EOF on a
// clean end), callers wrap it.
func (p *parser) readByte() (byte, error) {
	if p.data != nil {
		if p.off >= len(p.data) {
			return 0, io.EOF
		}
		b := p.data[p.off]
		p.off++
		return b, nil
	}
	return p.br.ReadByte()
}

// next returns the next n stream bytes: a zero-copy subslice in in-memory
// mode, a reused buffer in streaming mode — valid until the next call.
func (p *parser) next(n int) ([]byte, error) {
	if p.data != nil {
		if len(p.data)-p.off < n {
			return nil, io.ErrUnexpectedEOF
		}
		s := p.data[p.off : p.off+n]
		p.off += n
		return s, nil
	}
	if cap(p.buf) < n {
		p.buf = make([]byte, n)
	}
	s := p.buf[:n]
	if _, err := io.ReadFull(p.br, s); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) header() error {
	hdr, err := p.next(5)
	if err != nil {
		return corruptf("reading header: %v", err)
	}
	if !bytes.Equal(hdr[:4], magic[:]) {
		return corruptf("bad magic %q", hdr[:4])
	}
	if hdr[4] != version {
		return corruptf("unsupported format version %d (want %d)", hdr[4], version)
	}
	return nil
}

// frame reads one kind/count/len/payload/crc record. The payload slice is
// only valid until the next frame call.
func (p *parser) frame() (kind byte, count uint64, payload []byte, err error) {
	kind, err = p.readByte()
	if err != nil {
		return 0, 0, nil, corruptf("reading frame kind: %v", err)
	}
	count, err = p.readUvarint()
	if err != nil {
		return 0, 0, nil, err
	}
	plen, err := p.readUvarint()
	if err != nil {
		return 0, 0, nil, err
	}
	if plen > maxFramePayload {
		return 0, 0, nil, corruptf("frame payload %d exceeds cap %d", plen, maxFramePayload)
	}
	payload, err = p.next(int(plen))
	if err != nil {
		return 0, 0, nil, corruptf("reading %d-byte frame payload: %v", plen, err)
	}
	// Byte-at-a-time: p.next would reuse the streaming buffer that still
	// holds the payload.
	var crc [4]byte
	for i := range crc {
		b, err := p.readByte()
		if err != nil {
			return 0, 0, nil, corruptf("reading frame checksum: %v", err)
		}
		crc[i] = b
	}
	want := uint32(crc[0]) | uint32(crc[1])<<8 | uint32(crc[2])<<16 | uint32(crc[3])<<24
	if got := crc32.Checksum(payload, crcTable); got != want {
		return 0, 0, nil, corruptf("frame checksum mismatch: %08x != %08x", got, want)
	}
	return kind, count, payload, nil
}

// readUvarint is binary.ReadUvarint plus rejection of non-minimal
// encodings, mirroring uvarintAt: frame headers too must admit exactly one
// encoding per value.
func (p *parser) readUvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := p.readByte()
		if err != nil {
			return 0, corruptf("reading varint: %v", err)
		}
		if b < 0x80 {
			if i == 9 && b > 1 {
				return 0, corruptf("varint overflows uint64")
			}
			if b == 0 && i > 0 {
				return 0, corruptf("non-minimal varint in frame header")
			}
			return x | uint64(b)<<s, nil
		}
		if i == 9 {
			return 0, corruptf("varint overflows uint64")
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

func (p *parser) expectEOF() error {
	if _, err := p.readByte(); err != io.EOF {
		return corruptf("trailing data after end frame")
	}
	return nil
}

// decodeEntries parses one entry frame, invoking sink per entry; sink
// returning false aborts the frame (not an error).
func decodeEntries(payload []byte, count int, sink func(*trace.Entry) bool) error {
	pos := 0
	var prevPC, prevAddr uint64
	var e trace.Entry
	for j := 0; j < count; j++ {
		if pos+2 > len(payload) {
			return corruptf("entry %d: truncated flags/op", j)
		}
		e = trace.Entry{Flags: payload[pos], Op: isa.Op(payload[pos+1])}
		pos += 2
		d, next, err := svarintAt(payload, pos)
		if err != nil {
			return err
		}
		pos = next
		e.PC = prevPC + uint64(d)
		prevPC = e.PC
		d, next, err = svarintAt(payload, pos)
		if err != nil {
			return err
		}
		pos = next
		e.Next = e.PC + isa.InstSize + uint64(d)
		if e.IsLoad() || e.IsStore() {
			if pos >= len(payload) {
				return corruptf("entry %d: truncated memory width", j)
			}
			e.MemW = payload[pos]
			pos++
			d, next, err = svarintAt(payload, pos)
			if err != nil {
				return err
			}
			pos = next
			e.Addr = prevAddr + uint64(d)
			prevAddr = e.Addr
		}
		if e.HasDst() {
			if pos >= len(payload) {
				return corruptf("entry %d: truncated destination", j)
			}
			if payload[pos] >= isa.NumRegs {
				return corruptf("entry %d: destination register %d out of range", j, payload[pos])
			}
			e.Dst = isa.Reg(payload[pos])
			pos++
		}
		if pos >= len(payload) {
			return corruptf("entry %d: truncated source count", j)
		}
		nsrc := payload[pos]
		pos++
		if nsrc > 2 {
			return corruptf("entry %d: source count %d exceeds 2", j, nsrc)
		}
		if pos+int(nsrc) > len(payload) {
			return corruptf("entry %d: truncated sources", j)
		}
		e.NSrc = nsrc
		for k := 0; k < int(nsrc); k++ {
			if payload[pos] >= isa.NumRegs {
				return corruptf("entry %d: source register %d out of range", j, payload[pos])
			}
			e.Srcs[k] = isa.Reg(payload[pos])
			pos++
		}
		if !sink(&e) {
			return nil
		}
	}
	if pos != len(payload) {
		return corruptf("entry frame carries %d trailing bytes", len(payload)-pos)
	}
	return nil
}

// decodeOcc parses one occurrence frame into occ, validating each list
// against the decoded entries: PCs strictly ascend across frames, indices
// strictly ascend within a list, and every index's entry retires at the
// list's PC. Together with the total-coverage check at the section
// boundary this forces the decoded index to be exactly canonical.
func decodeOcc(payload []byte, count int, entries []trace.Entry, occ map[uint64][]int32, backing *[]int32, lastPC *uint64, havePC *bool, total *int) error {
	pos := 0
	prevPC := uint64(0) // delta state resets per frame; first PC is absolute
	for j := 0; j < count; j++ {
		d, next, err := uvarintAt(payload, pos)
		if err != nil {
			return err
		}
		pos = next
		pc := prevPC + d
		if j > 0 && d == 0 {
			return corruptf("occurrence PCs not strictly ascending at %#x", pc)
		}
		if *havePC && pc <= *lastPC {
			return corruptf("occurrence PC %#x not above previous frame's %#x", pc, *lastPC)
		}
		prevPC, *lastPC, *havePC = pc, pc, true
		cnt, next, err := uvarintAt(payload, pos)
		if err != nil {
			return err
		}
		pos = next
		if cnt == 0 {
			return corruptf("empty occurrence list for PC %#x", pc)
		}
		if cnt > uint64(len(payload)-pos) || *total+int(cnt) > len(entries) {
			return corruptf("occurrence list for PC %#x overflows trace", pc)
		}
		start := len(*backing)
		var ix uint64
		for k := 0; k < int(cnt); k++ {
			d, next, err := uvarintAt(payload, pos)
			if err != nil {
				return err
			}
			pos = next
			if k == 0 {
				ix = d
			} else {
				if d == 0 {
					return corruptf("occurrence indices for PC %#x not strictly ascending", pc)
				}
				ix += d
			}
			if ix >= uint64(len(entries)) {
				return corruptf("occurrence index %d for PC %#x out of range", ix, pc)
			}
			if entries[ix].PC != pc {
				return corruptf("occurrence index %d claims PC %#x, entry has %#x", ix, pc, entries[ix].PC)
			}
			*backing = append(*backing, int32(ix))
		}
		// Three-index slice: a later append to the backing array must never
		// alias into an installed list.
		occ[pc] = (*backing)[start:len(*backing):len(*backing)]
		*total += int(cnt)
	}
	if pos != len(payload) {
		return corruptf("occurrence frame carries %d trailing bytes", len(payload)-pos)
	}
	return nil
}

// decodeDeps parses one dependence frame, resuming at entry *depi.
func decodeDeps(payload []byte, count int, entries []trace.Entry, deps *trace.Deps, depi *int) error {
	pos := 0
	for j := 0; j < count; j++ {
		i := *depi
		if i >= len(entries) {
			return corruptf("dependence section overruns %d entries", len(entries))
		}
		e := &entries[i]
		for k := 0; k < int(e.NSrc); k++ {
			d, next, err := svarintAt(payload, pos)
			if err != nil {
				return err
			}
			pos = next
			prod := int64(i) + d
			if prod < -1 || prod >= int64(i) {
				return corruptf("entry %d: register producer %d out of range", i, prod)
			}
			deps.RegProd[i][k] = int32(prod)
		}
		if e.IsLoad() {
			d, next, err := svarintAt(payload, pos)
			if err != nil {
				return err
			}
			pos = next
			prod := int64(i) + d
			if prod < -1 || prod >= int64(i) {
				return corruptf("entry %d: memory producer %d out of range", i, prod)
			}
			deps.MemProd[i] = int32(prod)
		}
		*depi = i + 1
	}
	if pos != len(payload) {
		return corruptf("dependence frame carries %d trailing bytes", len(payload)-pos)
	}
	return nil
}
