// Package tracestore serializes the functional emulator's products — the
// retired instruction trace, its per-PC occurrence index, and the
// last-writer dependence information — into a compact, versioned,
// checksummed binary format, so a workload is decoded once and every
// policy replay thereafter streams the stored bytes instead of re-running
// the emulator (ROADMAP item 2: decode-once, simulate-many).
//
// # Format: polyflow-trace/1
//
// A trace file is a 5-byte header ("PFTR" + version byte) followed by a
// sequence of frames, each
//
//	kind byte | uvarint itemCount | uvarint payloadLen | payload | crc32c(payload)
//
// in strict kind order: any number of entry frames ('E'), then occurrence
// frames ('O'), then dependence frames ('D'), then exactly one end frame
// ('Z') whose itemCount is the total entry count, then EOF. Every frame's
// payload is bounded (the writer targets ~256 KiB, the reader rejects
// anything over maxFramePayload), so a corrupt length can never provoke an
// unbounded allocation.
//
// Entry frames hold up to chunkEntries entries, delta-encoded with the
// previous-PC and previous-address state reset at each frame boundary:
// per entry a flags byte, an opcode byte, zigzag-varint PC and
// next-PC deltas (next relative to PC+4, the fallthrough), then — only for
// loads and stores — a width byte and a zigzag-varint address delta, then
// — only when the entry writes a register — the destination byte, then a
// source count byte and that many source registers. The encoding is
// injective over traces the emulator can produce (the writer rejects
// entries carrying values the format would drop, such as an effective
// address on a non-memory op), so decode∘encode is the identity and
// encode∘decode is byte-identical — the property FuzzTraceCodec pins.
//
// Occurrence frames serialize the per-PC occurrence index as strictly
// ascending PCs (varint deltas, absolute at each frame start), each with
// its ascending occurrence-index list (absolute first index, then varint
// deltas). Dependence frames serialize, for entry i, the producing trace
// index of each register source and (for loads) of the most recent
// overlapping store, as zigzag varints relative to i. The eager reader
// cross-validates both against the decoded entries, so a successful Load
// always yields exactly the index and dependence information the emulator
// would have derived; the checksums guard integrity, not authenticity —
// the artifact cache's content addressing covers the rest.
//
// See docs/PERFORMANCE.md ("Trace replay") for how the store fits the
// batched multi-policy run path, and docs/SERVICE.md for the artifact kind
// and the daemon's GET /v1/traces/{bench} endpoint.
package tracestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Schema names the on-disk format, as referenced by the artifact store and
// the service API. Bump the trailing version (and the header version byte)
// on any incompatible layout change — the golden-format test fails
// otherwise.
const Schema = "polyflow-trace/1"

// Header bytes: magic then version.
var magic = [4]byte{'P', 'F', 'T', 'R'}

const version = 1

// Frame kinds, in required stream order.
const (
	kindEntries byte = 'E'
	kindOcc     byte = 'O'
	kindDeps    byte = 'D'
	kindEnd     byte = 'Z'
)

const (
	// chunkEntries bounds entries per 'E' frame; delta state resets at
	// each frame so a frame decodes independently of its predecessors.
	chunkEntries = 4096
	// frameTarget is the writer's payload flush threshold for the
	// variable-length 'O' and 'D' sections.
	frameTarget = 256 << 10
	// maxFramePayload is the reader-side hard cap on a declared payload
	// length; a corrupted length field fails fast instead of allocating.
	maxFramePayload = 4 << 20
)

// ErrCorrupt reports a malformed, truncated, or checksum-failing stream.
// Every decode failure wraps it; decoding never panics on bad input.
var ErrCorrupt = errors.New("tracestore: corrupt or truncated trace")

// ErrUnencodable reports an input trace carrying state the format cannot
// represent (for example a non-memory entry with an effective address) —
// encoding it would not round-trip, so the writer refuses.
var ErrUnencodable = errors.New("tracestore: trace not representable in polyflow-trace/1")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// zigzag maps signed to unsigned so small-magnitude deltas stay short.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendUvarint appends v to b varint-encoded.
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// uvarintAt decodes a varint from p at pos, returning the value and the
// position after it. Non-minimal encodings (a redundant high zero byte) are
// rejected: the format admits exactly one byte sequence per value, which is
// what makes a successful decode re-encode byte-identically.
func uvarintAt(p []byte, pos int) (uint64, int, error) {
	// One- and two-byte values dominate delta streams; decode them without
	// the generic loop.
	if pos < len(p) {
		if b := p[pos]; b < 0x80 {
			return uint64(b), pos + 1, nil
		} else if pos+1 < len(p) && p[pos+1] < 0x80 {
			if p[pos+1] == 0 {
				return 0, 0, corruptf("non-minimal varint at payload offset %d", pos)
			}
			return uint64(b&0x7f) | uint64(p[pos+1])<<7, pos + 2, nil
		}
	}
	v, n := binary.Uvarint(p[pos:])
	if n <= 0 {
		return 0, 0, corruptf("bad varint at payload offset %d", pos)
	}
	if n > 1 && p[pos+n-1] == 0 {
		return 0, 0, corruptf("non-minimal varint at payload offset %d", pos)
	}
	return v, pos + n, nil
}

// svarintAt decodes a zigzag varint.
func svarintAt(p []byte, pos int) (int64, int, error) {
	u, next, err := uvarintAt(p, pos)
	if err != nil {
		return 0, 0, err
	}
	return unzigzag(u), next, nil
}
