// Package hints serializes spawn-point information the way the paper's
// system ships it: "Augmenting the program binary with compiler-generated
// postdominator information associated with each branch ... a separate
// section in the binary that is loaded into this cache on demand", where
// each spawn point also carries "an eight byte entry ... used to store
// register and memory dependence information for the task".
//
// A Section holds one record per spawn point: the trigger PC, the spawn
// target, the category, and the 8-byte dependence hint — here a bitmask of
// the general-purpose registers the spawning task may still produce for the
// spawned task (bit r set = register r is written somewhere in the static
// region the spawn jumps over), with the top bit flagging that the region
// also contains stores (memory dependence possible). The encoding is a
// fixed-width little-endian layout with a magic/version header and a
// trailing checksum, so a corrupted hint section is detected rather than
// silently mis-spawning.
package hints

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/core"
	"repro/internal/isa"
)

// Record is one spawn point as stored in the binary's hint section.
type Record struct {
	From   uint64
	Target uint64
	Kind   core.Kind
	// DepHint is the paper's 8-byte dependence entry: bits 0..31 mark
	// registers the jumped-over region writes; MemBit marks that the
	// region contains stores.
	DepHint uint64
}

// MemBit flags a region containing stores in a Record's DepHint.
const MemBit uint64 = 1 << 63

// Section is a loadable hint section.
type Section struct {
	Records []Record
}

const (
	magic   uint32 = 0x50444853 // "PDHS"
	version uint32 = 1
	recSize        = 8 + 8 + 4 + 8
)

// Build computes the hint section for an analyzed program: one record per
// spawn point, with the dependence hint derived from the static
// instructions between the trigger and the target (the region the spawned
// task is control equivalent past).
func Build(a *core.Analysis) *Section {
	s := &Section{}
	for _, sp := range a.Spawns {
		s.Records = append(s.Records, Record{
			From:    sp.From,
			Target:  sp.Target,
			Kind:    sp.Kind,
			DepHint: regionDepHint(a.Prog, sp),
		})
	}
	return s
}

// regionDepHint scans the static layout between the spawn trigger and its
// target. For backward targets (loop-iteration spawns) the whole loop body
// is scanned. Calls inside the region conservatively set every
// caller-saved register and the memory bit.
func regionDepHint(p *isa.Program, sp core.Spawn) uint64 {
	lo, hi := sp.From, sp.Target
	if hi < lo {
		lo, hi = hi, lo
	}
	var hint uint64
	for pc := lo; pc < hi; pc += isa.InstSize {
		inst, ok := p.InstAt(pc)
		if !ok {
			break
		}
		if d, has := inst.Dst(); has {
			hint |= 1 << uint(d)
		}
		if inst.IsStore() {
			hint |= MemBit
		}
		if inst.IsCall() {
			// Caller-saved: v0-v1, a0-a3, t0-t9, ra.
			hint |= 1<<uint(isa.V0) | 1<<uint(isa.V1) | 1<<uint(isa.RA)
			for r := isa.A0; r <= isa.T7; r++ {
				hint |= 1 << uint(r)
			}
			hint |= 1<<uint(isa.T8) | 1<<uint(isa.T9)
			hint |= MemBit
		}
	}
	return hint
}

// Encode writes the section in its binary format.
func (s *Section) Encode(w io.Writer) error {
	buf := make([]byte, 12+recSize*len(s.Records)+4)
	binary.LittleEndian.PutUint32(buf[0:], magic)
	binary.LittleEndian.PutUint32(buf[4:], version)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(s.Records)))
	off := 12
	for _, r := range s.Records {
		binary.LittleEndian.PutUint64(buf[off:], r.From)
		binary.LittleEndian.PutUint64(buf[off+8:], r.Target)
		binary.LittleEndian.PutUint32(buf[off+16:], uint32(r.Kind))
		binary.LittleEndian.PutUint64(buf[off+20:], r.DepHint)
		off += recSize
	}
	binary.LittleEndian.PutUint32(buf[off:], crc32.ChecksumIEEE(buf[:off]))
	_, err := w.Write(buf)
	return err
}

// Decode reads a section previously written by Encode, verifying the
// header and checksum.
func Decode(r io.Reader) (*Section, error) {
	head := make([]byte, 12)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("hints: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(head[0:]) != magic {
		return nil, fmt.Errorf("hints: bad magic")
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v != version {
		return nil, fmt.Errorf("hints: unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint32(head[8:])
	if n > 1<<24 {
		return nil, fmt.Errorf("hints: implausible record count %d", n)
	}
	body := make([]byte, recSize*int(n)+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("hints: reading %d records: %w", n, err)
	}
	sum := binary.LittleEndian.Uint32(body[len(body)-4:])
	whole := append(append([]byte{}, head...), body[:len(body)-4]...)
	if crc32.ChecksumIEEE(whole) != sum {
		return nil, fmt.Errorf("hints: checksum mismatch")
	}
	s := &Section{Records: make([]Record, n)}
	off := 0
	for i := range s.Records {
		s.Records[i] = Record{
			From:    binary.LittleEndian.Uint64(body[off:]),
			Target:  binary.LittleEndian.Uint64(body[off+8:]),
			Kind:    core.Kind(binary.LittleEndian.Uint32(body[off+16:])),
			DepHint: binary.LittleEndian.Uint64(body[off+20:]),
		}
		off += recSize
	}
	return s, nil
}

// Table reconstructs the spawn table a hint cache serves from this section.
func (s *Section) Table() core.Table {
	t := core.Table{}
	for _, r := range s.Records {
		t[r.From] = append(t[r.From], core.Spawn{From: r.From, Target: r.Target, Kind: r.Kind})
	}
	return t
}

// Source returns a core.Source backed by the decoded section — the
// hint-cache contents a spawn unit would load on demand.
func (s *Section) Source() *core.StaticSource {
	return &core.StaticSource{T: s.Table()}
}
