package hints

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/machine"
)

const program = `
        .func main
main:   li   $s7, 99991
        li   $t9, 800
loop:   sll  $t0, $s7, 13
        xor  $s7, $s7, $t0
        srl  $t0, $s7, 7
        xor  $s7, $s7, $t0
        andi $t1, $s7, 1
        beq  $t1, $zero, els
        addi $s0, $s0, 3
        sd   $s0, 0($sp)
        j    join
els:    addi $s0, $s0, 5
join:   jal  leaf
        addi $t9, $t9, -1
        bgtz $t9, loop
        halt
        .func leaf
leaf:   addi $v0, $a0, 1
        ret
`

func build(t *testing.T) (*core.Analysis, *Section) {
	t.Helper()
	p, err := asm.Assemble(program)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a, Build(a)
}

func TestBuildCoversAllSpawns(t *testing.T) {
	a, s := build(t)
	if len(s.Records) != len(a.Spawns) {
		t.Fatalf("records = %d, spawns = %d", len(s.Records), len(a.Spawns))
	}
	for i, r := range s.Records {
		if r.From != a.Spawns[i].From || r.Target != a.Spawns[i].Target || r.Kind != a.Spawns[i].Kind {
			t.Fatalf("record %d diverges from analysis", i)
		}
	}
}

func TestDepHints(t *testing.T) {
	a, s := build(t)
	p := a.Prog
	for _, r := range s.Records {
		if r.Kind != core.KindHammock {
			continue
		}
		// The hammock jumps over arms writing $s0 and storing to the
		// stack: both must be flagged.
		if r.DepHint&(1<<uint(isa.S0)) == 0 {
			t.Errorf("hammock at %s: $s0 write not hinted", p.SymbolFor(r.From))
		}
		if r.DepHint&MemBit == 0 {
			t.Errorf("hammock at %s: store not hinted", p.SymbolFor(r.From))
		}
	}
	// The procFT spawn jumps over a call: caller-saved registers hinted.
	found := false
	for _, r := range s.Records {
		if r.Kind == core.KindProcFT {
			found = true
			if r.DepHint&(1<<uint(isa.V0)) == 0 || r.DepHint&(1<<uint(isa.RA)) == 0 {
				t.Errorf("call region must hint $v0 and $ra: %x", r.DepHint)
			}
		}
	}
	if !found {
		t.Fatalf("no procFT record")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	_, s := build(t)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(s.Records) {
		t.Fatalf("round trip lost records")
	}
	for i := range got.Records {
		if got.Records[i] != s.Records[i] {
			t.Fatalf("record %d: %+v != %+v", i, got.Records[i], s.Records[i])
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	_, s := build(t)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bit flip in a record.
	flipped := append([]byte{}, raw...)
	flipped[20] ^= 0x10
	if _, err := Decode(bytes.NewReader(flipped)); err == nil {
		t.Fatalf("corrupted section decoded")
	}
	// Bad magic.
	bad := append([]byte{}, raw...)
	bad[0] = 'X'
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Fatalf("bad magic accepted")
	}
	// Truncation.
	if _, err := Decode(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Fatalf("truncated section accepted")
	}
	// Empty input.
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Fatalf("empty input accepted")
	}
}

// TestDecodedSectionDrivesTheMachine: a spawn table loaded from the binary
// section produces exactly the same simulation as the in-memory analysis.
func TestDecodedSectionDrivesTheMachine(t *testing.T) {
	a, s := build(t)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := emu.Run(a.Prog, emu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := machine.Run(tr, nil, core.PolicyPostdoms.Source(a), machine.PolyFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := machine.Run(tr, nil, loaded.Source(), machine.PolyFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The section carries ALL spawn kinds (postdoms + loop), so filter:
	// compare against the full-table source instead.
	full := &core.StaticSource{T: core.Table{}}
	for _, sp := range a.Spawns {
		full.T[sp.From] = append(full.T[sp.From], sp)
	}
	r3, err := machine.Run(tr, nil, full, machine.PolyFlowConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cycles != r3.Cycles || r2.SpawnsTaken != r3.SpawnsTaken {
		t.Fatalf("decoded section (%d cycles, %d spawns) != full table (%d cycles, %d spawns)",
			r2.Cycles, r2.SpawnsTaken, r3.Cycles, r3.SpawnsTaken)
	}
	_ = r1
}
