package isa

import "testing"

func TestRegNames(t *testing.T) {
	cases := map[string]Reg{
		"zero": Zero, "sp": SP, "ra": RA, "t0": T0, "s7": S7, "a0": A0, "v0": V0,
		"r0": 0, "r31": 31,
	}
	for name, want := range cases {
		got, ok := RegByName(name)
		if !ok || got != want {
			t.Errorf("RegByName(%q) = %v,%v want %v", name, got, ok, want)
		}
	}
	if _, ok := RegByName("bogus"); ok {
		t.Errorf("bogus register accepted")
	}
	if _, ok := RegByName("r32"); ok {
		t.Errorf("r32 accepted")
	}
	if Zero.String() != "$zero" || RA.String() != "$ra" {
		t.Errorf("register String() wrong: %v %v", Zero, RA)
	}
}

func TestClassification(t *testing.T) {
	cases := []struct {
		in   Inst
		cond bool
		call bool
		ret  bool
		load bool
		st   bool
		ends bool
	}{
		{Inst{Op: OpADD}, false, false, false, false, false, false},
		{Inst{Op: OpBEQ}, true, false, false, false, false, true},
		{Inst{Op: OpBGEZ}, true, false, false, false, false, true},
		{Inst{Op: OpJAL}, false, true, false, false, false, true},
		{Inst{Op: OpJALR, Rd: RA, Rs: T0}, false, true, false, false, false, true},
		{Inst{Op: OpJR, Rs: RA}, false, false, true, false, false, true},
		{Inst{Op: OpJR, Rs: T0}, false, false, false, false, false, true},
		{Inst{Op: OpLW}, false, false, false, true, false, false},
		{Inst{Op: OpSD}, false, false, false, false, true, false},
		{Inst{Op: OpHALT}, false, false, false, false, false, true},
		{Inst{Op: OpJ}, false, false, false, false, false, true},
	}
	for _, c := range cases {
		if c.in.IsCondBranch() != c.cond || c.in.IsCall() != c.call ||
			c.in.IsReturn() != c.ret || c.in.IsLoad() != c.load ||
			c.in.IsStore() != c.st || c.in.EndsBlock() != c.ends {
			t.Errorf("classification wrong for %v", c.in)
		}
	}
}

func TestMemWidth(t *testing.T) {
	widths := map[Op]int{
		OpLB: 1, OpLBU: 1, OpSB: 1, OpLH: 2, OpSH: 2,
		OpLW: 4, OpSW: 4, OpLD: 8, OpSD: 8, OpADD: 0, OpBEQ: 0,
	}
	for op, want := range widths {
		if got := (Inst{Op: op}).MemWidth(); got != want {
			t.Errorf("MemWidth(%v) = %d, want %d", op, got, want)
		}
	}
}

func TestDstAndSrcs(t *testing.T) {
	var buf [4]Reg

	add := Inst{Op: OpADD, Rd: T0, Rs: T1, Rt: T2}
	if d, ok := add.Dst(); !ok || d != T0 {
		t.Errorf("add dst wrong")
	}
	if s := add.Srcs(buf[:0]); len(s) != 2 || s[0] != T1 || s[1] != T2 {
		t.Errorf("add srcs wrong: %v", s)
	}

	// Writes to $zero have no architectural destination.
	zadd := Inst{Op: OpADD, Rd: Zero, Rs: T1, Rt: T2}
	if _, ok := zadd.Dst(); ok {
		t.Errorf("write to $zero reported a destination")
	}

	// Reads of $zero are omitted.
	li := Inst{Op: OpADDI, Rd: T0, Rs: Zero, Imm: 5}
	if s := li.Srcs(buf[:0]); len(s) != 0 {
		t.Errorf("read of $zero reported: %v", s)
	}

	store := Inst{Op: OpSD, Rs: SP, Rt: T3, Imm: 8}
	if _, ok := store.Dst(); ok {
		t.Errorf("store has a destination")
	}
	if s := store.Srcs(buf[:0]); len(s) != 2 {
		t.Errorf("store srcs wrong: %v", s)
	}

	jal := Inst{Op: OpJAL, Imm: 0x1000}
	if d, ok := jal.Dst(); !ok || d != RA {
		t.Errorf("jal must write $ra")
	}

	jalr := Inst{Op: OpJALR, Rd: RA, Rs: T9}
	if s := jalr.Srcs(buf[:0]); len(s) != 1 || s[0] != T9 {
		t.Errorf("jalr srcs wrong: %v", s)
	}

	load := Inst{Op: OpLD, Rd: T0, Rs: SP}
	if s := load.Srcs(buf[:0]); len(s) != 1 || s[0] != SP {
		t.Errorf("load srcs wrong: %v", s)
	}
}

func TestDisassembly(t *testing.T) {
	cases := map[string]Inst{
		"add $t0, $t1, $t2": {Op: OpADD, Rd: T0, Rs: T1, Rt: T2},
		"addi $t0, $t1, -4": {Op: OpADDI, Rd: T0, Rs: T1, Imm: -4},
		"ld $t0, 8($sp)":    {Op: OpLD, Rd: T0, Rs: SP, Imm: 8},
		"sd $t1, 0($sp)":    {Op: OpSD, Rt: T1, Rs: SP, Imm: 0},
		"beq $t0, $t1, 0x1000": {
			Op: OpBEQ, Rs: T0, Rt: T1, Imm: 0x1000},
		"j 0x2000": {Op: OpJ, Imm: 0x2000},
		"jr $ra":   {Op: OpJR, Rs: RA},
		"nop":      {Op: OpNOP},
	}
	for want, inst := range cases {
		if got := inst.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestProgramAddressing(t *testing.T) {
	p := &Program{
		Code:     make([]Inst, 4),
		CodeBase: 0x1000,
		Funcs:    []uint64{0x1000, 0x1008},
		Symbols:  map[uint64]string{0x1000: "main", 0x1008: "f"},
	}
	if p.PCOf(2) != 0x1008 {
		t.Fatalf("PCOf wrong")
	}
	if p.IndexOf(0x1008) != 2 {
		t.Fatalf("IndexOf wrong")
	}
	if p.IndexOf(0x1002) != -1 || p.IndexOf(0xfff) != -1 || p.IndexOf(0x2000) != -1 {
		t.Fatalf("IndexOf accepts bad PCs")
	}
	if _, ok := p.InstAt(0x100c); !ok {
		t.Fatalf("InstAt rejects valid PC")
	}
	if f, ok := p.FuncOf(0x1004); !ok || f != 0x1000 {
		t.Fatalf("FuncOf(0x1004) = %x,%v", f, ok)
	}
	if f, ok := p.FuncOf(0x100c); !ok || f != 0x1008 {
		t.Fatalf("FuncOf(0x100c) = %x,%v", f, ok)
	}
	if end := p.FuncEnd(0x1000); end != 0x1008 {
		t.Fatalf("FuncEnd(main) = %x", end)
	}
	if end := p.FuncEnd(0x1008); end != 0x1010 {
		t.Fatalf("FuncEnd(f) = %x", end)
	}
	if s := p.SymbolFor(0x100c); s != "f+0x4" {
		t.Fatalf("SymbolFor = %q", s)
	}
}
