// Package isa defines the 64-bit MIPS-like instruction set simulated by this
// repository. It mirrors the "variant of the 64-bit MIPS instruction set"
// used by the paper's execution-driven simulator: 32 general-purpose
// registers, fixed 4-byte instructions, conditional branches with explicit
// targets, direct and indirect jumps, and loads/stores of 1/2/4/8 bytes.
// The ISA has no special instructions to support multithreading.
package isa

import "fmt"

// InstSize is the size of every instruction in bytes. PCs advance by
// InstSize; branch and jump targets are absolute byte addresses.
const InstSize = 4

// Reg identifies one of the 32 general-purpose registers. Register 0 is
// hardwired to zero, as in MIPS.
type Reg uint8

// NumRegs is the number of architectural general-purpose registers.
const NumRegs = 32

// Conventional register names (MIPS o64-flavored calling convention).
const (
	Zero Reg = 0 // hardwired zero
	AT   Reg = 1 // assembler temporary
	V0   Reg = 2 // return value 0
	V1   Reg = 3 // return value 1
	A0   Reg = 4 // argument 0
	A1   Reg = 5 // argument 1
	A2   Reg = 6 // argument 2
	A3   Reg = 7 // argument 3
	T0   Reg = 8 // caller-saved temporaries T0..T7
	T1   Reg = 9
	T2   Reg = 10
	T3   Reg = 11
	T4   Reg = 12
	T5   Reg = 13
	T6   Reg = 14
	T7   Reg = 15
	S0   Reg = 16 // callee-saved S0..S7
	S1   Reg = 17
	S2   Reg = 18
	S3   Reg = 19
	S4   Reg = 20
	S5   Reg = 21
	S6   Reg = 22
	S7   Reg = 23
	T8   Reg = 24
	T9   Reg = 25
	K0   Reg = 26
	K1   Reg = 27
	GP   Reg = 28 // global pointer
	SP   Reg = 29 // stack pointer
	FP   Reg = 30 // frame pointer
	RA   Reg = 31 // return address
)

var regNames = [NumRegs]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// String returns the conventional assembly name of the register ("$t0").
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return "$" + regNames[r]
	}
	return fmt.Sprintf("$r%d", uint8(r))
}

// RegByName maps a conventional name (without the '$') to its register
// number. Numeric names "r0".."r31" are also accepted.
func RegByName(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	var n int
	if _, err := fmt.Sscanf(name, "r%d", &n); err == nil && n >= 0 && n < NumRegs {
		return Reg(n), true
	}
	return 0, false
}

// Op enumerates the instruction opcodes.
type Op uint8

// Opcode space. Grouped so classification predicates stay simple.
const (
	OpInvalid Op = iota

	// Three-register ALU operations: rd <- rs OP rt.
	OpADD
	OpSUB
	OpAND
	OpOR
	OpXOR
	OpNOR
	OpSLT  // set-less-than (signed)
	OpSLTU // set-less-than (unsigned)
	OpSLLV // shift left logical variable
	OpSRLV // shift right logical variable
	OpSRAV // shift right arithmetic variable
	OpMUL
	OpDIV
	OpREM

	// Register-immediate ALU operations: rd <- rs OP imm.
	OpADDI
	OpANDI
	OpORI
	OpXORI
	OpSLTI
	OpSLL // shift by immediate
	OpSRL
	OpSRA
	OpLUI // rd <- imm << 16
	OpLI  // rd <- imm (64-bit immediate pseudo-materialization)

	// Loads: rd <- mem[rs + imm].
	OpLB
	OpLBU
	OpLH
	OpLW
	OpLD

	// Stores: mem[rs + imm] <- rt.
	OpSB
	OpSH
	OpSW
	OpSD

	// Conditional branches. Two-register compares use rs,rt; the
	// compare-against-zero forms use rs only. Imm holds the absolute
	// target PC after assembly.
	OpBEQ
	OpBNE
	OpBLEZ
	OpBGTZ
	OpBLTZ
	OpBGEZ

	// Jumps. OpJ/OpJAL carry the absolute target in Imm. OpJR jumps to
	// the address in rs; OpJALR additionally links into rd.
	OpJ
	OpJAL
	OpJR
	OpJALR

	OpNOP
	OpHALT

	// OpSYSCALL requests an operating-system service from the emulator's
	// attached syscall handler (internal/sysos). The service number is read
	// from $v0 and the result written back to $v0; $a0/$a1 carry arguments.
	// Placed after OpHALT so the opcode-range classification predicates
	// (and the pinned trace-store encodings) of the pre-syscall opcode
	// space are untouched.
	OpSYSCALL

	numOps
)

var opNames = [numOps]string{
	OpInvalid: "invalid",
	OpADD:     "add", OpSUB: "sub", OpAND: "and", OpOR: "or",
	OpXOR: "xor", OpNOR: "nor", OpSLT: "slt", OpSLTU: "sltu",
	OpSLLV: "sllv", OpSRLV: "srlv", OpSRAV: "srav",
	OpMUL: "mul", OpDIV: "div", OpREM: "rem",
	OpADDI: "addi", OpANDI: "andi", OpORI: "ori", OpXORI: "xori",
	OpSLTI: "slti", OpSLL: "sll", OpSRL: "srl", OpSRA: "sra",
	OpLUI: "lui", OpLI: "li",
	OpLB: "lb", OpLBU: "lbu", OpLH: "lh", OpLW: "lw", OpLD: "ld",
	OpSB: "sb", OpSH: "sh", OpSW: "sw", OpSD: "sd",
	OpBEQ: "beq", OpBNE: "bne", OpBLEZ: "blez", OpBGTZ: "bgtz",
	OpBLTZ: "bltz", OpBGEZ: "bgez",
	OpJ: "j", OpJAL: "jal", OpJR: "jr", OpJALR: "jalr",
	OpNOP: "nop", OpHALT: "halt", OpSYSCALL: "syscall",
}

// Valid reports whether op is a defined opcode. Image loaders use it to
// reject malformed encodings.
func (op Op) Valid() bool { return op > OpInvalid && op < numOps }

// String returns the assembly mnemonic of the opcode.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Inst is one decoded instruction. Branch and direct-jump targets are held
// as absolute byte addresses in Imm (the assembler resolves labels).
type Inst struct {
	Op         Op
	Rd, Rs, Rt Reg
	Imm        int64
}

// Classification predicates. These drive both the emulator and the static
// CFG construction, so they are defined once, here.

// IsCondBranch reports whether the instruction is a conditional branch.
func (i Inst) IsCondBranch() bool { return i.Op >= OpBEQ && i.Op <= OpBGEZ }

// IsDirectJump reports whether the instruction is an unconditional direct
// jump (j / jal).
func (i Inst) IsDirectJump() bool { return i.Op == OpJ || i.Op == OpJAL }

// IsIndirectJump reports whether the instruction jumps through a register
// (jr / jalr).
func (i Inst) IsIndirectJump() bool { return i.Op == OpJR || i.Op == OpJALR }

// IsCall reports whether the instruction is a procedure call (jal / jalr).
func (i Inst) IsCall() bool { return i.Op == OpJAL || i.Op == OpJALR }

// IsReturn reports whether the instruction is the conventional procedure
// return, jr $ra.
func (i Inst) IsReturn() bool { return i.Op == OpJR && i.Rs == RA }

// IsLoad reports whether the instruction reads memory.
func (i Inst) IsLoad() bool { return i.Op >= OpLB && i.Op <= OpLD }

// IsStore reports whether the instruction writes memory.
func (i Inst) IsStore() bool { return i.Op >= OpSB && i.Op <= OpSD }

// IsMem reports whether the instruction accesses memory.
func (i Inst) IsMem() bool { return i.IsLoad() || i.IsStore() }

// EndsBlock reports whether the instruction terminates a basic block: any
// control transfer or halt ends a block.
func (i Inst) EndsBlock() bool {
	return i.IsCondBranch() || i.IsDirectJump() || i.IsIndirectJump() || i.Op == OpHALT
}

// MemWidth returns the access size in bytes for loads and stores, 0 for
// other instructions.
func (i Inst) MemWidth() int {
	switch i.Op {
	case OpLB, OpLBU, OpSB:
		return 1
	case OpLH, OpSH:
		return 2
	case OpLW, OpSW:
		return 4
	case OpLD, OpSD:
		return 8
	}
	return 0
}

// Dst returns the destination register and whether the instruction writes
// one. Writes to $zero are reported as no destination.
func (i Inst) Dst() (Reg, bool) {
	var d Reg
	switch {
	case i.Op >= OpADD && i.Op <= OpLI:
		d = i.Rd
	case i.IsLoad():
		d = i.Rd
	case i.Op == OpJAL:
		d = RA
	case i.Op == OpJALR:
		d = i.Rd
	case i.Op == OpSYSCALL:
		d = V0 // every service writes its result (or echoes its code) to $v0
	default:
		return 0, false
	}
	if d == Zero {
		return 0, false
	}
	return d, true
}

// Srcs appends the source registers of the instruction to dst and returns
// the extended slice. Reads of $zero are omitted (always-ready constant).
func (i Inst) Srcs(dst []Reg) []Reg {
	add := func(r Reg) {
		if r != Zero {
			dst = append(dst, r)
		}
	}
	switch {
	case i.Op >= OpADD && i.Op <= OpREM: // three-register ALU
		add(i.Rs)
		add(i.Rt)
	case i.Op >= OpADDI && i.Op <= OpSRA: // reg-imm ALU
		add(i.Rs)
	case i.Op == OpLUI || i.Op == OpLI:
		// no register sources
	case i.IsLoad():
		add(i.Rs)
	case i.IsStore():
		add(i.Rs)
		add(i.Rt)
	case i.Op == OpBEQ || i.Op == OpBNE:
		add(i.Rs)
		add(i.Rt)
	case i.IsCondBranch(): // compare-against-zero forms
		add(i.Rs)
	case i.Op == OpJR || i.Op == OpJALR:
		add(i.Rs)
	case i.Op == OpSYSCALL:
		add(V0) // service number
		add(A0) // first argument
	}
	return dst
}

// String disassembles the instruction.
func (i Inst) String() string {
	switch {
	case i.Op == OpNOP || i.Op == OpHALT || i.Op == OpSYSCALL:
		return i.Op.String()
	case i.Op >= OpADD && i.Op <= OpREM:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs, i.Rt)
	case i.Op >= OpADDI && i.Op <= OpSRA:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs, i.Imm)
	case i.Op == OpLUI || i.Op == OpLI:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	case i.IsLoad():
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Rs)
	case i.IsStore():
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rt, i.Imm, i.Rs)
	case i.Op == OpBEQ || i.Op == OpBNE:
		return fmt.Sprintf("%s %s, %s, 0x%x", i.Op, i.Rs, i.Rt, uint64(i.Imm))
	case i.IsCondBranch():
		return fmt.Sprintf("%s %s, 0x%x", i.Op, i.Rs, uint64(i.Imm))
	case i.IsDirectJump():
		return fmt.Sprintf("%s 0x%x", i.Op, uint64(i.Imm))
	case i.Op == OpJR:
		return fmt.Sprintf("jr %s", i.Rs)
	case i.Op == OpJALR:
		return fmt.Sprintf("jalr %s, %s", i.Rd, i.Rs)
	}
	return "invalid"
}
