package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Default load addresses for the two segments of an assembled program.
const (
	DefaultCodeBase uint64 = 0x1000
	DefaultDataBase uint64 = 0x100000
	// DefaultStackTop is where the emulator initializes $sp.
	DefaultStackTop uint64 = 0x7ff000
)

// Program is a fully linked program image: a code segment of decoded
// instructions, an initialized data segment, and the symbol information the
// static analyses consume (labels, function boundaries, and the possible
// targets of indirect jumps — the profile-side information the paper's
// compiler embeds in the binary).
type Program struct {
	Code     []Inst
	CodeBase uint64
	Data     []byte
	DataBase uint64

	// Labels maps label name to address (code or data).
	Labels map[string]uint64
	// Symbols is the reverse map for code addresses that had labels.
	Symbols map[uint64]string
	// Funcs lists the entry PCs of the program's functions, sorted.
	Funcs []uint64
	// JumpTargets lists the possible destinations of each indirect jump,
	// keyed by the PC of the jr/jalr instruction. Populated from jump-table
	// annotations at assembly time and optionally augmented by profiling.
	JumpTargets map[uint64][]uint64
	// Entry is the PC execution starts at.
	Entry uint64
}

// PCOf returns the PC of code index i.
func (p *Program) PCOf(i int) uint64 { return p.CodeBase + uint64(i)*InstSize }

// IndexOf returns the code index of PC, or -1 if the PC is outside the code
// segment or misaligned.
func (p *Program) IndexOf(pc uint64) int {
	if pc < p.CodeBase || (pc-p.CodeBase)%InstSize != 0 {
		return -1
	}
	i := int((pc - p.CodeBase) / InstSize)
	if i >= len(p.Code) {
		return -1
	}
	return i
}

// InstAt returns the instruction at pc. It returns ok=false for PCs outside
// the code segment.
func (p *Program) InstAt(pc uint64) (Inst, bool) {
	i := p.IndexOf(pc)
	if i < 0 {
		return Inst{}, false
	}
	return p.Code[i], true
}

// FuncOf returns the entry PC of the function containing pc, assuming
// functions are laid out contiguously in Funcs order. ok is false when pc
// precedes the first function.
func (p *Program) FuncOf(pc uint64) (uint64, bool) {
	i := sort.Search(len(p.Funcs), func(i int) bool { return p.Funcs[i] > pc })
	if i == 0 {
		return 0, false
	}
	return p.Funcs[i-1], true
}

// FuncEnd returns the first PC past the function starting at entry.
func (p *Program) FuncEnd(entry uint64) uint64 {
	i := sort.Search(len(p.Funcs), func(i int) bool { return p.Funcs[i] > entry })
	if i < len(p.Funcs) {
		return p.Funcs[i]
	}
	return p.CodeBase + uint64(len(p.Code))*InstSize
}

// SymbolFor returns a human-readable name for a code address: the exact
// label if one exists, otherwise "func+0xoff" when inside a known function,
// otherwise the hex address.
func (p *Program) SymbolFor(pc uint64) string {
	if s, ok := p.Symbols[pc]; ok {
		return s
	}
	if f, ok := p.FuncOf(pc); ok {
		if s, ok := p.Symbols[f]; ok {
			return fmt.Sprintf("%s+0x%x", s, pc-f)
		}
	}
	return fmt.Sprintf("0x%x", pc)
}

// Disassemble renders the whole code segment, one instruction per line,
// with label annotations.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for i, inst := range p.Code {
		pc := p.PCOf(i)
		if s, ok := p.Symbols[pc]; ok {
			fmt.Fprintf(&b, "%s:\n", s)
		}
		fmt.Fprintf(&b, "  0x%06x: %s\n", pc, inst)
	}
	return b.String()
}
