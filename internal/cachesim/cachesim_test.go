package cachesim

import (
	"testing"
	"testing/quick"
)

func small() *Cache {
	// 4 sets * 2 ways * 16B lines = 128 bytes.
	return New(Config{SizeBytes: 128, Assoc: 2, LineBytes: 16, MissLatency: 10}, nil)
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	if lat := c.Access(0x100); lat != 10 {
		t.Fatalf("cold access latency = %d, want 10", lat)
	}
	if lat := c.Access(0x100); lat != 0 {
		t.Fatalf("second access latency = %d, want 0", lat)
	}
	if lat := c.Access(0x10f); lat != 0 {
		t.Fatalf("same-line access missed")
	}
	if lat := c.Access(0x110); lat != 10 {
		t.Fatalf("next line must miss")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Fatalf("stats = %d/%d, want 4/2", c.Misses, c.Accesses)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := small()
	// Three lines mapping to the same set (stride = numSets*lineBytes = 64).
	a, b, d := uint64(0x000), uint64(0x040), uint64(0x080)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is MRU, b is LRU
	c.Access(d) // evicts b
	if !c.Probe(a) {
		t.Fatalf("MRU line evicted")
	}
	if c.Probe(b) {
		t.Fatalf("LRU line survived")
	}
	if !c.Probe(d) {
		t.Fatalf("filled line absent")
	}
}

func TestProbeDoesNotMutate(t *testing.T) {
	c := small()
	c.Access(0x000)
	c.Access(0x040)
	// Probing the LRU line must not refresh it.
	c.Probe(0x000)
	misses := c.Misses
	c.Probe(0x0c0)
	if c.Misses != misses || c.Probe(0x0c0) {
		t.Fatalf("probe mutated the cache")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := DefaultHierarchy()
	// Cold: L1 miss + L2 miss.
	if lat := h.L1D.Access(0x4000); lat != 110 {
		t.Fatalf("cold L1D access = %d, want 110", lat)
	}
	// Same line: L1 hit.
	if lat := h.L1D.Access(0x4008); lat != 0 {
		t.Fatalf("warm L1D access = %d, want 0", lat)
	}
	// Evict from L1D by filling its set, keeping L2 resident -> 10.
	way := uint64(16 << 10 / 4) // L1D way size: sets*lineBytes
	for i := uint64(1); i <= 4; i++ {
		h.L1D.Access(0x4000 + i*way)
	}
	if lat := h.L1D.Access(0x4000); lat != 10 {
		t.Fatalf("L2-resident access = %d, want 10", lat)
	}
}

func TestSharedL2(t *testing.T) {
	h := DefaultHierarchy()
	h.L1I.Access(0x8000) // fills the L2 line via the I-side
	if lat := h.L1D.Access(0x8000); lat != 10 {
		t.Fatalf("D-side access after I-side fill = %d, want L2 hit (10)", lat)
	}
}

func TestLineOf(t *testing.T) {
	c := small()
	if c.LineOf(0x123) != 0x120 {
		t.Fatalf("LineOf(0x123) = %x", c.LineOf(0x123))
	}
	if c.LineBytes() != 16 {
		t.Fatalf("LineBytes = %d", c.LineBytes())
	}
}

// TestQuickContainment: after any access sequence, the most recently
// accessed address always probes as resident (its line cannot have been
// evicted by later accesses because there are none).
func TestQuickContainment(t *testing.T) {
	prop := func(addrs []uint16) bool {
		c := small()
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		if len(addrs) == 0 {
			return true
		}
		return c.Probe(uint64(addrs[len(addrs)-1]))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWorkingSetFits: any working set no larger than one set's
// associativity (same set) hits steadily after the first pass.
func TestQuickWorkingSetFits(t *testing.T) {
	prop := func(seed uint8) bool {
		c := small()
		base := uint64(seed) * 0x40
		lines := []uint64{base, base + 0x40} // two lines, same set, assoc 2
		for _, a := range lines {
			c.Access(a)
		}
		for pass := 0; pass < 3; pass++ {
			for _, a := range lines {
				if c.Access(a) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDegenerateSingleSet(t *testing.T) {
	// A cache smaller than assoc*line still works as one set.
	c := New(Config{SizeBytes: 16, Assoc: 4, LineBytes: 16, MissLatency: 5}, nil)
	c.Access(0x00)
	c.Access(0x10)
	if !c.Probe(0x00) || !c.Probe(0x10) {
		t.Fatalf("single-set cache lost lines")
	}
}
