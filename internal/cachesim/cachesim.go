// Package cachesim models the paper's cache hierarchy: set-associative,
// LRU-replaced L1 instruction and data caches backed by a shared L2.
// Accesses return the additional latency beyond the pipeline's base access
// time: 0 on an L1 hit, the L1 miss latency on an L2 hit, and the sum of
// both miss latencies on an L2 miss.
package cachesim

// Config describes one cache level.
type Config struct {
	SizeBytes   int
	Assoc       int
	LineBytes   int
	MissLatency int // cycles added when this level misses
}

type line struct {
	tag   uint64
	valid bool
	lru   uint64
}

// Cache is one level of set-associative cache with true-LRU replacement.
type Cache struct {
	cfg      Config
	sets     [][]line
	setMask  uint64
	lineBits uint
	tick     uint64
	next     *Cache // lower level, nil for last-level

	// Stats
	Accesses uint64
	Misses   uint64
}

// New builds a cache level on top of next (which may be nil).
func New(cfg Config, next *Cache) *Cache {
	numSets := cfg.SizeBytes / (cfg.Assoc * cfg.LineBytes)
	if numSets < 1 {
		numSets = 1
	}
	c := &Cache{
		cfg:     cfg,
		sets:    make([][]line, numSets),
		setMask: uint64(numSets - 1),
		next:    next,
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Assoc)
	}
	for b := cfg.LineBytes; b > 1; b >>= 1 {
		c.lineBits++
	}
	return c
}

// LineBytes returns the line size of this level.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// LineOf returns the line-aligned address containing addr.
func (c *Cache) LineOf(addr uint64) uint64 { return addr >> c.lineBits << c.lineBits }

// Access looks up addr, filling on miss, and returns the extra latency
// (0 for a hit at this level).
func (c *Cache) Access(addr uint64) int {
	c.tick++
	c.Accesses++
	tag := addr >> c.lineBits
	set := c.sets[tag&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.tick
			return 0
		}
	}
	// Miss: fill LRU way.
	c.Misses++
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = line{tag: tag, valid: true, lru: c.tick}
	lat := c.cfg.MissLatency
	if c.next != nil {
		lat += c.next.Access(addr)
	}
	return lat
}

// Reset invalidates every line and clears the statistics, returning the
// cache to its just-built state so pooled hierarchies can be reused across
// runs.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
	c.tick = 0
	c.Accesses, c.Misses = 0, 0
}

// Probe reports whether addr currently hits, without updating state.
func (c *Cache) Probe(addr uint64) bool {
	tag := addr >> c.lineBits
	set := c.sets[tag&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Hierarchy bundles the paper's three caches (Figure 8): split L1I/L1D over
// a shared L2.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
}

// Reset restores every level to its just-built state.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
}

// DefaultHierarchy returns the Figure 8 configuration: L1I 8 KB 2-way 128 B
// lines / 10-cycle miss; L1D 16 KB 4-way 64 B lines / 10-cycle miss; shared
// L2 512 KB 8-way 128 B lines / 100-cycle miss.
func DefaultHierarchy() *Hierarchy {
	l2 := New(Config{SizeBytes: 512 << 10, Assoc: 8, LineBytes: 128, MissLatency: 100}, nil)
	return &Hierarchy{
		L1I: New(Config{SizeBytes: 8 << 10, Assoc: 2, LineBytes: 128, MissLatency: 10}, l2),
		L1D: New(Config{SizeBytes: 16 << 10, Assoc: 4, LineBytes: 64, MissLatency: 10}, l2),
		L2:  l2,
	}
}
