package sysos

import (
	"bytes"
	"testing"

	"repro/internal/asm"
)

// seedImages builds a spread of valid images for the fuzz corpus: empty
// program, data-only, jump tables, and the syscall demo.
func seedImages(f *testing.F) [][]byte {
	f.Helper()
	sources := []string{
		"main: halt\n",
		hello,
		`
        .func main
main:   li  $t0, 2
        la  $t1, table
        sll $t2, $t0, 3
        add $t1, $t1, $t2
        ld  $t3, 0($t1)
        jr  $t3
        .targets c0, c1, c2
c0:     halt
c1:     halt
c2:     li $v0, 10
        syscall
        .data
table:  .word8 c0, c1, c2
buf:    .space 64
`,
	}
	var out [][]byte
	for _, src := range sources {
		p, err := asm.Assemble(src)
		if err != nil {
			f.Fatal(err)
		}
		img, err := EncodeImage(p)
		if err != nil {
			f.Fatal(err)
		}
		out = append(out, img)
	}
	return out
}

// FuzzLoader holds the loader's two contracts over arbitrary bytes:
// malformed images error (never panic), and any accepted image is
// canonical — re-encoding the loaded program reproduces the input
// byte-for-byte.
func FuzzLoader(f *testing.F) {
	for _, img := range seedImages(f) {
		f.Add(img)
		// A few systematic corruptions widen the corpus beyond the happy path.
		if len(img) > 16 {
			f.Add(img[:len(img)/2])
			mut := bytes.Clone(img)
			mut[12] ^= 0xff
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("POLYOBJ1"))
	f.Fuzz(func(t *testing.T, img []byte) {
		p, err := LoadImage(img)
		if err != nil {
			return // rejected cleanly
		}
		enc, err := EncodeImage(p)
		if err != nil {
			t.Fatalf("loaded image failed to re-encode: %v", err)
		}
		if !bytes.Equal(enc, img) {
			t.Fatalf("accepted image is not canonical:\n in %x\nout %x", img, enc)
		}
		// And the fixed point really is fixed.
		p2, err := LoadImage(enc)
		if err != nil {
			t.Fatalf("re-encoded image failed to load: %v", err)
		}
		enc2, err := EncodeImage(p2)
		if err != nil || !bytes.Equal(enc, enc2) {
			t.Fatalf("second round trip diverged (err %v)", err)
		}
	})
}
