package sysos

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
)

// hello prints a data-segment string, echoes stdin integers, allocates
// from the heap, and exits with a code — one program per syscall.
const hello = `
        .func main
main:
        la   $a0, greeting
        li   $v0, 4
        syscall                 # print_string
        li   $v0, 5
        syscall                 # read_int -> 41
        addi $s0, $v0, 1
        move $a0, $s0
        li   $v0, 1
        syscall                 # print_int 42
        li   $a0, 10
        li   $v0, 11
        syscall                 # print_char '\n'
        li   $a0, 64
        li   $v0, 9
        syscall                 # sbrk(64)
        move $s1, $v0
        li   $t0, 7
        sd   $t0, 0($s1)        # touch the heap
        ld   $t1, 0($s1)
        move $a0, $t1
        li   $v0, 17
        syscall                 # exit with code 7
        halt

        .data
greeting: .asciiz "hi: "
`

func mustAssemble(t *testing.T, src string) *Result {
	t.Helper()
	p, err := LoadSource(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, Config{Stdin: []byte(" 41 ")}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSyscallsEndToEnd(t *testing.T) {
	res := mustAssemble(t, hello)
	if got, want := string(res.Output), "hi: 42\n"; got != want {
		t.Fatalf("output = %q, want %q", got, want)
	}
	if !res.Exited || res.ExitCode != 7 {
		t.Fatalf("exit = (%d, %v), want (7, true)", res.ExitCode, res.Exited)
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	a := mustAssemble(t, hello)
	b := mustAssemble(t, hello)
	if !bytes.Equal(a.Output, b.Output) || a.Count != b.Count {
		t.Fatalf("two runs differ: %q/%d vs %q/%d", a.Output, a.Count, b.Output, b.Count)
	}
}

func TestReadIntEOF(t *testing.T) {
	p, err := LoadSource(`
        .func main
main:   li $v0, 5
        syscall
        li $v0, 12
        syscall
        move $a0, $v0
        li $v0, 17
        syscall
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, Config{}, 1000) // empty stdin
	if err != nil {
		t.Fatal(err)
	}
	// read_int at EOF returns 0, read_char returns -1 — which the program
	// passes to exit2.
	if res.ExitCode != -1 {
		t.Fatalf("exit code = %d, want -1 (read_char EOF)", res.ExitCode)
	}
}

func TestSyscallWithoutOSFaults(t *testing.T) {
	p, err := asm.Assemble("main: li $v0, 1\n      syscall\n      halt\n")
	if err != nil {
		t.Fatal(err)
	}
	_, err = emu.Run(p, emu.Config{MaxInstrs: 100})
	if err == nil || !strings.Contains(err.Error(), "no OS attached") {
		t.Fatalf("err = %v, want no-OS fault", err)
	}
}

func TestUnknownSyscallFaults(t *testing.T) {
	p, err := asm.Assemble("main: li $v0, 999\n      syscall\n      halt\n")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(p, Config{}, 100)
	if err == nil || !strings.Contains(err.Error(), "unknown syscall 999") {
		t.Fatalf("err = %v, want unknown-syscall fault", err)
	}
}

func TestSbrkExhaustionFaults(t *testing.T) {
	p, err := asm.Assemble(`
main:   li $a0, 128
        li $v0, 9
        syscall
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	os := New(Config{HeapBase: DefaultHeapBase, HeapSize: 64})
	_, err = emu.Run(p, emu.Config{MaxInstrs: 100, OS: os})
	if err == nil || !strings.Contains(err.Error(), "heap exhausted") {
		t.Fatalf("err = %v, want heap-exhausted fault", err)
	}
}

// TestOutOfBoundsAccessReportsContext pins the satellite requirement: a
// stray access under a segment map faults with PC, effective address, and
// the mapped segments.
func TestOutOfBoundsAccessReportsContext(t *testing.T) {
	p, err := asm.Assemble(`
        .func main
main:   li $t0, 0x900000
        sd $t0, 0($t0)
        halt
        .data
buf:    .space 16
`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(p, Config{}, 100)
	if err == nil {
		t.Fatal("out-of-segment store succeeded")
	}
	msg := err.Error()
	for _, want := range []string{
		"store of 8 bytes",
		"0x900000",      // effective address
		"main",          // faulting PC's symbol
		"data [",        // segment map
		"heap [0x400000",
		"stack [",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestImageRoundTrip(t *testing.T) {
	p, err := asm.Assemble(hello)
	if err != nil {
		t.Fatal(err)
	}
	// Exercise a jump-table program too.
	img, err := EncodeImage(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := LoadImage(img)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Fatalf("round-tripped program differs:\n%+v\n%+v", p, p2)
	}
	img2, err := EncodeImage(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, img2) {
		t.Fatal("re-encoded image is not byte-identical")
	}
}

func TestLoadImageRejectsMalformed(t *testing.T) {
	p, err := asm.Assemble(hello)
	if err != nil {
		t.Fatal(err)
	}
	img, err := EncodeImage(p)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want string
	}{
		{"empty", func(b []byte) []byte { return nil }, "truncated"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic"},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }, ""},
		{"flipped byte", func(b []byte) []byte { b[len(b)/2] ^= 0xff; return b }, ""},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0) }, "trailing"},
		{"bad checksum", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }, "checksum mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mut(bytes.Clone(img))
			_, err := LoadImage(mut)
			if err == nil {
				t.Fatal("malformed image loaded successfully")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}
