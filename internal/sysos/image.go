package sysos

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/asm"
	"repro/internal/isa"
)

// The polyflow-obj/1 image is the multi-section object format the loader
// consumes: entry point, decoded code, initialized data with a trailing
// bss (zero) section, the label/symbol tables, function boundaries, and
// the jump-table annotations the static analyses need. All integers are
// little-endian; string tables are sorted so encoding is canonical — for
// any image LoadImage accepts, EncodeImage(LoadImage(img)) == img, a
// property FuzzLoader holds.
//
// Layout:
//
//	magic    "POLYOBJ1"
//	u64      entry PC
//	u64      code base, u32 n, n × {u8 op, u8 rd, u8 rs, u8 rt, i64 imm}
//	u64      data base, u32 init-len, init bytes, u32 bss-len
//	u32      n labels,      n × {u32 len, name, u64 addr}   (sorted by name)
//	u32      n symbols,     n × {u64 addr, u32 len, name}   (sorted by addr)
//	u32      n funcs,       n × u64                          (strictly increasing)
//	u32      n jump tables, n × {u64 pc, u32 k, k × u64}     (sorted by pc)
//	u32      IEEE CRC-32 of everything above
const imageMagic = "POLYOBJ1"

// Validation bounds: an image section that claims more than these is
// rejected before any allocation is sized from it.
const (
	maxImageInsts   = 1 << 20
	maxImageData    = 1 << 26
	maxImageNames   = 1 << 16
	maxImageNameLen = 1 << 10
	maxImageTargets = 1 << 12
)

// EncodeImage serializes a linked program as a polyflow-obj/1 image.
func EncodeImage(p *isa.Program) ([]byte, error) {
	if len(p.Code) > maxImageInsts {
		return nil, fmt.Errorf("sysos: encode: %d instructions exceed the image bound %d", len(p.Code), maxImageInsts)
	}
	if len(p.Data) > maxImageData {
		return nil, fmt.Errorf("sysos: encode: %d data bytes exceed the image bound %d", len(p.Data), maxImageData)
	}
	if len(p.Labels) > maxImageNames || len(p.Symbols) > maxImageNames ||
		len(p.Funcs) > maxImageNames || len(p.JumpTargets) > maxImageNames {
		return nil, fmt.Errorf("sysos: encode: symbol table exceeds the image bound %d", maxImageNames)
	}
	for name := range p.Labels {
		if len(name) > maxImageNameLen {
			return nil, fmt.Errorf("sysos: encode: label %.32q... exceeds the name bound %d", name, maxImageNameLen)
		}
	}
	for pc, tgts := range p.JumpTargets {
		if len(tgts) == 0 || len(tgts) > maxImageTargets {
			return nil, fmt.Errorf("sysos: encode: jump table at 0x%x has %d targets (bound %d)", pc, len(tgts), maxImageTargets)
		}
	}
	var b []byte
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }

	b = append(b, imageMagic...)
	u64(p.Entry)

	u64(p.CodeBase)
	u32(uint32(len(p.Code)))
	for _, in := range p.Code {
		b = append(b, byte(in.Op), byte(in.Rd), byte(in.Rs), byte(in.Rt))
		u64(uint64(in.Imm))
	}

	// Initialized data is split canonically: the longest trailing run of
	// zero bytes becomes the bss section, so zero-filled .space buffers
	// cost nothing in the image.
	init := p.Data
	for len(init) > 0 && init[len(init)-1] == 0 {
		init = init[:len(init)-1]
	}
	u64(p.DataBase)
	u32(uint32(len(init)))
	b = append(b, init...)
	u32(uint32(len(p.Data) - len(init)))

	labels := make([]string, 0, len(p.Labels))
	for name := range p.Labels {
		labels = append(labels, name)
	}
	sort.Strings(labels)
	u32(uint32(len(labels)))
	for _, name := range labels {
		u32(uint32(len(name)))
		b = append(b, name...)
		u64(p.Labels[name])
	}

	symAddrs := make([]uint64, 0, len(p.Symbols))
	for addr := range p.Symbols {
		symAddrs = append(symAddrs, addr)
	}
	sort.Slice(symAddrs, func(i, j int) bool { return symAddrs[i] < symAddrs[j] })
	u32(uint32(len(symAddrs)))
	for _, addr := range symAddrs {
		u64(addr)
		name := p.Symbols[addr]
		u32(uint32(len(name)))
		b = append(b, name...)
	}

	u32(uint32(len(p.Funcs)))
	for _, pc := range p.Funcs {
		u64(pc)
	}

	jts := make([]uint64, 0, len(p.JumpTargets))
	for pc := range p.JumpTargets {
		jts = append(jts, pc)
	}
	sort.Slice(jts, func(i, j int) bool { return jts[i] < jts[j] })
	u32(uint32(len(jts)))
	for _, pc := range jts {
		u64(pc)
		tgts := p.JumpTargets[pc]
		u32(uint32(len(tgts)))
		for _, t := range tgts {
			u64(t)
		}
	}

	u32(crc32.ChecksumIEEE(b))
	return b, nil
}

// imageReader is a bounds-checked cursor over image bytes. Every read is
// guarded, so malformed images produce errors, never panics.
type imageReader struct {
	b   []byte
	pos int
}

func (r *imageReader) need(n int, what string) error {
	if n < 0 || len(r.b)-r.pos < n {
		return fmt.Errorf("sysos: load: truncated image at byte %d reading %s", r.pos, what)
	}
	return nil
}

func (r *imageReader) bytes(n int, what string) ([]byte, error) {
	if err := r.need(n, what); err != nil {
		return nil, err
	}
	v := r.b[r.pos : r.pos+n]
	r.pos += n
	return v, nil
}

func (r *imageReader) u32(what string) (uint32, error) {
	v, err := r.bytes(4, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(v), nil
}

func (r *imageReader) u64(what string) (uint64, error) {
	v, err := r.bytes(8, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(v), nil
}

// count reads a u32 section length and validates it against max.
func (r *imageReader) count(max int, what string) (int, error) {
	v, err := r.u32(what)
	if err != nil {
		return 0, err
	}
	if int64(v) > int64(max) {
		return 0, fmt.Errorf("sysos: load: %s count %d exceeds bound %d", what, v, max)
	}
	return int(v), nil
}

func (r *imageReader) name(what string) (string, error) {
	n, err := r.count(maxImageNameLen, what+" length")
	if err != nil {
		return "", err
	}
	v, err := r.bytes(n, what)
	if err != nil {
		return "", err
	}
	return string(v), nil
}

// LoadImage decodes and validates a polyflow-obj/1 image into a linked
// program. It rejects (with an error, never a panic) anything malformed:
// truncation, bad opcodes or registers, unsorted tables, checksum
// mismatches, or trailing garbage. Accepted images are canonical, so a
// re-encode reproduces the input bytes exactly.
func LoadImage(img []byte) (*isa.Program, error) {
	r := &imageReader{b: img}
	magic, err := r.bytes(len(imageMagic), "magic")
	if err != nil {
		return nil, err
	}
	if string(magic) != imageMagic {
		return nil, fmt.Errorf("sysos: load: bad magic %q (want %q)", magic, imageMagic)
	}

	p := &isa.Program{
		Labels:      map[string]uint64{},
		Symbols:     map[uint64]string{},
		JumpTargets: map[uint64][]uint64{},
	}
	if p.Entry, err = r.u64("entry"); err != nil {
		return nil, err
	}

	if p.CodeBase, err = r.u64("code base"); err != nil {
		return nil, err
	}
	ninst, err := r.count(maxImageInsts, "instruction")
	if err != nil {
		return nil, err
	}
	p.Code = make([]isa.Inst, ninst)
	for i := range p.Code {
		raw, err := r.bytes(4, "instruction header")
		if err != nil {
			return nil, err
		}
		imm, err := r.u64("immediate")
		if err != nil {
			return nil, err
		}
		in := isa.Inst{Op: isa.Op(raw[0]), Rd: isa.Reg(raw[1]), Rs: isa.Reg(raw[2]), Rt: isa.Reg(raw[3]), Imm: int64(imm)}
		if !in.Op.Valid() {
			return nil, fmt.Errorf("sysos: load: instruction %d: invalid opcode %d", i, raw[0])
		}
		if in.Rd >= isa.NumRegs || in.Rs >= isa.NumRegs || in.Rt >= isa.NumRegs {
			return nil, fmt.Errorf("sysos: load: instruction %d: register out of range", i)
		}
		p.Code[i] = in
	}

	if p.DataBase, err = r.u64("data base"); err != nil {
		return nil, err
	}
	initLen, err := r.count(maxImageData, "data byte")
	if err != nil {
		return nil, err
	}
	init, err := r.bytes(initLen, "data bytes")
	if err != nil {
		return nil, err
	}
	if initLen > 0 && init[initLen-1] == 0 {
		return nil, fmt.Errorf("sysos: load: non-canonical data section (trailing zero belongs in bss)")
	}
	bss, err := r.count(maxImageData, "bss byte")
	if err != nil {
		return nil, err
	}
	p.Data = make([]byte, initLen+bss)
	copy(p.Data, init)

	nlabels, err := r.count(maxImageNames, "label")
	if err != nil {
		return nil, err
	}
	prevName := ""
	for i := 0; i < nlabels; i++ {
		name, err := r.name("label name")
		if err != nil {
			return nil, err
		}
		addr, err := r.u64("label address")
		if err != nil {
			return nil, err
		}
		if i > 0 && name <= prevName {
			return nil, fmt.Errorf("sysos: load: label table not strictly sorted at %q", name)
		}
		prevName = name
		p.Labels[name] = addr
	}

	nsyms, err := r.count(maxImageNames, "symbol")
	if err != nil {
		return nil, err
	}
	var prevAddr uint64
	for i := 0; i < nsyms; i++ {
		addr, err := r.u64("symbol address")
		if err != nil {
			return nil, err
		}
		name, err := r.name("symbol name")
		if err != nil {
			return nil, err
		}
		if i > 0 && addr <= prevAddr {
			return nil, fmt.Errorf("sysos: load: symbol table not strictly sorted at 0x%x", addr)
		}
		prevAddr = addr
		p.Symbols[addr] = name
	}

	nfuncs, err := r.count(maxImageNames, "function")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nfuncs; i++ {
		pc, err := r.u64("function entry")
		if err != nil {
			return nil, err
		}
		if i > 0 && pc <= p.Funcs[i-1] {
			return nil, fmt.Errorf("sysos: load: function table not strictly increasing at 0x%x", pc)
		}
		p.Funcs = append(p.Funcs, pc)
	}

	njt, err := r.count(maxImageNames, "jump table")
	if err != nil {
		return nil, err
	}
	var prevJT uint64
	for i := 0; i < njt; i++ {
		pc, err := r.u64("jump-table pc")
		if err != nil {
			return nil, err
		}
		if i > 0 && pc <= prevJT {
			return nil, fmt.Errorf("sysos: load: jump tables not strictly sorted at 0x%x", pc)
		}
		prevJT = pc
		k, err := r.count(maxImageTargets, "jump target")
		if err != nil {
			return nil, err
		}
		if k == 0 {
			return nil, fmt.Errorf("sysos: load: empty jump table at 0x%x", pc)
		}
		tgts := make([]uint64, k)
		for j := range tgts {
			if tgts[j], err = r.u64("jump target"); err != nil {
				return nil, err
			}
		}
		p.JumpTargets[pc] = tgts
	}

	sum, err := r.u32("checksum")
	if err != nil {
		return nil, err
	}
	if want := crc32.ChecksumIEEE(img[:r.pos-4]); sum != want {
		return nil, fmt.Errorf("sysos: load: checksum mismatch (image 0x%08x, computed 0x%08x)", sum, want)
	}
	if r.pos != len(img) {
		return nil, fmt.Errorf("sysos: load: %d trailing bytes after checksum", len(img)-r.pos)
	}
	return p, nil
}

// LoadSource assembles source text and round-trips it through the image
// codec — the standard way a kernel workload becomes a Program, so the
// loader sits in the real run path rather than beside it.
func LoadSource(src string) (*isa.Program, error) {
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	img, err := EncodeImage(p)
	if err != nil {
		return nil, err
	}
	return LoadImage(img)
}
