// Package sysos is the thin operating-system layer under loader-built
// programs: a deterministic syscall implementation (console I/O over a
// preloaded stdin, an sbrk heap, exit-with-code) and a multi-section
// object-image codec (image.go) for the assembler's output.
//
// Determinism contract: every service is a pure function of the machine
// state and the OS's own state (stdin cursor, output buffer, heap break),
// and the OS is seeded entirely from its Config. Two runs of the same
// program image under the same Config therefore retire byte-identical
// traces and produce byte-identical output — which is what lets syscall
// workloads share the artifact cache, the trace store, and every remote
// run path with the synthetic workloads. See docs/WORKLOADS.md for the
// full ABI.
package sysos

import (
	"fmt"
	"strconv"

	"repro/internal/emu"
	"repro/internal/isa"
)

// Syscall numbers, read from $v0 (SPIM-flavored). Arguments arrive in
// $a0/$a1; the result is written back to $v0.
const (
	SysPrintInt    = 1  // print $a0 in decimal; returns bytes written
	SysPrintString = 4  // print NUL-terminated string at $a0; returns bytes written
	SysReadInt     = 5  // read a whitespace-delimited integer from stdin (0 at EOF)
	SysSbrk        = 9  // grow the heap by $a0 bytes; returns the old break
	SysExit        = 10 // halt with exit code 0
	SysPrintChar   = 11 // print the byte in $a0; returns 1
	SysReadChar    = 12 // read one byte from stdin (-1 at EOF)
	SysExit2       = 17 // halt with exit code $a0
)

// Memory-map defaults. The heap sits between the data segment
// (isa.DefaultDataBase) and the stack, which grows down from
// isa.DefaultStackTop.
const (
	DefaultHeapBase  uint64 = 0x400000
	DefaultHeapSize  uint64 = 0x200000 // 2 MiB
	DefaultStackSize uint64 = 0x100000 // 1 MiB
	// DefaultMaxOutput bounds the captured output of one run.
	DefaultMaxOutput = 1 << 20
	// maxStringLen bounds a single print_string scan, so a missing NUL
	// terminator faults instead of walking the whole address space.
	maxStringLen = 1 << 16
)

// Config seeds one OS instance. The zero value is a valid OS with empty
// stdin and default limits.
type Config struct {
	// Stdin is the preloaded input the read syscalls consume.
	Stdin []byte
	// MaxOutput caps captured output bytes (0 = DefaultMaxOutput).
	MaxOutput int
	// HeapBase/HeapSize bound the sbrk arena (0 = defaults).
	HeapBase uint64
	HeapSize uint64
}

// OS implements emu.SyscallHandler deterministically.
type OS struct {
	cfg      Config
	in       int // stdin read cursor
	out      []byte
	brk      uint64
	exited   bool
	exitCode int64
}

// New returns a fresh OS seeded from cfg.
func New(cfg Config) *OS {
	if cfg.MaxOutput == 0 {
		cfg.MaxOutput = DefaultMaxOutput
	}
	if cfg.HeapBase == 0 {
		cfg.HeapBase = DefaultHeapBase
	}
	if cfg.HeapSize == 0 {
		cfg.HeapSize = DefaultHeapSize
	}
	return &OS{cfg: cfg, brk: cfg.HeapBase}
}

// Reset rewinds the OS to its initial state (stdin cursor, output, heap
// break), so one instance can serve a fresh replay.
func (o *OS) Reset() {
	o.in = 0
	o.out = o.out[:0]
	o.brk = o.cfg.HeapBase
	o.exited = false
	o.exitCode = 0
}

// Output returns the bytes the program printed so far.
func (o *OS) Output() []byte { return o.out }

// Exited reports whether the program exited via syscall and its code.
func (o *OS) Exited() (code int64, ok bool) { return o.exitCode, o.exited }

// Syscall services one OpSYSCALL instruction.
func (o *OS) Syscall(m *emu.Machine) (int64, error) {
	num := m.Regs[isa.V0]
	a0 := m.Regs[isa.A0]
	switch num {
	case SysPrintInt:
		return o.emit(strconv.AppendInt(nil, a0, 10))
	case SysPrintString:
		s, err := o.cstring(m, uint64(a0))
		if err != nil {
			return 0, err
		}
		return o.emit(s)
	case SysReadInt:
		return o.readInt(), nil
	case SysSbrk:
		if a0 < 0 {
			return 0, fmt.Errorf("sysos: sbrk(%d): negative size", a0)
		}
		end := o.cfg.HeapBase + o.cfg.HeapSize
		if uint64(a0) > end-o.brk {
			return 0, fmt.Errorf("sysos: sbrk(%d): heap exhausted (break 0x%x, limit 0x%x)", a0, o.brk, end)
		}
		old := o.brk
		o.brk += uint64(a0)
		return int64(old), nil
	case SysExit:
		o.exited, o.exitCode = true, 0
		m.Halted = true
		return 0, nil
	case SysPrintChar:
		return o.emit([]byte{byte(a0)})
	case SysReadChar:
		if o.in >= len(o.cfg.Stdin) {
			return -1, nil
		}
		c := o.cfg.Stdin[o.in]
		o.in++
		return int64(c), nil
	case SysExit2:
		o.exited, o.exitCode = true, a0
		m.Halted = true
		return a0, nil
	}
	return 0, fmt.Errorf("sysos: unknown syscall %d", num)
}

// emit appends b to the captured output under the output cap and returns
// the byte count.
func (o *OS) emit(b []byte) (int64, error) {
	if len(o.out)+len(b) > o.cfg.MaxOutput {
		return 0, fmt.Errorf("sysos: output limit %d bytes exceeded", o.cfg.MaxOutput)
	}
	o.out = append(o.out, b...)
	return int64(len(b)), nil
}

// cstring reads the NUL-terminated string at addr from program memory.
func (o *OS) cstring(m *emu.Machine, addr uint64) ([]byte, error) {
	var s []byte
	for i := 0; i < maxStringLen; i++ {
		c := m.Mem.Load8(addr + uint64(i))
		if c == 0 {
			return s, nil
		}
		s = append(s, c)
	}
	return nil, fmt.Errorf("sysos: print_string at 0x%x: no NUL terminator within %d bytes", addr, maxStringLen)
}

// readInt consumes a whitespace-delimited decimal integer (optional '-')
// from stdin; at EOF, or when the next token has no digits, it returns 0.
func (o *OS) readInt() int64 {
	in := o.cfg.Stdin
	for o.in < len(in) && isSpace(in[o.in]) {
		o.in++
	}
	neg := false
	if o.in < len(in) && (in[o.in] == '-' || in[o.in] == '+') {
		neg = in[o.in] == '-'
		o.in++
	}
	var v int64
	for o.in < len(in) && in[o.in] >= '0' && in[o.in] <= '9' {
		v = v*10 + int64(in[o.in]-'0')
		o.in++
	}
	if neg {
		v = -v
	}
	return v
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

// Segments returns the memory map for a loader-built program: its data
// segment, the sbrk heap, and the downward-growing stack. Attached to
// emu.Config.Segments, stray accesses fault with context (the code
// segment is enforced separately by instruction fetch).
func Segments(p *isa.Program) []emu.Segment {
	return []emu.Segment{
		{Name: "data", Base: p.DataBase, Size: uint64(len(p.Data))},
		{Name: "heap", Base: DefaultHeapBase, Size: DefaultHeapSize},
		{Name: "stack", Base: isa.DefaultStackTop - DefaultStackSize, Size: DefaultStackSize},
	}
}

// Result is the outcome of one convenience Run.
type Result struct {
	Output   []byte
	ExitCode int64
	Exited   bool // exited via syscall (vs a bare halt)
	Count    int64
}

// Run executes a program end-to-end under a fresh OS with the standard
// memory map and returns its captured output — the short path for tests
// and tools that only want a program's console behavior.
func Run(p *isa.Program, cfg Config, maxInstrs int) (*Result, error) {
	os := New(cfg)
	tr, err := emu.Run(p, emu.Config{MaxInstrs: maxInstrs, OS: os, Segments: Segments(p)})
	if err != nil {
		return nil, err
	}
	code, exited := os.Exited()
	return &Result{Output: os.Output(), ExitCode: code, Exited: exited, Count: int64(len(tr.Entries))}, nil
}
