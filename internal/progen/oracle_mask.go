package progen

import (
	"fmt"
	"reflect"

	"repro/internal/asm"
	"repro/internal/attrib"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/machine"
	"repro/internal/trace"
)

// CheckSpawnMaskSeed generates the Tier-3 program for seed and checks the
// spawn-mask subsystem against it: the mask codec round-trips canonically
// over a randomly drawn mask, a masked run completes on both schedulers
// with bit-identical results, per-site attribution still reconciles
// exactly, masked sites charge nothing, and an empty mask is bit-identical
// to no mask at all.
func CheckSpawnMaskSeed(seed uint64) error {
	return fail("mask", seed, checkSpawnMask(GenAsm(seed), seed))
}

func checkSpawnMask(src string, seed uint64) error {
	p, err := asm.Assemble(src)
	if err != nil {
		return fmt.Errorf("assembling generated program: %w", err)
	}
	tr, err := emu.Run(p, emu.Config{MaxInstrs: asmMaxInstrs})
	if err != nil {
		return fmt.Errorf("emulating: %w", err)
	}
	an, err := core.Analyze(p, tr.IndirectTargets())
	if err != nil {
		return fmt.Errorf("analyzing: %w", err)
	}

	// Draw a random mask over the analyzed site universe: each site joins
	// with probability 1/3, so the draw covers empty, partial, and (on
	// small programs) full masks across seeds.
	r := newRNG(seed ^ 0xa5a5a5a5)
	mask := machine.NewSpawnMask()
	for _, sp := range an.Spawns {
		if r.chance(1, 3) {
			mask.Add(sp.From, uint8(sp.Kind))
		}
	}

	if err := checkMaskCodec(mask); err != nil {
		return err
	}

	// The empty mask must be bit-identical to no mask on a plain config.
	plainCfg := machine.PolyFlowConfig()
	plain, err := machine.Run(tr, nil, core.PolicyPostdoms.Source(an), plainCfg)
	if err != nil {
		return fmt.Errorf("unmasked run: %w", err)
	}
	emptyCfg := machine.PolyFlowConfig()
	emptyCfg.SpawnMask = machine.NewSpawnMask()
	empty, err := machine.Run(tr, nil, core.PolicyPostdoms.Source(an), emptyCfg)
	if err != nil {
		return fmt.Errorf("empty-mask run: %w", err)
	}
	if !reflect.DeepEqual(plain, empty) {
		return fmt.Errorf("empty mask changed the run:\nplain: %+v\nempty: %+v", plain, empty)
	}

	// Masked runs: both schedulers, attribution attached, under the plain
	// config and one stress config (ROB reclaim exercises squash paths).
	reclaim := machine.PolyFlowConfig()
	reclaim.ReclaimROB = true
	reclaim.ROBSize = 96
	reclaim.ROBReserve = 16
	for name, cfg := range map[string]machine.Config{
		"polyflow": machine.PolyFlowConfig(),
		"reclaim":  reclaim,
	} {
		cfg.SpawnMask = mask
		if err := checkMaskedPair(tr, an, name, cfg, mask); err != nil {
			return err
		}
	}
	return nil
}

// checkMaskCodec requires one canonical encoding per mask: Encode/Parse
// round-trips, and a doubled (duplicated-entry) encoding re-canonicalizes
// to the same bytes.
func checkMaskCodec(mask *machine.SpawnMask) error {
	enc := mask.Encode()
	back, err := machine.ParseSpawnMask(enc)
	if err != nil {
		return fmt.Errorf("parsing own encoding %q: %w", enc, err)
	}
	if got := back.Encode(); got != enc {
		return fmt.Errorf("codec round trip: %q -> %q", enc, got)
	}
	if back.Len() != mask.Len() {
		return fmt.Errorf("codec round trip lost entries: %d -> %d", mask.Len(), back.Len())
	}
	if enc != "" {
		dup, err := machine.ParseSpawnMask(enc + "," + enc)
		if err != nil {
			return fmt.Errorf("parsing duplicated encoding: %w", err)
		}
		if got := dup.Encode(); got != enc {
			return fmt.Errorf("duplicated entries escape canonicalization: %q -> %q", enc, got)
		}
	}
	return nil
}

// checkMaskedPair runs one masked configuration through both schedulers
// and requires bit-identical results, exact attribution reconciliation,
// and zero charges on every masked site.
func checkMaskedPair(tr *trace.Trace, an *core.Analysis, name string, cfg machine.Config, mask *machine.SpawnMask) error {
	src := core.PolicyPostdoms.Source(an)

	cfg.PolledScheduler = false
	cfg.Attribution = attrib.NewTable()
	event, err := machine.Run(tr, nil, src, cfg)
	if err != nil {
		return fmt.Errorf("%s masked event-driven run: %w", name, err)
	}
	if err := machine.VerifyAttribution(cfg.Attribution, event); err != nil {
		return fmt.Errorf("%s masked event-driven run: %w", name, err)
	}
	evTbl := cfg.Attribution

	cfg.PolledScheduler = true
	cfg.Attribution = attrib.NewTable()
	polled, err := machine.Run(tr, nil, core.PolicyPostdoms.Source(an), cfg)
	if err != nil {
		return fmt.Errorf("%s masked polled run: %w", name, err)
	}
	if err := machine.VerifyAttribution(cfg.Attribution, polled); err != nil {
		return fmt.Errorf("%s masked polled run: %w", name, err)
	}

	if !reflect.DeepEqual(event, polled) {
		return fmt.Errorf("%s: schedulers diverge under mask %q:\nevent:  %+v\npolled: %+v",
			name, mask.Encode(), event, polled)
	}

	// A masked site must have no attribution record at all — not even
	// rejection counts.
	var maskErr error
	mask.ForEach(func(pc uint64, kind uint8) {
		if maskErr != nil {
			return
		}
		if st := evTbl.Lookup(pc, kind); st != nil {
			maskErr = fmt.Errorf("%s: masked site 0x%x:%s still charged: %+v",
				name, pc, attrib.KindName(kind), *st)
		}
	})
	return maskErr
}
