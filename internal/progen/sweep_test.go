package progen

import (
	"runtime"
	"sync"
	"testing"
)

// sweep fans seeds [base, base+count) across workers and reports every
// oracle failure.
func sweep(t *testing.T, name string, base uint64, count int, check func(uint64) error) {
	t.Helper()
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	next := make(chan uint64, count)
	for s := base; s < base+uint64(count); s++ {
		next <- s
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range next {
				if err := check(s); err != nil {
					mu.Lock()
					if len(errs) < 5 {
						errs = append(errs, err)
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		t.Errorf("%s: %v", name, err)
	}
}

// TestOracleSweep cross-checks every oracle pair over 1000+ generated
// programs. It runs in full even under -short: this is the repository's
// primary generative regression gate (see docs/TESTING.md).
func TestOracleSweep(t *testing.T) {
	sweep(t, "cfg", 0, 700, CheckCFGSeed)
	sweep(t, "minic", 0, 120, CheckMiniCSeed)
	sweep(t, "isa", 0, 120, CheckAsmSeed)
	sweep(t, "machine", 0, 60, CheckMachineSeed)
	sweep(t, "attrib", 5_000, 24, CheckAttributionSeed)
}

// TestOracleSweepFull is the long-running version over a fresh, larger
// seed range; skipped under -short (the repository's slow-test
// convention).
func TestOracleSweepFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full oracle sweep skipped in -short mode")
	}
	sweep(t, "cfg", 10_000, 4000, CheckCFGSeed)
	sweep(t, "minic", 10_000, 500, CheckMiniCSeed)
	sweep(t, "isa", 10_000, 500, CheckAsmSeed)
	sweep(t, "machine", 10_000, 150, CheckMachineSeed)
	sweep(t, "attrib", 50_000, 100, CheckAttributionSeed)
}
