package progen

// Greedy minimizers. Each works on the generation-level representation
// (graph, AST, or shape plan) rather than on text, so every reduction
// step stays well-formed by construction: dropping a statement cannot
// orphan a label, and dropping a CFG node renumbers the survivors.

// MinimizeCFG shrinks a failing Tier-1 graph while `failing` keeps
// returning true: first by deleting nodes (entry and exit are kept), then
// by deleting individual edges, to a fixpoint. The input graph is not
// modified.
func MinimizeCFG(c *CFG, failing func(*CFG) bool) *CFG {
	cur := cloneCFG(c)
	for changed := true; changed; {
		changed = false
		// Node deletion, highest index first so renumbering is cheap.
		for v := len(cur.Succs) - 1; v >= 0; v-- {
			if v == cur.Entry || v == cur.Exit {
				continue
			}
			if cand := deleteNode(cur, v); failing(cand) {
				cur, changed = cand, true
			}
		}
		// Edge deletion.
		for v := 0; v < len(cur.Succs); v++ {
			for i := len(cur.Succs[v]) - 1; i >= 0; i-- {
				cand := cloneCFG(cur)
				cand.Succs[v] = append(append([]int{}, cur.Succs[v][:i]...), cur.Succs[v][i+1:]...)
				if failing(cand) {
					cur, changed = cand, true
				}
			}
		}
	}
	return cur
}

func cloneCFG(c *CFG) *CFG {
	out := &CFG{Entry: c.Entry, Exit: c.Exit, Shape: c.Shape, Succs: make([][]int, len(c.Succs))}
	for v, ss := range c.Succs {
		out.Succs[v] = append([]int{}, ss...)
	}
	return out
}

// deleteNode removes v and renumbers nodes above it down by one.
func deleteNode(c *CFG, v int) *CFG {
	remap := func(w int) int {
		if w > v {
			return w - 1
		}
		return w
	}
	out := &CFG{Entry: remap(c.Entry), Exit: remap(c.Exit), Shape: c.Shape}
	for u, ss := range c.Succs {
		if u == v {
			continue
		}
		var ns []int
		for _, w := range ss {
			if w != v {
				ns = append(ns, remap(w))
			}
		}
		out.Succs = append(out.Succs, ns)
	}
	return out
}

// MinimizeMiniCSeed regenerates the Tier-2 program for seed and greedily
// drops statements while the compiler-vs-interpreter oracle still fails,
// returning the minimized source. The second result is false when the
// seed does not fail in the first place.
func MinimizeMiniCSeed(seed uint64) (string, bool) {
	prog := genMiniCProg(newRNG(seed))
	failing := func(p *mcProg) bool { return checkMiniCProg(p) != nil }
	if !failing(prog) {
		return prog.render(), false
	}
	minimizeStmts(progStmtLists(prog), func() bool { return failing(prog) })
	return prog.render(), true
}

// checkMiniCProg runs the Tier-2 value oracle on an in-memory program:
// the reference interpreter's answer must match the compiled program's
// $v0. (Minimization targets the compiler-vs-interpreter divergence; the
// downstream graph oracles have their own CFG-level minimizer.)
func checkMiniCProg(prog *mcProg) error {
	want, err := prog.interpret()
	if err != nil {
		return err
	}
	_, err = checkMiniCValue(prog.render(), want)
	return err
}

// progStmtLists collects a pointer to every statement list in the program
// (function bodies, if arms, loop bodies), outermost first.
func progStmtLists(p *mcProg) []*[]mcStmt {
	var out []*[]mcStmt
	var walk func(l *[]mcStmt)
	walk = func(l *[]mcStmt) {
		out = append(out, l)
		for _, s := range *l {
			switch n := s.(type) {
			case *mcIf:
				walk(&n.then)
				walk(&n.els)
			case *mcLoop:
				walk(&n.body)
			}
		}
	}
	for _, f := range p.funcs {
		walk(&f.body)
	}
	return out
}

// minimizeStmts greedily deletes statements from the given lists while
// stillFailing() holds, iterating to a fixpoint. Deleting a statement
// never breaks well-formedness: all locals stay declared and loops stay
// counter loops.
func minimizeStmts(lists []*[]mcStmt, stillFailing func() bool) {
	for changed := true; changed; {
		changed = false
		for _, l := range lists {
			for i := len(*l) - 1; i >= 0; i-- {
				saved := *l
				next := append(append([]mcStmt{}, saved[:i]...), saved[i+1:]...)
				*l = next
				if stillFailing() {
					changed = true
				} else {
					*l = saved
				}
			}
		}
	}
}

// MinimizeAsmSeed regenerates the Tier-3 plan for seed and greedily drops
// shapes while `failing` (given the rendered source) still reports an
// error, returning the minimized source. The second result is false when
// the seed does not fail.
func MinimizeAsmSeed(seed uint64, failing func(src string) bool) (string, bool) {
	plan := genAsmPlan(newRNG(seed))
	if !failing(plan.render()) {
		return plan.render(), false
	}
	still := func() bool { return failing(plan.render()) }
	for changed := true; changed; {
		changed = false
		for _, f := range plan.funcs {
			if minimizeShapes(&f.shapes, still) {
				changed = true
			}
		}
	}
	return plan.render(), true
}

// minimizeShapes deletes shapes (recursing into hammock arms, loop bodies
// and switch cases) while stillFailing() holds.
func minimizeShapes(l *[]ashape, stillFailing func() bool) bool {
	changed := false
	for i := len(*l) - 1; i >= 0; i-- {
		saved := *l
		next := append(append([]ashape{}, saved[:i]...), saved[i+1:]...)
		*l = next
		if stillFailing() {
			changed = true
			continue
		}
		*l = saved
		switch n := saved[i].(type) {
		case *hammockShape:
			if minimizeShapes(&n.then, stillFailing) || minimizeShapes(&n.els, stillFailing) {
				changed = true
			}
		case *loopShape:
			if minimizeShapes(&n.body, stillFailing) {
				changed = true
			}
		case *switchShape:
			for c := range n.cases {
				if minimizeShapes(&n.cases[c], stillFailing) {
					changed = true
				}
			}
		}
	}
	return changed
}
