package progen

import (
	"fmt"
	"math"
	"strings"
)

// Tier 2: random MiniC programs plus a direct AST interpreter. The
// interpreter shares no code with internal/cc — it is the independent
// implementation the compiler is checked against: both sides must agree
// on main's return value, which the generator arranges to be a mix of
// every global (so a wrong store anywhere shows up at the end).
//
// Termination is by construction, exactly as in Tier 3: all loops are
// counter loops over dedicated induction variables the body never
// assigns, and the call graph is acyclic (function i only calls
// functions with a lower index; main is generated last and may call
// anything). `continue` appears only in for-loops, whose post clause
// still runs; `break` may appear in either loop form.

const (
	mcMaxFuncs   = 4
	mcFuncBudget = 6000 // worst-case interpreter steps per function
	mcStepBudget = 2_000_000
)

type mcProg struct {
	arrays  []mcArray
	globals []string
	funcs   []*mcFunc // helpers first, main last
}

type mcArray struct {
	name string
	size int // power of two
}

type mcFunc struct {
	idx    int // position in mcProg.funcs; main has the highest
	name   string
	params []string
	locals []mcLocal
	body   []mcStmt
	ret    mcExpr
	cost   int
	nloops int // loop-variable counter
}

type mcLocal struct {
	name string
	init mcExpr
}

// Statements. scost() is a worst-case interpreter-step estimate.
type mcStmt interface{ scost() int }

type mcAssign struct {
	target string
	arr    *mcArray // non-nil for array-element stores
	index  mcExpr
	rhs    mcExpr
}

func (s *mcAssign) scost() int { return 1 + exprCost(s.rhs) + exprCost(s.index) }

type mcIf struct {
	cond      mcExpr
	then, els []mcStmt
}

func (s *mcIf) scost() int {
	c := 1 + exprCost(s.cond)
	for _, x := range s.then {
		c += x.scost()
	}
	for _, x := range s.els {
		c += x.scost()
	}
	return c
}

type mcLoop struct {
	isFor bool // for-loop (continue allowed) vs while-loop
	v     string
	bound int
	body  []mcStmt
}

func (s *mcLoop) scost() int {
	c := 0
	for _, x := range s.body {
		c += x.scost()
	}
	return 2 + s.bound*(c+3)
}

type mcBreak struct{}

func (s *mcBreak) scost() int { return 1 }

type mcContinue struct{}

func (s *mcContinue) scost() int { return 1 }

type mcReturn struct{ value mcExpr }

func (s *mcReturn) scost() int { return 1 + exprCost(s.value) }

type mcExprStmt struct{ call *mcCall }

func (s *mcExprStmt) scost() int { return exprCost(s.call) }

// Expressions.
type mcExpr interface{}

type mcConst struct{ v int64 }
type mcVar struct{ name string }
type mcArrRead struct {
	arr *mcArray
	idx mcExpr
}
type mcUn struct {
	op string
	x  mcExpr
}
type mcBin struct {
	op   string
	x, y mcExpr
}
type mcCall struct {
	fn   *mcFunc
	args []mcExpr
}

func exprCost(e mcExpr) int {
	switch n := e.(type) {
	case nil:
		return 0
	case *mcConst, *mcVar:
		return 1
	case *mcArrRead:
		return 1 + exprCost(n.idx)
	case *mcUn:
		return 1 + exprCost(n.x)
	case *mcBin:
		return 1 + exprCost(n.x) + exprCost(n.y)
	case *mcCall:
		c := 2 + n.fn.cost
		for _, a := range n.args {
			c += exprCost(a)
		}
		return c
	}
	return 1
}

// ------------------------------------------------------------ generation

// GenMiniC renders the Tier-2 source for seed; byte-identical for
// identical seeds.
func GenMiniC(seed uint64) string { return genMiniCProg(newRNG(seed)).render() }

func genMiniCProg(r *rng) *mcProg {
	p := &mcProg{}
	for i, n := 0, r.rangeInt(1, 2); i < n; i++ {
		p.globals = append(p.globals, fmt.Sprintf("g%d", i))
	}
	for i, n := 0, r.rangeInt(0, 2); i < n; i++ {
		p.arrays = append(p.arrays, mcArray{name: fmt.Sprintf("a%d", i), size: []int{8, 16, 32}[r.intn(3)]})
	}
	nFuncs := r.rangeInt(1, mcMaxFuncs)
	for i := 0; i < nFuncs; i++ {
		f := &mcFunc{idx: i, name: fmt.Sprintf("f%d", i)}
		if i == nFuncs-1 {
			f.name = "main"
		} else {
			for j, np := 0, r.rangeInt(0, 3); j < np; j++ {
				f.params = append(f.params, fmt.Sprintf("p%d", j))
			}
		}
		p.genFunc(r, f)
		p.funcs = append(p.funcs, f)
	}
	return p
}

func (p *mcProg) genFunc(r *rng, f *mcFunc) {
	for i, n := 0, r.rangeInt(1, 3); i < n; i++ {
		name := fmt.Sprintf("x%d", i)
		f.locals = append(f.locals, mcLocal{name: name, init: p.genExpr(r, f, 1, false)})
	}
	budget := mcFuncBudget
	f.body = p.genStmts(r, f, &budget, r.rangeInt(2, 5), 0, false)
	// The return value folds in every global, so a bad store anywhere in
	// the call tree surfaces in main's result.
	ret := p.genExpr(r, f, 1, false)
	for _, g := range p.globals {
		ret = &mcBin{op: "^", x: ret, y: &mcVar{name: g}}
	}
	f.ret = ret
	f.cost = 2
	for _, l := range f.locals {
		f.cost += exprCost(l.init)
	}
	for _, s := range f.body {
		f.cost += s.scost()
	}
	f.cost += exprCost(f.ret)
}

// genStmts generates up to want statements. loopDepth counts enclosing
// generated loops (capped at 2) and gates break; inFor reports whether the
// innermost enclosing loop is a for-loop, the only place continue is safe
// (a while-loop's trailing increment would be skipped).
func (p *mcProg) genStmts(r *rng, f *mcFunc, budget *int, want, loopDepth int, inFor bool) []mcStmt {
	var out []mcStmt
	for i := 0; i < want; i++ {
		s := p.genStmt(r, f, budget, loopDepth, inFor)
		if s == nil {
			break
		}
		out = append(out, s)
	}
	return out
}

func (p *mcProg) genStmt(r *rng, f *mcFunc, budget *int, loopDepth int, inFor bool) mcStmt {
	// Compound statements recurse into their bodies before they are
	// charged, so a near-empty budget must stop the recursion up front.
	if *budget <= 3 {
		if *budget >= 2 {
			s := &mcAssign{target: p.pickAssignable(r, f), rhs: &mcConst{v: int64(r.rangeInt(-8, 8))}}
			*budget -= s.scost()
			return s
		}
		return nil
	}
	charge := func(s mcStmt) mcStmt {
		if c := s.scost(); c <= *budget {
			*budget -= c
			return s
		}
		return nil
	}
	for attempt := 0; attempt < 4; attempt++ {
		switch r.intn(12) {
		case 0, 1, 2, 3: // assignment
			s := &mcAssign{rhs: p.genExpr(r, f, r.rangeInt(1, 3), true)}
			if len(p.arrays) > 0 && r.chance(1, 3) {
				s.arr = &p.arrays[r.intn(len(p.arrays))]
				s.target = s.arr.name
				s.index = p.genExpr(r, f, 1, false)
			} else {
				s.target = p.pickAssignable(r, f)
			}
			if c := charge(s); c != nil {
				return c
			}
		case 4, 5: // if / if-else
			s := &mcIf{cond: p.genExpr(r, f, 2, false)}
			inner := *budget / 2
			s.then = p.genStmts(r, f, &inner, r.rangeInt(1, 3), loopDepth, inFor)
			if r.chance(1, 2) {
				s.els = p.genStmts(r, f, &inner, r.rangeInt(1, 2), loopDepth, inFor)
			}
			if len(s.then) == 0 {
				continue
			}
			if c := charge(s); c != nil {
				return c
			}
		case 6, 7: // counter loop
			if loopDepth >= 2 {
				continue
			}
			s := &mcLoop{isFor: r.chance(1, 2), bound: r.rangeInt(2, 8)}
			s.v = fmt.Sprintf("i%d", f.nloops)
			f.nloops++
			f.locals = append(f.locals, mcLocal{name: s.v, init: &mcConst{v: 0}})
			inner := *budget/(s.bound+1) - 3
			s.body = p.genStmts(r, f, &inner, r.rangeInt(1, 4), loopDepth+1, s.isFor)
			if len(s.body) == 0 {
				continue
			}
			if c := charge(s); c != nil {
				return c
			}
		case 8: // break / continue, only inside a loop
			if loopDepth == 0 {
				continue
			}
			// Wrap in an if so the loop usually still iterates. continue
			// is only safe when the innermost loop is a for-loop: its post
			// clause still runs, whereas a while-loop's trailing increment
			// would be skipped and the loop would never terminate.
			s := &mcIf{cond: p.genExpr(r, f, 1, false)}
			if !inFor || r.chance(1, 2) {
				s.then = []mcStmt{&mcBreak{}}
			} else {
				s.then = []mcStmt{&mcContinue{}}
			}
			if c := charge(s); c != nil {
				return c
			}
		case 9: // early return inside a conditional
			if loopDepth > 0 || r.chance(2, 3) {
				continue
			}
			s := &mcIf{cond: p.genExpr(r, f, 1, false),
				then: []mcStmt{&mcReturn{value: p.genExpr(r, f, 1, false)}}}
			if c := charge(s); c != nil {
				return c
			}
		case 10, 11: // call for effect
			if call := p.genCall(r, f); call != nil {
				if c := charge(&mcExprStmt{call: call}); c != nil {
					return c
				}
			}
		}
	}
	if *budget >= 2 {
		s := &mcAssign{target: p.pickAssignable(r, f), rhs: &mcConst{v: int64(r.rangeInt(-8, 8))}}
		*budget -= s.scost()
		return s
	}
	return nil
}

// pickAssignable returns a global, parameter, or non-induction local.
func (p *mcProg) pickAssignable(r *rng, f *mcFunc) string {
	var pool []string
	pool = append(pool, p.globals...)
	pool = append(pool, f.params...)
	for _, l := range f.locals {
		if !strings.HasPrefix(l.name, "i") {
			pool = append(pool, l.name)
		}
	}
	return pool[r.intn(len(pool))]
}

// pickReadable returns any visible name, induction variables included.
func (p *mcProg) pickReadable(r *rng, f *mcFunc) string {
	var pool []string
	pool = append(pool, p.globals...)
	pool = append(pool, f.params...)
	for _, l := range f.locals {
		pool = append(pool, l.name)
	}
	return pool[r.intn(len(pool))]
}

var mcBinOps = []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
	"<", "<=", ">", ">=", "==", "!=", "&&", "||"}
var mcUnOps = []string{"-", "!", "~"}

func (p *mcProg) genExpr(r *rng, f *mcFunc, depth int, allowCall bool) mcExpr {
	if depth <= 0 || r.chance(1, 4) {
		switch {
		case r.chance(1, 3):
			return &mcConst{v: int64(r.rangeInt(-64, 64))}
		case len(p.arrays) > 0 && r.chance(1, 4):
			return &mcArrRead{arr: &p.arrays[r.intn(len(p.arrays))], idx: p.genExpr(r, f, 0, false)}
		default:
			return &mcVar{name: p.pickReadable(r, f)}
		}
	}
	switch {
	case allowCall && r.chance(1, 6):
		if call := p.genCall(r, f); call != nil {
			return call
		}
		fallthrough
	case r.chance(1, 5):
		return &mcUn{op: mcUnOps[r.intn(len(mcUnOps))], x: p.genExpr(r, f, depth-1, false)}
	default:
		return &mcBin{
			op: mcBinOps[r.intn(len(mcBinOps))],
			x:  p.genExpr(r, f, depth-1, allowCall),
			y:  p.genExpr(r, f, depth-1, false),
		}
	}
}

// genCall builds a call to a lower-indexed helper, or nil when f can call
// nothing (f0 and single-function programs).
func (p *mcProg) genCall(r *rng, f *mcFunc) *mcCall {
	if f.idx == 0 {
		return nil
	}
	callee := p.funcs[r.intn(f.idx)]
	call := &mcCall{fn: callee}
	for range callee.params {
		call.args = append(call.args, p.genExpr(r, f, 1, false))
	}
	return call
}

// ------------------------------------------------------------- rendering

func (p *mcProg) render() string {
	var b strings.Builder
	b.WriteString("// progen tier-2 program\n")
	for _, g := range p.globals {
		fmt.Fprintf(&b, "var %s;\n", g)
	}
	for _, a := range p.arrays {
		fmt.Fprintf(&b, "var %s[%d];\n", a.name, a.size)
	}
	for _, f := range p.funcs {
		fmt.Fprintf(&b, "\nfunc %s(%s) {\n", f.name, strings.Join(f.params, ", "))
		for _, l := range f.locals {
			fmt.Fprintf(&b, "  var %s = %s;\n", l.name, renderExpr(l.init))
		}
		renderStmts(&b, f.body, 1)
		fmt.Fprintf(&b, "  return %s;\n}\n", renderExpr(f.ret))
	}
	return b.String()
}

func renderStmts(b *strings.Builder, ss []mcStmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range ss {
		switch n := s.(type) {
		case *mcAssign:
			if n.arr != nil {
				fmt.Fprintf(b, "%s%s[%s] = %s;\n", ind, n.target, renderIndex(n.arr, n.index), renderExpr(n.rhs))
			} else {
				fmt.Fprintf(b, "%s%s = %s;\n", ind, n.target, renderExpr(n.rhs))
			}
		case *mcIf:
			fmt.Fprintf(b, "%sif (%s) {\n", ind, renderExpr(n.cond))
			renderStmts(b, n.then, depth+1)
			if len(n.els) > 0 {
				fmt.Fprintf(b, "%s} else {\n", ind)
				renderStmts(b, n.els, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", ind)
		case *mcLoop:
			if n.isFor {
				fmt.Fprintf(b, "%sfor (%s = 0; (%s) < %d; %s = (%s) + 1) {\n", ind, n.v, n.v, n.bound, n.v, n.v)
				renderStmts(b, n.body, depth+1)
				fmt.Fprintf(b, "%s}\n", ind)
			} else {
				// Reset the counter like a for-init would: the loop may
				// execute again (e.g. nested in an outer loop).
				fmt.Fprintf(b, "%s%s = 0;\n", ind, n.v)
				fmt.Fprintf(b, "%swhile ((%s) < %d) {\n", ind, n.v, n.bound)
				renderStmts(b, n.body, depth+1)
				fmt.Fprintf(b, "%s  %s = (%s) + 1;\n", ind, n.v, n.v)
				fmt.Fprintf(b, "%s}\n", ind)
			}
		case *mcBreak:
			fmt.Fprintf(b, "%sbreak;\n", ind)
		case *mcContinue:
			fmt.Fprintf(b, "%scontinue;\n", ind)
		case *mcReturn:
			fmt.Fprintf(b, "%sreturn %s;\n", ind, renderExpr(n.value))
		case *mcExprStmt:
			fmt.Fprintf(b, "%s%s;\n", ind, renderExpr(n.call))
		}
	}
}

// renderIndex masks an index expression into the array's bounds.
func renderIndex(a *mcArray, idx mcExpr) string {
	return fmt.Sprintf("(%s) & %d", renderExpr(idx), a.size-1)
}

// renderExpr emits fully parenthesized source, sidestepping any
// precedence questions (the compiler's own tests cover precedence).
func renderExpr(e mcExpr) string {
	switch n := e.(type) {
	case *mcConst:
		if n.v < 0 {
			return fmt.Sprintf("(-%d)", -n.v)
		}
		return fmt.Sprintf("%d", n.v)
	case *mcVar:
		return n.name
	case *mcArrRead:
		return fmt.Sprintf("%s[%s]", n.arr.name, renderIndex(n.arr, n.idx))
	case *mcUn:
		return fmt.Sprintf("(%s(%s))", n.op, renderExpr(n.x))
	case *mcBin:
		return fmt.Sprintf("((%s) %s (%s))", renderExpr(n.x), n.op, renderExpr(n.y))
	case *mcCall:
		args := make([]string, len(n.args))
		for i, a := range n.args {
			args[i] = renderExpr(a)
		}
		return fmt.Sprintf("%s(%s)", n.fn.name, strings.Join(args, ", "))
	}
	return "0"
}

// ---------------------------------------------------------- interpreter

type mcInterp struct {
	prog    *mcProg
	globals map[string]int64
	arrays  map[string][]int64
	steps   int
	err     error
}

type mcFrame struct {
	vars map[string]int64
}

// ctl is the statement-level control outcome.
type ctl int

const (
	ctlNext ctl = iota
	ctlBreak
	ctlContinue
	ctlReturn
)

// interpret runs main under the step budget and returns its value — the
// reference result the compiled program must reproduce.
func (p *mcProg) interpret() (int64, error) {
	in := &mcInterp{prog: p, globals: map[string]int64{}, arrays: map[string][]int64{}}
	for _, g := range p.globals {
		in.globals[g] = 0
	}
	for _, a := range p.arrays {
		in.arrays[a.name] = make([]int64, a.size)
	}
	v := in.callFunc(p.funcs[len(p.funcs)-1], nil)
	return v, in.err
}

func (in *mcInterp) step() bool {
	in.steps++
	if in.steps > mcStepBudget && in.err == nil {
		in.err = fmt.Errorf("interpreter step budget exceeded (non-terminating generation bug)")
	}
	return in.err == nil
}

func (in *mcInterp) callFunc(f *mcFunc, args []int64) int64 {
	fr := &mcFrame{vars: map[string]int64{}}
	for i, prm := range f.params {
		if i < len(args) {
			fr.vars[prm] = args[i]
		}
	}
	for _, l := range f.locals {
		fr.vars[l.name] = in.eval(l.init, fr)
	}
	if c, v := in.execStmts(f.body, fr); c == ctlReturn {
		return v
	}
	return in.eval(f.ret, fr)
}

func (in *mcInterp) execStmts(ss []mcStmt, fr *mcFrame) (ctl, int64) {
	for _, s := range ss {
		if !in.step() {
			return ctlReturn, 0
		}
		switch n := s.(type) {
		case *mcAssign:
			v := in.eval(n.rhs, fr)
			if n.arr != nil {
				idx := in.eval(n.index, fr) & int64(n.arr.size-1)
				in.arrays[n.arr.name][idx] = v
			} else {
				in.assign(n.target, v, fr)
			}
		case *mcIf:
			if in.eval(n.cond, fr) != 0 {
				if c, v := in.execStmts(n.then, fr); c != ctlNext {
					return c, v
				}
			} else if c, v := in.execStmts(n.els, fr); c != ctlNext {
				return c, v
			}
		case *mcLoop:
			fr.vars[n.v] = 0
			for fr.vars[n.v] < int64(n.bound) {
				if !in.step() {
					return ctlReturn, 0
				}
				c, v := in.execStmts(n.body, fr)
				if c == ctlReturn {
					return c, v
				}
				if c == ctlBreak {
					break
				}
				// ctlContinue reaches the increment: generated while-loops
				// never contain continue (only for-loops do, and a for
				// post clause runs on continue).
				fr.vars[n.v]++
			}
		case *mcBreak:
			return ctlBreak, 0
		case *mcContinue:
			return ctlContinue, 0
		case *mcReturn:
			return ctlReturn, in.eval(n.value, fr)
		case *mcExprStmt:
			in.eval(n.call, fr)
		}
	}
	return ctlNext, 0
}

func (in *mcInterp) assign(name string, v int64, fr *mcFrame) {
	if _, ok := fr.vars[name]; ok {
		fr.vars[name] = v
		return
	}
	in.globals[name] = v
}

func (in *mcInterp) lookup(name string, fr *mcFrame) int64 {
	if v, ok := fr.vars[name]; ok {
		return v
	}
	return in.globals[name]
}

// eval mirrors the ISA semantics the compiler targets: 64-bit wraparound,
// x/0 = x%0 = 0, MinInt64/-1 wraps (see emu), shift counts masked to 6
// bits, >> arithmetic, comparisons and logical operators yielding 0/1.
func (in *mcInterp) eval(e mcExpr, fr *mcFrame) int64 {
	if !in.step() {
		return 0
	}
	switch n := e.(type) {
	case nil:
		return 0
	case *mcConst:
		return n.v
	case *mcVar:
		return in.lookup(n.name, fr)
	case *mcArrRead:
		idx := in.eval(n.idx, fr) & int64(n.arr.size-1)
		return in.arrays[n.arr.name][idx]
	case *mcUn:
		x := in.eval(n.x, fr)
		switch n.op {
		case "-":
			return -x
		case "!":
			return b2i64(x == 0)
		case "~":
			return ^x
		}
	case *mcBin:
		x := in.eval(n.x, fr)
		// Short-circuit forms must not evaluate the right side's calls.
		switch n.op {
		case "&&":
			if x == 0 {
				return 0
			}
			return b2i64(in.eval(n.y, fr) != 0)
		case "||":
			if x != 0 {
				return 1
			}
			return b2i64(in.eval(n.y, fr) != 0)
		}
		y := in.eval(n.y, fr)
		switch n.op {
		case "+":
			return x + y
		case "-":
			return x - y
		case "*":
			return x * y
		case "/":
			return divISA(x, y)
		case "%":
			return remISA(x, y)
		case "&":
			return x & y
		case "|":
			return x | y
		case "^":
			return x ^ y
		case "<<":
			return x << (uint64(y) & 63)
		case ">>":
			return x >> (uint64(y) & 63)
		case "<":
			return b2i64(x < y)
		case "<=":
			return b2i64(x <= y)
		case ">":
			return b2i64(x > y)
		case ">=":
			return b2i64(x >= y)
		case "==":
			return b2i64(x == y)
		case "!=":
			return b2i64(x != y)
		}
	case *mcCall:
		args := make([]int64, len(n.args))
		for i, a := range n.args {
			args[i] = in.eval(a, fr)
		}
		return in.callFunc(n.fn, args)
	}
	return 0
}

// divISA and remISA are the ISA's total division: x/0 = x%0 = 0, and the
// MinInt64/-1 overflow case wraps instead of trapping (matching emu and
// cc's constant folder).
func divISA(x, y int64) int64 {
	switch {
	case y == 0:
		return 0
	case x == math.MinInt64 && y == -1:
		return x
	}
	return x / y
}

func remISA(x, y int64) int64 {
	switch {
	case y == 0:
		return 0
	case x == math.MinInt64 && y == -1:
		return 0
	}
	return x % y
}

func b2i64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
