package progen

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
)

// TestGeneratorsDeterministic: identical seeds must produce byte-identical
// output — the property cmd/progen's reproduction promise rests on.
func TestGeneratorsDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		if a, b := GenCFG(seed).Dump(), GenCFG(seed).Dump(); a != b {
			t.Fatalf("GenCFG(%d) nondeterministic", seed)
		}
		if a, b := GenAsm(seed), GenAsm(seed); a != b {
			t.Fatalf("GenAsm(%d) nondeterministic", seed)
		}
		if a, b := GenMiniC(seed), GenMiniC(seed); a != b {
			t.Fatalf("GenMiniC(%d) nondeterministic", seed)
		}
	}
}

// TestGeneratorsVary: distinct seeds should essentially never collide.
func TestGeneratorsVary(t *testing.T) {
	cfgs := map[string]bool{}
	srcs := map[string]bool{}
	for seed := uint64(0); seed < 100; seed++ {
		cfgs[GenCFG(seed).Dump()] = true
		srcs[GenAsm(seed)] = true
	}
	// Small structured graphs collide occasionally; programs should not.
	if len(cfgs) < 70 || len(srcs) < 95 {
		t.Fatalf("suspiciously many collisions: %d distinct CFGs, %d distinct asm programs of 100",
			len(cfgs), len(srcs))
	}
}

// TestCFGShapes: every requested shape is respected and structured graphs
// keep the exit successor-free.
func TestCFGShapes(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		for _, sh := range []Shape{ShapeStructured, ShapeNoisy, ShapeRandom} {
			c := GenCFGShaped(seed, sh, 12)
			if c.Shape != sh {
				t.Fatalf("seed %d: wanted shape %v, got %v", seed, sh, c.Shape)
			}
			if c.NumNodes() < 2 {
				t.Fatalf("seed %d shape %v: only %d nodes", seed, sh, c.NumNodes())
			}
			if sh != ShapeRandom && len(c.Succs[c.Exit]) != 0 {
				t.Fatalf("seed %d shape %v: exit has successors %v", seed, sh, c.Succs[c.Exit])
			}
		}
	}
}

// TestAsmTerminates: every generated Tier-3 program must assemble and
// halt within the worst-case budget the generator accounts for.
func TestAsmTerminates(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		src := GenAsm(seed)
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d does not assemble: %v\n%s", seed, err, src)
		}
		tr, err := emu.Run(p, emu.Config{MaxInstrs: asmMaxInstrs})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if tr.Len() == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
	}
}

// TestInterpreterMatchesKnownPrograms pins the interpreter's semantic
// corners (the ones that differ from plain Go) through tiny hand ASTs.
func TestInterpreterMatchesKnownPrograms(t *testing.T) {
	const minInt64 = -9223372036854775808
	cases := []struct {
		name string
		e    mcExpr
		want int64
	}{
		{"div0", &mcBin{op: "/", x: &mcConst{v: 7}, y: &mcConst{v: 0}}, 0},
		{"rem0", &mcBin{op: "%", x: &mcConst{v: 7}, y: &mcConst{v: 0}}, 0},
		{"divOverflow", &mcBin{op: "/", x: &mcConst{v: minInt64}, y: &mcConst{v: -1}}, minInt64},
		{"remOverflow", &mcBin{op: "%", x: &mcConst{v: minInt64}, y: &mcConst{v: -1}}, 0},
		{"shiftMask", &mcBin{op: "<<", x: &mcConst{v: 1}, y: &mcConst{v: 65}}, 2},
		{"sraNeg", &mcBin{op: ">>", x: &mcConst{v: -16}, y: &mcConst{v: 2}}, -4},
		{"cmp", &mcBin{op: "<=", x: &mcConst{v: 4}, y: &mcConst{v: 4}}, 1},
		{"andShort", &mcBin{op: "&&", x: &mcConst{v: 0}, y: &mcConst{v: 9}}, 0},
		{"orTruthy", &mcBin{op: "||", x: &mcConst{v: 5}, y: &mcConst{v: 0}}, 1},
		{"notZero", &mcUn{op: "!", x: &mcConst{v: 0}}, 1},
	}
	for _, c := range cases {
		prog := &mcProg{}
		f := &mcFunc{name: "main", ret: c.e}
		prog.funcs = []*mcFunc{f}
		got, err := prog.interpret()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: interpreter says %d, want %d", c.name, got, c.want)
		}
	}
}

// TestFailureMessageCarriesSeed: every oracle wrapper must embed the seed
// and the reproduction command.
func TestFailureMessageCarriesSeed(t *testing.T) {
	err := fail("cfg", 12345, errors.New("boom"))
	if err == nil {
		t.Fatal("fail() swallowed the error")
	}
	msg := err.Error()
	for _, want := range []string{"seed=12345", "tier=cfg", "go run ./cmd/progen -tier cfg -seed 12345"} {
		if !strings.Contains(msg, want) {
			t.Errorf("failure message %q missing %q", msg, want)
		}
	}
	var f *Failure
	if !errors.As(err, &f) || f.Seed != 12345 {
		t.Errorf("failure does not unwrap to its seed: %v", err)
	}
}

// TestMinimizeCFGShrinks: the minimizer must reduce an artificial failure
// ("graph contains the edge 2→5") to its essence.
func TestMinimizeCFGShrinks(t *testing.T) {
	c := GenCFGShaped(7, ShapeRandom, 16)
	hasEdge := func(g *CFG) bool {
		if len(g.Succs) <= 5 {
			return false
		}
		for _, w := range g.Succs[2] {
			if w == 5 {
				return true
			}
		}
		return false
	}
	if !hasEdge(c) {
		c.Succs[2] = append(c.Succs[2], 5)
	}
	m := MinimizeCFG(c, hasEdge)
	if !hasEdge(m) {
		t.Fatal("minimized graph no longer fails")
	}
	if m.NumNodes() > 7 {
		t.Errorf("minimizer left %d nodes (want <= 7):\n%s", m.NumNodes(), m.Dump())
	}
}
