package progen

import (
	"bytes"
	"fmt"
	"reflect"

	"repro/internal/asm"
	"repro/internal/attrib"
	"repro/internal/cc"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/sysos"
	"repro/internal/trace"
)

// asmMaxInstrs caps generated-program emulation well above the generator's
// worst-case dynamic cost (asmMaxFuncs * asmFuncBudget), so hitting it
// means the termination guarantee itself is broken.
const asmMaxInstrs = 400_000

// CheckAsmSeed generates the Tier-3 assembly program for seed and drives
// it through the whole stack: assemble, emulate to halt, architectural
// replay (emu.Check), static analysis, and the graph oracles over every
// compiled function CFG.
func CheckAsmSeed(seed uint64) error {
	return fail("isa", seed, checkCompiled(GenAsm(seed), fmt.Sprintf("progen tier=isa seed=%d", seed)))
}

// CheckAsmSource runs the same battery over an arbitrary assembly source —
// the entry point cmd/progen's minimizer probes candidate reductions with.
func CheckAsmSource(src string) error { return checkCompiled(src, "standalone") }

// CheckMachineSource runs the scheduler differential over an arbitrary
// assembly source.
func CheckMachineSource(src string) error { return checkMachine(src) }

// CheckMiniCSeed generates the Tier-2 MiniC program for seed, predicts
// main's return value with the independent AST interpreter, compiles the
// source through internal/cc, and requires the emulated $v0 to match —
// then reuses the compiled image for the full Tier-3 oracle battery.
func CheckMiniCSeed(seed uint64) error {
	return fail("minic", seed, checkMiniC(seed))
}

func checkMiniC(seed uint64) error {
	prog := genMiniCProg(newRNG(seed))
	want, err := prog.interpret()
	if err != nil {
		return fmt.Errorf("reference interpreter: %w", err)
	}
	p, err := checkMiniCValue(prog.render(), want)
	if err != nil {
		return err
	}
	// The compiled image is a normal ISA program — run the rest of the
	// stack's oracles over it too.
	return checkProgram(p, fmt.Sprintf("progen tier=minic seed=%d", seed))
}

// checkMiniCValue compiles one MiniC source and requires the emulated
// main() return value to equal the interpreter's prediction, returning
// the compiled image for further oracles.
func checkMiniCValue(src string, want int64) (*isa.Program, error) {
	p, err := cc.CompileAndAssemble(src)
	if err != nil {
		return nil, fmt.Errorf("compiling generated MiniC: %w", err)
	}
	m := emu.New(p, 0)
	for !m.Halted && m.Count < asmMaxInstrs {
		if err := m.Step(nil); err != nil {
			return nil, fmt.Errorf("emulating compiled MiniC: %w", err)
		}
	}
	if !m.Halted {
		return nil, fmt.Errorf("compiled MiniC did not halt within %d instructions", asmMaxInstrs)
	}
	if got := m.Regs[isa.V0]; got != want {
		return nil, fmt.Errorf("compiler vs interpreter: main() returned %d, interpreter says %d", got, want)
	}
	return p, nil
}

// checkCompiled assembles one generated source and runs the
// emulate→check→analyze oracle battery over the image.
func checkCompiled(src, label string) error {
	p, err := asm.Assemble(src)
	if err != nil {
		return fmt.Errorf("assembling generated program: %w", err)
	}
	return checkProgram(p, label)
}

// checkProgram emulates a program to halt, replays the trace through the
// architectural checker, runs the static analysis, and cross-checks the
// dominator implementations and loop-forest invariants on every compiled
// function CFG.
func checkProgram(p *isa.Program, label string) error {
	tr, err := emu.Run(p, emu.Config{MaxInstrs: asmMaxInstrs})
	if err != nil {
		return fmt.Errorf("emulating: %w", err)
	}
	if err := emu.CheckLabeled(p, tr, label); err != nil {
		return err
	}
	// The object-image loader is part of the trusted path for the kernels
	// workload family, so every generated program also rides through it:
	// the loaded copy must replay the recorded trace, and re-encoding it
	// must reproduce the image byte-for-byte (the codec's canonical-form
	// guarantee).
	img, err := sysos.EncodeImage(p)
	if err != nil {
		return fmt.Errorf("encoding image: %w", err)
	}
	lp, err := sysos.LoadImage(img)
	if err != nil {
		return fmt.Errorf("loading image: %w", err)
	}
	if err := emu.CheckLabeled(lp, tr, label+" (loaded image)"); err != nil {
		return fmt.Errorf("loaded-image replay: %w", err)
	}
	if img2, err := sysos.EncodeImage(lp); err != nil || !bytes.Equal(img, img2) {
		return fmt.Errorf("image round trip is not byte-identical (err %v)", err)
	}
	if _, err := core.Analyze(p, tr.IndirectTargets()); err != nil {
		return fmt.Errorf("analyzing: %w", err)
	}
	graphs, err := cfg.BuildAll(p, tr.IndirectTargets())
	if err != nil {
		return fmt.Errorf("building CFGs: %w", err)
	}
	for _, g := range graphs {
		c := &CFG{Succs: g.SuccLists(), Entry: g.Entry(), Exit: g.Exit()}
		if err := CheckCFG(c); err != nil {
			return fmt.Errorf("func 0x%x: %w", g.FuncEntry, err)
		}
	}
	return nil
}

// CheckMachineSeed generates the Tier-3 program for seed and runs the
// trace through both scheduler implementations (event-driven and polled)
// under every stress configuration, requiring bit-identical Results; the
// superscalar baseline must additionally retire the whole trace.
func CheckMachineSeed(seed uint64) error {
	return fail("machine", seed, checkMachine(GenAsm(seed)))
}

func checkMachine(src string) error {
	p, err := asm.Assemble(src)
	if err != nil {
		return fmt.Errorf("assembling generated program: %w", err)
	}
	tr, err := emu.Run(p, emu.Config{MaxInstrs: asmMaxInstrs})
	if err != nil {
		return fmt.Errorf("emulating: %w", err)
	}
	an, err := core.Analyze(p, tr.IndirectTargets())
	if err != nil {
		return fmt.Errorf("analyzing: %w", err)
	}

	ss := machine.SuperscalarConfig()
	base, err := machine.Run(tr, nil, nil, ss)
	if err != nil {
		return fmt.Errorf("superscalar run: %w", err)
	}
	if base.Retired != int64(tr.Len()) {
		return fmt.Errorf("superscalar retired %d of %d trace entries", base.Retired, tr.Len())
	}

	for name, cfg := range machineStressConfigs() {
		if err := checkSchedPair(tr, an, name, cfg); err != nil {
			return err
		}
	}
	return nil
}

// CheckAttributionSeed generates the Tier-3 program for seed and checks
// that per-spawn-site attribution reconciles exactly with the machine-wide
// counters on a plain PolyFlow run and again with a warmup prefix — the
// one path checkSchedPair always zeroes out.
func CheckAttributionSeed(seed uint64) error {
	return fail("attrib", seed, checkAttribution(GenAsm(seed)))
}

func checkAttribution(src string) error {
	p, err := asm.Assemble(src)
	if err != nil {
		return fmt.Errorf("assembling generated program: %w", err)
	}
	tr, err := emu.Run(p, emu.Config{MaxInstrs: asmMaxInstrs})
	if err != nil {
		return fmt.Errorf("emulating: %w", err)
	}
	an, err := core.Analyze(p, tr.IndirectTargets())
	if err != nil {
		return fmt.Errorf("analyzing: %w", err)
	}
	for _, warmup := range []int{0, tr.Len() / 4} {
		cfg := machine.PolyFlowConfig()
		cfg.WarmupInstrs = warmup
		cfg.Attribution = attrib.NewTable()
		res, err := machine.Run(tr, nil, core.PolicyPostdoms.Source(an), cfg)
		if err != nil {
			return fmt.Errorf("warmup=%d run: %w", warmup, err)
		}
		if err := machine.VerifyAttribution(cfg.Attribution, res); err != nil {
			return fmt.Errorf("warmup=%d: %w", warmup, err)
		}
	}
	return nil
}

// machineStressConfigs mirrors the hand-written differential test's
// configurations: a tiny scheduler, ROB reclaim, a small hint cache, and a
// short divert queue each exercise a different structural difference
// between the two scheduler implementations.
func machineStressConfigs() map[string]machine.Config {
	tiny := machine.PolyFlowConfig()
	tiny.SchedSize = 12
	tiny.SchedReserve = 4
	tiny.NumFUs = 3

	reclaim := machine.PolyFlowConfig()
	reclaim.ReclaimROB = true
	reclaim.ROBSize = 96
	reclaim.ROBReserve = 16

	divert := machine.PolyFlowConfig()
	divert.DivertQSize = 8

	return map[string]machine.Config{
		"polyflow":   machine.PolyFlowConfig(),
		"tiny-sched": tiny,
		"reclaim":    reclaim,
		"divert-8":   divert,
	}
}

func checkSchedPair(tr *trace.Trace, an *core.Analysis, name string, cfg machine.Config) error {
	cfg.WarmupInstrs = 0
	src := core.PolicyPostdoms.Source(an)
	cfg.Attribution = attrib.NewTable()
	event, err := machine.Run(tr, nil, src, cfg)
	if err != nil {
		return fmt.Errorf("%s event-driven run: %w", name, err)
	}
	if err := machine.VerifyAttribution(cfg.Attribution, event); err != nil {
		return fmt.Errorf("%s event-driven run: %w", name, err)
	}
	evRep := attrib.NewReport(cfg.Attribution, "progen", "postdoms", name, event.Cycles, event.Retired)

	cfg.PolledScheduler = true
	cfg.Attribution = attrib.NewTable()
	polled, err := machine.Run(tr, nil, core.PolicyPostdoms.Source(an), cfg)
	if err != nil {
		return fmt.Errorf("%s polled run: %w", name, err)
	}
	if err := machine.VerifyAttribution(cfg.Attribution, polled); err != nil {
		return fmt.Errorf("%s polled run: %w", name, err)
	}
	poRep := attrib.NewReport(cfg.Attribution, "progen", "postdoms", name, polled.Cycles, polled.Retired)

	if !reflect.DeepEqual(event, polled) {
		return fmt.Errorf("%s: schedulers diverge:\nevent:  %+v\npolled: %+v", name, event, polled)
	}
	if !reflect.DeepEqual(evRep, poRep) {
		return fmt.Errorf("%s: schedulers attribute differently:\nevent:  %+v\npolled: %+v", name, evRep, poRep)
	}
	if event.Retired != int64(tr.Len()) {
		return fmt.Errorf("%s: retired %d of %d trace entries", name, event.Retired, tr.Len())
	}
	return nil
}
