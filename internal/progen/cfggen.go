package progen

import (
	"fmt"
	"strings"
)

// Shape selects how a Tier-1 CFG is generated.
type Shape int

// CFG generation shapes.
const (
	// ShapeStructured builds the graph from nested single-entry
	// single-exit constructs (sequence, if-then, if-else, multiway
	// switch, while, do-while) — reducible by construction.
	ShapeStructured Shape = iota
	// ShapeNoisy starts structured and then adds random cross edges,
	// which may jump into loop bodies and make the graph irreducible.
	ShapeNoisy
	// ShapeRandom wires every node to arbitrary targets: unreachable
	// nodes, nodes that cannot reach the exit, multi-entry loops and
	// self-loops all occur.
	ShapeRandom
	numShapes
)

// String names the shape.
func (s Shape) String() string {
	switch s {
	case ShapeStructured:
		return "structured"
	case ShapeNoisy:
		return "noisy"
	case ShapeRandom:
		return "random"
	}
	return fmt.Sprintf("shape(%d)", int(s))
}

// CFG is one generated Tier-1 graph.
type CFG struct {
	Succs [][]int
	Entry int
	Exit  int // exit has no successors except under ShapeRandom
	Shape Shape
}

// NumNodes returns the node count.
func (c *CFG) NumNodes() int { return len(c.Succs) }

// Dump renders the graph as a deterministic adjacency listing, the
// standalone form cmd/progen prints for reproduction and minimization.
func (c *CFG) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cfg %s: %d nodes, entry=%d exit=%d\n", c.Shape, len(c.Succs), c.Entry, c.Exit)
	for v, ss := range c.Succs {
		fmt.Fprintf(&b, "  %d -> %v\n", v, ss)
	}
	return b.String()
}

// GenCFG generates a graph for the seed, picking the shape and size from
// the seed itself.
func GenCFG(seed uint64) *CFG {
	r := newRNG(seed)
	shape := Shape(r.intn(int(numShapes)))
	return genCFG(r, shape, 4+r.intn(14))
}

// GenCFGShaped generates a graph of the given shape with at most maxNodes
// nodes (minimum 4). Like GenCFG it is a pure function of its arguments.
func GenCFGShaped(seed uint64, shape Shape, maxNodes int) *CFG {
	if maxNodes < 4 {
		maxNodes = 4
	}
	return genCFG(newRNG(seed), shape, maxNodes)
}

func genCFG(r *rng, shape Shape, maxNodes int) *CFG {
	if shape == ShapeRandom {
		return genRandomCFG(r, maxNodes)
	}
	b := &cfgBuilder{r: r, budget: maxNodes - 2}
	entry := b.newNode()
	exit := b.newNode()
	b.region(entry, exit, 0)
	c := &CFG{Succs: b.succs, Entry: entry, Exit: exit, Shape: shape}
	if shape == ShapeNoisy {
		n := len(c.Succs)
		for extra := r.rangeInt(1, 3); extra > 0; extra-- {
			from := r.intn(n)
			if from == exit {
				continue
			}
			b.edge(from, r.intn(n))
		}
	}
	return c
}

// cfgBuilder grows a structured graph recursively. region(a, b) assigns
// node a its successors and wires control from a to b through fresh
// interior nodes; b's own successors are assigned by b's enclosing region,
// so the designated exit never gets any.
type cfgBuilder struct {
	succs  [][]int
	r      *rng
	budget int
}

func (b *cfgBuilder) newNode() int {
	b.succs = append(b.succs, nil)
	return len(b.succs) - 1
}

func (b *cfgBuilder) edge(from, to int) {
	for _, s := range b.succs[from] {
		if s == to {
			return
		}
	}
	b.succs[from] = append(b.succs[from], to)
}

// take consumes n nodes from the budget, reporting whether they were
// available.
func (b *cfgBuilder) take(n int) bool {
	if b.budget < n {
		return false
	}
	b.budget -= n
	return true
}

func (b *cfgBuilder) region(from, to, depth int) {
	if depth > 6 {
		b.edge(from, to)
		return
	}
	switch b.r.intn(7) {
	case 0: // straight edge
		b.edge(from, to)
	case 1: // chain: from -> c -> to
		if !b.take(1) {
			b.edge(from, to)
			return
		}
		c := b.newNode()
		b.edge(from, c)
		b.region(c, to, depth+1)
	case 2: // if-then: from branches to a then-region or straight to to
		if !b.take(1) {
			b.edge(from, to)
			return
		}
		t := b.newNode()
		b.edge(from, t)
		b.edge(from, to)
		b.region(t, to, depth+1)
	case 3: // if-else with an explicit join node
		if !b.take(3) {
			b.edge(from, to)
			return
		}
		t, e, j := b.newNode(), b.newNode(), b.newNode()
		b.edge(from, t)
		b.edge(from, e)
		b.region(t, j, depth+1)
		b.region(e, j, depth+1)
		b.region(j, to, depth+1)
	case 4: // multiway switch joining at j
		arms := b.r.rangeInt(2, 3)
		if !b.take(arms + 1) {
			b.edge(from, to)
			return
		}
		j := b.newNode()
		for i := 0; i < arms; i++ {
			t := b.newNode()
			b.edge(from, t)
			b.region(t, j, depth+1)
		}
		b.region(j, to, depth+1)
	case 5: // while loop: header tests, body regions back to header
		if !b.take(2) {
			b.edge(from, to)
			return
		}
		h, body := b.newNode(), b.newNode()
		b.edge(from, h)
		b.edge(h, body)
		b.edge(h, to)
		b.region(body, h, depth+1)
	case 6: // do-while: body runs once, latch branches back or exits
		if !b.take(2) {
			b.edge(from, to)
			return
		}
		body, latch := b.newNode(), b.newNode()
		b.edge(from, body)
		b.region(body, latch, depth+1)
		b.edge(latch, body)
		b.edge(latch, to)
	}
}

// genRandomCFG wires nodes arbitrarily: entry 0, exit n-1, every non-exit
// node gets 1-3 successors anywhere in the graph.
func genRandomCFG(r *rng, maxNodes int) *CFG {
	n := r.rangeInt(3, maxNodes)
	succs := make([][]int, n)
	exit := n - 1
	for v := 0; v < n; v++ {
		if v == exit {
			continue
		}
		deg := r.rangeInt(1, 3)
		for d := 0; d < deg; d++ {
			// Bias toward forward edges so most graphs have long paths,
			// while still producing back and cross edges.
			var w int
			if r.chance(2, 3) && v+1 < n {
				w = v + 1 + r.intn(n-v-1)
			} else {
				w = r.intn(n)
			}
			add := true
			for _, s := range succs[v] {
				if s == w {
					add = false
					break
				}
			}
			if add {
				succs[v] = append(succs[v], w)
			}
		}
	}
	return &CFG{Succs: succs, Entry: 0, Exit: exit, Shape: ShapeRandom}
}
