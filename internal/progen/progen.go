// Package progen is the repository's generative verification subsystem: a
// seeded, deterministic random-program generator with three tiers, plus an
// oracle layer that cross-checks every independent implementation pair in
// the tree.
//
// The three tiers:
//
//   - Tier 1 (GenCFG): arbitrary control flow graphs — structured
//     (reducible by construction), structured-with-noise-edges, and fully
//     random (typically irreducible) — for the graph analyses.
//   - Tier 2 (GenMiniC): random MiniC sources fed through the
//     internal/cc → internal/asm → internal/isa stack, with a built-in
//     reference interpreter that predicts main's return value
//     independently of the compiler.
//   - Tier 3 (GenAsm): random ISA assembly programs with
//     guaranteed-terminating loops, acyclic call graphs, and annotated
//     jump tables, for the emulator and the timing models.
//
// The oracle matrix (see docs/TESTING.md):
//
//	dominators:  dom.Compute (CHK iterative)  vs  dom.ComputeLT (Lengauer-Tarjan)
//	             vs dom.NaiveDominators (set dataflow), on forward and
//	             reversed graphs
//	CDG:         cdg.Build (FOW over the pdom tree)  vs  a brute-force
//	             path-enumeration reference that never looks at a tree
//	loops:       loops.Find invariants on reducible AND irreducible graphs
//	emulator:    emu.Check architectural replay of every generated trace
//	compiler:    cc codegen+fold  vs  progen's direct AST interpreter
//	scheduler:   event-driven vs polled machine, bit-identical Results
//
// Everything is a pure function of the seed: the same seed always
// regenerates the same bytes (the generator uses its own splitmix64
// stream, not math/rand, so results are stable across Go releases).
// Every oracle failure carries the seed and a one-command reproduction
// via cmd/progen, which can also minimize the failing case.
package progen

import "fmt"

// rng is a splitmix64 generator. It is deliberately self-contained so
// generated programs are byte-identical across Go versions — corpus
// entries and failure seeds stay reproducible forever.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n). n must be positive.
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// rangeInt returns a uniform int in [lo, hi] inclusive.
func (r *rng) rangeInt(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// chance reports true with probability num/den.
func (r *rng) chance(num, den int) bool { return r.intn(den) < num }

// Failure is an oracle divergence annotated with everything needed to
// reproduce it: the tier, the generator seed, and the underlying error.
type Failure struct {
	Tier string // "cfg", "minic", "isa", "machine"
	Seed uint64
	Err  error
}

// Error formats the failure with its one-command reproduction.
func (f *Failure) Error() string {
	return fmt.Sprintf("progen: tier=%s seed=%d: %v (reproduce: go run ./cmd/progen -tier %s -seed %d)",
		f.Tier, f.Seed, f.Err, f.Tier, f.Seed)
}

// Unwrap exposes the underlying oracle error.
func (f *Failure) Unwrap() error { return f.Err }

// fail wraps err (when non-nil) as a Failure for the given tier and seed.
func fail(tier string, seed uint64, err error) error {
	if err == nil {
		return nil
	}
	return &Failure{Tier: tier, Seed: seed, Err: err}
}
