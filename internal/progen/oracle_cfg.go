package progen

import (
	"fmt"

	"repro/internal/cdg"
	"repro/internal/dom"
	"repro/internal/loops"
)

// naiveCrossCheckLimit caps the node count for the O(n³)-ish brute-force
// references; larger graphs still get the fast-vs-fast cross-checks.
const naiveCrossCheckLimit = 40

// CheckDominators cross-checks the iterative (Cooper-Harvey-Kennedy) and
// Lengauer-Tarjan dominator implementations against each other and, for
// small graphs, against the naive set-dataflow reference — on both the
// forward graph (dominators) and the reversed graph rooted at the exit
// (postdominators, the relation the paper is built on).
func CheckDominators(c *CFG) error {
	if err := checkDomPair(c.Succs, c.Entry, "dom"); err != nil {
		return err
	}
	return checkDomPair(dom.Reverse(c.Succs), c.Exit, "pdom")
}

func checkDomPair(succs [][]int, root int, what string) error {
	it := dom.Compute(succs, root)
	lt := dom.ComputeLT(succs, root)
	for v := range succs {
		if it.IDom[v] != lt.IDom[v] {
			return fmt.Errorf("%s: IDom[%d] diverges: iterative=%d lengauer-tarjan=%d",
				what, v, it.IDom[v], lt.IDom[v])
		}
		if it.Depth[v] != lt.Depth[v] {
			return fmt.Errorf("%s: Depth[%d] diverges: iterative=%d lengauer-tarjan=%d",
				what, v, it.Depth[v], lt.Depth[v])
		}
	}
	if len(succs) > naiveCrossCheckLimit {
		return nil
	}
	naive := dom.NaiveDominators(succs, root)
	for v := range succs {
		for u := range succs {
			want := naive[v][u]
			if got := it.Dominates(u, v); got != want {
				return fmt.Errorf("%s: Dominates(%d,%d)=%v, naive dataflow says %v",
					what, u, v, got, want)
			}
		}
	}
	return nil
}

// CheckCDG cross-checks the Ferrante-Ottenstein-Warren CDG construction
// (which walks the postdominator tree) against a brute-force
// path-enumeration reference that never builds a tree: X postdominates B
// iff removing X disconnects B from the exit, checked by explicit DFS.
func CheckCDG(c *CFG) error {
	if len(c.Succs) > naiveCrossCheckLimit {
		return nil
	}
	pdom := dom.Compute(dom.Reverse(c.Succs), c.Exit)
	g := cdg.Build(c.Succs, pdom)

	ref := refControlDeps(c.Succs, c.Exit)
	got := map[[2]int]bool{}
	for a, xs := range g.Controls {
		seen := map[int]bool{}
		for _, x := range xs {
			if seen[x] {
				return fmt.Errorf("cdg: Controls[%d] lists %d twice", a, x)
			}
			seen[x] = true
			got[[2]int{a, x}] = true
		}
	}
	for k := range ref {
		if !got[k] {
			return fmt.Errorf("cdg: missing control dependence: %d controls %d (path enumeration finds it)", k[0], k[1])
		}
	}
	for k := range got {
		if !ref[k] {
			return fmt.Errorf("cdg: spurious control dependence: %d controls %d (path enumeration refutes it)", k[0], k[1])
		}
	}
	// DependsOn must be the exact transpose of Controls.
	back := map[[2]int]bool{}
	for x, as := range g.DependsOn {
		for _, a := range as {
			back[[2]int{a, x}] = true
		}
	}
	for k := range got {
		if !back[k] {
			return fmt.Errorf("cdg: edge %v in Controls but not DependsOn", k)
		}
	}
	for k := range back {
		if !got[k] {
			return fmt.Errorf("cdg: edge %v in DependsOn but not Controls", k)
		}
	}
	return nil
}

// refControlDeps enumerates control dependences from first principles:
// for every CFG edge A→B and node X, X is control dependent on A via B
// when every path from B to the exit passes through X, but some path from
// A avoids X (i.e. X does not strictly postdominate A).
func refControlDeps(succs [][]int, exit int) map[[2]int]bool {
	n := len(succs)
	reachesExit := make([]bool, n)
	for v := 0; v < n; v++ {
		reachesExit[v] = reachesAvoiding(succs, v, exit, -1)
	}
	// postdominates(x, v): v reaches exit only through x.
	postdominates := func(x, v int) bool {
		if v == x {
			return true
		}
		return !reachesAvoiding(succs, v, exit, x)
	}
	out := map[[2]int]bool{}
	for a := 0; a < n; a++ {
		if !reachesExit[a] {
			continue
		}
		for _, b := range succs[a] {
			if !reachesExit[b] {
				continue
			}
			for x := 0; x < n; x++ {
				if !reachesExit[x] {
					continue
				}
				if postdominates(x, b) && !(x != a && postdominates(x, a)) {
					out[[2]int{a, x}] = true
				}
			}
		}
	}
	return out
}

// reachesAvoiding reports whether `to` is reachable from `from` without
// visiting `avoid` (pass avoid=-1 for plain reachability). from==avoid
// means no path exists; from==to (≠avoid) is trivially reachable.
func reachesAvoiding(succs [][]int, from, to, avoid int) bool {
	if from == avoid || to == avoid {
		return false
	}
	if from == to {
		return true
	}
	seen := make([]bool, len(succs))
	seen[from] = true
	stack := []int{from}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range succs[v] {
			if w == to {
				return true
			}
			if w != avoid && !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// VerifyLoops checks the structural invariants of loops.Find on the graph
// rooted at root. It holds on irreducible graphs too: natural-loop
// detection must simply skip back edges whose target does not dominate
// the source.
func VerifyLoops(succs [][]int, root int) error {
	tree := dom.Compute(succs, root)
	f := loops.Find(succs, tree)
	preds := dom.Reverse(succs)

	loopIdx := map[int]int{}
	for i, l := range f.Loops {
		if prev, dup := loopIdx[l.Header]; dup {
			return fmt.Errorf("loops: header %d owns two loops (%d and %d)", l.Header, prev, i)
		}
		loopIdx[l.Header] = i

		if !l.Body[l.Header] {
			return fmt.Errorf("loops: loop %d body excludes its header %d", i, l.Header)
		}
		for _, t := range l.Latches {
			if !l.Body[t] {
				return fmt.Errorf("loops: loop %d latch %d outside body", i, t)
			}
			if !tree.Dominates(l.Header, t) {
				return fmt.Errorf("loops: loop %d latch %d not dominated by header %d (not a natural loop)",
					i, t, l.Header)
			}
			hasEdge := false
			for _, s := range succs[t] {
				if s == l.Header {
					hasEdge = true
				}
			}
			if !hasEdge {
				return fmt.Errorf("loops: loop %d latch %d has no edge to header %d", i, t, l.Header)
			}
			if !f.IsBackEdge(t, l.Header) {
				return fmt.Errorf("loops: IsBackEdge(%d,%d) false for recorded latch", t, l.Header)
			}
		}
		// Body closure: every body node except the header pulls in all its
		// reachable predecessors (that is how natural loop bodies are
		// defined).
		for v := range l.Body {
			if v == l.Header {
				continue
			}
			for _, p := range preds[v] {
				if tree.Reachable(p) && !l.Body[p] {
					return fmt.Errorf("loops: loop %d body not closed: %d in body, pred %d outside", i, v, p)
				}
			}
		}
		// Nesting: the parent must contain this loop's header and be
		// strictly larger.
		if l.Parent >= 0 {
			p := f.Loops[l.Parent]
			if !p.Body[l.Header] || len(p.Body) <= len(l.Body) {
				return fmt.Errorf("loops: loop %d parent %d does not enclose it", i, l.Parent)
			}
			if l.Depth != p.Depth+1 {
				return fmt.Errorf("loops: loop %d depth %d, parent depth %d", i, l.Depth, p.Depth)
			}
		} else if l.Depth != 1 {
			return fmt.Errorf("loops: top-level loop %d has depth %d", i, l.Depth)
		}
	}
	// Every dominator-back-edge must be recorded as a latch, and
	// InnermostOf must name the smallest containing loop.
	for t := range succs {
		if !tree.Reachable(t) {
			continue
		}
		for _, h := range succs[t] {
			if tree.Dominates(h, t) {
				i, ok := loopIdx[h]
				if !ok {
					return fmt.Errorf("loops: back edge %d->%d has no loop", t, h)
				}
				found := false
				for _, lt := range f.Loops[i].Latches {
					if lt == t {
						found = true
					}
				}
				if !found {
					return fmt.Errorf("loops: back edge %d->%d missing from latches", t, h)
				}
			}
		}
	}
	for v := range succs {
		want := -1
		for i, l := range f.Loops {
			if l.Body[v] && (want == -1 || len(l.Body) < len(f.Loops[want].Body)) {
				want = i
			}
		}
		if got := f.InnermostOf[v]; got != want {
			return fmt.Errorf("loops: InnermostOf[%d]=%d, smallest containing loop is %d", v, got, want)
		}
	}
	return nil
}

// CheckCFG runs every Tier-1 oracle on one graph.
func CheckCFG(c *CFG) error {
	if err := CheckDominators(c); err != nil {
		return err
	}
	if err := CheckCDG(c); err != nil {
		return err
	}
	return VerifyLoops(c.Succs, c.Entry)
}

// CheckCFGSeed generates the Tier-1 graph for seed and runs every graph
// oracle over it. Any failure carries the seed.
func CheckCFGSeed(seed uint64) error {
	return fail("cfg", seed, CheckCFG(GenCFG(seed)))
}
