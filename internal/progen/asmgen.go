package progen

import (
	"fmt"
	"strings"
)

// Tier 3: random ISA assembly programs. Termination is guaranteed by
// construction:
//
//   - every backward branch is a counter loop over a dedicated
//     callee-saved register that the loop body never writes (function i
//     owns $s(2i)/$s(2i+1) for nesting depths 1/2, so counters also
//     survive calls);
//   - the call graph is acyclic (function i only calls functions with a
//     higher index, all of which are generated first);
//   - indirect jumps go through .targets-annotated jump tables whose
//     cases all rejoin a forward label;
//   - every other branch is forward.
//
// The generator additionally tracks a worst-case dynamic instruction
// estimate per function and refuses shapes that would push it past a
// budget, keeping every program far under the emulator's cap.

const (
	asmMaxFuncs   = 4
	asmFuncBudget = 12000 // worst-case dynamic instructions per function
	asmBufSize    = 1024  // bytes of scratch data memory
	asmAddrMask   = 0x1F8 // keeps 8-byte accesses inside buf
)

// asmPlan is the generation-level representation of a Tier-3 program.
// Rendering a plan is deterministic, and the minimizer works by dropping
// shapes from it rather than editing text.
type asmPlan struct {
	funcs []*asmFunc // funcs[0] is main
}

type asmFunc struct {
	idx    int
	shapes []ashape
	cost   int // worst-case dynamic instructions, calls included
}

func (f *asmFunc) name() string {
	if f.idx == 0 {
		return "main"
	}
	return fmt.Sprintf("f%d", f.idx)
}

func (f *asmFunc) hasCalls() bool {
	var walk func(ss []ashape) bool
	walk = func(ss []ashape) bool {
		for _, s := range ss {
			switch n := s.(type) {
			case *callShape:
				return true
			case *hammockShape:
				if walk(n.then) || walk(n.els) {
					return true
				}
			case *loopShape:
				if walk(n.body) {
					return true
				}
			case *switchShape:
				for _, c := range n.cases {
					if walk(c) {
						return true
					}
				}
			}
		}
		return false
	}
	return walk(f.shapes)
}

// ashape is one generated code shape. cost() is the worst-case dynamic
// instruction count of executing the shape once.
type ashape interface{ cost() int }

type aluShape struct{ lines []string }

func (s *aluShape) cost() int { return len(s.lines) }

type memShape struct {
	store  bool
	width  int // 1, 2, 4, 8
	reg    int // $t register moved to/from memory
	addr   int // $t register hashed into the address
	offset int
}

func (s *memShape) cost() int { return 4 }

type hammockShape struct {
	cond      string // branch mnemonic
	rs, rt    int    // $t registers ($rt unused for compare-zero forms)
	twoReg    bool
	then, els []ashape
}

func (s *hammockShape) cost() int {
	c := 2
	for _, x := range s.then {
		c += x.cost()
	}
	for _, x := range s.els {
		c += x.cost()
	}
	return c + 1
}

type loopShape struct {
	iters int
	depth int // 1 or 2: selects the function's counter register
	body  []ashape
}

func (s *loopShape) cost() int {
	c := 0
	for _, x := range s.body {
		c += x.cost()
	}
	return 1 + s.iters*(c+2)
}

type switchShape struct {
	idxReg int // $t register whose low bits select the case
	cases  [][]ashape
}

func (s *switchShape) cost() int {
	c := 6
	for _, cs := range s.cases {
		for _, x := range cs {
			c += x.cost()
		}
	}
	return c
}

type callShape struct {
	callee *asmFunc
}

func (s *callShape) cost() int { return 6 + s.callee.cost }

// GenAsm renders the Tier-3 program for seed. Byte-identical output for
// identical seeds.
func GenAsm(seed uint64) string { return genAsmPlan(newRNG(seed)).render() }

func genAsmPlan(r *rng) *asmPlan {
	nFuncs := r.rangeInt(1, asmMaxFuncs)
	p := &asmPlan{funcs: make([]*asmFunc, nFuncs)}
	// Leaf-most functions first so callShape costs are known.
	for i := nFuncs - 1; i >= 0; i-- {
		f := &asmFunc{idx: i}
		p.funcs[i] = f
		budget := asmFuncBudget
		f.shapes = genAsmBody(r, p, f, 1, &budget, r.rangeInt(2, 6))
		for _, s := range f.shapes {
			f.cost += s.cost()
		}
		f.cost += 4 // prologue/epilogue
	}
	return p
}

// genAsmBody generates up to want shapes at the given loop depth,
// spending from the function's worst-case-cost budget. Shapes that would
// overrun the budget are regenerated as cheap ALU bursts.
func genAsmBody(r *rng, p *asmPlan, f *asmFunc, depth int, budget *int, want int) []ashape {
	var out []ashape
	for i := 0; i < want; i++ {
		s := genAsmShape(r, p, f, depth, budget)
		if s == nil {
			break
		}
		out = append(out, s)
	}
	return out
}

func genAsmShape(r *rng, p *asmPlan, f *asmFunc, depth int, budget *int) ashape {
	// Compound shapes recurse into their bodies before they are charged,
	// so a near-empty budget must stop the recursion up front.
	if *budget <= 2 {
		if *budget >= 1 {
			*budget--
			return &aluShape{lines: []string{genALULine(r)}}
		}
		return nil
	}
	charge := func(s ashape) ashape {
		c := s.cost()
		if c > *budget {
			return nil
		}
		*budget -= c
		return s
	}
	for attempt := 0; attempt < 4; attempt++ {
		switch r.intn(10) {
		case 0, 1, 2: // ALU burst
			n := r.rangeInt(2, 6)
			lines := make([]string, 0, n)
			for j := 0; j < n; j++ {
				lines = append(lines, genALULine(r))
			}
			if s := charge(&aluShape{lines: lines}); s != nil {
				return s
			}
		case 3, 4: // load or store
			s := &memShape{
				store:  r.chance(1, 2),
				width:  []int{1, 2, 4, 8}[r.intn(4)],
				reg:    r.intn(8),
				addr:   r.intn(8),
				offset: r.intn(8),
			}
			if c := charge(s); c != nil {
				return c
			}
		case 5, 6: // forward hammock
			h := &hammockShape{rs: r.intn(8), rt: r.intn(8)}
			if r.chance(1, 2) {
				h.twoReg = true
				h.cond = []string{"beq", "bne"}[r.intn(2)]
			} else {
				h.cond = []string{"blez", "bgtz", "bltz", "bgez"}[r.intn(4)]
			}
			inner := *budget / 2
			h.then = genAsmBody(r, p, f, depth, &inner, r.rangeInt(1, 3))
			if r.chance(1, 2) {
				h.els = genAsmBody(r, p, f, depth, &inner, r.rangeInt(1, 2))
			}
			if s := charge(h); s != nil {
				return s
			}
		case 7: // counter loop (two nesting levels per function)
			if depth > 2 {
				continue
			}
			l := &loopShape{iters: r.rangeInt(2, 8), depth: depth}
			inner := *budget/(l.iters+1) - 3
			l.body = genAsmBody(r, p, f, depth+1, &inner, r.rangeInt(1, 4))
			if len(l.body) == 0 {
				continue
			}
			if s := charge(l); s != nil {
				return s
			}
		case 8: // switch through an annotated jump table
			ncases := []int{2, 4}[r.intn(2)]
			sw := &switchShape{idxReg: r.intn(8)}
			for c := 0; c < ncases; c++ {
				inner := *budget / (ncases + 1)
				sw.cases = append(sw.cases, genAsmBody(r, p, f, depth, &inner, r.rangeInt(1, 2)))
			}
			if s := charge(sw); s != nil {
				return s
			}
		case 9: // call a higher-indexed function (acyclic by construction)
			if f.idx+1 >= len(p.funcs) {
				continue
			}
			callee := p.funcs[f.idx+1+r.intn(len(p.funcs)-f.idx-1)]
			if s := charge(&callShape{callee: callee}); s != nil {
				return s
			}
		}
	}
	// Budget exhausted for anything interesting: a single cheap line.
	if *budget >= 1 {
		*budget--
		return &aluShape{lines: []string{genALULine(r)}}
	}
	return nil
}

var asmRegOps = []string{"add", "sub", "and", "or", "xor", "nor", "slt", "sltu",
	"sllv", "srlv", "srav", "mul", "div", "rem"}
var asmImmOps = []string{"addi", "andi", "ori", "xori", "slti"}
var asmShiftOps = []string{"sll", "srl", "sra"}

func genALULine(r *rng) string {
	t := func() string { return fmt.Sprintf("$t%d", r.intn(8)) }
	switch r.intn(5) {
	case 0, 1:
		op := asmRegOps[r.intn(len(asmRegOps))]
		return fmt.Sprintf("        %-4s %s, %s, %s", op, t(), t(), t())
	case 2:
		op := asmImmOps[r.intn(len(asmImmOps))]
		return fmt.Sprintf("        %-4s %s, %s, %d", op, t(), t(), r.rangeInt(-1024, 1023))
	case 3:
		op := asmShiftOps[r.intn(len(asmShiftOps))]
		return fmt.Sprintf("        %-4s %s, %s, %d", op, t(), t(), r.intn(64))
	default:
		v := int64(r.next()>>32) - (1 << 31)
		return fmt.Sprintf("        li   $t%d, %d", r.intn(8), v)
	}
}

// render emits the plan as assembly source. All label numbering flows from
// a single counter in plan-walk order, so rendering is deterministic.
func (p *asmPlan) render() string {
	rd := &asmRenderer{}
	rd.b.WriteString("# progen tier-3 program\n")
	for _, f := range p.funcs {
		rd.renderFunc(f)
	}
	rd.b.WriteString("\n        .data\n")
	fmt.Fprintf(&rd.b, "buf:    .space %d\n", asmBufSize)
	for _, tbl := range rd.tables {
		fmt.Fprintf(&rd.b, "%s: .word8 %s\n", tbl.name, strings.Join(tbl.cases, ", "))
	}
	return rd.b.String()
}

type asmTable struct {
	name  string
	cases []string
}

type asmRenderer struct {
	b      strings.Builder
	nLabel int
	tables []asmTable
	cur    *asmFunc
}

func (rd *asmRenderer) label(prefix string) string {
	rd.nLabel++
	return fmt.Sprintf("%s%d", prefix, rd.nLabel)
}

func (rd *asmRenderer) line(format string, args ...any) {
	fmt.Fprintf(&rd.b, format+"\n", args...)
}

func (rd *asmRenderer) renderFunc(f *asmFunc) {
	rd.cur = f
	rd.line("")
	rd.line("        .func %s", f.name())
	saveRA := f.idx != 0 && f.hasCalls()
	if saveRA {
		rd.line("        addi $sp, $sp, -8")
		rd.line("        sd   $ra, 0($sp)")
	}
	rd.renderShapes(f.shapes)
	if f.idx == 0 {
		rd.line("        halt")
		return
	}
	if saveRA {
		rd.line("        ld   $ra, 0($sp)")
		rd.line("        addi $sp, $sp, 8")
	}
	rd.line("        ret")
}

func (rd *asmRenderer) renderShapes(ss []ashape) {
	for _, s := range ss {
		switch n := s.(type) {
		case *aluShape:
			for _, l := range n.lines {
				rd.line("%s", l)
			}
		case *memShape:
			rd.line("        andi $t8, $t%d, %d", n.addr, asmAddrMask)
			rd.line("        la   $t9, buf")
			rd.line("        add  $t8, $t8, $t9")
			op := map[int][2]string{1: {"sb", "lb"}, 2: {"sh", "lh"}, 4: {"sw", "lw"}, 8: {"sd", "ld"}}[n.width]
			if n.store {
				rd.line("        %-4s $t%d, %d($t8)", op[0], n.reg, n.offset)
			} else {
				rd.line("        %-4s $t%d, %d($t8)", op[1], n.reg, n.offset)
			}
		case *hammockShape:
			join := rd.label("j")
			target := join
			if len(n.els) > 0 {
				target = rd.label("e")
			}
			if n.twoReg {
				rd.line("        %-4s $t%d, $t%d, %s", n.cond, n.rs, n.rt, target)
			} else {
				rd.line("        %-4s $t%d, %s", n.cond, n.rs, target)
			}
			rd.renderShapes(n.then)
			if len(n.els) > 0 {
				rd.line("        j    %s", join)
				rd.line("%s:", target)
				rd.renderShapes(n.els)
			}
			rd.line("%s:", join)
		case *loopShape:
			ctr := fmt.Sprintf("$s%d", 2*rd.cur.idx+n.depth-1)
			top := rd.label("l")
			rd.line("        li   %s, %d", ctr, n.iters)
			rd.line("%s:", top)
			rd.renderShapes(n.body)
			rd.line("        addi %s, %s, -1", ctr, ctr)
			rd.line("        bgtz %s, %s", ctr, top)
		case *switchShape:
			tbl := rd.label("jt")
			join := rd.label("j")
			labels := make([]string, len(n.cases))
			for i := range n.cases {
				labels[i] = rd.label("c")
			}
			rd.line("        andi $t8, $t%d, %d", n.idxReg, len(n.cases)-1)
			rd.line("        sll  $t8, $t8, 3")
			rd.line("        la   $t9, %s", tbl)
			rd.line("        add  $t8, $t8, $t9")
			rd.line("        ld   $t8, 0($t8)")
			rd.line("        jr   $t8")
			rd.line("        .targets %s", strings.Join(labels, ", "))
			for i, cs := range n.cases {
				rd.line("%s:", labels[i])
				rd.renderShapes(cs)
				if i != len(n.cases)-1 {
					rd.line("        j    %s", join)
				}
			}
			rd.line("%s:", join)
			rd.tables = append(rd.tables, asmTable{name: tbl, cases: labels})
		case *callShape:
			rd.line("        call %s", n.callee.name())
		}
	}
}
