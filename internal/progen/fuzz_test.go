package progen

import "testing"

// The fuzz targets feed native Go fuzzing's mutated uint64s in as
// generator seeds, so coverage feedback steers the *generator* through
// its decision tree rather than mutating program bytes directly (which
// would mostly produce parse errors). Checked-in corpora under
// testdata/fuzz/ keep a spread of seeds per tier exercising every
// generator shape; see docs/TESTING.md for how to run and extend them.

// FuzzDominators cross-checks the iterative, Lengauer-Tarjan and naive
// dominator/postdominator implementations on generated CFGs.
func FuzzDominators(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if err := fail("cfg", seed, CheckDominators(GenCFG(seed))); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzCDG cross-checks the postdominator-tree CDG construction against
// the path-enumeration reference, and the loop forest invariants.
func FuzzCDG(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		c := GenCFG(seed)
		if err := CheckCDG(c); err != nil {
			t.Fatal(fail("cfg", seed, err))
		}
		if err := VerifyLoops(c.Succs, c.Entry); err != nil {
			t.Fatal(fail("cfg", seed, err))
		}
	})
}

// FuzzMiniC drives generated MiniC sources through cc→asm→isa→emu and
// compares against the reference interpreter, then runs the compiled
// image through the graph oracles.
func FuzzMiniC(f *testing.F) {
	for seed := uint64(0); seed < 6; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if err := CheckMiniCSeed(seed); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzMachineDifferential runs generated ISA programs through the
// event-driven and polled schedulers under stress configurations and
// requires bit-identical results.
func FuzzMachineDifferential(f *testing.F) {
	for seed := uint64(0); seed < 4; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if err := CheckMachineSeed(seed); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzAttribution runs generated ISA programs with a spawn-site
// attribution table attached and requires the per-site sums to reconcile
// exactly with the machine-wide counters, with and without a warmup
// prefix.
func FuzzAttribution(f *testing.F) {
	for seed := uint64(0); seed < 4; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if err := CheckAttributionSeed(seed); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzSpawnMask draws a random spawn mask over each generated program's
// analyzed site universe and requires the mask codec to round-trip
// canonically, both schedulers to agree bit-for-bit under the mask,
// attribution to reconcile exactly with masked sites charging nothing,
// and the empty mask to be a no-op.
func FuzzSpawnMask(f *testing.F) {
	for seed := uint64(0); seed < 4; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if err := CheckSpawnMaskSeed(seed); err != nil {
			t.Fatal(err)
		}
	})
}
