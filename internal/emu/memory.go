package emu

// pageBits/pageSize define the sparse memory page granularity.
const (
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// Memory is a sparse, demand-paged byte-addressable memory. The zero value
// is an empty memory; unwritten bytes read as zero, matching a zeroed
// process image.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: map[uint64]*[pageSize]byte{}}
}

func (m *Memory) page(addr uint64, create bool) *[pageSize]byte {
	key := addr >> pageBits
	p := m.pages[key]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[key] = p
	}
	return p
}

// Load8 returns the byte at addr.
func (m *Memory) Load8(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Store8 stores b at addr.
func (m *Memory) Store8(addr uint64, b byte) {
	m.page(addr, true)[addr&pageMask] = b
}

// Read returns width bytes at addr as a little-endian unsigned integer.
// width must be 1, 2, 4, or 8.
func (m *Memory) Read(addr uint64, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		v |= uint64(m.Load8(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write stores the low width bytes of v at addr, little-endian.
func (m *Memory) Write(addr uint64, width int, v uint64) {
	for i := 0; i < width; i++ {
		m.Store8(addr+uint64(i), byte(v>>(8*i)))
	}
}

// LoadImage copies data into memory starting at base.
func (m *Memory) LoadImage(base uint64, data []byte) {
	for i, b := range data {
		m.Store8(base+uint64(i), b)
	}
}

// Footprint returns the number of resident pages, for tests and stats.
func (m *Memory) Footprint() int { return len(m.pages) }
