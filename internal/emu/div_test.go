package emu

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// TestDivRemTotal: the ISA's division is total — x/0 = x%0 = 0 and the
// MinInt64/-1 overflow wraps instead of trapping (a raw Go division here
// would panic the emulator; found by generative testing).
func TestDivRemTotal(t *testing.T) {
	cases := []struct {
		name     string
		op       string
		rs, rt   int64
		expected int64
	}{
		{"div-by-zero", "div", 7, 0, 0},
		{"rem-by-zero", "rem", 7, 0, 0},
		{"div-overflow", "div", math.MinInt64, -1, math.MinInt64},
		{"rem-overflow", "rem", math.MinInt64, -1, 0},
		{"div-neg-one", "div", 40, -1, -40},
		{"rem-neg-one", "rem", 41, -1, 0},
		{"div-plain", "div", -40, 8, -5},
		{"rem-plain", "rem", -41, 8, -1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := asm.Assemble(fmt.Sprintf(`
        li   $t0, %d
        li   $t1, %d
        %s  $v0, $t0, $t1
        halt
`, c.rs, c.rt, c.op))
			if err != nil {
				t.Fatal(err)
			}
			m := New(p, 0)
			for !m.Halted {
				if err := m.Step(nil); err != nil {
					t.Fatal(err)
				}
			}
			if got := m.Regs[isa.V0]; got != c.expected {
				t.Fatalf("%s(%d, %d) = %d, want %d", c.op, c.rs, c.rt, got, c.expected)
			}
		})
	}
}
