package emu

import (
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func run(t *testing.T, src string) (*Machine, int64) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, 0)
	for !m.Halted && m.Count < 1_000_000 {
		if err := m.Step(nil); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Halted {
		t.Fatal("program did not halt")
	}
	return m, m.Count
}

func TestArithmetic(t *testing.T) {
	m, _ := run(t, `
        li   $t0, 7
        li   $t1, 3
        add  $s0, $t0, $t1     # 10
        sub  $s1, $t0, $t1     # 4
        mul  $s2, $t0, $t1     # 21
        div  $s3, $t0, $t1     # 2
        rem  $s4, $t0, $t1     # 1
        and  $s5, $t0, $t1     # 3
        or   $s6, $t0, $t1     # 7
        xor  $s7, $t0, $t1     # 4
        halt
`)
	want := map[isa.Reg]int64{
		isa.S0: 10, isa.S1: 4, isa.S2: 21, isa.S3: 2,
		isa.S4: 1, isa.S5: 3, isa.S6: 7, isa.S7: 4,
	}
	for r, v := range want {
		if m.Regs[r] != v {
			t.Errorf("%v = %d, want %d", r, m.Regs[r], v)
		}
	}
}

func TestDivisionByZeroIsZero(t *testing.T) {
	m, _ := run(t, `
        li  $t0, 5
        div $s0, $t0, $zero
        rem $s1, $t0, $zero
        halt
`)
	if m.Regs[isa.S0] != 0 || m.Regs[isa.S1] != 0 {
		t.Fatalf("div/rem by zero must produce 0")
	}
}

func TestShiftsAndComparisons(t *testing.T) {
	m, _ := run(t, `
        li   $t0, -8
        sra  $s0, $t0, 1       # -4
        srl  $s1, $t0, 60      # 15
        sll  $s2, $t0, 1       # -16
        slt  $s3, $t0, $zero   # 1
        sltu $s4, $t0, $zero   # 0 (huge unsigned)
        slti $s5, $t0, -7      # 1
        halt
`)
	if m.Regs[isa.S0] != -4 || m.Regs[isa.S1] != 15 || m.Regs[isa.S2] != -16 {
		t.Fatalf("shifts wrong: %d %d %d", m.Regs[isa.S0], m.Regs[isa.S1], m.Regs[isa.S2])
	}
	if m.Regs[isa.S3] != 1 || m.Regs[isa.S4] != 0 || m.Regs[isa.S5] != 1 {
		t.Fatalf("comparisons wrong")
	}
}

func TestZeroRegisterIsImmutable(t *testing.T) {
	m, _ := run(t, `
        li   $zero, 99
        addi $zero, $zero, 5
        move $s0, $zero
        halt
`)
	if m.Regs[isa.Zero] != 0 || m.Regs[isa.S0] != 0 {
		t.Fatalf("$zero was written")
	}
}

func TestMemorySignExtension(t *testing.T) {
	m, _ := run(t, `
        li   $t0, 0x100000
        li   $t1, -1
        sb   $t1, 0($t0)
        lb   $s0, 0($t0)       # -1
        lbu  $s1, 0($t0)       # 255
        li   $t2, 0x8000
        sh   $t2, 8($t0)
        lh   $s2, 8($t0)       # -32768
        li   $t3, 0x80000000
        sw   $t3, 16($t0)
        lw   $s3, 16($t0)      # negative
        sd   $t1, 24($t0)
        ld   $s4, 24($t0)      # -1
        halt
`)
	if m.Regs[isa.S0] != -1 || m.Regs[isa.S1] != 255 {
		t.Fatalf("byte loads wrong: %d %d", m.Regs[isa.S0], m.Regs[isa.S1])
	}
	if m.Regs[isa.S2] != -32768 {
		t.Fatalf("lh sign extension wrong: %d", m.Regs[isa.S2])
	}
	if m.Regs[isa.S3] != -2147483648 {
		t.Fatalf("lw sign extension wrong: %d", m.Regs[isa.S3])
	}
	if m.Regs[isa.S4] != -1 {
		t.Fatalf("ld wrong: %d", m.Regs[isa.S4])
	}
}

func TestLoop(t *testing.T) {
	m, _ := run(t, `
        li   $t0, 0
        li   $t1, 10
loop:   addi $t0, $t0, 1
        blt  $t0, $t1, loop
        halt
`)
	if m.Regs[isa.T0] != 10 {
		t.Fatalf("loop result = %d, want 10", m.Regs[isa.T0])
	}
}

func TestCallAndReturn(t *testing.T) {
	m, _ := run(t, `
        .func main
main:   li   $a0, 20
        jal  double
        move $s0, $v0
        halt
        .func double
double: add  $v0, $a0, $a0
        ret
`)
	if m.Regs[isa.S0] != 40 {
		t.Fatalf("call result = %d, want 40", m.Regs[isa.S0])
	}
}

func TestRecursion(t *testing.T) {
	// fib(10) = 55 via naive recursion.
	m, _ := run(t, `
        .func main
main:   li   $a0, 10
        jal  fib
        move $s0, $v0
        halt
        .func fib
fib:    slti $t0, $a0, 2
        beq  $t0, $zero, fib_rec
        move $v0, $a0
        ret
fib_rec:
        addi $sp, $sp, -24
        sd   $ra, 0($sp)
        sd   $a0, 8($sp)
        addi $a0, $a0, -1
        jal  fib
        sd   $v0, 16($sp)
        ld   $a0, 8($sp)
        addi $a0, $a0, -2
        jal  fib
        ld   $t1, 16($sp)
        add  $v0, $v0, $t1
        ld   $ra, 0($sp)
        addi $sp, $sp, 24
        ret
`)
	if m.Regs[isa.S0] != 55 {
		t.Fatalf("fib(10) = %d, want 55", m.Regs[isa.S0])
	}
}

func TestIndirectJump(t *testing.T) {
	m, _ := run(t, `
        .data
table:  .word8 case0, case1
        .text
main:   la   $t0, table
        ld   $t1, 8($t0)       # case1
        jr   $t1
        .targets case0, case1
case0:  li   $s0, 100
        halt
case1:  li   $s0, 200
        halt
`)
	if m.Regs[isa.S0] != 200 {
		t.Fatalf("indirect jump result = %d, want 200", m.Regs[isa.S0])
	}
}

func TestTraceRecording(t *testing.T) {
	p, err := asm.Assemble(`
        li   $t0, 2
loop:   addi $t0, $t0, -1
        bgtz $t0, loop
        sd   $t0, 0($sp)
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// li, addi, bgtz(taken), addi, bgtz(nt), sd, halt
	if tr.Len() != 7 {
		t.Fatalf("trace length = %d, want 7", tr.Len())
	}
	b1 := &tr.Entries[2]
	if !b1.IsCondBranch() || !b1.Taken() {
		t.Fatalf("first branch not recorded as taken")
	}
	if b1.Next != tr.Entries[1].PC {
		t.Fatalf("taken branch Next wrong")
	}
	b2 := &tr.Entries[4]
	if !b2.IsCondBranch() || b2.Taken() {
		t.Fatalf("second branch not recorded as not-taken")
	}
	st := &tr.Entries[5]
	if !st.IsStore() || st.MemW != 8 {
		t.Fatalf("store entry wrong: %+v", st)
	}
	if !tr.Entries[6].IsCondBranch() == false && tr.Entries[6].Op != 0 {
		t.Fatalf("halt entry wrong")
	}
}

func TestRunErrors(t *testing.T) {
	p, err := asm.Assemble("nop\n") // falls off the end
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, Config{}); err == nil {
		t.Fatalf("running off the code segment must error")
	}

	p2, err := asm.Assemble("loop: j loop\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p2, Config{MaxInstrs: 100}); err == nil {
		t.Fatalf("instruction cap must error without halt")
	}
}

func TestDeterminism(t *testing.T) {
	p, err := asm.Assemble(`
        li   $s7, 12345
        li   $t0, 50
loop:   sll  $t1, $s7, 13
        xor  $s7, $s7, $t1
        srl  $t1, $s7, 7
        xor  $s7, $s7, $t1
        addi $t0, $t0, -1
        bgtz $t0, loop
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	tr1, err := Run(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Run(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Len() != tr2.Len() {
		t.Fatalf("nondeterministic trace length")
	}
	for i := range tr1.Entries {
		if tr1.Entries[i] != tr2.Entries[i] {
			t.Fatalf("trace diverges at %d", i)
		}
	}
}

func TestMemoryQuick(t *testing.T) {
	// Property: a write of any width followed by a read of the same width
	// at the same address returns the stored low bytes.
	prop := func(addr uint32, v int64, w uint8) bool {
		m := NewMemory()
		width := []int{1, 2, 4, 8}[w%4]
		m.Write(uint64(addr), width, uint64(v))
		got := m.Read(uint64(addr), width)
		mask := ^uint64(0)
		if width < 8 {
			mask = (1 << (8 * width)) - 1
		}
		return got == uint64(v)&mask
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryCrossPageAccess(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageSize - 3) // straddles the first page boundary
	m.Write(addr, 8, 0x1122334455667788)
	if got := m.Read(addr, 8); got != 0x1122334455667788 {
		t.Fatalf("cross-page read = %x", got)
	}
	if m.Footprint() != 2 {
		t.Fatalf("footprint = %d, want 2 pages", m.Footprint())
	}
}

func TestUnwrittenMemoryReadsZero(t *testing.T) {
	m := NewMemory()
	if m.Read(0xdeadbeef, 8) != 0 {
		t.Fatalf("unwritten memory must read zero")
	}
	if m.Footprint() != 0 {
		t.Fatalf("reads must not allocate pages")
	}
}

func TestCheckAcceptsOwnTrace(t *testing.T) {
	p, err := asm.Assemble(`
        li   $t9, 50
loop:   addi $t9, $t9, -1
        sd   $t9, 0($sp)
        bgtz $t9, loop
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p, tr); err != nil {
		t.Fatalf("architectural check rejected a genuine trace: %v", err)
	}
}

func TestCheckDetectsCorruption(t *testing.T) {
	p, err := asm.Assemble(`
        li   $t9, 20
loop:   addi $t9, $t9, -1
        sd   $t9, 0($sp)
        bgtz $t9, loop
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a memory address mid-trace.
	for i := range tr.Entries {
		if tr.Entries[i].IsStore() && i > 5 {
			tr.Entries[i].Addr ^= 0x40
			break
		}
	}
	if err := Check(p, tr); err == nil {
		t.Fatalf("architectural check accepted a corrupted trace")
	}
}

func TestCheckDetectsWrongDirection(t *testing.T) {
	p, err := asm.Assemble(`
        li   $t9, 20
loop:   addi $t9, $t9, -1
        bgtz $t9, loop
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Flip a branch direction flag.
	for i := range tr.Entries {
		if tr.Entries[i].IsCondBranch() {
			tr.Entries[i].Flags ^= trace.FlagTaken
			break
		}
	}
	if err := Check(p, tr); err == nil {
		t.Fatalf("architectural check accepted a flipped branch")
	}
}

func TestRunPublishesMetrics(t *testing.T) {
	p, err := asm.Assemble(`
        li   $t0, 3
        li   $t1, 0
loop:   sw   $t1, 0($gp)
        lw   $t2, 0($gp)
        add  $t1, $t1, $t2
        addi $t0, $t0, -1
        bgtz $t0, loop
        jal  sub
        halt
sub:    jr   $ra
`)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tr, err := Run(p, Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := reg.GaugeValue("emu.retired"); !ok || got != int64(tr.Len()) {
		t.Fatalf("emu.retired = %d,%v, want %d", got, ok, tr.Len())
	}
	want := map[string]int64{
		"emu.loads":          3,
		"emu.stores":         3,
		"emu.cond_branches":  3,
		"emu.taken_branches": 2,
		"emu.calls":          1,
		"emu.returns":        1,
	}
	for name, w := range want {
		if got, ok := reg.CounterValue(name); !ok || got != w {
			t.Errorf("%s = %d,%v, want %d", name, got, ok, w)
		}
	}
	// With trace recording off, only the retirement gauge is available.
	reg2 := telemetry.NewRegistry()
	if _, err := Run(p, Config{Metrics: reg2, NoTrace: true}); err != nil {
		t.Fatal(err)
	}
	if got, ok := reg2.GaugeValue("emu.retired"); !ok || got != int64(tr.Len()) {
		t.Fatalf("NoTrace emu.retired = %d,%v", got, ok)
	}
	if _, ok := reg2.CounterValue("emu.loads"); ok {
		t.Fatalf("NoTrace run should not publish trace-derived counters")
	}
}
