// Package emu implements the functional (architectural) emulator for the
// repository's MIPS-like ISA. It plays the role of the paper's architectural
// simulator: it defines correct execution, and its retired instruction
// stream is the dynamic trace that drives the timing models and trains the
// dynamic reconvergence predictor.
package emu

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config controls one emulation run.
type Config struct {
	// MaxInstrs caps the number of retired instructions (0 means the
	// DefaultMaxInstrs safety cap). The paper runs 100M instructions per
	// benchmark; the workloads here are sized to finish under the cap.
	MaxInstrs int
	// StackTop initializes $sp; 0 selects isa.DefaultStackTop.
	StackTop uint64
	// Record disables trace recording when false... (zero value records).
	NoTrace bool
	// Metrics, when non-nil, receives the emu.* functional-execution
	// counters (docs/OBSERVABILITY.md) once the run finishes. The stepping
	// loop is untouched: counts are derived from the retired trace, so a
	// nil registry costs nothing.
	Metrics *telemetry.Registry
	// OS handles syscall instructions. Nil makes OpSYSCALL an
	// architectural fault — the synthetic workloads never execute one.
	OS SyscallHandler
	// Segments, when non-nil, restricts data accesses to the mapped
	// regions; out-of-bounds loads and stores fault with the PC, effective
	// address, and segment map in the error. Nil leaves the sparse address
	// space unrestricted.
	Segments []Segment
}

// SyscallHandler services OpSYSCALL instructions. The handler reads the
// service number from $v0 and arguments from $a0/$a1 (and program memory),
// and returns the value the emulator writes back to $v0. It may halt the
// machine (exit). To keep runs byte-reproducible and cacheable, a handler
// must be deterministic: internal/sysos implements one over preloaded
// stdin and captured output.
type SyscallHandler interface {
	Syscall(m *Machine) (int64, error)
}

// DefaultMaxInstrs is the safety cap on retired instructions.
const DefaultMaxInstrs = 4_000_000

// Machine is the architectural state of one emulated program.
type Machine struct {
	Prog   *isa.Program
	Regs   [isa.NumRegs]int64
	Mem    *Memory
	PC     uint64
	Halted bool
	Count  int64 // retired instructions
	// OS services syscall instructions; nil faults on OpSYSCALL.
	OS SyscallHandler
	// Segs, when non-nil, bounds-checks every data access (see Config.Segments).
	Segs []Segment
}

// New creates a machine with the program image loaded and the ABI state
// (entry PC, stack pointer, return address) initialized. The return address
// is set to a halt-trampoline so that a bare `ret` from main halts cleanly.
func New(p *isa.Program, stackTop uint64) *Machine {
	if stackTop == 0 {
		stackTop = isa.DefaultStackTop
	}
	m := &Machine{Prog: p, Mem: NewMemory(), PC: p.Entry}
	m.Mem.LoadImage(p.DataBase, p.Data)
	m.Regs[isa.SP] = int64(stackTop)
	m.Regs[isa.GP] = int64(p.DataBase)
	return m
}

// Step executes one instruction and appends its trace entry to tr (when tr
// is non-nil). It returns an error on architectural faults: executing
// outside the code segment or unknown opcodes.
func (m *Machine) Step(tr *trace.Trace) error {
	if m.Halted {
		return nil
	}
	inst, ok := m.Prog.InstAt(m.PC)
	if !ok {
		return fmt.Errorf("emu: PC 0x%x outside code segment [0x%x,0x%x) after %d instructions",
			m.PC, m.Prog.CodeBase, m.Prog.CodeBase+uint64(len(m.Prog.Code))*isa.InstSize, m.Count)
	}
	pc := m.PC
	next := pc + isa.InstSize
	var e trace.Entry
	e.PC = pc
	e.Op = inst.Op

	rs, rt := m.Regs[inst.Rs], m.Regs[inst.Rt]
	var result int64
	writeDst := false

	switch inst.Op {
	case isa.OpNOP:
	case isa.OpHALT:
		m.Halted = true
	case isa.OpADD:
		result, writeDst = rs+rt, true
	case isa.OpSUB:
		result, writeDst = rs-rt, true
	case isa.OpAND:
		result, writeDst = rs&rt, true
	case isa.OpOR:
		result, writeDst = rs|rt, true
	case isa.OpXOR:
		result, writeDst = rs^rt, true
	case isa.OpNOR:
		result, writeDst = ^(rs | rt), true
	case isa.OpSLT:
		result, writeDst = b2i(rs < rt), true
	case isa.OpSLTU:
		result, writeDst = b2i(uint64(rs) < uint64(rt)), true
	case isa.OpSLLV:
		result, writeDst = rs<<(uint64(rt)&63), true
	case isa.OpSRLV:
		result, writeDst = int64(uint64(rs)>>(uint64(rt)&63)), true
	case isa.OpSRAV:
		result, writeDst = rs>>(uint64(rt)&63), true
	case isa.OpMUL:
		result, writeDst = rs*rt, true
	case isa.OpDIV:
		switch rt {
		case 0:
			result = 0
		case -1:
			// MinInt64 / -1 overflows; the ISA wraps (and Go would panic).
			result = -rs
		default:
			result = rs / rt
		}
		writeDst = true
	case isa.OpREM:
		switch rt {
		case 0, -1: // x % -1 is 0 for every x, incl. the Go-panicking MinInt64
			result = 0
		default:
			result = rs % rt
		}
		writeDst = true
	case isa.OpADDI:
		result, writeDst = rs+inst.Imm, true
	case isa.OpANDI:
		result, writeDst = rs&inst.Imm, true
	case isa.OpORI:
		result, writeDst = rs|inst.Imm, true
	case isa.OpXORI:
		result, writeDst = rs^inst.Imm, true
	case isa.OpSLTI:
		result, writeDst = b2i(rs < inst.Imm), true
	case isa.OpSLL:
		result, writeDst = rs<<(uint64(inst.Imm)&63), true
	case isa.OpSRL:
		result, writeDst = int64(uint64(rs)>>(uint64(inst.Imm)&63)), true
	case isa.OpSRA:
		result, writeDst = rs>>(uint64(inst.Imm)&63), true
	case isa.OpLUI:
		result, writeDst = inst.Imm<<16, true
	case isa.OpLI:
		result, writeDst = inst.Imm, true

	case isa.OpLB, isa.OpLBU, isa.OpLH, isa.OpLW, isa.OpLD:
		addr := uint64(rs + inst.Imm)
		w := inst.MemWidth()
		if err := m.checkAccess(pc, addr, w, "load"); err != nil {
			return err
		}
		v := m.Mem.Read(addr, w)
		switch inst.Op {
		case isa.OpLB:
			result = int64(int8(v))
		case isa.OpLBU:
			result = int64(v)
		case isa.OpLH:
			result = int64(int16(v))
		case isa.OpLW:
			result = int64(int32(v))
		case isa.OpLD:
			result = int64(v)
		}
		writeDst = true
		e.Addr, e.MemW = addr, uint8(w)
		e.Flags |= trace.FlagLoad

	case isa.OpSB, isa.OpSH, isa.OpSW, isa.OpSD:
		addr := uint64(rs + inst.Imm)
		w := inst.MemWidth()
		if err := m.checkAccess(pc, addr, w, "store"); err != nil {
			return err
		}
		m.Mem.Write(addr, w, uint64(rt))
		e.Addr, e.MemW = addr, uint8(w)
		e.Flags |= trace.FlagStore

	case isa.OpBEQ, isa.OpBNE, isa.OpBLEZ, isa.OpBGTZ, isa.OpBLTZ, isa.OpBGEZ:
		taken := false
		switch inst.Op {
		case isa.OpBEQ:
			taken = rs == rt
		case isa.OpBNE:
			taken = rs != rt
		case isa.OpBLEZ:
			taken = rs <= 0
		case isa.OpBGTZ:
			taken = rs > 0
		case isa.OpBLTZ:
			taken = rs < 0
		case isa.OpBGEZ:
			taken = rs >= 0
		}
		e.Flags |= trace.FlagCondBranch
		if taken {
			e.Flags |= trace.FlagTaken
			next = uint64(inst.Imm)
		}

	case isa.OpJ:
		next = uint64(inst.Imm)
	case isa.OpJAL:
		m.Regs[isa.RA] = int64(next)
		next = uint64(inst.Imm)
		e.Flags |= trace.FlagCall
	case isa.OpJR:
		next = uint64(rs)
		e.Flags |= trace.FlagIndirect
		if inst.IsReturn() {
			e.Flags |= trace.FlagReturn
		}
	case isa.OpJALR:
		link := int64(next)
		next = uint64(rs)
		if inst.Rd != isa.Zero {
			m.Regs[inst.Rd] = link
		}
		e.Flags |= trace.FlagCall | trace.FlagIndirect

	case isa.OpSYSCALL:
		if m.OS == nil {
			return fmt.Errorf("emu: syscall %d at PC 0x%x (%s) with no OS attached",
				m.Regs[isa.V0], pc, m.Prog.SymbolFor(pc))
		}
		v, err := m.OS.Syscall(m)
		if err != nil {
			return fmt.Errorf("emu: PC 0x%x (%s): %w", pc, m.Prog.SymbolFor(pc), err)
		}
		m.Regs[isa.V0] = v

	default:
		return fmt.Errorf("emu: invalid opcode %v at PC 0x%x", inst.Op, pc)
	}

	if writeDst && inst.Rd != isa.Zero {
		m.Regs[inst.Rd] = result
	}

	if tr != nil {
		if d, ok := inst.Dst(); ok {
			e.Dst = d
			e.Flags |= trace.FlagHasDst
		}
		var srcs [4]isa.Reg
		ss := inst.Srcs(srcs[:0])
		// The ISA has at most two register sources.
		for k, r := range ss {
			if k < 2 {
				e.Srcs[k] = r
			}
		}
		e.NSrc = uint8(len(ss))
		if m.Halted {
			e.Next = pc
		} else {
			e.Next = next
		}
		tr.Entries = append(tr.Entries, e)
	}

	m.PC = next
	m.Count++
	return nil
}

// Run executes the program to completion (halt) or to the instruction cap
// and returns the retired trace.
func Run(p *isa.Program, cfg Config) (*trace.Trace, error) {
	max := cfg.MaxInstrs
	if max <= 0 {
		max = DefaultMaxInstrs
	}
	m := New(p, cfg.StackTop)
	m.OS = cfg.OS
	m.Segs = cfg.Segments
	var tr *trace.Trace
	if !cfg.NoTrace {
		tr = &trace.Trace{Entries: make([]trace.Entry, 0, 1<<16)}
	}
	for !m.Halted && m.Count < int64(max) {
		if err := m.Step(tr); err != nil {
			return tr, err
		}
	}
	if cfg.Metrics != nil {
		publishMetrics(cfg.Metrics, m, tr)
	}
	if !m.Halted {
		return tr, fmt.Errorf("emu: instruction cap %d reached without halt (PC 0x%x)", max, m.PC)
	}
	return tr, nil
}

// publishMetrics counts the retired instruction mix into reg. With trace
// recording off only the retirement count is available.
func publishMetrics(reg *telemetry.Registry, m *Machine, tr *trace.Trace) {
	reg.Gauge("emu.retired").Set(m.Count)
	if tr == nil {
		return
	}
	var loads, stores, cond, taken, calls, returns, indirect int64
	for i := range tr.Entries {
		e := &tr.Entries[i]
		switch {
		case e.IsLoad():
			loads++
		case e.IsStore():
			stores++
		case e.IsCondBranch():
			cond++
			if e.Taken() {
				taken++
			}
		}
		if e.IsCall() {
			calls++
		}
		if e.IsReturn() {
			returns++
		}
		if e.IsIndirect() {
			indirect++
		}
	}
	reg.Counter("emu.loads").Add(loads)
	reg.Counter("emu.stores").Add(stores)
	reg.Counter("emu.cond_branches").Add(cond)
	reg.Counter("emu.taken_branches").Add(taken)
	reg.Counter("emu.calls").Add(calls)
	reg.Counter("emu.returns").Add(returns)
	reg.Counter("emu.indirect_jumps").Add(indirect)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
