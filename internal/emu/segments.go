package emu

import (
	"fmt"
	"strings"
)

// Segment is one mapped region of the emulated address space. Loader-built
// programs (internal/sysos) attach a segment map so stray accesses fault
// with context instead of silently reading zeroes from the sparse memory.
type Segment struct {
	Name string // "data", "heap", "stack", ...
	Base uint64 // first mapped address
	Size uint64 // bytes mapped; [Base, Base+Size)
}

// Contains reports whether the width-byte access at addr lies fully inside
// the segment.
func (s Segment) Contains(addr uint64, width int) bool {
	return addr >= s.Base && addr+uint64(width) <= s.Base+s.Size
}

func (s Segment) String() string {
	return fmt.Sprintf("%s [0x%x,0x%x)", s.Name, s.Base, s.Base+s.Size)
}

// describeSegments renders the segment map for fault messages.
func describeSegments(segs []Segment) string {
	parts := make([]string, len(segs))
	for i, s := range segs {
		parts[i] = s.String()
	}
	return strings.Join(parts, ", ")
}

// checkAccess validates a data access against the machine's segment map.
// A nil map means an unrestricted address space (the synthetic workloads
// lay out their own memory and are not segment-checked). The error carries
// the faulting PC (with its symbol), the effective address, the access
// kind/width, and the mapped segments — the context a loader-mapped
// program needs to debug a stray pointer.
func (m *Machine) checkAccess(pc, addr uint64, width int, kind string) error {
	if m.Segs == nil {
		return nil
	}
	for _, s := range m.Segs {
		if s.Contains(addr, width) {
			return nil
		}
	}
	return fmt.Errorf("emu: PC 0x%x (%s): %s of %d bytes at 0x%x outside mapped segments: %s",
		pc, m.Prog.SymbolFor(pc), kind, width, addr, describeSegments(m.Segs))
}
