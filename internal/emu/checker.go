package emu

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/trace"
)

// Check re-executes the program architecturally and verifies that the
// given retired trace matches it instruction by instruction — the
// mechanism the paper's simulator uses ("when an instruction is retired,
// its results are compared against an architectural simulator, and an
// error is signaled if the results do not match"). Because the timing
// models are trace-driven, running Check over a trace before simulation
// guarantees the machine only ever retires architecturally correct state.
func Check(p *isa.Program, tr *trace.Trace) error {
	return CheckOS(p, tr, nil)
}

// CheckOS is Check for programs that execute syscalls: os services the
// replay's syscall instructions. The handler must be fresh (or reset) and
// configured identically to the one that produced the trace — determinism
// of the OS layer is what makes the replay reproduce the recorded stream.
// A nil os degrades to plain Check.
func CheckOS(p *isa.Program, tr *trace.Trace, os SyscallHandler) error {
	m := New(p, 0)
	m.OS = os
	for i := range tr.Entries {
		if m.Halted {
			return fmt.Errorf("emu: check: trace has %d entries but execution halted at %d", len(tr.Entries), i)
		}
		ref := &trace.Trace{Entries: make([]trace.Entry, 0, 1)}
		if err := m.Step(ref); err != nil {
			return fmt.Errorf("emu: check: at entry %d: %w", i, err)
		}
		got, want := ref.Entries[0], tr.Entries[i]
		if got != want {
			return fmt.Errorf("emu: check: divergence at entry %d: trace %+v, architectural %+v", i, want, got)
		}
	}
	// Every provided entry matched; a trace produced under an instruction
	// cap is a verified prefix of the architectural execution.
	return nil
}

// CheckLabeled is Check with a caller-supplied label prefixed to any
// divergence. Generative tests pass their "seed=N" label so every checker
// failure carries its one-command reproduction handle.
func CheckLabeled(p *isa.Program, tr *trace.Trace, label string) error {
	if err := Check(p, tr); err != nil {
		return fmt.Errorf("%s: %w", label, err)
	}
	return nil
}
