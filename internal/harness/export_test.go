package harness

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
)

func sampleTable() *SpeedupTable {
	return &SpeedupTable{
		Title:    "sample",
		Benches:  []string{"alpha", "beta"},
		Policies: []string{"p1", "p2"},
		BaseIPC:  []float64{1.5, 2.25},
		Speedup:  [][]float64{{10.125, -3.5}, {20, 40}},
	}
}

func TestSpeedupCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 { // header + 2 benches + average
		t.Fatalf("rows = %d, want 4", len(recs))
	}
	if recs[0][2] != "p1" || recs[1][0] != "alpha" || recs[1][2] != "10.12" && recs[1][2] != "10.13" {
		t.Fatalf("csv content wrong: %v", recs)
	}
	if recs[3][0] != "average" {
		t.Fatalf("missing average row")
	}
}

func TestSpeedupJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Title    string `json:"title"`
		Policies []string
		Rows     []struct {
			Bench          string             `json:"bench"`
			SuperscalarIPC float64            `json:"superscalar_ipc"`
			SpeedupPct     map[string]float64 `json:"speedup_pct"`
		} `json:"rows"`
		Averages map[string]float64 `json:"averages"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Title != "sample" || len(decoded.Rows) != 2 {
		t.Fatalf("json wrong: %+v", decoded)
	}
	if decoded.Rows[0].SpeedupPct["p1"] != 10.13 && decoded.Rows[0].SpeedupPct["p1"] != 10.12 {
		t.Fatalf("rounding wrong: %v", decoded.Rows[0].SpeedupPct)
	}
	// Negative values must round sanely.
	if got := decoded.Rows[1].SpeedupPct["p1"]; got != -3.5 {
		t.Fatalf("negative speedup = %v", got)
	}
	if decoded.Averages["p2"] != 30 {
		t.Fatalf("averages wrong: %v", decoded.Averages)
	}
}

func TestLossCSV(t *testing.T) {
	lt := &LossTable{
		Benches:    []string{"a"},
		Exclusions: []string{"postdoms - loopFT", "postdoms - procFT"},
		Loss:       [][]float64{{1.25}, {-0.5}},
	}
	var buf bytes.Buffer
	if err := lt.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1][1] != "1.25" || recs[1][2] != "-0.50" {
		t.Fatalf("loss csv wrong: %v", recs)
	}
}

func TestFigure5CSV(t *testing.T) {
	rows := []Fig5Row{{Bench: "x", Counts: [core.NumKinds]int{2, 3, 4, 5, 6}, Total: 18}}
	var buf bytes.Buffer
	if err := WriteFigure5CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "x,3,4,5,6,2,18") {
		t.Fatalf("figure 5 csv wrong:\n%s", got)
	}
}
