package harness

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/machine"
)

func TestFigure5(t *testing.T) {
	rows, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for _, r := range rows {
		if r.Total <= 0 {
			t.Errorf("%s: no static spawns", r.Bench)
		}
		sum := r.Counts[core.KindLoopFT] + r.Counts[core.KindProcFT] +
			r.Counts[core.KindHammock] + r.Counts[core.KindOther]
		if sum != r.Total {
			t.Errorf("%s: counts %v do not sum to total %d", r.Bench, r.Counts, r.Total)
		}
	}
	out := FormatFigure5(rows)
	if !strings.Contains(out, "twolf") || !strings.Contains(out, "Hammock%") {
		t.Fatalf("Figure 5 formatting wrong:\n%s", out)
	}
}

func TestFigure8(t *testing.T) {
	out := Figure8()
	if !strings.Contains(out, "Pipeline parameters") || !strings.Contains(out, "gshare") {
		t.Fatalf("Figure 8 wrong:\n%s", out)
	}
}

func TestSpeedupTableHelpers(t *testing.T) {
	tab := &SpeedupTable{
		Title:    "t",
		Benches:  []string{"a", "b"},
		Policies: []string{"p1", "p2"},
		BaseIPC:  []float64{1, 2},
		Speedup:  [][]float64{{10, 20}, {30, 50}},
	}
	if tab.Average(0) != 15 || tab.Average(1) != 40 {
		t.Fatalf("averages wrong")
	}
	if row, ok := tab.PolicyRow("p2"); !ok || row[1] != 50 {
		t.Fatalf("PolicyRow wrong")
	}
	if _, ok := tab.PolicyRow("zzz"); ok {
		t.Fatalf("missing policy found")
	}
	out := tab.Format()
	for _, want := range []string{"p1", "p2", "Average", "ss-IPC"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestLossTableHelpers(t *testing.T) {
	lt := &LossTable{
		Benches:    []string{"a"},
		Exclusions: []string{"postdoms - loopFT"},
		Loss:       [][]float64{{12.5}},
	}
	if lt.Average(0) != 12.5 {
		t.Fatalf("loss average wrong")
	}
	if !strings.Contains(lt.Format(), "postdoms - loopFT") {
		t.Fatalf("loss format wrong")
	}
}

// TestFigure9EndToEnd runs the full Figure 9 sweep and checks the paper's
// headline claims hold in this reproduction:
//  1. control-equivalent spawning's average speedup is at least 1.5x the
//     best individual heuristic's average (paper: "more than double"),
//  2. per benchmark, postdoms is at worst modestly below the best
//     individual heuristic and usually above it.
func TestFigure9EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation sweep")
	}
	tab, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	post, ok := tab.PolicyRow("postdoms")
	if !ok {
		t.Fatal("postdoms row missing")
	}
	postAvg := tab.Average(len(tab.Policies) - 1)
	bestIndivAvg := 0.0
	for pi, name := range tab.Policies {
		if name == "postdoms" {
			continue
		}
		if a := tab.Average(pi); a > bestIndivAvg {
			bestIndivAvg = a
		}
	}
	if postAvg < 1.2*bestIndivAvg {
		t.Errorf("postdoms average %.1f vs best heuristic %.1f: subsumption too weak",
			postAvg, bestIndivAvg)
	}
	for bi, bench := range tab.Benches {
		best := 0.0
		for pi, name := range tab.Policies {
			if name == "postdoms" || name == "loop" {
				continue
			}
			if v := tab.Speedup[pi][bi]; v > best {
				best = v
			}
		}
		// Postdoms must cover the best non-loop heuristic per benchmark
		// (small shortfalls from spawn interference are tolerated, as in
		// the paper's "less than 2%" caveat — we allow a wider band since
		// our magnitudes are larger).
		if post[bi] < best-12 {
			t.Errorf("%s: postdoms %.1f far below best heuristic %.1f", bench, post[bi], best)
		}
	}
	// Superscalar IPCs must be plausible.
	for bi, ipc := range tab.BaseIPC {
		if ipc < 0.3 || ipc > 4 {
			t.Errorf("%s: implausible superscalar IPC %.2f", tab.Benches[bi], ipc)
		}
	}
}

// TestFigure11SignatureLosses verifies the paper's signature per-benchmark
// sensitivities: vpr.route needs loopFT, vortex needs procFT, mcf needs
// hammocks, and perlbmk needs "other" spawns.
func TestFigure11SignatureLosses(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation sweep")
	}
	lt, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	idx := func(excl string) int {
		for i, e := range lt.Exclusions {
			if e == excl {
				return i
			}
		}
		t.Fatalf("exclusion %q missing", excl)
		return -1
	}
	bench := func(name string) int {
		for i, b := range lt.Benches {
			if b == name {
				return i
			}
		}
		t.Fatalf("bench %q missing", name)
		return -1
	}
	checks := []struct {
		excl, bench string
		minLoss     float64
	}{
		{"postdoms - loopFT", "vpr.route", 10},
		{"postdoms - procFT", "vortex", 30},
		{"postdoms - hammock", "mcf", 30},
		{"postdoms - others", "perlbmk", 20},
	}
	for _, c := range checks {
		got := lt.Loss[idx(c.excl)][bench(c.bench)]
		if got < c.minLoss {
			t.Errorf("%s on %s: loss %.1f, want >= %.1f", c.excl, c.bench, got, c.minLoss)
		}
	}
}

// TestFigure12RecPredApproximates: the dynamic reconvergence predictor must
// land within a reasonable fraction of compiler postdominators on average
// and track it closely on at least half the benchmarks.
func TestFigure12RecPredApproximates(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation sweep")
	}
	tab, err := Figure12()
	if err != nil {
		t.Fatal(err)
	}
	post, _ := tab.PolicyRow("postdoms")
	rec, ok := tab.PolicyRow("rec_pred")
	if !ok {
		t.Fatal("rec_pred row missing")
	}
	postAvg, recAvg := 0.0, 0.0
	close := 0
	for i := range post {
		postAvg += post[i]
		recAvg += rec[i]
		if rec[i] >= post[i]-15 {
			close++
		}
	}
	if recAvg < 0.5*postAvg {
		t.Errorf("rec_pred average %.1f too far below postdoms %.1f", recAvg/12, postAvg/12)
	}
	if close < 6 {
		t.Errorf("rec_pred tracks postdoms closely on only %d/12 benchmarks", close)
	}
}

func TestRunGridErrorContext(t *testing.T) {
	benches, err := BenchesNamed([]string{"twolf"})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	worse := errors.New("worse")
	_, err = runGrid(Options{}, benches, []string{"ok", "bad", "awful"},
		func(ctx context.Context, b *speculate.Bench, c int) (machine.Result, error) {
			switch c {
			case 1:
				return machine.Result{}, boom
			case 2:
				return machine.Result{}, worse
			}
			return machine.Result{}, nil
		})
	if err == nil {
		t.Fatal("error swallowed")
	}
	// Every failing cell is reported with its job ID, not just the first.
	if !errors.Is(err, boom) || !errors.Is(err, worse) {
		t.Fatalf("joined error lost a cause: %v", err)
	}
	for _, want := range []string{"job cell/twolf/bad", "job cell/twolf/awful"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing context %q", err, want)
		}
	}
}

func TestBenchesNamedUnknown(t *testing.T) {
	_, err := BenchesNamed([]string{"nonesuch"})
	if err == nil || !strings.Contains(err.Error(), "nonesuch") {
		t.Fatalf("unknown bench error = %v", err)
	}
}

func TestFigure9OptsFilter(t *testing.T) {
	tab, err := Figure9Opts(Options{Benches: []string{"twolf"}, Policies: []string{"postdoms"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Benches) != 1 || tab.Benches[0] != "twolf" {
		t.Fatalf("benches = %v, want [twolf]", tab.Benches)
	}
	if len(tab.Policies) != 1 || tab.Policies[0] != "postdoms" {
		t.Fatalf("policies = %v, want [postdoms]", tab.Policies)
	}
	if tab.Speedup[0][0] == 0 {
		t.Fatalf("filtered cell did not simulate")
	}
	if _, err := Figure9Opts(Options{Policies: []string{"nonesuch"}}); err == nil {
		t.Fatal("unknown policy filter should error")
	}
}

func TestFigureRunsThroughArtifactCache(t *testing.T) {
	cache, err := artifact.New(artifact.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Benches: []string{"twolf"}, Policies: []string{"postdoms"}, Cache: cache}
	cold, err := Figure9Opts(o)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Misses == 0 {
		t.Fatalf("cold run recorded no cache misses: %+v", st)
	}
	warm, err := Figure9Opts(o)
	if err != nil {
		t.Fatal(err)
	}
	st2 := cache.Stats()
	if st2.Misses != st.Misses {
		t.Fatalf("warm run missed the cache: cold=%+v warm=%+v", st, st2)
	}
	if st2.MemHits+st2.DiskHits == 0 {
		t.Fatalf("warm run recorded no hits: %+v", st2)
	}
	if cold.Format() != warm.Format() {
		t.Fatalf("cached table differs from fresh:\n%s\nvs\n%s", cold.Format(), warm.Format())
	}
	if cold.Results[0][0].Stats != warm.Results[0][0].Stats {
		t.Fatal("cached machine result differs from fresh")
	}

	// Cached hits still materialize attribution reports on demand.
	dir := t.TempDir()
	o.AttribDir = dir
	if _, err := Figure9Opts(o); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "twolf_postdoms.attrib.json")); err != nil {
		t.Fatalf("attrib report not written from cache hit: %v", err)
	}
}

func TestFigure9OptsTraceDir(t *testing.T) {
	dir := t.TempDir()
	tab, err := Figure9Opts(Options{
		Benches:  []string{"twolf"},
		Policies: []string{"postdoms"},
		TraceDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Results[0][0].SpawnsTaken == 0 {
		t.Fatalf("traced run took no spawns; trace would be empty")
	}
	data, err := os.ReadFile(filepath.Join(dir, "twolf_postdoms.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var dt struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
			TS int64  `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &dt); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	last := int64(-1)
	slices := 0
	for _, e := range dt.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if e.TS < last {
			t.Fatalf("ts went backwards: %d after %d", e.TS, last)
		}
		last = e.TS
		if e.Ph == "X" {
			slices++
		}
	}
	if slices == 0 {
		t.Fatalf("no task slices in exported trace")
	}
	metrics, err := os.ReadFile(filepath.Join(dir, "twolf_postdoms.metrics.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"machine.mispredicts", "machine.spawns_taken", "machine.task_lifetime_cycles"} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics summary missing %q:\n%s", want, metrics)
		}
	}
}

func TestFileToken(t *testing.T) {
	for in, want := range map[string]string{
		"postdoms":          "postdoms",
		"postdoms - loopFT": "postdoms-loopFT",
		"vpr.place":         "vpr.place",
		"a b/c":             "a-b-c",
	} {
		if got := fileToken(in); got != want {
			t.Errorf("fileToken(%q) = %q, want %q", in, got, want)
		}
	}
}
