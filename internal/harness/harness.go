// Package harness regenerates every table and figure of the paper's
// evaluation section as text tables: Figure 5 (static spawn-type
// distribution), Figure 8 (pipeline parameters), Figure 9 (individual
// heuristic policies), Figure 10 (heuristic combinations), Figure 11
// (leave-one-category-out losses), and Figure 12 (dynamic reconvergence
// prediction). See EXPERIMENTS.md for paper-vs-measured comparisons.
package harness

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/internal/artifact"
	"repro/internal/attrib"
	"repro/internal/core"
	"repro/internal/jobqueue"
	"repro/internal/machine"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// Options narrows and instruments a figure run. The zero value reproduces
// the full figure with no telemetry, exactly as the paper tables.
type Options struct {
	// Benches restricts the grid to the named workloads (figure order is
	// kept); empty means all of them.
	Benches []string
	// Family selects the base workload pool: "synthetic" (the default
	// twelve), "kernels", etc. — see speculate.WorkloadFamilies. Empty
	// keeps the synthetic default, except that explicitly named Benches
	// resolve across every family, so a mixed -bench list needs no flag.
	Family string
	// Policies restricts the columns to the named policies; empty means
	// all of them. For Figure 11 this filters the exclusion columns (the
	// postdoms reference always runs — the loss metric needs it).
	Policies []string
	// TraceDir, when non-empty, attaches a telemetry Collector to every
	// simulated cell and writes <bench>_<policy>.trace.json (Chrome
	// trace-event JSON, loadable in Perfetto) plus
	// <bench>_<policy>.metrics.txt into the directory, creating it if
	// needed. Tracing needs a live run, so it bypasses the artifact cache.
	TraceDir string
	// AttribDir, when non-empty, attaches a per-spawn-site attribution
	// table to every simulated cell, verifies its totals against the
	// machine counters, and writes <bench>_<policy>.attrib.json into the
	// directory (the polystat report/diff input), creating it if needed.
	AttribDir string
	// Context cancels the grid: cells abort promptly when it expires.
	// Nil means context.Background().
	Context context.Context
	// Pool, when non-nil, schedules the grid's cells (and benchmark
	// preparation) on an existing jobqueue pool — polyflowd shares its
	// serving pool with figure regeneration this way. Nil runs each grid
	// on an ephemeral pool sized to GOMAXPROCS.
	Pool *jobqueue.Pool
	// Cache, when non-nil, memoizes each cell's simulation in the
	// content-addressed artifact cache: hits skip the run entirely and
	// decode the stored result (byte-identical to a fresh run; see
	// internal/artifact). Cells that export traces bypass it.
	Cache *artifact.Cache
	// TraceCache, when non-nil, backs benchmark preparation with stored
	// polyflow-trace/1 artifacts (internal/tracestore): each workload's
	// trace is fetched or emulated once and every policy column replays
	// the shared immutable trace. Nil falls back to Cache, so one
	// -cache-dir serves both artifact kinds.
	TraceCache *artifact.Cache
	// Remote, when non-nil, executes every cell on a remote polyflowd (a
	// single daemon or a cluster coordinator) instead of simulating
	// locally: benchmark preparation is skipped — the serving side owns
	// the traces — and each cell becomes a submitted job whose stored sim
	// artifact is decoded into the table, byte-identical to a local run.
	// TraceDir is incompatible with Remote (telemetry needs a live local
	// run); AttribDir works, fed from the artifact's embedded report.
	Remote *server.Client
	// SpawnMask, when non-nil and non-empty, suppresses the masked spawn
	// sites in every PolyFlow cell of the grid (the superscalar baseline
	// has no spawns and runs unmasked), locally or remotely. This is how a
	// polytune-found mask is replayed across the figure tables:
	// `experiments -mask "$(polytune best ...)"`. Masked cells have their
	// own artifact-cache identities, so tuned and untuned grids coexist in
	// one cache.
	SpawnMask *machine.SpawnMask
	// Logger receives structured per-cell records for remote grids (job
	// IDs, trace IDs, retries); nil disables logging.
	Logger *slog.Logger
}

// traceCache returns the cache backing benchmark preparation.
func (o Options) traceCache() *artifact.Cache {
	if o.TraceCache != nil {
		return o.TraceCache
	}
	return o.Cache
}

// ctx returns the grid context.
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

func matches(filter []string, name string) bool {
	if len(filter) == 0 {
		return true
	}
	for _, f := range filter {
		if f == name {
			return true
		}
	}
	return false
}

func (o Options) wantBench(name string) bool  { return matches(o.Benches, name) }
func (o Options) wantPolicy(name string) bool { return matches(o.Policies, name) }

// collector returns a fresh per-cell Collector, or nil when tracing is off.
func (o Options) collector() *telemetry.Collector {
	if o.TraceDir == "" {
		return nil
	}
	return telemetry.NewCollector(telemetry.Config{TraceEvents: telemetry.DefaultTraceEvents})
}

// attribTable returns a fresh per-cell attribution table, or nil when
// attribution is off.
func (o Options) attribTable() *attrib.Table {
	if o.AttribDir == "" {
		return nil
	}
	return attrib.NewTable()
}

// exportCell writes one cell's trace and metrics files under o.TraceDir
// and its attribution report under o.AttribDir.
func (o Options) exportCell(bench, policy string, col *telemetry.Collector, tbl *attrib.Table, res machine.Result) error {
	if col != nil {
		if err := os.MkdirAll(o.TraceDir, 0o755); err != nil {
			return err
		}
		stem := filepath.Join(o.TraceDir, fileToken(bench)+"_"+fileToken(policy))
		tf, err := os.Create(stem + ".trace.json")
		if err != nil {
			return err
		}
		werr := col.WriteChromeTrace(tf, res.Config)
		if cerr := tf.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		mf, err := os.Create(stem + ".metrics.txt")
		if err != nil {
			return err
		}
		werr = col.WriteSummary(mf)
		if cerr := mf.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	if tbl != nil {
		if err := machine.VerifyAttribution(tbl, res); err != nil {
			return err
		}
		rep := attrib.NewReport(tbl, bench, policy, res.Config, res.Cycles, res.Retired)
		if err := o.writeAttrib(bench, policy, rep); err != nil {
			return err
		}
	}
	return nil
}

// writeAttrib writes one cell's attribution report under o.AttribDir.
func (o Options) writeAttrib(bench, policy string, rep *attrib.Report) error {
	if err := os.MkdirAll(o.AttribDir, 0o755); err != nil {
		return err
	}
	stem := filepath.Join(o.AttribDir, fileToken(bench)+"_"+fileToken(policy))
	return rep.WriteFile(stem + ".attrib.json")
}

// pool returns the scheduling pool for a batch of at most depth jobs and
// whether the caller owns (and must Close) it. Remote grids oversubscribe
// the worker count: a remote cell blocks its pool worker on HTTP I/O, not
// on a CPU, so GOMAXPROCS-sized pools would serialize the fan-out.
func (o Options) pool(depth int) (*jobqueue.Pool, bool) {
	if o.Pool != nil {
		return o.Pool, false
	}
	workers := 0
	if o.Remote != nil {
		workers = 16
	}
	return jobqueue.New(jobqueue.Config{Workers: workers, QueueDepth: depth, BaseContext: o.ctx()}), true
}

// submitWait submits to pool, waiting out transient ErrQueueFull — batch
// grids may be wider than a shared pool's queue bound, and unlike served
// traffic they would rather wait than shed load.
func submitWait(ctx context.Context, pool *jobqueue.Pool, job jobqueue.Job) (*jobqueue.Handle, error) {
	for {
		h, err := pool.Submit(job)
		if err == nil {
			return h, nil
		}
		if !errors.Is(err, jobqueue.ErrQueueFull) {
			return nil, fmt.Errorf("job %s: %w", job.ID, err)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// runCell simulates one (bench, column) cell, going through the artifact
// cache when one is attached: a hit decodes the stored artifact instead of
// running the pipeline, and a miss computes with attribution attached so
// the stored artifact always carries its report. Cells that export traces
// (or whose inputs are uncacheable) run live.
func (o Options) runCell(ctx context.Context, b *speculate.Bench, colName string, baseCfg machine.Config,
	sim func(ctx context.Context, cfg machine.Config) (machine.Result, error)) (machine.Result, error) {

	if o.SpawnMask.Len() > 0 && colName != "superscalar" {
		baseCfg.SpawnMask = o.SpawnMask
	}
	if o.Remote != nil {
		return o.runCellRemote(ctx, b.Name, colName)
	}
	if o.Cache == nil || o.TraceDir != "" {
		return o.runCellLive(ctx, b, colName, baseCfg, sim)
	}
	key, err := artifact.NewSimKey(b.Name, b.SourceSHA, b.MaxInstrs, colName, baseCfg)
	if errors.Is(err, artifact.ErrUncacheable) {
		return o.runCellLive(ctx, b, colName, baseCfg, sim)
	}
	if err != nil {
		return machine.Result{}, err
	}
	compute := func(ctx context.Context) ([]byte, error) {
		cfg := baseCfg
		tbl := attrib.NewTable()
		cfg.Attribution = tbl
		res, err := sim(ctx, cfg)
		if err != nil {
			return nil, err
		}
		if err := machine.VerifyAttribution(tbl, res); err != nil {
			return nil, err
		}
		rep := attrib.NewReport(tbl, b.Name, colName, res.Config, res.Cycles, res.Retired)
		return artifact.EncodeSim(&artifact.SimArtifact{Key: key, Result: res, Attrib: rep})
	}
	data, _, err := o.Cache.GetOrCompute(ctx, key.Hash(), compute)
	if err != nil {
		return machine.Result{}, err
	}
	art, err := artifact.DecodeSim(data)
	if err != nil {
		return machine.Result{}, err
	}
	if o.AttribDir != "" {
		if art.Attrib == nil {
			// Stored by a producer that skipped attribution; a live run is
			// the only way to get the report.
			return o.runCellLive(ctx, b, colName, baseCfg, sim)
		}
		if err := o.writeAttrib(b.Name, colName, art.Attrib); err != nil {
			return machine.Result{}, err
		}
	}
	return art.Result, nil
}

// runCellRemote executes one cell as a job on the remote daemon and
// decodes the returned sim artifact — the same bytes a local cached run
// would decode, so remote and local grids are byte-identical. 429s from a
// saturated queue are waited out: a batch grid would rather wait than
// shed cells.
func (o Options) runCellRemote(ctx context.Context, bench, colName string) (machine.Result, error) {
	if o.TraceDir != "" {
		return machine.Result{}, errors.New("harness: -trace-dir needs a live local run, not a remote grid")
	}
	req := server.Request{Bench: bench, Policy: colName}
	if o.SpawnMask.Len() > 0 && colName != "superscalar" {
		req.SpawnMask = o.SpawnMask.Encode()
	}
	var st server.Status
	for {
		var code int
		var err error
		st, code, err = o.Remote.Submit(ctx, req)
		if err == nil {
			break
		}
		if code != http.StatusTooManyRequests {
			return machine.Result{}, fmt.Errorf("submitting %s/%s: %w", bench, colName, err)
		}
		select {
		case <-ctx.Done():
			return machine.Result{}, ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
	if o.Logger != nil {
		o.Logger.Debug("remote cell submitted", "component", "harness",
			"bench", bench, "policy", colName, "job_id", st.ID, "trace_id", st.TraceID)
	}
	fin, err := o.Remote.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		return machine.Result{}, fmt.Errorf("waiting on %s/%s: %w", bench, colName, err)
	}
	if fin.State != "succeeded" {
		return machine.Result{}, fmt.Errorf("remote job %s (%s/%s) %s: %s", st.ID, bench, colName, fin.State, fin.Error)
	}
	data, err := o.Remote.ResultBytes(ctx, st.ID)
	if err != nil {
		return machine.Result{}, fmt.Errorf("fetching result of %s/%s: %w", bench, colName, err)
	}
	art, err := artifact.DecodeSim(data)
	if err != nil {
		return machine.Result{}, fmt.Errorf("decoding result of %s/%s: %w", bench, colName, err)
	}
	if o.AttribDir != "" {
		if art.Attrib == nil {
			return machine.Result{}, fmt.Errorf("remote artifact for %s/%s carries no attribution report", bench, colName)
		}
		if err := o.writeAttrib(bench, colName, art.Attrib); err != nil {
			return machine.Result{}, err
		}
	}
	return art.Result, nil
}

// runCellLive simulates one cell with o's observers attached and exports
// its files.
func (o Options) runCellLive(ctx context.Context, b *speculate.Bench, colName string, baseCfg machine.Config,
	sim func(ctx context.Context, cfg machine.Config) (machine.Result, error)) (machine.Result, error) {

	cfg := baseCfg
	col := o.collector()
	cfg.Telemetry = col
	tbl := o.attribTable()
	cfg.Attribution = tbl
	res, err := sim(ctx, cfg)
	if err != nil {
		return res, err
	}
	return res, o.exportCell(b.Name, colName, col, tbl, res)
}

// fileToken makes a bench/policy name safe as a filename component
// ("postdoms - loopFT" -> "postdoms-loopFT").
func fileToken(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_':
			return r
		default:
			return '-'
		}
	}, strings.ReplaceAll(name, " - ", "-"))
}

// Benches returns the prepared benchmarks in figure order, preparing them
// in parallel on first use.
func Benches() ([]*speculate.Bench, error) {
	return BenchesNamed(nil)
}

// BenchesNamed returns the named benchmarks (all of them when names is
// empty) in figure order, preparing them in parallel on first use.
func BenchesNamed(names []string) ([]*speculate.Bench, error) {
	return benchesNamed(Options{}, names)
}

// benchesNamed prepares the named benchmarks on o's scheduling pool.
func benchesNamed(o Options, names []string) ([]*speculate.Bench, error) {
	all := speculate.WorkloadNames()
	if o.Family != "" {
		if all = speculate.FamilyWorkloadNames(o.Family); all == nil {
			return nil, fmt.Errorf("harness: unknown workload family %q (have %v)", o.Family, speculate.WorkloadFamilies())
		}
	} else if len(names) > 0 {
		// Explicit names resolve across every family.
		all = speculate.AllWorkloadNames()
	}
	var wanted []string
	for _, name := range all {
		if matches(names, name) {
			wanted = append(wanted, name)
		}
	}
	if len(wanted) == 0 {
		return nil, fmt.Errorf("harness: no benchmark matches %q (have %v)", names, all)
	}
	if o.Remote != nil {
		// The serving side owns trace preparation; the grid only needs the
		// names. Baseline IPCs come from the decoded remote results.
		out := make([]*speculate.Bench, len(wanted))
		for i, name := range wanted {
			out[i] = &speculate.Bench{Name: name}
		}
		return out, nil
	}
	out := make([]*speculate.Bench, len(wanted))
	errs := make([]error, len(wanted))
	pool, owned := o.pool(len(wanted))
	if owned {
		defer pool.Close()
	}
	handles := make([]*jobqueue.Handle, len(wanted))
	for i, name := range wanted {
		i, name := i, name
		h, err := submitWait(o.ctx(), pool, jobqueue.Job{
			ID: "prepare/" + name,
			Fn: func(ctx context.Context) error {
				b, _, err := speculate.LoadCached(name, o.traceCache())
				if err != nil {
					return err
				}
				out[i] = b
				return nil
			},
		})
		if err != nil {
			return nil, err
		}
		handles[i] = h
	}
	for i, h := range handles {
		if err := h.Wait(context.Background()); err != nil {
			errs[i] = fmt.Errorf("job %s: %w", h.ID(), err)
		}
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

// runGrid simulates every (bench, column) pair as jobs on the scheduling
// pool (o.Pool, or an ephemeral pool sized to GOMAXPROCS); colNames label
// the columns in errors. run must be goroutine-safe across distinct pairs.
// A worker runs cells to completion one after another, so machine.Run's
// pooled arenas settle at one per worker instead of churning through
// however many goroutines the grid is wide. Every failing cell is
// reported, labeled with its job ID — not just the first.
func runGrid(o Options, benches []*speculate.Bench, colNames []string,
	run func(ctx context.Context, b *speculate.Bench, col int) (machine.Result, error)) ([][]machine.Result, error) {

	cols := len(colNames)
	cells := len(benches) * cols
	res := make([][]machine.Result, len(benches))
	errs := make([]error, cells)
	for i := range res {
		res[i] = make([]machine.Result, cols)
	}
	pool, owned := o.pool(cells)
	if owned {
		defer pool.Close()
	}
	handles := make([]*jobqueue.Handle, cells)
	for k := 0; k < cells; k++ {
		k := k
		i, c := k/cols, k%cols
		b := benches[i]
		h, err := submitWait(o.ctx(), pool, jobqueue.Job{
			ID: "cell/" + b.Name + "/" + colNames[c],
			Fn: func(ctx context.Context) error {
				r, err := run(ctx, b, c)
				if err != nil {
					return err
				}
				res[i][c] = r
				return nil
			},
		})
		if err != nil {
			return nil, err
		}
		handles[k] = h
	}
	for k, h := range handles {
		if err := h.Wait(context.Background()); err != nil {
			errs[k] = fmt.Errorf("job %s: %w", h.ID(), err)
		}
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return res, nil
}

// baselines runs the superscalar for every bench, in parallel. Baselines
// use the cache but never export observer files (matching the historical
// behavior of figure runs, whose trace/attrib exports cover the PolyFlow
// cells only).
func baselines(o Options, benches []*speculate.Bench) ([]machine.Result, error) {
	bo := o
	bo.TraceDir, bo.AttribDir = "", ""
	grid, err := runGrid(bo, benches, []string{"superscalar"},
		func(ctx context.Context, b *speculate.Bench, _ int) (machine.Result, error) {
			return bo.runCell(ctx, b, "superscalar", machine.SuperscalarConfig(),
				func(ctx context.Context, cfg machine.Config) (machine.Result, error) {
					return b.RunSuperscalarContext(ctx, cfg)
				})
		})
	if err != nil {
		return nil, err
	}
	out := make([]machine.Result, len(benches))
	for i := range grid {
		out[i] = grid[i][0]
	}
	return out, nil
}

// SpeedupTable is a policies × benchmarks speedup grid (percent over the
// superscalar), with the superscalar IPC per benchmark, as in Figures 9,
// 10 and 12.
type SpeedupTable struct {
	Title    string
	Benches  []string
	Policies []string
	BaseIPC  []float64
	// Speedup[p][b] is the percent speedup of policy p on bench b.
	Speedup [][]float64
	// Results[p][b] keeps the full machine results for deeper inspection.
	Results [][]machine.Result
	Base    []machine.Result
}

// Average returns the mean speedup of policy p across benchmarks.
func (t *SpeedupTable) Average(p int) float64 {
	var s float64
	for _, v := range t.Speedup[p] {
		s += v
	}
	return s / float64(len(t.Speedup[p]))
}

// PolicyRow returns the speedups of the named policy.
func (t *SpeedupTable) PolicyRow(name string) ([]float64, bool) {
	for i, p := range t.Policies {
		if p == name {
			return t.Speedup[i], true
		}
	}
	return nil, false
}

// Format renders the table with benchmarks as rows and policies as columns,
// plus an Average row — the textual equivalent of the paper's bar charts.
func (t *SpeedupTable) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-11s %7s", "bench", "ss-IPC")
	for _, p := range t.Policies {
		fmt.Fprintf(&b, " %*s", colWidth(p), p)
	}
	b.WriteByte('\n')
	for bi, name := range t.Benches {
		fmt.Fprintf(&b, "%-11s %7.2f", name, t.BaseIPC[bi])
		for pi, p := range t.Policies {
			fmt.Fprintf(&b, " %*.1f", colWidth(p), t.Speedup[pi][bi])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-11s %7s", "Average", "")
	for pi, p := range t.Policies {
		fmt.Fprintf(&b, " %*.1f", colWidth(p), t.Average(pi))
	}
	b.WriteByte('\n')
	return b.String()
}

func colWidth(name string) int {
	if len(name) < 8 {
		return 8
	}
	return len(name)
}

// speedupTable runs the given policy columns over the selected benchmarks.
// extra, when non-nil, appends one column computed outside the static
// policy set (e.g. the dynamic reconvergence predictor); it receives the
// cell's machine configuration with any observers already attached.
func speedupTable(title string, policies []core.Policy,
	extra func(ctx context.Context, b *speculate.Bench, cfg machine.Config) (machine.Result, error),
	extraName string, o Options) (*SpeedupTable, error) {

	var kept []core.Policy
	for _, p := range policies {
		if o.wantPolicy(p.Name) {
			kept = append(kept, p)
		}
	}
	policies = kept
	if extra != nil && !o.wantPolicy(extraName) {
		extra = nil
	}
	if len(policies) == 0 && extra == nil {
		return nil, fmt.Errorf("harness: no policy matches %q in %s", o.Policies, title)
	}
	benches, err := benchesNamed(o, o.Benches)
	if err != nil {
		return nil, err
	}
	base, err := baselines(o, benches)
	if err != nil {
		return nil, err
	}
	colNames := make([]string, 0, len(policies)+1)
	for _, p := range policies {
		colNames = append(colNames, p.Name)
	}
	if extra != nil {
		colNames = append(colNames, extraName)
	}
	grid, err := runGrid(o, benches, colNames,
		func(ctx context.Context, b *speculate.Bench, c int) (machine.Result, error) {
			return o.runCell(ctx, b, colNames[c], machine.PolyFlowConfig(),
				func(ctx context.Context, cfg machine.Config) (machine.Result, error) {
					if c < len(policies) {
						return b.RunPolicyContext(ctx, policies[c], cfg)
					}
					return extra(ctx, b, cfg)
				})
		})
	if err != nil {
		return nil, err
	}

	t := &SpeedupTable{Title: title}
	for i, b := range benches {
		t.Benches = append(t.Benches, b.Name)
		t.BaseIPC = append(t.BaseIPC, base[i].IPC)
	}
	t.Base = base
	for c, name := range colNames {
		t.Policies = append(t.Policies, name)
		row := make([]float64, len(benches))
		resRow := make([]machine.Result, len(benches))
		for i := range benches {
			row[i] = speculate.SpeedupPct(base[i], grid[i][c])
			resRow[i] = grid[i][c]
		}
		t.Speedup = append(t.Speedup, row)
		t.Results = append(t.Results, resRow)
	}
	return t, nil
}

// Figure9 evaluates the individual heuristic policies and full
// postdominator spawning.
func Figure9() (*SpeedupTable, error) { return Figure9Opts(Options{}) }

// Figure9Opts is Figure9 narrowed/instrumented by o.
func Figure9Opts(o Options) (*SpeedupTable, error) {
	return speedupTable(
		"Figure 9: Individual heuristic policies (speedup % over superscalar)",
		core.IndividualPolicies(), nil, "", o)
}

// Figure10 evaluates the heuristic combination policies against postdoms.
func Figure10() (*SpeedupTable, error) { return Figure10Opts(Options{}) }

// Figure10Opts is Figure10 narrowed/instrumented by o.
func Figure10Opts(o Options) (*SpeedupTable, error) {
	return speedupTable(
		"Figure 10: Combination heuristics (speedup % over superscalar)",
		core.CombinationPolicies(), nil, "", o)
}

// Figure12 evaluates dynamic reconvergence prediction against
// compiler-generated postdominators.
func Figure12() (*SpeedupTable, error) { return Figure12Opts(Options{}) }

// Figure12Opts is Figure12 narrowed/instrumented by o.
func Figure12Opts(o Options) (*SpeedupTable, error) {
	return speedupTable(
		"Figure 12: Reconvergence-predictor spawning vs compiler postdominators",
		[]core.Policy{core.PolicyPostdoms},
		func(ctx context.Context, b *speculate.Bench, cfg machine.Config) (machine.Result, error) {
			return b.RunRecPredContext(ctx, cfg)
		}, "rec_pred", o)
}

// LossTable is the Figure 11 result: per-benchmark loss in percent speedup
// (normalized to superscalar IPC) when one spawn category is excluded.
type LossTable struct {
	Benches    []string
	Exclusions []string
	// Loss[e][b] = (IPC_postdoms - IPC_excluded) / IPC_superscalar * 100.
	Loss [][]float64
}

// Average returns the mean loss for exclusion e.
func (t *LossTable) Average(e int) float64 {
	var s float64
	for _, v := range t.Loss[e] {
		s += v
	}
	return s / float64(len(t.Loss[e]))
}

// Format renders the loss table.
func (t *LossTable) Format() string {
	var b strings.Builder
	b.WriteString("Figure 11: Loss in speedup vs full postdominator set (normalized to superscalar IPC)\n")
	fmt.Fprintf(&b, "%-11s", "bench")
	for _, e := range t.Exclusions {
		fmt.Fprintf(&b, " %*s", colWidth(e), e)
	}
	b.WriteByte('\n')
	for bi, name := range t.Benches {
		fmt.Fprintf(&b, "%-11s", name)
		for ei, e := range t.Exclusions {
			fmt.Fprintf(&b, " %*.1f", colWidth(e), t.Loss[ei][bi])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-11s", "Average")
	for ei, e := range t.Exclusions {
		fmt.Fprintf(&b, " %*.1f", colWidth(e), t.Average(ei))
	}
	b.WriteByte('\n')
	return b.String()
}

// Figure11 measures the loss from excluding each spawn category.
func Figure11() (*LossTable, error) { return Figure11Opts(Options{}) }

// Figure11Opts is Figure11 narrowed/instrumented by o. The policy filter
// selects exclusion columns; the postdoms reference always runs because
// the loss metric is relative to it.
func Figure11Opts(o Options) (*LossTable, error) {
	benches, err := benchesNamed(o, o.Benches)
	if err != nil {
		return nil, err
	}
	base, err := baselines(o, benches)
	if err != nil {
		return nil, err
	}
	policies := []core.Policy{core.PolicyPostdoms}
	for _, p := range core.ExclusionPolicies() {
		if o.wantPolicy(p.Name) {
			policies = append(policies, p)
		}
	}
	if len(policies) == 1 {
		return nil, fmt.Errorf("harness: no exclusion policy matches %q in Figure 11", o.Policies)
	}
	colNames := make([]string, len(policies))
	for i, p := range policies {
		colNames[i] = p.Name
	}
	grid, err := runGrid(o, benches, colNames,
		func(ctx context.Context, b *speculate.Bench, c int) (machine.Result, error) {
			return o.runCell(ctx, b, colNames[c], machine.PolyFlowConfig(),
				func(ctx context.Context, cfg machine.Config) (machine.Result, error) {
					return b.RunPolicyContext(ctx, policies[c], cfg)
				})
		})
	if err != nil {
		return nil, err
	}
	t := &LossTable{}
	for _, b := range benches {
		t.Benches = append(t.Benches, b.Name)
	}
	for e := 1; e < len(policies); e++ {
		t.Exclusions = append(t.Exclusions, policies[e].Name)
		row := make([]float64, len(benches))
		for i := range benches {
			row[i] = speculate.LossPct(base[i], grid[i][0], grid[i][e])
		}
		t.Loss = append(t.Loss, row)
	}
	return t, nil
}

// Fig5Row is one benchmark's static spawn-type distribution.
type Fig5Row struct {
	Bench  string
	Counts [core.NumKinds]int // KindLoop excluded from Total
	Total  int                // total static postdominator spawn points
}

// Figure5 computes the static distribution of control-equivalent task
// types per benchmark.
func Figure5() ([]Fig5Row, error) { return Figure5Opts(Options{}) }

// Figure5Opts is Figure5 restricted to o's benchmark selection.
func Figure5Opts(o Options) ([]Fig5Row, error) {
	benches, err := BenchesNamed(o.Benches)
	if err != nil {
		return nil, err
	}
	var rows []Fig5Row
	for _, b := range benches {
		r := Fig5Row{Bench: b.Name}
		for _, s := range b.Analysis.Spawns {
			r.Counts[s.Kind]++
			if s.Kind != core.KindLoop {
				r.Total++
			}
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// FormatFigure5 renders the distribution table with percentages, as in the
// paper's stacked bars (total static spawns shown per benchmark).
func FormatFigure5(rows []Fig5Row) string {
	var b strings.Builder
	b.WriteString("Figure 5: Static distribution of control-equivalent task types\n")
	fmt.Fprintf(&b, "%-11s %8s %8s %8s %8s %8s\n", "bench", "LoopFT%", "ProcFT%", "Hammock%", "Other%", "total")
	for _, r := range rows {
		pct := func(k core.Kind) float64 {
			if r.Total == 0 {
				return 0
			}
			return 100 * float64(r.Counts[k]) / float64(r.Total)
		}
		fmt.Fprintf(&b, "%-11s %8.1f %8.1f %8.1f %8.1f %8d\n", r.Bench,
			pct(core.KindLoopFT), pct(core.KindProcFT), pct(core.KindHammock), pct(core.KindOther), r.Total)
	}
	return b.String()
}

// Figure8 renders the pipeline parameter table.
func Figure8() string {
	return "Figure 8: Pipeline parameters\n" + machine.PolyFlowConfig().ParameterTable()
}
