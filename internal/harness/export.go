package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteCSV emits a speedup table as CSV: one row per benchmark, one column
// per policy, plus the superscalar IPC.
func (t *SpeedupTable) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"bench", "superscalar_ipc"}, t.Policies...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for bi, bench := range t.Benches {
		row := []string{bench, fmt.Sprintf("%.4f", t.BaseIPC[bi])}
		for pi := range t.Policies {
			row = append(row, fmt.Sprintf("%.2f", t.Speedup[pi][bi]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	avg := []string{"average", ""}
	for pi := range t.Policies {
		avg = append(avg, fmt.Sprintf("%.2f", t.Average(pi)))
	}
	if err := cw.Write(avg); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the loss table as CSV.
func (t *LossTable) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"bench"}, t.Exclusions...)); err != nil {
		return err
	}
	for bi, bench := range t.Benches {
		row := []string{bench}
		for ei := range t.Exclusions {
			row = append(row, fmt.Sprintf("%.2f", t.Loss[ei][bi]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonSpeedup is the exported JSON schema for a speedup table.
type jsonSpeedup struct {
	Title    string             `json:"title"`
	Policies []string           `json:"policies"`
	Rows     []jsonSpeedupBench `json:"rows"`
	Averages map[string]float64 `json:"averages"`
}

type jsonSpeedupBench struct {
	Bench          string             `json:"bench"`
	SuperscalarIPC float64            `json:"superscalar_ipc"`
	SpeedupPct     map[string]float64 `json:"speedup_pct"`
}

// WriteJSON emits the speedup table as pretty-printed JSON.
func (t *SpeedupTable) WriteJSON(w io.Writer) error {
	out := jsonSpeedup{
		Title:    t.Title,
		Policies: t.Policies,
		Averages: map[string]float64{},
	}
	for bi, bench := range t.Benches {
		row := jsonSpeedupBench{
			Bench:          bench,
			SuperscalarIPC: round2(t.BaseIPC[bi]),
			SpeedupPct:     map[string]float64{},
		}
		for pi, p := range t.Policies {
			row.SpeedupPct[p] = round2(t.Speedup[pi][bi])
		}
		out.Rows = append(out.Rows, row)
	}
	for pi, p := range t.Policies {
		out.Averages[p] = round2(t.Average(pi))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteFigure5CSV emits the static spawn distribution.
func WriteFigure5CSV(w io.Writer, rows []Fig5Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"bench", "loopFT", "procFT", "hammock", "other", "loop_heuristic", "total"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Bench}
		for _, v := range []int{r.Counts[1], r.Counts[2], r.Counts[3], r.Counts[4], r.Counts[0], r.Total} {
			rec = append(rec, strconv.Itoa(v))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func round2(v float64) float64 {
	return math.Round(v*100) / 100
}
