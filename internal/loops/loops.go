// Package loops detects natural loops (via dominator-identified back edges)
// and builds the loop nesting forest. The spawn-point classifier uses it to
// identify loop branches (latches and exit branches) and loop fall-throughs,
// and the loop-iteration spawn policy uses headers and latch blocks
// (Section 2.3 of the paper: spawn the last basic block of the loop from
// the loop entry).
package loops

import (
	"sort"

	"repro/internal/dom"
)

// Loop is one natural loop. Loops sharing a header are merged, as usual.
type Loop struct {
	// Header is the loop header block.
	Header int
	// Latches are the sources of back edges into Header.
	Latches []int
	// Body is the set of blocks in the loop, including Header and Latches.
	Body map[int]bool
	// Parent is the index (into Forest.Loops) of the innermost enclosing
	// loop, or -1.
	Parent int
	// Depth is the nesting depth (outermost = 1).
	Depth int
}

// Contains reports whether block v belongs to the loop.
func (l *Loop) Contains(v int) bool { return l.Body[v] }

// ExitBlocks returns the loop blocks having at least one successor outside
// the loop, sorted.
func (l *Loop) ExitBlocks(succs [][]int) []int {
	var out []int
	for v := range l.Body {
		for _, w := range succs[v] {
			if !l.Body[w] {
				out = append(out, v)
				break
			}
		}
	}
	sort.Ints(out)
	return out
}

// Forest is the set of loops of one CFG with nesting information.
type Forest struct {
	Loops []*Loop
	// InnermostOf[v] is the index of the innermost loop containing v, or -1.
	InnermostOf []int
}

// LoopHeaderOf reports whether v is a loop header and returns its loop.
func (f *Forest) LoopHeaderOf(v int) (*Loop, bool) {
	for _, l := range f.Loops {
		if l.Header == v {
			return l, true
		}
	}
	return nil, false
}

// IsBackEdge reports whether the edge from→to is a back edge of some
// detected loop.
func (f *Forest) IsBackEdge(from, to int) bool {
	for _, l := range f.Loops {
		if l.Header == to {
			for _, lt := range l.Latches {
				if lt == from {
					return true
				}
			}
		}
	}
	return false
}

// NewForest assembles a Forest over n blocks from already-detected loops —
// the decode path of the serialized analysis artifact (internal/core).
// Loops must be in Find's order (ascending header) with Parent and Depth
// filled; InnermostOf is recomputed with Find's innermost rule, so a
// rebuilt forest is indistinguishable from a detected one.
func NewForest(ls []*Loop, n int) *Forest {
	f := &Forest{Loops: ls, InnermostOf: make([]int, n)}
	for i := range f.InnermostOf {
		f.InnermostOf[i] = -1
	}
	for i, l := range ls {
		for v := range l.Body {
			cur := f.InnermostOf[v]
			if cur == -1 || len(f.Loops[cur].Body) > len(l.Body) {
				f.InnermostOf[v] = i
			}
		}
	}
	return f
}

// Find detects the natural loops of the graph given by succs using its
// dominator tree (rooted at the CFG entry).
func Find(succs [][]int, domTree *dom.Tree) *Forest {
	n := len(succs)
	byHeader := map[int]*Loop{}
	preds := dom.Reverse(succs)

	for t := 0; t < n; t++ {
		if !domTree.Reachable(t) {
			continue
		}
		for _, h := range succs[t] {
			if !domTree.Dominates(h, t) {
				continue // not a back edge
			}
			l := byHeader[h]
			if l == nil {
				l = &Loop{Header: h, Body: map[int]bool{h: true}, Parent: -1}
				byHeader[h] = l
			}
			l.Latches = append(l.Latches, t)
			// Natural loop body: reverse reachability from the latch,
			// stopping at the header (already in Body).
			stack := []int{t}
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Body[v] {
					continue
				}
				l.Body[v] = true
				for _, p := range preds[v] {
					if !l.Body[p] && domTree.Reachable(p) {
						stack = append(stack, p)
					}
				}
			}
		}
	}

	f := &Forest{InnermostOf: make([]int, n)}
	for i := range f.InnermostOf {
		f.InnermostOf[i] = -1
	}
	headers := make([]int, 0, len(byHeader))
	for h := range byHeader {
		headers = append(headers, h)
	}
	sort.Ints(headers)
	for _, h := range headers {
		f.Loops = append(f.Loops, byHeader[h])
	}

	// Nesting: loop A is nested in B when B contains A's header and A != B.
	// Parent = smallest containing loop.
	for i, a := range f.Loops {
		best, bestSize := -1, 1<<62
		for j, b := range f.Loops {
			if i == j || !b.Body[a.Header] || len(b.Body) <= len(a.Body) {
				continue
			}
			if len(b.Body) < bestSize {
				best, bestSize = j, len(b.Body)
			}
		}
		a.Parent = best
	}
	for i, l := range f.Loops {
		d := 1
		for p := l.Parent; p >= 0; p = f.Loops[p].Parent {
			d++
		}
		l.Depth = d
		for v := range l.Body {
			cur := f.InnermostOf[v]
			if cur == -1 || len(f.Loops[cur].Body) > len(l.Body) {
				f.InnermostOf[v] = i
			}
		}
	}
	return f
}
