package loops

import (
	"testing"

	"repro/internal/dom"
)

func find(succs [][]int) *Forest {
	return Find(succs, dom.Compute(succs, 0))
}

func TestSimpleLoop(t *testing.T) {
	// 0 -> 1 -> 2 -> 1, 2 -> 3
	succs := [][]int{{1}, {2}, {1, 3}, {}}
	f := find(succs)
	if len(f.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(f.Loops))
	}
	l := f.Loops[0]
	if l.Header != 1 || len(l.Latches) != 1 || l.Latches[0] != 2 {
		t.Fatalf("loop structure wrong: %+v", l)
	}
	if !l.Contains(1) || !l.Contains(2) || l.Contains(0) || l.Contains(3) {
		t.Fatalf("loop body wrong: %v", l.Body)
	}
	exits := l.ExitBlocks(succs)
	if len(exits) != 1 || exits[0] != 2 {
		t.Fatalf("loop exits = %v, want [2]", exits)
	}
}

func TestNestedLoops(t *testing.T) {
	// outer: 1..4, inner: 2..3
	// 0 -> 1 -> 2 -> 3 -> 2 (inner back), 3 -> 4 -> 1 (outer back), 4 -> 5
	succs := [][]int{{1}, {2}, {3}, {2, 4}, {1, 5}, {}}
	f := find(succs)
	if len(f.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(f.Loops))
	}
	var inner, outer *Loop
	for _, l := range f.Loops {
		if l.Header == 2 {
			inner = l
		}
		if l.Header == 1 {
			outer = l
		}
	}
	if inner == nil || outer == nil {
		t.Fatalf("missing loops: %+v", f.Loops)
	}
	if inner.Depth != 2 || outer.Depth != 1 {
		t.Fatalf("depths inner=%d outer=%d, want 2 and 1", inner.Depth, outer.Depth)
	}
	if f.Loops[inner.Parent] != outer {
		t.Fatalf("inner loop's parent is not the outer loop")
	}
	if !outer.Contains(2) || !outer.Contains(3) || inner.Contains(4) {
		t.Fatalf("bodies wrong: inner=%v outer=%v", inner.Body, outer.Body)
	}
	// InnermostOf: 3 belongs to the inner loop, 4 to the outer.
	if f.Loops[f.InnermostOf[3]] != inner || f.Loops[f.InnermostOf[4]] != outer {
		t.Fatalf("InnermostOf wrong: %v", f.InnermostOf)
	}
	if f.InnermostOf[0] != -1 || f.InnermostOf[5] != -1 {
		t.Fatalf("non-loop blocks must have no innermost loop")
	}
}

func TestMultipleLatchesMerge(t *testing.T) {
	// Two back edges to the same header merge into one natural loop:
	// 0 -> 1 -> 2 -> 1 and 1 -> 3 -> 1, 2 -> 4.
	succs := [][]int{{1}, {2, 3}, {1, 4}, {1}, {}}
	f := find(succs)
	if len(f.Loops) != 1 {
		t.Fatalf("found %d loops, want 1 merged", len(f.Loops))
	}
	if len(f.Loops[0].Latches) != 2 {
		t.Fatalf("latches = %v, want two", f.Loops[0].Latches)
	}
}

func TestIsBackEdge(t *testing.T) {
	succs := [][]int{{1}, {2}, {1, 3}, {}}
	f := find(succs)
	if !f.IsBackEdge(2, 1) {
		t.Fatalf("2->1 must be a back edge")
	}
	if f.IsBackEdge(1, 2) || f.IsBackEdge(2, 3) {
		t.Fatalf("forward edges misclassified as back edges")
	}
}

func TestNoLoops(t *testing.T) {
	succs := [][]int{{1, 2}, {3}, {3}, {}}
	f := find(succs)
	if len(f.Loops) != 0 {
		t.Fatalf("acyclic graph has loops: %+v", f.Loops)
	}
}

func TestLoopHeaderOf(t *testing.T) {
	succs := [][]int{{1}, {2}, {1, 3}, {}}
	f := find(succs)
	if _, ok := f.LoopHeaderOf(1); !ok {
		t.Fatalf("block 1 is a header")
	}
	if _, ok := f.LoopHeaderOf(2); ok {
		t.Fatalf("block 2 is not a header")
	}
}

func TestSelfLoop(t *testing.T) {
	succs := [][]int{{1}, {1, 2}, {}}
	f := find(succs)
	if len(f.Loops) != 1 {
		t.Fatalf("self loop not found")
	}
	l := f.Loops[0]
	if l.Header != 1 || len(l.Body) != 1 || !l.Contains(1) {
		t.Fatalf("self loop structure wrong: %+v", l)
	}
}

// TestUnreachableBackEdge: a cycle not reachable from the entry must not
// produce a loop (its "back edge" has no dominator relation).
func TestUnreachableBackEdge(t *testing.T) {
	succs := [][]int{{1}, {}, {3}, {2}}
	f := find(succs)
	if len(f.Loops) != 0 {
		t.Fatalf("unreachable cycle produced loops: %+v", f.Loops)
	}
}
