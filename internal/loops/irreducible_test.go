// Irreducible-graph tests live in an external test package so they can
// drive loops.Find through the progen generators (progen itself imports
// internal/loops, so an internal test package would cycle).
package loops_test

import (
	"testing"

	"repro/internal/dom"
	"repro/internal/loops"
	"repro/internal/progen"
)

func find(succs [][]int) *loops.Forest {
	return loops.Find(succs, dom.Compute(succs, 0))
}

// TestMultiEntryLoopIsNotNatural: the classic irreducible diamond — a
// cycle 1↔2 entered at both 1 and 2 — contains no back edge whose target
// dominates its source, so natural-loop detection must find nothing.
func TestMultiEntryLoopIsNotNatural(t *testing.T) {
	succs := [][]int{
		0: {1, 2},
		1: {2, 3},
		2: {1},
		3: {},
	}
	f := find(succs)
	if len(f.Loops) != 0 {
		t.Fatalf("irreducible cycle reported as %d natural loop(s): %+v", len(f.Loops), f.Loops)
	}
	if f.IsBackEdge(2, 1) || f.IsBackEdge(1, 2) {
		t.Fatalf("cross edges of the irreducible cycle classified as back edges")
	}
}

// TestPartiallyIrreducible: a proper natural loop must still be found when
// an unrelated irreducible cycle exists in the same graph.
func TestPartiallyIrreducible(t *testing.T) {
	succs := [][]int{
		0: {1, 4},
		1: {2},     // natural loop header (dominates its latch 2)
		2: {1, 3},  // latch
		3: {7},
		4: {5, 6},  // entry a of the irreducible cycle 5↔6
		5: {6, 7},
		6: {5},
		7: {},
	}
	f := find(succs)
	if len(f.Loops) != 1 {
		t.Fatalf("want exactly the natural loop at 1, got %d: %+v", len(f.Loops), f.Loops)
	}
	l := f.Loops[0]
	if l.Header != 1 || !l.Body[2] || l.Body[5] || l.Body[6] {
		t.Fatalf("natural loop mis-shaped: %+v", l)
	}
	if l.Depth != 1 || l.Parent != -1 {
		t.Fatalf("top-level loop has depth %d parent %d", l.Depth, l.Parent)
	}
}

// TestSelfLoopForest: a node branching to itself is a one-node natural
// loop that is its own latch.
func TestSelfLoopForest(t *testing.T) {
	succs := [][]int{
		0: {1},
		1: {1, 2},
		2: {},
	}
	f := find(succs)
	if len(f.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(f.Loops))
	}
	l := f.Loops[0]
	if l.Header != 1 || len(l.Latches) != 1 || l.Latches[0] != 1 || len(l.Body) != 1 {
		t.Fatalf("self-loop mis-shaped: %+v", l)
	}
	if f.InnermostOf[1] != 0 || f.InnermostOf[0] != -1 {
		t.Fatalf("InnermostOf wrong: %v", f.InnermostOf)
	}
}

// TestJumpIntoLoopBody: an edge bypassing the header into the body makes
// the header no longer dominate the latch; the loop must be dropped
// entirely rather than reported with a wrong body.
func TestJumpIntoLoopBody(t *testing.T) {
	succs := [][]int{
		0: {1, 2}, // 0→2 jumps straight into the body
		1: {2},    // would-be header
		2: {3},
		3: {1, 4}, // latch edge 3→1
		4: {},
	}
	f := find(succs)
	if len(f.Loops) != 0 {
		t.Fatalf("loop with a bypassed header reported: %+v", f.Loops)
	}
}

// TestForestInvariantsOnGeneratedIrreducibleCFGs runs the full invariant
// battery (latches dominated by headers, closed bodies, consistent
// nesting, exact InnermostOf) over generated noisy and fully random
// graphs, which are irreducible in large numbers.
func TestForestInvariantsOnGeneratedIrreducibleCFGs(t *testing.T) {
	for seed := uint64(0); seed < 400; seed++ {
		for _, shape := range []progen.Shape{progen.ShapeNoisy, progen.ShapeRandom} {
			c := progen.GenCFGShaped(seed, shape, 16)
			if err := progen.VerifyLoops(c.Succs, c.Entry); err != nil {
				t.Fatalf("seed %d shape %v: %v\n%s", seed, shape, err, c.Dump())
			}
		}
	}
}
