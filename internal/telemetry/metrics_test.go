package telemetry

import (
	"strings"
	"testing"
)

func TestCounterOwnedAndRegistered(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("owned counter = %d, want 5", got)
	}
	if c2 := r.Counter("a"); c2 != c {
		t.Fatalf("same name returned a different counter")
	}

	var storage int64 = 7
	ext := r.RegisterCounter("b", &storage)
	storage += 3 // the hot loop increments its own field
	if got := ext.Value(); got != 10 {
		t.Fatalf("external counter = %d, want 10", got)
	}
	if v, ok := r.CounterValue("b"); !ok || v != 10 {
		t.Fatalf("CounterValue(b) = %d,%v", v, ok)
	}

	// Re-binding replaces storage (a fresh run reusing the registry).
	var storage2 int64 = 100
	if c3 := r.RegisterCounter("b", &storage2); c3 != ext || c3.Value() != 100 {
		t.Fatalf("rebind: got %d, want 100 on the same handle", c3.Value())
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(4)
	g.SetMax(2)
	if g.Value() != 4 {
		t.Fatalf("SetMax lowered the gauge: %d", g.Value())
	}
	g.SetMax(9)
	if v, ok := r.GaugeValue("g"); !ok || v != 9 {
		t.Fatalf("GaugeValue = %d,%v, want 9", v, ok)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{1, 2, 4})
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("bucket shapes: %d bounds, %d counts", len(bounds), len(counts))
	}
	// <=1: {0,1}; (1..2]: {2}; (2..4]: {3,4}; >4: {5,100}
	want := []uint64{2, 1, 2, 2}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 7 || h.Sum() != 115 || h.Min() != 0 || h.Max() != 100 {
		t.Fatalf("count=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if mean := h.Mean(); mean < 16.4 || mean > 16.5 {
		t.Fatalf("mean = %f", mean)
	}
	if h2 := r.Histogram("h", []int64{99}); h2 != h {
		t.Fatalf("same name returned a different histogram")
	}
}

func TestExpBounds(t *testing.T) {
	got := ExpBounds(4, 5)
	want := []int64{4, 8, 16, 32, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBounds = %v, want %v", got, want)
		}
	}
	if b := ExpBounds(0, 2); b[0] != 1 || b[1] != 2 {
		t.Fatalf("ExpBounds clamps first to 1: %v", b)
	}
}

func TestWriteSummary(t *testing.T) {
	r := NewRegistry()
	r.Counter("machine.mispredicts").Add(3)
	r.Gauge("machine.cycles").Set(1000)
	h := r.Histogram("machine.task_lifetime_cycles", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	var b strings.Builder
	if err := r.WriteSummary(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"counter", "machine.mispredicts", "3",
		"gauge", "machine.cycles", "1000",
		"histogram", "machine.task_lifetime_cycles", "count=3",
		"<= 10", "(10..100]", "> 100",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	// Name-sorted: cycles gauge before mispredicts counter.
	if strings.Index(out, "machine.cycles") > strings.Index(out, "machine.mispredicts") {
		t.Fatalf("summary not name-sorted:\n%s", out)
	}
}

// TestWriteSummaryDeterministic: the summary must be byte-identical
// across repeated renders (map iteration must never leak into the
// output), and a name registered under several metric types must appear
// exactly once per type, counter first — the old renderer printed such a
// name's counter twice and dropped the gauge.
func TestWriteSummaryDeterministic(t *testing.T) {
	render := func() string {
		r := NewRegistry()
		r.Counter("dual").Add(7)
		r.Gauge("dual").Set(9)
		r.Histogram("dual", []int64{4}).Observe(1)
		r.Counter("alpha").Add(1)
		r.Gauge("zeta").Set(2)
		var b strings.Builder
		if err := r.WriteSummary(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	out := render()
	for i := 0; i < 10; i++ {
		if again := render(); again != out {
			t.Fatalf("summary not deterministic:\n--- first\n%s--- again\n%s", out, again)
		}
	}
	for _, line := range []string{
		"counter   dual",
		"gauge     dual",
		"histogram dual",
	} {
		if n := strings.Count(out, line); n != 1 {
			t.Fatalf("%q appears %d times, want 1:\n%s", line, n, out)
		}
	}
	// Name-major order: all of dual's entries sit between alpha and zeta,
	// and within a name the counter precedes the gauge.
	ia := strings.Index(out, "alpha")
	ic := strings.Index(out, "counter   dual")
	ig := strings.Index(out, "gauge     dual")
	ih := strings.Index(out, "histogram dual")
	iz := strings.Index(out, "zeta")
	if !(ia < ic && ic < ig && ig < ih && ih < iz) {
		t.Fatalf("summary order wrong (alpha=%d counter=%d gauge=%d hist=%d zeta=%d):\n%s",
			ia, ic, ig, ih, iz, out)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Gauge("g").Set(3)
	snap := r.Snapshot()
	if snap["c"] != 2 || snap["g"] != 3 {
		t.Fatalf("snapshot = %v", snap)
	}
}
