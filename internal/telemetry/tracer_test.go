package telemetry

import (
	"strings"
	"testing"
)

func TestTracerNoWrap(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 5; i++ {
		tr.Emit(int64(i), EvMispredict, 0, int64(i), 0)
	}
	ev := tr.Events()
	if len(ev) != 5 || tr.Total() != 5 || tr.Dropped() != 0 {
		t.Fatalf("len=%d total=%d dropped=%d", len(ev), tr.Total(), tr.Dropped())
	}
	for i, e := range ev {
		if e.Cycle != int64(i) {
			t.Fatalf("event %d at cycle %d", i, e.Cycle)
		}
	}
}

func TestTracerWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(int64(i), EvDivert, int32(i), int64(i), 0)
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("buffered %d, want 4", len(ev))
	}
	// The ring keeps the most recent tail, chronologically ordered.
	for i, e := range ev {
		if want := int64(6 + i); e.Cycle != want || e.A != want {
			t.Fatalf("event %d = cycle %d, want %d", i, e.Cycle, want)
		}
	}
	if tr.Total() != 10 || tr.Dropped() != 6 || tr.Cap() != 4 {
		t.Fatalf("total=%d dropped=%d cap=%d", tr.Total(), tr.Dropped(), tr.Cap())
	}
}

func TestTracerExactFill(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 3; i++ {
		tr.Emit(int64(i), EvTaskSpawn, 0, 0, 0)
	}
	ev := tr.Events()
	if len(ev) != 3 || tr.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", len(ev), tr.Dropped())
	}
	for i, e := range ev {
		if e.Cycle != int64(i) {
			t.Fatalf("event %d at cycle %d", i, e.Cycle)
		}
	}
}

func TestTracerMinCapacity(t *testing.T) {
	tr := NewTracer(0)
	tr.Emit(1, EvViolation, 0, 0, 0)
	tr.Emit(2, EvViolation, 0, 0, 0)
	ev := tr.Events()
	if len(ev) != 1 || ev[0].Cycle != 2 || tr.Dropped() != 1 {
		t.Fatalf("events=%v dropped=%d", ev, tr.Dropped())
	}
}

func TestEventKindString(t *testing.T) {
	if EvTaskSpawn.String() != "task_spawn" || EvICacheStall.String() != "icache_stall" {
		t.Fatalf("kind names wrong: %s %s", EvTaskSpawn, EvICacheStall)
	}
	if !strings.Contains(EventKind(200).String(), "200") {
		t.Fatalf("out-of-range kind: %s", EventKind(200))
	}
}

func TestCollectorConfig(t *testing.T) {
	if c := NewCollector(Config{}); c.Tracer != nil || c.Registry == nil {
		t.Fatalf("zero config should be metrics-only")
	}
	if c := NewCollector(Config{TraceEvents: -1}); c.Tracer == nil || c.Tracer.Cap() != DefaultTraceEvents {
		t.Fatalf("negative TraceEvents should select the default capacity")
	}
	c := NewCollector(Config{TraceEvents: 16})
	c.Registry.Counter("x").Inc()
	c.Tracer.Emit(3, EvMispredict, 1, 0, 0)
	var b strings.Builder
	if err := c.WriteSummary(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "x") || !strings.Contains(out, "emitted=1") {
		t.Fatalf("collector summary wrong:\n%s", out)
	}
}
