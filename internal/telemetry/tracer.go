package telemetry

import "fmt"

// EventKind classifies one cycle-timeline event.
type EventKind uint8

// The machine-level event vocabulary. A and B are kind-specific payloads
// (documented per kind; trace indices, PCs, latencies, occupancies).
const (
	EvNone          EventKind = iota
	EvTaskSpawn               // task born; A = first trace index, B = spawn kind (core.Kind), task 0: B = -1
	EvTaskRetire              // task's whole segment retired; A = start index, B = end index
	EvTaskSquash              // task killed by a violation squash; A = start index, B = fetch index reached
	EvMispredict              // branch mispredicted in task; A = trace index, B = PC
	EvBranchResolve           // task's pending redirect resolved; A = trace index of the branch
	EvICacheStall             // I-cache miss stalled the task's fetch; A = PC, B = stall cycles
	EvDivert                  // instruction entered the divert queue; A = trace index, B = queue occupancy after
	EvViolation               // memory-dependence violation squash begins; A = load index, B = store index
	EvReclaim                 // youngest task reclaimed for ROB space; A = start index, B = fetch index reached
	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	"none", "task_spawn", "task_retire", "task_squash", "mispredict",
	"branch_resolve", "icache_stall", "divert", "violation", "reclaim",
}

// String returns the snake_case kind name used in exported traces.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one timeline record: something happened to a task at a cycle.
type Event struct {
	Cycle int64
	A, B  int64
	Task  int32
	Kind  EventKind
}

// Tracer is a bounded ring buffer of Events. When full, the oldest events
// are overwritten, so the buffer always holds the most recent tail of the
// run — the part a diagnosis usually needs. Emit is a few stores; there is
// no locking (one tracer per run, one goroutine per run).
type Tracer struct {
	buf   []Event
	next  int
	total uint64
}

// NewTracer returns a tracer holding at most capacity events (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Emit records one event, overwriting the oldest if the ring is full.
func (t *Tracer) Emit(cycle int64, kind EventKind, task int32, a, b int64) {
	e := Event{Cycle: cycle, Kind: kind, Task: task, A: a, B: b}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
	}
	t.next++
	if t.next == cap(t.buf) {
		t.next = 0
	}
	t.total++
}

// Events returns the buffered events in chronological order (a copy).
func (t *Tracer) Events() []Event {
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) == cap(t.buf) { // wrapped: oldest is at next
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
		return out
	}
	return append(out, t.buf...)
}

// Total returns how many events were emitted over the run.
func (t *Tracer) Total() uint64 { return t.total }

// Dropped returns how many emitted events were overwritten.
func (t *Tracer) Dropped() uint64 {
	if t.total > uint64(cap(t.buf)) {
		return t.total - uint64(cap(t.buf))
	}
	return 0
}

// Cap returns the ring capacity in events.
func (t *Tracer) Cap() int { return cap(t.buf) }

func (t *Tracer) summaryLine() string {
	return fmt.Sprintf("tracer    %-36s emitted=%d buffered=%d dropped=%d\n",
		"events", t.total, len(t.buf), t.Dropped())
}
