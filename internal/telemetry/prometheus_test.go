package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updatePromGolden = flag.Bool("update-prom", false, "rewrite the Prometheus exposition golden")

// promTestRegistry builds a registry with fixed values covering every
// metric type, a labeled series pair, and an empty histogram.
func promTestRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("server.jobs.submitted").Add(7)
	reg.Counter("server.http.requests").Add(41)
	reg.Gauge("pool.workers").Set(4)
	h := reg.Histogram("server.phase.simulate_ms", []int64{1, 10, 100})
	h.Observe(3)
	h.Observe(12)
	h.Observe(12)
	h.Observe(4000)
	reg.Histogram("server.phase.encode_ms", []int64{1, 10, 100}) // empty
	hs := NewHistSet()
	hs.Observe(`server.http.latency_ms{route="POST /v1/jobs"}`, []int64{1, 10}, 2)
	hs.Observe(`server.http.latency_ms{route="GET /metrics"}`, []int64{1, 10}, 1)
	hs.Observe(`server.http.latency_ms{route="GET /metrics"}`, []int64{1, 10}, 50)
	hs.Fill(reg)
	return reg
}

// TestWritePrometheusGolden pins a stable-name subset of the exposition:
// renaming server.jobs.submitted or changing the histogram rendering is a
// deliberate, reviewed act.
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := promTestRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden.txt")
	if *updatePromGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update-prom to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden (run with -update-prom if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestWritePrometheusValidates runs the exposition checker over the
// writer's own output: unique names, TYPE-before-samples, monotone
// cumulative buckets, HELP lines for the required families.
func TestWritePrometheusValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := promTestRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	err := CheckExposition(bytes.NewReader(buf.Bytes()),
		"server_jobs_submitted", "pool_workers", "server_phase_simulate_ms", "server_http_latency_ms")
	if err != nil {
		t.Fatalf("self-check failed: %v\n%s", err, buf.Bytes())
	}
}

// TestCheckExpositionRejects proves the checker is not a rubber stamp.
func TestCheckExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE":          "foo 1\n",
		"duplicate series": "# TYPE foo counter\nfoo 1\nfoo 2\n",
		"duplicate TYPE":   "# TYPE foo counter\n# TYPE foo gauge\n",
		"bad value":        "# TYPE foo counter\nfoo abc\n",
		"bad name":         "# TYPE foo counter\n1foo 2\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" + `h_bucket{le="+Inf"} 5` + "\n",
		"missing +Inf": "# TYPE h histogram\n" + `h_bucket{le="1"} 5` + "\n",
		"count mismatch": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_count 7\n",
	}
	for name, in := range cases {
		if err := CheckExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: checker accepted invalid exposition:\n%s", name, in)
		}
	}
	if err := CheckExposition(strings.NewReader("# TYPE foo counter\nfoo 1\n"), "missing_family"); err == nil {
		t.Error("missing required family not reported")
	}
}

// TestEmptyHistogramMinMax is the satellite regression: an unobserved
// histogram must report min=0 max=0, not internal sentinels, so exporters
// never render min > max.
func TestEmptyHistogramMinMax(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("empty", []int64{1, 2})
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram min=%d max=%d, want 0/0", h.Min(), h.Max())
	}
	if h.Min() > h.Max() {
		t.Fatal("empty histogram reports min > max")
	}
	var buf bytes.Buffer
	if err := reg.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "min=0 max=0") {
		t.Fatalf("summary renders sentinels: %s", buf.String())
	}
	h.Observe(-5)
	if h.Min() != -5 || h.Max() != -5 {
		t.Fatalf("after one sample min=%d max=%d, want -5/-5", h.Min(), h.Max())
	}
}

// TestHistogramCloneIsIndependent guards the snapshot path: mutating the
// original after Clone must not leak into the copy.
func TestHistogramCloneIsIndependent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []int64{10})
	h.Observe(5)
	c := h.Clone()
	h.Observe(100)
	if c.Count() != 1 || c.Sum() != 5 {
		t.Fatalf("clone count=%d sum=%d, want 1/5", c.Count(), c.Sum())
	}
	_, counts := c.Buckets()
	if counts[0] != 1 || counts[1] != 0 {
		t.Fatalf("clone buckets = %v", counts)
	}
}

// TestHistSetConcurrent hammers one labeled histogram from many
// goroutines; run under -race this is the service-side thread-safety
// guard Registry handles deliberately do not give.
func TestHistSetConcurrent(t *testing.T) {
	hs := NewHistSet()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				hs.Observe("x", []int64{1, 10, 100}, int64(i%200))
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	reg := NewRegistry()
	hs.Fill(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x_count 8000") {
		t.Fatalf("lost samples:\n%s", buf.String())
	}
}
