package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for the registry.
//
// Registry names are dotted ("server.jobs.submitted"); the exporter mangles
// them to legal Prometheus metric names ("server_jobs_submitted"). A name
// may carry a label suffix in curly braces — the convention HistSet users
// follow for per-route and per-worker series:
//
//	server.http.latency_ms{route="POST /v1/jobs"}
//
// which exports as one sample of the family server_http_latency_ms. Every
// family gets exactly one HELP line (the original dotted name, the closest
// thing to documentation the registry carries) and one TYPE line; histogram
// families render cumulative le-labeled buckets ending at +Inf plus _sum
// and _count series, as scrapers expect.

// promSample is one exported series: a family plus its label set.
type promSample struct {
	labels string // canonical rendered label pairs, no braces; "" = unlabeled
	value  string
	hist   *Histogram
}

// promFamily groups samples sharing a metric family name.
type promFamily struct {
	name    string // mangled family name
	help    string // original dotted name
	typ     string // counter | gauge | histogram
	samples []promSample
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format. Output is deterministic: families in sorted name order, samples
// within a family in sorted label order. GET /metrics?format=prometheus
// serves this on both polyflowd roles.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := map[string]*promFamily{}
	collect := func(rawName, typ string, value string, hist *Histogram) {
		base, labels := splitPromName(rawName)
		name := promName(base)
		// A dotted name registered under more than one metric type would
		// produce conflicting TYPE lines; suffix the later arrivals.
		fam, ok := families[name]
		if ok && fam.typ != typ {
			name += "_" + typ
			fam, ok = families[name]
		}
		if !ok {
			fam = &promFamily{name: name, help: base, typ: typ}
			families[name] = fam
		}
		fam.samples = append(fam.samples, promSample{labels: labels, value: value, hist: hist})
	}
	for name, c := range r.counters {
		collect(name, "counter", strconv.FormatInt(*c.p, 10), nil)
	}
	for name, g := range r.gauges {
		collect(name, "gauge", strconv.FormatInt(g.v, 10), nil)
	}
	for name, h := range r.hists {
		collect(name, "histogram", "", h)
	}
	r.mu.Unlock()

	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, name := range names {
		fam := families[name]
		sort.Slice(fam.samples, func(i, j int) bool { return fam.samples[i].labels < fam.samples[j].labels })
		fmt.Fprintf(bw, "# HELP %s %s\n", fam.name, fam.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.name, fam.typ)
		for _, s := range fam.samples {
			if fam.typ == "histogram" {
				writePromHistogram(bw, fam.name, s.labels, s.hist)
				continue
			}
			fmt.Fprintf(bw, "%s%s %s\n", fam.name, braced(s.labels), s.value)
		}
	}
	return bw.Flush()
}

// writePromHistogram renders one histogram series: cumulative buckets with
// ascending le bounds ending at +Inf, then _sum and _count.
func writePromHistogram(w io.Writer, name, labels string, h *Histogram) {
	bounds, counts := h.Buckets()
	var cum uint64
	for i, b := range bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, braced(joinLabels(labels, fmt.Sprintf(`le="%d"`, b))), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, braced(joinLabels(labels, `le="+Inf"`)), h.Count())
	fmt.Fprintf(w, "%s_sum%s %d\n", name, braced(labels), h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", name, braced(labels), h.Count())
}

// splitPromName splits a registry name into its base and an optional label
// suffix ("x{a=\"b\"}" -> "x", `a="b"`).
func splitPromName(name string) (base, labels string) {
	if !strings.HasSuffix(name, "}") {
		return name, ""
	}
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// promName mangles a dotted registry name into a legal Prometheus metric
// name: [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// PromLabel renders one key="value" label pair with the exposition
// format's escaping, for composing labeled registry names:
//
//	reg.Counter("cluster.worker.retries{" + telemetry.PromLabel("worker", addr) + "}")
func PromLabel(key, value string) string {
	var b strings.Builder
	b.WriteString(key)
	b.WriteString(`="`)
	for _, r := range value {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// CheckExposition validates Prometheus text exposition read from r:
//
//   - every line is a HELP/TYPE comment or a well-formed sample
//   - each family has exactly one TYPE line, appearing before its samples
//   - (family, labels) sample combinations are unique
//   - histogram buckets are cumulative (monotone nondecreasing in le
//     order), end at le="+Inf", and the +Inf bucket equals _count
//   - every name in require appears as a family
//
// The CI smoke jobs pipe live /metrics output through ci/promcheck, which
// wraps this; the telemetry tests run it over WritePrometheus directly.
func CheckExposition(r io.Reader, require ...string) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	types := map[string]string{}
	helps := map[string]bool{}
	seen := map[string]bool{}
	// histogram accounting: family+labels (le stripped) -> le -> value
	buckets := map[string]map[float64]float64{}
	counts := map[string]float64{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(f) < 1 || f[0] == "" {
				return fmt.Errorf("line %d: malformed HELP: %q", lineNo, line)
			}
			helps[f[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(f) != 2 {
				return fmt.Errorf("line %d: malformed TYPE: %q", lineNo, line)
			}
			name, typ := f[0], f[1]
			if _, dup := types[name]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown type %q for %s", lineNo, typ, name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		series := name + braced(labels)
		if seen[series] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, series)
		}
		seen[series] = true
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name && types[trimmed] == "histogram" {
				family = trimmed
				break
			}
		}
		if _, ok := types[family]; !ok {
			return fmt.Errorf("line %d: sample %s has no preceding TYPE line", lineNo, series)
		}
		if types[family] == "histogram" {
			base, le, isBucket := stripLE(labels)
			key := family + "|" + base
			switch {
			case strings.HasSuffix(name, "_bucket") && isBucket:
				if buckets[key] == nil {
					buckets[key] = map[float64]float64{}
				}
				buckets[key][le] = value
			case strings.HasSuffix(name, "_count"):
				counts[key] = value
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, bs := range buckets {
		les := make([]float64, 0, len(bs))
		for le := range bs {
			les = append(les, le)
		}
		sort.Float64s(les)
		if len(les) == 0 || !math.IsInf(les[len(les)-1], 1) {
			return fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", key)
		}
		prevCum := -1.0
		for _, le := range les {
			if bs[le] < prevCum {
				return fmt.Errorf("histogram %s: bucket le=%g count %g < preceding %g (not cumulative)", key, le, bs[le], prevCum)
			}
			prevCum = bs[le]
		}
		if c, ok := counts[key]; ok && bs[les[len(les)-1]] != c {
			return fmt.Errorf("histogram %s: +Inf bucket %g != _count %g", key, bs[les[len(les)-1]], c)
		}
	}
	for _, name := range require {
		if _, ok := types[name]; !ok {
			return fmt.Errorf("required family %s missing from exposition", name)
		}
		if !helps[name] {
			return fmt.Errorf("required family %s has no HELP line", name)
		}
	}
	return nil
}

// parsePromSample splits "name{labels} value" (labels optional) and parses
// the value.
func parsePromSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("malformed sample: %q", line)
		}
		name, labels, rest = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
	} else {
		f := strings.SplitN(line, " ", 2)
		if len(f) != 2 {
			return "", "", 0, fmt.Errorf("malformed sample: %q", line)
		}
		name, rest = f[0], strings.TrimSpace(f[1])
	}
	if name == "" || !validPromName(name) {
		return "", "", 0, fmt.Errorf("illegal metric name in %q", line)
	}
	// The value may be followed by an optional timestamp; we emit none, but
	// tolerate one to stay a real format checker.
	vf := strings.Fields(rest)
	if len(vf) < 1 || len(vf) > 2 {
		return "", "", 0, fmt.Errorf("malformed sample value: %q", line)
	}
	value, err = strconv.ParseFloat(vf[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad sample value in %q: %w", line, err)
	}
	return name, labels, value, nil
}

func validPromName(name string) bool {
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// stripLE removes the le pair from a bucket label string, returning the
// remaining labels, the parsed le bound, and whether le was present.
func stripLE(labels string) (base string, le float64, ok bool) {
	parts := splitLabelPairs(labels)
	kept := parts[:0]
	for _, p := range parts {
		if strings.HasPrefix(p, `le="`) && strings.HasSuffix(p, `"`) {
			raw := p[len(`le="`) : len(p)-1]
			if raw == "+Inf" {
				le, ok = math.Inf(1), true
				continue
			}
			v, err := strconv.ParseFloat(raw, 64)
			if err == nil {
				le, ok = v, true
				continue
			}
		}
		kept = append(kept, p)
	}
	return strings.Join(kept, ","), le, ok
}

// splitLabelPairs splits rendered label pairs on commas outside quotes.
func splitLabelPairs(labels string) []string {
	if labels == "" {
		return nil
	}
	var out []string
	var b strings.Builder
	inQuote, escaped := false, false
	for _, r := range labels {
		switch {
		case escaped:
			b.WriteRune(r)
			escaped = false
		case r == '\\' && inQuote:
			b.WriteRune(r)
			escaped = true
		case r == '"':
			b.WriteRune(r)
			inQuote = !inQuote
		case r == ',' && !inQuote:
			out = append(out, b.String())
			b.Reset()
		default:
			b.WriteRune(r)
		}
	}
	if b.Len() > 0 {
		out = append(out, b.String())
	}
	return out
}
