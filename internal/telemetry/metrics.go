package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Registry is a named set of counters, gauges and histograms for one run.
// Lookup and registration are mutex-protected so setup may happen from any
// goroutine; the metric *handles* are single-writer (one simulation run)
// and read after the run completes.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter is a monotonically increasing int64. Its storage is either owned
// (Counter method) or external (RegisterCounter) — external storage lets a
// hot loop keep incrementing its own struct field while the registry
// exports it by name.
type Counter struct {
	name string
	p    *int64
	own  int64
}

// Inc adds one.
func (c *Counter) Inc() { *c.p++ }

// Add adds n.
func (c *Counter) Add(n int64) { *c.p += n }

// Value returns the current count.
func (c *Counter) Value() int64 { return *c.p }

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Counter returns the named counter with registry-owned storage, creating
// it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	c.p = &c.own
	r.counters[name] = c
	return c
}

// RegisterCounter binds the named counter to external storage. Re-binding
// an existing name replaces its storage — this is how a fresh run re-uses
// a registry.
func (r *Registry) RegisterCounter(name string, p *int64) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		c.p = p
		return c
	}
	c := &Counter{name: name, p: p}
	r.counters[name] = c
	return c
}

// CounterValue reports the named counter's value, if registered.
func (r *Registry) CounterValue(name string) (int64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		return 0, false
	}
	return *c.p, true
}

// Gauge is a last-value int64 metric.
type Gauge struct {
	name string
	v    int64
}

// Set records v.
func (g *Gauge) Set(v int64) { g.v = v }

// SetMax records v if it exceeds the current value.
func (g *Gauge) SetMax(v int64) {
	if v > g.v {
		g.v = v
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v }

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// GaugeValue reports the named gauge's value, if registered.
func (r *Registry) GaugeValue(name string) (int64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		return 0, false
	}
	return g.v, true
}

// Histogram is a fixed-bucket histogram over int64 samples. Bucket i counts
// samples v with v <= bounds[i] (and bounds[i-1] < v); the final overflow
// bucket counts samples above the last bound.
type Histogram struct {
	name   string
	bounds []int64  // ascending upper bounds
	counts []uint64 // len(bounds)+1, last is overflow
	count  uint64
	sum    int64
	min    int64
	max    int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(k int) bool { return v <= h.bounds[k] })
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest sample. Before any sample it reports 0, never
// an internal sentinel, so exporters render an empty histogram with a
// coherent min <= max instead of an impossible range.
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample (0 before any sample, like Min).
func (h *Histogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the sample mean (0 before any sample).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Buckets returns the bucket upper bounds and the per-bucket counts (one
// more count than bounds: the overflow bucket).
func (h *Histogram) Buckets() ([]int64, []uint64) { return h.bounds, h.counts }

// Name returns the registered name.
func (h *Histogram) Name() string { return h.name }

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (bounds must be ascending; later calls with the
// same name ignore bounds and return the existing histogram).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	h := &Histogram{name: name, bounds: b, counts: make([]uint64, len(b)+1)}
	r.hists[name] = h
	return h
}

// Clone returns an independent copy of the histogram, including its
// counts. A concurrent collector (HistSet) clones under its own lock to
// hand a consistent snapshot to a single-writer Registry.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{
		name:   h.name,
		bounds: append([]int64(nil), h.bounds...),
		counts: append([]uint64(nil), h.counts...),
		count:  h.count,
		sum:    h.sum,
		min:    h.min,
		max:    h.max,
	}
	return c
}

// AttachHistogram registers an existing histogram under its own name,
// replacing any histogram already registered there. Snapshot-style
// exporters (the polyflowd /metrics handler) use it to inject cloned
// concurrent histograms into a fresh dump registry.
func (r *Registry) AttachHistogram(h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hists[h.name] = h
}

// ExpBounds returns n ascending bucket bounds starting at first and
// doubling: first, 2*first, 4*first, ... — the standard latency scale.
func ExpBounds(first int64, n int) []int64 {
	if first < 1 {
		first = 1
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = first
		first *= 2
	}
	return out
}

// Snapshot returns all counter and gauge values by name.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out[name] = *c.p
	}
	for name, g := range r.gauges {
		out[name] = g.v
	}
	return out
}

// WriteSummary writes every metric as aligned plain text, in sorted name
// order with each name emitted exactly once per metric type (counter,
// then gauge, then histogram). The order is fully deterministic so
// summary dumps are diffable in CI.
func (r *Registry) WriteSummary(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name := range r.counters {
		names = append(names, name)
	}
	for name := range r.gauges {
		names = append(names, name)
	}
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	// A name registered under more than one metric type appears in the
	// collected list once per type; dedupe so each name renders one pass.
	uniq := names[:0]
	for i, name := range names {
		if i == 0 || name != names[i-1] {
			uniq = append(uniq, name)
		}
	}
	for _, name := range uniq {
		if c := r.counters[name]; c != nil {
			if _, err := fmt.Fprintf(w, "counter   %-36s %d\n", name, *c.p); err != nil {
				return err
			}
		}
		if g := r.gauges[name]; g != nil {
			if _, err := fmt.Fprintf(w, "gauge     %-36s %d\n", name, g.v); err != nil {
				return err
			}
		}
		if h := r.hists[name]; h != nil {
			if err := writeHistogram(w, name, h); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders one histogram's summary line and its non-empty
// buckets.
func writeHistogram(w io.Writer, name string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "histogram %-36s count=%d mean=%.1f min=%d max=%d\n",
		name, h.count, h.Mean(), h.Min(), h.Max()); err != nil {
		return err
	}
	if h.count == 0 {
		return nil
	}
	for i, b := range h.bounds {
		if h.counts[i] == 0 {
			continue
		}
		label := fmt.Sprintf("<= %d", b)
		if i > 0 {
			label = fmt.Sprintf("(%d..%d]", h.bounds[i-1], b)
		}
		if _, err := fmt.Fprintf(w, "          %36s %-16s %d\n", "", label, h.counts[i]); err != nil {
			return err
		}
	}
	if n := len(h.bounds); h.counts[n] > 0 {
		label := "all"
		if n > 0 {
			label = fmt.Sprintf("> %d", h.bounds[n-1])
		}
		if _, err := fmt.Fprintf(w, "          %36s %-16s %d\n", "", label, h.counts[n]); err != nil {
			return err
		}
	}
	return nil
}
