package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// decodedTrace mirrors the exported JSON for validation.
type decodedTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   int64          `json:"ts"`
		Dur  int64          `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func decodeTrace(t *testing.T, data []byte) decodedTrace {
	t.Helper()
	var dt decodedTrace
	if err := json.Unmarshal(data, &dt); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, data)
	}
	return dt
}

// checkMonotonicTS asserts non-decreasing ts over all non-metadata events.
func checkMonotonicTS(t *testing.T, dt decodedTrace) {
	t.Helper()
	last := int64(-1)
	for i, e := range dt.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if e.TS < last {
			t.Fatalf("event %d (%s %s): ts %d < previous %d", i, e.Ph, e.Name, e.TS, last)
		}
		last = e.TS
	}
}

func TestWriteChromeTraceSlots(t *testing.T) {
	// Two overlapping tasks must land on distinct slots; after both end, a
	// third task reuses the lowest freed slot.
	events := []Event{
		{Cycle: 0, Kind: EvTaskSpawn, Task: 0, A: 0, B: -1},
		{Cycle: 5, Kind: EvTaskSpawn, Task: 1, A: 100, B: 1},
		{Cycle: 7, Kind: EvMispredict, Task: 1, A: 120, B: 0x400048},
		{Cycle: 9, Kind: EvBranchResolve, Task: 1, A: 120},
		{Cycle: 10, Kind: EvDivert, Task: 1, A: 130, B: 12},
		{Cycle: 20, Kind: EvViolation, Task: 1, A: 140, B: 90},
		{Cycle: 20, Kind: EvTaskSquash, Task: 1, A: 100, B: 150},
		{Cycle: 30, Kind: EvTaskSpawn, Task: 2, A: 200, B: 3},
		{Cycle: 40, Kind: EvTaskRetire, Task: 2, A: 200, B: 250},
		{Cycle: 41, Kind: EvICacheStall, Task: 0, A: 0x400000, B: 10},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, "unit", events); err != nil {
		t.Fatal(err)
	}
	dt := decodeTrace(t, buf.Bytes())
	checkMonotonicTS(t, dt)

	type slice struct {
		tid     int
		ts, dur int64
		kind    string
		cause   string
	}
	slices := map[string]slice{}
	var haveProcess, haveCounter, haveInstant bool
	for _, e := range dt.TraceEvents {
		switch e.Ph {
		case "X":
			if e.Name != "icache stall" {
				kind, _ := e.Args["kind"].(string)
				cause, _ := e.Args["cause"].(string)
				slices[e.Name] = slice{e.TID, e.TS, e.Dur, kind, cause}
			}
		case "M":
			if e.Name == "process_name" {
				haveProcess = true
			}
		case "C":
			haveCounter = true
		case "i":
			haveInstant = true
		}
	}
	if !haveProcess || !haveCounter || !haveInstant {
		t.Fatalf("missing event classes: process=%v counter=%v instant=%v", haveProcess, haveCounter, haveInstant)
	}
	// Slices carry their spawn category in the name and args (B of the
	// spawn event: -1 root, 1 loopFT, 3 hammock).
	t0, ok0 := slices["task 0 (root)"]
	t1, ok1 := slices["task 1 (loopFT)"]
	t2, ok2 := slices["task 2 (hammock)"]
	if !ok0 || !ok1 || !ok2 {
		t.Fatalf("task slices missing: %v", slices)
	}
	if t0.kind != "root" || t1.kind != "loopFT" || t2.kind != "hammock" {
		t.Fatalf("kind args wrong: %q %q %q", t0.kind, t1.kind, t2.kind)
	}
	// The squashed task carries its cause; retired/still-open tasks none.
	if t1.cause != "memory-violation" {
		t.Fatalf("squashed task cause = %q, want memory-violation", t1.cause)
	}
	if t0.cause != "" || t2.cause != "" {
		t.Fatalf("unexpected causes: root %q, retired %q", t0.cause, t2.cause)
	}
	if t0.tid == t1.tid {
		t.Fatalf("overlapping tasks share slot %d", t0.tid)
	}
	if t2.tid != t1.tid {
		t.Fatalf("task 2 should reuse freed slot %d, got %d", t1.tid, t2.tid)
	}
	// Task 0 never ends: closed at the last cycle + 1.
	if t0.ts != 0 || t0.dur != 42 {
		t.Fatalf("task 0 slice = ts %d dur %d, want 0..42", t0.ts, t0.dur)
	}
	if t1.ts != 5 || t1.dur != 15 {
		t.Fatalf("task 1 slice = ts %d dur %d, want 5..20", t1.ts, t1.dur)
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, "empty", nil); err != nil {
		t.Fatal(err)
	}
	dt := decodeTrace(t, buf.Bytes())
	if len(dt.TraceEvents) != 1 || dt.TraceEvents[0].Ph != "M" {
		t.Fatalf("empty trace should hold only process metadata: %+v", dt.TraceEvents)
	}
}

// TestWriteChromeTraceUnpairedEnd: a retire whose spawn fell off the ring
// must not crash or fabricate a slice.
func TestWriteChromeTraceUnpairedEnd(t *testing.T) {
	events := []Event{
		{Cycle: 50, Kind: EvTaskRetire, Task: 7, A: 0, B: 10},
		{Cycle: 60, Kind: EvTaskSpawn, Task: 8, A: 20, B: 2},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, "partial", events); err != nil {
		t.Fatal(err)
	}
	dt := decodeTrace(t, buf.Bytes())
	checkMonotonicTS(t, dt)
	for _, e := range dt.TraceEvents {
		if strings.HasPrefix(e.Name, "task 7") {
			t.Fatalf("fabricated slice for unpaired retire")
		}
	}
}
