// Package telemetry is the observability substrate of the simulator: a
// low-overhead metrics registry (counters, gauges, fixed-bucket
// histograms), a ring-buffered cycle-timeline event tracer, and exporters
// (Chrome trace-event JSON loadable in Perfetto, plain-text summaries).
//
// The design goal is that publishing metrics costs nothing beyond what the
// simulator already pays: hot-path counters register *external* int64
// storage (the machine's own Stats fields) into the registry, so the hot
// loop keeps its plain field increments and the registry is merely a named
// view over them. The tracer is reached through a nil-checked pointer, so a
// run without a Collector emits no events and touches no telemetry state.
//
// One Collector observes exactly one run: counters are (re)bound to the
// run's storage when the run starts, and the tracer's ring holds that run's
// tail of events. Sharing a Collector across concurrent runs is a data
// race; give each run its own.
//
// See docs/OBSERVABILITY.md for the metric catalog and trace-event schema.
package telemetry

import "io"

// DefaultTraceEvents is the default ring-buffer capacity of a Collector's
// tracer: enough for the interesting tail of a multi-million-cycle run at
// bounded (~3 MB) memory.
const DefaultTraceEvents = 1 << 17

// Config sizes a Collector.
type Config struct {
	// TraceEvents is the tracer ring-buffer capacity in events; 0 creates
	// a metrics-only Collector (no tracer), negative selects
	// DefaultTraceEvents.
	TraceEvents int
}

// Collector bundles the per-run metrics registry and (optionally) the
// cycle-timeline tracer.
type Collector struct {
	Registry *Registry
	Tracer   *Tracer // nil when tracing is disabled
}

// NewCollector builds a Collector per cfg.
func NewCollector(cfg Config) *Collector {
	c := &Collector{Registry: NewRegistry()}
	n := cfg.TraceEvents
	if n < 0 {
		n = DefaultTraceEvents
	}
	if n > 0 {
		c.Tracer = NewTracer(n)
	}
	return c
}

// WriteSummary writes the plain-text per-run summary: every registered
// metric, then tracer occupancy when tracing was on.
func (c *Collector) WriteSummary(w io.Writer) error {
	if err := c.Registry.WriteSummary(w); err != nil {
		return err
	}
	if c.Tracer != nil {
		_, err := io.WriteString(w, c.Tracer.summaryLine())
		return err
	}
	return nil
}
