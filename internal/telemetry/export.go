package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
)

// chromeEvent is one record of the Chrome trace-event format (the JSON
// Perfetto and chrome://tracing load). ts/dur are in microseconds; the
// export maps one simulated cycle to one microsecond.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	S     string         `json:"s,omitempty"`
	CName string         `json:"cname,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// spawnKindName labels a task slice by the spawn category recorded in
// EvTaskSpawn's B payload (-1 marks the initial task).
func spawnKindName(kind int64) string {
	if kind < 0 || kind >= int64(core.NumKinds) {
		return "root"
	}
	return core.Kind(kind).String()
}

// spawnKindColor picks a stable trace-viewer color per spawn category, so
// task tracks read as a Figure-5 distribution at a glance.
func spawnKindColor(kind int64) string {
	switch {
	case kind < 0 || kind >= int64(core.NumKinds):
		return "grey" // root
	case core.Kind(kind) == core.KindLoop:
		return "thread_state_running"
	case core.Kind(kind) == core.KindLoopFT:
		return "rail_response"
	case core.Kind(kind) == core.KindProcFT:
		return "rail_animation"
	case core.Kind(kind) == core.KindHammock:
		return "rail_load"
	}
	return "cq_build_running" // other
}

// chromeTrace is the top-level trace-event JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// openTask tracks an in-flight task slice during export.
type openTask struct {
	slot  int
	spawn int64
	start int64 // first trace index
	kind  int64 // spawn category (EvTaskSpawn.B; -1 = initial task)
}

// WriteChromeTrace converts buffered events to Chrome trace-event JSON on
// w. Task lifetimes become duration slices on per-slot tracks ("task slot
// N", assigned greedily so concurrent tasks land on distinct tracks, as
// hardware task contexts would); mispredicts, resolutions and violations
// become instant events on their task's track; divert-queue occupancy
// becomes a counter track. process names the trace (e.g. the machine
// configuration). Events must be chronological, as Tracer.Events returns
// them.
func WriteChromeTrace(w io.Writer, process string, events []Event) error {
	const pid = 0
	var out []chromeEvent
	open := map[int32]*openTask{}
	var freeSlots []int
	nextSlot := 0
	maxSlot := -1
	var lastCycle int64

	takeSlot := func() int {
		if n := len(freeSlots); n > 0 {
			// Lowest-numbered free slot keeps tracks dense and stable.
			sort.Ints(freeSlots)
			s := freeSlots[0]
			freeSlots = freeSlots[1:]
			return s
		}
		s := nextSlot
		nextSlot++
		if s > maxSlot {
			maxSlot = s
		}
		return s
	}
	slotOf := func(task int32) int {
		if o, ok := open[task]; ok {
			return o.slot
		}
		return 0
	}
	closeTask := func(task int32, cycle int64, reason string, args map[string]any) {
		o, ok := open[task]
		if !ok {
			return // spawn fell off the ring; nothing to pair with
		}
		dur := cycle - o.spawn
		if dur < 1 {
			dur = 1
		}
		if args == nil {
			args = map[string]any{}
		}
		args["start_index"] = o.start
		args["end"] = reason
		args["kind"] = spawnKindName(o.kind)
		out = append(out, chromeEvent{
			Name: fmt.Sprintf("task %d (%s)", task, spawnKindName(o.kind)),
			Ph:   "X", TS: o.spawn, Dur: dur, PID: pid, TID: o.slot,
			CName: spawnKindColor(o.kind),
			Args:  args,
		})
		freeSlots = append(freeSlots, o.slot)
		delete(open, task)
	}

	for _, e := range events {
		if e.Cycle > lastCycle {
			lastCycle = e.Cycle
		}
		switch e.Kind {
		case EvTaskSpawn:
			open[e.Task] = &openTask{slot: takeSlot(), spawn: e.Cycle, start: e.A, kind: e.B}
		case EvTaskRetire:
			closeTask(e.Task, e.Cycle, "retired", map[string]any{"end_index": e.B})
		case EvTaskSquash:
			closeTask(e.Task, e.Cycle, "squashed", map[string]any{
				"fetched_to": e.B, "cause": "memory-violation",
			})
			out = append(out, chromeEvent{
				Name: "squash", Ph: "i", TS: e.Cycle, PID: pid,
				TID: 0, S: "p",
				Args: map[string]any{"task": e.Task},
			})
		case EvReclaim:
			closeTask(e.Task, e.Cycle, "reclaimed", map[string]any{
				"fetched_to": e.B, "cause": "rob-reclaim",
			})
		case EvMispredict:
			out = append(out, chromeEvent{
				Name: "mispredict", Ph: "i", TS: e.Cycle, PID: pid,
				TID: slotOf(e.Task), S: "t",
				Args: map[string]any{"index": e.A, "pc": fmt.Sprintf("0x%x", uint64(e.B))},
			})
		case EvBranchResolve:
			out = append(out, chromeEvent{
				Name: "resolve", Ph: "i", TS: e.Cycle, PID: pid,
				TID: slotOf(e.Task), S: "t",
				Args: map[string]any{"index": e.A},
			})
		case EvICacheStall:
			out = append(out, chromeEvent{
				Name: "icache stall", Ph: "X", TS: e.Cycle, Dur: max64(e.B, 1),
				PID: pid, TID: slotOf(e.Task),
				Args: map[string]any{"pc": fmt.Sprintf("0x%x", uint64(e.A))},
			})
		case EvDivert:
			out = append(out, chromeEvent{
				Name: "divert_queue", Ph: "C", TS: e.Cycle, PID: pid,
				Args: map[string]any{"occupancy": e.B},
			})
		case EvViolation:
			out = append(out, chromeEvent{
				Name: "violation", Ph: "i", TS: e.Cycle, PID: pid,
				TID: slotOf(e.Task), S: "p",
				Args: map[string]any{"load_index": e.A, "store_index": e.B},
			})
		}
	}
	// Close tasks still alive at the end of the buffer (the head task always
	// is) so their slices render.
	var stillOpen []int32
	for task := range open {
		stillOpen = append(stillOpen, task)
	}
	sort.Slice(stillOpen, func(i, j int) bool { return stillOpen[i] < stillOpen[j] })
	for _, task := range stillOpen {
		closeTask(task, lastCycle+1, "end-of-trace", nil)
	}

	// The format wants ts-sorted events; slices carry their spawn-time ts
	// but were appended at close time.
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })

	meta := []chromeEvent{{
		Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": process},
	}}
	for s := 0; s <= maxSlot; s++ {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: s,
			Args: map[string]any{"name": fmt.Sprintf("task slot %d", s)},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{
		TraceEvents:     append(meta, out...),
		DisplayTimeUnit: "ms",
	})
}

// WriteChromeTrace exports the collector's buffered events; see the
// package-level WriteChromeTrace.
func (c *Collector) WriteChromeTrace(w io.Writer, process string) error {
	var events []Event
	if c.Tracer != nil {
		events = c.Tracer.Events()
	}
	return WriteChromeTrace(w, process, events)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
