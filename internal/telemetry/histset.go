package telemetry

import "sync"

// HistSet is a mutex-guarded collection of named histograms that may be
// observed from concurrent goroutines — HTTP handlers, pool workers,
// dispatchers. Registry histogram handles are deliberately single-writer
// (they sit on the simulation hot path); HistSet is the service-side
// counterpart: Observe takes a lock, and Fill clones a consistent snapshot
// of every histogram into a single-writer dump registry.
//
// Names may carry Prometheus-style labels ("x.y_ms{route=\"POST /v1/jobs\"}");
// WritePrometheus splits them back into a metric family plus labels.
type HistSet struct {
	mu sync.Mutex
	hs map[string]*Histogram
}

// NewHistSet returns an empty set.
func NewHistSet() *HistSet {
	return &HistSet{hs: map[string]*Histogram{}}
}

// Observe records one sample into the named histogram, creating it with
// the given bucket bounds on first use (later bounds are ignored, like
// Registry.Histogram).
func (s *HistSet) Observe(name string, bounds []int64, v int64) {
	s.mu.Lock()
	h, ok := s.hs[name]
	if !ok {
		b := make([]int64, len(bounds))
		copy(b, bounds)
		h = &Histogram{name: name, bounds: b, counts: make([]uint64, len(b)+1)}
		s.hs[name] = h
	}
	h.Observe(v)
	s.mu.Unlock()
}

// Fill clones every histogram into reg (a consistent point-in-time
// snapshot: the set lock is held across all clones).
func (s *HistSet) Fill(reg *Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, h := range s.hs {
		reg.AttachHistogram(h.Clone())
	}
}
