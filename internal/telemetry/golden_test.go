// Golden-file test: a tiny deterministic workload's Chrome trace export
// must be byte-stable, valid JSON, and carry monotonically non-decreasing
// ts fields — the properties Perfetto's loader relies on.
//
// Regenerate with:  go test ./internal/telemetry -run Golden -update
package telemetry_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// tinyProgram is a hammock inside a short loop: hard branches force
// mispredicts, the postdoms policy spawns at the join, and stores feed a
// later load so the timeline shows real machine behaviour.
const tinyProgram = `
        .func main
main:   li   $s7, 2463534242    # xorshift state
        li   $t9, 400           # iterations
loop:   sll  $t0, $s7, 13
        xor  $s7, $s7, $t0
        srl  $t0, $s7, 7
        xor  $s7, $s7, $t0
        sll  $t0, $s7, 17
        xor  $s7, $s7, $t0
        andi $t1, $s7, 1
        beq  $t1, $zero, els    # hard 50/50 branch
        addi $s0, $s0, 3
        sw   $s0, 0($gp)
        j    join
els:    addi $s0, $s0, 5
        lw   $t2, 0($gp)
        sub  $s1, $t2, $s0
join:   andi $s1, $s1, 0xffff
        addi $t9, $t9, -1
        bgtz $t9, loop
        halt
`

func exportTinyTrace(t *testing.T) []byte {
	t.Helper()
	prog, err := speculate.Assemble(tinyProgram)
	if err != nil {
		t.Fatal(err)
	}
	bench, err := speculate.Prepare("tiny", prog, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.NewCollector(telemetry.Config{TraceEvents: telemetry.DefaultTraceEvents})
	cfg := machine.PolyFlowConfig()
	cfg.Telemetry = col
	res, err := bench.RunPolicy(core.PolicyPostdoms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpawnsTaken == 0 || res.Mispredicts == 0 {
		t.Fatalf("tiny workload too tame for a meaningful trace: %+v", res.Stats)
	}
	var buf bytes.Buffer
	if err := col.WriteChromeTrace(&buf, res.Config); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestChromeTraceGolden(t *testing.T) {
	got := exportTinyTrace(t)

	// Structural validity first: decodes, and ts never goes backwards.
	var dt struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   int64  `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &dt); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(dt.TraceEvents) < 10 {
		t.Fatalf("implausibly small trace: %d events", len(dt.TraceEvents))
	}
	last := int64(-1)
	sliceEvents := 0
	for i, e := range dt.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if e.TS < last {
			t.Fatalf("event %d (%q): ts %d < previous %d", i, e.Name, e.TS, last)
		}
		last = e.TS
		if e.Ph == "X" {
			sliceEvents++
		}
	}
	if sliceEvents == 0 {
		t.Fatalf("no task slices in the trace")
	}

	golden := filepath.Join("testdata", "tiny_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace export differs from golden (len %d vs %d); if the machine "+
			"model changed intentionally, regenerate with -update", len(got), len(want))
	}
}

// TestChromeTraceDeterministic double-checks the golden's premise: two
// exports of the same run are byte-identical.
func TestChromeTraceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("duplicate simulation")
	}
	a := exportTinyTrace(t)
	b := exportTinyTrace(t)
	if !bytes.Equal(a, b) {
		t.Fatal("trace export is nondeterministic")
	}
}
