// Package core implements the paper's primary contribution: identification
// of control-equivalent spawn points from the immediate postdominators of
// branching instructions, their classification into the four categories of
// Figure 5 (loop fall-throughs, procedure fall-throughs, simple hammocks,
// and "other"), the loop-iteration spawn heuristic of Section 2.3 (spawn
// the loop's last basic block from the loop entry), and the spawn-policy
// algebra the evaluation sweeps over (individual heuristics, unions, and
// leave-one-out exclusions of the full postdominator set).
package core

import (
	"fmt"
	"sort"

	"repro/internal/cdg"
	"repro/internal/cfg"
	"repro/internal/dom"
	"repro/internal/isa"
	"repro/internal/loops"
)

// Kind classifies a spawn point.
type Kind int

// Spawn-point categories. KindLoop is the classic loop-iteration heuristic;
// the other four are the paper's taxonomy of immediate postdominators.
const (
	KindLoop Kind = iota
	KindLoopFT
	KindProcFT
	KindHammock
	KindOther
	NumKinds
)

var kindNames = [NumKinds]string{"loop", "loopFT", "procFT", "hammock", "other"}

// String returns the category name used in the paper's figures.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Spawn is one spawn opportunity: when fetch reaches From, a new task may
// be spawned at Target.
type Spawn struct {
	From   uint64
	Target uint64
	Kind   Kind
}

// FuncAnalysis bundles the per-function static analyses.
type FuncAnalysis struct {
	Graph  *cfg.Graph
	Dom    *dom.Tree // dominators, rooted at the function entry
	PDom   *dom.Tree // postdominators, rooted at the virtual exit
	CDG    *cdg.Graph
	Loops  *loops.Forest
	Spawns []Spawn
}

// Analysis is the whole-program spawn-point analysis.
type Analysis struct {
	Prog  *isa.Program
	Funcs []*FuncAnalysis
	// Spawns is the union over functions, sorted by (From, Target).
	Spawns []Spawn
}

// Analyze runs the full static analysis. indirectTargets optionally
// augments jump-table annotations with profile-observed indirect jump
// targets (see trace.IndirectTargets); it may be nil.
func Analyze(p *isa.Program, indirectTargets map[uint64][]uint64) (*Analysis, error) {
	graphs, err := cfg.BuildAll(p, indirectTargets)
	if err != nil {
		return nil, err
	}
	a := &Analysis{Prog: p}
	for _, g := range graphs {
		fa := analyzeFunc(g)
		a.Funcs = append(a.Funcs, fa)
		a.Spawns = append(a.Spawns, fa.Spawns...)
	}
	sort.Slice(a.Spawns, func(i, j int) bool {
		if a.Spawns[i].From != a.Spawns[j].From {
			return a.Spawns[i].From < a.Spawns[j].From
		}
		return a.Spawns[i].Target < a.Spawns[j].Target
	})
	return a, nil
}

func analyzeFunc(g *cfg.Graph) *FuncAnalysis {
	succs := g.SuccLists()
	preds := g.PredLists()
	fa := &FuncAnalysis{
		Graph: g,
		Dom:   dom.Compute(succs, g.Entry()),
		PDom:  dom.Compute(preds, g.Exit()),
	}
	fa.CDG = cdg.Build(succs, fa.PDom)
	fa.Loops = loops.Find(succs, fa.Dom)
	fa.Spawns = identifySpawns(fa)
	return fa
}

// ipdomTarget returns the start PC of block b's immediate postdominator,
// or ok=false when the ipdom is the virtual exit (no in-function spawn
// target) or b is not on any path to exit.
func ipdomTarget(fa *FuncAnalysis, b int) (uint64, bool) {
	ip := fa.PDom.IDom[b]
	if ip < 0 || fa.Graph.Blocks[ip].Virtual {
		return 0, false
	}
	return fa.Graph.Blocks[ip].Start, true
}

// isLoopBranch reports whether block b's terminating conditional branch is
// a loop branch: a back-edge source (latch) or a loop-exit branch
// ("including breaks and other exit conditions", Section 2.2).
func isLoopBranch(fa *FuncAnalysis, b int) bool {
	for _, s := range fa.Graph.Blocks[b].Succs {
		if fa.Loops.IsBackEdge(b, s) {
			return true
		}
	}
	li := fa.Loops.InnermostOf[b]
	if li < 0 {
		return false
	}
	// Exit branch of any enclosing loop.
	for l := li; l >= 0; l = fa.Loops.Loops[l].Parent {
		body := fa.Loops.Loops[l].Body
		for _, s := range fa.Graph.Blocks[b].Succs {
			if !body[s] && !fa.Graph.Blocks[s].Virtual {
				return true
			}
			if fa.Graph.Blocks[s].Virtual {
				return true // leaving the function leaves the loop
			}
		}
	}
	return false
}

// isHammock reports whether block b's conditional branch forms a simple
// single-entry hammock: every block control dependent on b is dominated by
// b (one way in), so the branch's ipdom is the join of exactly the two
// paths through the conditional.
func isHammock(fa *FuncAnalysis, b int) bool {
	for _, x := range fa.CDG.Controls[b] {
		if x == b {
			continue // self-dependence would indicate a loop branch anyway
		}
		if fa.Graph.Blocks[x].Virtual {
			return false
		}
		if !fa.Dom.Dominates(b, x) {
			return false
		}
	}
	return true
}

// identifySpawns computes every control-equivalent spawn point of the
// function plus the loop-iteration spawns of the loop heuristic.
func identifySpawns(fa *FuncAnalysis) []Spawn {
	var out []Spawn
	g := fa.Graph
	for _, blk := range g.Blocks {
		if blk.Virtual {
			continue
		}
		term, ok := g.Terminator(blk.ID)
		if !ok {
			continue
		}
		switch {
		case term.IsCondBranch():
			tgt, ok := ipdomTarget(fa, blk.ID)
			if !ok {
				break
			}
			kind := KindOther
			switch {
			case isLoopBranch(fa, blk.ID):
				kind = KindLoopFT
			case isHammock(fa, blk.ID):
				kind = KindHammock
			}
			out = append(out, Spawn{From: blk.LastPC(), Target: tgt, Kind: kind})
		case term.IsCall():
			tgt, ok := ipdomTarget(fa, blk.ID)
			if !ok {
				break
			}
			out = append(out, Spawn{From: blk.LastPC(), Target: tgt, Kind: KindProcFT})
		case term.Op == isa.OpJR && !term.IsReturn():
			// Indirect jump (e.g. switch dispatch): its ipdom is an
			// unclassified "other" spawn.
			tgt, ok := ipdomTarget(fa, blk.ID)
			if !ok {
				break
			}
			out = append(out, Spawn{From: blk.LastPC(), Target: tgt, Kind: KindOther})
		}
	}

	// Loop-iteration spawns (Section 2.3): whenever fetch reaches the loop
	// entry (header), spawn the loop's last basic block — the block that
	// ends in the loop branch — so the index-variable update stays local
	// to the spawned task. With multiple latches, the layout-last one is
	// the loop branch block.
	for _, l := range fa.Loops.Loops {
		if len(l.Latches) == 0 {
			continue
		}
		latch := l.Latches[0]
		for _, c := range l.Latches[1:] {
			if g.Blocks[c].Start > g.Blocks[latch].Start {
				latch = c
			}
		}
		if latch == l.Header {
			continue // single-block loop: spawning itself is useless
		}
		out = append(out, Spawn{
			From:   g.Blocks[l.Header].Start,
			Target: g.Blocks[latch].Start,
			Kind:   KindLoop,
		})
	}
	return out
}

// CountByKind tallies the static spawn points per category — the data of
// Figure 5 (which covers the four postdominator categories; KindLoop is
// reported separately since it is a heuristic, not an ipdom class).
func (a *Analysis) CountByKind() map[Kind]int {
	out := map[Kind]int{}
	for _, s := range a.Spawns {
		out[s.Kind]++
	}
	return out
}
