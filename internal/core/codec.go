// Analysis artifact codec: serializes the static products of Analyze —
// CFG block structure, dominator and postdominator trees, control
// dependence graph, loop forest, spawn points — so a cache-warm cell can
// skip the analysis passes entirely. The decode path reconstructs each
// structure from its serialized skeleton (cfg.FromBlocks, dom.Rebuild,
// loops.NewForest) rather than re-running the algorithms; a reconstructed
// Analysis re-encodes byte-identically to a fresh one, which is what lets
// cluster workers trust a coordinator-warmed cache.
package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/cdg"
	"repro/internal/cfg"
	"repro/internal/dom"
	"repro/internal/isa"
	"repro/internal/loops"
)

// AnalysisSchema identifies the serialized analysis artifact.
const AnalysisSchema = "polyflow-analysis/1"

type analysisJSON struct {
	Schema string     `json:"schema"`
	Funcs  []funcJSON `json:"funcs"`
}

type funcJSON struct {
	Entry    uint64      `json:"entry"`
	End      uint64      `json:"end"`
	Blocks   []blockJSON `json:"blocks"` // real blocks only; the virtual exit is implied
	DomIDom  []int       `json:"dom_idom"`
	PDomIDom []int       `json:"pdom_idom"`
	Controls [][]int     `json:"controls"`
	Loops    []loopJSON  `json:"loops"`
	Spawns   []spawnJSON `json:"spawns"`
}

type blockJSON struct {
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	Succs []int  `json:"succs"`
}

type loopJSON struct {
	Header  int   `json:"header"`
	Latches []int `json:"latches"`
	Body    []int `json:"body"` // sorted block IDs (the live form is a set)
	Parent  int   `json:"parent"`
	Depth   int   `json:"depth"`
}

type spawnJSON struct {
	From   uint64 `json:"from"`
	Target uint64 `json:"target"`
	Kind   int    `json:"kind"`
}

// EncodeAnalysis serializes an Analysis as a polyflow-analysis/1 artifact.
// The encoding is canonical: encoding a freshly computed analysis and
// encoding a decoded one produce identical bytes (the byte-identity test
// in tracecache_test.go holds this over real workloads).
func EncodeAnalysis(a *Analysis) ([]byte, error) {
	doc := analysisJSON{Schema: AnalysisSchema}
	for _, fa := range a.Funcs {
		g := fa.Graph
		fj := funcJSON{
			Entry:    g.FuncEntry,
			End:      g.FuncEnd,
			DomIDom:  fa.Dom.IDom,
			PDomIDom: fa.PDom.IDom,
			Controls: fa.CDG.Controls,
		}
		for _, b := range g.Blocks {
			if b.Virtual {
				continue
			}
			fj.Blocks = append(fj.Blocks, blockJSON{Start: b.Start, End: b.End, Succs: b.Succs})
		}
		for _, l := range fa.Loops.Loops {
			body := make([]int, 0, len(l.Body))
			for v := range l.Body {
				body = append(body, v)
			}
			sort.Ints(body)
			fj.Loops = append(fj.Loops, loopJSON{
				Header:  l.Header,
				Latches: l.Latches,
				Body:    body,
				Parent:  l.Parent,
				Depth:   l.Depth,
			})
		}
		for _, s := range fa.Spawns {
			fj.Spawns = append(fj.Spawns, spawnJSON{From: s.From, Target: s.Target, Kind: int(s.Kind)})
		}
		doc.Funcs = append(doc.Funcs, fj)
	}
	return json.Marshal(doc)
}

// DecodeAnalysis reconstructs an Analysis for prog from serialized
// polyflow-analysis/1 bytes without re-running any analysis pass. The
// caller is responsible for pairing the bytes with the right program —
// the artifact cache's content addressing (workload, source hash,
// instruction cap) guarantees that pairing.
func DecodeAnalysis(prog *isa.Program, data []byte) (*Analysis, error) {
	var doc analysisJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("core: decoding analysis artifact: %w", err)
	}
	if doc.Schema != AnalysisSchema {
		return nil, fmt.Errorf("core: analysis artifact schema %q, want %q", doc.Schema, AnalysisSchema)
	}
	a := &Analysis{Prog: prog}
	for fi := range doc.Funcs {
		fa, err := decodeFunc(prog, &doc.Funcs[fi])
		if err != nil {
			return nil, fmt.Errorf("core: analysis artifact func %d: %w", fi, err)
		}
		a.Funcs = append(a.Funcs, fa)
		a.Spawns = append(a.Spawns, fa.Spawns...)
	}
	// The same union sort Analyze performs, over the same per-func input
	// order, so the result is identical.
	sort.Slice(a.Spawns, func(i, j int) bool {
		if a.Spawns[i].From != a.Spawns[j].From {
			return a.Spawns[i].From < a.Spawns[j].From
		}
		return a.Spawns[i].Target < a.Spawns[j].Target
	})
	return a, nil
}

func decodeFunc(prog *isa.Program, fj *funcJSON) (*FuncAnalysis, error) {
	n := len(fj.Blocks) + 1 // plus the virtual exit
	blocks := make([]*cfg.Block, 0, n)
	for i, bj := range fj.Blocks {
		blocks = append(blocks, &cfg.Block{ID: i, Start: bj.Start, End: bj.End, Succs: bj.Succs})
	}
	blocks = append(blocks, &cfg.Block{ID: n - 1, Virtual: true})
	g, err := cfg.FromBlocks(prog, fj.Entry, fj.End, blocks)
	if err != nil {
		return nil, err
	}
	if len(fj.DomIDom) != n || len(fj.PDomIDom) != n {
		return nil, fmt.Errorf("dominator arrays sized %d/%d for %d blocks", len(fj.DomIDom), len(fj.PDomIDom), n)
	}
	succs := g.SuccLists()
	preds := g.PredLists()
	fa := &FuncAnalysis{Graph: g}
	if fa.Dom, err = dom.Rebuild(succs, g.Entry(), fj.DomIDom); err != nil {
		return nil, err
	}
	if fa.PDom, err = dom.Rebuild(preds, g.Exit(), fj.PDomIDom); err != nil {
		return nil, err
	}
	fa.CDG, err = decodeCDG(fj.Controls, n)
	if err != nil {
		return nil, err
	}
	fa.Loops, err = decodeLoops(fj.Loops, n)
	if err != nil {
		return nil, err
	}
	for _, sj := range fj.Spawns {
		if sj.Kind < 0 || Kind(sj.Kind) >= NumKinds {
			return nil, fmt.Errorf("spawn kind %d out of range", sj.Kind)
		}
		fa.Spawns = append(fa.Spawns, Spawn{From: sj.From, Target: sj.Target, Kind: Kind(sj.Kind)})
	}
	return fa, nil
}

// decodeCDG rebuilds a cdg.Graph from its Controls lists. DependsOn is
// derived by replaying cdg.Build's insertion order — ascending source
// block, stored dependent order — so the reconstructed lists match the
// originals element for element.
func decodeCDG(controls [][]int, n int) (*cdg.Graph, error) {
	if len(controls) != n {
		return nil, fmt.Errorf("cdg controls sized %d for %d blocks", len(controls), n)
	}
	g := &cdg.Graph{Controls: controls, DependsOn: make([][]int, n)}
	for a, xs := range controls {
		for _, x := range xs {
			if x < 0 || x >= n {
				return nil, fmt.Errorf("cdg dependent %d out of range", x)
			}
			g.DependsOn[x] = append(g.DependsOn[x], a)
		}
	}
	return g, nil
}

func decodeLoops(ljs []loopJSON, n int) (*loops.Forest, error) {
	ls := make([]*loops.Loop, 0, len(ljs))
	for i, lj := range ljs {
		if lj.Parent < -1 || lj.Parent >= len(ljs) {
			return nil, fmt.Errorf("loop %d parent %d out of range", i, lj.Parent)
		}
		body := make(map[int]bool, len(lj.Body))
		for _, v := range lj.Body {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("loop %d body block %d out of range", i, v)
			}
			body[v] = true
		}
		ls = append(ls, &loops.Loop{
			Header:  lj.Header,
			Latches: lj.Latches,
			Body:    body,
			Parent:  lj.Parent,
			Depth:   lj.Depth,
		})
	}
	return loops.NewForest(ls, n), nil
}
