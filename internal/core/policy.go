package core

import (
	"repro/internal/trace"
)

// Table maps a trigger PC to the spawns available when fetch reaches it.
type Table map[uint64][]Spawn

// Source supplies spawn opportunities to the Task Spawn Unit. Static
// (compiler/profile-generated) tables ignore OnRetire; dynamic sources like
// the reconvergence predictor train on the retirement stream through it.
type Source interface {
	// SpawnsAt returns the spawn opportunities for a fetched PC. The
	// returned slice must not be retained past the next call.
	SpawnsAt(pc uint64) []Spawn
	// OnRetire observes one retired instruction, in retirement order.
	OnRetire(e *trace.Entry)
}

// StaticSource is a Source backed by a fixed table — the model of the
// paper's hint cache loaded from compiler-generated binary sections
// (capacity and conflict effects are not modeled, as in the paper).
type StaticSource struct {
	T Table
}

// SpawnsAt implements Source.
func (s *StaticSource) SpawnsAt(pc uint64) []Spawn { return s.T[pc] }

// OnRetire implements Source (static tables do not train).
func (s *StaticSource) OnRetire(e *trace.Entry) {}

// Policy selects which spawn categories a configuration uses.
type Policy struct {
	Name  string
	kinds [NumKinds]bool
}

// NewPolicy builds a policy that spawns the given categories.
func NewPolicy(name string, kinds ...Kind) Policy {
	p := Policy{Name: name}
	for _, k := range kinds {
		p.kinds[k] = true
	}
	return p
}

// Includes reports whether the policy spawns category k.
func (p Policy) Includes(k Kind) bool { return p.kinds[k] }

// Table filters the analysis' spawn points down to the policy's categories.
func (p Policy) Table(a *Analysis) Table {
	t := Table{}
	for _, s := range a.Spawns {
		if p.kinds[s.Kind] {
			t[s.From] = append(t[s.From], s)
		}
	}
	return t
}

// Source returns a StaticSource for the policy over the given analysis.
func (p Policy) Source(a *Analysis) *StaticSource {
	return &StaticSource{T: p.Table(a)}
}

// The individual heuristic policies of Figure 9.
var (
	PolicyLoop    = NewPolicy("loop", KindLoop)
	PolicyLoopFT  = NewPolicy("loopFT", KindLoopFT)
	PolicyProcFT  = NewPolicy("procFT", KindProcFT)
	PolicyHammock = NewPolicy("hammock", KindHammock)
	PolicyOther   = NewPolicy("other", KindOther)
	// PolicyPostdoms is control-equivalent spawning: the full immediate
	// postdominator set.
	PolicyPostdoms = NewPolicy("postdoms", KindLoopFT, KindProcFT, KindHammock, KindOther)
)

// The heuristic combinations of Figure 10.
var (
	PolicyLoopLoopFT       = NewPolicy("loop + loopFT", KindLoop, KindLoopFT)
	PolicyLoopFTProcFT     = NewPolicy("loopFT + procFT", KindLoopFT, KindProcFT)
	PolicyLoopProcFTLoopFT = NewPolicy("loop + procFT + loopFT", KindLoop, KindProcFT, KindLoopFT)
)

// The leave-one-out exclusion policies of Figure 11.
var (
	PolicyPostdomsMinusLoopFT  = NewPolicy("postdoms - loopFT", KindProcFT, KindHammock, KindOther)
	PolicyPostdomsMinusProcFT  = NewPolicy("postdoms - procFT", KindLoopFT, KindHammock, KindOther)
	PolicyPostdomsMinusHammock = NewPolicy("postdoms - hammock", KindLoopFT, KindProcFT, KindOther)
	PolicyPostdomsMinusOthers  = NewPolicy("postdoms - others", KindLoopFT, KindProcFT, KindHammock)
)

// IndividualPolicies returns the Figure 9 policy sweep, in figure order
// (postdoms last).
func IndividualPolicies() []Policy {
	return []Policy{PolicyLoop, PolicyLoopFT, PolicyProcFT, PolicyHammock, PolicyOther, PolicyPostdoms}
}

// CombinationPolicies returns the Figure 10 sweep.
func CombinationPolicies() []Policy {
	return []Policy{PolicyLoopLoopFT, PolicyLoopFTProcFT, PolicyLoopProcFTLoopFT, PolicyPostdoms}
}

// ExclusionPolicies returns the Figure 11 sweep.
func ExclusionPolicies() []Policy {
	return []Policy{
		PolicyPostdomsMinusLoopFT,
		PolicyPostdomsMinusProcFT,
		PolicyPostdomsMinusHammock,
		PolicyPostdomsMinusOthers,
	}
}
