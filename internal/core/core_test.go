package core

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

func analyze(t *testing.T, src string) *Analysis {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func spawnsFrom(a *Analysis, pc uint64) []Spawn {
	var out []Spawn
	for _, s := range a.Spawns {
		if s.From == pc {
			out = append(out, s)
		}
	}
	return out
}

func firstOfKind(a *Analysis, k Kind) (Spawn, bool) {
	for _, s := range a.Spawns {
		if s.Kind == k {
			return s, true
		}
	}
	return Spawn{}, false
}

// TestIfThenElseIsHammock: the join of an if-then-else is a hammock spawn
// point for the branch.
func TestIfThenElseIsHammock(t *testing.T) {
	a := analyze(t, `
        .func main
main:   beq  $t0, $t1, els
        nop
        nop
        j    join
els:    nop
join:   nop
        halt
`)
	p := a.Prog
	ss := spawnsFrom(a, p.Labels["main"])
	if len(ss) != 1 {
		t.Fatalf("spawns at branch = %v, want one", ss)
	}
	if ss[0].Kind != KindHammock {
		t.Fatalf("kind = %v, want hammock", ss[0].Kind)
	}
	if ss[0].Target != p.Labels["join"] {
		t.Fatalf("target = %x, want join %x", ss[0].Target, p.Labels["join"])
	}
}

// TestIfThenIsHammock: an if-then with a fall-through join.
func TestIfThenIsHammock(t *testing.T) {
	a := analyze(t, `
        .func main
main:   bgez $t0, join
        neg  $t0, $t0
join:   nop
        halt
`)
	ss := spawnsFrom(a, a.Prog.Labels["main"])
	if len(ss) != 1 || ss[0].Kind != KindHammock || ss[0].Target != a.Prog.Labels["join"] {
		t.Fatalf("ABS hammock wrong: %v", ss)
	}
}

// TestLoopBranchIsLoopFT: the latch branch's ipdom (the loop fall-through)
// is classified loopFT, and the loop-iteration spawn pairs the header with
// the latch block (Section 2.3: spawn the last basic block of the loop from
// the loop entry).
func TestLoopBranchAndLoopSpawn(t *testing.T) {
	a := analyze(t, `
        .func main
main:   li   $t0, 5
head:   addi $t1, $t1, 2
        addi $t0, $t0, -1
        bgtz $t0, head
after:  nop
        halt
`)
	p := a.Prog
	latchPC := p.Labels["head"] + 2*isa.InstSize // the bgtz
	ss := spawnsFrom(a, latchPC)
	if len(ss) != 1 || ss[0].Kind != KindLoopFT || ss[0].Target != p.Labels["after"] {
		t.Fatalf("loopFT wrong: %+v", ss)
	}
	// Loop spawn: triggered at the header, targeting the latch block —
	// here the loop is a single block, so spawning itself is useless and
	// must be suppressed.
	if s, ok := firstOfKind(a, KindLoop); ok {
		t.Fatalf("single-block loop must not produce a loop spawn: %+v", s)
	}
}

func TestMultiBlockLoopSpawn(t *testing.T) {
	a := analyze(t, `
        .func main
main:   li   $t0, 5
head:   bgez $t1, skip
        neg  $t1, $t1
skip:   addi $t0, $t0, -1
        bgtz $t0, head
        halt
`)
	p := a.Prog
	s, ok := firstOfKind(a, KindLoop)
	if !ok {
		t.Fatalf("no loop spawn found")
	}
	if s.From != p.Labels["head"] || s.Target != p.Labels["skip"] {
		t.Fatalf("loop spawn = %+v, want head -> skip (latch block)", s)
	}
}

// TestLoopExitBranchIsLoopFT: a break out of a loop is a loop branch
// ("including breaks and other exit conditions").
func TestBreakIsLoopFT(t *testing.T) {
	a := analyze(t, `
        .func main
main:   li   $t0, 5
head:   beq  $t1, $t2, out
        addi $t0, $t0, -1
        bgtz $t0, head
out:    nop
        halt
`)
	// "head" is both the loop header (loop-spawn trigger) and the break
	// branch, so two spawns share the From PC; the break itself must be
	// classified loopFT targeting the loop exit.
	found := false
	for _, s := range spawnsFrom(a, a.Prog.Labels["head"]) {
		if s.Kind == KindLoopFT && s.Target == a.Prog.Labels["out"] {
			found = true
		}
		if s.Kind == KindHammock {
			t.Fatalf("break misclassified as hammock")
		}
	}
	if !found {
		t.Fatalf("break loopFT spawn missing: %v", spawnsFrom(a, a.Prog.Labels["head"]))
	}
}

// TestCallIsProcFT: the ipdom of a call block is a procedure fall-through.
func TestCallIsProcFT(t *testing.T) {
	a := analyze(t, `
        .func main
main:   jal  f
ret_pt: nop
        halt
        .func f
f:      ret
`)
	p := a.Prog
	ss := spawnsFrom(a, p.Labels["main"])
	if len(ss) != 1 || ss[0].Kind != KindProcFT || ss[0].Target != p.Labels["ret_pt"] {
		t.Fatalf("procFT wrong: %v", ss)
	}
}

// TestCrossJumpIsOther: a branch into the middle of another branch's arm
// yields a control-dependent region not dominated by the branch — the
// "other" category.
func TestCrossJumpIsOther(t *testing.T) {
	a := analyze(t, `
        .func main
main:   beq  $t0, $zero, second
        nop
        j    mid
second: beq  $t1, $zero, out
        nop
mid:    nop
out:    nop
        halt
`)
	p := a.Prog
	ss := spawnsFrom(a, p.Labels["second"])
	if len(ss) != 1 || ss[0].Kind != KindOther {
		t.Fatalf("cross-jumped branch = %v, want other", ss)
	}
	// The outer branch still forms a single-entry region.
	outer := spawnsFrom(a, p.Labels["main"])
	if len(outer) != 1 || outer[0].Kind != KindHammock {
		t.Fatalf("outer branch = %v, want hammock", outer)
	}
}

// TestIndirectJumpIsOther: the ipdom of a jump-table dispatch is "other".
func TestIndirectJumpIsOther(t *testing.T) {
	a := analyze(t, `
        .func main
main:   jr   $t0
        .targets a, b
a:      nop
        j    join
b:      nop
join:   nop
        halt
`)
	p := a.Prog
	ss := spawnsFrom(a, p.Labels["main"])
	if len(ss) != 1 || ss[0].Kind != KindOther || ss[0].Target != p.Labels["join"] {
		t.Fatalf("indirect dispatch = %v, want other -> join", ss)
	}
}

// TestNoSpawnWhenIpdomIsExit: a branch whose paths only rejoin past the
// function end yields no spawn point.
func TestNoSpawnWhenIpdomIsExit(t *testing.T) {
	a := analyze(t, `
        .func main
main:   beq  $t0, $zero, b
        halt
b:      halt
`)
	if len(spawnsFrom(a, a.Prog.Labels["main"])) != 0 {
		t.Fatalf("branch with exit ipdom must not spawn")
	}
}

// TestTwolfKernelAnatomy reproduces the Section 2.3 anatomy on the paper's
// Figure 6 kernel: three hammocks inside the inner loop, a loopFT at the
// inner latch whose target starts the outer-iteration tail, a loopFT at the
// outer latch, and loop-iteration spawns header->latch for both loops.
func TestTwolfKernelAnatomy(t *testing.T) {
	a := analyze(t, `
        .func new_dbox_a
new_dbox_a:
        beq  $a0, $zero, outer_done
outer_body:
        ld   $s0, 8($a0)
        beq  $s0, $zero, inner_done
inner_body:
        ld   $t0, 16($s0)
        ld   $t1, 8($s0)
        li   $t2, 1
        bne  $t0, $t2, else_part
        ld   $t3, 24($s0)
        sd   $zero, 16($s0)
        j    join1
else_part:
        move $t3, $t1
join1:
        sub  $t4, $t3, $t9
        bgez $t4, join2
        neg  $t4, $t4
join2:
        sub  $t5, $t1, $t8
        bgez $t5, join3
        neg  $t5, $t5
join3:
        sub  $t6, $t4, $t5
        add  $s2, $s2, $t6
        ld   $s0, 0($s0)
        bne  $s0, $zero, inner_body
inner_done:
        ld   $a0, 0($a0)
        bne  $a0, $zero, outer_body
outer_done:
        ret
`)
	p := a.Prog
	labels := p.Labels

	// Five hammocks: the if-then-else, the two ABS if-thens, and the two
	// list-null guards (whose ipdoms are the loop continuations — the
	// guard pattern through which postdominator analysis recovers
	// loop-iteration spawns).
	byKind := a.CountByKind()
	if byKind[KindHammock] != 5 {
		t.Errorf("hammocks = %d, want 5", byKind[KindHammock])
	}
	if byKind[KindLoopFT] < 2 {
		t.Errorf("loopFTs = %d, want at least 2 (inner and outer latch)", byKind[KindLoopFT])
	}
	if byKind[KindLoop] != 2 {
		t.Errorf("loop spawns = %d, want 2 (inner and outer)", byKind[KindLoop])
	}

	// Hammock targets are the three joins.
	for _, want := range []string{"join1", "join2", "join3"} {
		found := false
		for _, s := range a.Spawns {
			if s.Kind == KindHammock && s.Target == labels[want] {
				found = true
			}
		}
		if !found {
			t.Errorf("no hammock spawn targets %s", want)
		}
	}

	// The inner loop fall-through (9dd8 -> 9dec in the paper) targets
	// inner_done — the start of the next outer-iteration tail.
	foundInnerFT := false
	for _, s := range a.Spawns {
		if s.Kind == KindLoopFT && s.Target == labels["inner_done"] {
			foundInnerFT = true
		}
	}
	if !foundInnerFT {
		t.Errorf("inner loop fall-through spawn missing")
	}

	// Loop spawns: inner header (inner_body) -> join3 block (the inner
	// latch block), outer header (outer_body) -> inner_done block.
	wantLoop := map[uint64]uint64{
		labels["inner_body"]: labels["join3"],
		labels["outer_body"]: labels["inner_done"],
	}
	for _, s := range a.Spawns {
		if s.Kind != KindLoop {
			continue
		}
		if tgt, ok := wantLoop[s.From]; !ok || tgt != s.Target {
			t.Errorf("unexpected loop spawn %x -> %x", s.From, s.Target)
		}
		delete(wantLoop, s.From)
	}
	if len(wantLoop) != 0 {
		t.Errorf("missing loop spawns: %v", wantLoop)
	}
}

func TestPolicyAlgebra(t *testing.T) {
	if !PolicyPostdoms.Includes(KindHammock) || PolicyPostdoms.Includes(KindLoop) {
		t.Fatalf("postdoms must include the four ipdom kinds and not loop")
	}
	if !PolicyLoopLoopFT.Includes(KindLoop) || !PolicyLoopLoopFT.Includes(KindLoopFT) ||
		PolicyLoopLoopFT.Includes(KindProcFT) {
		t.Fatalf("combination policy wrong")
	}
	for _, p := range ExclusionPolicies() {
		n := 0
		for k := Kind(0); k < NumKinds; k++ {
			if p.Includes(k) {
				n++
			}
		}
		if n != 3 || p.Includes(KindLoop) {
			t.Fatalf("exclusion policy %q includes %d kinds", p.Name, n)
		}
	}
	if len(IndividualPolicies()) != 6 || len(CombinationPolicies()) != 4 {
		t.Fatalf("policy sweep sizes wrong")
	}
}

func TestPolicyTableAndSource(t *testing.T) {
	a := analyze(t, `
        .func main
main:   bgez $t0, join
        neg  $t0, $t0
join:   jal  f
        halt
        .func f
f:      ret
`)
	hamTab := PolicyHammock.Table(a)
	procTab := PolicyProcFT.Table(a)
	if len(hamTab) != 1 || len(procTab) != 1 {
		t.Fatalf("tables wrong: %v %v", hamTab, procTab)
	}
	src := PolicyPostdoms.Source(a)
	if got := src.SpawnsAt(a.Prog.Labels["main"]); len(got) != 1 {
		t.Fatalf("SpawnsAt(branch) = %v", got)
	}
	if got := src.SpawnsAt(0xdead); got != nil {
		t.Fatalf("SpawnsAt(unknown) = %v", got)
	}
	src.OnRetire(nil) // must be a no-op
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindLoop: "loop", KindLoopFT: "loopFT", KindProcFT: "procFT",
		KindHammock: "hammock", KindOther: "other",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
