package workloads

import (
	"fmt"
	"strings"
)

// Vortex models the call-heavy object store of SPEC2000 vortex: a main
// transaction loop calls a two-level access layer that indirectly invokes
// one of many medium-sized method bodies. The aggregate code footprint
// exceeds the 8 KB L1 I-cache, so the superscalar stalls on instruction
// misses inside callees — the situation in which procedure fall-through
// spawns shine (the paper reports a 56% loss for vortex when procFT spawns
// are removed).
func Vortex() Workload {
	r := rng(0x40e7e)
	var d dataBuilder

	const (
		numMethods = 48
		iterations = 2280 // total obj_access calls (transactions * 6)
		recordLen  = 16   // 8-byte fields per object record
	)

	// Object records, one per method.
	recBase := d.addr()
	for i := 0; i < numMethods*recordLen; i++ {
		d.emit(int64(r.Intn(1 << 20)))
	}
	methods := caseLabels("obj_m", numMethods)

	var b strings.Builder
	fmt.Fprintf(&b, `# vortex: layered object store, large code footprint
        .text
        .func main
main:
        li   $s0, 0               # access counter
        li   $s1, %d              # total accesses
        la   $s5, method_table
        li   $s6, %d              # record base
main_loop:
        # One transaction touches six objects; a whole transaction exceeds
        # the spawn-distance bound, so only the per-call fall-throughs can
        # parallelize it.
        move $a0, $s0
        jal  obj_access
        addi $a0, $s0, 1
        jal  obj_access
        addi $a0, $s0, 2
        jal  obj_access
        addi $a0, $s0, 3
        jal  obj_access
        addi $a0, $s0, 4
        jal  obj_access
        addi $a0, $s0, 5
        jal  obj_access
        addi $s0, $s0, 6
        blt  $s0, $s1, main_loop
        halt

        .func obj_access
obj_access:
        addi $sp, $sp, -16
        sd   $ra, 0($sp)
        li   $t0, %d
        rem  $t1, $a0, $t0        # method index
        sll  $t2, $t1, 3
        add  $t2, $t2, $s5
        ld   $t3, 0($t2)          # method entry
        sll  $a1, $t1, 7
        add  $a1, $a1, $s6        # record address (16 fields * 8 bytes)
        jalr $ra, $t3             # indirect method call
        .targets %s
        jal  obj_commit
        ld   $ra, 0($sp)
        addi $sp, $sp, 16
        ret

        .func obj_commit
obj_commit:
        ld   $t0, 0($a1)
        ld   $t1, 8($a1)
        add  $t0, $t0, $t1
        xori $t0, $t0, 0x5a
        sd   $t0, 0($a1)
        addi $t2, $t0, 3
        sll  $t2, $t2, 2
        sd   $t2, 16($a1)
        ret

`, iterations, recBase, numMethods, strings.Join(methods, ", "))

	// Method bodies: field shuffles with a rarely-taken validation
	// hammock, ~55 instructions each; 48 of them overflow the L1 I-cache.
	for m := 0; m < numMethods; m++ {
		fmt.Fprintf(&b, "        .func obj_m%d\nobj_m%d:\n", m, m)
		fmt.Fprintf(&b, "        ld   $t0, 0($a1)\n        ld   $t1, 8($a1)\n")
		n := 30 + r.Intn(14)
		for k := 0; k < n; k++ {
			switch r.Intn(5) {
			case 0:
				fmt.Fprintf(&b, "        add  $t0, $t0, $t1\n")
			case 1:
				fmt.Fprintf(&b, "        xor  $t1, $t1, $t0\n")
			case 2:
				fmt.Fprintf(&b, "        sll  $t2, $t0, %d\n        add  $t1, $t1, $t2\n", 1+r.Intn(4))
			case 3:
				off := 8 * (2 + r.Intn(recordLen-3))
				fmt.Fprintf(&b, "        ld   $t3, %d($a1)\n        add  $t0, $t0, $t3\n", off)
			case 4:
				off := 8 * (2 + r.Intn(recordLen-3))
				fmt.Fprintf(&b, "        sd   $t1, %d($a1)\n", off)
			}
		}
		fmt.Fprintf(&b, "        andi $t4, $t0, 1023\n")
		fmt.Fprintf(&b, "        bne  $t4, $zero, obj_m%d_ok\n", m)
		fmt.Fprintf(&b, "        addi $t0, $t0, 17\n        sd   $t0, 8($a1)\n")
		fmt.Fprintf(&b, "obj_m%d_ok:\n", m)
		for k := 0; k < 8; k++ {
			fmt.Fprintf(&b, "        addi $t1, $t1, %d\n", 1+r.Intn(9))
		}
		fmt.Fprintf(&b, "        sd   $t0, 0($a1)\n        sd   $t1, 8($a1)\n        ret\n\n")
	}

	b.WriteString(d.section())
	fmt.Fprintf(&b, "method_table:\n        .word8 %s\n", strings.Join(methods, ", "))

	return Workload{Name: "vortex", Source: b.String(), MaxInstrs: 1_500_000}
}
