package workloads

import (
	"fmt"
	"strings"
)

// Gap models the SPEC2000 gap computer-algebra interpreter: a bytecode
// fetch-decode loop dispatching through indirect calls to two dozen
// handlers, several of which contain short counted loops over small
// vectors. Procedure fall-throughs let the machine fetch past whole
// handler invocations, and the handler loops expose loop fall-through
// opportunities.
func Gap() Workload {
	r := rng(0x6a9)
	var d dataBuilder

	const (
		numOps    = 24
		codeLen   = 4500
		vecLen    = 16 // 16 cells * 8 bytes = 128-byte stride (shift 7)
		workCells = 64
	)

	// Bytecode stream.
	codeBase := d.addr()
	for i := 0; i < codeLen; i++ {
		d.emit(int64(r.Intn(numOps)))
	}
	// Operand vectors and a scratch area.
	vecBase := d.addr()
	for i := 0; i < vecLen*numOps; i++ {
		d.emit(int64(r.Intn(1 << 16)))
	}
	workBase := d.reserve(workCells)
	d.reserve(256) // guard region under the VM stack
	vmStack := d.reserve(1600)
	handlers := caseLabels("gap_op", numOps)

	var b strings.Builder
	fmt.Fprintf(&b, `# gap: bytecode interpreter with indirect handler calls
        .text
        .func main
main:
        li   $s0, %d              # bytecode pointer
        li   $s1, %d              # bytecode end
        la   $s5, gap_table
        li   $s6, %d              # vector base
        li   $s7, %d              # work area
        li   $s3, %d              # VM evaluation stack pointer
        li   $s2, 0               # accumulator
interp_loop:
        ld   $t0, 0($s0)          # opcode
        sll  $t1, $t0, 3
        add  $t1, $t1, $s5
        ld   $t2, 0($t1)          # handler address
        sll  $a0, $t0, %d         # vector offset for this op
        add  $a0, $a0, $s6
        jalr $ra, $t2             # dispatch (indirect call)
        .targets %s
        add  $s2, $s2, $v0
        addi $s0, $s0, 8
        blt  $s0, $s1, interp_loop
        sd   $s2, 0($s7)
        halt

`, codeBase, codeBase+8*codeLen, vecBase, workBase, vmStack, 7, strings.Join(handlers, ", "))

	// Handlers: a mix of straight-line arithmetic ops and loopy vector ops.
	for m := 0; m < numOps; m++ {
		fmt.Fprintf(&b, "        .func gap_op%d\ngap_op%d:\n", m, m)
		if m%3 == 0 {
			// Vector reduction: a short counted inner loop (loop and
			// loop-fall-through spawn material).
			iters := 4 + r.Intn(5)
			fmt.Fprintf(&b, "        li   $t3, %d\n        li   $v0, 0\n        move $t4, $a0\n", iters)
			fmt.Fprintf(&b, "gap_op%d_loop:\n", m)
			fmt.Fprintf(&b, "        ld   $t5, 0($t4)\n")
			fmt.Fprintf(&b, "        add  $v0, $v0, $t5\n")
			if r.Intn(2) == 0 {
				fmt.Fprintf(&b, "        xori $v0, $v0, %d\n", r.Intn(255))
			}
			fmt.Fprintf(&b, "        addi $t4, $t4, 8\n")
			fmt.Fprintf(&b, "        addi $t3, $t3, -1\n")
			fmt.Fprintf(&b, "        bgtz $t3, gap_op%d_loop\n", m)
			for k := 0; k < 4+r.Intn(6); k++ {
				fmt.Fprintf(&b, "        addi $v0, $v0, %d\n", 1+r.Intn(7))
			}
			// Push the reduction onto the VM evaluation stack: interpreter
			// state carried through memory serializes iteration-grained
			// tasks, as in the real interpreter.
			fmt.Fprintf(&b, "        sd   $v0, 0($s3)\n        addi $s3, $s3, 8\n")
		} else if m%4 == 1 {
			// Combine op: pop two VM stack cells, push the result.
			fmt.Fprintf(&b, "        addi $s3, $s3, -8\n        ld   $t5, 0($s3)\n")
			fmt.Fprintf(&b, "        addi $s3, $s3, -8\n        ld   $t6, 0($s3)\n")
			fmt.Fprintf(&b, "        add  $v0, $t5, $t6\n")
			for k := 0; k < 6+r.Intn(8); k++ {
				switch r.Intn(3) {
				case 0:
					fmt.Fprintf(&b, "        xor  $v0, $v0, $t5\n")
				case 1:
					fmt.Fprintf(&b, "        sll  $t6, $t6, 1\n        add  $v0, $v0, $t6\n")
				case 2:
					fmt.Fprintf(&b, "        addi $v0, $v0, %d\n", 1+r.Intn(9))
				}
			}
			fmt.Fprintf(&b, "        sd   $v0, 0($s3)\n        addi $s3, $s3, 8\n")
		} else {
			// Straight-line arithmetic with one biased hammock.
			fmt.Fprintf(&b, "        ld   $v0, 0($a0)\n        ld   $t5, 8($a0)\n")
			for k := 0; k < 10+r.Intn(14); k++ {
				switch r.Intn(4) {
				case 0:
					fmt.Fprintf(&b, "        add  $v0, $v0, $t5\n")
				case 1:
					fmt.Fprintf(&b, "        mul  $t5, $t5, $v0\n")
				case 2:
					fmt.Fprintf(&b, "        srl  $t6, $v0, %d\n        xor  $v0, $v0, $t6\n", 1+r.Intn(5))
				case 3:
					fmt.Fprintf(&b, "        ld   $t6, %d($a0)\n        add  $t5, $t5, $t6\n", 8*r.Intn(vecLen))
				}
			}
			fmt.Fprintf(&b, "        andi $t6, $v0, 511\n")
			fmt.Fprintf(&b, "        bne  $t6, $zero, gap_op%d_done\n", m)
			fmt.Fprintf(&b, "        addi $v0, $v0, 31\n")
			fmt.Fprintf(&b, "gap_op%d_done:\n", m)
		}
		fmt.Fprintf(&b, "        ret\n\n")
	}

	b.WriteString(d.section())
	fmt.Fprintf(&b, "gap_table:\n        .word8 %s\n", strings.Join(handlers, ", "))

	return Workload{Name: "gap", Source: b.String(), MaxInstrs: 1_500_000}
}
