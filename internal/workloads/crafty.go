package workloads

import "fmt"

// Crafty models the chess engine: an outer loop over positions, each
// searched by a recursive minimax-style routine whose evaluation contains
// cascades of hard-to-predict conditionals over bitboard state, a
// cross-jump into a shared arm (an "other"-category postdominator), and a
// data-dependent popcount loop. A whole-position search is far larger than
// the spawn-distance bound, so loop-iteration spawning cannot parallelize
// it; the gains come from hammocks (and "other") inside the evaluation —
// matching the paper, where hammock spawns speed up crafty while other
// heuristics have little impact.
func Crafty() Workload {
	var d dataBuilder
	historyBase := d.reserve(256)
	resultCell := d.reserve(2)

	const (
		positions = 260
		depth     = 3 // binary tree: 2^(depth+1)-1 = 15 nodes per position
	)

	src := fmt.Sprintf(`# crafty: recursive search with hard evaluation branches
        .text
        .func main
main:
        li   $s7, 88172645463325252   # xorshift state
        li   $s0, %d                  # positions
        li   $s2, 0                   # total score
        li   $s6, %d                  # history table
main_loop:
        sll  $t0, $s7, 13
        xor  $s7, $s7, $t0
        srl  $t0, $s7, 7
        xor  $s7, $s7, $t0
        sll  $t0, $s7, 17
        xor  $s7, $s7, $t0
        move $a0, $s7
        li   $a1, %d
        jal  search
        add  $s2, $s2, $v0
        addi $s0, $s0, -1
        bgtz $s0, main_loop
        li   $t9, %d
        sd   $s2, 0($t9)
        halt

        # search(state, depth) -> score
        .func search
search:
        addi $sp, $sp, -40
        sd   $ra, 0($sp)
        sd   $s3, 8($sp)
        sd   $s4, 16($sp)
        sd   $s5, 24($sp)
        move $s3, $a0             # node state
        move $s4, $a1             # remaining depth
        li   $s5, 0               # node score

        # Evolve the node state (move generation hash).
        sll  $t0, $s3, 7
        xor  $s3, $s3, $t0
        srl  $t0, $s3, 9
        xor  $s3, $s3, $t0

        # --- evaluation: level-1 hammock (side to move, ~50%%) ---
        andi $t1, $s3, 1
        beq  $t1, $zero, ev_black
        srl  $t2, $s3, 8
        andi $t2, $t2, 255
        add  $s5, $s5, $t2
        sll  $t3, $t2, 3
        add  $t3, $t3, $s6
        ld   $t4, 0($t3)          # history heuristic counter
        addi $t4, $t4, 1
        sd   $t4, 0($t3)
        andi $t5, $s3, 2          # level-2 nested hammock (~50%%)
        beq  $t5, $zero, ev_wq
        xor  $s5, $s5, $t2
        addi $s5, $s5, 7
        sll  $t6, $t2, 1
        add  $s5, $s5, $t6
        sra  $t6, $s5, 3
        sub  $s5, $s5, $t6
        j    ev_join1
ev_wq:
        sub  $s5, $s5, $t2
        addi $s5, $s5, 3
        sll  $t6, $s5, 1
        xor  $s5, $s5, $t6
        andi $s5, $s5, 0xffffff
        j    ev_join1
ev_black:
        srl  $t2, $s3, 16
        andi $t2, $t2, 255
        sub  $s5, $s5, $t2
        sll  $t3, $t2, 3
        add  $t3, $t3, $s6
        ld   $t4, 0($t3)
        addi $t4, $t4, -1
        sd   $t4, 0($t3)
        addi $s5, $s5, 21
        sra  $t6, $s5, 2
        add  $s5, $s5, $t6
ev_join1:
        # --- pawn structure: cross-jump into the king-safety arm
        #     ("other" postdominators) ---
        andi $t1, $s3, 16
        beq  $t1, $zero, ev_king
        srl  $t6, $s3, 24
        andi $t6, $t6, 63
        add  $s5, $s5, $t6
        sll  $t7, $t6, 2
        sub  $s5, $s5, $t7
        j    ev_shared_tail
ev_king:
        andi $t6, $s3, 32
        beq  $t6, $zero, ev_join2
        addi $s5, $s5, 11
        sll  $t7, $s5, 1
        xor  $s5, $s5, $t7
ev_shared_tail:
        sra  $t7, $s5, 2
        xor  $s5, $s5, $t7
        andi $s5, $s5, 0xfffff
ev_join2:
        # --- mobility: data-dependent popcount loop (1-8 trips) ---
        srl  $t0, $s3, 32
        andi $t0, $t0, 255
        li   $t1, 0
pop_loop:
        andi $t3, $t0, 1
        add  $t1, $t1, $t3
        srl  $t0, $t0, 1
        bne  $t0, $zero, pop_loop
        add  $s5, $s5, $t1

        # --- recursion: two children unless at a leaf ---
        blez $s4, search_leaf
        srl  $a0, $s3, 1
        xori $a0, $a0, 0x3c5a
        addi $a1, $s4, -1
        jal  search
        add  $s5, $s5, $v0
        sll  $a0, $s3, 1
        xor  $a0, $a0, $s3
        addi $a1, $s4, -1
        jal  search
        sub  $s5, $s5, $v0        # negamax flavor
search_leaf:
        move $v0, $s5
        ld   $ra, 0($sp)
        ld   $s3, 8($sp)
        ld   $s4, 16($sp)
        ld   $s5, 24($sp)
        addi $sp, $sp, 40
        ret

%s`, positions, historyBase, depth, resultCell, d.section())

	return Workload{Name: "crafty", Source: src, MaxInstrs: 1_500_000}
}
