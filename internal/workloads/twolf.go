package workloads

import "fmt"

// Twolf reproduces the paper's motivating example (Section 2.3, Figure 6):
// the new_dbox_a function of SPEC2000 twolf. The kernel walks an outer
// linked list of terminals; for each, an inner linked list of nets
// (averaging three nodes, as the paper reports) is traversed. The inner
// body contains the if-then-else on netptr->flag — taken about 30% of the
// time — and the two ABS() if-then hammocks, each taken about 50% of the
// time, with the next-pointer loads placed immediately before the loop
// branches, exactly as in the paper's assembly listing.
//
// The real twolf calls new_dbox_a repeatedly with fresh flags; here main
// re-flags the net nodes between calls (a cheap, predictable setup pass
// over the contiguous node array), keeping the flag branch at ~30% taken
// on every pass and giving the data set cross-pass cache reuse.
func Twolf() Workload {
	r := rng(0x7201f)
	var d dataBuilder

	const (
		outerNodes = 400
		passes     = 7
		oldMean    = 500
		newMean    = 480
	)

	costCell := d.emit(0)

	// Terminal nodes first (contiguous): {nextterm, netptr}.
	termBase := d.addr()
	for i := 0; i < outerNodes; i++ {
		next := int64(0)
		if i+1 < outerNodes {
			next = int64(termBase + uint64(16*(i+1)))
		}
		d.emit(next, 0) // netptr patched below
	}

	// Net nodes second (contiguous): {nterm, xpos, flag, newx}.
	netBase := d.addr()
	numNets := 0
	for i := 0; i < outerNodes; i++ {
		n := 1 + r.Intn(5) // avg 3 inner iterations
		first := d.addr()
		d.patch(termBase+uint64(16*i)+8, int64(first))
		for j := 0; j < n; j++ {
			next := int64(0)
			if j+1 < n {
				next = int64(d.addr() + 32)
			}
			xpos := int64(oldMean + r.Intn(201) - 100) // ABS sign ~50/50
			newx := int64(newMean + r.Intn(201) - 100)
			d.emit(next, xpos, 0, newx) // flag written by the re-flag pass
			numNets++
		}
	}

	src := fmt.Sprintf(`# twolf: the new_dbox_a kernel of Figure 6
        .text
        .func main
main:
        li   $s4, %d              # passes
        li   $s5, 1               # pass-varying flag salt
main_pass:
        # Re-flag pass: flag = ((xpos * salt) >> 5) & 3 < 3, i.e. ~75%% ones.
        li   $t0, %d              # net node cursor
        li   $t1, %d              # net region end
reflag_loop:
        ld   $t2, 8($t0)          # xpos
        mul  $t2, $t2, $s5
        srl  $t2, $t2, 5
        andi $t2, $t2, 3
        slti $t3, $t2, 3
        sd   $t3, 16($t0)         # flag
        addi $t0, $t0, 32
        blt  $t0, $t1, reflag_loop
        addi $s5, $s5, 2          # new salt each pass

        li   $a0, %d              # antrmptr
        li   $a1, %d              # costptr
        jal  new_dbox_a
        addi $s4, $s4, -1
        bgtz $s4, main_pass
        halt

        .func new_dbox_a
new_dbox_a:
        li   $t9, %d              # new_mean
        li   $t8, %d              # old_mean
        ld   $s2, 0($a1)          # *costptr
        beq  $a0, $zero, outer_done
outer_body:
        ld   $s0, 8($a0)          # netptr = termptr->netptr
        beq  $s0, $zero, inner_done
inner_body:
        ld   $t0, 16($s0)         # netptr->flag
        ld   $t1, 8($s0)          # oldx = netptr->xpos
        li   $t2, 1
        bne  $t0, $t2, else_part  # if-then-else branch (~30%% taken)
        ld   $t3, 24($s0)         # newx = netptr->newx
        sd   $zero, 16($s0)       # netptr->flag = 0
        j    join1
else_part:
        move $t3, $t1             # newx = oldx
join1:
        sub  $t4, $t3, $t9        # ABS(newx - new_mean)
        bgez $t4, join2           # if-then hammock (~50%% taken)
        neg  $t4, $t4
join2:
        sub  $t5, $t1, $t8        # ABS(oldx - old_mean)
        bgez $t5, join3           # if-then hammock (~50%% taken)
        neg  $t5, $t5
join3:
        sub  $t6, $t4, $t5
        add  $s2, $s2, $t6        # *costptr += ...
        ld   $s0, 0($s0)          # netptr = netptr->nterm (just before the branch)
        bne  $s0, $zero, inner_body   # inner loop branch
inner_done:
        ld   $a0, 0($a0)          # termptr = termptr->nextterm
        bne  $a0, $zero, outer_body   # outer loop branch
outer_done:
        sd   $s2, 0($a1)
        ret

%s`, passes, netBase, netBase+uint64(32*numNets), termBase, costCell,
		newMean, oldMean, d.section())

	return Workload{Name: "twolf", Source: src, MaxInstrs: 1_500_000}
}
