package kernels

// MatMul reads n and a seed from stdin, fills two n×n int64 matrices with
// small LCG values in [-8, 7], multiplies them with the classic triple
// loop (pointer-strided inner product), and prints the trace and full sum
// of the product. The tight counted inner loop with no control hazards is
// the family's best case for the superscalar baseline — a useful contrast
// point for the spawn-attribution numbers.
func MatMul() Program {
	const src = `# matmul: n x n int64 triple-loop product over sbrk'd matrices
        .text
        .func main
main:
        li   $v0, 5
        syscall                   # read n
        move $s0, $v0
        li   $v0, 5
        syscall                   # read seed
        move $s1, $v0
        mul  $s5, $s0, $s0        # n^2 elements per matrix
        sll  $a0, $s5, 3
        li   $v0, 9
        syscall
        move $s2, $v0             # A
        sll  $a0, $s5, 3
        li   $v0, 9
        syscall
        move $s3, $v0             # B
        sll  $a0, $s5, 3
        li   $v0, 9
        syscall
        move $s4, $v0             # C

        # fill A then B with (lcg() & 15) - 8
        li   $t9, 1103515245
        move $t0, $zero
mm_fill_a:
        bge  $t0, $s5, mm_fill_a_done
        mul  $s1, $s1, $t9
        addi $s1, $s1, 12345
        li   $t1, 0x7fffffff
        and  $s1, $s1, $t1
        andi $t2, $s1, 15
        addi $t2, $t2, -8
        sll  $t3, $t0, 3
        add  $t3, $s2, $t3
        sd   $t2, 0($t3)
        addi $t0, $t0, 1
        j    mm_fill_a
mm_fill_a_done:
        move $t0, $zero
mm_fill_b:
        bge  $t0, $s5, mm_fill_b_done
        mul  $s1, $s1, $t9
        addi $s1, $s1, 12345
        li   $t1, 0x7fffffff
        and  $s1, $s1, $t1
        andi $t2, $s1, 15
        addi $t2, $t2, -8
        sll  $t3, $t0, 3
        add  $t3, $s3, $t3
        sd   $t2, 0($t3)
        addi $t0, $t0, 1
        j    mm_fill_b
mm_fill_b_done:

        # C[i][j] = sum_k A[i][k] * B[k][j]
        move $t0, $zero           # i
mm_i:
        bge  $t0, $s0, mm_done
        move $t1, $zero           # j
mm_j:
        bge  $t1, $s0, mm_i_next
        move $t4, $zero           # accumulator
        mul  $t5, $t0, $s0
        sll  $t5, $t5, 3
        add  $t5, $s2, $t5        # pa = &A[i][0]
        sll  $t6, $t1, 3
        add  $t6, $s3, $t6        # pb = &B[0][j]
        sll  $t7, $s0, 3          # row stride in bytes
        move $t2, $zero           # k
mm_k:
        bge  $t2, $s0, mm_k_done
        ld   $t8, 0($t5)
        ld   $a2, 0($t6)
        mul  $t8, $t8, $a2
        add  $t4, $t4, $t8
        addi $t5, $t5, 8
        add  $t6, $t6, $t7
        addi $t2, $t2, 1
        j    mm_k
mm_k_done:
        mul  $t5, $t0, $s0
        add  $t5, $t5, $t1
        sll  $t5, $t5, 3
        add  $t5, $s4, $t5
        sd   $t4, 0($t5)          # C[i][j]
        addi $t1, $t1, 1
        j    mm_j
mm_i_next:
        addi $t0, $t0, 1
        j    mm_i
mm_done:

        # trace = sum C[i][i], total = sum of all cells
        move $t0, $zero
        move $s6, $zero           # trace
        move $s7, $zero           # total
mm_reduce:
        bge  $t0, $s5, mm_reduce_done
        sll  $t3, $t0, 3
        add  $t3, $s4, $t3
        ld   $t2, 0($t3)
        add  $s7, $s7, $t2
        # on the diagonal iff index mod (n+1) == 0
        addi $t4, $s0, 1
        rem  $t5, $t0, $t4
        bne  $t5, $zero, mm_reduce_next
        add  $s6, $s6, $t2
mm_reduce_next:
        addi $t0, $t0, 1
        j    mm_reduce
mm_reduce_done:

        la   $a0, m_name
        li   $v0, 4
        syscall
        move $a0, $s0
        li   $v0, 1
        syscall
        la   $a0, m_tr
        li   $v0, 4
        syscall
        move $a0, $s6
        li   $v0, 1
        syscall
        la   $a0, m_sum
        li   $v0, 4
        syscall
        move $a0, $s7
        li   $v0, 1
        syscall
        li   $a0, 10
        li   $v0, 11
        syscall
        li   $v0, 10
        syscall

        .data
m_name: .asciiz "matmul "
m_tr:   .asciiz "\ntrace "
m_sum:  .asciiz "\nsum "
`
	return Program{
		Name:      "matmul",
		Source:    src,
		Stdin:     []byte("32 5\n"),
		MaxInstrs: 2_000_000,
	}
}
