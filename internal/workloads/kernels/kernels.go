// Package kernels provides the second workload family: five classic
// algorithmic kernels (quicksort, RLE codec, BFS, matmul, string search)
// written against the sysos syscall ABI. Unlike the synthetic family —
// whose data is baked into the .data segment by Go generators — these
// programs read parameters from a preloaded stdin, build their working
// sets at runtime with an LCG over the sbrk heap, and report results
// through print syscalls, so every run exercises the loader + OS path
// end to end and its console output doubles as a correctness oracle
// (each kernel's output is pinned against a Go reference implementation
// in kernels_test.go).
//
// The package deliberately does not import internal/workloads (which
// imports it); Program carries just what the registry needs to wrap one
// kernel into a Workload.
package kernels

// lcgA/lcgC are the ANSI C rand() constants; every kernel that
// synthesizes data steps x = (x*lcgA + lcgC) & 0x7fffffff, and the Go
// oracles in the tests mirror the same recurrence.
const (
	lcgA = 1103515245
	lcgC = 12345
)

// Program is one kernel: assembly source plus the stdin that
// parameterizes it and an emulation cap (programs exit via syscall well
// before the cap).
type Program struct {
	Name      string
	Source    string
	Stdin     []byte
	MaxInstrs int
}

// All returns the five kernels in fixed family order.
func All() []Program {
	return []Program{Quicksort(), RLE(), BFS(), MatMul(), StrSearch()}
}

// Names returns the kernel names in family order.
func Names() []string {
	var out []string
	for _, p := range All() {
		out = append(out, p.Name)
	}
	return out
}
