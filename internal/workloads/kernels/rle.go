package kernels

// RLE reads a seed and source length from stdin, synthesizes a bytestream
// of short runs over a four-letter alphabet, compresses it into
// (count, byte) pairs, decompresses the pairs, and verifies the round
// trip byte for byte. Four sequential byte-granular passes with
// data-dependent run lengths — the shape bzip2's coding stages take.
func RLE() Program {
	const src = `# rle: run-length compress + decompress + verify round trip
        .text
        .func main
main:
        li   $v0, 5
        syscall                   # read seed
        move $s6, $v0
        li   $v0, 5
        syscall                   # read source length
        move $s0, $v0

        move $a0, $s0
        li   $v0, 9
        syscall
        move $s1, $v0             # src buffer
        sll  $a0, $s0, 1
        li   $v0, 9
        syscall
        move $s2, $v0             # enc buffer (worst case 2x)
        move $a0, $s0
        li   $v0, 9
        syscall
        move $s3, $v0             # dec buffer

        # generate src as runs: byte 'a'+(x&3), length ((x>>2)&7)+1
        move $t0, $zero           # i
        li   $s7, 1103515245
rle_gen:
        bge  $t0, $s0, rle_gen_done
        mul  $s6, $s6, $s7
        addi $s6, $s6, 12345
        li   $t1, 0x7fffffff
        and  $s6, $s6, $t1
        andi $t2, $s6, 3
        addi $t2, $t2, 97         # run byte
        srl  $t3, $s6, 2
        andi $t3, $t3, 7
        addi $t3, $t3, 1          # run length 1..8
rle_gen_run:
        blez $t3, rle_gen
        bge  $t0, $s0, rle_gen_done
        add  $t4, $s1, $t0
        sb   $t2, 0($t4)
        addi $t0, $t0, 1
        addi $t3, $t3, -1
        j    rle_gen_run
rle_gen_done:

        # compress into (count, byte) pairs, count capped at 255
        move $t0, $zero           # src index
        move $t5, $zero           # enc length
rle_comp:
        bge  $t0, $s0, rle_comp_done
        add  $t4, $s1, $t0
        lbu  $t2, 0($t4)          # run byte
        move $t3, $zero           # run count
rle_comp_run:
        bge  $t0, $s0, rle_comp_emit
        add  $t4, $s1, $t0
        lbu  $t6, 0($t4)
        bne  $t6, $t2, rle_comp_emit
        li   $t7, 255
        bge  $t3, $t7, rle_comp_emit
        addi $t3, $t3, 1
        addi $t0, $t0, 1
        j    rle_comp_run
rle_comp_emit:
        add  $t4, $s2, $t5
        sb   $t3, 0($t4)
        addi $t5, $t5, 1
        add  $t4, $s2, $t5
        sb   $t2, 0($t4)
        addi $t5, $t5, 1
        j    rle_comp
rle_comp_done:
        move $s4, $t5             # enc length

        # decompress
        move $t0, $zero           # enc index
        move $t1, $zero           # dec index
rle_dec:
        bge  $t0, $s4, rle_dec_done
        add  $t4, $s2, $t0
        lbu  $t3, 0($t4)          # count
        addi $t0, $t0, 1
        add  $t4, $s2, $t0
        lbu  $t2, 0($t4)          # byte
        addi $t0, $t0, 1
rle_dec_run:
        blez $t3, rle_dec
        add  $t4, $s3, $t1
        sb   $t2, 0($t4)
        addi $t1, $t1, 1
        addi $t3, $t3, -1
        j    rle_dec_run
rle_dec_done:

        # compare src vs dec
        move $t0, $zero
        move $s5, $zero           # mismatches
rle_cmp:
        bge  $t0, $s0, rle_cmp_done
        add  $t4, $s1, $t0
        lbu  $t2, 0($t4)
        add  $t4, $s3, $t0
        lbu  $t3, 0($t4)
        beq  $t2, $t3, rle_cmp_ok
        addi $s5, $s5, 1
rle_cmp_ok:
        addi $t0, $t0, 1
        j    rle_cmp
rle_cmp_done:

        # checksum the encoding: crc = (crc*31 + b) & 0xffffff
        move $t0, $zero
        move $s6, $zero
rle_sum:
        bge  $t0, $s4, rle_sum_done
        add  $t4, $s2, $t0
        lbu  $t2, 0($t4)
        li   $t3, 31
        mul  $s6, $s6, $t3
        add  $s6, $s6, $t2
        li   $t3, 0xffffff
        and  $s6, $s6, $t3
        addi $t0, $t0, 1
        j    rle_sum
rle_sum_done:

        la   $a0, m_name
        li   $v0, 4
        syscall
        move $a0, $s0
        li   $v0, 1
        syscall
        la   $a0, m_enc
        li   $v0, 4
        syscall
        move $a0, $s4
        li   $v0, 1
        syscall
        la   $a0, m_bad
        li   $v0, 4
        syscall
        move $a0, $s5
        li   $v0, 1
        syscall
        la   $a0, m_crc
        li   $v0, 4
        syscall
        move $a0, $s6
        li   $v0, 1
        syscall
        li   $a0, 10
        li   $v0, 11
        syscall
        li   $v0, 10
        syscall

        .data
m_name: .asciiz "rle "
m_enc:  .asciiz "\nenc "
m_bad:  .asciiz "\nbad "
m_crc:  .asciiz "\ncrc "
`
	return Program{
		Name:      "rle",
		Source:    src,
		Stdin:     []byte("7 10000\n"),
		MaxInstrs: 2_000_000,
	}
}
