package kernels

// StrSearch reads a text length, a seed, and a pattern from stdin (the
// pattern arrives through read_char, exercising byte-level console
// input), synthesizes the text over a four-letter alphabet, and counts
// naive-search matches. The inner comparison loop almost always exits on
// its first iteration — a stream of highly biased, data-dependent
// branches, the shape the paper sees in string/parser codes.
func StrSearch() Program {
	const src = `# strsearch: naive pattern scan over LCG text, pattern from stdin
        .text
        .func main
main:
        li   $v0, 5
        syscall                   # read text length
        move $s0, $v0
        li   $v0, 5
        syscall                   # read seed
        move $s1, $v0

        # read pattern bytes into pbuf: skip leading whitespace, stop on
        # newline/space/EOF or a full buffer
        la   $t0, pbuf
        move $s2, $zero           # pattern length
ss_rdp:
        li   $v0, 12
        syscall                   # read_char
        bltz $v0, ss_rdp_done     # EOF
        li   $t1, 32
        beq  $v0, $t1, ss_rdp_sp
        li   $t1, 10
        beq  $v0, $t1, ss_rdp_done
        li   $t1, 13
        beq  $v0, $t1, ss_rdp_done
        add  $t2, $t0, $s2
        sb   $v0, 0($t2)
        addi $s2, $s2, 1
        li   $t1, 63
        bge  $s2, $t1, ss_rdp_done
        j    ss_rdp
ss_rdp_sp:
        blez $s2, ss_rdp          # leading space: keep skipping
        j    ss_rdp_done          # trailing space ends the pattern
ss_rdp_done:

        # generate text: 'a' + (lcg() & 3)
        move $a0, $s0
        li   $v0, 9
        syscall
        move $s3, $v0             # text buffer
        move $t0, $zero
        li   $t9, 1103515245
ss_gen:
        bge  $t0, $s0, ss_gen_done
        mul  $s1, $s1, $t9
        addi $s1, $s1, 12345
        li   $t1, 0x7fffffff
        and  $s1, $s1, $t1
        andi $t2, $s1, 3
        addi $t2, $t2, 97
        add  $t3, $s3, $t0
        sb   $t2, 0($t3)
        addi $t0, $t0, 1
        j    ss_gen
ss_gen_done:

        # naive search: for each start i <= T-plen, extend while equal
        move $s4, $zero           # match count
        move $s5, $zero           # sum of match positions
        sub  $s6, $s0, $s2        # last valid start
        move $t0, $zero           # i
        la   $t8, pbuf
ss_outer:
        bgt  $t0, $s6, ss_done
        move $t1, $zero           # j
ss_inner:
        bge  $t1, $s2, ss_hit
        add  $t2, $s3, $t0
        add  $t2, $t2, $t1
        lbu  $t3, 0($t2)
        add  $t4, $t8, $t1
        lbu  $t5, 0($t4)
        bne  $t3, $t5, ss_next
        addi $t1, $t1, 1
        j    ss_inner
ss_hit:
        addi $s4, $s4, 1
        add  $s5, $s5, $t0
ss_next:
        addi $t0, $t0, 1
        j    ss_outer
ss_done:

        la   $a0, m_name
        li   $v0, 4
        syscall
        move $a0, $s0
        li   $v0, 1
        syscall
        la   $a0, m_plen
        li   $v0, 4
        syscall
        move $a0, $s2
        li   $v0, 1
        syscall
        la   $a0, m_hits
        li   $v0, 4
        syscall
        move $a0, $s4
        li   $v0, 1
        syscall
        la   $a0, m_pos
        li   $v0, 4
        syscall
        move $a0, $s5
        li   $v0, 1
        syscall
        li   $a0, 10
        li   $v0, 11
        syscall
        li   $v0, 10
        syscall

        .data
m_name: .asciiz "strsearch "
m_plen: .asciiz "\nplen "
m_hits: .asciiz "\nhits "
m_pos:  .asciiz "\npossum "
pbuf:   .space 64
`
	return Program{
		Name:      "strsearch",
		Source:    src,
		Stdin:     []byte("12000 3 abcab\n"),
		MaxInstrs: 2_000_000,
	}
}
