package kernels

// BFS reads V, E, and a seed from stdin, generates E random directed
// edges, builds a CSR adjacency structure in place (degree count, prefix
// sum, cursor fill), then runs breadth-first search from vertex 0 with an
// explicit queue and reports reachability and the distance sum. Pointer-
// chasing loads feeding hard-to-predict visited tests — mcf's shape, but
// over a runtime-built heap.
func BFS() Program {
	const src = `# bfs: random digraph -> CSR -> breadth-first search from vertex 0
        .text
        .func main
main:
        li   $v0, 5
        syscall                   # read V
        move $s0, $v0
        li   $v0, 5
        syscall                   # read E
        move $s1, $v0
        li   $v0, 5
        syscall                   # read seed
        move $s2, $v0

        sll  $a0, $s1, 3
        li   $v0, 9
        syscall
        move $s3, $v0             # eu[E] edge sources
        sll  $a0, $s1, 3
        li   $v0, 9
        syscall
        move $s4, $v0             # ev[E] edge targets
        addi $t0, $s0, 1
        sll  $a0, $t0, 3
        li   $v0, 9
        syscall
        move $s5, $v0             # off[V+1]: degrees, then offsets
        sll  $a0, $s1, 3
        li   $v0, 9
        syscall
        move $s6, $v0             # adj[E]
        sll  $a0, $s0, 3
        li   $v0, 9
        syscall
        move $s7, $v0             # dist[V]

        # generate edges u=lcg()%V, v=lcg()%V and count degrees
        move $t0, $zero
        li   $t9, 1103515245
bfs_gen:
        bge  $t0, $s1, bfs_gen_done
        mul  $s2, $s2, $t9
        addi $s2, $s2, 12345
        li   $t1, 0x7fffffff
        and  $s2, $s2, $t1
        rem  $t2, $s2, $s0        # u
        mul  $s2, $s2, $t9
        addi $s2, $s2, 12345
        li   $t1, 0x7fffffff
        and  $s2, $s2, $t1
        rem  $t3, $s2, $s0        # v
        sll  $t4, $t0, 3
        add  $t5, $s3, $t4
        sd   $t2, 0($t5)
        add  $t5, $s4, $t4
        sd   $t3, 0($t5)
        sll  $t4, $t2, 3
        add  $t5, $s5, $t4
        ld   $t6, 0($t5)
        addi $t6, $t6, 1
        sd   $t6, 0($t5)          # deg[u]++
        addi $t0, $t0, 1
        j    bfs_gen
bfs_gen_done:

        # prefix sum: off[i] <- sum of deg[0..i-1]
        move $t0, $zero
        move $t7, $zero           # running total
bfs_pfx:
        bgt  $t0, $s0, bfs_pfx_done
        sll  $t4, $t0, 3
        add  $t5, $s5, $t4
        ld   $t6, 0($t5)
        sd   $t7, 0($t5)
        add  $t7, $t7, $t6
        addi $t0, $t0, 1
        j    bfs_pfx
bfs_pfx_done:

        # fill adj with off as cursors; afterwards off[u] = end offset of u
        move $t0, $zero
bfs_fill:
        bge  $t0, $s1, bfs_fill_done
        sll  $t4, $t0, 3
        add  $t5, $s3, $t4
        ld   $t2, 0($t5)          # u
        add  $t5, $s4, $t4
        ld   $t3, 0($t5)          # v
        sll  $t4, $t2, 3
        add  $t5, $s5, $t4
        ld   $t6, 0($t5)          # cursor
        sll  $t4, $t6, 3
        add  $t4, $s6, $t4
        sd   $t3, 0($t4)          # adj[cursor] = v
        addi $t6, $t6, 1
        sd   $t6, 0($t5)
        addi $t0, $t0, 1
        j    bfs_fill
bfs_fill_done:

        # dist[] = -1
        move $t0, $zero
        li   $t1, -1
bfs_init:
        bge  $t0, $s0, bfs_init_done
        sll  $t4, $t0, 3
        add  $t5, $s7, $t4
        sd   $t1, 0($t5)
        addi $t0, $t0, 1
        j    bfs_init
bfs_init_done:

        # queue (fresh allocation; eu/ev are dead after the fill)
        sll  $a0, $s0, 3
        li   $v0, 9
        syscall
        move $s3, $v0             # queue[V]
        sd   $zero, 0($s7)        # dist[0] = 0
        sd   $zero, 0($s3)        # queue[0] = 0
        move $t0, $zero           # head
        li   $t1, 1               # tail
bfs_loop:
        bge  $t0, $t1, bfs_loop_done
        sll  $t4, $t0, 3
        add  $t5, $s3, $t4
        ld   $t2, 0($t5)          # u
        addi $t0, $t0, 1
        beq  $t2, $zero, bfs_u0
        addi $t4, $t2, -1
        sll  $t4, $t4, 3
        add  $t5, $s5, $t4
        ld   $t3, 0($t5)          # start = off[u-1]
        j    bfs_have_start
bfs_u0:
        move $t3, $zero           # vertex 0 starts at offset 0
bfs_have_start:
        sll  $t4, $t2, 3
        add  $t5, $s5, $t4
        ld   $t6, 0($t5)          # end = off[u]
        sll  $t4, $t2, 3
        add  $t5, $s7, $t4
        ld   $t7, 0($t5)          # du = dist[u]
bfs_nbrs:
        bge  $t3, $t6, bfs_loop
        sll  $a2, $t3, 3
        add  $a2, $s6, $a2
        ld   $t8, 0($a2)          # w = adj[cursor]
        addi $t3, $t3, 1
        sll  $a3, $t8, 3
        add  $a3, $s7, $a3        # &dist[w]
        ld   $a2, 0($a3)
        bgez $a2, bfs_nbrs        # already visited
        addi $a2, $t7, 1
        sd   $a2, 0($a3)          # dist[w] = du + 1
        sll  $a2, $t1, 3
        add  $a2, $s3, $a2
        sd   $t8, 0($a2)          # enqueue w
        addi $t1, $t1, 1
        j    bfs_nbrs
bfs_loop_done:

        # tally visited count and distance sum
        move $t0, $zero
        move $s2, $zero           # visited
        move $s4, $zero           # distance sum
bfs_tally:
        bge  $t0, $s0, bfs_tally_done
        sll  $t4, $t0, 3
        add  $t5, $s7, $t4
        ld   $t2, 0($t5)
        bltz $t2, bfs_tally_next
        addi $s2, $s2, 1
        add  $s4, $s4, $t2
bfs_tally_next:
        addi $t0, $t0, 1
        j    bfs_tally
bfs_tally_done:

        la   $a0, m_name
        li   $v0, 4
        syscall
        move $a0, $s0
        li   $v0, 1
        syscall
        la   $a0, m_sep
        li   $v0, 4
        syscall
        move $a0, $s1
        li   $v0, 1
        syscall
        la   $a0, m_vis
        li   $v0, 4
        syscall
        move $a0, $s2
        li   $v0, 1
        syscall
        la   $a0, m_sum
        li   $v0, 4
        syscall
        move $a0, $s4
        li   $v0, 1
        syscall
        li   $a0, 10
        li   $v0, 11
        syscall
        li   $v0, 10
        syscall

        .data
m_name: .asciiz "bfs "
m_sep:  .asciiz " "
m_vis:  .asciiz "\nvisited "
m_sum:  .asciiz "\nsum "
`
	return Program{
		Name:      "bfs",
		Source:    src,
		Stdin:     []byte("1500 6000 99\n"),
		MaxInstrs: 2_000_000,
	}
}
