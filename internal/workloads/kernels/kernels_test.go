package kernels_test

import (
	"fmt"
	"testing"

	"repro/internal/sysos"
	"repro/internal/workloads/kernels"
)

// lcg mirrors the in-kernel generator; every oracle below replays the
// same recurrence the assembly runs.
type lcg struct{ x int64 }

func (l *lcg) next() int64 {
	l.x = (l.x*1103515245 + 12345) & 0x7fffffff
	return l.x
}

// oracles computes each kernel's expected stdout with a straightforward
// Go re-implementation. Keyed by kernel name.
var oracles = map[string]func() string{
	"quicksort": func() string {
		const n, seed = 1500, 42
		g := lcg{seed}
		a := make([]int64, n)
		var sum int64
		for i := range a {
			a[i] = g.next() & 0xffff
			sum += a[i]
		}
		// Any correct sort gives the same min/max/sum; inversions must be 0.
		min, max := a[0], a[0]
		for _, v := range a[1:] {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return fmt.Sprintf("qsort %d\nsum %d\ninv 0\nmin %d\nmax %d\n", n, sum, min, max)
	},
	"rle": func() string {
		const seed, n = 7, 10000
		g := lcg{seed}
		src := make([]byte, 0, n)
		for len(src) < n {
			x := g.next()
			c := byte('a' + x&3)
			r := int((x>>2)&7) + 1
			for ; r > 0 && len(src) < n; r-- {
				src = append(src, c)
			}
		}
		var enc []byte
		for i := 0; i < n; {
			c := src[i]
			cnt := 0
			for i < n && src[i] == c && cnt < 255 {
				cnt++
				i++
			}
			enc = append(enc, byte(cnt), c)
		}
		var crc int64
		for _, b := range enc {
			crc = (crc*31 + int64(b)) & 0xffffff
		}
		// The decompressor must reproduce src exactly, so bad = 0.
		return fmt.Sprintf("rle %d\nenc %d\nbad 0\ncrc %d\n", n, len(enc), crc)
	},
	"bfs": func() string {
		const v, e, seed = 1500, 6000, 99
		g := lcg{seed}
		adj := make([][]int, v)
		for i := 0; i < e; i++ {
			u := int(g.next() % v)
			w := int(g.next() % v)
			adj[u] = append(adj[u], w)
		}
		dist := make([]int64, v)
		for i := range dist {
			dist[i] = -1
		}
		dist[0] = 0
		queue := []int{0}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range adj[u] {
				if dist[w] < 0 {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		var visited, sum int64
		for _, d := range dist {
			if d >= 0 {
				visited++
				sum += d
			}
		}
		return fmt.Sprintf("bfs %d %d\nvisited %d\nsum %d\n", v, e, visited, sum)
	},
	"matmul": func() string {
		const n, seed = 32, 5
		g := lcg{seed}
		fill := func() []int64 {
			m := make([]int64, n*n)
			for i := range m {
				m[i] = (g.next() & 15) - 8
			}
			return m
		}
		a, b := fill(), fill()
		var trace, sum int64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var acc int64
				for k := 0; k < n; k++ {
					acc += a[i*n+k] * b[k*n+j]
				}
				sum += acc
				if i == j {
					trace += acc
				}
			}
		}
		return fmt.Sprintf("matmul %d\ntrace %d\nsum %d\n", n, trace, sum)
	},
	"strsearch": func() string {
		const tlen, seed, pat = 12000, 3, "abcab"
		g := lcg{seed}
		text := make([]byte, tlen)
		for i := range text {
			text[i] = byte('a' + g.next()&3)
		}
		var hits, possum int64
		for i := 0; i+len(pat) <= tlen; i++ {
			if string(text[i:i+len(pat)]) == pat {
				hits++
				possum += int64(i)
			}
		}
		return fmt.Sprintf("strsearch %d\nplen %d\nhits %d\npossum %d\n", tlen, len(pat), hits, possum)
	},
}

// TestKernelsMatchOracles runs every kernel through the loader + OS path
// and compares its console output byte-for-byte against the Go reference.
func TestKernelsMatchOracles(t *testing.T) {
	for _, k := range kernels.All() {
		t.Run(k.Name, func(t *testing.T) {
			oracle, ok := oracles[k.Name]
			if !ok {
				t.Fatalf("no oracle for kernel %q", k.Name)
			}
			p, err := sysos.LoadSource(k.Source)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sysos.Run(p, sysos.Config{Stdin: k.Stdin}, k.MaxInstrs)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Exited || res.ExitCode != 0 {
				t.Fatalf("exit = (%d, %v), want clean syscall exit", res.ExitCode, res.Exited)
			}
			if got, want := string(res.Output), oracle(); got != want {
				t.Fatalf("output mismatch\n got: %q\nwant: %q", got, want)
			}
			// The family must be substantial enough to be a benchmark, not
			// a smoke test, and must leave headroom under its own cap.
			if res.Count < 100_000 {
				t.Errorf("only %d dynamic instructions, want >= 100000", res.Count)
			}
			if res.Count >= int64(k.MaxInstrs) {
				t.Errorf("ran into the %d-instruction cap", k.MaxInstrs)
			}
			t.Logf("%s: %d dynamic instructions, %d output bytes", k.Name, res.Count, len(res.Output))
		})
	}
}

func TestKernelRunsAreDeterministic(t *testing.T) {
	for _, k := range kernels.All() {
		p, err := sysos.LoadSource(k.Source)
		if err != nil {
			t.Fatal(err)
		}
		a, err := sysos.Run(p, sysos.Config{Stdin: k.Stdin}, k.MaxInstrs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sysos.Run(p, sysos.Config{Stdin: k.Stdin}, k.MaxInstrs)
		if err != nil {
			t.Fatal(err)
		}
		if string(a.Output) != string(b.Output) || a.Count != b.Count {
			t.Errorf("%s: two runs differ (%d vs %d instrs)", k.Name, a.Count, b.Count)
		}
	}
}
