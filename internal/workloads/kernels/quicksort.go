package kernels

// Quicksort reads N and an LCG seed from stdin, fills an sbrk'd array
// with pseudo-random 16-bit values, sorts it with recursive Lomuto
// quicksort, then verifies the order and prints a summary. The recursive
// partition gives the attribution pass procedure-boundary spawn points on
// top of the loop-heavy fill/verify passes.
func Quicksort() Program {
	const src = `# quicksort: recursive Lomuto partition over an sbrk'd array
        .text
        .func main
main:
        li   $v0, 5
        syscall                   # read N
        move $s0, $v0
        li   $v0, 5
        syscall                   # read seed
        move $s1, $v0
        sll  $a0, $s0, 3
        li   $v0, 9
        syscall                   # sbrk(8*N)
        move $s2, $v0             # array base

        # fill a[i] = lcg() & 0xffff
        move $t0, $zero
        move $t1, $s2
        li   $s3, 1103515245
qs_fill:
        bge  $t0, $s0, qs_fill_done
        mul  $s1, $s1, $s3
        addi $s1, $s1, 12345
        li   $t2, 0x7fffffff
        and  $s1, $s1, $t2
        andi $t3, $s1, 0xffff
        sd   $t3, 0($t1)
        addi $t1, $t1, 8
        addi $t0, $t0, 1
        j    qs_fill
qs_fill_done:

        # qsort(&a[0], &a[N-1])
        move $a0, $s2
        addi $t0, $s0, -1
        sll  $t0, $t0, 3
        add  $a1, $s2, $t0
        call qsort

        # verify ascending order and sum the array
        move $t0, $zero
        move $t1, $s2
        move $s4, $zero           # sum
        move $s5, $zero           # inversions
        li   $t4, -1              # prev
qs_check:
        bge  $t0, $s0, qs_check_done
        ld   $t2, 0($t1)
        add  $s4, $s4, $t2
        bge  $t2, $t4, qs_check_ok
        addi $s5, $s5, 1
qs_check_ok:
        move $t4, $t2
        addi $t1, $t1, 8
        addi $t0, $t0, 1
        j    qs_check
qs_check_done:

        la   $a0, m_name
        li   $v0, 4
        syscall
        move $a0, $s0
        li   $v0, 1
        syscall
        la   $a0, m_sum
        li   $v0, 4
        syscall
        move $a0, $s4
        li   $v0, 1
        syscall
        la   $a0, m_inv
        li   $v0, 4
        syscall
        move $a0, $s5
        li   $v0, 1
        syscall
        la   $a0, m_min
        li   $v0, 4
        syscall
        ld   $a0, 0($s2)
        li   $v0, 1
        syscall
        la   $a0, m_max
        li   $v0, 4
        syscall
        addi $t0, $s0, -1
        sll  $t0, $t0, 3
        add  $t0, $s2, $t0
        ld   $a0, 0($t0)
        li   $v0, 1
        syscall
        li   $a0, 10
        li   $v0, 11
        syscall                   # trailing newline
        li   $v0, 10
        syscall                   # exit 0

        # qsort(lo addr $a0, hi addr $a1), both inclusive
        .func qsort
qsort:
        bge  $a0, $a1, qsort_ret
        addi $sp, $sp, -32
        sd   $ra, 24($sp)
        sd   $s0, 16($sp)
        sd   $s1, 8($sp)
        sd   $s2, 0($sp)
        move $s0, $a0             # lo
        move $s1, $a1             # hi
        ld   $t0, 0($s1)          # pivot = *hi
        addi $s2, $s0, -8         # i = lo - 1
        move $t1, $s0             # j = lo
qsort_part:
        bge  $t1, $s1, qsort_part_done
        ld   $t2, 0($t1)
        bgt  $t2, $t0, qsort_part_next
        addi $s2, $s2, 8
        ld   $t3, 0($s2)
        sd   $t2, 0($s2)
        sd   $t3, 0($t1)
qsort_part_next:
        addi $t1, $t1, 8
        j    qsort_part
qsort_part_done:
        addi $s2, $s2, 8          # pivot slot
        ld   $t3, 0($s2)
        ld   $t2, 0($s1)
        sd   $t2, 0($s2)
        sd   $t3, 0($s1)
        move $a0, $s0
        addi $a1, $s2, -8
        call qsort                # left half
        addi $a0, $s2, 8
        move $a1, $s1
        call qsort                # right half
        ld   $s2, 0($sp)
        ld   $s1, 8($sp)
        ld   $s0, 16($sp)
        ld   $ra, 24($sp)
        addi $sp, $sp, 32
qsort_ret:
        ret

        .data
m_name: .asciiz "qsort "
m_sum:  .asciiz "\nsum "
m_inv:  .asciiz "\ninv "
m_min:  .asciiz "\nmin "
m_max:  .asciiz "\nmax "
`
	return Program{
		Name:      "quicksort",
		Source:    src,
		Stdin:     []byte("1500 42\n"),
		MaxInstrs: 2_000_000,
	}
}
