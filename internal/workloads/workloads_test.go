package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	// The twelve SPEC2000int benchmarks of the paper (eon omitted there
	// too), in figure order.
	want := []string{
		"bzip2", "crafty", "gap", "gcc", "gzip", "mcf",
		"parser", "perlbmk", "twolf", "vortex", "vpr.place", "vpr.route",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("workload count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("workload %d = %q, want %q", i, got[i], want[i])
		}
	}
	for _, n := range want {
		if _, ok := ByName(n); !ok {
			t.Fatalf("ByName(%q) failed", n)
		}
	}
	if _, ok := ByName("eon"); ok {
		t.Fatalf("eon should not exist")
	}
}

// run emulates a workload to completion and returns its trace.
func runWL(t *testing.T, name string) (*isa.Program, *trace.Trace) {
	t.Helper()
	w, ok := ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	p := w.Assemble()
	tr, err := emu.Run(p, emu.Config{MaxInstrs: w.MaxInstrs})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return p, tr
}

// TestAllWorkloadsRunToCompletion: every workload assembles, executes to a
// clean halt under its cap, and is big enough to be a meaningful benchmark.
func TestAllWorkloadsRunToCompletion(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			_, tr := runWL(t, w.Name)
			if tr.Len() < 100_000 {
				t.Errorf("%s: only %d dynamic instructions", w.Name, tr.Len())
			}
			if tr.Len() > w.MaxInstrs {
				t.Errorf("%s: exceeded its own cap", w.Name)
			}
		})
	}
}

// TestAllWorkloadsAnalyzable: the spawn-point analysis succeeds and finds
// spawn points in every workload.
func TestAllWorkloadsAnalyzable(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p, tr := runWL(t, w.Name)
			a, err := core.Analyze(p, tr.IndirectTargets())
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Spawns) == 0 {
				t.Fatalf("%s: no spawn points", w.Name)
			}
		})
	}
}

// TestWorkloadCharacters asserts the control-flow property each synthetic
// workload exists to exhibit (the substitution table of DESIGN.md).
func TestWorkloadCharacters(t *testing.T) {
	analyze := func(name string) (*isa.Program, *trace.Trace, map[core.Kind]int) {
		p, tr := runWL(t, name)
		a, err := core.Analyze(p, tr.IndirectTargets())
		if err != nil {
			t.Fatal(err)
		}
		return p, tr, a.CountByKind()
	}

	t.Run("twolf-figure6", func(t *testing.T) {
		p, tr, kinds := analyze("twolf")
		// The Figure 6 kernel: hammocks and loop branches dominate.
		if kinds[core.KindHammock] < 3 || kinds[core.KindLoopFT] < 2 {
			t.Errorf("twolf kinds = %v", kinds)
		}
		// The if-then-else on netptr->flag is taken ~30% of the time.
		profiles := tr.BranchProfiles()
		flagPC := findBranchAfter(p, "inner_body", 3)
		prof := profiles[flagPC]
		if prof == nil {
			t.Fatalf("flag branch profile missing")
		}
		rate := float64(prof.Taken) / float64(prof.Executed)
		if rate < 0.15 || rate > 0.45 {
			t.Errorf("flag branch taken rate = %.2f, want ~0.30", rate)
		}
	})

	t.Run("vortex-call-heavy", func(t *testing.T) {
		p, tr, kinds := analyze("vortex")
		if kinds[core.KindProcFT] < 3 {
			t.Errorf("vortex procFT = %d", kinds[core.KindProcFT])
		}
		calls := 0
		for i := range tr.Entries {
			if tr.Entries[i].IsCall() {
				calls++
			}
		}
		if float64(calls)/float64(tr.Len()) < 0.01 {
			t.Errorf("vortex call density too low: %d calls", calls)
		}
		// Code footprint must exceed the 8KB L1 I-cache.
		if len(p.Code)*isa.InstSize < 8<<10 {
			t.Errorf("vortex code footprint %dB fits the I-cache", len(p.Code)*isa.InstSize)
		}
	})

	t.Run("perlbmk-indirect", func(t *testing.T) {
		_, tr, kinds := analyze("perlbmk")
		if kinds[core.KindOther] == 0 {
			t.Errorf("perlbmk has no other-kind spawns")
		}
		indirect := 0
		for i := range tr.Entries {
			if tr.Entries[i].IsIndirect() && !tr.Entries[i].IsReturn() && !tr.Entries[i].IsCall() {
				indirect++
			}
		}
		if indirect < 5000 {
			t.Errorf("perlbmk indirect jumps = %d", indirect)
		}
	})

	t.Run("mcf-memory-bound", func(t *testing.T) {
		_, tr, kinds := analyze("mcf")
		if kinds[core.KindHammock] < 3 {
			t.Errorf("mcf hammocks = %d", kinds[core.KindHammock])
		}
		if kinds[core.KindOther] == 0 {
			t.Errorf("mcf must have an other-kind spawn (cross-jump)")
		}
		// The pointer walk must cover a large footprint: distinct load
		// addresses far beyond the L1.
		seen := map[uint64]bool{}
		for i := range tr.Entries {
			if tr.Entries[i].IsLoad() {
				seen[tr.Entries[i].Addr&^63] = true
			}
		}
		if len(seen)*64 < 64<<10 {
			t.Errorf("mcf load footprint only %d bytes", len(seen)*64)
		}
	})

	t.Run("parser-recursive", func(t *testing.T) {
		_, tr, _ := analyze("parser")
		depth, maxDepth := 0, 0
		for i := range tr.Entries {
			if tr.Entries[i].IsCall() {
				depth++
				if depth > maxDepth {
					maxDepth = depth
				}
			}
			if tr.Entries[i].IsReturn() {
				depth--
			}
		}
		if maxDepth < 3 {
			t.Errorf("parser max call depth = %d, want recursion", maxDepth)
		}
	})

	t.Run("vpr.route-breaks", func(t *testing.T) {
		_, _, kinds := analyze("vpr.route")
		if kinds[core.KindLoopFT] < 1 {
			t.Errorf("vpr.route loopFT spawns = %d", kinds[core.KindLoopFT])
		}
	})

	t.Run("gzip-predictable", func(t *testing.T) {
		_, tr, _ := analyze("gzip")
		// Most branch executions should be biased (gzip is the
		// predictable benchmark of the set).
		hard := 0
		total := 0
		for _, prof := range tr.BranchProfiles() {
			if prof.Executed < 100 {
				continue
			}
			total++
			rate := float64(prof.Taken) / float64(prof.Executed)
			if rate > 0.35 && rate < 0.65 {
				hard++
			}
		}
		if total == 0 || hard*2 > total {
			t.Errorf("gzip: %d of %d hot branches are coin flips", hard, total)
		}
	})
}

// findBranchAfter returns the PC of the n-th instruction after a label.
func findBranchAfter(p *isa.Program, label string, n int) uint64 {
	return p.Labels[label] + uint64(n*isa.InstSize)
}

func TestDataBuilder(t *testing.T) {
	var d dataBuilder
	a0 := d.emit(1, 2)
	if a0 != isa.DefaultDataBase {
		t.Fatalf("first cell at %x", a0)
	}
	a1 := d.reserve(3)
	if a1 != isa.DefaultDataBase+16 {
		t.Fatalf("reserve at %x", a1)
	}
	d.patch(a0+8, 42)
	if d.words[1] != 42 {
		t.Fatalf("patch failed")
	}
	sec := d.section()
	if sec == "" || d.addr() != isa.DefaultDataBase+40 {
		t.Fatalf("section/addr wrong")
	}
}
