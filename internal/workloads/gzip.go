package workloads

import "fmt"

// Gzip models LZ77 deflation: a sequential pass hashing each position,
// probing a short hash chain, and extending matches byte by byte. Branches
// are largely predictable and the data is streamed, so the superscalar
// already runs fast; speculative parallelization gains are modest and come
// mostly from the inner-loop structure, as the paper observes for gzip.
func Gzip() Workload {
	r := rng(0x621f)
	var d dataBuilder

	const (
		inputLen = 9000
		hashSize = 1024
		matchMax = 12
	)

	// Input: byte-ish values with repetitive structure so matches exist.
	inBase := d.addr()
	prev := int64(0)
	for i := 0; i < inputLen; i++ {
		if r.Intn(4) != 0 { // runs and repeats are common
			d.emit(prev)
		} else {
			prev = int64(r.Intn(32))
			d.emit(prev)
		}
	}
	headBase := d.reserve(hashSize)
	outBase := d.reserve(8)

	src := fmt.Sprintf(`# gzip: hash-chain LZ with match extension
        .text
        .func main
main:
        li   $s0, %d              # input cursor (cell index as address)
        li   $s1, %d              # input end (minus match window)
        li   $s5, %d              # hash heads
        li   $s6, %d              # output accumulator cell
        li   $s2, 0               # emitted tokens
        li   $s4, 0               # rolling hash
deflate_loop:
        ld   $t0, 0($s0)          # current symbol
        sll  $t1, $s4, 5
        add  $t1, $t1, $t0
        sub  $s4, $t1, $s4        # h = h*31 + c
        andi $s4, $s4, %d         # mod hash size
        sll  $t2, $s4, 3
        add  $t2, $t2, $s5
        ld   $t3, 0($t2)          # chain head (candidate position)
        sd   $s0, 0($t2)          # update head
        beq  $t3, $zero, gz_literal
        # match extension loop: compare up to matchMax symbols
        li   $t4, 0               # match length
        move $t5, $t3
        move $t6, $s0
gz_match_loop:
        ld   $t7, 0($t5)
        ld   $t8, 0($t6)
        bne  $t7, $t8, gz_match_done
        addi $t4, $t4, 1
        addi $t5, $t5, 8
        addi $t6, $t6, 8
        slti $t9, $t4, %d
        bne  $t9, $zero, gz_match_loop
gz_match_done:
        slti $t9, $t4, 3
        bne  $t9, $zero, gz_literal
        # emit match token, skip ahead
        sll  $t7, $t4, 4
        add  $s2, $s2, $t7
        sll  $t8, $t4, 3
        add  $s0, $s0, $t8
        j    gz_advance
gz_literal:
        add  $s2, $s2, $t0
        addi $s2, $s2, 1
gz_advance:
        addi $s0, $s0, 8
        blt  $s0, $s1, deflate_loop
        sd   $s2, 0($s6)
        halt

%s`, inBase, inBase+8*(inputLen-matchMax-1), headBase, outBase,
		hashSize-1, matchMax, d.section())

	return Workload{Name: "gzip", Source: src, MaxInstrs: 1_500_000}
}
