// Package workloads provides the twelve synthetic benchmark programs that
// stand in for the paper's SPEC2000int binaries (see DESIGN.md §2 for the
// substitution argument). Each program is written in the repository's
// assembly language and engineered to exhibit the control-flow property the
// paper attributes to its namesake benchmark:
//
//	bzip2      run-length/MTF coding: mixed loops and data-dependent hammocks
//	crafty     deeply nested hard-to-predict conditionals over bitboards
//	gap        bytecode interpreter with indirect calls into many handlers
//	gcc        irregular code: switch dispatch, if-else chains, many blocks
//	gzip       LZ-style hashing with predictable inner loops
//	mcf        pointer chasing with cache misses feeding hard branches
//	parser     recursive descent over a random token stream
//	perlbmk    indirect-jump dispatch interpreter (hard BTB targets)
//	twolf      the paper's new_dbox_a kernel (Figure 6), faithfully ported
//	vortex     call-heavy layered object store with a large code footprint
//	vpr.place  simulated annealing: ~50% accept/reject hammocks
//	vpr.route  maze expansion loops with data-dependent breaks under an outer loop
//
// Program sizes are scaled to a few hundred thousand dynamic instructions
// (the paper runs 100M per benchmark after fast-forward).
package workloads

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"strings"
	"sync"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Workload is one synthetic benchmark.
type Workload struct {
	Name   string
	Source string
	// MaxInstrs is the emulation cap; programs halt well before it.
	MaxInstrs int
}

// Assemble assembles the workload (panicking on error: the built-in sources
// are fixtures whose validity is asserted by tests).
func (w Workload) Assemble() *isa.Program { return asm.MustAssemble(w.Source) }

// The generators are deterministic (fixed rand seeds — SourceSHA keys the
// artifact cache on their output), so the workload table is built exactly
// once. Callers like the polyflowd submit path and the cluster
// coordinator's ring placement resolve workloads per request; regenerating
// twelve program sources each time dominated their profiles.
var (
	allWorkloads = sync.OnceValue(func() []Workload {
		return []Workload{
			Bzip2(), Crafty(), Gap(), GCC(), Gzip(), MCF(),
			Parser(), Perlbmk(), Twolf(), Vortex(), VPRPlace(), VPRRoute(),
		}
	})
	workloadIndex = sync.OnceValue(func() map[string]Workload {
		idx := make(map[string]Workload)
		for _, w := range allWorkloads() {
			idx[w.Name] = w
		}
		return idx
	})
)

// All returns the twelve workloads in the paper's figure order.
func All() []Workload {
	return slices.Clone(allWorkloads())
}

// Names returns the workload names in figure order.
func Names() []string {
	var out []string
	for _, w := range allWorkloads() {
		out = append(out, w.Name)
	}
	return out
}

// ByName returns the named workload.
func ByName(name string) (Workload, bool) {
	w, ok := workloadIndex()[name]
	return w, ok
}

// dataBuilder lays out the .data segment as a sequence of 8-byte cells so
// generators can link structures by absolute address (the data base is
// fixed by the assembler).
type dataBuilder struct {
	words []int64
}

// addr returns the address the next emitted cell will occupy.
func (d *dataBuilder) addr() uint64 {
	return isa.DefaultDataBase + 8*uint64(len(d.words))
}

// emit appends cells and returns the address of the first.
func (d *dataBuilder) emit(vals ...int64) uint64 {
	a := d.addr()
	d.words = append(d.words, vals...)
	return a
}

// reserve appends n zero cells and returns the address of the first.
func (d *dataBuilder) reserve(n int) uint64 {
	a := d.addr()
	d.words = append(d.words, make([]int64, n)...)
	return a
}

// patch overwrites a previously emitted cell.
func (d *dataBuilder) patch(addr uint64, v int64) {
	i := (addr - isa.DefaultDataBase) / 8
	d.words[i] = v
}

// section renders the .data directive block.
func (d *dataBuilder) section() string {
	var b strings.Builder
	b.WriteString("        .data\n")
	for i := 0; i < len(d.words); i += 8 {
		end := i + 8
		if end > len(d.words) {
			end = len(d.words)
		}
		b.WriteString("        .word8 ")
		for j := i; j < end; j++ {
			if j > i {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", d.words[j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// rng returns the deterministic generator used by every workload builder,
// so the suite is reproducible run to run.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// jumpTableTargets renders a .targets annotation for case labels.
func jumpTableTargets(labels []string) string {
	return "        .targets " + strings.Join(labels, ", ") + "\n"
}

// caseLabels builds n labels with a common prefix.
func caseLabels(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return out
}

// sortedKeys is a tiny test/debug helper.
func sortedKeys[K ~string, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
