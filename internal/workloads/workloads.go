// Package workloads provides the twelve synthetic benchmark programs that
// stand in for the paper's SPEC2000int binaries (see DESIGN.md §2 for the
// substitution argument). Each program is written in the repository's
// assembly language and engineered to exhibit the control-flow property the
// paper attributes to its namesake benchmark:
//
//	bzip2      run-length/MTF coding: mixed loops and data-dependent hammocks
//	crafty     deeply nested hard-to-predict conditionals over bitboards
//	gap        bytecode interpreter with indirect calls into many handlers
//	gcc        irregular code: switch dispatch, if-else chains, many blocks
//	gzip       LZ-style hashing with predictable inner loops
//	mcf        pointer chasing with cache misses feeding hard branches
//	parser     recursive descent over a random token stream
//	perlbmk    indirect-jump dispatch interpreter (hard BTB targets)
//	twolf      the paper's new_dbox_a kernel (Figure 6), faithfully ported
//	vortex     call-heavy layered object store with a large code footprint
//	vpr.place  simulated annealing: ~50% accept/reject hammocks
//	vpr.route  maze expansion loops with data-dependent breaks under an outer loop
//
// Program sizes are scaled to a few hundred thousand dynamic instructions
// (the paper runs 100M per benchmark after fast-forward).
package workloads

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"strings"
	"sync"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/sysos"
	"repro/internal/workloads/kernels"
)

// Workload families. The synthetic family is the paper's twelve
// SPEC2000int stand-ins with generator-baked data segments; the kernels
// family (internal/workloads/kernels) is five algorithmic kernels that
// run over the sysos loader + syscall path with stdin-parameterized data.
const (
	FamilySynthetic = "synthetic"
	FamilyKernels   = "kernels"
)

// Workload is one registered benchmark program.
type Workload struct {
	Name   string
	Source string
	// MaxInstrs is the emulation cap; programs halt well before it.
	MaxInstrs int
	// Family tags which runtime the workload needs (empty means
	// FamilySynthetic, so zero-value construction stays valid).
	Family string
	// Stdin is the preloaded console input for kernels-family programs.
	Stdin []byte
}

// Assemble builds the workload's program image (panicking on error: the
// built-in sources are fixtures whose validity is asserted by tests).
// Kernels-family sources round-trip through the sysos object-image codec,
// so every run path exercises the loader.
func (w Workload) Assemble() *isa.Program {
	if w.Family == FamilyKernels {
		p, err := sysos.LoadSource(w.Source)
		if err != nil {
			panic(fmt.Sprintf("workloads: loading %s: %v", w.Name, err))
		}
		return p
	}
	return asm.MustAssemble(w.Source)
}

// SHA returns the workload's cache identity: the hex SHA-256 of its
// source, with the stdin folded in when present. For stdin-less workloads
// this is exactly artifact.SourceSHA(w.Source), so the synthetic family's
// existing artifact keys are unchanged.
func (w Workload) SHA() string {
	h := sha256.New()
	h.Write([]byte(w.Source))
	if len(w.Stdin) > 0 {
		h.Write([]byte{0})
		h.Write(w.Stdin)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// FamilyName returns the workload's family, mapping the zero value to
// FamilySynthetic.
func (w Workload) FamilyName() string {
	if w.Family == "" {
		return FamilySynthetic
	}
	return w.Family
}

// NewOS returns a fresh syscall handler for one run of the workload: a
// sysos instance over the workload's stdin for the kernels family, nil
// for synthetic workloads (which make no syscalls). Handlers are
// stateful, so every emulation and architectural re-check needs its own.
func (w Workload) NewOS() emu.SyscallHandler {
	if w.Family != FamilyKernels {
		return nil
	}
	return sysos.New(sysos.Config{Stdin: w.Stdin})
}

// Segments returns the memory map to enforce while emulating the
// workload, nil for the synthetic family (whose generators lay data out
// by absolute address without a heap or stack).
func (w Workload) Segments(prog *isa.Program) []emu.Segment {
	if w.Family != FamilyKernels {
		return nil
	}
	return sysos.Segments(prog)
}

// The generators are deterministic (fixed rand seeds — SourceSHA keys the
// artifact cache on their output), so the workload table is built exactly
// once. Callers like the polyflowd submit path and the cluster
// coordinator's ring placement resolve workloads per request; regenerating
// twelve program sources each time dominated their profiles.
var (
	allWorkloads = sync.OnceValue(func() []Workload {
		return []Workload{
			Bzip2(), Crafty(), Gap(), GCC(), Gzip(), MCF(),
			Parser(), Perlbmk(), Twolf(), Vortex(), VPRPlace(), VPRRoute(),
		}
	})
	kernelWorkloads = sync.OnceValue(func() []Workload {
		var out []Workload
		for _, k := range kernels.All() {
			out = append(out, Workload{
				Name:      k.Name,
				Source:    k.Source,
				MaxInstrs: k.MaxInstrs,
				Family:    FamilyKernels,
				Stdin:     k.Stdin,
			})
		}
		return out
	})
	workloadIndex = sync.OnceValue(func() map[string]Workload {
		idx := make(map[string]Workload)
		for _, w := range allWorkloads() {
			idx[w.Name] = w
		}
		for _, w := range kernelWorkloads() {
			if _, dup := idx[w.Name]; dup {
				panic(fmt.Sprintf("workloads: kernel %q collides with a synthetic workload", w.Name))
			}
			idx[w.Name] = w
		}
		return idx
	})
)

// All returns the twelve synthetic workloads in the paper's figure order.
// (The name predates the kernels family; grid defaults and the pinned
// figure set are built on it, so it deliberately excludes kernels — use
// AllFamilies or Kernels for the rest.)
func All() []Workload {
	return slices.Clone(allWorkloads())
}

// Kernels returns the kernels-family workloads in family order.
func Kernels() []Workload {
	return slices.Clone(kernelWorkloads())
}

// Families lists the registered family names.
func Families() []string { return []string{FamilySynthetic, FamilyKernels} }

// ByFamily returns one family's workloads in its canonical order, or nil
// for an unknown family name.
func ByFamily(family string) []Workload {
	switch family {
	case FamilySynthetic, "":
		return All()
	case FamilyKernels:
		return Kernels()
	}
	return nil
}

// Names returns the synthetic workload names in figure order.
func Names() []string {
	var out []string
	for _, w := range allWorkloads() {
		out = append(out, w.Name)
	}
	return out
}

// AllNames returns every registered workload name: the synthetic twelve
// in figure order, then the kernels in family order.
func AllNames() []string {
	out := Names()
	for _, w := range kernelWorkloads() {
		out = append(out, w.Name)
	}
	return out
}

// ByName returns the named workload from any family.
func ByName(name string) (Workload, bool) {
	w, ok := workloadIndex()[name]
	return w, ok
}

// dataBuilder lays out the .data segment as a sequence of 8-byte cells so
// generators can link structures by absolute address (the data base is
// fixed by the assembler).
type dataBuilder struct {
	words []int64
}

// addr returns the address the next emitted cell will occupy.
func (d *dataBuilder) addr() uint64 {
	return isa.DefaultDataBase + 8*uint64(len(d.words))
}

// emit appends cells and returns the address of the first.
func (d *dataBuilder) emit(vals ...int64) uint64 {
	a := d.addr()
	d.words = append(d.words, vals...)
	return a
}

// reserve appends n zero cells and returns the address of the first.
func (d *dataBuilder) reserve(n int) uint64 {
	a := d.addr()
	d.words = append(d.words, make([]int64, n)...)
	return a
}

// patch overwrites a previously emitted cell.
func (d *dataBuilder) patch(addr uint64, v int64) {
	i := (addr - isa.DefaultDataBase) / 8
	d.words[i] = v
}

// section renders the .data directive block.
func (d *dataBuilder) section() string {
	var b strings.Builder
	b.WriteString("        .data\n")
	for i := 0; i < len(d.words); i += 8 {
		end := i + 8
		if end > len(d.words) {
			end = len(d.words)
		}
		b.WriteString("        .word8 ")
		for j := i; j < end; j++ {
			if j > i {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", d.words[j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// rng returns the deterministic generator used by every workload builder,
// so the suite is reproducible run to run.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// jumpTableTargets renders a .targets annotation for case labels.
func jumpTableTargets(labels []string) string {
	return "        .targets " + strings.Join(labels, ", ") + "\n"
}

// caseLabels builds n labels with a common prefix.
func caseLabels(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return out
}

// sortedKeys is a tiny test/debug helper.
func sortedKeys[K ~string, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
