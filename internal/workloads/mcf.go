package workloads

import "fmt"

// MCF models SPEC2000 mcf's primal network simplex pricing loop
// (primal_bea_mpp): an outer loop refills a basket by scanning arcs in an
// inner loop — a pointer chase over an arc array that thrashes the L1 data
// cache, with data-dependent branches fed directly by the missing loads —
// then processes the basket. A superscalar stalls twice per arc — once for
// the miss, once for the late-resolving mispredict — while hammock spawns
// let PolyFlow fetch the control-independent continuation, and the inner
// loop's fall-through exposes basket-level (outer loop) parallelism. The
// paper reports a 16% loss for mcf when hammock spawns are removed, and a
// further loss without "other" spawns.
//
// The arc successor pointers form one random permutation cycle over all
// arcs: a uniformly random successor graph would collapse onto an
// O(sqrt(N)) rho-cycle that fits in the L1 cache and whose branch sequence
// the predictor can learn, which is nothing like mcf.
func MCF() Workload {
	r := rng(0x3cf)
	var d dataBuilder

	const (
		numArcs    = 8192 // 8K arcs * 32B = 256 KB: L1D-thrashing, L2-resident
		baskets    = 800
		basketSize = 7 // arcs scanned per basket refill
	)

	perm := r.Perm(numArcs)
	next := make([]int, numArcs)
	for i := 0; i < numArcs; i++ {
		next[perm[i]] = perm[(i+1)%numArcs]
	}
	arcBase := d.addr()
	for i := 0; i < numArcs; i++ {
		cost := int64(r.Intn(2001) - 1000) // sign ~50/50: a hard branch
		capv := int64(r.Intn(2001) - 1000)
		d.emit(cost, 0, capv, int64(arcBase)+32*int64(next[i]))
	}
	resultCell := d.reserve(4)

	src := fmt.Sprintf(`# mcf: basket pricing with miss-fed hard branches
        .text
        .func main
main:
        li   $s0, %d              # current arc
        li   $s1, %d              # baskets
        li   $s2, 0               # total reduced cost
        li   $s3, 0               # basis changes
        li   $s6, %d              # result cells
basket_loop:
        li   $s4, %d              # arcs per basket
        li   $s5, 0               # basket value
arc_loop:
        ld   $t0, 0($s0)          # cost          (usually misses)
        ld   $t1, 16($s0)         # cap
        # Fixed-arc guard (as in mcf's basket refill: fixed arcs are
        # skipped). Rarely taken, but its immediate postdominator is the
        # whole arc body's continuation — the postdominator analysis finds
        # the loop-iteration spawn here.
        slti $t9, $t0, -995
        bne  $t9, $zero, arc_next
        bltz $t0, arc_negative    # hard branch fed by the missing load
        # in-tree arc: accumulate reduced cost
        add  $s5, $s5, $t0
        sra  $t2, $t0, 3
        sub  $s5, $s5, $t2
        sll  $t3, $t0, 1
        xor  $t2, $t2, $t3
        add  $s5, $s5, $t2
        andi $s5, $s5, 0xfffffff
        j    arc_join1
arc_negative:
        # entering arc: update flow and potentials
        ld   $t2, 8($s0)          # flow
        sub  $t2, $t2, $t0
        sd   $t2, 8($s0)
        addi $s3, $s3, 1
        sll  $t3, $t2, 2
        sub  $t3, $t3, $t2
        sra  $t3, $t3, 1
        add  $s5, $s5, $t3
        andi $s5, $s5, 0xfffffff
arc_join1:
        bltz $t1, arc_capped      # second hard branch
        sub  $t3, $t1, $t0
        add  $s5, $s5, $t3
        sra  $t4, $t3, 2
        sub  $s5, $s5, $t4
        sll  $t4, $t3, 1
        xor  $s5, $s5, $t4
        andi $s5, $s5, 0xfffffff
        j    arc_join2
arc_capped:
        addi $s5, $s5, 7
        sll  $t4, $t1, 1
        sub  $t4, $zero, $t4
        add  $s5, $s5, $t4
        andi $s5, $s5, 0xfffffff
arc_join2:
        # Complex flow: the residual check jumps into the middle of the
        # rebalance arm, so the rebalance tail is control dependent on two
        # branches without being dominated by either ("other" spawns).
        and  $t4, $t0, $t1
        andi $t4, $t4, 1
        beq  $t4, $zero, arc_rebal
        xor  $t5, $t0, $t1
        sra  $t5, $t5, 1
        add  $s5, $s5, $t5
        j    arc_rebal_tail
arc_rebal:
        andi $t6, $t1, 2
        beq  $t6, $zero, arc_next
        sub  $s5, $s5, $t0
arc_rebal_tail:
        addi $s3, $s3, 1
        andi $s3, $s3, 0xffff
arc_next:
        ld   $s0, 24($s0)         # next arc (pointer chase)
        addi $s4, $s4, -1
        bgtz $s4, arc_loop        # inner loop: basket refill
        # basket processing: fold the basket into the running totals
        add  $s2, $s2, $s5
        sra  $t7, $s5, 3
        sub  $s2, $s2, $t7
        sll  $t7, $s5, 1
        xor  $s2, $s2, $t7
        andi $s2, $s2, 0xfffffff
        sra  $t8, $s2, 6
        add  $s2, $s2, $t8
        sd   $s2, 0($s6)
        addi $s1, $s1, -1
        bgtz $s1, basket_loop     # outer loop over baskets
        sd   $s2, 0($s6)
        sd   $s3, 8($s6)
        halt

%s`, arcBase, baskets, resultCell, basketSize, d.section())

	return Workload{Name: "mcf", Source: src, MaxInstrs: 1_500_000}
}
