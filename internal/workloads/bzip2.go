package workloads

import "fmt"

// Bzip2 models the block-sorting compressor's front end: run-length coding
// over the input followed by a move-to-front transform whose search and
// shift loops have data-dependent trip counts. The blend of predictable
// run detection, data-dependent loops, and a value-dependent hammock gives
// several spawn categories a foothold, as in the paper's bzip2 results.
func Bzip2() Workload {
	r := rng(0xb21b2)
	var d dataBuilder

	const (
		inputLen = 5600
		alphabet = 16
	)

	inBase := d.addr()
	prev := int64(0)
	for i := 0; i < inputLen; i++ {
		if r.Intn(3) == 0 { // start a new run
			prev = int64(r.Intn(alphabet))
		}
		d.emit(prev)
	}
	mtfBase := d.addr()
	for i := 0; i < alphabet; i++ {
		d.emit(int64(i))
	}
	outBase := d.reserve(8)

	src := fmt.Sprintf(`# bzip2: run-length coding + move-to-front
        .text
        .func main
main:
        li   $s0, %d              # input cursor
        li   $s1, %d              # input end
        li   $s5, %d              # MTF table
        li   $s6, %d              # output cell
        li   $s2, 0               # output accumulator
        li   $s3, -1              # previous symbol
        li   $s4, 0               # run length
rle_loop:
        ld   $t0, 0($s0)
        bne  $t0, $s3, rle_flush  # run break (data-dependent, runs common)
        addi $s4, $s4, 1
        j    rle_next
rle_flush:
        # Emit the finished run, then MTF-encode the new symbol.
        sll  $t1, $s4, 2
        add  $s2, $s2, $t1
        move $s3, $t0
        li   $s4, 1
        # MTF search: find the symbol's current rank (trip count = rank).
        li   $t2, 0               # rank
        move $t3, $s5
mtf_search:
        ld   $t4, 0($t3)
        beq  $t4, $t0, mtf_found
        addi $t3, $t3, 8
        addi $t2, $t2, 1
        slti $t5, $t2, %d
        bne  $t5, $zero, mtf_search
mtf_found:
        add  $s2, $s2, $t2
        # Rank-dependent hammock: small ranks are cheap to re-encode.
        slti $t5, $t2, 4
        bne  $t5, $zero, mtf_shift
        addi $s2, $s2, 9
        xori $s2, $s2, 0x15
mtf_shift:
        # Shift table entries [0, rank) down by one, put symbol at front.
        blez $t2, mtf_done
        move $t6, $t3             # position of found symbol
mtf_shift_loop:
        ld   $t7, -8($t6)
        sd   $t7, 0($t6)
        addi $t6, $t6, -8
        addi $t2, $t2, -1
        bgtz $t2, mtf_shift_loop
        sd   $t0, 0($s5)
mtf_done:
rle_next:
        addi $s0, $s0, 8
        blt  $s0, $s1, rle_loop
        sll  $t1, $s4, 2
        add  $s2, $s2, $t1
        sd   $s2, 0($s6)
        halt

%s`, inBase, inBase+8*inputLen, mtfBase, outBase, alphabet, d.section())

	return Workload{Name: "bzip2", Source: src, MaxInstrs: 1_500_000}
}
