package workloads

import "fmt"

// VPRPlace models the placer's simulated annealing: each move picks two
// cells, computes a cost delta, and accepts or rejects through a
// ~50%-taken hammock (accept-on-improvement plus randomized hill
// climbing). Hammock spawns jump over the unpredictable accept branch.
func VPRPlace() Workload {
	r := rng(0x4b1ace)
	var d dataBuilder

	const (
		numCells = 2048
		moves    = 4200
	)

	posBase := d.addr()
	for i := 0; i < numCells; i++ {
		d.emit(int64(r.Intn(4096)))
	}
	outBase := d.reserve(8)

	src := fmt.Sprintf(`# vpr.place: simulated annealing with accept/reject hammocks
        .text
        .func main
main:
        li   $s7, 2463534242      # xorshift state
        li   $s0, %d              # moves
        li   $s5, %d              # position array
        li   $s6, %d              # output cell
        li   $s2, 0               # total cost
        move $s3, $s5             # &pos[a] for the first move
        addi $s4, $s5, 64         # &pos[b] for the first move
anneal_loop:
        # The move's cell addresses were computed at the end of the
        # previous iteration (the annealer pipelines its RNG), so the
        # loads issue immediately.
        move $t1, $s3
        move $t2, $s4
        # Degenerate-move guard (the placer skips from==to moves). Its
        # immediate postdominator is the whole move's continuation, so the
        # postdominator analysis recovers the loop-iteration spawn.
        beq  $t1, $t2, place_next
        ld   $t3, 0($t1)
        ld   $t4, 0($t2)

        # delta = wirelength change estimate
        sub  $t5, $t3, $t4
        bgez $t5, place_abs       # ABS hammock (~50%%)
        neg  $t5, $t5
place_abs:
        srl  $t6, $s7, 24
        andi $t6, $t6, 1023
        sub  $t7, $t5, $t6        # delta - temperature noise

        bltz $t7, place_accept    # accept branch (~50%%, hard)
        # reject: bookkeeping only
        addi $s2, $s2, 1
        sra  $t8, $t5, 4
        add  $s2, $s2, $t8
        j    place_next
place_accept:
        # accept: swap the cells and incrementally update the bounding
        # boxes of the nets around each endpoint (a short recompute loop).
        sd   $t4, 0($t1)
        sd   $t3, 0($t2)
        add  $s2, $s2, $t5
        li   $t8, 4               # fanout cells to touch
place_bb_loop:
        ld   $t3, 8($t1)          # neighbor position
        add  $s2, $s2, $t3
        sra  $t4, $t3, 2
        sub  $s2, $s2, $t4
        addi $t1, $t1, 8
        addi $t8, $t8, -1
        bgtz $t8, place_bb_loop
        andi $s2, $s2, 0xffffff
place_next:
        # xorshift64 and next move's cell picks (software-pipelined)
        sll  $t0, $s7, 13
        xor  $s7, $s7, $t0
        srl  $t0, $s7, 7
        xor  $s7, $s7, $t0
        sll  $t0, $s7, 17
        xor  $s7, $s7, $t0
        andi $t0, $s7, %d
        sll  $t0, $t0, 3
        add  $s3, $t0, $s5        # next &pos[a]
        srl  $t0, $s7, 16
        andi $t0, $t0, %d
        sll  $t0, $t0, 3
        add  $s4, $t0, $s5        # next &pos[b]
        addi $s0, $s0, -1
        bgtz $s0, anneal_loop
        sd   $s2, 0($s6)
        halt

%s`, moves, posBase, outBase, numCells-1, numCells-1, d.section())

	return Workload{Name: "vpr.place", Source: src, MaxInstrs: 1_000_000}
}

// VPRRoute models the router's maze expansion: for each net, an inner
// wavefront loop walks the routing-resource cost array until it finds a
// cheap node (a data-dependent break after a handful of iterations) or
// exhausts its budget, followed by commit work. The loop fall-through —
// the immediate postdominator of both the break and the latch — is the
// decisive spawn point (the paper reports a 29% loss for vpr.route without
// loopFT spawns).
func VPRRoute() Workload {
	r := rng(0x4b07e)
	var d dataBuilder

	const (
		gridSize = 4096
		numNets  = 1600
		budget   = 31
	)

	costBase := d.addr()
	for i := 0; i < gridSize; i++ {
		// ~8% of nodes are "cheap": geometric break around 12 trips.
		if r.Intn(100) < 8 {
			d.emit(int64(r.Intn(50)))
		} else {
			d.emit(int64(100 + r.Intn(900)))
		}
	}
	outBase := d.reserve(8)

	src := fmt.Sprintf(`# vpr.route: maze expansion with data-dependent breaks
        .text
        .func main
main:
        li   $s0, %d              # nets
        li   $s5, %d              # cost grid
        li   $s6, %d              # output cell
        li   $s2, 0               # routed cost
        li   $s3, 12345           # expansion cursor seed
route_net:
        li   $t0, %d              # expansion budget
        li   $t1, 0               # accumulated path cost
expand_loop:
        # pseudo-random walk over the grid
        li   $t9, 1103515245
        mul  $s3, $s3, $t9
        addi $s3, $s3, 12345
        srl  $t2, $s3, 8
        andi $t2, $t2, %d
        sll  $t2, $t2, 3
        add  $t2, $t2, $s5
        ld   $t3, 0($t2)          # node cost
        add  $t1, $t1, $t3
        slti $t4, $t3, 100
        bne  $t4, $zero, expand_found   # break: cheap node reached (hard)
        addi $t0, $t0, -1
        bgtz $t0, expand_loop     # latch
        # budget exhausted: fall through with a penalty
        addi $t1, $t1, 500
expand_found:
        # commit the route for this net
        add  $s2, $s2, $t1
        sra  $t5, $t1, 4
        sub  $s2, $s2, $t5
        sd   $t1, 0($s6)          # record the net's path cost
        andi $t6, $s2, 0xfffffff
        move $s2, $t6
        addi $s0, $s0, -1
        bgtz $s0, route_net       # outer loop over nets
        sd   $s2, 0($s6)
        halt

%s`, numNets, costBase, outBase, budget, gridSize-1, d.section())

	return Workload{Name: "vpr.route", Source: src, MaxInstrs: 1_500_000}
}
