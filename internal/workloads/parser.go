package workloads

import "fmt"

// Parser models SPEC2000 parser's recursive descent over a token stream:
// mutually recursive parse functions whose token-class tests are
// data-dependent, with call-heavy structure and small reduction loops. The
// mix gives procedure fall-throughs, hammocks and loop fall-throughs each a
// share of the spawn opportunities.
func Parser() Workload {
	r := rng(0x9a25e4)
	var d dataBuilder

	const numTokens = 9000

	// Token stream: 0-3 atoms, 4-5 unary ops, 6-7 binary ops, 8 open, 9 close.
	tokBase := d.addr()
	for i := 0; i < numTokens; i++ {
		d.emit(int64(r.Intn(10)))
	}
	scratch := d.reserve(16)

	src := fmt.Sprintf(`# parser: recursive descent over a random token stream
        .text
        .func main
main:
        li   $s0, %d              # token cursor
        li   $s1, %d              # token end
        li   $s6, %d              # scratch
        li   $s2, 0               # parse value
main_loop:
        bge  $s0, $s1, main_done
        li   $a0, 6               # depth budget
        jal  parse_expr
        add  $s2, $s2, $v0
main_loop_cont:
        blt  $s0, $s1, main_loop
main_done:
        sd   $s2, 0($s6)
        halt

        # parse_expr(depth): term { binop term }*
        .func parse_expr
parse_expr:
        addi $sp, $sp, -24
        sd   $ra, 0($sp)
        sd   $s3, 8($sp)
        move $s3, $a0
        jal  parse_term
        move $t8, $v0
expr_loop:
        bge  $s0, $s1, expr_done
        ld   $t0, 0($s0)          # peek token
        slti $t1, $t0, 6
        bne  $t1, $zero, expr_done   # not a binop: reduce
        slti $t1, $t0, 8
        beq  $t1, $zero, expr_done   # bracket: reduce
        addi $s0, $s0, 8          # consume binop
        move $a0, $s3
        jal  parse_term
        andi $t2, $t8, 1          # hard: which combiner
        beq  $t2, $zero, expr_add
        xor  $t8, $t8, $v0
        j    expr_loop
expr_add:
        add  $t8, $t8, $v0
        j    expr_loop
expr_done:
        move $v0, $t8
        ld   $ra, 0($sp)
        ld   $s3, 8($sp)
        addi $sp, $sp, 24
        ret

        # parse_term(depth): atom | unary term | ( expr )
        .func parse_term
parse_term:
        addi $sp, $sp, -16
        sd   $ra, 0($sp)
        bge  $s0, $s1, term_eof
        ld   $t0, 0($s0)
        addi $s0, $s0, 8          # consume
        slti $t1, $t0, 4
        bne  $t1, $zero, term_atom
        slti $t1, $t0, 6
        bne  $t1, $zero, term_unary
        slti $t1, $t0, 8
        bne  $t1, $zero, term_binop_as_atom
        beq  $t0, $zero, term_atom  # unreachable guard
        blez $s3, term_atom_deep     # depth exhausted: treat as atom
        ld   $t2, 0($s0)            # token after bracket
        addi $t3, $t0, -8
        bne  $t3, $zero, term_close
        addi $s3, $s3, -1
        move $a0, $s3
        jal  parse_expr             # recursive call
        addi $s3, $s3, 1
        sll  $v0, $v0, 1
        j    term_ret
term_close:
        li   $v0, 1
        j    term_ret
term_atom_deep:
        li   $v0, 7
        j    term_ret
term_binop_as_atom:
        addi $v0, $t0, 3
        j    term_ret
term_unary:
        # unary: small reduction loop over following atoms (1-4 trips)
        andi $t4, $t0, 3
        addi $t4, $t4, 1
        li   $v0, 0
term_unary_loop:
        bge  $s0, $s1, term_ret
        ld   $t5, 0($s0)
        slti $t6, $t5, 4
        beq  $t6, $zero, term_ret   # next isn't an atom: stop
        addi $s0, $s0, 8
        add  $v0, $v0, $t5
        addi $t4, $t4, -1
        bgtz $t4, term_unary_loop
        j    term_ret
term_atom:
        sll  $v0, $t0, 2
        addi $v0, $v0, 1
        j    term_ret
term_eof:
        li   $v0, 0
term_ret:
        ld   $ra, 0($sp)
        addi $sp, $sp, 16
        ret

%s`, tokBase, tokBase+8*numTokens, scratch, d.section())

	return Workload{Name: "parser", Source: src, MaxInstrs: 1_500_000}
}
