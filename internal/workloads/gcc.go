package workloads

import (
	"fmt"
	"strings"
)

// GCC models the compiler's irregular control flow: a pass over an IR node
// array dispatching through a switch (indirect jump), with per-kind
// processing made of if-else chains of mixed predictability, cross-jumps
// into shared cleanup code, utility calls, and an occasional operand scan
// loop. No single heuristic dominates; the full postdominator set helps
// modestly, as in the paper.
func GCC() Workload {
	r := rng(0x6cc)
	var d dataBuilder

	const (
		numKinds = 12
		numNodes = 5200
	)

	// IR nodes: {kind, a, b}. Kinds arrive in short runs (a pass visits
	// clusters of same-kind nodes), so the switch target is predictable
	// part of the time, as for real compiler IR.
	nodeBase := d.addr()
	for i := 0; i < numNodes; {
		kind := int64(r.Intn(numKinds))
		run := 2 + r.Intn(5)
		for j := 0; j < run && i < numNodes; j++ {
			d.emit(kind, int64(r.Intn(1<<16)), int64(r.Intn(1<<16)))
			i++
		}
	}
	scratch := d.reserve(32)
	kinds := caseLabels("gk", numKinds)

	var b strings.Builder
	fmt.Fprintf(&b, `# gcc: switch dispatch and irregular if-else chains
        .text
        .func main
main:
        li   $s0, %d              # node cursor
        li   $s1, %d              # node end
        la   $s5, kind_table
        li   $s6, %d              # scratch
        li   $s2, 0               # folded constant accumulator
pass_loop:
        ld   $t0, 0($s0)          # kind
        ld   $s3, 8($s0)          # operand a
        ld   $s4, 16($s0)         # operand b
        sll  $t1, $t0, 3
        add  $t1, $t1, $s5
        ld   $t2, 0($t1)
        jr   $t2                  # the big switch
        .targets %s
`, nodeBase, nodeBase+24*numNodes, scratch, strings.Join(kinds, ", "))

	for m := 0; m < numKinds; m++ {
		fmt.Fprintf(&b, "gk%d:\n", m)
		switch m % 4 {
		case 0:
			// Constant folding: an if-else chain with one hard compare.
			fmt.Fprintf(&b, "        blt  $s3, $s4, gk%d_lt\n", m)
			fmt.Fprintf(&b, "        sub  $t3, $s3, $s4\n        add  $s2, $s2, $t3\n        j gk%d_done\n", m)
			fmt.Fprintf(&b, "gk%d_lt:\n        sub  $t3, $s4, $s3\n        xor  $s2, $s2, $t3\n", m)
			fmt.Fprintf(&b, "gk%d_done:\n", m)
		case 1:
			// Cross-jump into a shared simplification tail ("other").
			fmt.Fprintf(&b, "        andi $t3, $s3, 1\n")
			fmt.Fprintf(&b, "        beq  $t3, $zero, gk%d_alt\n", m)
			fmt.Fprintf(&b, "        add  $s2, $s2, $s3\n        j    gk%d_tail\n", m)
			fmt.Fprintf(&b, "gk%d_alt:\n        andi $t4, $s4, 1\n", m)
			fmt.Fprintf(&b, "        beq  $t4, $zero, gk%d_out\n", m)
			fmt.Fprintf(&b, "        add  $s2, $s2, $s4\n")
			fmt.Fprintf(&b, "gk%d_tail:\n        sra  $t5, $s2, 1\n        xor  $s2, $s2, $t5\n", m)
			fmt.Fprintf(&b, "gk%d_out:\n", m)
		case 2:
			// Utility call (register pressure / live-range bookkeeping).
			fmt.Fprintf(&b, "        move $a0, $s3\n        move $a1, $s4\n        jal  gcc_hash\n        add  $s2, $s2, $v0\n")
		case 3:
			// Operand scan: a short loop with a data-dependent early exit.
			fmt.Fprintf(&b, "        li   $t3, 6\n        move $t4, $s3\n")
			fmt.Fprintf(&b, "gk%d_scan:\n", m)
			fmt.Fprintf(&b, "        andi $t5, $t4, 7\n")
			fmt.Fprintf(&b, "        beq  $t5, $zero, gk%d_hit\n", m)
			fmt.Fprintf(&b, "        srl  $t4, $t4, 3\n        addi $t3, $t3, -1\n")
			fmt.Fprintf(&b, "        bgtz $t3, gk%d_scan\n", m)
			fmt.Fprintf(&b, "        j    gk%d_miss\n", m)
			fmt.Fprintf(&b, "gk%d_hit:\n        addi $s2, $s2, 13\n", m)
			fmt.Fprintf(&b, "gk%d_miss:\n        sd   $s2, %d($s6)\n", m, 8*(m%4))
		}
		// Per-kind epilogue: attribute/flag maintenance widens the case
		// bodies so the dispatch jump is a smaller fraction of the work.
		for k := 0; k < 9+r.Intn(8); k++ {
			switch r.Intn(4) {
			case 0:
				fmt.Fprintf(&b, "        addi $s2, $s2, %d\n", 1+r.Intn(5))
			case 1:
				fmt.Fprintf(&b, "        xor  $s2, $s2, $s3\n")
			case 2:
				fmt.Fprintf(&b, "        sll  $t6, $s4, %d\n        add  $s2, $s2, $t6\n", 1+r.Intn(3))
			case 3:
				fmt.Fprintf(&b, "        sra  $t6, $s2, %d\n        sub  $s2, $s2, $t6\n", 2+r.Intn(4))
			}
		}
		fmt.Fprintf(&b, "        j    pass_next\n")
	}

	fmt.Fprintf(&b, `pass_next:
        andi $s2, $s2, 0xffffff
        addi $s0, $s0, 24
        blt  $s0, $s1, pass_loop
        sd   $s2, 0($s6)
        halt

        .func gcc_hash
gcc_hash:
        mul  $v0, $a0, $a1
        srl  $t9, $v0, 7
        xor  $v0, $v0, $t9
        andi $t8, $a0, 15
        beq  $t8, $zero, gcc_hash_skip
        addi $v0, $v0, 97
gcc_hash_skip:
        andi $v0, $v0, 8191
        ret

%s
kind_table:
        .word8 %s
`, d.section(), strings.Join(kinds, ", "))

	return Workload{Name: "gcc", Source: b.String(), MaxInstrs: 1_500_000}
}
