package workloads

import (
	"fmt"
	"strings"
)

// Perlbmk models the perl interpreter's opcode dispatch: an indirect jump
// through a 20-way table whose target is effectively unpredictable for a
// last-target BTB. The immediate postdominator of the indirect jump is the
// common dispatch continuation — an "other"-category spawn point (the paper
// notes "other" spawns in perlbmk beat every remaining heuristic, and
// removing hammocks/others costs perlbmk 21%).
func Perlbmk() Workload {
	r := rng(0x9e71)
	var d dataBuilder

	const (
		numOps  = 20
		codeLen = 9000
	)

	// Opcode stream: real perl bytecode repeats ops locally (string ops in
	// bursts), so the dispatch target is BTB-predictable part of the time;
	// the rest is effectively random.
	codeBase := d.addr()
	for i := 0; i < codeLen; {
		op := int64(r.Intn(numOps))
		run := 1
		if r.Intn(3) == 0 {
			run = 2 + r.Intn(3)
		}
		for j := 0; j < run && i < codeLen; j++ {
			d.emit(op)
			i++
		}
	}
	scratch := d.reserve(64)
	ops := caseLabels("pop", numOps)

	var b strings.Builder
	fmt.Fprintf(&b, `# perlbmk: indirect-jump opcode dispatch
        .text
        .func main
main:
        li   $s0, %d              # opcode stream
        li   $s1, %d              # stream end
        la   $s5, perl_table
        li   $s6, %d              # scratch
        li   $s2, 0               # accumulator
        li   $s3, 1               # secondary state
interp_loop:
        ld   $t0, 0($s0)          # opcode
        sll  $t1, $t0, 3
        add  $t1, $t1, $s5
        ld   $t2, 0($t1)
        jr   $t2                  # dispatch: hard indirect jump
        .targets %s
`, codeBase, codeBase+8*codeLen, scratch, strings.Join(ops, ", "))

	// Handlers: small bodies, all jumping to the common continuation.
	for m := 0; m < numOps; m++ {
		fmt.Fprintf(&b, "pop%d:\n", m)
		switch {
		case m == 7 || m == 13:
			// String-ish ops call a helper (procedure fall-throughs).
			fmt.Fprintf(&b, "        move $a0, $s2\n        jal  perl_helper\n        add  $s2, $s2, $v0\n")
		case m == 4:
			// A short counted loop (match iteration).
			fmt.Fprintf(&b, "        li   $t3, %d\npop%d_loop:\n", 3+r.Intn(4), m)
			fmt.Fprintf(&b, "        add  $s2, $s2, $t3\n        addi $t3, $t3, -1\n        bgtz $t3, pop%d_loop\n", m)
		default:
			n := 3 + r.Intn(9)
			for k := 0; k < n; k++ {
				switch r.Intn(4) {
				case 0:
					fmt.Fprintf(&b, "        addi $s2, $s2, %d\n", 1+r.Intn(17))
				case 1:
					fmt.Fprintf(&b, "        xor  $s2, $s2, $s3\n")
				case 2:
					fmt.Fprintf(&b, "        sll  $s3, $s3, 1\n        ori  $s3, $s3, %d\n", r.Intn(2))
				case 3:
					fmt.Fprintf(&b, "        sd   $s2, %d($s6)\n", 8*r.Intn(8))
				}
			}
		}
		fmt.Fprintf(&b, "        j    interp_next\n")
	}

	fmt.Fprintf(&b, `interp_next:
        andi $s3, $s3, 0xffff
        addi $s0, $s0, 8
        blt  $s0, $s1, interp_loop
        sd   $s2, 0($s6)
        halt

        .func perl_helper
perl_helper:
        andi $v0, $a0, 63
        addi $v0, $v0, 5
        sll  $t9, $v0, 2
        xor  $v0, $v0, $t9
        andi $v0, $v0, 255
        ret

%s
perl_table:
        .word8 %s
`, d.section(), strings.Join(ops, ", "))

	return Workload{Name: "perlbmk", Source: b.String(), MaxInstrs: 1_500_000}
}
