package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/jobqueue"
	"repro/internal/obs"
)

// Event is one SSE message: a state transition or a progress sample.
type Event struct {
	// Type is "state" or "progress".
	Type string
	// Status accompanies state events.
	Status *Status
	// Progress accompanies progress events.
	Progress *Progress
}

// job is one tracked submission. The handle settles the job's fate in the
// pool; the record adds the server-side extras: result bytes, progress, and
// SSE subscribers.
type job struct {
	id     string
	req    Request
	handle *jobqueue.Handle
	trace  *obs.Trace // immutable after creation; its own lock guards spans

	mu        sync.Mutex
	state     jobqueue.State
	submitted time.Time
	started   time.Time
	finished  time.Time
	err       error
	data      []byte
	cacheHit  bool
	progress  *Progress
	subs      map[chan Event]struct{}
	closed    bool // no more events: terminal state broadcast
}

func newJob(id string, req Request, trace *obs.Trace) *job {
	return &job{
		id:        id,
		req:       req,
		trace:     trace,
		state:     jobqueue.Queued,
		submitted: time.Now(),
		subs:      map[chan Event]struct{}{},
	}
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.state = jobqueue.Running
	j.started = time.Now()
	submitted, started := j.submitted, j.started
	st := j.statusLocked()
	j.broadcastLocked(Event{Type: "state", Status: &st})
	j.mu.Unlock()
	if j.trace != nil {
		// The time between acceptance and a pool worker picking the job up
		// is the queue-wait phase.
		j.trace.Record(obs.Span{Name: "queue_wait", Start: submitted, End: started})
	}
}

func (j *job) setResult(data []byte, hit bool) {
	j.mu.Lock()
	j.data = data
	j.cacheHit = hit
	j.mu.Unlock()
}

// finish records the pool's verdict, broadcasts the terminal state, and
// closes every subscriber stream.
func (j *job) finish(st jobqueue.State, err error) {
	j.mu.Lock()
	j.state = st
	j.err = err
	j.finished = time.Now()
	s := j.statusLocked()
	j.broadcastLocked(Event{Type: "state", Status: &s})
	j.closed = true
	for ch := range j.subs {
		close(ch)
		delete(j.subs, ch)
	}
	j.mu.Unlock()
}

// onProgress is the machine OnSample hook: it runs inside the simulation's
// cycle loop, so it only stores the sample and does non-blocking sends.
func (j *job) onProgress(cycle, retired int64) {
	p := &Progress{Cycle: cycle, Retired: retired}
	j.mu.Lock()
	j.progress = p
	j.broadcastLocked(Event{Type: "progress", Progress: p})
	j.mu.Unlock()
}

// broadcastLocked fans an event out to subscribers without blocking: a slow
// consumer drops events rather than stalling the simulation.
func (j *job) broadcastLocked(ev Event) {
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe registers an event stream, seeding it with the latest progress
// and the current state (progress first: the state is the most recent
// truth, and on a terminal job it must be the stream's last event). A
// terminal job yields a closed channel immediately after the replay.
func (j *job) subscribe() chan Event {
	ch := make(chan Event, 64)
	j.mu.Lock()
	if j.progress != nil {
		ch <- Event{Type: "progress", Progress: j.progress}
	}
	st := j.statusLocked()
	ch <- Event{Type: "state", Status: &st}
	if j.closed {
		close(ch)
	} else {
		j.subs[ch] = struct{}{}
	}
	j.mu.Unlock()
	return ch
}

func (j *job) unsubscribe(ch chan Event) {
	j.mu.Lock()
	if _, ok := j.subs[ch]; ok {
		delete(j.subs, ch)
		close(ch)
	}
	j.mu.Unlock()
}

func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case jobqueue.Succeeded, jobqueue.Failed, jobqueue.Canceled:
		return true
	}
	return false
}

func (j *job) result() ([]byte, jobqueue.State) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.data, j.state
}

func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *job) statusLocked() Status {
	st := Status{
		ID:        j.id,
		Bench:     j.req.Bench,
		Policy:    j.req.Policy,
		SpawnMask: j.req.SpawnMask,
		State:     j.state.String(),
		CacheHit:  j.cacheHit,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
		Progress:  j.progress,
	}
	if j.trace != nil {
		st.TraceID = j.trace.ID()
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.finished.IsZero() && !j.started.IsZero() {
		st.DurationMS = j.finished.Sub(j.started).Milliseconds()
	}
	return st
}

// handleEvents streams a job's lifecycle as server-sent events. Each
// message is `event: state|progress` with a JSON data line. The stream ends
// when the job reaches a terminal state, the client disconnects, or the
// server drains.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, errors.New("response writer cannot stream"))
		return
	}
	s.m.sseStreams.Add(1)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ch := j.subscribe()
	defer j.unsubscribe(ch)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return // terminal state delivered
			}
			var payload any
			if ev.Status != nil {
				payload = ev.Status
			} else {
				payload = ev.Progress
			}
			data, err := json.Marshal(payload)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-s.stop:
			return
		}
	}
}
