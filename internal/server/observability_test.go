package server

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// TestJobTraceAndSpans covers the span pipeline end to end: a
// caller-supplied trace ID survives the X-Polyflow-Trace header, the job's
// status carries it, queue_wait and runner-side spans land in the trace,
// and both spans formats serve valid JSON.
func TestJobTraceAndSpans(t *testing.T) {
	runner := func(ctx context.Context, req Request, progress ProgressFunc) ([]byte, bool, error) {
		end := obs.StartSpan(ctx, "simulate")
		end.End("cycles", "42")
		return []byte(`{}`), false, nil
	}
	_, c := newTestServer(t, Config{Runner: runner})
	ctx := obs.With(context.Background(), obs.NewTrace("trace-test-1"))
	st, _, err := c.Submit(ctx, Request{Bench: "gzip", Policy: "postdoms"})
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID != "trace-test-1" {
		t.Fatalf("trace ID = %q, want the header-supplied one", st.TraceID)
	}
	if _, err := c.Wait(ctx, st.ID, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ex, err := c.Spans(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ex.TraceID != "trace-test-1" {
		t.Fatalf("export trace ID = %q", ex.TraceID)
	}
	names := map[string]bool{}
	for _, sp := range ex.Spans {
		names[sp.Name] = true
	}
	if !names["queue_wait"] || !names["simulate"] {
		t.Fatalf("spans = %+v, want queue_wait and simulate", ex.Spans)
	}
	// Default format is Chrome trace-event JSON.
	var chrome []byte
	if _, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+st.ID+"/spans", nil, &chrome); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &doc); err != nil {
		t.Fatalf("chrome spans not JSON: %v", err)
	}
	if len(doc.TraceEvents) < 3 { // process_name + thread_name + spans
		t.Fatalf("chrome events = %d", len(doc.TraceEvents))
	}
}

// TestSubmitWithoutTraceHeader pins the untraced-client path: no header is
// sent (the client adds none for an untraced context) and the server mints
// its own valid ID.
func TestSubmitWithoutTraceHeader(t *testing.T) {
	var gotHeader string
	_, c := newTestServer(t, Config{Runner: stubRunner([]byte(`{}`), nil)})
	// Capture the header with a transport wrapper.
	base := c.HTTP.Transport
	c.HTTP.Transport = roundTripFunc(func(r *http.Request) (*http.Response, error) {
		if r.Method == http.MethodPost {
			gotHeader = r.Header.Get(obs.TraceHeader)
		}
		if base != nil {
			return base.RoundTrip(r)
		}
		return http.DefaultTransport.RoundTrip(r)
	})
	st, _, err := c.Submit(context.Background(), Request{Bench: "gzip", Policy: "postdoms"})
	if err != nil {
		t.Fatal(err)
	}
	if gotHeader != "" {
		t.Fatalf("untraced context sent header %q", gotHeader)
	}
	if !obs.ValidID(st.TraceID) {
		t.Fatalf("server-minted trace ID invalid: %q", st.TraceID)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// TestReadyzLifecycle drives the readiness probe through its three states:
// starting (StartUnready), ready, draining.
func TestReadyzLifecycle(t *testing.T) {
	s, c := newTestServer(t, Config{Runner: stubRunner([]byte(`{}`), nil), StartUnready: true})
	ctx := context.Background()
	if !c.Healthy(ctx) {
		t.Fatal("unready server should still be healthy (alive)")
	}
	if c.Ready(ctx) {
		t.Fatal("StartUnready server reports ready")
	}
	s.SetReady(true)
	if !c.Ready(ctx) {
		t.Fatal("server not ready after SetReady(true)")
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if c.Ready(ctx) {
		t.Fatal("draining server reports ready")
	}
}

// TestMetricsPrometheus scrapes the exposition endpoint after one job and
// validates it with the same checker CI uses: per-endpoint latency and the
// queue_wait phase histogram must be present and well-formed.
func TestMetricsPrometheus(t *testing.T) {
	_, c := newTestServer(t, Config{Runner: stubRunner([]byte(`{}`), nil)})
	ctx := context.Background()
	st, _, err := c.Submit(ctx, Request{Bench: "gzip", Policy: "postdoms"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var raw []byte
	if _, err := c.do(ctx, http.MethodGet, "/metrics?format=prometheus", nil, &raw); err != nil {
		t.Fatal(err)
	}
	err = telemetry.CheckExposition(bytes.NewReader(raw),
		"server_jobs_submitted", "server_http_latency_ms", "server_phase_queue_wait_ms", "pool_workers")
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, raw)
	}
	if !strings.Contains(string(raw), `server_http_latency_ms_bucket{route="POST /v1/jobs",le="+Inf"}`) {
		t.Fatalf("per-route latency series missing:\n%s", raw)
	}
	// The default summary still works and is unchanged in shape.
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "server.jobs.submitted") {
		t.Fatalf("summary lost its counters: %s", text)
	}
}

// TestStructuredLogging wires a JSON logger and asserts submit/finish
// records carry the joining IDs.
func TestStructuredLogging(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	lock := lockedWriter{mu: &mu, w: &buf}
	logger := slog.New(slog.NewJSONHandler(lock, nil))
	_, c := newTestServer(t, Config{Runner: stubRunner([]byte(`{}`), nil), Logger: logger})
	ctx := obs.With(context.Background(), obs.NewTrace("log-trace-7"))
	st, _, err := c.Submit(ctx, Request{Bench: "gzip", Policy: "postdoms"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		out := buf.String()
		mu.Unlock()
		if strings.Contains(out, "job finished") {
			if !strings.Contains(out, `"trace_id":"log-trace-7"`) || !strings.Contains(out, `"job_id":"`+st.ID+`"`) {
				t.Fatalf("log records lack joining IDs:\n%s", out)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no finish record logged:\n%s", out)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestConcurrentSSESubscribers is the satellite race guard: several
// subscribers share one job's stream, one disconnects mid-flight, and every
// surviving subscriber still observes the terminal state event last.
func TestConcurrentSSESubscribers(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{})
	runner := func(ctx context.Context, req Request, progress ProgressFunc) ([]byte, bool, error) {
		close(started)
		progress(100, 50)
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		progress(200, 120)
		return []byte(`{}`), false, nil
	}
	_, c := newTestServer(t, Config{Runner: runner})
	ctx := context.Background()
	st, _, err := c.Submit(ctx, Request{Bench: "gzip", Policy: "postdoms"})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	const subs = 4
	type streamResult struct {
		canceled bool
		last     string
		terminal string
		err      error
	}
	results := make(chan streamResult, subs)
	cancelCtx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		streamCtx := ctx
		canceled := i == 0 // this one drops mid-stream
		if canceled {
			streamCtx = cancelCtx
		}
		wg.Add(1)
		go func(sctx context.Context, canceled bool) {
			defer wg.Done()
			res := streamResult{canceled: canceled}
			res.err = c.StreamEvents(sctx, st.ID, func(event string, data []byte) error {
				res.last = event
				if event == "state" {
					var s Status
					if json.Unmarshal(data, &s) == nil {
						res.terminal = s.State
					}
				}
				return nil
			})
			results <- res
		}(streamCtx, canceled)
	}
	// Let the subscribers attach, drop one, then finish the job.
	time.Sleep(20 * time.Millisecond)
	cancel()
	close(gate)
	wg.Wait()
	close(results)

	for res := range results {
		if res.canceled {
			continue // dropped by design; must not disturb the others
		}
		if res.err != nil {
			t.Fatalf("surviving subscriber errored: %v", res.err)
		}
		if res.last != "state" || res.terminal != "succeeded" {
			t.Fatalf("subscriber ended on %q/%q, want terminal state event", res.last, res.terminal)
		}
	}
}

// TestObservabilityOffIsIdenticalServerPath extends the telemetry
// off-guard to the service layer: the same request through a fully
// instrumented server (logger + traced client) and a bare one yields
// byte-identical artifacts.
func TestObservabilityOffIsIdenticalServerPath(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	run := func(cfg Config, ctx context.Context) []byte {
		_, c := newTestServer(t, cfg)
		st, _, err := c.Submit(ctx, Request{Bench: "gzip", Policy: "postdoms"})
		if err != nil {
			t.Fatal(err)
		}
		fin, err := c.Wait(ctx, st.ID, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != "succeeded" {
			t.Fatalf("state = %q (%s)", fin.State, fin.Error)
		}
		raw, err := c.ResultBytes(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	logger := slog.New(slog.NewJSONHandler(&bytes.Buffer{}, &slog.HandlerOptions{Level: slog.LevelDebug}))
	instrumented := run(Config{Logger: logger}, obs.With(context.Background(), obs.NewTrace("off-guard")))
	bare := run(Config{}, context.Background())
	if !bytes.Equal(instrumented, bare) {
		t.Fatal("observability changed the artifact bytes")
	}
}
