package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"repro/internal/artifact"
	"repro/internal/attrib"
	"repro/internal/obs"
)

// RetryPolicy bounds the client's transient-failure retries. Requests that
// fail at the transport layer (connection refused, reset), answer 429
// (queue backpressure) or answer 5xx are reissued with exponential backoff
// and jitter; other 4xx answers are never retried. The zero value disables
// retries (exactly one attempt), preserving the historical behavior for
// callers — like cmd/polyload — that implement their own 429 handling.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget; <= 1 means no retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry, doubled per
	// attempt; <= 0 selects 25ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; <= 0 selects 1s.
	MaxDelay time.Duration
}

// DefaultRetry is the policy the cluster coordinator uses for worker
// calls: enough attempts to ride out a worker restart, capped well below
// the heartbeat failure-detection window.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 25 * time.Millisecond, MaxDelay: time.Second}
}

// retryable reports whether a failed attempt with this status code may be
// reissued. Code 0 is a transport-level failure (no HTTP answer at all).
func (RetryPolicy) retryable(code int) bool {
	return code == 0 || code == http.StatusTooManyRequests || code >= 500
}

// backoff blocks for the attempt'th retry delay: exponential growth from
// BaseDelay capped at MaxDelay, with uniform jitter over the upper half so
// a fleet of retrying clients never thunders in lockstep.
func (p RetryPolicy) backoff(ctx context.Context, attempt int) error {
	base, max := p.BaseDelay, p.MaxDelay
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	d := base << uint(attempt)
	if d <= 0 || d > max {
		d = max
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Client is a thin Go client for the polyflowd API; cmd/polyload, the CI
// smoke job and the cluster coordinator drive daemons through it.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client
	// Retry governs transient-failure retries; the zero value disables
	// them.
	Retry RetryPolicy
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) (int, error) {
	var payload []byte
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		payload = data
	}
	attempts := c.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 0; ; attempt++ {
		code, err := c.doOnce(ctx, method, path, payload, out)
		if err == nil || !c.Retry.retryable(code) || attempt == attempts-1 {
			return code, err
		}
		if berr := c.Retry.backoff(ctx, attempt); berr != nil {
			return code, err
		}
	}
}

// doOnce issues one HTTP attempt. Code 0 with a non-nil error means the
// request never got an HTTP answer (transport failure).
func (c *Client) doOnce(ctx context.Context, method, path string, payload []byte, out any) (int, error) {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return 0, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// A traced context propagates its ID, joining the remote job to the
	// caller's trace; an untraced context adds no header (and no work).
	if id := obs.IDFrom(ctx); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return resp.StatusCode, fmt.Errorf("%s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
		}
		return resp.StatusCode, fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out != nil {
		if raw, ok := out.(*[]byte); ok {
			*raw = data
			return resp.StatusCode, nil
		}
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("%s %s: decoding response: %w", method, path, err)
		}
	}
	return resp.StatusCode, nil
}

// Submit posts a job. The returned status is the accepted job (state
// "queued"); a full queue surfaces as an error wrapping HTTP 429.
func (c *Client) Submit(ctx context.Context, req Request) (Status, int, error) {
	var st Status
	code, err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st)
	return st, code, err
}

// Status fetches one job's status.
func (c *Client) Status(ctx context.Context, id string) (Status, error) {
	var st Status
	_, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// List fetches every retained job, newest first.
func (c *Client) List(ctx context.Context) ([]Status, error) {
	var out []Status
	_, err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Cancel cancels a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	_, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
	return err
}

// Wait polls until the job reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (Status, error) {
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case "succeeded", "failed", "canceled":
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Result fetches and decodes a succeeded job's simulation artifact.
func (c *Client) Result(ctx context.Context, id string) (*artifact.SimArtifact, error) {
	var raw []byte
	if _, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &raw); err != nil {
		return nil, err
	}
	return artifact.DecodeSim(raw)
}

// ResultBytes fetches a succeeded job's raw artifact bytes.
func (c *Client) ResultBytes(ctx context.Context, id string) ([]byte, error) {
	var raw []byte
	_, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &raw)
	return raw, err
}

// Attrib fetches a succeeded job's attribution report.
func (c *Client) Attrib(ctx context.Context, id string) (*attrib.Report, error) {
	var raw []byte
	if _, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/attrib", nil, &raw); err != nil {
		return nil, err
	}
	return attrib.ReadReport(bytes.NewReader(raw))
}

// AttribBytes fetches the raw report JSON (what the CI smoke job hands to
// polystat diff).
func (c *Client) AttribBytes(ctx context.Context, id string) ([]byte, error) {
	var raw []byte
	_, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/attrib", nil, &raw)
	return raw, err
}

// Trace fetches a workload's serialized polyflow-trace/1 artifact —
// feedable to `polyflow -trace-in` or speculate.LoadFromTraceData.
func (c *Client) Trace(ctx context.Context, bench string) ([]byte, error) {
	var raw []byte
	_, err := c.do(ctx, http.MethodGet, "/v1/traces/"+bench, nil, &raw)
	return raw, err
}

// Metrics fetches the plain-text telemetry summary.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	var raw []byte
	_, err := c.do(ctx, http.MethodGet, "/metrics", nil, &raw)
	return string(raw), err
}

// PromMetrics fetches the Prometheus text exposition (what a scraper and
// the CI exposition checker consume).
func (c *Client) PromMetrics(ctx context.Context) ([]byte, error) {
	var raw []byte
	_, err := c.do(ctx, http.MethodGet, "/metrics?format=prometheus", nil, &raw)
	return raw, err
}

// Healthy reports whether the server answers /healthz with 200.
func (c *Client) Healthy(ctx context.Context) bool {
	code, err := c.do(ctx, http.MethodGet, "/healthz", nil, nil)
	return err == nil && code == http.StatusOK
}

// Ready reports whether the server answers /readyz with 200 — serving
// traffic, not merely alive.
func (c *Client) Ready(ctx context.Context) bool {
	code, err := c.do(ctx, http.MethodGet, "/readyz", nil, nil)
	return err == nil && code == http.StatusOK
}

// Spans fetches a job's raw trace export (the coordinator imports these
// into its own timeline after a cell completes).
func (c *Client) Spans(ctx context.Context, id string) (obs.Export, error) {
	var raw []byte
	if _, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/spans?format=raw", nil, &raw); err != nil {
		return obs.Export{}, err
	}
	return obs.DecodeExport(raw)
}

// StreamEvents subscribes to a job's SSE stream and invokes fn for every
// event until the stream ends (terminal state), ctx is canceled, or fn
// returns an error (which stops the stream and is returned). The cluster
// coordinator relays worker progress through this. No retries: a broken
// stream returns; callers that care re-subscribe.
func (c *Client) StreamEvents(ctx context.Context, id string, fn func(event string, data []byte) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	if tid := obs.IDFrom(ctx); tid != "" {
		req.Header.Set(obs.TraceHeader, tid)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/jobs/%s/events: HTTP %d", id, resp.StatusCode)
	}
	event := ""
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := fn(event, []byte(strings.TrimPrefix(line, "data: "))); err != nil {
				return err
			}
		case line == "":
			event = ""
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	return ctx.Err()
}
